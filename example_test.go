package mira_test

import (
	"fmt"
	"time"

	"mira"
	"mira/internal/timeutil"
)

// Example_quickStudy simulates two failure-dense months and prints the
// plant flow and incident count — the smallest end-to-end use of the API.
func Example_quickStudy() {
	study, err := mira.RunStudy(mira.StudyConfig{
		Seed:  5,
		Start: time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:   time.Date(2016, 10, 1, 0, 0, 0, 0, timeutil.Chicago),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fig := study.Fig3CoolantTimeline()
	fmt.Printf("post-Theta plant flow ≈ %.0f GPM\n", fig.FlowAfterTheta)
	fmt.Printf("incidents observed: %v\n", len(study.Incidents()) > 0)
	// Output:
	// post-Theta plant flow ≈ 1301 GPM
	// incidents observed: true
}

// Example_trainPredictor trains the paper's CMF predictor at a two-hour
// lead and scores it on its own balanced dataset.
func Example_trainPredictor() {
	study, err := mira.RunStudy(mira.StudyConfig{
		Seed:  5,
		Start: time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:   time.Date(2016, 10, 1, 0, 0, 0, 0, timeutil.Chicago),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	p, err := study.TrainPredictor(2*time.Hour, mira.PredictorConfig{Seed: 5})
	if err != nil {
		fmt.Println(err)
		return
	}
	ds, err := study.BuildPredictorDataset(2*time.Hour, 6)
	if err != nil {
		fmt.Println(err)
		return
	}
	conf := p.Evaluate(ds)
	fmt.Printf("training accuracy above 90%%: %v\n", conf.Accuracy() > 0.9)
	// Output:
	// training accuracy above 90%: true
}
