#!/bin/sh
# Persistence smoke test: a short mirasim run flushes segment files, a warm
# miraanalyze reopens them without simulating, and the warm figures must be
# byte-identical to the CSV-based in-memory path. A corrupted segment must
# surface as a descriptive error, not a panic.
#
# The window sits mid-month with margin on both sides: the CSV path carries
# UTC timestamps while segments preserve the simulation zone, so a window
# touching a month boundary would bucket differently, not incorrectly.
set -eu
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
data=$(mktemp -d)
mon_pid=
disp_pid=
wkr_pids=
cleanup() {
	[ -n "$mon_pid" ] && kill "$mon_pid" 2>/dev/null
	[ -n "$disp_pid" ] && kill "$disp_pid" 2>/dev/null
	for p in $wkr_pids; do kill "$p" 2>/dev/null || true; done
	rm -rf "$bin" "$data"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/mirasim ./cmd/miraanalyze ./cmd/miramon ./cmd/miradispatch

"$bin/mirasim" -start 2014-03-05 -end 2014-03-12 \
	-data "$data/seg" -telemetry "$data/telemetry.csv" >/dev/null

"$bin/miraanalyze" -data "$data/seg" >"$data/warm.txt"
grep -q '^warm start:' "$data/warm.txt" || {
	echo "smoke: miraanalyze -data did not warm-start" >&2
	exit 1
}

"$bin/miraanalyze" -from "$data/telemetry.csv" >"$data/csv.txt"

# Figures must match; only the first provenance line ("warm start: ..." vs
# "loaded ...") may differ.
tail -n +2 "$data/warm.txt" >"$data/warm-figs.txt"
tail -n +2 "$data/csv.txt" >"$data/csv-figs.txt"
if ! diff -u "$data/warm-figs.txt" "$data/csv-figs.txt"; then
	echo "smoke: warm segment figures differ from the CSV in-memory path" >&2
	exit 1
fi

# The parallel shard fan-out must be a pure performance change: replaying
# the warm store with 1 worker and with 8 must print byte-identical
# figures.
"$bin/miraanalyze" -data "$data/seg" -scan-workers 1 >"$data/scan1.txt"
"$bin/miraanalyze" -data "$data/seg" -scan-workers 8 >"$data/scan8.txt"
if ! diff -u "$data/scan1.txt" "$data/scan8.txt"; then
	echo "smoke: figures differ between -scan-workers 1 and 8" >&2
	exit 1
fi
if ! diff -u "$data/warm.txt" "$data/scan1.txt"; then
	echo "smoke: -scan-workers 1 figures differ from the default scan" >&2
	exit 1
fi

# The batch-columnar (chunked) scan is the default replay surface; forcing
# the record-at-a-time merge with -scan-mode record must print byte-identical
# figures — the two paths decode the same stored bytes.
"$bin/miraanalyze" -data "$data/seg" -scan-mode record >"$data/scanrec.txt"
if ! diff -u "$data/warm.txt" "$data/scanrec.txt"; then
	echo "smoke: figures differ between the chunked scan and -scan-mode record" >&2
	exit 1
fi

# Retention compaction: persist a second store with daily partitions, then
# let miraanalyze -retention fold everything but the newest day into 1-hour
# downsampled windows on disk. The Fig. 7/9 pushdown figures aggregate
# exactly across both tiers, so they must be byte-identical before and
# after compaction; the replay figure (3) must still run over the hot
# window.
"$bin/mirasim" -start 2014-03-05 -end 2014-03-12 -partition 24h \
	-data "$data/cold" >/dev/null
"$bin/miraanalyze" -data "$data/cold" -figure 7 >"$data/fig7-before.txt"
"$bin/miraanalyze" -data "$data/cold" -figure 9 >"$data/fig9-before.txt"

"$bin/miraanalyze" -data "$data/cold" -retention 24h -figure 7 >"$data/compact.txt"
grep -q 'compacted [0-9]* raw records into [0-9]* downsampled windows' "$data/compact.txt" || {
	echo "smoke: miraanalyze -retention did not report a compaction" >&2
	exit 1
}
find "$data/cold" -name '*.cold.seg' | grep -q . || {
	echo "smoke: compaction left no cold segment files" >&2
	exit 1
}

"$bin/miraanalyze" -data "$data/cold" -figure 7 >"$data/fig7-after.txt"
"$bin/miraanalyze" -data "$data/cold" -figure 9 >"$data/fig9-after.txt"
for fig in 7 9; do
	tail -n +2 "$data/fig$fig-before.txt" >"$data/fig$fig-before-figs.txt"
	tail -n +2 "$data/fig$fig-after.txt" >"$data/fig$fig-after-figs.txt"
	if ! diff -u "$data/fig$fig-before-figs.txt" "$data/fig$fig-after-figs.txt"; then
		echo "smoke: figure $fig pushdown differs after retention compaction" >&2
		exit 1
	fi
done
"$bin/miraanalyze" -data "$data/cold" -figure 3 >/dev/null || {
	echo "smoke: replay figure failed over the compacted store" >&2
	exit 1
}

# Network round trip: serve the warm store over the wire, check the remote
# figures are byte-identical to the local warm replay, push a fresh day of
# telemetry into the live server, and verify a SIGTERM shutdown flushes the
# ingested records to disk before exiting.
"$bin/miramon" -serve -listen 127.0.0.1:0 -data "$data/seg" 2>"$data/mon.log" &
mon_pid=$!
addr=
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's/.*telemetry API on //p' "$data/mon.log" | head -n 1)
	[ -n "$addr" ] && break
	kill -0 "$mon_pid" 2>/dev/null || {
		echo "smoke: miramon -serve exited early:" >&2
		cat "$data/mon.log" >&2
		exit 1
	}
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || {
	echo "smoke: miramon -serve never reported its address" >&2
	cat "$data/mon.log" >&2
	exit 1
}

"$bin/miraanalyze" -remote "http://$addr" >"$data/remote.txt"
tail -n +2 "$data/remote.txt" >"$data/remote-figs.txt"
if ! diff -u "$data/warm-figs.txt" "$data/remote-figs.txt"; then
	echo "smoke: remote figures differ from the local warm replay" >&2
	exit 1
fi

"$bin/mirasim" -start 2014-03-12 -end 2014-03-13 -push "http://$addr" >"$data/push.txt"
grep -q 'telemetry pushed: [1-9][0-9]* records' "$data/push.txt" || {
	echo "smoke: mirasim -push did not report pushed telemetry:" >&2
	cat "$data/push.txt" >&2
	exit 1
}

kill -TERM "$mon_pid"
wait "$mon_pid" || {
	echo "smoke: miramon -serve exited non-zero on SIGTERM:" >&2
	cat "$data/mon.log" >&2
	exit 1
}
mon_pid=
grep -q 'shutdown complete' "$data/mon.log" || {
	echo "smoke: miramon -serve did not log a graceful shutdown:" >&2
	cat "$data/mon.log" >&2
	exit 1
}

before=$(sed -n 's/^warm start: loaded \([0-9][0-9]*\) .*/\1/p' "$data/warm.txt")
"$bin/miraanalyze" -data "$data/seg" -figure 7 >"$data/after-push.txt"
after=$(sed -n 's/^warm start: loaded \([0-9][0-9]*\) .*/\1/p' "$data/after-push.txt")
if [ -z "$before" ] || [ -z "$after" ] || [ "$after" -le "$before" ]; then
	echo "smoke: graceful shutdown did not persist pushed records ($before -> ${after:-?})" >&2
	exit 1
fi

# Fleet round trip: the same two-hall window simulated twice — once into a
# local fleet store, once pushed over the wire into a fleet-sized
# miramon -serve — must analyze identically hall by hall. The push travels
# the v2 (wide rack code) wire encoding for hall 1, so this also proves the
# fleet encoding survives sim -> push -> remote analysis bit-exactly.
"$bin/mirasim" -halls 2 -start 2014-03-05 -end 2014-03-07 \
	-data "$data/fleet-local" >/dev/null

"$bin/miramon" -serve -listen 127.0.0.1:0 -halls 2 -data "$data/fleet-remote" \
	2>"$data/fleet-mon.log" &
mon_pid=$!
addr=
i=0
while [ $i -lt 100 ]; do
	addr=$(sed -n 's/.*telemetry API on //p' "$data/fleet-mon.log" | head -n 1)
	[ -n "$addr" ] && break
	kill -0 "$mon_pid" 2>/dev/null || {
		echo "smoke: fleet miramon -serve exited early:" >&2
		cat "$data/fleet-mon.log" >&2
		exit 1
	}
	sleep 0.1
	i=$((i + 1))
done
[ -n "$addr" ] || {
	echo "smoke: fleet miramon -serve never reported its address" >&2
	cat "$data/fleet-mon.log" >&2
	exit 1
}

"$bin/mirasim" -halls 2 -start 2014-03-05 -end 2014-03-07 \
	-push "http://$addr" >"$data/fleet-push.txt"
grep -q 'telemetry pushed: [1-9][0-9]* records' "$data/fleet-push.txt" || {
	echo "smoke: fleet mirasim -push did not report pushed telemetry:" >&2
	cat "$data/fleet-push.txt" >&2
	exit 1
}

for hall in 0 1; do
	"$bin/miraanalyze" -data "$data/fleet-local" -halls 2 -hall "$hall" \
		>"$data/fleet-local-$hall.txt"
	"$bin/miraanalyze" -remote "http://$addr" -hall "$hall" \
		>"$data/fleet-remote-$hall.txt"
	tail -n +2 "$data/fleet-local-$hall.txt" >"$data/fleet-local-$hall-figs.txt"
	tail -n +2 "$data/fleet-remote-$hall.txt" >"$data/fleet-remote-$hall-figs.txt"
	if ! diff -u "$data/fleet-local-$hall-figs.txt" "$data/fleet-remote-$hall-figs.txt"; then
		echo "smoke: hall $hall remote fleet figures differ from the local fleet store" >&2
		exit 1
	fi
done

kill -TERM "$mon_pid"
wait "$mon_pid" || {
	echo "smoke: fleet miramon -serve exited non-zero on SIGTERM:" >&2
	cat "$data/fleet-mon.log" >&2
	exit 1
}
mon_pid=

# Campaign sweep: a 3-job scenario sweep across 2 workers must complete
# every job exactly once even though one worker is SIGKILLed mid-job and
# the dispatcher is restarted once mid-sweep — the durable queue recovers
# from disk with the in-flight job demoted back to pending, fresh workers
# drain the sweep, and the comparison table prints all three rows.
cat >"$data/sweep1.json" <<'EOF'
{"name": "sweep1", "seed": 42, "start": "2014-03-01", "end": "2014-06-01"}
EOF
cat >"$data/sweep2.json" <<'EOF'
{"name": "sweep2", "seed": 42, "start": "2014-03-01", "end": "2014-06-01", "failure_scale": 3}
EOF
cat >"$data/sweep3.json" <<'EOF'
{"name": "sweep3", "seed": 42, "start": "2014-03-01", "end": "2014-06-01", "weather_seed": 7}
EOF

"$bin/miradispatch" -data "$data/campaign" -listen 127.0.0.1:0 -lease 2s \
	2>"$data/disp1.log" &
disp_pid=$!
caddr=
i=0
while [ $i -lt 100 ]; do
	caddr=$(sed -n 's/.*campaign dispatcher on //p' "$data/disp1.log" | head -n 1)
	[ -n "$caddr" ] && break
	kill -0 "$disp_pid" 2>/dev/null || {
		echo "smoke: miradispatch exited early:" >&2
		cat "$data/disp1.log" >&2
		exit 1
	}
	sleep 0.1
	i=$((i + 1))
done
[ -n "$caddr" ] || {
	echo "smoke: miradispatch never reported its address" >&2
	cat "$data/disp1.log" >&2
	exit 1
}

"$bin/miradispatch" -url "http://$caddr" \
	-submit "$data/sweep1.json,$data/sweep2.json,$data/sweep3.json" >"$data/submit.txt"
[ "$(grep -c 'submitted' "$data/submit.txt")" = 3 ] || {
	echo "smoke: expected 3 submitted jobs:" >&2
	cat "$data/submit.txt" >&2
	exit 1
}

# Worker A claims a job and is SIGKILLed mid-run — no fail report, no
# graceful anything; its job must come back through queue recovery.
"$bin/mirasim" -worker "http://$caddr" 2>"$data/workerA.log" &
wkrA=$!
wkr_pids="$wkrA"
i=0
while [ $i -lt 200 ]; do
	grep -q 'claimed job' "$data/workerA.log" && break
	kill -0 "$wkrA" 2>/dev/null || break
	sleep 0.05
	i=$((i + 1))
done
grep -q 'claimed job' "$data/workerA.log" || {
	echo "smoke: worker A never claimed a job:" >&2
	cat "$data/workerA.log" >&2
	exit 1
}
kill -9 "$wkrA"
wait "$wkrA" 2>/dev/null || true
wkr_pids=

# Restart the dispatcher mid-sweep over the same queue directory: the
# killed worker's in-flight job (leases are in-memory only) must demote
# back to pending, with nothing lost and nothing duplicated.
kill -TERM "$disp_pid"
wait "$disp_pid" || {
	echo "smoke: miradispatch exited non-zero on SIGTERM:" >&2
	cat "$data/disp1.log" >&2
	exit 1
}
disp_pid=
grep -q 'shutdown complete' "$data/disp1.log" || {
	echo "smoke: miradispatch did not log a graceful shutdown:" >&2
	cat "$data/disp1.log" >&2
	exit 1
}

"$bin/miradispatch" -data "$data/campaign" -listen 127.0.0.1:0 -lease 2s \
	2>"$data/disp2.log" &
disp_pid=$!
caddr=
i=0
while [ $i -lt 100 ]; do
	caddr=$(sed -n 's/.*campaign dispatcher on //p' "$data/disp2.log" | head -n 1)
	[ -n "$caddr" ] && break
	kill -0 "$disp_pid" 2>/dev/null || {
		echo "smoke: restarted miradispatch exited early:" >&2
		cat "$data/disp2.log" >&2
		exit 1
	}
	sleep 0.1
	i=$((i + 1))
done
[ -n "$caddr" ] || {
	echo "smoke: restarted miradispatch never reported its address" >&2
	cat "$data/disp2.log" >&2
	exit 1
}
grep -q 'recovered: 3 pending, 0 done, 0 failed' "$data/disp2.log" || {
	echo "smoke: restarted dispatcher did not demote the in-flight job:" >&2
	cat "$data/disp2.log" >&2
	exit 1
}

# Two fresh workers drain the sweep and exit on their own.
"$bin/mirasim" -worker "http://$caddr" 2>"$data/workerB.log" &
wkrB=$!
"$bin/mirasim" -worker "http://$caddr" 2>"$data/workerC.log" &
wkrC=$!
wkr_pids="$wkrB $wkrC"
for w in B:$wkrB C:$wkrC; do
	pid=${w#*:}
	wait "$pid" || {
		echo "smoke: worker ${w%%:*} exited non-zero:" >&2
		cat "$data/worker${w%%:*}.log" >&2
		exit 1
	}
done
wkr_pids=
for w in B C; do
	grep -q 'queue drained' "$data/worker$w.log" || {
		echo "smoke: worker $w did not exit on a drained queue:" >&2
		cat "$data/worker$w.log" >&2
		exit 1
	}
done

"$bin/miradispatch" -url "http://$caddr" -status >"$data/campaign-status.txt"
[ "$(grep -c ' done ' "$data/campaign-status.txt")" = 3 ] || {
	echo "smoke: expected 3 done jobs after the sweep:" >&2
	cat "$data/campaign-status.txt" >&2
	exit 1
}

"$bin/miraanalyze" -campaign "http://$caddr" >"$data/campaign-table.txt"
grep -q '3 jobs, 3 completed' "$data/campaign-table.txt" || {
	echo "smoke: campaign results are not exactly-once:" >&2
	cat "$data/campaign-table.txt" >&2
	exit 1
}
for name in sweep1 sweep2 sweep3; do
	grep -q "$name" "$data/campaign-table.txt" || {
		echo "smoke: comparison table is missing $name:" >&2
		cat "$data/campaign-table.txt" >&2
		exit 1
	}
done
grep -q 'baseline: job 1 (sweep1)' "$data/campaign-table.txt" || {
	echo "smoke: comparison table has no baseline line:" >&2
	cat "$data/campaign-table.txt" >&2
	exit 1
}

kill -TERM "$disp_pid"
wait "$disp_pid" || true
disp_pid=

# A corrupted cold segment must be rejected as descriptively as a raw one.
coldseg=$(find "$data/cold" -name '*.cold.seg' | head -n 1)
coldsize=$(wc -c <"$coldseg")
truncate -s $((coldsize - 7)) "$coldseg"
if "$bin/miraanalyze" -data "$data/cold" >"$data/cold-corrupt.txt" 2>&1; then
	echo "smoke: corrupted cold segment was accepted" >&2
	exit 1
fi
grep -q 'corrupt segment' "$data/cold-corrupt.txt" || {
	echo "smoke: cold corruption error is not descriptive:" >&2
	cat "$data/cold-corrupt.txt" >&2
	exit 1
}

# Corruption: truncate one segment mid-payload.
seg=$(find "$data/seg" -name '*.seg' | head -n 1)
size=$(wc -c <"$seg")
truncate -s $((size / 2)) "$seg"
if "$bin/miraanalyze" -data "$data/seg" >"$data/corrupt.txt" 2>&1; then
	echo "smoke: corrupted segment was accepted" >&2
	exit 1
fi
grep -q 'corrupt segment' "$data/corrupt.txt" || {
	echo "smoke: corruption error is not descriptive:" >&2
	cat "$data/corrupt.txt" >&2
	exit 1
}

echo "smoke: ok (warm figures match the in-memory path; chunked and record-at-a-time scans agree; remote figures match over the wire; push + graceful shutdown persisted; pushdown figures survive retention compaction; two-hall fleet push analyzes hall-identical to the local store; 3-job campaign sweep survived a worker kill and a dispatcher restart exactly-once; corruption rejected)"
