#!/bin/sh
# Persistence smoke test: a short mirasim run flushes segment files, a warm
# miraanalyze reopens them without simulating, and the warm figures must be
# byte-identical to the CSV-based in-memory path. A corrupted segment must
# surface as a descriptive error, not a panic.
#
# The window sits mid-month with margin on both sides: the CSV path carries
# UTC timestamps while segments preserve the simulation zone, so a window
# touching a month boundary would bucket differently, not incorrectly.
set -eu
cd "$(dirname "$0")/.."

bin=$(mktemp -d)
data=$(mktemp -d)
trap 'rm -rf "$bin" "$data"' EXIT

go build -o "$bin" ./cmd/mirasim ./cmd/miraanalyze

"$bin/mirasim" -start 2014-03-05 -end 2014-03-12 \
	-data "$data/seg" -telemetry "$data/telemetry.csv" >/dev/null

"$bin/miraanalyze" -data "$data/seg" >"$data/warm.txt"
grep -q '^warm start:' "$data/warm.txt" || {
	echo "smoke: miraanalyze -data did not warm-start" >&2
	exit 1
}

"$bin/miraanalyze" -from "$data/telemetry.csv" >"$data/csv.txt"

# Figures must match; only the first provenance line ("warm start: ..." vs
# "loaded ...") may differ.
tail -n +2 "$data/warm.txt" >"$data/warm-figs.txt"
tail -n +2 "$data/csv.txt" >"$data/csv-figs.txt"
if ! diff -u "$data/warm-figs.txt" "$data/csv-figs.txt"; then
	echo "smoke: warm segment figures differ from the CSV in-memory path" >&2
	exit 1
fi

# The parallel shard fan-out must be a pure performance change: replaying
# the warm store with 1 worker and with 8 must print byte-identical
# figures.
"$bin/miraanalyze" -data "$data/seg" -scan-workers 1 >"$data/scan1.txt"
"$bin/miraanalyze" -data "$data/seg" -scan-workers 8 >"$data/scan8.txt"
if ! diff -u "$data/scan1.txt" "$data/scan8.txt"; then
	echo "smoke: figures differ between -scan-workers 1 and 8" >&2
	exit 1
fi
if ! diff -u "$data/warm.txt" "$data/scan1.txt"; then
	echo "smoke: -scan-workers 1 figures differ from the default scan" >&2
	exit 1
fi

# Corruption: truncate one segment mid-payload.
seg=$(find "$data/seg" -name '*.seg' | head -n 1)
size=$(wc -c <"$seg")
truncate -s $((size / 2)) "$seg"
if "$bin/miraanalyze" -data "$data/seg" >"$data/corrupt.txt" 2>&1; then
	echo "smoke: corrupted segment was accepted" >&2
	exit 1
fi
grep -q 'corrupt segment' "$data/corrupt.txt" || {
	echo "smoke: corruption error is not descriptive:" >&2
	cat "$data/corrupt.txt" >&2
	exit 1
}

echo "smoke: ok (warm figures match the in-memory path; corruption rejected)"
