#!/bin/sh
# bench_net.sh -- network-path benchmark: simulate a telemetry window into
# a store, serve it with miramon -serve, and hammer the query API with
# miraload's concurrent clients. Writes the latency/throughput snapshot to
# BENCH_net.json (schema mira-bench-net/v1) in the repo root.
#
# Usage: scripts/bench_net.sh [out.json] [clients] [requests]
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_net.json}
clients=${2:-1000}
requests=${3:-20000}

bin=$(mktemp -d)
data=$(mktemp -d)
mon_pid=
cleanup() {
    [ -n "$mon_pid" ] && kill "$mon_pid" 2>/dev/null || true
    rm -rf "$bin" "$data"
}
trap cleanup EXIT INT TERM

echo "bench-net: building ..."
go build -o "$bin" ./cmd/mirasim ./cmd/miramon ./cmd/miraload

echo "bench-net: simulating a two-week window ..."
"$bin/mirasim" -start 2014-03-01 -end 2014-03-15 -data "$data/seg" >/dev/null

"$bin/miramon" -serve -listen 127.0.0.1:0 -data "$data/seg" 2>"$data/mon.log" &
mon_pid=$!

# The server picks an ephemeral port; read it back from the startup log.
addr=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/.*telemetry API on //p' "$data/mon.log" | head -n 1)
    [ -n "$addr" ] && break
    if ! kill -0 "$mon_pid" 2>/dev/null; then
        echo "bench-net: miramon -serve exited early:" >&2
        cat "$data/mon.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "bench-net: miramon -serve never reported its address" >&2
    cat "$data/mon.log" >&2
    exit 1
fi

"$bin/miraload" -url "http://$addr" -clients "$clients" -requests "$requests" -out "$out"

kill -TERM "$mon_pid"
wait "$mon_pid" || true
mon_pid=

# miraload rewrites the snapshot from scratch; re-fold the campaign
# dispatcher benchmark so the campaign_benchmarks section survives.
go test -run '^$' -bench '^BenchmarkClaimCycle$' -benchmem -count 1 ./internal/campaign/ >"$data/campaign.txt"
go run ./scripts/benchmerge -in "$data/campaign.txt" -key campaign_benchmarks -out "$out"

echo "bench-net: wrote $out"
