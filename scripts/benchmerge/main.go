// Command benchmerge folds `go test -bench` output into an existing JSON
// benchmark snapshot under a named key, preserving every other key. It is
// how make bench records the campaign dispatcher's BenchmarkClaimCycle
// into BENCH_net.json without clobbering miraload's latency sections (and
// how bench_net.sh keeps that section across a fresh miraload snapshot).
//
// Usage: go run ./scripts/benchmerge -in bench.txt -key campaign_benchmarks -out BENCH_net.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	var (
		in  = flag.String("in", "", "go test -bench output to parse")
		key = flag.String("key", "", "top-level key to set in the snapshot")
		out = flag.String("out", "", "JSON snapshot to update in place (created if missing)")
	)
	flag.Parse()
	if *in == "" || *key == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "benchmerge: -in, -key, and -out are all required")
		os.Exit(2)
	}

	benches, err := parseBench(*in)
	if err != nil {
		fatal(err)
	}
	if len(benches) == 0 {
		fatal(fmt.Errorf("no Benchmark lines in %s", *in))
	}

	snapshot := map[string]any{"schema": "mira-bench-net/v1"}
	if b, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(b, &snapshot); err != nil {
			fatal(fmt.Errorf("%s: %w", *out, err))
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}
	snapshot[*key] = benches

	enc, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchmerge: %s <- %q (%d benchmarks)\n", *out, *key, len(benches))
}

// parseBench turns `go test -bench` result lines into JSON-ready objects:
//
//	BenchmarkClaimCycle-8  747  1571498 ns/op  42260 B/op  331 allocs/op
//
// becomes {"name": "BenchmarkClaimCycle-8", "iterations": 747,
// "ns_per_op": 1571498, ...}, matching the unit spelling bench.sh's awk
// uses for BENCH_tsdb.json.
func parseBench(path string) ([]map[string]any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var benches []map[string]any
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := map[string]any{"name": fields[0], "iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := strings.ReplaceAll(fields[i+1], "/", "_per_")
			unit = strings.ReplaceAll(unit, "%", "pct")
			b[unit] = v
		}
		benches = append(benches, b)
	}
	return benches, sc.Err()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
	os.Exit(1)
}
