// Command lint_metrics statically enforces the repository's metric
// namespace rule: every metric registered through internal/obs must match
// mira_[a-z_]+ with no double or trailing underscores, and counters must
// end in _total. The obs registry panics on bad names at runtime; this
// gate (run by `make lint`, part of `make check`) catches them before any
// code path executes.
//
// Usage: go run scripts/lint_metrics.go [root]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// registrationRE matches obs registration sites in source form:
// obs.NewCounter("name", ...), reg.GaugeVec("name", ...), and so on. The
// capture groups are the metric kind and the literal name.
var registrationRE = regexp.MustCompile(`\.(?:New)?(Counter|Gauge|Histogram)(Vec)?\(\s*"([^"]+)"`)

var nameRE = regexp.MustCompile(`^mira_[a-z_]+$`)

func lintName(kind, name string) string {
	switch {
	case !nameRE.MatchString(name):
		return "must match mira_[a-z_]+"
	case strings.Contains(name, "__"):
		return "must not contain '__'"
	case strings.HasSuffix(name, "_"):
		return "must not end in '_'"
	case kind == "Counter" && !strings.HasSuffix(name, "_total"):
		return "counters must end in _total"
	}
	return ""
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	bad := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "scripts" || name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range registrationRE.FindAllStringSubmatch(line, -1) {
				kind, name := m[1], m[3]
				if msg := lintName(kind, name); msg != "" {
					fmt.Fprintf(os.Stderr, "%s:%d: metric %q: %s\n", path, i+1, name, msg)
					bad++
				}
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint_metrics:", err)
		os.Exit(2)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lint_metrics: %d bad metric name(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("lint_metrics: ok")
}
