// Command lint_metrics statically enforces the repository's observability
// naming rules (run by `make lint`, part of `make check`):
//
//   - every metric registered through internal/obs must match mira_[a-z_]+
//     with no double or trailing underscores, and counters must end in
//     _total;
//   - every span name literal (obs.Span and the telemetrynet traced
//     wrapper) must match [a-z][a-z0-9_.]* with no double or trailing
//     dots, and must be registered at exactly one site — duplicate
//     literals make /debug/traces trees ambiguous;
//   - exemplars must carry exactly one label key, declared once as
//     exemplarKey = "trace_id" in internal/obs, so exposition-format
//     exemplar cardinality stays bounded by construction.
//
// The obs registry panics on bad metric names at runtime; this gate
// catches them (and the rules the runtime cannot see) before any code
// path executes.
//
// Usage: go run scripts/lint_metrics.go [root]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// registrationRE matches obs registration sites in source form:
// obs.NewCounter("name", ...), reg.GaugeVec("name", ...), and so on. The
// capture groups are the metric kind and the literal name.
var registrationRE = regexp.MustCompile(`\.(?:New)?(Counter|Gauge|Histogram)(Vec)?\(\s*"([^"]+)"`)

var nameRE = regexp.MustCompile(`^mira_[a-z_]+$`)

// spanRE matches span starts with a literal name: obs.Span(ctx, "name").
// Computed names (e.g. "analysis."+figure) have no literal and are exempt;
// their components are linted at the sites that build them.
// The trailing [,)] keeps concatenated prefixes ("analysis."+figure) out.
var spanRE = regexp.MustCompile(`\bSpan\(\s*[^,()]*,\s*"([^"]+)"\s*[,)]`)

// tracedRE matches the telemetrynet handler wrapper, whose second literal
// is a span name: s.traced("endpoint", "net.query", ...).
var tracedRE = regexp.MustCompile(`\.traced\(\s*"[^"]*",\s*"([^"]+)"`)

var spanNameRE = regexp.MustCompile(`^[a-z][a-z0-9_.]*$`)

// exemplarKeyRE matches the single allowed exemplar label-key declaration.
var exemplarKeyRE = regexp.MustCompile(`\bexemplarKey\s*=\s*"([^"]+)"`)

func lintName(kind, name string) string {
	switch {
	case !nameRE.MatchString(name):
		return "must match mira_[a-z_]+"
	case strings.Contains(name, "__"):
		return "must not contain '__'"
	case strings.HasSuffix(name, "_"):
		return "must not end in '_'"
	case kind == "Counter" && !strings.HasSuffix(name, "_total"):
		return "counters must end in _total"
	}
	return ""
}

func lintSpanName(name string) string {
	switch {
	case !spanNameRE.MatchString(name):
		return "must match [a-z][a-z0-9_.]*"
	case strings.Contains(name, ".."):
		return "must not contain '..'"
	case strings.HasSuffix(name, "."):
		return "must not end in '.'"
	}
	return ""
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	bad := 0
	spanSites := map[string][]string{}  // span name -> registration sites
	exemplarKeys := map[string]string{} // declared key -> site
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// path != root: a root of "." must not trip the hidden-dir skip,
			// or the walk ends before scanning a single file.
			if name := d.Name(); path != root && (name == "scripts" || name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "//") {
				continue
			}
			site := fmt.Sprintf("%s:%d", path, i+1)
			for _, m := range registrationRE.FindAllStringSubmatch(line, -1) {
				kind, name := m[1], m[3]
				if msg := lintName(kind, name); msg != "" {
					fmt.Fprintf(os.Stderr, "%s: metric %q: %s\n", site, name, msg)
					bad++
				}
			}
			for _, re := range []*regexp.Regexp{spanRE, tracedRE} {
				for _, m := range re.FindAllStringSubmatch(line, -1) {
					name := m[1]
					if msg := lintSpanName(name); msg != "" {
						fmt.Fprintf(os.Stderr, "%s: span %q: %s\n", site, name, msg)
						bad++
					}
					spanSites[name] = append(spanSites[name], site)
				}
			}
			for _, m := range exemplarKeyRE.FindAllStringSubmatch(line, -1) {
				exemplarKeys[m[1]] = site
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint_metrics:", err)
		os.Exit(2)
	}
	names := make([]string, 0, len(spanSites))
	for name := range spanSites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if sites := spanSites[name]; len(sites) > 1 {
			fmt.Fprintf(os.Stderr, "%s: span %q: registered at %d sites (want 1): %s\n",
				sites[0], name, len(sites), strings.Join(sites, ", "))
			bad++
		}
	}
	switch len(exemplarKeys) {
	case 0:
		fmt.Fprintln(os.Stderr, "lint_metrics: no exemplarKey declaration found (want exactly one, \"trace_id\", in internal/obs)")
		bad++
	case 1:
		for key, site := range exemplarKeys {
			if key != "trace_id" {
				fmt.Fprintf(os.Stderr, "%s: exemplar label key %q: must be \"trace_id\"\n", site, key)
				bad++
			}
		}
	default:
		for key, site := range exemplarKeys {
			fmt.Fprintf(os.Stderr, "%s: exemplar label key %q: multiple exemplarKey declarations (want exactly one)\n", site, key)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lint_metrics: %d violation(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("lint_metrics: ok")
}
