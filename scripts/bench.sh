#!/bin/sh
# Benchmark snapshot: runs the tsdb microbenchmarks plus a short
# instrumented mirasim run, and composes both into BENCH_tsdb.json —
# the machine-readable perf trajectory the roadmap tracks across PRs.
# Usage: scripts/bench.sh [output.json]
set -eu
cd "$(dirname "$0")/.."

out=${1:-BENCH_tsdb.json}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go test -run '^$' -bench . -benchmem -count 1 ./internal/tsdb/ | tee "$tmp/bench.txt"

# Chunked-vs-record contrast: the same full-trace merged replay through the
# batch-columnar surface (BenchmarkEachRecord) and the record-at-a-time
# surface (BenchmarkEachRecordParallel/workers=1), side by side. Both land
# in the JSON snapshot; this line is the human-readable summary.
awk '
	$1 ~ /^BenchmarkEachRecord(-[0-9]+)?$/ { chunked = $3 }
	$1 ~ /^BenchmarkEachRecordParallel\/workers=1(-[0-9]+)?$/ { record = $3 }
	END {
		if (chunked && record)
			printf "bench: merged replay ns/op — chunked %s vs record-at-a-time %s (%.2fx)\n",
				chunked, record, record / chunked
	}
' "$tmp/bench.txt"

# Batched-vs-loop ingest contrast: one 85-tick frame per op, AppendTick
# against the per-record Append loop a pre-batch server ran. The ratio is
# the ingest acceptance the fleet work pins.
awk '
	$1 ~ /^BenchmarkIngestTickLoop(-[0-9]+)?$/ {
		for (i = 3; i < NF; i++) if ($(i + 1) == "ns/record") loop = $i
	}
	$1 ~ /^BenchmarkIngestTickBatch(-[0-9]+)?$/ {
		for (i = 3; i < NF; i++) if ($(i + 1) == "ns/record") batch = $i
	}
	END {
		if (loop && batch)
			printf "bench: tick ingest ns/record — batched %s vs per-record loop %s (%.2fx)\n",
				batch, loop, loop / batch
	}
' "$tmp/bench.txt"

# One simulated week with the observability surface on; its RunReport
# (every counter, gauge, and histogram at exit) is embedded verbatim.
go build -o "$tmp/mirasim" ./cmd/mirasim
"$tmp/mirasim" -start 2014-03-01 -end 2014-03-08 -report "$tmp/report.json" >/dev/null

# go test bench lines look like:
#   BenchmarkAppend-8  3078037  383.8 ns/op  307 B/op  0 allocs/op
# Units seen after the iteration count become JSON fields.
awk '
	/^Benchmark/ {
		printf "%s{\"name\":\"%s\",\"iterations\":%s", sep, $1, $2
		for (i = 3; i < NF; i += 2) {
			unit = $(i + 1)
			gsub("/", "_per_", unit)
			gsub("%", "pct", unit)
			printf ",\"%s\":%s", unit, $i
		}
		printf "}"
		sep = ",\n    "
	}
' "$tmp/bench.txt" >"$tmp/benchmarks.json"

# The campaign dispatcher's per-job protocol overhead — one claim →
# heartbeat → complete round trip over real HTTP, durable completion write
# included — rides with the network snapshot: it lands under
# campaign_benchmarks in BENCH_net.json, preserving miraload's sections.
go test -run '^$' -bench '^BenchmarkClaimCycle$' -benchmem -count 1 ./internal/campaign/ | tee "$tmp/campaign.txt"
go run ./scripts/benchmerge -in "$tmp/campaign.txt" -key campaign_benchmarks -out BENCH_net.json

{
	printf '{\n'
	printf '  "schema": "mira-bench/v1",\n'
	printf '  "generated_at": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "benchmarks": [\n    '
	cat "$tmp/benchmarks.json"
	printf '\n  ],\n'
	printf '  "run_report": '
	sed 's/^/  /' "$tmp/report.json" | sed '1s/^  //'
	printf '\n}\n'
} >"$out"

echo "bench: wrote $out"
