# Tier-1 verification entry point: `make check` runs exactly what CI and
# the roadmap expect before a change lands.
GO ?= go

.PHONY: check vet lint build test race bench bench-net smoke fuzz-smoke

check: vet lint build race fuzz-smoke smoke

vet:
	$(GO) vet ./...

# lint statically rejects metric registrations whose names violate the
# mira_[a-z_]+ namespace rule (the obs registry also panics at runtime),
# span name literals that break [a-z][a-z0-9_.]* or register at more than
# one site, and exemplar label keys other than a single trace_id.
lint:
	$(GO) run scripts/lint_metrics.go

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the tier-1 test gate: the tsdb engine is exercised by a
# concurrent ingest+query test that only means something under -race.
race:
	$(GO) test -race ./...

# smoke is the end-to-end persistence round trip: mirasim -data flushes
# segment files, miraanalyze -data reopens them warm, the figures must match
# the CSV in-memory path, and a corrupted segment must fail descriptively.
smoke:
	./scripts/smoke.sh

# fuzz-smoke gives each fuzz target a short budget: segment parsing, block
# decoding, the network frame parser, the trace-header parser, and the
# campaign job-spec/claim envelopes must reject arbitrary bytes cleanly
# (wrapped sentinel errors for the wire formats, a fresh root trace for
# X-Mira-Trace), never a panic. The go fuzzer runs one target per
# invocation.
fuzz-smoke:
	$(GO) test ./internal/tsdb/ -run '^$$' -fuzz '^FuzzOpenSegment$$' -fuzztime 10s
	$(GO) test ./internal/tsdb/ -run '^$$' -fuzz '^FuzzDecodeBlock$$' -fuzztime 10s
	$(GO) test ./internal/telemetrynet/ -run '^$$' -fuzz '^FuzzDecodeIngestFrame$$' -fuzztime 10s
	$(GO) test ./internal/obs/ -run '^$$' -fuzz '^FuzzParseTraceHeader$$' -fuzztime 10s
	$(GO) test ./internal/telemetrynet/ -run '^$$' -fuzz '^FuzzTraceHeaderHandling$$' -fuzztime 10s
	$(GO) test ./internal/campaign/ -run '^$$' -fuzz '^FuzzDecodeJobSpec$$' -fuzztime 10s
	$(GO) test ./internal/campaign/ -run '^$$' -fuzz '^FuzzParseClaimResponse$$' -fuzztime 10s

# bench reports tsdb ingest throughput, compressed bytes/sample, and
# range-query scan performance, then snapshots the numbers (plus an
# instrumented one-week mirasim RunReport) into BENCH_tsdb.json. The
# campaign dispatcher's claim-cycle benchmark is folded into BENCH_net.json
# alongside the network latency sections.
bench:
	./scripts/bench.sh

# bench-net load-tests the network telemetry service: a miramon -serve
# instance over a simulated two-week store, hammered by miraload's 1000
# concurrent clients. Latency percentiles land in BENCH_net.json.
bench-net:
	./scripts/bench_net.sh
