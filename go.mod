module mira

go 1.22
