package mira

import (
	"math"
	"testing"
	"time"

	"mira/internal/timeutil"
)

// TestStudyFacade exercises the public API end to end on a short window.
func TestStudyFacade(t *testing.T) {
	db := &EnvDB{Downsample: 12}
	study, err := RunStudy(StudyConfig{
		Seed:               5,
		Start:              time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:                time.Date(2016, 10, 1, 0, 0, 0, 0, timeutil.Chicago),
		TelemetryDB:        db,
		LocationFrameEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Error("telemetry DB should receive samples")
	}
	if study.Step() != SampleInterval {
		t.Errorf("default step = %v", study.Step())
	}

	// Every figure method returns sane values on a partial window.
	if fig := study.Fig3CoolantTimeline(); fig.FlowAfterTheta < 1250 {
		t.Errorf("post-Theta flow = %v", fig.FlowAfterTheta)
	}
	if fig := study.Fig6RackPowerUtil(); math.IsNaN(fig.Correlation) {
		t.Error("correlation should be defined")
	}
	if fig := study.Fig10CMFPerYear(); fig.Total == 0 {
		t.Error("the Theta surge window should contain failures")
	}
	if fig := study.Fig12LeadUp(); fig.Windows == 0 {
		t.Error("lead-up windows should be captured")
	}
	if len(study.Incidents()) == 0 || len(study.PositiveWindows()) == 0 {
		t.Error("incidents and positive windows expected")
	}
	if study.Log().Len() == 0 {
		t.Error("RAS log should be populated")
	}

	// Train a predictor through the facade and check it discriminates.
	p, err := study.TrainPredictor(time.Hour, PredictorConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := study.BuildPredictorDataset(time.Hour, 6)
	if err != nil {
		t.Fatal(err)
	}
	conf := p.Evaluate(ds)
	if conf.Accuracy() < 0.8 {
		t.Errorf("facade-trained predictor accuracy = %v", conf.Accuracy())
	}

	// The extension studies run through the facade too.
	loc, err := study.EvaluateLocation(p, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Evaluated == 0 || loc.Top3 <= 0 {
		t.Errorf("location report empty: %+v", loc)
	}
	mit, err := study.EvaluateMitigation(p, MitigationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if mit.SavingsVsPeriodic() <= 0 {
		t.Errorf("mitigation should save compute: %v", mit)
	}
}

func TestEvaluateLocationWithoutFrames(t *testing.T) {
	study, err := RunStudy(StudyConfig{
		Seed:  6,
		Start: time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:   time.Date(2016, 8, 8, 0, 0, 0, 0, timeutil.Chicago),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.EvaluateLocation(nil, 0.9); err == nil {
		t.Error("location evaluation without frames should error")
	}
}

func TestRunStudyEmptyWindow(t *testing.T) {
	_, err := RunStudy(StudyConfig{Seed: 1, Start: ProductionStart, End: ProductionStart})
	if err == nil {
		t.Error("empty window should error")
	}
}

func TestFreeCoolingConstants(t *testing.T) {
	if d := FreeCoolingSavingsPerDay(); math.Abs(d-17820) > 100 {
		t.Errorf("daily savings = %v, want ≈17,820 kWh", d)
	}
	if s := FreeCoolingSavingsPerSeason(); math.Abs(s-2174040) > 13000 {
		t.Errorf("seasonal savings = %v, want ≈2,174,040 kWh", s)
	}
}

func TestProductionConstants(t *testing.T) {
	if ProductionStart.Year() != 2014 || ProductionEnd.Year() != 2020 {
		t.Error("production window constants wrong")
	}
	if SampleInterval != 300*time.Second {
		t.Error("sample interval should be 300 s")
	}
}
