package mira

// The benchmark harness regenerates every figure of the paper's evaluation
// (go test -bench=. -benchmem). Each BenchmarkFigNN benchmark times the
// analysis that produces the figure and reports its headline numbers as
// benchmark metrics, so a bench run doubles as a reproduction record.
//
// A shared full-production-window study (2014–2019, 30-minute step) is
// simulated once per bench binary; use cmd/miraanalyze for the native
// 300-second regeneration.

import (
	"sync"
	"testing"
	"time"

	"mira/internal/core"
	"mira/internal/sim"
	"mira/internal/timeutil"
	"mira/internal/weather"
	"mira/internal/workload"

	"mira/internal/cooling"
	"mira/internal/nn"
	"mira/internal/scheduler"
	"mira/internal/topology"
)

var benchStudy = struct {
	once  sync.Once
	study *Study
	err   error
}{}

// benchSetup simulates the full production window once at a 30-minute step
// (fast enough for a bench binary, fine enough for every figure).
func benchSetup(b *testing.B) *Study {
	b.Helper()
	benchStudy.once.Do(func() {
		benchStudy.study, benchStudy.err = RunStudy(StudyConfig{Seed: 42, Step: 30 * time.Minute})
	})
	if benchStudy.err != nil {
		b.Fatal(benchStudy.err)
	}
	return benchStudy.study
}

func BenchmarkFig02YearlyPowerUtilization(b *testing.B) {
	s := benchSetup(b)
	var fig YearlyTrend
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig2YearlyTrend()
	}
	b.ReportMetric(fig.PowerStartMW, "power2014_MW")
	b.ReportMetric(fig.PowerEndMW, "power2019_MW")
	b.ReportMetric(fig.UtilStartPct, "util2014_pct")
	b.ReportMetric(fig.UtilEndPct, "util2019_pct")
}

func BenchmarkFig03CoolantTimeline(b *testing.B) {
	s := benchSetup(b)
	var fig CoolantTimeline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig3CoolantTimeline()
	}
	b.ReportMetric(fig.FlowBeforeTheta, "flowPre_GPM")
	b.ReportMetric(fig.FlowAfterTheta, "flowPost_GPM")
	b.ReportMetric(fig.InletStd, "inletStd_F")
	b.ReportMetric(fig.OutletStd, "outletStd_F")
}

func BenchmarkFig04MonthlyProfiles(b *testing.B) {
	s := benchSetup(b)
	var fig MonthlyProfile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig4MonthlyProfile()
	}
	b.ReportMetric(fig.SecondHalfPowerGain*100, "H2powerGain_pct")
	b.ReportMetric(fig.SecondHalfUtilGain*100, "H2utilGain_pct")
	b.ReportMetric(fig.WinterInletExcess, "winterInlet_F")
}

func BenchmarkFig05DayOfWeek(b *testing.B) {
	s := benchSetup(b)
	var fig WeekdayProfile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig5WeekdayProfile()
	}
	b.ReportMetric(fig.NonMondayPowerGainPct, "nonMonPower_pct")
	b.ReportMetric(fig.NonMondayUtilGainPct, "nonMonUtil_pct")
	b.ReportMetric(fig.NonMondayOutletGainPct, "nonMonOutlet_pct")
}

func BenchmarkFig06RackPowerUtilization(b *testing.B) {
	s := benchSetup(b)
	var fig RackPowerUtil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig6RackPowerUtil()
	}
	b.ReportMetric(fig.PowerSpreadPct, "powerSpread_pct")
	b.ReportMetric(fig.Correlation, "powerUtilCorr")
}

func BenchmarkFig07RackCoolant(b *testing.B) {
	s := benchSetup(b)
	var fig RackCoolant
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig7RackCoolant()
	}
	b.ReportMetric(fig.FlowSpreadPct, "flowSpread_pct")
	b.ReportMetric(fig.InletSpreadPct, "inletSpread_pct")
	b.ReportMetric(fig.OutletSpreadPct, "outletSpread_pct")
}

func BenchmarkFig08AmbientTimeline(b *testing.B) {
	s := benchSetup(b)
	var fig AmbientTimeline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig8AmbientTimeline()
	}
	b.ReportMetric(fig.TempStd, "tempStd_F")
	b.ReportMetric(fig.HumStd, "humStd_RH")
}

func BenchmarkFig09RackAmbient(b *testing.B) {
	s := benchSetup(b)
	var fig RackAmbient
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig9RackAmbient()
	}
	b.ReportMetric(fig.TempSpreadPct, "tempSpread_pct")
	b.ReportMetric(fig.HumSpreadPct, "humSpread_pct")
}

func BenchmarkFig10CMFPerYear(b *testing.B) {
	s := benchSetup(b)
	var fig CMFPerYear
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig10CMFPerYear()
	}
	b.ReportMetric(float64(fig.Total), "totalCMFs")
	b.ReportMetric(fig.Share2016*100, "share2016_pct")
}

func BenchmarkFig11CMFPerRack(b *testing.B) {
	s := benchSetup(b)
	var fig CMFPerRack
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig11CMFPerRack()
	}
	b.ReportMetric(float64(fig.MaxCount), "maxRackCMFs")
	b.ReportMetric(float64(fig.MinCount), "minRackCMFs")
	b.ReportMetric(fig.CorrUtilization, "corrUtil")
}

func BenchmarkFig12LeadUp(b *testing.B) {
	s := benchSetup(b)
	var fig LeadUp
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig12LeadUp()
	}
	b.ReportMetric(fig.InletMaxDipPct, "inletDip_pct")
	b.ReportMetric(fig.InletFinalPct, "inletSpike_pct")
	b.ReportMetric(fig.OutletMaxDipPct, "outletDip_pct")
}

func BenchmarkFig13Predictor(b *testing.B) {
	s := benchSetup(b)
	// Benchmark one full train+cross-validate cycle at a one-hour lead.
	ds, err := s.BuildPredictorDataset(time.Hour, 9)
	if err != nil {
		b.Fatal(err)
	}
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conf, err := core.CrossValidate(ds, core.Config{Seed: 9}, 5)
		if err != nil {
			b.Fatal(err)
		}
		acc = conf.Accuracy()
	}
	b.ReportMetric(acc, "cvAccuracy1h")
	b.ReportMetric(float64(ds.Len()), "datasetSize")
}

func BenchmarkFig14PostCMF(b *testing.B) {
	s := benchSetup(b)
	var fig PostCMF
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig14PostCMF()
	}
	b.ReportMetric(fig.Rate6vs3, "rate6v3")
	b.ReportMetric(fig.Rate48vs3, "rate48v3")
}

func BenchmarkFig15PostCMFSpatial(b *testing.B) {
	s := benchSetup(b)
	var fig PostCMFSpatial
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = s.Fig15PostCMFSpatial()
	}
	b.ReportMetric(fig.MeanDistance, "meanDistance")
	b.ReportMetric(fig.RandomExpectedDistance, "randomDistance")
}

// ---------------------------------------------------------------------------
// Ablation benches: design choices DESIGN.md calls out.
// ---------------------------------------------------------------------------

// BenchmarkAblationDeltaVsLevelFeatures quantifies the paper's §VI-D claim:
// delta features beat level features at long leads.
func BenchmarkAblationDeltaVsLevelFeatures(b *testing.B) {
	s := benchSetup(b)
	lead := 4 * time.Hour
	deltaDS, err := core.BuildDataset(s.PositiveWindows(), s.NegativeWindows(), s.Step(), lead, core.DeltaFeatures, 21)
	if err != nil {
		b.Fatal(err)
	}
	levelDS, err := core.BuildDataset(s.PositiveWindows(), s.NegativeWindows(), s.Step(), lead, core.LevelFeatures, 21)
	if err != nil {
		b.Fatal(err)
	}
	var dAcc, lAcc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc, err := core.CrossValidate(deltaDS, core.Config{Seed: 22}, 5)
		if err != nil {
			b.Fatal(err)
		}
		lc, err := core.CrossValidate(levelDS, core.Config{Seed: 22}, 5)
		if err != nil {
			b.Fatal(err)
		}
		dAcc, lAcc = dc.Accuracy(), lc.Accuracy()
	}
	b.ReportMetric(dAcc, "deltaAccuracy")
	b.ReportMetric(lAcc, "levelAccuracy")
}

// BenchmarkAblationEconomizer compares annual plant energy with and without
// the waterside economizer.
func BenchmarkAblationEconomizer(b *testing.B) {
	wx := weather.New(3)
	plant := cooling.NewPlant(wx, 4)
	heat := cooling.DesignHeatLoad
	var saved float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saved = 0
		start := time.Date(2015, 1, 1, 0, 0, 0, 0, timeutil.Chicago)
		for ts := start; ts.Before(start.AddDate(1, 0, 0)); ts = ts.Add(time.Hour) {
			chillersOnly := float64(heat)/cooling.ChillerCOP + float64(cooling.PumpTowerPower)
			saved += (chillersOnly - float64(plant.Power(heat, ts))) / 1000
		}
	}
	b.ReportMetric(saved, "annualSavings_kWh")
}

// BenchmarkAblationFlowNetwork compares the rack-flow spread of the blocked
// impedance network against an idealized homogeneous distribution.
func BenchmarkAblationFlowNetwork(b *testing.B) {
	ts := time.Date(2015, 5, 1, 0, 0, 0, 0, timeutil.Chicago)
	net := cooling.NewFlowNetwork(9)
	var spread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi := 1e12, 0.0
		for _, r := range topology.AllRacks() {
			f := float64(net.RackFlow(r, ts))
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		spread = 100 * (hi - lo) / lo
	}
	b.ReportMetric(spread, "blockedSpread_pct")
	b.ReportMetric(0.8, "homogeneousSpread_pct") // measurement noise only
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkSimulatorDay measures raw twin throughput: one simulated day at
// the coolant monitor's native 300 s cadence.
func BenchmarkSimulatorDay(b *testing.B) {
	start := time.Date(2016, 8, 2, 0, 0, 0, 0, timeutil.Chicago)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(sim.Config{Seed: int64(i), Start: start, End: start.AddDate(0, 0, 1)})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerStep measures one scheduler tick on a loaded machine.
func BenchmarkSchedulerStep(b *testing.B) {
	gen := workload.NewGenerator(1)
	sched := scheduler.New(scheduler.Config{Seed: 1})
	now := time.Date(2016, 8, 2, 0, 0, 0, 0, timeutil.Chicago)
	for i := 0; i < 2000; i++ { // warm to steady state
		sched.Submit(gen.Arrivals(now, timeutil.SampleInterval))
		sched.Step(now)
		now = now.Add(timeutil.SampleInterval)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Submit(gen.Arrivals(now, timeutil.SampleInterval))
		sched.Step(now)
		now = now.Add(timeutil.SampleInterval)
	}
}

// BenchmarkPredictorTraining measures one 50-epoch training run of the
// paper's 12-12-6 network.
func BenchmarkPredictorTraining(b *testing.B) {
	s := benchSetup(b)
	ds, err := s.BuildPredictorDataset(time.Hour, 23)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(ds, core.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNInference measures single-sample predictor inference.
func BenchmarkNNInference(b *testing.B) {
	net, err := nn.New(nn.Config{Inputs: 6, Hidden: []int{12, 12, 6}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.01, -0.02, 0.005, 0.03, -0.001, 0.002}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(x)
	}
}

// ---------------------------------------------------------------------------
// Extension benches: the paper's "Opportunity" directions.
// ---------------------------------------------------------------------------

// BenchmarkExtensionMitigation prices prediction-triggered checkpointing
// against periodic checkpointing (paper §VI-B: use the warning to
// checkpoint active jobs).
func BenchmarkExtensionMitigation(b *testing.B) {
	s := benchSetup(b)
	p, err := s.TrainPredictor(time.Hour, PredictorConfig{Seed: 41})
	if err != nil {
		b.Fatal(err)
	}
	var rep MitigationReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = s.EvaluateMitigation(p, MitigationConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.WarnedFraction, "warnedFraction")
	b.ReportMetric(rep.SavingsVsPeriodic(), "savingsVsPeriodic")
}

// BenchmarkExtensionLocationPredictor scores the machine-wide location
// ranking (paper: "predict the location of an impeding CMF from the overall
// coolant telemetry").
func BenchmarkExtensionLocationPredictor(b *testing.B) {
	// Location frames need their own (shorter) run; the shared bench study
	// does not capture them.
	study, err := RunStudy(StudyConfig{
		Seed:               41,
		Start:              time.Date(2016, 6, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:                time.Date(2016, 10, 1, 0, 0, 0, 0, timeutil.Chicago),
		Step:               10 * time.Minute,
		LocationFrameEvery: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	p, err := study.TrainPredictor(time.Hour, PredictorConfig{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	var rep LocationReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = study.EvaluateLocation(p, 0.9)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Top1, "top1")
	b.ReportMetric(rep.Top3, "top3")
	b.ReportMetric(rep.MeanEpicenterRank, "meanRank")
}

// BenchmarkExtensionEfficiencyStudy computes the PUE/economizer summary
// (the paper's "Efficiency Measures").
func BenchmarkExtensionEfficiencyStudy(b *testing.B) {
	s := benchSetup(b)
	var eff Efficiency
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eff = s.EfficiencyStudy(2015)
	}
	b.ReportMetric(eff.MeanPUE, "meanPUE")
	b.ReportMetric(eff.WinterPUE, "winterPUE")
	b.ReportMetric(eff.SummerPUE, "summerPUE")
	b.ReportMetric(eff.EconomizerSavingsKWh/1e6, "savings_GWh")
}
