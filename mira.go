// Package mira is the public API of the Mira liquid-cooling digital twin:
// a mechanistic simulator of the Mira (IBM Blue Gene/Q) supercomputer, its
// Chilled Water Plant, workload, power, ambient environment, and
// coolant-monitor failure behavior, together with the analyses and the
// CMF-prediction pipeline from "Operating Liquid-Cooled Large-Scale
// Systems: Long-Term Monitoring, Reliability Analysis, and Efficiency
// Measures" (HPCA 2021).
//
// The typical workflow is:
//
//	study, err := mira.RunStudy(mira.StudyConfig{Seed: 42})
//	if err != nil { ... }
//	fig2 := study.Fig2YearlyTrend()   // power/utilization trends
//	fig10 := study.Fig10CMFPerYear()  // failure counts
//	points, err := study.Fig13Predictor(mira.PredictorConfig{Seed: 1})
//
// Every figure of the paper's evaluation has a corresponding method, and
// the underlying simulator, telemetry recorders, and predictor pipeline are
// exposed for custom studies.
package mira

import (
	"errors"
	"time"

	"mira/internal/analysis"
	"mira/internal/cooling"
	"mira/internal/core"
	"mira/internal/envdb"
	"mira/internal/mitigation"
	"mira/internal/ras"
	"mira/internal/sensors"
	"mira/internal/sim"
	"mira/internal/timeutil"
	"mira/internal/tsdb"
)

// NewTSDB creates a compressed, concurrent telemetry database with default
// options (30-day partitions, CSV-schema precision, no downsampling).
func NewTSDB() *TSDB { return tsdb.NewStore() }

// Re-exported core types. The aliases make the full simulator and analysis
// surface usable through this package alone.
type (
	// SimConfig configures a raw simulation run.
	SimConfig = sim.Config
	// Simulator is the digital twin.
	Simulator = sim.Simulator
	// Recorder consumes simulation output streams.
	Recorder = sim.Recorder
	// Incident is one counted coolant-monitor failure with its cascade.
	Incident = sim.Incident
	// Window is a trailing slice of one rack's telemetry.
	Window = sim.Window
	// Record is one coolant-monitor sample.
	Record = sensors.Record
	// RASLog is the reliability/availability/serviceability event log.
	RASLog = ras.Log
	// TelemetryStore is the environmental-database surface: both EnvDB and
	// TSDB satisfy it.
	TelemetryStore = envdb.DB
	// EnvDB is the plain slice-backed environmental telemetry database
	// (single goroutine, uncompressed).
	EnvDB = envdb.Store
	// TSDB is the sharded, compressed, concurrent telemetry engine; a full
	// 2014–2019 run fits in memory without lossy downsampling.
	TSDB = tsdb.Store

	// YearlyTrend is Fig. 2. CoolantTimeline is Fig. 3, and so on: one
	// result struct per figure of the paper.
	YearlyTrend     = analysis.YearlyTrend
	CoolantTimeline = analysis.CoolantTimeline
	MonthlyProfile  = analysis.MonthlyProfile
	WeekdayProfile  = analysis.WeekdayProfile
	RackPowerUtil   = analysis.RackPowerUtil
	RackCoolant     = analysis.RackCoolant
	AmbientTimeline = analysis.AmbientTimeline
	RackAmbient     = analysis.RackAmbient
	CMFPerYear      = analysis.CMFPerYear
	Efficiency      = analysis.Efficiency
	CMFPerRack      = analysis.CMFPerRack
	LeadUp          = analysis.LeadUp
	PostCMF         = analysis.PostCMF
	PostCMFSpatial  = analysis.PostCMFSpatial

	// PredictorConfig configures the CMF predictor (Fig. 13).
	PredictorConfig = core.Config
	// LocationReport scores the system-level location predictor.
	LocationReport = core.LocationReport
	// MitigationConfig configures a proactive-mitigation study.
	MitigationConfig = mitigation.Config
	// AvoidController is the online CMF-aware scheduling controller.
	AvoidController = core.AvoidController
	// MitigationReport quantifies prediction-driven checkpointing.
	MitigationReport = mitigation.Report
	// Predictor is a trained CMF classifier.
	Predictor = core.Predictor
	// LeadPoint is one Fig. 13 evaluation point.
	LeadPoint = core.LeadPoint
	// PredictorDataset is a labeled feature matrix.
	PredictorDataset = core.Dataset
)

// errNoLocationFrames reports a location evaluation without frames.
var errNoLocationFrames = errors.New("mira: set StudyConfig.LocationFrameEvery to capture location frames")

// NewSimulator builds a raw simulator for custom studies.
func NewSimulator(cfg SimConfig) *Simulator { return sim.New(cfg) }

// NewAvoidController wires a trained predictor to a simulator's scheduler as
// an online CMF-aware scheduling controller. Attach it with AddRecorder
// before Run:
//
//	s := mira.NewSimulator(mira.SimConfig{Seed: 1})
//	s.AddRecorder(mira.NewAvoidController(predictor, s.Scheduler(), step))
func NewAvoidController(p *Predictor, s *Simulator, step time.Duration) *AvoidController {
	return core.NewAvoidController(p, s.Scheduler(), step)
}

// Production window constants.
var (
	// ProductionStart is 2014-01-01 (local Chicago time).
	ProductionStart = timeutil.ProductionStart
	// ProductionEnd is 2020-01-01 (exclusive).
	ProductionEnd = timeutil.ProductionEnd
)

// SampleInterval is the coolant-monitor cadence (300 s).
const SampleInterval = timeutil.SampleInterval

// StudyConfig configures RunStudy.
type StudyConfig struct {
	// Seed makes the whole study reproducible.
	Seed int64
	// Start and End bound the simulated window (defaults: the full
	// 2014–2019 production window).
	Start, End time.Time
	// Step is the simulation tick (default 300 s; coarser steps run
	// proportionally faster at slightly reduced fidelity).
	Step time.Duration
	// TelemetryDB, when non-nil, receives every coolant-monitor sample.
	// Use &mira.EnvDB{} for the plain slice store or mira.NewTSDB() for
	// the compressed engine that holds full-rate multi-year runs.
	TelemetryDB TelemetryStore
	// LocationFrameEvery, when positive, captures machine-wide feature
	// frames at this cadence for the system-level location predictor.
	// Frames cost ≈48×6 floats each; keep the cadence coarse (≥1 h) or the
	// window short on six-year runs.
	LocationFrameEvery time.Duration
}

// Study is a completed simulation with every analysis attached.
type Study struct {
	cfg       StudyConfig
	simulator *Simulator
	collector *analysis.Collector
	windows   *sim.IncidentWindowRecorder
	location  *core.LocationRecorder
}

// RunStudy simulates the configured window and returns the attached
// analyses.
func RunStudy(cfg StudyConfig) (*Study, error) {
	if cfg.Step <= 0 {
		cfg.Step = SampleInterval
	}
	st := &Study{cfg: cfg, collector: analysis.NewCollector()}
	st.simulator = sim.New(sim.Config{Seed: cfg.Seed, Start: cfg.Start, End: cfg.End, Step: cfg.Step})
	st.simulator.AddRecorder(st.collector)
	windowTicks := int((core.FeatureSpan+6*time.Hour)/cfg.Step) + 1
	st.windows = sim.NewIncidentWindowRecorder(windowTicks, 250, 4000)
	st.simulator.AddRecorder(st.windows)
	if cfg.LocationFrameEvery > 0 {
		every := int(cfg.LocationFrameEvery / cfg.Step)
		if every < 1 {
			every = 1
		}
		st.location = core.NewLocationRecorder(cfg.Step, every)
		st.simulator.AddRecorder(st.location)
	}
	if cfg.TelemetryDB != nil {
		st.simulator.AddRecorder(sim.NewEnvDBRecorder(cfg.TelemetryDB))
	}
	if err := st.simulator.Run(); err != nil {
		return nil, err
	}
	st.collector.Finalize()
	return st, nil
}

// Simulator returns the underlying simulator (log, incidents, scheduler).
func (s *Study) Simulator() *Simulator { return s.simulator }

// Log returns the RAS event log of the run.
func (s *Study) Log() *RASLog { return s.simulator.Log() }

// Incidents returns the counted CMF incidents.
func (s *Study) Incidents() []Incident { return s.simulator.Incidents() }

// PositiveWindows returns the captured pre-CMF telemetry windows.
func (s *Study) PositiveWindows() []Window { return s.windows.Positives() }

// NegativeWindows returns quiet telemetry windows with no CMF within six
// hours of their end.
func (s *Study) NegativeWindows() []Window { return s.windows.Negatives(core.FeatureSpan) }

// Step returns the tick length the study ran at.
func (s *Study) Step() time.Duration { return s.cfg.Step }

// Figure analyses; each reproduces the corresponding paper figure.

// Fig2YearlyTrend is the multi-year power/utilization trend with linear fits.
func (s *Study) Fig2YearlyTrend() YearlyTrend { return s.collector.Fig2YearlyTrend() }

// Fig3CoolantTimeline is the plant flow and coolant temperature timeline.
func (s *Study) Fig3CoolantTimeline() CoolantTimeline { return s.collector.Fig3CoolantTimeline() }

// Fig4MonthlyProfile is the month-of-year profile.
func (s *Study) Fig4MonthlyProfile() MonthlyProfile { return s.collector.Fig4MonthlyProfile() }

// Fig5WeekdayProfile is the day-of-week profile.
func (s *Study) Fig5WeekdayProfile() WeekdayProfile { return s.collector.Fig5WeekdayProfile() }

// Fig6RackPowerUtil is the rack-level power/utilization map.
func (s *Study) Fig6RackPowerUtil() RackPowerUtil { return s.collector.Fig6RackPowerUtil() }

// Fig7RackCoolant is the rack-level coolant map.
func (s *Study) Fig7RackCoolant() RackCoolant { return s.collector.Fig7RackCoolant() }

// Fig8AmbientTimeline is the DC temperature/humidity timeline.
func (s *Study) Fig8AmbientTimeline() AmbientTimeline { return s.collector.Fig8AmbientTimeline() }

// Fig9RackAmbient is the rack-level ambient map.
func (s *Study) Fig9RackAmbient() RackAmbient { return s.collector.Fig9RackAmbient() }

// Fig10CMFPerYear is the yearly CMF count (paper: 361 total, 40% in 2016).
func (s *Study) Fig10CMFPerYear() CMFPerYear { return analysis.Fig10CMFPerYear(s.Log()) }

// Fig11CMFPerRack is the per-rack CMF count and its (lack of) correlations.
func (s *Study) Fig11CMFPerRack() CMFPerRack {
	return analysis.Fig11CMFPerRack(s.Log(), s.collector)
}

// Fig12LeadUp is the pre-failure telemetry signature.
func (s *Study) Fig12LeadUp() LeadUp {
	return analysis.Fig12LeadUp(s.PositiveWindows(), s.Incidents(), s.cfg.Step)
}

// Fig13Predictor trains and cross-validates the CMF predictor across lead
// times from six hours to 30 minutes.
func (s *Study) Fig13Predictor(cfg PredictorConfig) ([]LeadPoint, error) {
	return core.LeadTimeSweep(s.PositiveWindows(), s.NegativeWindows(), s.cfg.Step,
		core.DefaultLeads(), cfg, core.DeltaFeatures)
}

// Fig14PostCMF is the post-CMF failure-rate decay and type mix.
func (s *Study) Fig14PostCMF() PostCMF { return analysis.Fig14PostCMF(s.Log()) }

// Fig15PostCMFSpatial is the spatial distribution of follow-on failures.
func (s *Study) Fig15PostCMFSpatial() PostCMFSpatial {
	return analysis.Fig15PostCMFSpatial(s.Log(), s.Incidents())
}

// EfficiencyStudy computes the facility's monthly PUE and economizer
// savings for a reference year (the paper's "Efficiency Measures").
func (s *Study) EfficiencyStudy(year int) Efficiency {
	return s.collector.EfficiencyStudy(s.cfg.Seed+5, year)
}

// TrainPredictor builds a balanced dataset at the given lead time and
// trains a CMF predictor on it.
func (s *Study) TrainPredictor(lead time.Duration, cfg PredictorConfig) (*Predictor, error) {
	ds, err := core.BuildDataset(s.PositiveWindows(), s.NegativeWindows(), s.cfg.Step, lead, core.DeltaFeatures, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return core.Train(ds, cfg)
}

// BuildPredictorDataset exposes the dataset builder for custom evaluation.
func (s *Study) BuildPredictorDataset(lead time.Duration, seed int64) (PredictorDataset, error) {
	return core.BuildDataset(s.PositiveWindows(), s.NegativeWindows(), s.cfg.Step, lead, core.DeltaFeatures, seed)
}

// EvaluateMitigation replays every incident through the predictor and
// prices the compute lost under no / periodic / prediction-triggered
// checkpointing (the paper's §VI-B opportunity). The config's Predictor and
// Step are filled in when zero.
func (s *Study) EvaluateMitigation(p *Predictor, cfg MitigationConfig) (MitigationReport, error) {
	if cfg.Predictor == nil {
		cfg.Predictor = p
	}
	if cfg.Step <= 0 {
		cfg.Step = s.cfg.Step
	}
	return mitigation.Evaluate(s.Incidents(), s.PositiveWindows(), s.NegativeWindows(), cfg)
}

// EvaluateLocation scores the system-level location predictor (requires
// StudyConfig.LocationFrameEvery > 0 on the run).
func (s *Study) EvaluateLocation(p *Predictor, threshold float64) (LocationReport, error) {
	if s.location == nil {
		return LocationReport{}, errNoLocationFrames
	}
	return core.EvaluateLocation(s.location, p, core.FeatureSpan, 30*time.Minute, threshold)
}

// Free-cooling economics (paper §II): the waterside economizer can save
// 17,820 kWh per day at full displacement, ≈2.17 GWh per December–March
// season.

// FreeCoolingSavingsPerDay is the energy saved per day when the economizer
// covers the full plant load.
func FreeCoolingSavingsPerDay() float64 {
	return float64(cooling.FreeCoolingSavingsPerDay())
}

// FreeCoolingSavingsPerSeason is the energy saved across a December–March
// cold season.
func FreeCoolingSavingsPerSeason() float64 {
	return float64(cooling.FreeCoolingSavingsPerSeason())
}
