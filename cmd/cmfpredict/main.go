// Command cmfpredict trains and evaluates the coolant-monitor-failure
// predictor (the paper's Fig. 13), with optional Bayesian-optimization
// architecture search and the threshold/logistic baselines.
//
// Usage:
//
//	cmfpredict [-seed N] [-start 2016-01-01] [-end 2017-01-01]
//	           [-tune] [-baselines] [-report report.json]
//	           [-log-format text|json]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mira"
	"mira/internal/core"
	"mira/internal/obs"
	"mira/internal/timeutil"
)

func main() {
	var (
		seed       = flag.Int64("seed", 77, "simulation and training seed")
		startStr   = flag.String("start", "2016-01-01", "telemetry window start (failure-dense 2016 by default)")
		endStr     = flag.String("end", "2017-01-01", "telemetry window end")
		tune       = flag.Bool("tune", false, "run Bayesian-optimization architecture search first")
		baselines  = flag.Bool("baselines", false, "also evaluate threshold and logistic baselines")
		location   = flag.Bool("location", false, "evaluate the system-level location predictor")
		mitigation = flag.Bool("mitigation", false, "price prediction-triggered checkpointing")
		reportPath = flag.String("report", "", "write a RunReport metric snapshot (JSON) to this file at exit")
		logFormat  = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	logg := obs.NewLogger(os.Stderr, *logFormat, "cmfpredict")

	start, err := time.ParseInLocation("2006-01-02", *startStr, timeutil.Chicago)
	if err != nil {
		logg.Fatalf("bad -start: %v", err)
	}
	end, err := time.ParseInLocation("2006-01-02", *endStr, timeutil.Chicago)
	if err != nil {
		logg.Fatalf("bad -end: %v", err)
	}

	fmt.Printf("simulating %s .. %s at the coolant monitor's 300 s cadence...\n", *startStr, *endStr)
	studyCfg := mira.StudyConfig{Seed: *seed, Start: start, End: end}
	if *location {
		studyCfg.LocationFrameEvery = time.Hour
	}
	study, err := mira.RunStudy(studyCfg)
	if err != nil {
		logg.Fatalf("%v", err)
	}
	fmt.Printf("captured %d pre-CMF windows and %d quiet windows\n\n",
		len(study.PositiveWindows()), len(study.NegativeWindows()))

	cfg := mira.PredictorConfig{Seed: *seed}
	if *tune {
		ds, err := study.BuildPredictorDataset(time.Hour, *seed)
		if err != nil {
			logg.Fatalf("%v", err)
		}
		fmt.Println("running Bayesian-optimization architecture search...")
		hidden, err := core.TuneArchitecture(ds, core.Config{Seed: *seed, Epochs: 25}, 8)
		if err != nil {
			logg.Fatalf("%v", err)
		}
		fmt.Printf("selected hidden layers: %v (paper default: [12 12 6])\n\n", hidden)
		cfg.Hidden = hidden
	}

	points, err := study.Fig13Predictor(cfg)
	if err != nil {
		logg.Fatalf("%v", err)
	}
	fmt.Println("5-fold cross-validated performance vs lead time (Fig. 13):")
	fmt.Println("lead    accuracy  precision  recall   F1      FPR")
	for _, pt := range points {
		c := pt.Confusion
		fmt.Printf("%-6s  %8.3f  %9.3f  %6.3f  %6.3f  %5.3f\n",
			pt.Lead, c.Accuracy(), c.Precision(), c.Recall(), c.F1(), c.FalsePositiveRate())
	}
	fmt.Println("[paper: ~87% accuracy six hours out rising to ~97% at 30 minutes]")

	if *location || *mitigation {
		predictor, err := study.TrainPredictor(time.Hour, mira.PredictorConfig{Seed: *seed + 10})
		if err != nil {
			logg.Fatalf("%v", err)
		}
		if *location {
			rep, err := study.EvaluateLocation(predictor, 0.9)
			if err != nil {
				logg.Fatalf("%v", err)
			}
			fmt.Println("\nsystem-level location prediction (paper: a stated improvement direction):")
			fmt.Printf("  incidents evaluated: %d\n", rep.Evaluated)
			fmt.Printf("  epicenter top-1 / top-3 accuracy: %.0f%% / %.0f%% (random: 2%% / 6%%)\n", rep.Top1*100, rep.Top3*100)
			fmt.Printf("  mean epicenter rank: %.1f of 48 (random: 24.5)\n", rep.MeanEpicenterRank)
			fmt.Printf("  machine-wide alarm precision: %.0f%% over %d alarm frames\n", rep.FrameAlarmPrecision*100, rep.AlarmFrames)
		}
		if *mitigation {
			rep, err := study.EvaluateMitigation(predictor, mira.MitigationConfig{})
			if err != nil {
				logg.Fatalf("%v", err)
			}
			fmt.Println("\nproactive mitigation (paper §VI-B: checkpoint on warning):")
			fmt.Printf("  incidents: %d; warned ≥30 min ahead: %.0f%%; mean warning: %v\n",
				len(rep.Incidents), rep.WarnedFraction*100, rep.MeanWarningLead.Round(time.Minute))
			fmt.Printf("  lost compute (kilo-node-hours): none=%.0f periodic=%.0f predictive=%.0f (+%.1f checkpoint overhead)\n",
				rep.TotalLostNone, rep.TotalLostPeriodic, rep.TotalLostPredictive, rep.CheckpointOverheadHours)
			fmt.Printf("  net savings vs periodic checkpointing: %.0f%%\n", rep.SavingsVsPeriodic()*100)
		}
	}

	if *baselines {
		fmt.Println("\nbaselines at a 2 h lead:")
		ds, err := study.BuildPredictorDataset(2*time.Hour, *seed+1)
		if err != nil {
			logg.Fatalf("%v", err)
		}
		nnConf, err := core.CrossValidate(ds, core.Config{Seed: *seed + 2}, 5)
		if err != nil {
			logg.Fatalf("%v", err)
		}
		fmt.Printf("  neural network (delta features): %v\n", nnConf)
		thr, err := core.FitThresholdBaseline(ds, 2)
		if err != nil {
			logg.Fatalf("%v", err)
		}
		fmt.Printf("  threshold monitor:                %v\n", thr.Evaluate(ds))
		logit, err := core.TrainLogisticBaseline(ds, core.Config{Seed: *seed + 3})
		if err != nil {
			logg.Fatalf("%v", err)
		}
		fmt.Printf("  logistic regression:              %v\n", logit.Evaluate(ds))

		lvl, err := core.BuildDataset(study.PositiveWindows(), study.NegativeWindows(),
			study.Step(), 4*time.Hour, core.LevelFeatures, *seed+4)
		if err == nil {
			lvlConf, err := core.CrossValidate(lvl, core.Config{Seed: *seed + 5}, 5)
			if err == nil {
				fmt.Printf("  NN on level features (4 h lead): %v\n", lvlConf)
				fmt.Println("  [paper §VI-D: the change in metric values, not their level, carries the signal]")
			}
		}
	}

	if *reportPath != "" {
		if err := obs.WriteRunReport(*reportPath); err != nil {
			logg.Fatalf("-report: %v", err)
		}
		logg.Infof("run report written to %s", *reportPath)
	}
}
