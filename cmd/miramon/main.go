// Command miramon demonstrates live coolant monitoring: it replays a
// simulated window through the coolant monitor's threshold alarms and a
// trained NN early-warning model side by side, showing the early warnings
// the paper's predictor adds over classic threshold monitoring.
//
// Usage:
//
//	miramon [-seed N] [-train-days 120] [-watch-days 45] [-data dir]
//
// With -data, a cold run persists the watched telemetry to segment files;
// a warm run (segments already present) skips the simulation and instead
// replays the persisted telemetry through the threshold monitor and the
// aggregation summary.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"mira"
	"mira/internal/core"
	"mira/internal/sensors"
	"mira/internal/sim"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
	"mira/internal/units"
)

// watcher replays telemetry through threshold checks and the NN predictor.
type watcher struct {
	sim.NopRecorder
	predictor *core.Predictor
	step      time.Duration

	rings    map[topology.RackID][]sensors.Record
	warnings int
	alerts   int
	events   []string
}

func newWatcher(p *core.Predictor, step time.Duration) *watcher {
	return &watcher{predictor: p, step: step, rings: make(map[topology.RackID][]sensors.Record)}
}

func (w *watcher) OnSample(rec sensors.Record) {
	ring := append(w.rings[rec.Rack], rec)
	span := int(core.FeatureSpan/w.step) + 1
	if len(ring) > span {
		ring = ring[len(ring)-span:]
	}
	w.rings[rec.Rack] = ring

	// Classic threshold monitoring.
	if alarms := sensors.DefaultThresholds().Check(rec); len(alarms) > 0 {
		w.warnings++
		if len(w.events) < 400 {
			w.events = append(w.events, fmt.Sprintf("%s THRESHOLD %s", rec.Time.Format("2006-01-02 15:04"), alarms[0].Reason))
		}
	}
	// NN early warning on the trailing six-hour deltas.
	if len(ring) == span {
		if f, err := core.DeltaFeatures(ring, w.step, 0); err == nil {
			if p := w.predictor.Probability(f); p > 0.9 {
				w.alerts++
				if len(w.events) < 400 {
					w.events = append(w.events, fmt.Sprintf("%s NN-EARLY-WARNING rack %v p=%.2f", rec.Time.Format("2006-01-02 15:04"), rec.Rack, p))
				}
			}
		}
	}
}

func (w *watcher) OnIncident(inc sim.Incident) {
	if len(w.events) < 400 {
		w.events = append(w.events, fmt.Sprintf("%s *** CMF at %v, %d racks down, %d jobs killed ***",
			inc.Time.Format("2006-01-02 15:04"), inc.Epicenter, len(inc.Racks), inc.JobsKilled))
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("miramon: ")
	var (
		seed      = flag.Int64("seed", 99, "seed")
		trainDays = flag.Int("train-days", 150, "days of telemetry to train the early-warning model on")
		watchDays = flag.Int("watch-days", 45, "days of telemetry to monitor")
		dataDir   = flag.String("data", "", "persist watched telemetry to segment files; on a warm open, replay them instead of simulating")
	)
	flag.Parse()

	if *dataDir != "" {
		db, err := tsdb.Open(*dataDir, tsdb.Options{})
		if err == nil {
			replayAudit(db, *dataDir)
			return
		}
		if !errors.Is(err, tsdb.ErrNoData) {
			log.Fatal(err)
		}
		// Cold start: run the live demo below and persist at the end.
	}

	// Train on a failure-dense 2016 stretch.
	trainStart := time.Date(2016, 6, 1, 0, 0, 0, 0, timeutil.Chicago)
	trainEnd := trainStart.AddDate(0, 0, *trainDays)
	fmt.Printf("training the early-warning model on %d simulated days...\n", *trainDays)
	study, err := mira.RunStudy(mira.StudyConfig{Seed: *seed, Start: trainStart, End: trainEnd})
	if err != nil {
		log.Fatal(err)
	}
	predictor, err := study.TrainPredictor(time.Hour, mira.PredictorConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d pre-CMF and %d quiet windows\n\n", len(study.PositiveWindows()), len(study.NegativeWindows()))

	// Watch a later window live.
	watchStart := trainEnd
	watchEnd := watchStart.AddDate(0, 0, *watchDays)
	fmt.Printf("monitoring %s .. %s...\n\n", watchStart.Format("2006-01-02"), watchEnd.Format("2006-01-02"))
	w := newWatcher(predictor, timeutil.SampleInterval)
	s := sim.New(sim.Config{Seed: *seed, Start: trainStart, End: watchEnd})
	// Replay includes the training period for scheduler continuity; only
	// report the watch window.
	w2 := &gate{inner: w, from: watchStart}
	s.AddRecorder(w2)
	// Keep the watched telemetry queryable in the compressed store so the
	// summary can aggregate it without re-running the simulation.
	db := tsdb.NewStore()
	dbRec := sim.NewEnvDBRecorder(db)
	s.AddRecorder(&gate{inner: dbRec, from: watchStart})
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	if dbRec.Err != nil {
		log.Fatalf("telemetry recording: %v", dbRec.Err)
	}

	for _, e := range w.events {
		fmt.Println(e)
	}
	fmt.Printf("\nsummary: %d threshold alarms, %d NN early warnings, %d CMF incidents\n",
		w.warnings, w.alerts, len(s.Incidents()))
	fmt.Println("threshold alarms fire when limits are already crossed; the NN flags the")
	fmt.Println("characteristic telemetry *changes* hours earlier (paper §VI-D).")

	db.SealAll()
	st := db.Stats()
	fmt.Printf("\ntelemetry retained: %d samples, %.2f MiB compressed (%.2f B/sample)\n",
		db.Len(), float64(st.SealedBytes)/(1<<20), st.BytesPerSample)
	hot := topology.RackID{Row: 1, Col: 8} // the paper's humidity hotspot
	fmt.Printf("rack %v inlet °F by week (min / mean / max, aggregation pushdown):\n", hot)
	for _, agg := range db.Aggregate(hot, sensors.MetricInletTemp, watchStart, watchEnd, 7*24*time.Hour) {
		if agg.Count == 0 {
			continue
		}
		fmt.Printf("  wk %s  %6.2f / %6.2f / %6.2f\n", agg.Start.Format("2006-01-02"), agg.Min, agg.Mean(), agg.Max)
	}

	if *dataDir != "" {
		if err := db.Flush(*dataDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwatched telemetry persisted to %s (%.1f MiB on disk); rerun with -data to replay without simulating\n",
			*dataDir, float64(db.Stats().DiskBytes)/(1<<20))
	}
}

// replayAudit is the warm-start path: no simulation, no NN (the model
// trains on simulated incidents) — just classic threshold monitoring and
// the aggregation pushdown summary over the persisted telemetry.
func replayAudit(db *tsdb.Store, dir string) {
	first, last, ok := db.Bounds()
	if !ok {
		log.Fatalf("store under %s is empty", dir)
	}
	st := db.Stats()
	fmt.Printf("warm start: replaying %d persisted samples from %s (%.1f MiB on disk)\n",
		db.Len(), dir, float64(st.DiskBytes)/(1<<20))
	fmt.Printf("window: %s .. %s\n\n", first.Format("2006-01-02 15:04"), last.Format("2006-01-02 15:04"))

	thresholds := sensors.DefaultThresholds()
	warnings := 0
	db.EachRecord(func(r sensors.Record) {
		if len(thresholds.Check(r)) > 0 {
			warnings++
		}
	})
	fmt.Printf("threshold alarms over the stored window: %d\n", warnings)
	fmt.Println("(NN early warnings need a live run: the model trains on simulated incidents)")

	hot := topology.RackID{Row: 1, Col: 8} // the paper's humidity hotspot
	fmt.Printf("\nrack %v inlet °F by week (min / mean / max, aggregation pushdown):\n", hot)
	for _, agg := range db.Aggregate(hot, sensors.MetricInletTemp, first, last.Add(time.Nanosecond), 7*24*time.Hour) {
		if agg.Count == 0 {
			continue
		}
		fmt.Printf("  wk %s  %6.2f / %6.2f / %6.2f\n", agg.Start.Format("2006-01-02"), agg.Min, agg.Mean(), agg.Max)
	}
}

// gate forwards recorder callbacks only after a cutoff time.
type gate struct {
	sim.NopRecorder
	inner sim.Recorder
	from  time.Time
}

func (g *gate) OnSample(rec sensors.Record) {
	if !rec.Time.Before(g.from) {
		g.inner.OnSample(rec)
	}
}

func (g *gate) OnTick(t time.Time, p units.Watts, u float64) {
	if !t.Before(g.from) {
		g.inner.OnTick(t, p, u)
	}
}

func (g *gate) OnIncident(inc sim.Incident) {
	if !inc.Time.Before(g.from) {
		g.inner.OnIncident(inc)
	}
}
