// Command miramon demonstrates live coolant monitoring: it replays a
// simulated window through the coolant monitor's threshold alarms and a
// trained NN early-warning model side by side, showing the early warnings
// the paper's predictor adds over classic threshold monitoring.
//
// Usage:
//
//	miramon [-seed N] [-train-days 120] [-watch-days 45] [-data dir]
//	        [-retention 0] [-compact-interval 1h] [-listen :8080] [-serve]
//	        [-halls 1] [-racks 48] [-audit-interval 1m]
//	        [-scan-mode chunked|record] [-report report.json]
//	        [-log-format text|json]
//
// With -data, a cold run persists the watched telemetry to segment files;
// a warm run (segments already present) skips the simulation and instead
// replays the persisted telemetry through the threshold monitor and the
// aggregation summary. -retention bounds the full-rate hot window: records
// older than it are folded on disk into 1-hour downsampled windows, once
// at startup and — when the process stays up with -listen — every
// -compact-interval in the background.
//
// -listen turns miramon into a long-running monitor: /metrics, /healthz,
// and /debug/pprof serve from startup, and after the demo finishes the
// process stays up so the final counters remain scrapeable. If the -data
// store is corrupt, a listening miramon reports 503 on /healthz and keeps
// serving instead of exiting. A listening miramon shuts down gracefully on
// SIGINT/SIGTERM: in-flight requests drain, the -data store is flushed,
// and — with -retention — a final compaction runs before exit.
//
// -serve (requires -listen and -data) skips the demo and runs miramon as a
// telemetry server: the store under -data (created empty if absent) is
// exposed through the telemetrynet ingest and query API on the same
// listener as /metrics, remote mirasim processes push records into it
// (mirasim -push), remote analyses query it (miraanalyze -remote), and a
// background auditor threshold-checks newly ingested records every
// -audit-interval. -halls/-racks size the store for a multi-hall fleet:
// one serving miramon holds every hall's racks as separate shards,
// exposes per-hall sample gauges on /metrics, and the auditor's scan
// fans out across all halls.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mira"
	"mira/internal/analysis"
	"mira/internal/core"
	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/sim"
	"mira/internal/telemetrynet"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
	"mira/internal/units"
)

var (
	metAuditRuns = obs.NewCounter("mira_mon_audit_runs_total",
		"incremental threshold-audit passes over the store")
	metAuditRecords = obs.NewCounter("mira_mon_audit_records_total",
		"raw records threshold-checked by the incremental auditor")
	metAuditAlarms = obs.NewCounter("mira_mon_audit_alarms_total",
		"threshold alarms raised by the incremental auditor")
)

// watcher replays telemetry through threshold checks and the NN predictor.
type watcher struct {
	sim.NopRecorder
	predictor *core.Predictor
	step      time.Duration
	logg      *obs.Logger

	rings    map[topology.RackID][]sensors.Record
	warnings int
	alerts   int
	events   []string
}

func newWatcher(p *core.Predictor, step time.Duration, logg *obs.Logger) *watcher {
	return &watcher{predictor: p, step: step, logg: logg, rings: make(map[topology.RackID][]sensors.Record)}
}

func (w *watcher) OnSample(rec sensors.Record) {
	ring := append(w.rings[rec.Rack], rec)
	span := int(core.FeatureSpan/w.step) + 1
	if len(ring) > span {
		ring = ring[len(ring)-span:]
	}
	w.rings[rec.Rack] = ring

	// Classic threshold monitoring.
	if alarms := sensors.DefaultThresholds().Check(rec); len(alarms) > 0 {
		w.warnings++
		w.logg.Debugf("%s threshold alarm: %s", rec.Time.Format("2006-01-02 15:04"), alarms[0].Reason)
		if len(w.events) < 400 {
			w.events = append(w.events, fmt.Sprintf("%s THRESHOLD %s", rec.Time.Format("2006-01-02 15:04"), alarms[0].Reason))
		}
	}
	// NN early warning on the trailing six-hour deltas.
	if len(ring) == span {
		if f, err := core.DeltaFeatures(ring, w.step, 0); err == nil {
			if p := w.predictor.Probability(f); p > 0.9 {
				w.alerts++
				w.logg.Warnf("%s NN early warning: rack %v p=%.2f", rec.Time.Format("2006-01-02 15:04"), rec.Rack, p)
				if len(w.events) < 400 {
					w.events = append(w.events, fmt.Sprintf("%s NN-EARLY-WARNING rack %v p=%.2f", rec.Time.Format("2006-01-02 15:04"), rec.Rack, p))
				}
			}
		}
	}
}

func (w *watcher) OnIncident(inc sim.Incident) {
	w.logg.Warnf("%s CMF at %v: %d racks down, %d jobs killed",
		inc.Time.Format("2006-01-02 15:04"), inc.Epicenter, len(inc.Racks), inc.JobsKilled)
	if len(w.events) < 400 {
		w.events = append(w.events, fmt.Sprintf("%s *** CMF at %v, %d racks down, %d jobs killed ***",
			inc.Time.Format("2006-01-02 15:04"), inc.Epicenter, len(inc.Racks), inc.JobsKilled))
	}
}

func main() {
	var (
		seed        = flag.Int64("seed", 99, "seed")
		trainDays   = flag.Int("train-days", 150, "days of telemetry to train the early-warning model on")
		watchDays   = flag.Int("watch-days", 45, "days of telemetry to monitor")
		dataDir     = flag.String("data", "", "persist watched telemetry to segment files; on a warm open, replay them instead of simulating")
		retention   = flag.Duration("retention", 0, "hot-window length for the -data store: fold older records into 1-hour downsampled windows on disk (0 = keep everything full-rate)")
		compactEach = flag.Duration("compact-interval", time.Hour, "how often a listening monitor re-runs retention compaction in the background (requires -retention and -listen)")
		listen      = flag.String("listen", "", "serve /metrics, /healthz, and pprof on this address and stay up after the demo (e.g. :8080)")
		serve       = flag.Bool("serve", false, "run as a telemetry server: expose the -data store through the telemetrynet ingest/query API on -listen instead of running the demo")
		halls       = flag.Int("halls", 1, "machine halls the -data store is sized for; >1 shards the store per hall and persists per-hall segment directories")
		racks       = flag.Int("racks", topology.NumRacks, "racks per hall (1..48)")
		auditEach   = flag.Duration("audit-interval", time.Minute, "how often a listening monitor threshold-audits records newer than the last audited timestamp")
		reportPath  = flag.String("report", "", "write a RunReport metric snapshot (JSON) to this file at exit")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
		scanWorkers = flag.Int("scan-workers", 0, "decode workers for parallel store scans (0 = GOMAXPROCS)")
		scanMode    = flag.String("scan-mode", "chunked", "merged-scan surface for the analysis summary: chunked (batch-columnar) or record (record-at-a-time)")
		slowQuery   = flag.Duration("slow-query", 0, "log telemetry API requests at or over this duration as JSON slow-query lines on stderr, and always keep their traces at /debug/traces (0 = disabled)")
		traceSample = flag.Float64("trace-sample", 1, "head-sampling ratio for request traces at /debug/traces, 0..1; slow requests are kept regardless")
	)
	flag.Parse()
	logg := obs.NewLogger(os.Stderr, *logFormat, "miramon")

	tcfg := obs.TracerConfig{SampleRatio: *traceSample, NoSample: *traceSample <= 0}
	if *slowQuery > 0 {
		// One threshold drives both surfaces: the slow-query log and the
		// tracer's always-keep-slow policy.
		tcfg.SlowSpan = *slowQuery
	}
	obs.ConfigureTracer(tcfg)

	scan := analysis.CollectOptions{Workers: *scanWorkers}
	switch *scanMode {
	case "chunked":
	case "record":
		scan.ForceRecords = true
	default:
		logg.Fatalf("-scan-mode %q: want chunked or record", *scanMode)
	}

	if *serve && (*listen == "" || *dataDir == "") {
		logg.Fatalf("-serve requires both -listen and -data")
	}
	if *halls < 1 || *halls > topology.MaxHalls {
		logg.Fatalf("bad -halls %d: want 1..%d", *halls, topology.MaxHalls)
	}
	if *racks < 1 || *racks > topology.NumRacks {
		logg.Fatalf("bad -racks %d: want 1..%d", *racks, topology.NumRacks)
	}
	fleet := topology.Fleet{Halls: *halls, Racks: *racks}.Norm()

	// serveHTTP starts the shared listener: the obs surface, plus — with
	// -serve — the telemetry API mounted on the same mux.
	var httpSrv *obs.HTTPServer
	serveHTTP := func(db envdb.DB) {
		if *listen == "" {
			return
		}
		var mount func(*http.ServeMux)
		if *serve && db != nil {
			mount = telemetrynet.NewServer(db, telemetrynet.ServerOptions{
				ScanWorkers: *scanWorkers,
				SlowQuery:   *slowQuery,
			}).Mount
		}
		srv, err := obs.ServeWith(*listen, mount)
		if err != nil {
			logg.Fatalf("-listen %s: %v", *listen, err)
		}
		httpSrv = srv
		logg.Infof("serving /metrics, /healthz, and /debug/pprof on %s", srv.Addr())
		if mount != nil {
			logg.Infof("telemetry API on %s", srv.Addr())
		}
	}

	if *serve {
		db, err := tsdb.Open(*dataDir, tsdb.Options{Retention: *retention, Fleet: fleet})
		switch {
		case errors.Is(err, tsdb.ErrNoData):
			logg.Infof("no segments under %s; serving an empty store", *dataDir)
			db = tsdb.NewStoreWith(tsdb.Options{Retention: *retention, Fleet: fleet})
		case errors.Is(err, tsdb.ErrCorrupt):
			obs.SetHealth(err)
			logg.Errorf("store under %s is corrupt; serving unhealthy: %v", *dataDir, err)
			serveHTTP(nil)
			finish(logg, httpSrv, nil, "", 0, *reportPath)
			return
		case err != nil:
			logg.Fatalf("%v", err)
		}
		db.ExposeGauges(nil)
		serveHTTP(db)
		compactOnce(db, *dataDir, *retention, logg)
		aud := newAuditor(db, *scanWorkers)
		if recs, alarms, _, err := aud.runOnce(); err != nil {
			logg.Fatalf("initial audit: %v", err)
		} else {
			logg.Infof("serving %d stored records (%d threshold alarms on the initial audit)", db.Len(), alarms)
			_ = recs
		}
		startCompactor(db, *dataDir, *retention, *compactEach, *listen, logg)
		aud.startLoop(*auditEach, logg)
		finish(logg, httpSrv, db, *dataDir, *retention, *reportPath)
		return
	}

	serveHTTP(nil)

	if *dataDir != "" {
		db, err := tsdb.Open(*dataDir, tsdb.Options{Retention: *retention, Fleet: fleet})
		switch {
		case err == nil:
			db.ExposeGauges(nil)
			compactOnce(db, *dataDir, *retention, logg)
			aud := replayAudit(db, *dataDir, scan, logg)
			startCompactor(db, *dataDir, *retention, *compactEach, *listen, logg)
			if *listen != "" {
				aud.startLoop(*auditEach, logg)
			}
			finish(logg, httpSrv, db, *dataDir, *retention, *reportPath)
			return
		case errors.Is(err, tsdb.ErrCorrupt) && *listen != "":
			// A long-running monitor should surface corruption on
			// /healthz, not die: scrapers see the 503 and the error text.
			obs.SetHealth(err)
			logg.Errorf("store under %s is corrupt; serving unhealthy: %v", *dataDir, err)
			finish(logg, httpSrv, nil, "", 0, *reportPath)
			return
		case !errors.Is(err, tsdb.ErrNoData):
			logg.Fatalf("%v", err)
		}
		// Cold start: run the live demo below and persist at the end.
	}

	// Train on a failure-dense 2016 stretch.
	trainStart := time.Date(2016, 6, 1, 0, 0, 0, 0, timeutil.Chicago)
	trainEnd := trainStart.AddDate(0, 0, *trainDays)
	fmt.Printf("training the early-warning model on %d simulated days...\n", *trainDays)
	study, err := mira.RunStudy(mira.StudyConfig{Seed: *seed, Start: trainStart, End: trainEnd})
	if err != nil {
		logg.Fatalf("%v", err)
	}
	predictor, err := study.TrainPredictor(time.Hour, mira.PredictorConfig{Seed: *seed})
	if err != nil {
		logg.Fatalf("%v", err)
	}
	fmt.Printf("trained on %d pre-CMF and %d quiet windows\n\n", len(study.PositiveWindows()), len(study.NegativeWindows()))

	// Watch a later window live.
	watchStart := trainEnd
	watchEnd := watchStart.AddDate(0, 0, *watchDays)
	fmt.Printf("monitoring %s .. %s...\n\n", watchStart.Format("2006-01-02"), watchEnd.Format("2006-01-02"))
	w := newWatcher(predictor, timeutil.SampleInterval, logg)
	s := sim.New(sim.Config{Seed: *seed, Start: trainStart, End: watchEnd})
	// Replay includes the training period for scheduler continuity; only
	// report the watch window.
	w2 := &gate{inner: w, from: watchStart}
	s.AddRecorder(w2)
	// Keep the watched telemetry queryable in the compressed store so the
	// summary can aggregate it without re-running the simulation. The demo
	// simulates one machine; a wider -halls store just leaves the other
	// halls' shards empty.
	db := tsdb.NewStoreWith(tsdb.Options{Retention: *retention, Fleet: fleet})
	db.ExposeGauges(nil)
	dbRec := sim.NewEnvDBRecorder(db)
	s.AddRecorder(&gate{inner: dbRec, from: watchStart})
	if err := s.Run(); err != nil {
		logg.Fatalf("%v", err)
	}
	if dbRec.Err != nil {
		logg.Fatalf("telemetry recording: %v", dbRec.Err)
	}

	for _, e := range w.events {
		fmt.Println(e)
	}
	fmt.Printf("\nsummary: %d threshold alarms, %d NN early warnings, %d CMF incidents\n",
		w.warnings, w.alerts, len(s.Incidents()))
	fmt.Println("threshold alarms fire when limits are already crossed; the NN flags the")
	fmt.Println("characteristic telemetry *changes* hours earlier (paper §VI-D).")

	db.SealAll()
	st := db.Stats()
	fmt.Printf("\ntelemetry retained: %d samples, %.2f MiB compressed (%.2f B/sample)\n",
		db.Len(), float64(st.SealedBytes)/(1<<20), st.BytesPerSample)
	hot := topology.RackID{Row: 1, Col: 8} // the paper's humidity hotspot
	fmt.Printf("rack %v inlet °F by week (min / mean / max, aggregation pushdown):\n", hot)
	aggs, err := db.Aggregate(hot, sensors.MetricInletTemp, watchStart, watchEnd, 7*24*time.Hour)
	if err != nil {
		logg.Fatalf("aggregate: %v", err)
	}
	for _, agg := range aggs {
		if agg.Count == 0 {
			continue
		}
		fmt.Printf("  wk %s  %6.2f / %6.2f / %6.2f\n", agg.Start.Format("2006-01-02"), agg.Min, agg.Mean(), agg.Max)
	}

	summarizeAnalysis(db, scan)

	if *dataDir != "" {
		if err := db.Flush(*dataDir); err != nil {
			logg.Fatalf("%v", err)
		}
		compactOnce(db, *dataDir, *retention, logg)
		fmt.Printf("\nwatched telemetry persisted to %s (%.1f MiB on disk); rerun with -data to replay without simulating\n",
			*dataDir, float64(db.Stats().DiskBytes)/(1<<20))
		startCompactor(db, *dataDir, *retention, *compactEach, *listen, logg)
	}
	finish(logg, httpSrv, db, *dataDir, *retention, *reportPath)
}

// auditor runs incremental threshold audits: each pass scans only records
// newer than the per-rack high-water mark of the previous pass, so a
// long-running monitor re-checks fresh ingest instead of re-scanning the
// whole store every interval.
type auditor struct {
	db         *tsdb.Store
	fleet      topology.Fleet
	workers    int
	thresholds sensors.Thresholds

	mu    sync.Mutex
	lastN []int64 // newest audited UnixNano per fleet rack (GlobalIndex order)
}

func newAuditor(db *tsdb.Store, workers int) *auditor {
	fleet := db.Fleet()
	return &auditor{
		db:         db,
		fleet:      fleet,
		workers:    workers,
		thresholds: sensors.DefaultThresholds(),
		lastN:      make([]int64, fleet.NumRacks()),
	}
}

// runOnce audits everything newer than the watermarks and advances them,
// returning the fresh raw records checked, the alarms among them, and the
// downsampled windows skipped (hourly means would hide the excursions
// compaction averaged away, so only raw records are threshold-checked).
func (a *auditor) runOnce() (records, alarms, coldWindows int, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, last, ok := a.db.Bounds()
	if !ok {
		return 0, 0, 0, nil
	}
	oldest := a.lastN[0]
	for _, n := range a.lastN[1:] {
		if n < oldest {
			oldest = n
		}
	}
	// Racks advance at different rates (one pusher per rack group), so the
	// scan starts at the stalest rack's watermark and per-rack skips below
	// drop the records faster racks already audited. ScanShards fans out
	// across every hall's shards, so one pass audits the whole fleet.
	it := tsdb.MergeByTime(a.db.ScanShards(time.Unix(0, oldest+1), last.Add(time.Nanosecond), a.workers))
	defer it.Close()
	for it.Next() {
		r := it.Record()
		idx := a.fleet.GlobalIndex(r.Rack)
		n := r.Time.UnixNano()
		if n <= a.lastN[idx] {
			continue
		}
		a.lastN[idx] = n
		if it.Tier() != envdb.TierRaw {
			coldWindows++
			continue
		}
		records++
		if len(a.thresholds.Check(r)) > 0 {
			alarms++
		}
	}
	if err := it.Err(); err != nil {
		return records, alarms, coldWindows, err
	}
	metAuditRuns.Inc()
	metAuditRecords.Add(uint64(records))
	metAuditAlarms.Add(uint64(alarms))
	return records, alarms, coldWindows, nil
}

// startLoop re-audits every interval for the life of the process. Errors
// are logged, not fatal: like the compactor, an audit failure must not
// take down the serving surface, and the next tick retries from the same
// watermarks.
func (a *auditor) startLoop(interval time.Duration, logg *obs.Logger) {
	if interval <= 0 {
		return
	}
	logg.Infof("incremental threshold audit every %v", interval)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for range t.C {
			records, alarms, _, err := a.runOnce()
			if err != nil {
				logg.Errorf("threshold audit: %v", err)
				continue
			}
			if alarms > 0 {
				logg.Warnf("threshold audit: %d alarms across %d new records", alarms, records)
			}
		}
	}()
}

// compactOnce runs one retention compaction against the persisted store
// and reports what it folded; a no-op without -retention.
func compactOnce(db *tsdb.Store, dir string, retention time.Duration, logg *obs.Logger) {
	if retention <= 0 {
		return
	}
	cs, err := db.Compact(dir)
	if err != nil {
		logg.Fatalf("retention compaction: %v", err)
	}
	if cs.Windows > 0 {
		fmt.Printf("compacted %d raw records into %d downsampled windows (%.1fx on-disk reduction for the compacted range)\n",
			cs.SourceRecords, cs.Windows, cs.Reduction())
	}
}

// startCompactor re-runs retention compaction every interval for as long
// as the process serves /metrics — the long-running half of the retention
// story. Compaction errors are logged, not fatal: a monitor should keep
// serving its health and metrics surface even when a compaction pass
// fails, and the next tick retries.
func startCompactor(db *tsdb.Store, dir string, retention, interval time.Duration, listen string, logg *obs.Logger) {
	if retention <= 0 || listen == "" {
		return
	}
	logg.Infof("background retention compaction every %v (hot window %v)", interval, retention)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for range t.C {
			cs, err := db.Compact(dir)
			if err != nil {
				logg.Errorf("retention compaction: %v", err)
				continue
			}
			if cs.Windows > 0 {
				logg.Infof("compacted %d raw records into %d downsampled windows across %d shards",
					cs.SourceRecords, cs.Windows, cs.Shards)
			}
		}
	}()
}

// finish writes the RunReport if requested, then either exits (no -listen)
// or keeps serving until SIGINT/SIGTERM. On a signal the shutdown is
// graceful: the listener drains in-flight requests, then — when a -data
// store is live — buffered records are flushed to segments and, with
// -retention, a final compaction folds anything past the hot window, so
// telemetry ingested right up to the signal survives the restart.
func finish(logg *obs.Logger, srv *obs.HTTPServer, db *tsdb.Store, dataDir string, retention time.Duration, reportPath string) {
	if reportPath != "" {
		if err := obs.WriteRunReport(reportPath); err != nil {
			logg.Fatalf("-report: %v", err)
		}
		logg.Infof("run report written to %s", reportPath)
	}
	if srv == nil {
		return
	}
	logg.Infof("serving on %s (SIGINT/SIGTERM for graceful shutdown)", srv.Addr())
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logg.Infof("%v: shutting down", sig)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logg.Errorf("http shutdown: %v", err)
	}
	if db != nil && dataDir != "" {
		if err := db.Flush(dataDir); err != nil {
			logg.Fatalf("final flush: %v", err)
		}
		if retention > 0 {
			if _, err := db.Compact(dataDir); err != nil {
				logg.Errorf("final compaction: %v", err)
			}
		}
		logg.Infof("store flushed to %s (%d records)", dataDir, db.Len())
	}
	logg.Infof("shutdown complete")
}

// summarizeAnalysis runs the rack-level coolant and ambient figures over
// the store so the analysis-layer metrics (figure durations) are populated
// alongside tsdb and sim series on /metrics and in the RunReport.
func summarizeAnalysis(db *tsdb.Store, scan analysis.CollectOptions) {
	c := analysis.CollectFromStoreOpts(db, scan)
	fig7 := c.Fig7RackCoolant()
	fig9 := c.Fig9RackAmbient()
	fmt.Printf("\nrack spreads over the watch window: flow %.1f%%, inlet %.1f%%, outlet %.1f%%; most humid rack %v\n",
		fig7.FlowSpreadPct, fig7.InletSpreadPct, fig7.OutletSpreadPct, fig9.MaxHumidityRack)
}

// replayAudit is the warm-start path: no simulation, no NN (the model
// trains on simulated incidents) — just classic threshold monitoring and
// the aggregation pushdown summary over the persisted telemetry. The
// returned auditor's watermarks sit at the end of the store, so a
// subsequent audit loop re-checks only newly appended records.
func replayAudit(db *tsdb.Store, dir string, scan analysis.CollectOptions, logg *obs.Logger) *auditor {
	first, last, ok := db.Bounds()
	if !ok {
		logg.Fatalf("store under %s is empty", dir)
	}
	st := db.Stats()
	fmt.Printf("warm start: replaying %d persisted samples from %s (%.1f MiB on disk)\n",
		db.Len(), dir, float64(st.DiskBytes)/(1<<20))
	fmt.Printf("window: %s .. %s\n\n", first.Format("2006-01-02 15:04"), last.Format("2006-01-02 15:04"))

	// The merged scan behind the auditor decodes shards in parallel and —
	// unlike EachRecord — returns decode failures instead of panicking,
	// which suits a replay over disk-loaded segments.
	aud := newAuditor(db, scan.Workers)
	_, warnings, coldWindows, err := aud.runOnce()
	if err != nil {
		logg.Fatalf("scan: %v", err)
	}
	fmt.Printf("threshold alarms over the stored window: %d\n", warnings)
	if coldWindows > 0 {
		fmt.Printf("(%d downsampled windows skipped by the threshold check; aggregates below still cover them)\n", coldWindows)
	}
	fmt.Println("(NN early warnings need a live run: the model trains on simulated incidents)")

	hot := topology.RackID{Row: 1, Col: 8} // the paper's humidity hotspot
	fmt.Printf("\nrack %v inlet °F by week (min / mean / max, aggregation pushdown):\n", hot)
	aggs, err := db.Aggregate(hot, sensors.MetricInletTemp, first, last.Add(time.Nanosecond), 7*24*time.Hour)
	if err != nil {
		logg.Fatalf("aggregate: %v", err)
	}
	for _, agg := range aggs {
		if agg.Count == 0 {
			continue
		}
		fmt.Printf("  wk %s  %6.2f / %6.2f / %6.2f\n", agg.Start.Format("2006-01-02"), agg.Min, agg.Mean(), agg.Max)
	}

	summarizeAnalysis(db, scan)
	return aud
}

// gate forwards recorder callbacks only after a cutoff time.
type gate struct {
	sim.NopRecorder
	inner sim.Recorder
	from  time.Time
}

func (g *gate) OnSample(rec sensors.Record) {
	if !rec.Time.Before(g.from) {
		g.inner.OnSample(rec)
	}
}

func (g *gate) OnTick(t time.Time, p units.Watts, u float64) {
	if !t.Before(g.from) {
		g.inner.OnTick(t, p, u)
	}
}

func (g *gate) OnIncident(inc sim.Incident) {
	if !inc.Time.Before(g.from) {
		g.inner.OnIncident(inc)
	}
}
