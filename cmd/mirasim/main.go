// Command mirasim runs the Mira digital twin over a chosen window and
// exports the coolant-monitor telemetry and RAS failure log.
//
// Usage:
//
//	mirasim [-seed N] [-start 2014-01-01] [-end 2020-01-01] [-step 300s]
//	        [-downsample N] [-partition 720h] [-retention 0] [-data dir]
//	        [-telemetry out.csv] [-ras out.log] [-push http://host:8080]
//
// With no output flags, a run summary is printed to stdout. -data persists
// the compressed telemetry store to per-shard segment files, which
// miraanalyze and miramon reopen with their own -data flag instead of
// re-running the simulation. -retention bounds the full-rate hot window:
// after the run, older records are folded on disk into 1-hour downsampled
// windows (count/sum/min/max per channel) that the query surface still
// answers from. -listen serves /metrics, /healthz, and pprof
// live while the simulation runs; -report snapshots every metric to a JSON
// RunReport at exit.
//
// -push streams the telemetry over the wire to a remote miramon -serve
// instead of a local store: ticks batch into idempotent CRC-checked ingest
// frames as the simulation runs, so the remote store is live (queryable by
// miraanalyze -remote) while the run is still in flight. Local store
// outputs (-data, -telemetry, -retention, -downsample) do not apply.
//
// -worker turns mirasim into a campaign worker: it claims job specs from a
// miradispatch dispatcher at the given base URL, runs each with the real
// simulator under a heartbeated lease, reports the distilled RunResult
// back, and exits once the sweep drains.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mira/internal/campaign"
	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sim"
	"mira/internal/telemetrynet"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
	"mira/internal/workload"
)

func main() {
	var (
		seed       = flag.Int64("seed", 42, "simulation seed")
		startStr   = flag.String("start", "2014-01-01", "window start (YYYY-MM-DD)")
		endStr     = flag.String("end", "2020-01-01", "window end, exclusive (YYYY-MM-DD)")
		step       = flag.Duration("step", timeutil.SampleInterval, "tick length")
		downsample = flag.Int("downsample", 1, "keep 1 of every N telemetry samples (1 = full rate; the compressed tsdb engine holds full six-year runs in memory)")
		partition  = flag.Duration("partition", tsdb.DefaultPartition, "sealed-block partition length of the telemetry store")
		retention  = flag.Duration("retention", 0, "hot-window length: after the run, records older than this (measured from the newest record) are folded into 1-hour downsampled windows (0 = keep everything full-rate)")
		dataDir    = flag.String("data", "", "persist the telemetry store to segment files under this directory")
		telemetry  = flag.String("telemetry", "", "write telemetry CSV to this file")
		rasOut     = flag.String("ras", "", "write the deduplicated failure log to this file")
		push       = flag.String("push", "", "stream telemetry to a remote miramon -serve at this base URL (e.g. http://host:8080) instead of a local store")
		halls      = flag.Int("halls", 1, "machine halls in the simulated fleet; each hall runs its own simulation seeded seed+hall, recorded under that hall's racks")
		racks      = flag.Int("racks", topology.NumRacks, "racks per hall (1..48)")
		listen     = flag.String("listen", "", "serve /metrics, /healthz, and pprof on this address while the run is live (e.g. :8080)")
		reportPath = flag.String("report", "", "write a RunReport metric snapshot (JSON) to this file at exit")
		logFormat  = flag.String("log-format", "text", "diagnostic log format: text or json")
		worker     = flag.String("worker", "", "run as a campaign worker: claim job specs from the miradispatch dispatcher at this base URL and run them until the sweep drains")
	)
	flag.Parse()
	logg := obs.NewLogger(os.Stderr, *logFormat, "mirasim")

	if *worker != "" {
		// Worker mode runs whatever specs the dispatcher hands out; the local
		// run-shaping flags would be silently ignored, so reject them loudly.
		if *push != "" || *dataDir != "" || *telemetry != "" || *rasOut != "" {
			logg.Fatalf("-worker runs dispatcher-provided job specs; it cannot be combined with -push, -data, -telemetry, or -ras")
		}
		runWorker(logg, *worker, *listen, *reportPath)
		return
	}

	start, err := time.ParseInLocation("2006-01-02", *startStr, timeutil.Chicago)
	if err != nil {
		logg.Fatalf("bad -start: %v", err)
	}
	end, err := time.ParseInLocation("2006-01-02", *endStr, timeutil.Chicago)
	if err != nil {
		logg.Fatalf("bad -end: %v", err)
	}

	if *push != "" && (*dataDir != "" || *telemetry != "" || *retention > 0) {
		logg.Fatalf("-push streams to a remote store; it cannot be combined with -data, -telemetry, or -retention")
	}
	if *halls < 1 || *halls > topology.MaxHalls {
		logg.Fatalf("bad -halls %d: want 1..%d", *halls, topology.MaxHalls)
	}
	if *racks < 1 || *racks > topology.NumRacks {
		logg.Fatalf("bad -racks %d: want 1..%d", *racks, topology.NumRacks)
	}
	fleet := topology.Fleet{Halls: *halls, Racks: *racks}.Norm()

	db := tsdb.NewStoreWith(tsdb.Options{Downsample: *downsample, Partition: *partition, Retention: *retention, Fleet: fleet})
	db.ExposeGauges(nil)
	if *listen != "" {
		addr, err := obs.Serve(*listen)
		if err != nil {
			logg.Fatalf("-listen %s: %v", *listen, err)
		}
		logg.Infof("serving /metrics, /healthz, and /debug/pprof on %s", addr)
	}

	var sink envdb.DB = db
	var pushClient *telemetrynet.Client
	var pushSpan *obs.ActiveSpan
	if *push != "" {
		// One root span covers the whole push: every ingest batch becomes a
		// net.client.ingest child carried to the server in X-Mira-Trace, so
		// the full stream reads as a single trace at /debug/traces.
		var pushCtx context.Context
		pushCtx, pushSpan = obs.Span(context.Background(), "sim.push")
		pushClient = telemetrynet.NewClient(*push, telemetrynet.ClientOptions{Context: pushCtx})
		sink = pushClient
		logg.Infof("pushing telemetry to %s", *push)
	}
	// One simulation per hall, seeded seed+hall so the halls decorrelate;
	// hall 0 keeps the exact single-machine run (same seed, same recorder
	// stream) and drives the RAS/figure outputs below.
	began := time.Now()
	var s *sim.Simulator
	for h := 0; h < fleet.Halls; h++ {
		rec := sim.NewEnvDBRecorder(sink)
		hs := sim.New(sim.Config{Seed: *seed + int64(h), Start: start, End: end, Step: *step})
		if fleet.Halls > 1 || fleet.Racks != topology.NumRacks {
			hs.AddRecorder(sim.NewHallRecorder(rec, h, fleet.Racks))
		} else {
			hs.AddRecorder(rec)
		}
		if err := hs.Run(); err != nil {
			logg.Fatalf("hall %d: %v", h, err)
		}
		if rec.Err != nil {
			logg.Fatalf("hall %d telemetry recording: %v", h, rec.Err)
		}
		if h == 0 {
			s = hs
		}
	}
	elapsed := time.Since(began)

	cmfs := s.Log().DedupCMF()
	nonCMF := s.Log().DedupNonCMF()
	if fleet.Halls > 1 {
		fmt.Printf("simulated %d-hall fleet (%d racks), %s .. %s at step %v in %v\n",
			fleet.Halls, fleet.NumRacks(), start.Format("2006-01-02"), end.Format("2006-01-02"), *step, elapsed.Round(time.Millisecond))
		fmt.Printf("RAS and job summaries below cover hall 0\n")
	} else {
		fmt.Printf("simulated %s .. %s at step %v in %v\n", start.Format("2006-01-02"), end.Format("2006-01-02"), *step, elapsed.Round(time.Millisecond))
	}
	if pushClient != nil {
		// The recorder latched per-batch errors above; the tail batch still
		// needs a final flush before the push counters are complete.
		if err := pushClient.Flush(); err != nil {
			logg.Fatalf("push: %v", err)
		}
		pushSpan.End()
		ps := pushClient.Stats()
		remote, err := pushClient.Info()
		if err != nil {
			logg.Fatalf("remote info: %v", err)
		}
		fmt.Printf("telemetry pushed: %d records in %d batches (%d retries, %d deduplicated); remote store holds %d records\n",
			ps.PushedRecords, ps.PushedBatches, ps.Retries, ps.DuplicateBatches, remote.Records)
	} else {
		db.SealAll()
		st := db.Stats()
		fmt.Printf("telemetry samples stored: %d (1 of every %d) in %.1f MiB compressed (%.2f B/record, %.2f B/sample)\n",
			db.Len(), *downsample, float64(st.SealedBytes+st.HeadBytes)/(1<<20), st.BytesPerRecord, st.BytesPerSample)
	}
	fmt.Printf("RAS events logged: %d raw\n", s.Log().Len())
	fmt.Printf("coolant monitor failures (deduplicated): %d across %d incidents\n", len(cmfs), len(s.Incidents()))
	fmt.Printf("non-CMF fatal failures (deduplicated): %d\n", len(nonCMF))
	jobs := s.Scheduler().Stats()
	fmt.Printf("jobs: started=%d completed=%d killed=%d rejected=%d\n", jobs.Started, jobs.Completed, jobs.Killed, jobs.Rejected)
	for _, q := range []workload.Queue{workload.ProdShort, workload.ProdLong, workload.ProdCapability} {
		qs := s.Scheduler().QueueStatsFor(q)
		fmt.Printf("  %-15s started=%6d  mean wait=%5.1fh  mean walltime=%5.1fh\n",
			q, qs.Started, qs.MeanWaitHours(), qs.MeanRunHours())
	}

	if *dataDir != "" {
		if err := db.Flush(*dataDir); err != nil {
			logg.Fatalf("%v", err)
		}
		if *retention > 0 {
			cs, err := db.Compact(*dataDir)
			if err != nil {
				logg.Fatalf("retention compaction: %v", err)
			}
			if cs.Windows > 0 {
				fmt.Printf("compacted %d raw records into %d downsampled windows (%.1fx on-disk reduction for the compacted range)\n",
					cs.SourceRecords, cs.Windows, cs.Reduction())
			}
		}
		fmt.Printf("telemetry persisted to %s (%.1f MiB on disk)\n",
			*dataDir, float64(db.Stats().DiskBytes)/(1<<20))
	}
	if *telemetry != "" {
		f, err := os.Create(*telemetry)
		if err != nil {
			logg.Fatalf("%v", err)
		}
		if err := db.ExportCSV(f); err != nil {
			logg.Fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			logg.Fatalf("%v", err)
		}
		fmt.Printf("telemetry written to %s\n", *telemetry)
	}
	if *rasOut != "" {
		f, err := os.Create(*rasOut)
		if err != nil {
			logg.Fatalf("%v", err)
		}
		for _, e := range append(cmfs, nonCMF...) {
			fmt.Fprintln(f, e)
		}
		if err := f.Close(); err != nil {
			logg.Fatalf("%v", err)
		}
		fmt.Printf("failure log written to %s\n", *rasOut)
	}
	if *reportPath != "" {
		if err := obs.WriteRunReport(*reportPath); err != nil {
			logg.Fatalf("-report: %v", err)
		}
		logg.Infof("run report written to %s", *reportPath)
	}
}

// runWorker claims jobs from a campaign dispatcher and runs them with the
// real simulator until the sweep drains or SIGINT/SIGTERM cancels the loop.
// Each job's telemetry goes to a worker-local store — or the shared remote
// store when the spec sets push — and the distilled RunResult is reported
// back through the idempotent complete protocol.
func runWorker(logg *obs.Logger, url, listen, reportPath string) {
	if listen != "" {
		addr, err := obs.Serve(listen)
		if err != nil {
			logg.Fatalf("-listen %s: %v", listen, err)
		}
		logg.Infof("serving /metrics, /healthz, and /debug/pprof on %s", addr)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	w := campaign.NewWorker(url, campaign.WorkerOptions{Context: ctx, Logger: logg})
	logg.Infof("campaign worker %d polling %s", w.ID(), url)
	if err := w.RunLoop(); err != nil {
		logg.Fatalf("worker %d: %v", w.ID(), err)
	}
	if reportPath != "" {
		if err := obs.WriteRunReport(reportPath); err != nil {
			logg.Fatalf("-report: %v", err)
		}
		logg.Infof("run report written to %s", reportPath)
	}
	logg.Infof("campaign worker %d done: %d completed, %d duplicate", w.ID(), w.Completed, w.Duplicates)
}
