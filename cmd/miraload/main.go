// Command miraload load-tests a telemetry server (miramon -serve): it
// hammers the query API with thousands of concurrent range, series, and
// aggregate requests through the wire-level client and records throughput
// and latency percentiles into a machine-readable JSON snapshot
// (BENCH_net.json by default) — the network-path counterpart of
// scripts/bench.sh's storage benchmarks.
//
// Usage:
//
//	miraload -url http://host:8080 [-clients 1000] [-requests 20000]
//	         [-halls 0] [-racks 0] [-seed 1] [-out BENCH_net.json]
//
// Against a fleet-sized server the request mix draws racks across every
// machine hall the server advertises in /api/v1/info; -halls/-racks
// override that advertisement to focus or widen the load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/telemetrynet"
	"mira/internal/topology"
)

// opNames index the request mix; each worker draws uniformly.
var opNames = []string{"query", "series", "aggregate"}

type sample struct {
	op int
	ms float64
}

// benchOut is the BENCH_net.json schema.
type benchOut struct {
	Schema        string             `json:"schema"`
	GeneratedAt   string             `json:"generated_at"`
	Go            string             `json:"go"`
	URL           string             `json:"url"`
	Clients       int                `json:"clients"`
	Requests      int                `json:"requests"`
	Errors        int                `json:"errors"`
	StoreRecords  int                `json:"store_records"`
	WallSeconds   float64            `json:"wall_seconds"`
	ThroughputRPS float64            `json:"throughput_rps"`
	LatencyMs     latencySummary     `json:"latency_ms"`
	Ops           map[string]opStats `json:"ops"`
}

type latencySummary struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type opStats struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func main() {
	var (
		url         = flag.String("url", "", "base URL of the telemetry server (required, e.g. http://127.0.0.1:8080)")
		clients     = flag.Int("clients", 1000, "concurrent query clients")
		requests    = flag.Int("requests", 20000, "total requests across all clients")
		seed        = flag.Int64("seed", 1, "request-mix seed")
		halls       = flag.Int("halls", 0, "machine halls to spread queries across (0 = what the server advertises)")
		racks       = flag.Int("racks", 0, "racks per hall to draw queries from (0 = what the server advertises)")
		out         = flag.String("out", "BENCH_net.json", "write the JSON latency snapshot to this file")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
		traceSample = flag.Float64("trace-sample", 0.01, "head-sampling ratio for request traces, 0..1; the sampled flag rides X-Mira-Trace, so the server keeps the same subset (plus anything slow)")
	)
	flag.Parse()
	logg := obs.NewLogger(os.Stderr, *logFormat, "miraload")
	obs.ConfigureTracer(obs.TracerConfig{SampleRatio: *traceSample, NoSample: *traceSample <= 0})
	if *url == "" {
		logg.Fatalf("-url is required (start a server with: miramon -serve -listen :8080 -data dir)")
	}
	if *clients < 1 || *requests < 1 {
		logg.Fatalf("-clients and -requests must be positive")
	}
	if *halls < 0 || *halls > topology.MaxHalls {
		logg.Fatalf("bad -halls %d: want 0..%d", *halls, topology.MaxHalls)
	}
	if *racks < 0 || *racks > topology.NumRacks {
		logg.Fatalf("bad -racks %d: want 0..%d", *racks, topology.NumRacks)
	}

	// One shared client, one widened transport: every worker multiplexes
	// over a pool big enough that 1000-way concurrency measures the server,
	// not a starved connection pool on this side.
	hc := &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *clients * 2,
			MaxIdleConnsPerHost: *clients * 2,
			MaxConnsPerHost:     0,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	client := telemetrynet.NewClient(*url, telemetrynet.ClientOptions{HTTPClient: hc})

	info, err := client.Info()
	if err != nil {
		logg.Fatalf("remote %s: %v", *url, err)
	}
	if !info.HasData {
		logg.Fatalf("remote store at %s is empty; push telemetry first (mirasim -push)", *url)
	}
	// The server advertises its fleet shape; pre-fleet servers omit the
	// fields and Norm() falls back to the single 48-rack machine.
	fleet := topology.Fleet{Halls: info.Halls, Racks: info.RacksPerHall}.Norm()
	if *halls > 0 {
		fleet.Halls = *halls
	}
	if *racks > 0 {
		fleet.Racks = *racks
	}
	span := info.LastUnixNano - info.FirstUnixNano + 1
	if fleet.Halls > 1 {
		fmt.Printf("load-testing %s: %d records across %d halls × %d racks, %d clients, %d requests\n",
			*url, info.Records, fleet.Halls, fleet.Racks, *clients, *requests)
	} else {
		fmt.Printf("load-testing %s: %d records, %d clients, %d requests\n", *url, info.Records, *clients, *requests)
	}

	var (
		nextReq  int64
		errCount int64
		wg       sync.WaitGroup
		perWork  = make([][]sample, *clients)
	)
	began := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			mine := make([]sample, 0, *requests / *clients + 1)
			for {
				if atomic.AddInt64(&nextReq, 1) > int64(*requests) {
					break
				}
				op := rng.Intn(len(opNames))
				rack := fleet.RackAt(rng.Intn(fleet.NumRacks()))
				metric := sensors.Metric(rng.Intn(int(sensors.NumMetrics)))
				// Random window up to ~1/8 of the stored span, so range
				// queries stress varied decode amounts.
				winN := span/64 + rng.Int63n(span/8+1)
				fromN := info.FirstUnixNano + rng.Int63n(span)
				from, to := time.Unix(0, fromN), time.Unix(0, fromN+winN)
				start := time.Now()
				err := runOp(client, op, rack, metric, from, to)
				ms := float64(time.Since(start)) / float64(time.Millisecond)
				if err != nil {
					atomic.AddInt64(&errCount, 1)
					continue
				}
				mine = append(mine, sample{op: op, ms: ms})
			}
			perWork[w] = mine
		}(w)
	}
	wg.Wait()
	wall := time.Since(began)

	var all []sample
	for _, s := range perWork {
		all = append(all, s...)
	}
	if len(all) == 0 {
		logg.Fatalf("no requests succeeded (%d errors)", errCount)
	}
	lats := make([]float64, len(all))
	perOp := map[string][]float64{}
	for i, s := range all {
		lats[i] = s.ms
		perOp[opNames[s.op]] = append(perOp[opNames[s.op]], s.ms)
	}
	sort.Float64s(lats)

	res := benchOut{
		Schema:        "mira-bench-net/v1",
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Go:            runtime.Version(),
		URL:           *url,
		Clients:       *clients,
		Requests:      *requests,
		Errors:        int(errCount),
		StoreRecords:  info.Records,
		WallSeconds:   wall.Seconds(),
		ThroughputRPS: float64(len(all)) / wall.Seconds(),
		LatencyMs: latencySummary{
			P50: percentile(lats, 0.50),
			P95: percentile(lats, 0.95),
			P99: percentile(lats, 0.99),
			Max: lats[len(lats)-1],
		},
		Ops: map[string]opStats{},
	}
	for name, ms := range perOp {
		sort.Float64s(ms)
		var sum float64
		for _, v := range ms {
			sum += v
		}
		res.Ops[name] = opStats{Count: len(ms), MeanMs: sum / float64(len(ms)), P99Ms: percentile(ms, 0.99)}
	}

	f, err := os.Create(*out)
	if err != nil {
		logg.Fatalf("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		logg.Fatalf("%v", err)
	}
	if err := f.Close(); err != nil {
		logg.Fatalf("%v", err)
	}

	fmt.Printf("%d requests in %.1fs (%.0f req/s, %d errors)\n", len(all), wall.Seconds(), res.ThroughputRPS, errCount)
	fmt.Printf("latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
		res.LatencyMs.P50, res.LatencyMs.P95, res.LatencyMs.P99, res.LatencyMs.Max)
	for _, name := range opNames {
		if st, ok := res.Ops[name]; ok {
			fmt.Printf("  %-9s %6d reqs  mean %.2f ms  p99 %.2f ms\n", name, st.Count, st.MeanMs, st.P99Ms)
		}
	}
	fmt.Printf("wrote %s\n", *out)
}

// runOp issues one request through the client. The error-free envdb read
// surface panics on transport failure by contract; the recover converts
// that into a counted error so the load test keeps running.
func runOp(c *telemetrynet.Client, op int, rack topology.RackID, m sensors.Metric, from, to time.Time) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	switch op {
	case 0:
		c.Query(rack, from, to)
	case 1:
		c.Series(rack, m, from, to)
	default:
		_, err = c.Aggregate(rack, m, from, to, time.Hour)
	}
	return err
}
