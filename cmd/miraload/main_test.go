package main

import "testing"

// TestPercentile pins the nearest-rank estimator the latency summary is
// built on: rank = round(q*n), clamped to the sample range. The snapshot
// schema (BENCH_net.json) is compared across runs, so the estimator's
// behavior at small n and exact rank boundaries must not drift.
func TestPercentile(t *testing.T) {
	seq := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1) // sorted 1..n, so value == 1-based rank
		}
		return s
	}
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.99, 0},
		{"single_p50", seq(1), 0.50, 1},
		{"single_p99", seq(1), 0.99, 1},
		// n=2: the median rounds down to the first sample, the tail
		// percentile reaches the second.
		{"pair_p50", seq(2), 0.50, 1},
		{"pair_p95", seq(2), 0.95, 2},
		{"pair_p99", seq(2), 0.99, 2},
		// Exact boundary counts: with n=100, q*n lands on an integer rank
		// and must select exactly that sample — no off-by-one into the
		// neighbor.
		{"hundred_p50", seq(100), 0.50, 50},
		{"hundred_p95", seq(100), 0.95, 95},
		{"hundred_p99", seq(100), 0.99, 99},
		{"hundred_p100", seq(100), 1.00, 100},
		// Fractional rank rounds to nearest: 0.995*200 = 199.
		{"twohundred_p995", seq(200), 0.995, 199},
		// q=0 clamps to the first sample rather than indexing before it.
		{"hundred_p0", seq(100), 0, 1},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: percentile(n=%d, q=%g) = %g, want %g",
				tc.name, len(tc.sorted), tc.q, got, tc.want)
		}
	}
}
