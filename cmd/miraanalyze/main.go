// Command miraanalyze regenerates every figure of the paper from a
// simulated six-year run and prints the same rows/series the paper reports.
//
// Usage:
//
//	miraanalyze [-seed N] [-step 15m] [-figure all|2|3|...|15]
//	            [-from out.csv] [-data dir] [-retention 0] [-scan-workers N]
//	            [-scan-mode chunked|record] [-halls 1] [-racks 48] [-hall 0]
//	            [-report report.json] [-log-format text|json]
//
// A full run at -step 15m takes under a minute; -step 300s matches the
// coolant monitor's native cadence and takes a few minutes. -data reopens
// a telemetry store persisted by mirasim (or a previous cold start) and
// regenerates the offline figures without re-running the simulation; if
// the directory holds no segments yet, the simulation runs once and its
// telemetry is persisted there for the next invocation. -retention folds
// records older than the hot window into 1-hour downsampled windows on
// disk; the Fig. 7/9 pushdown figures keep aggregating across both tiers
// exactly, while the replay figures (3/8) cover the hot window.
//
// -remote analyzes a live telemetry server (miramon -serve) instead of a
// local store: the same figures run through the wire-level envdb client,
// with Fig. 7/9 aggregation pushed down to the server — the output is
// bit-identical to analyzing the server's store in-process.
//
// -campaign prints a scenario sweep's comparison table from a miradispatch
// dispatcher: one row per completed job with reliability (CM failures,
// killed jobs) and efficiency (cooling energy, PUE, coolant spread)
// outcomes, plus deltas against the first completed job as baseline.
//
// For a multi-hall fleet store, -halls/-racks size the -data open and
// -hall picks the machine hall the figures describe (the figures are
// per-machine views, so a fleet is analyzed one hall at a time). The
// hall filter is applied identically on the local and remote paths, so
// `-hall 1 -remote ...` still diffs clean against the server-side store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mira"
	"mira/internal/analysis"
	"mira/internal/campaign"
	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/ras"
	"mira/internal/report"
	"mira/internal/sim"
	"mira/internal/telemetrynet"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
)

func main() {
	var (
		seed        = flag.Int64("seed", 42, "simulation seed")
		step        = flag.Duration("step", 15*time.Minute, "simulation tick")
		figure      = flag.String("figure", "all", "which figure to print (1..15, pue, or all)")
		fromCSV     = flag.String("from", "", "analyze an exported telemetry CSV instead of simulating (figures 3/7/8/9 only)")
		dataDir     = flag.String("data", "", "analyze a persisted telemetry store (figures 3/7/8/9; cold start simulates once and persists)")
		remote      = flag.String("remote", "", "analyze a live telemetry server (miramon -serve) at this base URL (figures 3/7/8/9, e.g. http://host:8080)")
		retention   = flag.Duration("retention", 0, "hot-window length for -data stores: fold older records into 1-hour downsampled windows on disk before analyzing (0 = keep everything full-rate)")
		reportPath  = flag.String("report", "", "write a RunReport metric snapshot (JSON) to this file at exit")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
		scanWorkers = flag.Int("scan-workers", 0, "decode workers for parallel store scans on the offline paths (0 = GOMAXPROCS)")
		scanMode    = flag.String("scan-mode", "chunked", "merged-scan surface for the replay figures: chunked (batch-columnar) or record (record-at-a-time)")
		halls       = flag.Int("halls", 1, "machine halls the -data store is sized for")
		racks       = flag.Int("racks", topology.NumRacks, "racks per hall (1..48)")
		hall        = flag.Int("hall", 0, "which machine hall the offline figures describe (fleet stores are analyzed one hall at a time)")
		campaignURL = flag.String("campaign", "", "print the scenario-sweep comparison table from the miradispatch dispatcher at this base URL")
	)
	flag.Parse()
	logg = obs.NewLogger(os.Stderr, *logFormat, "miraanalyze")

	if *campaignURL != "" {
		analyzeCampaign(*campaignURL)
		writeReport(*reportPath)
		return
	}

	if *halls < 1 || *halls > topology.MaxHalls {
		logg.Fatalf("bad -halls %d: want 1..%d", *halls, topology.MaxHalls)
	}
	if *racks < 1 || *racks > topology.NumRacks {
		logg.Fatalf("bad -racks %d: want 1..%d", *racks, topology.NumRacks)
	}
	if *hall < 0 || *hall >= topology.MaxHalls {
		logg.Fatalf("bad -hall %d: want 0..%d", *hall, topology.MaxHalls-1)
	}
	fleet := topology.Fleet{Halls: *halls, Racks: *racks}.Norm()
	if *dataDir != "" && *hall >= fleet.Halls {
		logg.Fatalf("-hall %d outside the %d-hall fleet", *hall, fleet.Halls)
	}

	scan := analysis.CollectOptions{Workers: *scanWorkers, Hall: *hall}
	switch *scanMode {
	case "chunked":
	case "record":
		scan.ForceRecords = true
	default:
		logg.Fatalf("-scan-mode %q: want chunked or record", *scanMode)
	}

	if *remote != "" {
		analyzeRemote(*remote, scan, *figure)
		writeReport(*reportPath)
		return
	}
	if *dataDir != "" {
		analyzeData(*dataDir, *seed, *step, *retention, fleet, scan, *figure)
		writeReport(*reportPath)
		return
	}
	if *fromCSV != "" {
		analyzeOffline(*fromCSV, scan, *figure)
		writeReport(*reportPath)
		return
	}

	fmt.Printf("running the 2014-2019 Mira digital twin (seed %d, step %v)...\n", *seed, *step)
	began := time.Now()
	study, err := mira.RunStudy(mira.StudyConfig{Seed: *seed, Step: *step})
	if err != nil {
		logg.Fatalf("%v", err)
	}
	fmt.Printf("simulation finished in %v\n\n", time.Since(began).Round(time.Second))

	want := func(f string) bool { return *figure == "all" || *figure == f }

	if want("1") {
		printFig1()
	}
	if want("2") {
		printFig2(study)
	}
	if want("3") {
		printFig3(study)
	}
	if want("4") {
		printFig4(study)
	}
	if want("5") {
		printFig5(study)
	}
	if want("6") {
		printFig6(study)
	}
	if want("7") {
		printFig7(study)
	}
	if want("8") {
		printFig8(study)
	}
	if want("9") {
		printFig9(study)
	}
	if want("10") {
		printFig10(study)
	}
	if want("11") {
		printFig11(study)
	}
	if want("12") {
		printFig12(study)
	}
	if want("13") {
		printFig13(study, *seed)
	}
	if want("14") {
		printFig14(study)
	}
	if want("15") {
		printFig15(study)
	}
	if want("pue") || *figure == "all" {
		printEfficiency(study)
	}
	writeReport(*reportPath)
}

// logg is the process-wide diagnostic logger; figure output stays on
// stdout so exported figures remain diffable across provenance paths.
var logg *obs.Logger

// writeReport snapshots every metric to a RunReport JSON file when
// -report is set.
func writeReport(path string) {
	if path == "" {
		return
	}
	if err := obs.WriteRunReport(path); err != nil {
		logg.Fatalf("-report: %v", err)
	}
	logg.Infof("run report written to %s", path)
}

func printEfficiency(s *mira.Study) {
	eff := s.EfficiencyStudy(2015)
	header("Efficiency measures — PUE and economizer savings (reference year 2015)")
	fmt.Println("month  PUE")
	for i, m := range eff.Month {
		fmt.Printf("%5d  %.3f %s\n", m, eff.PUE[i], report.Bar((eff.PUE[i]-1)/0.5, 24))
	}
	fmt.Printf("mean PUE %.3f; winter %.3f vs summer %.3f (free cooling)\n",
		eff.MeanPUE, eff.WinterPUE, eff.SummerPUE)
	fmt.Printf("annual cooling energy: %.2f GWh; economizer savings: %.2f GWh [paper: ~2.17 GWh/season potential]\n",
		eff.CoolingEnergyKWh/1e6, eff.EconomizerSavingsKWh/1e6)
	fmt.Println()
}

// analyzeData regenerates the coolant/ambient figures from a persisted
// telemetry store. A warm open skips the simulation entirely; a cold start
// (no segments yet) simulates once, persists, then analyzes the same
// store — so cold and warm invocations print identical figures. With
// -retention, the store is compacted on disk before analysis: the Fig. 7/9
// pushdown aggregates across raw and downsampled tiers exactly, while the
// replay figures cover the retained hot window.
func analyzeData(dir string, seed int64, step, retention time.Duration, fleet topology.Fleet, scan analysis.CollectOptions, figure string) {
	db, err := tsdb.Open(dir, tsdb.Options{Retention: retention, Fleet: fleet})
	switch {
	case err == nil:
		db.ExposeGauges(nil)
		st := db.Stats()
		fmt.Printf("warm start: loaded %d telemetry records from %s (%.1f MiB on disk)\n",
			db.Len(), dir, float64(st.DiskBytes)/(1<<20))
	case errors.Is(err, tsdb.ErrNoData):
		fmt.Printf("cold start: no segments under %s; simulating 2014-2019 (seed %d, step %v)...\n", dir, seed, step)
		// The cold-start simulation is the paper's single machine; a wider
		// fleet store just leaves the other halls empty until pushed to.
		db = tsdb.NewStoreWith(tsdb.Options{Fleet: fleet})
		db.ExposeGauges(nil)
		rec := sim.NewEnvDBRecorder(db)
		s := sim.New(sim.Config{Seed: seed, Start: timeutil.ProductionStart, End: timeutil.ProductionEnd, Step: step})
		s.AddRecorder(rec)
		if err := s.Run(); err != nil {
			logg.Fatalf("%v", err)
		}
		if rec.Err != nil {
			logg.Fatalf("telemetry recording: %v", rec.Err)
		}
		if err := db.Flush(dir); err != nil {
			logg.Fatalf("%v", err)
		}
		fmt.Printf("persisted %d telemetry records to %s (%.1f MiB on disk)\n",
			db.Len(), dir, float64(db.Stats().DiskBytes)/(1<<20))
	default:
		logg.Fatalf("%v", err)
	}
	if retention > 0 {
		cs, err := db.Compact(dir)
		if err != nil {
			logg.Fatalf("retention compaction: %v", err)
		}
		if cs.Windows > 0 {
			fmt.Printf("compacted %d raw records into %d downsampled windows (%.1fx on-disk reduction for the compacted range)\n",
				cs.SourceRecords, cs.Windows, cs.Reduction())
		}
	}
	fmt.Println()
	analyzeStore(db, scan, figure)
}

// analyzeRemote regenerates the coolant/ambient figures from a live
// telemetry server over the wire. The client satisfies the same envdb
// surfaces as a local store — merged scans stream for the replay figures,
// and the Fig. 7/9 aggregation pushdown runs server-side with results
// carried as raw float64 bits — so the figures diff clean against an
// in-process run over the same store.
func analyzeRemote(url string, scan analysis.CollectOptions, figure string) {
	client := telemetrynet.NewClient(url, telemetrynet.ClientOptions{})
	info, err := client.Info()
	if err != nil {
		logg.Fatalf("remote %s: %v", url, err)
	}
	if !info.HasData {
		logg.Fatalf("remote store at %s is empty; push telemetry first (mirasim -push)", url)
	}
	remoteFleet := topology.Fleet{Halls: info.Halls, Racks: info.RacksPerHall}.Norm()
	if scan.Hall >= remoteFleet.Halls {
		logg.Fatalf("-hall %d outside the remote store's %d-hall fleet", scan.Hall, remoteFleet.Halls)
	}
	first := time.Unix(0, info.FirstUnixNano).In(time.FixedZone("store", int(info.ZoneOffsetSeconds)))
	last := time.Unix(0, info.LastUnixNano).In(first.Location())
	fmt.Printf("remote store at %s: %d records, %s .. %s\n\n",
		url, info.Records, first.Format("2006-01-02 15:04"), last.Format("2006-01-02 15:04"))
	analyzeStore(client, scan, figure)
}

// analyzeCampaign fetches a scenario sweep's completed RunResults from a
// miradispatch dispatcher and prints the comparison table: reliability and
// efficiency outcomes per job, with deltas against the sweep's first
// completed job as the baseline.
func analyzeCampaign(url string) {
	client := campaign.NewClient(url, nil)
	ctx := context.Background()
	jobs, err := client.Status(ctx)
	if err != nil {
		logg.Fatalf("campaign %s: %v", url, err)
	}
	results, err := client.Results(ctx)
	if err != nil {
		logg.Fatalf("campaign %s: %v", url, err)
	}
	fmt.Printf("campaign at %s: %d jobs, %d completed\n\n", url, len(jobs), len(results))
	fmt.Println(campaign.FormatDiffTable(results))
	if len(results) < len(jobs) {
		fmt.Printf("\n%d jobs not yet completed:\n", len(jobs)-len(results))
		for _, j := range jobs {
			if j.State != campaign.StateDone {
				fmt.Printf("  job %d %s: %s\n", j.ID, j.Name, j.State)
			}
		}
	}
}

// analyzeOffline regenerates the coolant/ambient figures from an exported
// telemetry CSV (see cmd/mirasim -telemetry).
func analyzeOffline(path string, scan analysis.CollectOptions, figure string) {
	f, err := os.Open(path)
	if err != nil {
		logg.Fatalf("%v", err)
	}
	defer f.Close()
	db := tsdb.NewStore()
	if err := db.ImportCSV(f); err != nil {
		logg.Fatalf("%v", err)
	}
	db.SealAll()
	db.ExposeGauges(nil)
	st := db.Stats()
	fmt.Printf("loaded %d telemetry records from %s (%.1f MiB compressed, %.2f B/sample)\n\n",
		db.Len(), path, float64(st.SealedBytes)/(1<<20), st.BytesPerSample)
	analyzeStore(db, scan, figure)
}

// analyzeStore prints the offline figures (3/7/8/9) from a telemetry
// database, however it is reached (CSV import, warm segment open, a fresh
// simulation, or a remote server through the telemetrynet client). The
// replay streams the database's merged scan through the collector per the
// scan options (worker count and surface); when only Figs. 7/9 are requested and the
// database can push down, per-rack means come straight from compressed
// columns via aggregation pushdown and the replay is skipped entirely.
func analyzeStore(db envdb.DB, scan analysis.CollectOptions, figure string) {
	want := func(f string) bool { return figure == "all" || figure == f }
	if !want("3") && !want("7") && !want("8") && !want("9") {
		fmt.Printf("figure %s needs utilization or incident data; offline stores carry figures 3, 7, 8, and 9\n", figure)
		return
	}

	// One root span covers the whole figure run, so an analysis against a
	// remote server shows up at /debug/traces (both ends) as a single trace:
	// analyze.run → replay/pushdown → client RPC spans → server handler →
	// tsdb scan/aggregate. The client's Ctx-aware scan and aggregate
	// surfaces carry the trace in X-Mira-Trace.
	ctx, span := obs.Span(context.Background(), "analyze.run")
	defer span.End()
	span.SetAttr("figure", figure)

	if scan.Hall != 0 {
		fmt.Printf("analyzing machine hall %d\n\n", scan.Hall)
	}

	if agg, ok := db.(envdb.Aggregator); ok && !want("3") && !want("8") {
		// Pushdown fast path: Figs. 7 and 9 need only per-rack means, which
		// come exactly (integer-domain sums) from compressed columns of both
		// the raw and downsampled tiers.
		if want("7") {
			fig7, err := analysis.Fig7CoolantPushdownHall(ctx, agg, scan.Hall)
			if err != nil {
				logg.Fatalf("%v", err)
			}
			printOfflineFig7(fig7)
		}
		if want("9") {
			fig9, err := analysis.Fig9AmbientPushdownHall(ctx, agg, scan.Hall)
			if err != nil {
				logg.Fatalf("%v", err)
			}
			printOfflineFig9(fig9)
		}
		return
	}

	c := analysis.CollectFromStoreCtx(ctx, db, scan)

	if want("3") {
		fig3 := c.Fig3CoolantTimeline()
		fig7 := c.Fig7RackCoolant()
		header("Fig. 3 — Coolant timeline (offline)")
		// Downsampled exports thin each tick's rack coverage, so reconstruct
		// the plant flow from the per-rack means instead of per-tick sums.
		var plantFlow float64
		for _, f := range fig7.FlowGPM {
			plantFlow += f
		}
		fmt.Printf("plant flow: %.0f GPM mean; inlet σ %.2f F, outlet σ %.2f F\n",
			plantFlow, fig3.InletStd, fig3.OutletStd)
		fmt.Println()
	}
	if want("7") {
		printOfflineFig7(c.Fig7RackCoolant())
	}
	if want("8") {
		fig8 := c.Fig8AmbientTimeline()
		header("Fig. 8 — Ambient timeline (offline)")
		fmt.Printf("temperature σ %.2f F; humidity σ %.2f RH\n", fig8.TempStd, fig8.HumStd)
		fmt.Println()
	}
	if want("9") {
		printOfflineFig9(c.Fig9RackAmbient())
	}
}

// printOfflineFig7 and printOfflineFig9 are shared by the replay and
// pushdown paths, so `-figure 7` output diffs clean against the full run.
func printOfflineFig7(fig7 analysis.RackCoolant) {
	header("Fig. 7 — Rack coolant (offline)")
	fmt.Printf("spreads: flow %.1f%%, inlet %.1f%%, outlet %.1f%%\n",
		fig7.FlowSpreadPct, fig7.InletSpreadPct, fig7.OutletSpreadPct)
	fmt.Print(report.RackHeatmap(fig7.FlowGPM))
	fmt.Println()
}

func printOfflineFig9(fig9 analysis.RackAmbient) {
	header("Fig. 9 — Rack ambient (offline)")
	fmt.Printf("spreads: temperature %.1f%%, humidity %.1f%%; most humid rack %v\n",
		fig9.TempSpreadPct, fig9.HumSpreadPct, fig9.MaxHumidityRack)
	fmt.Print(report.RackHeatmap(fig9.HumidityRH))
}

func printFig1() {
	header("Fig. 1 — Mira's liquid-cooling design (as modeled)")
	fmt.Print(`
  Chilled Water Plant (CWP)                 TCS machine room
  ┌──────────────────────────┐              ┌─────────────────────────────┐
  │ 2 × 1,500-ton chillers   │  external    │ 48 BG/Q racks (3 rows × 16) │
  │ + waterside economizer   │===loop======>│  ┌─ internal loop per rack  │
  │   (free cooling Dec–Mar) │  ~64°F supply│  │   HX under the floor     │
  │                          │<=============│  └─> outlet ~79°F           │
  └──────────────────────────┘  1250→1300   │ coolant monitor per rack:   │
        Theta joins the loop      GPM       │  temp/humidity/flow/in/out/ │
        July 2016 ──────────────────────────│  power @ 300 s, alarms      │
                                            └─────────────────────────────┘
`)
	fmt.Println()
}

func header(title string) {
	fmt.Printf("%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func printFig2(s *mira.Study) {
	fig := s.Fig2YearlyTrend()
	header("Fig. 2 — Yearly power and utilization trends")
	fmt.Printf("power fit:       %.3f MW (2014) -> %.3f MW (2019)  [paper: ~2.5 -> ~2.9]\n", fig.PowerStartMW, fig.PowerEndMW)
	fmt.Printf("utilization fit: %.1f%% (2014) -> %.1f%% (2019)      [paper: ~80%% -> ~93%%]\n", fig.UtilStartPct, fig.UtilEndPct)
	fmt.Printf("monthly series (%d months):\n", len(fig.YearMonth))
	for i, ym := range fig.YearMonth {
		if ym%100 == 1 { // print January of each year
			fmt.Printf("  %d-01: power=%.3f MW  utilization=%.1f%%\n", ym/100, fig.PowerMW[i], fig.Utilization[i])
		}
	}
	fmt.Printf("power       2014 %s 2019\n", report.Sparkline(fig.PowerMW))
	fmt.Printf("utilization 2014 %s 2019\n", report.Sparkline(fig.Utilization))
	fmt.Println()
}

func printFig3(s *mira.Study) {
	fig := s.Fig3CoolantTimeline()
	header("Fig. 3 — Coolant flow / inlet / outlet timeline")
	fmt.Printf("plant flow: %.0f GPM before Theta -> %.0f GPM after July 2016 [paper: 1250 -> 1300]\n",
		fig.FlowBeforeTheta, fig.FlowAfterTheta)
	fmt.Printf("overall std dev: flow %.1f GPM, inlet %.2f F, outlet %.2f F [paper: 41, 0.61, 0.71]\n",
		fig.FlowStd, fig.InletStd, fig.OutletStd)
	fmt.Printf("flow   2014 %s 2019 (note the July 2016 step)\n", report.Sparkline(fig.FlowGPM))
	fmt.Printf("inlet  2014 %s 2019 (note the Theta bump)\n", report.Sparkline(fig.InletF))
	fmt.Printf("outlet 2014 %s 2019\n", report.Sparkline(fig.OutletF))
	fmt.Println()
}

func printFig4(s *mira.Study) {
	fig := s.Fig4MonthlyProfile()
	header("Fig. 4 — Monthly profiles (medians)")
	fmt.Println("month  power(MW)  util(%)  flow(GPM)  inlet(F)  outlet(F)")
	for i, m := range fig.Month {
		fmt.Printf("%5d  %9.3f  %7.1f  %9.1f  %8.2f  %9.2f\n",
			m, fig.PowerMW[i], fig.Utilization[i], fig.FlowGPM[i], fig.InletF[i], fig.OutletF[i])
	}
	fmt.Printf("H2 vs H1: power +%.1f%%, utilization +%.1f%% [paper: higher H2 due to allocation years]\n",
		fig.SecondHalfPowerGain*100, fig.SecondHalfUtilGain*100)
	fmt.Printf("winter inlet excess: +%.2f F (economizer) | max coolant monthly change: %.2f%% [paper: <1.5%%]\n",
		fig.WinterInletExcess, fig.MaxCoolantChangePct)
	fmt.Println()
}

func printFig5(s *mira.Study) {
	fig := s.Fig5WeekdayProfile()
	header("Fig. 5 — Day-of-week profiles")
	days := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	fmt.Println("day  power(MW)  util(%)  outlet(F)")
	for i, d := range fig.Weekday {
		fmt.Printf("%s  %9.3f  %7.1f  %9.2f\n", days[d], fig.PowerMW[i], fig.Utilization[i], fig.OutletF[i])
	}
	fmt.Printf("non-Monday gains: power +%.1f%% [paper ~6%%], utilization +%.1f%% [paper ~1.5%%], outlet +%.1f%% [paper ~2%%]\n",
		fig.NonMondayPowerGainPct, fig.NonMondayUtilGainPct, fig.NonMondayOutletGainPct)
	fmt.Printf("flow %.2f%% and inlet %.2f%% [paper: no difference]\n", fig.NonMondayFlowGainPct, fig.NonMondayInletGainPct)
	fmt.Println()
}

func printFig6(s *mira.Study) {
	fig := s.Fig6RackPowerUtil()
	header("Fig. 6 — Rack-level power and utilization")
	fmt.Printf("power spread: %.1f%% [paper: up to 15%%], utilization spread: %.1f%%\n", fig.PowerSpreadPct, fig.UtilSpreadPct)
	fmt.Printf("highest power: rack %v [paper: (0,D)]; highest utilization: rack %v [paper: (0,A)]\n",
		fig.MaxPowerRack, fig.MaxUtilRack)
	fmt.Printf("row means: power %.1f / %.1f / %.1f kW; utilization %.1f / %.1f / %.1f %% [paper: row 0 leads]\n",
		fig.RowPowerKW[0], fig.RowPowerKW[1], fig.RowPowerKW[2],
		fig.RowUtilPct[0], fig.RowUtilPct[1], fig.RowUtilPct[2])
	fmt.Printf("power-utilization correlation: %.2f [paper: 0.45]\n", fig.Correlation)
	fmt.Println("rack power heatmap:")
	fmt.Print(report.RackHeatmap(fig.PowerKW))
	fmt.Println("rack utilization heatmap:")
	fmt.Print(report.RackHeatmap(fig.UtilPct))
	fmt.Println()
}

func printFig7(s *mira.Study) {
	fig := s.Fig7RackCoolant()
	header("Fig. 7 — Rack-level coolant metrics")
	fmt.Printf("spreads: flow %.1f%% [paper: 11%%], inlet %.1f%% [paper: ~1%%], outlet %.1f%% [paper: ~3%%]\n",
		fig.FlowSpreadPct, fig.InletSpreadPct, fig.OutletSpreadPct)
	fmt.Println("rack coolant-flow heatmap (under-floor blockages):")
	fmt.Print(report.RackHeatmap(fig.FlowGPM))
	fmt.Println()
}

func printFig8(s *mira.Study) {
	fig := s.Fig8AmbientTimeline()
	header("Fig. 8 — DC ambient temperature and humidity timeline")
	fmt.Printf("temperature: monthly means %.1f..%.1f F, std %.2f [paper: 76-90 F, std 2.48]\n",
		fig.TempMin, fig.TempMax, fig.TempStd)
	fmt.Printf("humidity: monthly means %.1f..%.1f RH, std %.2f [paper: 28-37 RH, std 3.66]\n",
		fig.HumMin, fig.HumMax, fig.HumStd)
	fmt.Printf("summer humidity excess: +%.1f RH [paper: humid summers]\n", fig.SummerHumidityExcess)
	fmt.Printf("temperature 2014 %s 2019\n", report.Sparkline(fig.TempF))
	fmt.Printf("humidity    2014 %s 2019 (seasonal)\n", report.Sparkline(fig.HumidityRH))
	fmt.Println()
}

func printFig9(s *mira.Study) {
	fig := s.Fig9RackAmbient()
	header("Fig. 9 — Rack-level ambient conditions")
	fmt.Printf("spreads: temperature %.1f%% [paper: up to 11%%], humidity %.1f%% [paper: up to 36%%]\n",
		fig.TempSpreadPct, fig.HumSpreadPct)
	fmt.Printf("most humid rack: %v [paper: the (1,8) hotspot]\n", fig.MaxHumidityRack)
	fmt.Printf("row ends: +%.2f F warmer, %.2f RH drier than inner racks\n",
		fig.RowEndTempExcess, fig.RowEndHumidityDeficit)
	fmt.Println("rack humidity heatmap (note the (1,8) hotspot, dry row ends):")
	fmt.Print(report.RackHeatmap(fig.HumidityRH))
	fmt.Println()
}

func printFig10(s *mira.Study) {
	fig := s.Fig10CMFPerYear()
	header("Fig. 10 — Coolant monitor failures per year")
	for i, y := range fig.Years {
		fmt.Printf("  %d: %d\n", y, fig.Counts[i])
	}
	fmt.Printf("total: %d [paper: 361]; 2016 share: %.0f%% [paper: ~40%%]; longest quiet gap: %.0f days [paper: >2 years]\n",
		fig.Total, fig.Share2016*100, fig.QuietGapDays)
	fmt.Println()
}

func printFig11(s *mira.Study) {
	fig := s.Fig11CMFPerRack()
	header("Fig. 11 — Coolant monitor failures per rack")
	for row := 0; row < topology.Rows; row++ {
		fmt.Printf("  row %d:", row)
		for col := 0; col < topology.ColsPerRow; col++ {
			fmt.Printf(" %2d", fig.Counts[topology.RackID{Row: row, Col: col}.Index()])
		}
		fmt.Println()
	}
	fmt.Printf("max: %d at %v [paper: 14 at (1,8)]; min: %d at %v [paper: 5 at (2,7)]\n",
		fig.MaxCount, fig.MaxRack, fig.MinCount, fig.MinRack)
	fmt.Printf("correlations: utilization %.2f [paper: -0.21], outlet %.2f [paper: -0.06], humidity %.2f [paper: 0.06]\n",
		fig.CorrUtilization, fig.CorrOutletTemp, fig.CorrHumidity)
	fmt.Println()
}

func printFig12(s *mira.Study) {
	fig := s.Fig12LeadUp()
	header("Fig. 12 — Telemetry lead-up to a CMF")
	fmt.Printf("windows analyzed: %d\n", fig.Windows)
	fmt.Printf("inlet: max dip %.1f%% [paper: -7%%], final spike %+.1f%% [paper: +8%%]\n",
		fig.InletMaxDipPct, fig.InletFinalPct)
	fmt.Printf("outlet: max dip %.1f%% [paper: -5%%]\n", fig.OutletMaxDipPct)
	fmt.Printf("flow: stable until %.1f h out, final change %.1f%% [paper: stable until ~30 min]\n",
		fig.FlowStableUntilH, fig.FlowFinalPct)
	if len(fig.LeadHours) > 0 {
		fmt.Printf("inlet%%  -%gh %s now\n", fig.LeadHours[0], report.Sparkline(fig.InletPct))
		fmt.Printf("flow%%   -%gh %s now\n", fig.LeadHours[0], report.Sparkline(fig.FlowPct))
	}
	fmt.Println()
}

func printFig13(s *mira.Study, seed int64) {
	header("Fig. 13 — CMF predictor performance vs lead time")
	points, err := s.Fig13Predictor(mira.PredictorConfig{Seed: seed})
	if err != nil {
		fmt.Printf("predictor unavailable: %v\n\n", err)
		return
	}
	fmt.Println("lead    accuracy  precision  recall   F1      FPR")
	for _, pt := range points {
		c := pt.Confusion
		fmt.Printf("%-6s  %8.3f  %9.3f  %6.3f  %6.3f  %5.3f\n",
			pt.Lead, c.Accuracy(), c.Precision(), c.Recall(), c.F1(), c.FalsePositiveRate())
	}
	fmt.Println("[paper: ~87% accuracy at 6h rising to ~97% at 30 min; FPR 6% -> 1.2%]")
	fmt.Println()
}

func printFig14(s *mira.Study) {
	fig := s.Fig14PostCMF()
	header("Fig. 14 — Failures after a CMF")
	fmt.Println("window(h)  rate(/h)")
	for i, w := range fig.WindowHours {
		fmt.Printf("%9.0f  %8.3f\n", w, fig.RatePerHour[i])
	}
	fmt.Printf("rate(6h)/rate(3h) = %.2f [paper: <0.75]; rate(48h)/rate(3h) = %.2f [paper: ~0.10]\n",
		fig.Rate6vs3, fig.Rate48vs3)
	fmt.Println("post-CMF failure types:")
	for _, tp := range []ras.EventType{ras.ACToDCPower, ras.BQL, ras.BQC, ras.Card, ras.Software, ras.Ethernet, ras.Process} {
		fmt.Printf("  %-15s %5.1f%%\n", tp, fig.TypeFraction[tp]*100)
	}
	fmt.Println("[paper: AC-to-DC ~50%, process <2%]")
	fmt.Println()
}

func printFig15(s *mira.Study) {
	fig := s.Fig15PostCMFSpatial()
	header("Fig. 15 — Where post-CMF failures land")
	fmt.Printf("mean rack-grid distance from epicenter: %.2f (uniform-random expectation: %.2f)\n",
		fig.MeanDistance, fig.RandomExpectedDistance)
	fmt.Printf("same-rack fraction: %.1f%% — follow-ons land anywhere [paper: no spatial affinity]\n",
		fig.SameRackFraction*100)
	for _, ex := range fig.Examples {
		follows := make([]string, 0, len(ex.FollowOns))
		for _, r := range ex.FollowOns {
			follows = append(follows, r.String())
		}
		fmt.Printf("  example: CMF at %v -> follow-ons at %s\n", ex.Epicenter, strings.Join(follows, " "))
	}
	fmt.Println()
}
