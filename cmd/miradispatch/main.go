// Command miradispatch runs the campaign dispatcher: a crash-safe queue of
// simulation job specs served over the claim/heartbeat/complete protocol,
// plus a thin client mode for submitting specs and watching a sweep.
//
// Serve a queue (the durable state lives under -data and survives restarts,
// with in-flight jobs demoted back to pending):
//
//	miradispatch -data /var/lib/mira/campaign -listen 127.0.0.1:9090 -lease 30s
//
// Submit plain-JSON job specs and watch the sweep from another terminal:
//
//	miradispatch -url http://127.0.0.1:9090 -submit baseline.json,hot.json
//	miradispatch -url http://127.0.0.1:9090 -status
//	miradispatch -url http://127.0.0.1:9090 -results
//
// Workers are `mirasim -worker <url>`; the comparison table is
// `miraanalyze -campaign <url>`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mira/internal/campaign"
	"mira/internal/obs"
)

func main() {
	var (
		dataDir     = flag.String("data", "", "queue directory for durable job files (serve mode)")
		listen      = flag.String("listen", "", "serve the campaign API (and /metrics, /healthz, pprof) on this address")
		lease       = flag.Duration("lease", 30*time.Second, "claim lease; a worker silent this long forfeits its job")
		maxAttempts = flag.Int("max-attempts", 3, "worker-reported failures before a job parks as failed")
		url         = flag.String("url", "", "dispatcher base URL (client modes)")
		submit      = flag.String("submit", "", "comma-separated JSON job-spec files to enqueue (requires -url)")
		status      = flag.Bool("status", false, "print every job's state (requires -url)")
		results     = flag.Bool("results", false, "print completed jobs' results as JSON (requires -url)")
		logFormat   = flag.String("log-format", "text", "diagnostic log format: text or json")
	)
	flag.Parse()
	logg := obs.NewLogger(os.Stderr, *logFormat, "miradispatch")

	switch {
	case *url != "":
		if *dataDir != "" || *listen != "" {
			logg.Fatalf("-url is a client mode; it does not combine with -data/-listen")
		}
		runClient(logg, *url, *submit, *status, *results)
	case *dataDir != "" && *listen != "":
		serve(logg, *dataDir, *listen, *lease, *maxAttempts)
	default:
		logg.Fatalf("need either -data and -listen (serve) or -url (client); see -h")
	}
}

// serve opens (or recovers) the durable queue and mounts the dispatcher
// endpoints alongside the obs surface until SIGINT/SIGTERM.
func serve(logg *obs.Logger, dataDir, listen string, lease time.Duration, maxAttempts int) {
	q, err := campaign.OpenQueue(dataDir, campaign.QueueOptions{
		Lease:       lease,
		MaxAttempts: maxAttempts,
	})
	if err != nil {
		logg.Fatalf("open queue %s: %v", dataDir, err)
	}
	d := campaign.NewDispatcher(q, logg)
	srv, err := obs.ServeWith(listen, d.Mount)
	if err != nil {
		logg.Fatalf("-listen %s: %v", listen, err)
	}
	var done, failed int
	for _, j := range q.Status() {
		switch j.State {
		case campaign.StateDone:
			done++
		case campaign.StateFailed:
			failed++
		}
	}
	pending, _ := q.Depths()
	logg.Infof("queue %s recovered: %d pending, %d done, %d failed", dataDir, pending, done, failed)
	logg.Infof("campaign dispatcher on %s", srv.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logg.Infof("%v: shutting down", sig)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logg.Errorf("http shutdown: %v", err)
	}
	logg.Infof("shutdown complete")
}

// runClient executes the requested client actions in submit → status →
// results order so one invocation can both enqueue and inspect.
func runClient(logg *obs.Logger, url, submit string, status, results bool) {
	if submit == "" && !status && !results {
		logg.Fatalf("-url needs at least one of -submit, -status, -results")
	}
	ctx := context.Background()
	c := campaign.NewClient(url, http.DefaultClient)

	if submit != "" {
		for _, path := range strings.Split(submit, ",") {
			spec, err := readSpecFile(path)
			if err != nil {
				logg.Fatalf("%v", err)
			}
			id, err := c.Submit(ctx, spec)
			if err != nil {
				logg.Fatalf("submit %s: %v", path, err)
			}
			fmt.Printf("job %d submitted: %s (seed %d, %s..%s)\n", id, spec.Name, spec.Seed, spec.Start, spec.End)
		}
	}
	if status {
		jobs, err := c.Status(ctx)
		if err != nil {
			logg.Fatalf("status: %v", err)
		}
		fmt.Printf("%-5s %-20s %-8s %-8s %-20s %s\n", "job", "name", "state", "attempt", "worker", "error")
		for _, j := range jobs {
			worker := "-"
			if j.Worker != 0 {
				worker = fmt.Sprint(j.Worker)
			}
			fmt.Printf("%-5d %-20s %-8s %-8d %-20s %s\n", j.ID, j.Name, j.State, j.Attempt, worker, j.Error)
		}
	}
	if results {
		res, err := c.Results(ctx)
		if err != nil {
			logg.Fatalf("results: %v", err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			logg.Fatalf("encode results: %v", err)
		}
	}
}

// readSpecFile loads one plain-JSON JobSpec; unknown fields are rejected so
// a typoed knob fails loudly instead of silently running the default.
func readSpecFile(path string) (campaign.JobSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return campaign.JobSpec{}, err
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var spec campaign.JobSpec
	if err := dec.Decode(&spec); err != nil {
		return campaign.JobSpec{}, fmt.Errorf("spec %s: %w", path, err)
	}
	if spec.Version == 0 {
		spec.Version = campaign.SpecVersion
	}
	if err := spec.Validate(); err != nil {
		return campaign.JobSpec{}, fmt.Errorf("spec %s: %w", path, err)
	}
	return spec, nil
}
