// Proactive operations: the paper's closing opportunities in one workflow.
// Train the CMF predictor, locate impending failures machine-wide, and
// price prediction-triggered checkpointing against periodic checkpointing.
//
//	go run ./examples/proactiveops
package main

import (
	"fmt"
	"log"
	"time"

	"mira"
	"mira/internal/timeutil"
)

func main() {
	log.SetFlags(0)

	fmt.Println("simulating the failure-dense Theta integration period (Jun–Nov 2016)...")
	study, err := mira.RunStudy(mira.StudyConfig{
		Seed:               21,
		Start:              time.Date(2016, 6, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:                time.Date(2016, 11, 1, 0, 0, 0, 0, timeutil.Chicago),
		LocationFrameEvery: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed %d CMF incidents\n\n", len(study.Incidents()))

	predictor, err := study.TrainPredictor(time.Hour, mira.PredictorConfig{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// 1. WHERE: rank racks machine-wide (the paper: "predict the location
	// of an impending CMF from the overall coolant telemetry").
	loc, err := study.EvaluateLocation(predictor, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== locating failures machine-wide ==")
	fmt.Printf("epicenter ranked top-1 in %.0f%%, top-3 in %.0f%% of %d incidents (random: 2%%/6%%)\n",
		loc.Top1*100, loc.Top3*100, loc.Evaluated)
	fmt.Printf("machine-wide alarms: %d frames, %.0f%% followed by a real failure\n\n",
		loc.AlarmFrames, loc.FrameAlarmPrecision*100)

	// 2. HOW MUCH: price proactive checkpointing (the paper: "this time can
	// be used to checkpoint active jobs").
	mit, err := study.EvaluateMitigation(predictor, mira.MitigationConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== pricing proactive checkpointing ==")
	fmt.Printf("warned ≥30 min ahead: %.0f%% of incidents (mean lead %v)\n",
		mit.WarnedFraction*100, mit.MeanWarningLead.Round(time.Minute))
	fmt.Printf("compute lost to failures (kilo-node-hours):\n")
	fmt.Printf("  no checkpointing:        %7.0f\n", mit.TotalLostNone)
	fmt.Printf("  periodic (every 4 h):    %7.0f\n", mit.TotalLostPeriodic)
	fmt.Printf("  prediction-triggered:    %7.0f  (+%.1f overhead incl. false alarms)\n",
		mit.TotalLostPredictive, mit.CheckpointOverheadHours)
	fmt.Printf("net savings vs periodic: %.0f%%\n", mit.SavingsVsPeriodic()*100)
}
