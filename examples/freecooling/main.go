// Free-cooling economics: quantify how much energy the Chilled Water
// Plant's waterside economizer saves across a simulated year — the paper's
// 17,820 kWh/day and ~2.17 GWh/season figures.
//
//	go run ./examples/freecooling
package main

import (
	"fmt"
	"log"
	"time"

	"mira/internal/cooling"
	"mira/internal/timeutil"
	"mira/internal/units"
	"mira/internal/weather"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== waterside economizer study (paper §II) ==")
	fmt.Printf("design figures: %v/day at full displacement, %v per Dec-Mar season\n",
		cooling.FreeCoolingSavingsPerDay(), cooling.FreeCoolingSavingsPerSeason())
	fmt.Println()

	// Walk one year hour by hour against the Chicago weather model and
	// integrate actual plant power with and without the economizer.
	wx := weather.New(3)
	plant := cooling.NewPlant(wx, 4)
	heat := cooling.DesignHeatLoad

	var withEcon, withoutEcon units.KilowattHours
	monthlySavings := map[time.Month]float64{}
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, timeutil.Chicago)
	for ts := start; ts.Before(start.AddDate(1, 0, 0)); ts = ts.Add(time.Hour) {
		actual := plant.Power(heat, ts)
		// Without the economizer the chillers carry the full load.
		chillersOnly := units.Watts(float64(heat)/cooling.ChillerCOP) + cooling.PumpTowerPower
		withEcon += units.EnergyOver(actual, 1)
		withoutEcon += units.EnergyOver(chillersOnly, 1)
		monthlySavings[ts.Month()] += chillersOnly.Kilowatts() - actual.Kilowatts()
	}

	saved := withoutEcon - withEcon
	fmt.Printf("simulated 2015 plant energy: %v with economizer, %v chillers-only\n", withEcon, withoutEcon)
	fmt.Printf("annual saving: %v (%.1f%% of chiller-only consumption)\n\n",
		saved, 100*float64(saved)/float64(withoutEcon))

	fmt.Println("monthly savings (kWh):")
	for m := time.January; m <= time.December; m++ {
		bar := ""
		for i := 0; i < int(monthlySavings[m]/25000); i++ {
			bar += "#"
		}
		fmt.Printf("  %-9s %9.0f  %s\n", m, monthlySavings[m], bar)
	}
	fmt.Println("\nthe chillers idle through the cold months (Dec-Mar) and the")
	fmt.Println("economizer fades out as the Chicago wet-bulb temperature rises.")
}
