// Anomaly monitoring comparison: replay a failure through classic
// threshold-based monitoring and the delta-based detector side by side,
// demonstrating the paper's §VI-D point that "a threshold-based approach is
// not sufficient for abnormality detection".
//
//	go run ./examples/anomalymonitor
package main

import (
	"fmt"
	"log"
	"time"

	"mira"
	"mira/internal/core"
	"mira/internal/sensors"
	"mira/internal/timeutil"
)

func main() {
	log.SetFlags(0)

	fmt.Println("simulating a failure-dense window...")
	study, err := mira.RunStudy(mira.StudyConfig{
		Seed:  11,
		Start: time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:   time.Date(2016, 11, 1, 0, 0, 0, 0, timeutil.Chicago),
	})
	if err != nil {
		log.Fatal(err)
	}
	pos := study.PositiveWindows()
	if len(pos) == 0 {
		log.Fatal("no failures captured; try another seed")
	}
	predictor, err := study.TrainPredictor(3*time.Hour, mira.PredictorConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Replay the lead-up to one failure through both detectors.
	w := pos[0]
	thresholds := sensors.DefaultThresholds()
	fmt.Printf("\nlead-up to the CMF on rack %v at %s:\n", w.Rack, w.End.Format("2006-01-02 15:04"))
	fmt.Println("lead      inlet(F)  flow(GPM)  threshold-monitor   delta-detector")

	var thresholdFirst, deltaFirst time.Duration = -1, -1
	for _, lead := range []time.Duration{
		6 * time.Hour, 5 * time.Hour, 4 * time.Hour, 3 * time.Hour,
		2 * time.Hour, time.Hour, 30 * time.Minute, 0,
	} {
		idx := len(w.Records) - 1 - int(lead/study.Step())
		if idx < 0 {
			continue
		}
		rec := w.Records[idx]
		alarms := thresholds.Check(rec)
		thr := "quiet"
		if len(alarms) > 0 {
			thr = alarms[0].Severity.String()
			if thresholdFirst < 0 {
				thresholdFirst = lead
			}
		}
		nn := "quiet"
		if f, err := core.DeltaFeatures(w.Records, study.Step(), lead); err == nil {
			if p := predictor.Probability(f); p >= 0.5 {
				nn = fmt.Sprintf("ALERT (p=%.2f)", p)
				if deltaFirst < 0 {
					deltaFirst = lead
				}
			}
		}
		fmt.Printf("%-8s  %8.2f  %9.1f  %-18s  %s\n", lead, float64(rec.InletTemp), float64(rec.Flow), thr, nn)
	}

	fmt.Println()
	if deltaFirst > thresholdFirst {
		fmt.Printf("the delta-based detector fired %v before the failure;\n", deltaFirst)
		if thresholdFirst >= 0 {
			fmt.Printf("threshold monitoring only reacted %v out — after the metrics were\n", thresholdFirst)
			fmt.Println("already out of band (paper §VI-D: levels alone are not sufficient).")
		} else {
			fmt.Println("threshold monitoring never fired before the final collapse.")
		}
	} else {
		fmt.Println("both detectors fired at similar leads on this incident.")
	}
}
