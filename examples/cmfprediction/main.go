// CMF prediction end to end: simulate a failure-dense stretch, train the
// paper's neural-network predictor on the captured telemetry windows, and
// show it flagging an unseen failure hours ahead.
//
//	go run ./examples/cmfprediction
package main

import (
	"fmt"
	"log"
	"time"

	"mira"
	"mira/internal/core"
	"mira/internal/timeutil"
)

func main() {
	log.SetFlags(0)

	fmt.Println("simulating July–December 2016 at 300 s telemetry cadence...")
	study, err := mira.RunStudy(mira.StudyConfig{
		Seed:  7,
		Start: time.Date(2016, 7, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:   time.Date(2017, 1, 1, 0, 0, 0, 0, timeutil.Chicago),
	})
	if err != nil {
		log.Fatal(err)
	}
	pos, neg := study.PositiveWindows(), study.NegativeWindows()
	fmt.Printf("captured %d pre-CMF windows and %d quiet windows\n\n", len(pos), len(neg))

	// Train at a two-hour lead: enough time to checkpoint jobs and alert
	// operators (paper §VI-B).
	predictor, err := study.TrainPredictor(2*time.Hour, mira.PredictorConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Hold out the last captured failure and walk its final six hours.
	last := pos[len(pos)-1]
	fmt.Printf("replaying the lead-up to the CMF on rack %v at %s:\n",
		last.Rack, last.End.Format("2006-01-02 15:04"))
	for _, lead := range []time.Duration{6 * time.Hour, 4 * time.Hour, 2 * time.Hour, time.Hour, 30 * time.Minute} {
		f, err := core.DeltaFeatures(last.Records, study.Step(), lead)
		if err != nil {
			continue
		}
		p := predictor.Probability(f)
		verdict := "quiet"
		if p >= 0.5 {
			verdict = "ALERT"
		}
		fmt.Printf("  %5s before failure: P(CMF) = %.2f  %s\n", lead, p, verdict)
	}

	// And confirm it stays quiet on a healthy window.
	quiet := neg[0]
	f, err := core.DeltaFeatures(quiet.Records, study.Step(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhealthy rack %v for comparison: P(CMF) = %.2f\n", quiet.Rack, predictor.Probability(f))
}
