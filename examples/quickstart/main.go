// Quickstart: simulate one month of Mira, print a telemetry summary and any
// coolant monitor failures.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mira"
	"mira/internal/timeutil"
)

func main() {
	log.SetFlags(0)

	// Simulate August 2016 — the thick of the Theta integration, when 40%
	// of Mira's coolant monitor failures occurred.
	db := &mira.EnvDB{Downsample: 6}
	study, err := mira.RunStudy(mira.StudyConfig{
		Seed:        1,
		Start:       time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago),
		End:         time.Date(2016, 9, 1, 0, 0, 0, 0, timeutil.Chicago),
		TelemetryDB: db,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== one simulated month of Mira (August 2016) ==")
	fmt.Printf("coolant-monitor samples collected: %d\n", db.Len())

	fig3 := study.Fig3CoolantTimeline()
	fmt.Printf("plant coolant flow: %.0f GPM (post-Theta)\n", fig3.FlowAfterTheta)

	fig6 := study.Fig6RackPowerUtil()
	fmt.Printf("mean rack power: %.1f kW; hottest rack: %v\n",
		mean(fig6.PowerKW), fig6.MaxPowerRack)
	fmt.Printf("mean rack utilization: %.1f%%; busiest rack: %v\n",
		mean(fig6.UtilPct), fig6.MaxUtilRack)

	incidents := study.Incidents()
	fmt.Printf("\ncoolant monitor failures this month: %d incidents\n", len(incidents))
	for _, inc := range incidents {
		fmt.Printf("  %s  epicenter %v, %d racks down, %d jobs killed\n",
			inc.Time.Format("2006-01-02 15:04"), inc.Epicenter, len(inc.Racks), inc.JobsKilled)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
