package failure

import (
	"math"
	"testing"
	"time"

	"mira/internal/ras"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

func TestEpisodeSignatureShape(t *testing.T) {
	trigger := time.Date(2016, 8, 1, 12, 0, 0, 0, timeutil.Chicago)
	ep := Episode{Epicenter: topology.RackID{Row: 1, Col: 8}, Trigger: trigger, DriftScale: 1}

	at := func(lead time.Duration) time.Time { return trigger.Add(-lead) }

	// Outside the window: no perturbation.
	if d := ep.InletDeltaFraction(at(15 * time.Hour)); d != 0 {
		t.Errorf("inlet delta 15h out = %v, want 0", d)
	}
	// Early drift: small but nonzero five hours out.
	if d := ep.InletDeltaFraction(at(5 * time.Hour)); d >= 0 || d < -0.025 {
		t.Errorf("inlet early drift 5h out = %v, want small negative", d)
	}
	// Zero drift scale: flat until the pronounced signature.
	flat := Episode{Epicenter: ep.Epicenter, Trigger: trigger}
	if d := flat.InletDeltaFraction(at(5 * time.Hour)); d != 0 {
		t.Errorf("zero-drift episode should be flat early, got %v", d)
	}
	if f := ep.FlowFactor(at(2 * time.Hour)); f != 1 {
		t.Errorf("flow factor 2h out = %v, want 1 (stable until 30 min)", f)
	}
	// Dip phase: ≈ -7% by 2.5h out, held at 1h.
	if d := ep.InletDeltaFraction(at(150 * time.Minute)); math.Abs(d-(-0.07)) > 0.005 {
		t.Errorf("inlet delta 2.5h out = %v, want ≈-0.07", d)
	}
	if d := ep.InletDeltaFraction(at(time.Hour)); math.Abs(d-(-0.07)) > 0.005 {
		t.Errorf("inlet delta 1h out = %v, want ≈-0.07", d)
	}
	// Partial dip at 3h: below zero but above the full dip.
	d3 := ep.InletDeltaFraction(at(3 * time.Hour))
	if d3 >= 0 || d3 <= -0.07 {
		t.Errorf("inlet delta 3h out = %v, want in (-0.07, 0)", d3)
	}
	// Reversal: +8% at trigger.
	if d := ep.InletDeltaFraction(trigger); math.Abs(d-0.08) > 0.005 {
		t.Errorf("inlet delta at trigger = %v, want ≈+0.08", d)
	}
	// Flow collapse only in the last half hour, to ≈0.55.
	if f := ep.FlowFactor(at(29 * time.Minute)); f >= 1 {
		t.Errorf("flow factor 29min out = %v, want < 1", f)
	}
	if f := ep.FlowFactor(trigger); math.Abs(f-0.55) > 0.01 {
		t.Errorf("flow factor at trigger = %v, want ≈0.55", f)
	}
	// Humidity bump near the end.
	if h := ep.HumidityDelta(at(2 * time.Hour)); h != 0 {
		t.Errorf("humidity delta 2h out = %v, want 0", h)
	}
	if h := ep.HumidityDelta(trigger); h < 4 {
		t.Errorf("humidity delta at trigger = %v, want ≈6", h)
	}
	// Active window spans the full precursor lead.
	if !ep.Active(at(3*time.Hour)) || !ep.Active(at(13*time.Hour)) || ep.Active(at(15*time.Hour)) {
		t.Error("Active window wrong")
	}
	if ep.Start() != trigger.Add(-Lead) {
		t.Error("Start wrong")
	}
}

func TestFlowCollapseCrossesFatalThreshold(t *testing.T) {
	// The end-state flow must breach the coolant monitor's fatal threshold
	// (0.62 of nominal), or no CMF would ever fire.
	ep := Episode{Trigger: time.Date(2016, 8, 1, 12, 0, 0, 0, timeutil.Chicago)}
	if f := ep.FlowFactor(ep.Trigger); f >= 0.62 {
		t.Errorf("final flow factor %v does not breach the 0.62 fatal threshold", f)
	}
}

func TestEngineTotalsCalibration(t *testing.T) {
	// Expected counted failures (epicenters + cascades) should land near
	// the paper's 361. Average over seeds to damp the (1,4) full-system
	// events.
	var totals []float64
	for seed := int64(1); seed <= 5; seed++ {
		e := NewEngine(Config{Seed: seed})
		count := 0
		for _, ep := range e.Episodes() {
			count += len(ep.Racks)
		}
		totals = append(totals, float64(count))
	}
	var mean float64
	for _, v := range totals {
		mean += v
	}
	mean /= float64(len(totals))
	if mean < 290 || mean > 440 {
		t.Errorf("mean counted failures = %v (per-seed %v), want ≈361", mean, totals)
	}
}

func TestEpisodesIncludeEpicenterFirst(t *testing.T) {
	e := NewEngine(Config{Seed: 21})
	for _, ep := range e.Episodes() {
		if len(ep.Racks) == 0 || ep.Racks[0] != ep.Epicenter {
			t.Fatalf("episode cascade must lead with the epicenter: %+v", ep)
		}
	}
}

func TestEngineYearDistribution(t *testing.T) {
	e := NewEngine(Config{Seed: 2})
	byYear := make(map[int]int)
	total := 0
	for _, ep := range e.Episodes() {
		byYear[ep.Trigger.Year()]++
		total++
	}
	if total == 0 {
		t.Fatal("no episodes scheduled")
	}
	share2016 := float64(byYear[2016]) / float64(total)
	if share2016 < 0.30 || share2016 > 0.50 {
		t.Errorf("2016 share = %v, want ≈0.40", share2016)
	}
	if byYear[2017] != 0 {
		t.Errorf("2017 episodes = %d, want 0 (two-year quiet period)", byYear[2017])
	}
	// 2018 episodes only at the very end of the year.
	for _, ep := range e.Episodes() {
		if ep.Trigger.Year() == 2018 && ep.Trigger.Month() < time.November {
			t.Errorf("2018 episode before November: %v", ep.Trigger)
		}
	}
	if byYear[2019] == 0 || byYear[2014] == 0 {
		t.Error("2014/2019 should have episodes")
	}
}

func TestEngineRackDistribution(t *testing.T) {
	// Averaged over seeds, (1,8) should lead and (2,7) should trail.
	var hot, quiet, maxOther float64
	const seeds = 6
	for seed := int64(10); seed < 10+seeds; seed++ {
		e := NewEngine(Config{Seed: seed})
		var counts [topology.NumRacks]int
		for _, ep := range e.Episodes() {
			for _, r := range ep.Racks {
				counts[r.Index()]++
			}
		}
		hot += float64(counts[topology.HumidityHotspot.Index()])
		quiet += float64(counts[topology.QuietRack.Index()])
		for i, c := range counts {
			r := topology.RackByIndex(i)
			if r != topology.HumidityHotspot && float64(c) > maxOther {
				maxOther = float64(c)
			}
		}
	}
	hot /= seeds
	quiet /= seeds
	if hot < 10 || hot > 18 {
		t.Errorf("(1,8) mean count = %v, want ≈14", hot)
	}
	if quiet < 3 || quiet > 8 {
		t.Errorf("(2,7) mean count = %v, want ≈5", quiet)
	}
	if quiet >= hot {
		t.Error("(2,7) should trail (1,8)")
	}
}

func TestSusceptibilityAnchors(t *testing.T) {
	e := NewEngine(Config{Seed: 3})
	if e.Susceptibility(topology.HumidityHotspot) <= e.Susceptibility(topology.QuietRack) {
		t.Error("(1,8) susceptibility should exceed (2,7)")
	}
	for _, r := range topology.AllRacks() {
		s := e.Susceptibility(r)
		if s <= 0 || s > 3.5 {
			t.Errorf("susceptibility(%v) = %v out of range", r, s)
		}
	}
}

func TestEpisodeSpacing(t *testing.T) {
	// Episodes with the same epicenter must be spaced: a rack that is down
	// cannot start a new precursor.
	e := NewEngine(Config{Seed: 4})
	last := make(map[topology.RackID]time.Time)
	for _, ep := range e.Episodes() {
		if prev, ok := last[ep.Epicenter]; ok && !prev.IsZero() {
			if d := ep.Trigger.Sub(prev); d > 0 && d <= 30*time.Hour {
				t.Fatalf("epicenter %v episodes too close: %v then %v", ep.Epicenter, prev, ep.Trigger)
			}
		}
		last[ep.Epicenter] = ep.Trigger
	}
}

func TestActiveEpisodeCursor(t *testing.T) {
	e := NewEngine(Config{Seed: 5})
	eps := e.Episodes()
	if len(eps) == 0 {
		t.Fatal("no episodes")
	}
	target := eps[0]
	rack := target.Epicenter
	// Before the window: nil.
	if got := e.ActiveEpisode(rack, target.Start().Add(-time.Hour)); got != nil {
		t.Error("episode should not be active before its window")
	}
	// Inside the window: the episode.
	got := e.ActiveEpisode(rack, target.Trigger.Add(-time.Hour))
	if got == nil || !got.Trigger.Equal(target.Trigger) {
		t.Fatalf("ActiveEpisode = %v, want trigger %v", got, target.Trigger)
	}
	// Long after: nil (cursor advances).
	if got := e.ActiveEpisode(rack, target.Trigger.Add(time.Hour)); got != nil && got.Trigger.Equal(target.Trigger) {
		t.Error("episode should expire after its window")
	}
}

func TestCascadeClockRoot(t *testing.T) {
	e := NewEngine(Config{Seed: 6})
	dom := e.cascade(topology.ClockRoot)
	if len(dom) != topology.NumRacks {
		t.Errorf("clock-root cascade = %d racks, want all %d", len(dom), topology.NumRacks)
	}
}

func TestCascadeRelay(t *testing.T) {
	e := NewEngine(Config{Seed: 7})
	found09 := false
	for i := 0; i < 50; i++ {
		dom := e.cascade(topology.ClockRelay0A)
		if len(dom) < 2 {
			t.Fatalf("(0,A) cascade = %v, should always include (0,9)", dom)
		}
		for _, r := range dom {
			if r == topology.ClockLeaf09 {
				found09 = true
			}
		}
	}
	if !found09 {
		t.Error("(0,9) never cascaded with (0,A)")
	}
}

func TestCascadeNoDuplicates(t *testing.T) {
	e := NewEngine(Config{Seed: 8})
	for i := 0; i < 200; i++ {
		dom := e.cascade(topology.RackID{Row: 2, Col: 3})
		seen := make(map[topology.RackID]bool)
		for _, r := range dom {
			if seen[r] {
				t.Fatalf("duplicate rack %v in cascade %v", r, dom)
			}
			seen[r] = true
		}
		if !seen[topology.RackID{Row: 2, Col: 3}] {
			t.Fatal("cascade must include the epicenter")
		}
	}
}

func TestOutageDuration(t *testing.T) {
	e := NewEngine(Config{Seed: 9})
	for i := 0; i < 100; i++ {
		d := e.OutageDuration()
		if d < 2*time.Hour || d > 6*time.Hour {
			t.Fatalf("outage duration %v out of [2h, 6h]", d)
		}
	}
}

func TestStorm(t *testing.T) {
	e := NewEngine(Config{Seed: 10, StormMessages: 100})
	ts := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	storm := e.Storm(topology.RackID{Row: 0, Col: 5}, ts)
	if len(storm) < 50 || len(storm) > 200 {
		t.Errorf("storm size = %d, want ≈50-150", len(storm))
	}
	for _, ev := range storm {
		if !ev.IsCMF() {
			t.Fatal("storm messages must be fatal coolant-monitor events")
		}
	}
}

func TestPostCMFHazardShape(t *testing.T) {
	e := NewEngine(Config{Seed: 11})
	t0 := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	// Sample many post-CMF event sets and measure the windowed rates.
	var within3, within6, within48, total float64
	for i := 0; i < 3000; i++ {
		for _, ev := range e.PostCMFEvents(t0) {
			tau := ev.Time.Sub(t0).Hours()
			total++
			if tau <= 3 {
				within3++
			}
			if tau <= 6 {
				within6++
			}
			if tau <= 48 {
				within48++
			}
		}
	}
	if total < 3000 {
		t.Fatalf("too few post-CMF events sampled: %v", total)
	}
	rate3 := within3 / 3
	rate6 := within6 / 6
	rate48 := within48 / 48
	// Paper Fig. 14a: rate within 6h < 75% of rate within 3h; rate at 48h
	// ≈ 10% of the 3h rate.
	if ratio := rate6 / rate3; ratio >= 0.75 {
		t.Errorf("rate(6h)/rate(3h) = %v, want < 0.75", ratio)
	}
	if ratio := rate48 / rate3; ratio < 0.05 || ratio > 0.18 {
		t.Errorf("rate(48h)/rate(3h) = %v, want ≈0.10", ratio)
	}
}

func TestPostCMFTypeMix(t *testing.T) {
	e := NewEngine(Config{Seed: 12})
	t0 := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	counts := make(map[ras.EventType]int)
	total := 0
	for i := 0; i < 4000; i++ {
		for _, ev := range e.PostCMFEvents(t0) {
			counts[ev.Type]++
			total++
		}
	}
	frac := func(t ras.EventType) float64 { return float64(counts[t]) / float64(total) }
	if f := frac(ras.ACToDCPower); f < 0.45 || f > 0.55 {
		t.Errorf("AC-to-DC fraction = %v, want ≈0.50", f)
	}
	if f := frac(ras.Process); f >= 0.02 {
		t.Errorf("process fraction = %v, want < 0.02", f)
	}
	if counts[ras.BQL] <= counts[ras.BQC] {
		t.Error("BQL should outnumber BQC")
	}
	if counts[ras.CoolantMonitor] != 0 {
		t.Error("post-CMF events must be non-CMF")
	}
}

func TestPostCMFLocationsUniform(t *testing.T) {
	e := NewEngine(Config{Seed: 13})
	t0 := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	var counts [topology.NumRacks]int
	total := 0
	for i := 0; i < 5000; i++ {
		for _, ev := range e.PostCMFEvents(t0) {
			counts[ev.Rack.Index()]++
			total++
		}
	}
	expected := float64(total) / topology.NumRacks
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.5 {
			t.Errorf("rack %v post-CMF count %d far from uniform %v", topology.RackByIndex(i), c, expected)
		}
	}
}

func TestBackgroundEvents(t *testing.T) {
	e := NewEngine(Config{Seed: 14})
	from := time.Date(2015, 1, 1, 0, 0, 0, 0, timeutil.Chicago)
	to := from.AddDate(0, 0, 100)
	evs := e.BackgroundEvents(from, to)
	// Expected 35 over 100 days.
	if len(evs) < 15 || len(evs) > 60 {
		t.Errorf("background events = %d over 100 days, want ≈35", len(evs))
	}
	for _, ev := range evs {
		if ev.Time.Before(from) || !ev.Time.Before(to) {
			t.Fatalf("event time %v outside range", ev.Time)
		}
		if ev.Type == ras.CoolantMonitor {
			t.Fatal("background events must be non-CMF")
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	a := NewEngine(Config{Seed: 15})
	b := NewEngine(Config{Seed: 15})
	ea, eb := a.Episodes(), b.Episodes()
	if len(ea) != len(eb) {
		t.Fatal("non-deterministic episode count")
	}
	for i := range ea {
		if ea[i].Epicenter != eb[i].Epicenter || !ea[i].Trigger.Equal(eb[i].Trigger) || len(ea[i].Racks) != len(eb[i].Racks) {
			t.Fatal("non-deterministic episodes")
		}
	}
}
