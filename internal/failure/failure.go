// Package failure is the failure engine of the digital twin: it schedules
// the coolant-monitor-failure precursor episodes whose telemetry signatures
// the paper characterizes (inlet temperature dipping ≈7% over four hours
// then spiking ≈8% in the last half hour; outlet following; coolant flow
// stable until a rapid collapse ≈30 minutes out), modulates their hazard
// over the years (≈40% of all failures during the 2016 Theta integration, a
// two-year quiet period afterwards), shapes the per-rack susceptibility
// field (rack (1,8) worst at 14, rack (2,7) best at 5, uncorrelated with
// utilization, outlet temperature, or humidity), expands epicenters into
// clock-graph cascades and RAS storms, and generates the elevated post-CMF
// non-CMF failure stream with the paper's type mix.
package failure

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"mira/internal/ras"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// Episode is one CMF precursor incident. Between Trigger-Lead and Trigger
// the cooling inputs of every affected rack are perturbed by the loop-wide
// chiller-control disturbance; the epicenter additionally suffers the local
// flow collapse that trips its coolant monitor at Trigger, after which the
// whole cascade set goes down (clock-signal loss and loop transients).
type Episode struct {
	// Epicenter is the rack whose coolant monitor trips.
	Epicenter topology.RackID
	// Racks is the full cascade set (epicenter first): the racks that fail
	// when the episode triggers, all of which see the loop disturbance in
	// their inlet telemetry beforehand.
	Racks   []topology.RackID
	Trigger time.Time
	// DriftScale in [0, 1] scales the subtle early drift: not every failure
	// announces itself early, which is what keeps the paper's predictor at
	// ≈87% (rather than ≈100%) six hours out.
	DriftScale float64
}

// Lead is how long before the trigger the precursor perturbation begins.
// The pronounced signature (the Fig. 12 dip/spike/collapse) occupies the
// last four hours; before that, a subtle coolant drift — invisible at
// Fig. 12's percent scale but above sensor noise — builds from Lead onward,
// which is what lets the paper's predictor see failures a full six hours
// out.
const Lead = 14 * time.Hour

// SignatureLead is when the pronounced Fig. 12 signature begins.
const SignatureLead = 4 * time.Hour

// Start returns the beginning of the precursor window.
func (e Episode) Start() time.Time { return e.Trigger.Add(-Lead) }

// PostTriggerTail is how long the collapsed end-state persists after the
// trigger before the rack powers off: the rack's controller takes the
// solenoid/power action within minutes, and the tail guarantees coarse
// simulation steps cannot miss the collapsed-flow sample.
const PostTriggerTail = 30 * time.Minute

// Active reports whether t falls inside the episode's perturbation window.
func (e Episode) Active(t time.Time) bool {
	return !t.Before(e.Start()) && t.Before(e.Trigger.Add(PostTriggerTail))
}

// hoursToFailure returns the (positive) lead time in hours; negative values
// mean the trigger has passed.
func (e Episode) hoursToFailure(t time.Time) float64 {
	return e.Trigger.Sub(t).Hours()
}

// smoothstep is the standard cubic ease in [0, 1].
func smoothstep(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	return x * x * (3 - 2*x)
}

// InletDeltaFraction returns the fractional perturbation of the inlet
// coolant temperature at time t: the chiller-control oscillation drives the
// inlet down to −7% (reached ≈2.5 h out, visible from ≈4 h), holds, and then
// reverses to +8% in the final half hour (paper Fig. 12b).
func (e Episode) InletDeltaFraction(t time.Time) float64 {
	ttf := e.hoursToFailure(t)
	leadH := Lead.Hours()
	driftFloor := -0.02 * e.DriftScale
	switch {
	case ttf > leadH || ttf < -0.5:
		return 0
	case ttf > 4:
		// Early drift: the failing chiller control lets the inlet sag by
		// about a percent over the ten hours before the visible signature —
		// flat at Fig. 12's scale, detectable by the NN when present.
		return driftFloor * (leadH - ttf) / (leadH - 4)
	case ttf > 0.5:
		// Dip phase: ramp from the drift floor at 4 h to −7% by 2.5 h,
		// hold.
		return driftFloor + (-0.07-driftFloor)*smoothstep((4-ttf)/1.5)
	default:
		// Reversal: −7% at 30 min → +8% at the trigger.
		frac := (0.5 - math.Max(ttf, 0)) / 0.5
		return -0.07 + 0.15*frac
	}
}

// FlowFactor returns the multiplicative flow perturbation at time t: stable
// at 1.0 until ≈30 minutes before the failure, then a rapid collapse to
// ≈55% of nominal — below the coolant monitor's fatal threshold, which is
// what ultimately trips the failure (paper Fig. 12a: the flow's "rapid and
// significant decline becomes the cause of the failure").
func (e Episode) FlowFactor(t time.Time) float64 {
	ttf := e.hoursToFailure(t)
	switch {
	case ttf > 0.5 || ttf < -0.5:
		return 1
	default:
		frac := (0.5 - math.Max(ttf, 0)) / 0.5
		return 1 - 0.45*frac
	}
}

// HumidityDelta returns the additive %RH perturbation near the rack: the
// failing cooling hardware condenses and evaporates moisture locally in the
// final hour.
func (e Episode) HumidityDelta(t time.Time) float64 {
	ttf := e.hoursToFailure(t)
	if ttf > 1 || ttf < -0.5 {
		return 0
	}
	return 6 * smoothstep((1-ttf)/1)
}

// Config tunes the failure engine.
type Config struct {
	// Seed drives all sampling.
	Seed int64
	// MeanEpisodesPerRack is the expected per-rack episode count over the
	// full six years at susceptibility 1.0 (default 2.5; combined with
	// cascades this lands near the paper's 361 total counted failures).
	MeanEpisodesPerRack float64
	// PostCMFEventScale scales the expected number of follow-on non-CMF
	// failures per CMF incident (default 1.0 ⇒ ≈2.4 events).
	PostCMFEventScale float64
	// CascadeExtraProb is the probability that an epicenter drags down
	// additional random racks through the shared cooling loop (default
	// 0.55; RAS storms regularly engulf multiple racks).
	CascadeExtraProb float64
	// StormMessages is the number of raw RAS messages logged per affected
	// rack during a storm (default 400; the paper reports upwards of
	// 10,000 messages per storm).
	StormMessages int
}

func (c Config) withDefaults() Config {
	if c.MeanEpisodesPerRack == 0 {
		c.MeanEpisodesPerRack = 2.5
	}
	if c.PostCMFEventScale == 0 {
		c.PostCMFEventScale = 1.0
	}
	if c.CascadeExtraProb == 0 {
		c.CascadeExtraProb = 0.55
	}
	if c.StormMessages == 0 {
		c.StormMessages = 400
	}
	return c
}

// Engine schedules and expands failures. Create one per simulation.
type Engine struct {
	cfg   Config
	rng   *rand.Rand
	clock *topology.ClockGraph

	susceptibility [topology.NumRacks]float64
	episodes       []Episode // sorted by trigger
	perRack        [topology.NumRacks][]Episode
	cursor         [topology.NumRacks]int
}

// yearShare is the fraction of six-year hazard falling in each production
// year: failures cluster in 2016 (Theta integration, ≈40%), vanish for two
// years, and return near the end of 2018 into 2019 (paper Fig. 10).
var yearShare = map[int]float64{
	2014: 0.18,
	2015: 0.15,
	2016: 0.40,
	2017: 0.00,
	2018: 0.06,
	2019: 0.21,
}

// NewEngine creates the engine and pre-schedules every episode for the
// production window.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		clock: topology.NewClockGraph(),
	}
	e.buildSusceptibility()
	e.schedule()
	return e
}

// buildSusceptibility draws the per-rack hazard multipliers. The field is
// independent of the utilization/power/humidity fields by construction —
// matching the paper's finding that CMF counts correlate with none of them.
func (e *Engine) buildSusceptibility() {
	for i := range e.susceptibility {
		v := math.Exp(e.rng.NormFloat64() * 0.22)
		if v < 0.55 {
			v = 0.55
		}
		if v > 1.3 {
			v = 1.3
		}
		e.susceptibility[i] = v
	}
	// Paper-anchored racks.
	e.susceptibility[topology.HumidityHotspot.Index()] = 3.2 // (1,8): 14 failures
	e.susceptibility[topology.QuietRack.Index()] = 0.42      // (2,7): 5 failures
	// The clock root drags the whole system down; its own hardware was not
	// notably failure-prone.
	e.susceptibility[topology.ClockRoot.Index()] = 0.3
}

// Susceptibility returns a rack's hazard multiplier (mean ≈ 1).
func (e *Engine) Susceptibility(r topology.RackID) float64 {
	return e.susceptibility[r.Index()]
}

// monthWeight concentrates 2016's hazard in the Theta integration months
// (June–December) and 2018's at year end.
func monthWeight(t time.Time) float64 {
	switch t.Year() {
	case 2016:
		if t.Month() >= time.June {
			return 1.6
		}
		return 0.3
	case 2018:
		if t.Month() >= time.November {
			return 6.0
		}
		return 0.0
	default:
		return 1.0
	}
}

// schedule samples every rack's episodes via a thinned Poisson process and
// expands each into its cascade set.
func (e *Engine) schedule() {
	for i := range e.susceptibility {
		rack := topology.RackByIndex(i)
		mean := e.cfg.MeanEpisodesPerRack * e.susceptibility[i]
		// Thinning: draw candidate times uniformly, accept by the yearly
		// and monthly hazard profile. The acceptance normalizer is the
		// maximum combined weight (2016 late-year: 0.40·6·1.6 ≈ 3.84 vs
		// uniform 1/6 per year).
		const maxW = 0.40 * 6 * 1.6
		candidates := e.poisson(mean * maxW)
		span := timeutil.ProductionEnd.Sub(timeutil.ProductionStart)
		var own []Episode
		for c := 0; c < candidates; c++ {
			t := timeutil.ProductionStart.Add(time.Duration(e.rng.Int63n(int64(span))))
			w := yearShare[t.Year()] * 6 * monthWeight(t)
			if e.rng.Float64() < w/maxW {
				// A fifth of failures give no early warning at all; the
				// rest drift with varying, but detectable, strength.
				drift := 0.0
				if e.rng.Float64() >= 0.20 {
					drift = 0.5 + 0.5*e.rng.Float64()
				}
				own = append(own, Episode{
					Epicenter:  rack,
					Trigger:    t,
					DriftScale: drift,
				})
			}
		}
		sort.Slice(own, func(a, b int) bool { return own[a].Trigger.Before(own[b].Trigger) })
		// Enforce spacing: a rack that is down cannot start a new
		// precursor, and overlapping precursor windows would be
		// unphysical.
		var spaced []Episode
		for _, ep := range own {
			if len(spaced) == 0 || ep.Trigger.Sub(spaced[len(spaced)-1].Trigger) > 30*time.Hour {
				spaced = append(spaced, ep)
			}
		}
		e.episodes = append(e.episodes, spaced...)
	}
	sort.Slice(e.episodes, func(a, b int) bool { return e.episodes[a].Trigger.Before(e.episodes[b].Trigger) })
	// Expand cascades and index every affected rack.
	for i := range e.episodes {
		e.episodes[i].Racks = e.cascade(e.episodes[i].Epicenter)
		for _, r := range e.episodes[i].Racks {
			e.perRack[r.Index()] = append(e.perRack[r.Index()], e.episodes[i])
		}
	}
	for i := range e.perRack {
		sort.Slice(e.perRack[i], func(a, b int) bool {
			return e.perRack[i][a].Trigger.Before(e.perRack[i][b].Trigger)
		})
	}
}

func (e *Engine) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*e.rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= e.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Episodes returns every scheduled episode in trigger order.
func (e *Engine) Episodes() []Episode {
	out := make([]Episode, len(e.episodes))
	copy(out, e.episodes)
	return out
}

// ActiveEpisode returns the episode perturbing the given rack at time t, or
// nil. Calls must be made with non-decreasing t per rack (the simulator's
// access pattern); the per-rack cursor makes the scan amortized O(1).
func (e *Engine) ActiveEpisode(rack topology.RackID, t time.Time) *Episode {
	i := rack.Index()
	eps := e.perRack[i]
	for e.cursor[i] < len(eps) && !t.Before(eps[e.cursor[i]].Trigger.Add(PostTriggerTail)) {
		e.cursor[i]++
	}
	if e.cursor[i] < len(eps) && eps[e.cursor[i]].Active(t) {
		ep := eps[e.cursor[i]]
		return &ep
	}
	return nil
}

// cascade draws the racks taken down by a CMF at the given epicenter: the
// epicenter, its clock-graph dependents (rack (1,4) fells the whole system;
// rack (0,A) takes (0,9) with it), and occasionally extra random racks hit
// through the shared cooling loop.
func (e *Engine) cascade(epicenter topology.RackID) []topology.RackID {
	domain := e.clock.FailureDomain(epicenter)
	if len(domain) >= topology.NumRacks {
		return domain
	}
	in := make(map[topology.RackID]bool, len(domain))
	for _, r := range domain {
		in[r] = true
	}
	if e.rng.Float64() < e.cfg.CascadeExtraProb {
		extra := 1 + e.rng.Intn(5)
		for _, idx := range e.rng.Perm(topology.NumRacks) {
			if extra == 0 {
				break
			}
			r := topology.RackByIndex(idx)
			if !in[r] {
				domain = append(domain, r)
				in[r] = true
				extra--
			}
		}
	}
	return domain
}

// OutageDuration draws how long a failed rack stays down after a CMF (up to
// six hours, paper §VI).
func (e *Engine) OutageDuration() time.Duration {
	return 2*time.Hour + time.Duration(e.rng.Int63n(int64(4*time.Hour)))
}

// Storm generates the raw RAS message flood for an affected rack: a burst
// of fatal coolant-monitor messages that the dedup methodology later
// collapses into a single counted failure.
func (e *Engine) Storm(rack topology.RackID, t time.Time) []ras.Event {
	n := e.cfg.StormMessages/2 + e.rng.Intn(e.cfg.StormMessages)
	out := make([]ras.Event, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ras.Event{
			Time:     t.Add(time.Duration(i) * 200 * time.Millisecond),
			Rack:     rack,
			Type:     ras.CoolantMonitor,
			Severity: ras.Fatal,
			Message:  "coolant monitor threshold exceeded",
		})
	}
	return out
}

// Post-CMF hazard: h(τ) = c·(e^{−τ/1.5h} + 0.0764·e^{−τ/12h}), calibrated so
// the mean failure rate within 6 h is <75% of the rate within 3 h and the
// rate within 48 h is ≈10% of it (paper Fig. 14a).
const (
	hazardFast   = 1.5  // hours
	hazardSlow   = 12.0 // hours
	hazardMix    = 0.0764
	hazardScale  = 1.0 // multiplied by PostCMFEventScale
	hazardWindow = 48.0
)

// postCMFTypeWeights is the paper's Fig. 14b distribution.
var postCMFTypeWeights = []struct {
	t ras.EventType
	w float64
}{
	{ras.ACToDCPower, 0.50},
	{ras.BQL, 0.20},
	{ras.BQC, 0.15},
	{ras.Card, 0.05},
	{ras.Software, 0.045},
	{ras.Ethernet, 0.04},
	{ras.Process, 0.015},
}

// sampleType draws a non-CMF failure type from the Fig. 14b mix.
func (e *Engine) sampleType() ras.EventType {
	u := e.rng.Float64()
	acc := 0.0
	for _, tw := range postCMFTypeWeights {
		acc += tw.w
		if u < acc {
			return tw.t
		}
	}
	return ras.Process
}

// PostCMFEvents samples the follow-on non-CMF failures in the 48 hours
// after a CMF. Locations are uniform over the machine — the racks are
// inter-linked in ways that are not spatially correlated, so follow-on
// failures land anywhere (paper Fig. 15).
func (e *Engine) PostCMFEvents(t time.Time) []ras.Event {
	// Expected counts per window from the integrated hazard.
	c := 1.05 * e.cfg.PostCMFEventScale
	expected := c * (hazardFast*(1-math.Exp(-hazardWindow/hazardFast)) +
		hazardMix*hazardSlow*(1-math.Exp(-hazardWindow/hazardSlow)))
	n := e.poisson(expected)
	out := make([]ras.Event, 0, n)
	for i := 0; i < n; i++ {
		tau := e.sampleHazardTime()
		out = append(out, ras.Event{
			Time:     t.Add(time.Duration(tau * float64(time.Hour))),
			Rack:     topology.RackByIndex(e.rng.Intn(topology.NumRacks)),
			Type:     e.sampleType(),
			Severity: ras.Fatal,
			Message:  "post-CMF follow-on failure",
		})
	}
	return out
}

// sampleHazardTime draws τ (hours) from the two-exponential post-CMF hazard
// via mixture sampling, truncated to the 48-hour window.
func (e *Engine) sampleHazardTime() float64 {
	fastMass := hazardFast * (1 - math.Exp(-hazardWindow/hazardFast))
	slowMass := hazardMix * hazardSlow * (1 - math.Exp(-hazardWindow/hazardSlow))
	for {
		var tau float64
		if e.rng.Float64() < fastMass/(fastMass+slowMass) {
			tau = e.rng.ExpFloat64() * hazardFast
		} else {
			tau = e.rng.ExpFloat64() * hazardSlow
		}
		if tau <= hazardWindow {
			return tau
		}
	}
}

// BackgroundEventRatePerDay is the machine-wide rate of non-CMF fatal
// failures outside post-CMF windows (memory errors, link failures, etc.).
const BackgroundEventRatePerDay = 0.35

// BackgroundEvents samples the baseline non-CMF failures in [from, to).
func (e *Engine) BackgroundEvents(from, to time.Time) []ras.Event {
	days := to.Sub(from).Hours() / 24
	n := e.poisson(BackgroundEventRatePerDay * days)
	out := make([]ras.Event, 0, n)
	for i := 0; i < n; i++ {
		offset := time.Duration(e.rng.Int63n(int64(to.Sub(from))))
		out = append(out, ras.Event{
			Time:     from.Add(offset),
			Rack:     topology.RackByIndex(e.rng.Intn(topology.NumRacks)),
			Type:     e.sampleType(),
			Severity: ras.Fatal,
			Message:  "background failure",
		})
	}
	return out
}
