package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// mergedReference derives the expected merged order from the serial
// rack-major EachRecord: stable-sort by (instant, rack index). Within one
// rack EachRecord is already time-ordered, so the stable sort is exactly
// the k-way merge's contract.
func mergedReference(s *Store) []sensors.Record {
	var out []sensors.Record
	s.EachRecord(func(r sensors.Record) { out = append(out, r) })
	sort.SliceStable(out, func(a, b int) bool {
		ta, tb := out[a].Time.UnixNano(), out[b].Time.UnixNano()
		if ta != tb {
			return ta < tb
		}
		return out[a].Rack.Index() < out[b].Rack.Index()
	})
	return out
}

func collectMerged(t *testing.T, s *Store, workers int) []sensors.Record {
	t.Helper()
	var out []sensors.Record
	if err := s.EachRecordMerged(workers, func(r sensors.Record) bool {
		out = append(out, r)
		return true
	}); err != nil {
		t.Fatalf("EachRecordMerged(%d): %v", workers, err)
	}
	return out
}

// sameRecords requires bit-identical sequences: same instants (including
// zone rendering, which the offline figures bucket by), same racks, same
// float bits on every channel.
func sameRecords(t *testing.T, label string, got, want []sensors.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: visited %d records, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if !g.Time.Equal(w.Time) || g.Rack != w.Rack {
			t.Fatalf("%s: record %d = (%v, %v), want (%v, %v)", label, i, g.Time, g.Rack, w.Time, w.Rack)
		}
		if g.Time.Format(time.RFC3339) != w.Time.Format(time.RFC3339) {
			t.Fatalf("%s: record %d zone rendering %q, want %q",
				label, i, g.Time.Format(time.RFC3339), w.Time.Format(time.RFC3339))
		}
		for _, m := range sensors.AllMetrics() {
			if math.Float64bits(g.Value(m)) != math.Float64bits(w.Value(m)) {
				t.Fatalf("%s: record %d %v = %v, want %v", label, i, m, g.Value(m), w.Value(m))
			}
		}
	}
}

// TestMergedScanEquivalence is the tentpole's correctness anchor: the
// serial rack-major scan, the parallel fan-out at several worker counts,
// and a warm-reopened store must all visit identical record sequences.
func TestMergedScanEquivalence(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	// All 48 racks, ~2 sealed partitions plus a live head each; every
	// tick exercises the full 48-way tie-break.
	const n = 600
	fill(t, n, topology.AllRacks(), s)

	want := mergedReference(s)
	if len(want) != n*topology.NumRacks {
		t.Fatalf("reference has %d records, want %d", len(want), n*topology.NumRacks)
	}
	for _, workers := range []int{1, 3, 8, topology.NumRacks, 0} {
		sameRecords(t, fmt.Sprintf("workers=%d", workers), collectMerged(t, s, workers), want)
	}

	// Warm reopen: flush to segments, reopen, merge again.
	dir := t.TempDir()
	if err := s.Flush(dir); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	re, err := Open(dir, Options{Partition: 24 * time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sameRecords(t, "warm reopen", collectMerged(t, re, 4), want)
}

// TestMergeByTimeRange checks the direct ScanShards+MergeByTime surface
// over a sub-range against a filtered reference.
func TestMergeByTimeRange(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	racks := []topology.RackID{{Row: 0, Col: 0}, {Row: 1, Col: 8}, {Row: 2, Col: 15}}
	fill(t, 700, racks, s)
	from := base.Add(137 * timeutil.SampleInterval)
	to := base.Add(512 * timeutil.SampleInterval)

	var want []sensors.Record
	for _, r := range mergedReference(s) {
		if !r.Time.Before(from) && r.Time.Before(to) {
			want = append(want, r)
		}
	}

	it := MergeByTime(s.ScanShards(from, to, 2))
	defer it.Close()
	var got []sensors.Record
	for it.Next() {
		got = append(got, it.Record())
	}
	if err := it.Err(); err != nil {
		t.Fatalf("merge: %v", err)
	}
	sameRecords(t, "sub-range merge", got, want)
}

// TestMergedScanEarlyStop exercises abandonment: stopping the visitor and
// closing a half-consumed iterator must not deadlock or leak workers
// (goroutine leaks show up as -race hammer flakiness; deadlocks as test
// timeouts).
func TestMergedScanEarlyStop(t *testing.T) {
	s := NewStoreWith(Options{Partition: 12 * time.Hour})
	fill(t, 500, topology.AllRacks(), s)

	seen := 0
	if err := s.EachRecordMerged(4, func(sensors.Record) bool {
		seen++
		return seen < 100
	}); err != nil {
		t.Fatalf("early stop: %v", err)
	}
	if seen != 100 {
		t.Fatalf("visited %d records, want 100", seen)
	}

	// Abandon a raw merge mid-flight; Close must be idempotent.
	it := MergeByTime(s.ScanShards(time.Unix(0, minTime), time.Unix(0, maxTime), 3))
	if !it.Next() {
		t.Fatal("expected at least one record")
	}
	it.Close()
	it.Close()
	if it.Next() {
		t.Fatal("Next after Close should report exhaustion")
	}
}

func TestMergedScanEmptyStore(t *testing.T) {
	s := NewStore()
	if err := s.EachRecordMerged(4, func(sensors.Record) bool {
		t.Fatal("no records expected")
		return false
	}); err != nil {
		t.Fatalf("empty scan: %v", err)
	}
}

// TestMergedScanCorruption white-boxes a corrupt sealed payload into one
// shard: the merged scan must surface it as an error (not a panic, unlike
// the EachRecord surface), while a scan that stops before the corrupt
// block stays clean thanks to demand-driven decoding.
func TestMergedScanCorruption(t *testing.T) {
	s := NewStoreWith(Options{Partition: 6 * time.Hour})
	rack := topology.RackID{Row: 1, Col: 1}
	fill(t, 500, []topology.RackID{rack}, s)
	s.SealAll()

	sh := &s.shards[rack.Index()]
	if len(sh.sealed) < 3 {
		t.Fatalf("need ≥3 sealed blocks, got %d", len(sh.sealed))
	}
	last := sh.sealed[len(sh.sealed)-1]
	last.times = []byte{0xff, 0xff, 0xff}

	// Early stop inside the first block: the corrupt tail is never
	// requested past the prefetch horizon, and the prefetched result is
	// simply discarded on Close.
	seen := 0
	if err := s.EachRecordMerged(2, func(sensors.Record) bool {
		seen++
		return seen < 10
	}); err != nil {
		t.Fatalf("early-stopped scan should not surface the corrupt tail: %v", err)
	}

	// A full scan must report it.
	if err := s.EachRecordMerged(2, func(sensors.Record) bool { return true }); err == nil {
		t.Fatal("full scan over corrupt block should error")
	}
}

// TestEachRecordUntilSurfacesCorruption pins the EachRecordUntil bugfix:
// corruption may not be silently dropped even when the visitor stops the
// scan early — the error-free surface panics on it.
func TestEachRecordUntilSurfacesCorruption(t *testing.T) {
	s := NewStoreWith(Options{Partition: 6 * time.Hour})
	rack := topology.RackID{Row: 0, Col: 3}
	fill(t, 200, []topology.RackID{rack}, s)
	s.SealAll()
	s.shards[rack.Index()].sealed[0].times = []byte{0x00}

	defer func() {
		if recover() == nil {
			t.Fatal("EachRecordUntil over a corrupt shard should panic even with an early-stopping visitor")
		}
	}()
	s.EachRecordUntil(func(sensors.Record) bool { return false })
}

// TestMergedScanDuringIngest hammers merged scans against concurrent
// appends (run under -race by make check): scans run on snapshots, so
// each must observe an internally consistent, time-ordered sequence.
func TestMergedScanDuringIngest(t *testing.T) {
	s := NewStoreWith(Options{Partition: time.Hour})
	racks := []topology.RackID{{Row: 0, Col: 2}, {Row: 1, Col: 7}, {Row: 2, Col: 11}, {Row: 1, Col: 14}}
	const perRack = 1500

	var wg sync.WaitGroup
	for _, rack := range racks {
		wg.Add(1)
		go func(rack topology.RackID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(rack.Index())))
			for i := 0; i < perRack; i++ {
				ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
				if err := s.Append(synthRecord(rng, rack, ts)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(rack)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for scanning := true; scanning; {
		select {
		case <-done:
			scanning = false
		default:
		}
		var prevT int64 = math.MinInt64
		prevRack := -1
		n := 0
		if err := s.EachRecordMerged(3, func(r sensors.Record) bool {
			k := r.Time.UnixNano()
			if k < prevT || (k == prevT && r.Rack.Index() <= prevRack) {
				t.Errorf("merge order violation at record %d: (%d,%d) after (%d,%d)",
					n, k, r.Rack.Index(), prevT, prevRack)
				return false
			}
			prevT, prevRack = k, r.Rack.Index()
			n++
			return true
		}); err != nil {
			t.Fatalf("scan during ingest: %v", err)
		}
	}

	// Steady state: the final scan sees everything.
	if got := len(collectMerged(t, s, 4)); got != perRack*len(racks) {
		t.Fatalf("final scan visited %d records, want %d", got, perRack*len(racks))
	}
}
