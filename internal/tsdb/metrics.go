package tsdb

// Observability instrumentation of the storage engine. Hot-path metrics
// (append, decode) are single lock-free atomic adds on the obs default
// registry — cheap enough for the ingest path (see BenchmarkAppend, whose
// before/after numbers scripts/bench.sh records in BENCH_tsdb.json).
// Footprint metrics are scrape-time gauges refreshed by ExposeGauges, so
// they cost nothing between scrapes.

import (
	"fmt"

	"mira/internal/obs"
)

var (
	metAppend = obs.NewCounter("mira_tsdb_append_total",
		"records accepted by Store.Append across all stores in the process")
	metOutOfOrder = obs.NewCounter("mira_tsdb_out_of_order_dropped_total",
		"records rejected by Store.Append for violating per-rack time order")
	metSealDur = obs.NewHistogram("mira_tsdb_block_seal_duration_seconds",
		"time to compress one head block into an immutable sealed block", nil)
	metFlushBytes = obs.NewCounter("mira_tsdb_flush_bytes_written_total",
		"segment bytes written to disk by Store.Flush")
	metDecode = obs.NewCounter("mira_tsdb_block_decode_total",
		"compressed payload decodes (one timestamp stream or value column each)")
	metQueryDur = obs.NewHistogramVec("mira_tsdb_query_duration_seconds",
		"latency of the read surface, labeled by operation", "op", nil)

	// Parallel scan layer (ScanShards / MergeByTime / EachRecordMerged).
	metScanWorkers = obs.NewGauge("mira_tsdb_scan_workers",
		"decode workers used by the most recent ScanShards fan-out")
	metScanBlocks = obs.NewCounter("mira_tsdb_scan_blocks_decoded_total",
		"sealed or head blocks decoded by scan-pool workers")
	metScanDecodeDur = obs.NewHistogram("mira_tsdb_scan_block_decode_duration_seconds",
		"time a scan-pool worker spends decoding one block (all channels)", nil)
	metScanStallDur = obs.NewHistogram("mira_tsdb_scan_merge_stall_seconds",
		"time the merge iterator waits for a shard's next decoded run; near zero when prefetch keeps up", nil)
	metScanRecords = obs.NewCounter("mira_tsdb_scan_records_merged_total",
		"records yielded in global time order by merge iterators")
	metScanPruned = obs.NewCounter("mira_tsdb_scan_blocks_pruned_total",
		"sealed blocks skipped by zone-map predicate pruning without decoding")

	// Retention compaction (Store.Compact / CompactBefore).
	metCompactTotal = obs.NewCounter("mira_tsdb_compact_runs_total",
		"retention compaction runs (including no-op runs)")
	metCompactBlocks = obs.NewCounter("mira_tsdb_compact_blocks_folded_total",
		"raw sealed blocks folded into the downsampled tier")
	metCompactRecords = obs.NewCounter("mira_tsdb_compact_records_folded_total",
		"raw records folded into downsampled windows")
	metCompactWindows = obs.NewCounter("mira_tsdb_compact_windows_written_total",
		"downsampled windows written by compaction")
	metCompactBytesReclaimed = obs.NewCounter("mira_tsdb_compact_bytes_reclaimed_total",
		"payload bytes saved by folding raw blocks into downsampled blocks")
	metCompactDur = obs.NewHistogram("mira_tsdb_compact_duration_seconds",
		"wall time of one retention compaction run across all shards", nil)
)

// ExposeGauges registers scrape-time gauges describing this store's
// footprint on reg (nil selects the obs default registry): record counts,
// sealed/head/disk bytes, compression ratio, and one
// mira_tsdb_shard_samples{shard} gauge per rack so ingest skew across the
// 48 shards is visible at a glance. The gauges refresh from Store.Stats on
// every scrape or report snapshot; expose the store a process serves (last
// registration wins when several stores share a registry).
func (s *Store) ExposeGauges(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	var (
		records      = reg.Gauge("mira_tsdb_records", "stored samples across all racks (sealed + head)")
		sealedBlocks = reg.Gauge("mira_tsdb_sealed_blocks", "immutable compressed blocks across all shards")
		sealedBytes  = reg.Gauge("mira_tsdb_sealed_bytes", "compressed payload bytes of all sealed blocks")
		headBytes    = reg.Gauge("mira_tsdb_head_bytes", "uncompressed columnar head footprint in bytes")
		diskBytes    = reg.Gauge("mira_tsdb_disk_bytes", "segment-file footprint as of the last Flush or Open")
		perSample    = reg.Gauge("mira_tsdb_compressed_bytes_per_sample", "sealed bytes per (timestamp, value) sample")
		shardSamples = reg.GaugeVec("mira_tsdb_shard_samples", "stored samples per shard (rack), for ingest-skew checks", "shard")
		hallSamples  = reg.GaugeVec("mira_tsdb_hall_samples", "stored samples per machine hall, for fleet ingest-skew checks", "hall")
		coldBlocks   = reg.Gauge("mira_tsdb_cold_blocks", "downsampled blocks across all shards")
		coldWindows  = reg.Gauge("mira_tsdb_cold_windows", "downsampled windows across all shards")
		coldSource   = reg.Gauge("mira_tsdb_cold_source_records", "raw records folded into the downsampled tier")
		coldBytes    = reg.Gauge("mira_tsdb_cold_bytes", "compressed payload bytes of the downsampled tier")
	)
	reg.OnScrape(func() {
		st := s.Stats()
		records.Set(float64(st.Records))
		sealedBlocks.Set(float64(st.SealedBlocks))
		sealedBytes.Set(float64(st.SealedBytes))
		headBytes.Set(float64(st.HeadBytes))
		diskBytes.Set(float64(st.DiskBytes))
		perSample.Set(st.BytesPerSample)
		coldBlocks.Set(float64(st.ColdBlocks))
		coldWindows.Set(float64(st.ColdWindows))
		coldSource.Set(float64(st.ColdSourceRecords))
		coldBytes.Set(float64(st.ColdBytes))
		totals := s.shardTotals()
		for i, n := range totals {
			shardSamples.With(fmt.Sprintf("%02d", i)).Set(float64(n))
		}
		fleet := s.Fleet()
		for h := 0; h < fleet.Halls; h++ {
			sum := 0
			for _, n := range totals[h*fleet.Racks : (h+1)*fleet.Racks] {
				sum += n
			}
			hallSamples.With(fmt.Sprintf("%02d", h)).Set(float64(sum))
		}
	})
}

// shardTotals reads each shard's stored-record count under its read lock.
func (s *Store) shardTotals() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		out[i] = sh.total
		sh.mu.RUnlock()
	}
	return out
}

// queryOp names for metQueryDur, kept as constants so the label set stays
// closed.
const (
	opQuery       = "query"
	opSeries      = "series"
	opAggregate   = "aggregate"
	opScanMerged  = "scan_merged"
	opScanChunked = "scan_chunked"
)
