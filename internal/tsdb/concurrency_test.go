package tsdb

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// TestConcurrentAppendQuery hammers the store with one writer per rack and
// several analytical readers scanning the same shards — the production
// shape: the simulator appends while analyses run. Run under -race (the
// Makefile's `check` target does) to validate the snapshot discipline.
func TestConcurrentAppendQuery(t *testing.T) {
	s := NewStoreWith(Options{Partition: time.Hour}) // 12 samples/block: many seals
	racks := []topology.RackID{{Row: 0, Col: 1}, {Row: 1, Col: 8}, {Row: 2, Col: 15}}
	const perRack = 4000
	end := base.Add(perRack * timeutil.SampleInterval)

	var wg sync.WaitGroup
	done := make(chan struct{})

	// One writer per rack shard.
	for wi, rack := range racks {
		wg.Add(1)
		go func(seed int64, rack topology.RackID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perRack; i++ {
				ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
				if err := s.Append(synthRecord(rng, rack, ts)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(int64(wi), rack)
	}

	// Readers: range queries, series, aggregates, full scans.
	for ri := 0; ri < 4; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				rack := racks[rng.Intn(len(racks))]
				lo := rng.Intn(perRack)
				hi := lo + rng.Intn(perRack-lo)
				from := base.Add(time.Duration(lo) * timeutil.SampleInterval)
				to := base.Add(time.Duration(hi) * timeutil.SampleInterval)
				switch rng.Intn(4) {
				case 0:
					recs := s.Query(rack, from, to)
					for i, r := range recs {
						if r.Rack != rack {
							t.Errorf("cross-shard contamination: %v", r.Rack)
							return
						}
						if i > 0 && r.Time.Before(recs[i-1].Time) {
							t.Error("unordered query result")
							return
						}
					}
				case 1:
					ts, vs := s.Series(rack, sensors.MetricInletTemp, from, to)
					if len(ts) != len(vs) {
						t.Errorf("series lengths %d/%d", len(ts), len(vs))
						return
					}
				case 2:
					aggs, err := s.Aggregate(rack, sensors.MetricPower, from, to, time.Hour)
					if err != nil {
						t.Errorf("aggregate: %v", err)
						return
					}
					for _, w := range aggs {
						if w.Count > 0 && (w.Min > w.Max || w.Sum < float64(w.Count)*w.Min) {
							t.Errorf("inconsistent aggregate %+v", w)
							return
						}
					}
				case 3:
					n := 0
					s.EachRecordUntil(func(sensors.Record) bool { n++; return n < 500 })
					_ = s.Len()
				}
			}
		}(int64(ri))
	}

	// Wait for writers, then stop readers.
	writersDone := make(chan struct{})
	go func() {
		// Writers are the first len(racks) Adds; simplest is to re-wait on
		// a separate group — instead track via counting appended records.
		for s.Len() < perRack*len(racks) {
			time.Sleep(time.Millisecond)
		}
		close(writersDone)
	}()
	<-writersDone
	close(done)
	wg.Wait()

	if s.Len() != perRack*len(racks) {
		t.Fatalf("Len = %d, want %d", s.Len(), perRack*len(racks))
	}
	for _, rack := range racks {
		if got := len(s.Query(rack, base, end)); got != perRack {
			t.Errorf("rack %v: %d records, want %d", rack, got, perRack)
		}
	}
}
