package tsdb

// Downsampled ("cold") blocks — the 1-hour-cadence tier that retention
// compaction folds old sealed partitions into. A downBlock keeps, per
// compaction window and channel, the record count, sum, min, and max; that
// is exactly the state Aggregate accumulates, so count/sum/mean/min/max
// queries over the cold tier reproduce the raw answer. For channels stored
// as quantized integers (every channel with a decimal precision — the
// default for all six), the fold runs in the integer domain and the stored
// sums are exact: post-compaction aggregates equal pre-compaction brute
// force bit for bit. Channels that fell back to XOR float encoding fold in
// float order, so their cold sums (and means) are approximate while count,
// min, and max stay exact; the default configuration has no such channels.
//
// On-wire layout of an integer channel: four bypass-shift bytes (mean
// delta, remainder, min offset, max offset streams), two zigzag-uvarint
// offset bases, then a single range-coded stream interleaving the four
// per-window symbols (see rangecoder.go). Each window's sum is decomposed
// as sum = mf·count + rem with mf = floor(sum/count) and rem ∈ [0,count):
// mf moves like the signal (small deltas), rem and the min/max offsets are
// noise-scale, and the adaptive coder squeezes all four well under the
// varbit bucket sizes. XOR-fallback channels store three length-prefixed
// Gorilla streams (sums, mins, maxs).

import (
	"encoding/binary"
	"fmt"

	"mira/internal/sensors"
)

// downChannel is one compressed aggregate column of a downsampled block.
type downChannel struct {
	enc   byte    // encInt: exact integer streams; encXOR: float fallback
	scale float64 // 10^decimals, valid when enc == encInt
	data  []byte
}

// downBlock is an immutable run of downsampled windows for one shard.
// minT/maxT are the first and last window START times; a window covers
// [start, start+window). Like sealedBlock, all fields are written once and
// concurrent readers decode without locks.
type downBlock struct {
	window     int64 // compaction window length, nanoseconds
	minT, maxT int64 // first/last window start, unix nanoseconds
	count      int   // number of windows
	srcRecords int64 // raw records folded into this block
	times      []byte
	counts     []byte
	ch         [sensors.NumMetrics]downChannel
	src        string // segment origin for disk-loaded blocks, "" in memory
}

// downColumn is one decoded aggregate column. scale > 0 means the integer
// slices are valid and exact; otherwise the float slices hold the
// XOR-fallback aggregates.
type downColumn struct {
	scale               float64
	sumsI, minsI, maxsI []int64
	sumsF, minsF, maxsF []float64
}

// wrap qualifies a decode error with the block's origin and marks it as
// corruption: downsampled payloads only decode wrong when the bytes are.
func (b *downBlock) wrap(what string, err error) error {
	if b.src != "" {
		return fmt.Errorf("tsdb: %s: %s: %w: %w", b.src, what, ErrCorrupt, err)
	}
	return fmt.Errorf("tsdb: downsampled block: %s: %w: %w", what, ErrCorrupt, err)
}

// starts decodes the window start times and validates their shape against
// the block header.
func (b *downBlock) starts() ([]int64, error) {
	metDecode.Inc()
	ts, err := decodeTimes(b.times, b.count)
	if err != nil {
		return nil, b.wrap("window starts", err)
	}
	for i, t := range ts {
		if t != floorDiv(t, b.window)*b.window {
			return nil, b.wrap("window starts", fmt.Errorf("start %d not aligned to %dns windows", t, b.window))
		}
		if i > 0 && t <= ts[i-1] {
			return nil, b.wrap("window starts", fmt.Errorf("starts not strictly increasing at %d", i))
		}
	}
	if ts[0] != b.minT || ts[len(ts)-1] != b.maxT {
		return nil, b.wrap("window starts", fmt.Errorf("start range [%d,%d] disagrees with header [%d,%d]", ts[0], ts[len(ts)-1], b.minT, b.maxT))
	}
	return ts, nil
}

// recordCounts decodes the per-window record counts and validates them
// against the block's source-record total.
func (b *downBlock) recordCounts() ([]int64, error) {
	metDecode.Inc()
	cs, err := decodeInts(b.counts, b.count)
	if err != nil {
		return nil, b.wrap("window counts", err)
	}
	var total int64
	for i, c := range cs {
		if c <= 0 {
			return nil, b.wrap("window counts", fmt.Errorf("window %d has count %d", i, c))
		}
		total += c
	}
	if total != b.srcRecords {
		return nil, b.wrap("window counts", fmt.Errorf("counts sum to %d, header says %d records", total, b.srcRecords))
	}
	return cs, nil
}

// channelAgg decodes one channel's per-window sum/min/max columns. counts
// must come from recordCounts (the integer codec needs them to rebuild
// sums from their mean/remainder decomposition).
func (b *downBlock) channelAgg(m sensors.Metric, counts []int64) (downColumn, error) {
	metDecode.Inc()
	c := b.ch[m]
	if c.enc == encXOR {
		sums, mins, maxs, err := decodeDownFloats(c.data, b.count)
		if err != nil {
			return downColumn{}, b.wrap(m.String(), err)
		}
		return downColumn{sumsF: sums, minsF: mins, maxsF: maxs}, nil
	}
	sums, mins, maxs, err := decodeDownInts(c.data, counts)
	if err != nil {
		return downColumn{}, b.wrap(m.String(), err)
	}
	return downColumn{scale: c.scale, sumsI: sums, minsI: mins, maxsI: maxs}, nil
}

// channelMeans materializes one channel as per-window mean values — the
// record stream a downsampled block contributes to Series, Query, and the
// merged scan.
func (b *downBlock) channelMeans(m sensors.Metric, counts []int64) ([]float64, error) {
	col, err := b.channelAgg(m, counts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, b.count)
	if col.scale > 0 {
		for i := range out {
			out[i] = float64(col.sumsI[i]) / col.scale / float64(counts[i])
		}
	} else {
		for i := range out {
			out[i] = col.sumsF[i] / float64(counts[i])
		}
	}
	return out, nil
}

// payloadBytes is the compressed size of the block's streams.
func (b *downBlock) payloadBytes() int64 {
	n := int64(len(b.times) + len(b.counts))
	for m := range b.ch {
		n += int64(len(b.ch[m].data))
	}
	return n
}

// addInt64 adds with overflow detection.
func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// foldBlocks downsamples an ordered run of sealed blocks from one shard
// into a single downBlock at the given window length. Blocks must be in
// time order with strictly increasing timestamps (the shard invariant).
// One block spans the whole folded range on purpose: the cold codec's
// adaptive models need long streams to reach their compression ratio.
func foldBlocks(blocks []*sealedBlock, scales [sensors.NumMetrics]float64, win int64, src string) (*downBlock, error) {
	var starts, counts []int64
	winIdx := make([][]int32, len(blocks))
	var srcRecords int64
	for bi, b := range blocks {
		ts, err := b.decodeTimes()
		if err != nil {
			return nil, err
		}
		idx := make([]int32, len(ts))
		for i, t := range ts {
			w := floorDiv(t, win) * win
			if len(starts) == 0 || w != starts[len(starts)-1] {
				if len(starts) > 0 && w < starts[len(starts)-1] {
					return nil, b.wrap("downsampling", fmt.Errorf("timestamps regress across window %d", w))
				}
				starts = append(starts, w)
				counts = append(counts, 0)
			}
			idx[i] = int32(len(starts) - 1)
			counts[len(counts)-1]++
		}
		winIdx[bi] = idx
		srcRecords += int64(b.count)
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("tsdb: downsampling empty block run")
	}
	nw := len(starts)
	d := &downBlock{
		window:     win,
		minT:       starts[0],
		maxT:       starts[nw-1],
		count:      nw,
		srcRecords: srcRecords,
		times:      encodeTimes(starts),
		counts:     encodeInts(counts),
		src:        src,
	}
	for m := range d.ch {
		exact := scales[m] > 0
		for _, b := range blocks {
			if (b.ch[m].enc != encInt && b.ch[m].enc != encIntPacked) || b.ch[m].scale != scales[m] {
				exact = false
				break
			}
		}
		if exact {
			sumsI := make([]int64, nw)
			minsI := make([]int64, nw)
			maxsI := make([]int64, nw)
			seen := make([]bool, nw)
			ok := true
		intFold:
			for bi, b := range blocks {
				metDecode.Inc()
				ints, err := decodeQuantizedInto(nil, b.ch[m], b.count)
				if err != nil {
					return nil, b.wrap(sensors.Metric(m).String(), err)
				}
				for i, v := range ints {
					k := winIdx[bi][i]
					s, fits := addInt64(sumsI[k], v)
					if !fits {
						ok = false
						break intFold
					}
					sumsI[k] = s
					if !seen[k] {
						minsI[k], maxsI[k] = v, v
						seen[k] = true
						continue
					}
					if v < minsI[k] {
						minsI[k] = v
					}
					if v > maxsI[k] {
						maxsI[k] = v
					}
				}
			}
			if ok {
				d.ch[m] = downChannel{
					enc:   encInt,
					scale: scales[m],
					data:  encodeDownChannelInts(sumsI, minsI, maxsI, counts),
				}
				continue
			}
			// Integer sums overflowed — refold this channel in float.
		}
		sumsF := make([]float64, nw)
		minsF := make([]float64, nw)
		maxsF := make([]float64, nw)
		seen := make([]bool, nw)
		for bi, b := range blocks {
			vals, err := b.decodeChannel(sensors.Metric(m))
			if err != nil {
				return nil, err
			}
			for i, v := range vals {
				k := winIdx[bi][i]
				sumsF[k] += v
				if !seen[k] {
					minsF[k], maxsF[k] = v, v
					seen[k] = true
					continue
				}
				if v < minsF[k] {
					minsF[k] = v
				}
				if v > maxsF[k] {
					maxsF[k] = v
				}
			}
		}
		d.ch[m] = downChannel{enc: encXOR, data: encodeDownChannelFloats(sumsF, minsF, maxsF)}
	}
	return d, nil
}

func putZigzagUvarint(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], zigzag(v))]...)
}

// encodeDownChannelInts compresses exact per-window sum/min/max integer
// columns. Each window decomposes into mf = floor(sum/count), rem = sum −
// mf·count, minOff = mf − min, maxOff = max − mf; the four resulting
// streams (mf as deltas, offsets centered on their stream mean) go through
// one interleaved range-coded stream with independent adaptive models.
func encodeDownChannelInts(sums, mins, maxs, counts []int64) []byte {
	n := len(counts)
	mfD := make([]uint64, n)
	rems := make([]uint64, n)
	minOff := make([]int64, n)
	maxOff := make([]int64, n)
	var prev int64
	var minMean, maxMean float64
	for i := 0; i < n; i++ {
		mf := floorDiv(sums[i], counts[i])
		mfD[i] = zigzag(mf - prev)
		prev = mf
		rems[i] = uint64(sums[i] - mf*counts[i])
		minOff[i] = mf - mins[i]
		maxOff[i] = maxs[i] - mf
		minMean += float64(minOff[i])
		maxMean += float64(maxOff[i])
	}
	baseMin := int64(minMean / float64(n))
	baseMax := int64(maxMean / float64(n))
	minC := make([]uint64, n)
	maxC := make([]uint64, n)
	for i := 0; i < n; i++ {
		minC[i] = zigzag(minOff[i] - baseMin)
		maxC[i] = zigzag(maxOff[i] - baseMax)
	}
	out := []byte{
		byte(chooseShift(mfD)),
		byte(chooseShift(rems)),
		byte(chooseShift(minC)),
		byte(chooseShift(maxC)),
	}
	out = putZigzagUvarint(out, baseMin)
	out = putZigzagUvarint(out, baseMax)
	e := newRCEncoder()
	mMF := newSymModel(uint(out[0]))
	mRem := newSymModel(uint(out[1]))
	mMin := newSymModel(uint(out[2]))
	mMax := newSymModel(uint(out[3]))
	for i := 0; i < n; i++ {
		e.symbol(mMF, mfD[i])
		e.symbol(mRem, rems[i])
		e.symbol(mMin, minC[i])
		e.symbol(mMax, maxC[i])
	}
	return append(out, e.finish()...)
}

// decodeDownInts reverses encodeDownChannelInts. counts are the per-window
// record counts; each decoded remainder must fall in [0, count), which
// doubles as a cheap structural check on corrupt payloads.
func decodeDownInts(data []byte, counts []int64) (sums, mins, maxs []int64, err error) {
	n := len(counts)
	if len(data) < 4 {
		return nil, nil, nil, errOverrun
	}
	rMF, rRem, rMin, rMax := uint(data[0]), uint(data[1]), uint(data[2]), uint(data[3])
	if rMF > 63 || rRem > 63 || rMin > 63 || rMax > 63 {
		return nil, nil, nil, fmt.Errorf("bypass shift out of range")
	}
	rest := data[4:]
	u, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, nil, nil, errOverrun
	}
	baseMin := unzigzag(u)
	rest = rest[k:]
	u, k = binary.Uvarint(rest)
	if k <= 0 {
		return nil, nil, nil, errOverrun
	}
	baseMax := unzigzag(u)
	rest = rest[k:]
	d := newRCDecoder(rest)
	mMF := newSymModel(rMF)
	mRem := newSymModel(rRem)
	mMin := newSymModel(rMin)
	mMax := newSymModel(rMax)
	sums = make([]int64, n)
	mins = make([]int64, n)
	maxs = make([]int64, n)
	var mf int64
	for i := 0; i < n; i++ {
		mf += unzigzag(d.symbol(mMF))
		rem := int64(d.symbol(mRem))
		if rem < 0 || rem >= counts[i] {
			return nil, nil, nil, fmt.Errorf("window %d remainder %d outside [0,%d)", i, rem, counts[i])
		}
		minOff := baseMin + unzigzag(d.symbol(mMin))
		maxOff := baseMax + unzigzag(d.symbol(mMax))
		if minOff < 0 || maxOff < 0 {
			return nil, nil, nil, fmt.Errorf("window %d has negative min/max offset", i)
		}
		sums[i] = mf*counts[i] + rem
		mins[i] = mf - minOff
		maxs[i] = mf + maxOff
	}
	if d.short {
		return nil, nil, nil, errOverrun
	}
	return sums, mins, maxs, nil
}

// encodeDownChannelFloats stores XOR-fallback aggregates as three Gorilla
// streams: length-prefixed sums and mins, then maxs to the end.
func encodeDownChannelFloats(sums, mins, maxs []float64) []byte {
	se := encodeXOR(sums)
	me := encodeXOR(mins)
	xe := encodeXOR(maxs)
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(se)))]...)
	out = append(out, se...)
	out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(me)))]...)
	out = append(out, me...)
	out = append(out, xe...)
	return out
}

func decodeDownFloats(data []byte, n int) (sums, mins, maxs []float64, err error) {
	next := func() ([]byte, error) {
		l, k := binary.Uvarint(data)
		if k <= 0 || l > uint64(len(data)-k) {
			return nil, errOverrun
		}
		seg := data[k : k+int(l)]
		data = data[k+int(l):]
		return seg, nil
	}
	se, err := next()
	if err != nil {
		return nil, nil, nil, err
	}
	me, err := next()
	if err != nil {
		return nil, nil, nil, err
	}
	if sums, err = decodeXOR(se, n); err != nil {
		return nil, nil, nil, err
	}
	if mins, err = decodeXOR(me, n); err != nil {
		return nil, nil, nil, err
	}
	if maxs, err = decodeXOR(data, n); err != nil {
		return nil, nil, nil, err
	}
	return sums, mins, maxs, nil
}
