package tsdb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// collectChunked materializes every row of a chunked merged scan through
// Chunk.Record, so the result is comparable bit-for-bit against the
// record-at-a-time surfaces.
func collectChunked(t *testing.T, s *Store, workers int) []sensors.Record {
	t.Helper()
	var out []sensors.Record
	if err := s.EachChunkMerged(workers, func(c *envdb.Chunk) bool {
		for i := 0; i < c.Len(); i++ {
			out = append(out, c.Record(i))
		}
		return true
	}); err != nil {
		t.Fatalf("EachChunkMerged(%d): %v", workers, err)
	}
	return out
}

// TestChunkedScanEquivalence is the chunked path's correctness anchor: the
// batch-columnar scan must visit record sequences bit-identical to the
// record-at-a-time merge — same instants, racks, tiers, and float bits —
// at every worker count, and again after a warm reopen.
func TestChunkedScanEquivalence(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	// All 48 racks, several sealed partitions plus a live head each, so
	// every tick exercises the full 48-way tie interleave.
	const n = 600
	fill(t, n, topology.AllRacks(), s)

	want := mergedReference(s)
	if len(want) != n*topology.NumRacks {
		t.Fatalf("reference has %d records, want %d", len(want), n*topology.NumRacks)
	}
	for _, workers := range []int{1, 3, 8, 0} {
		sameRecords(t, fmt.Sprintf("chunked workers=%d", workers), collectChunked(t, s, workers), want)
	}

	dir := t.TempDir()
	if err := s.Flush(dir); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	re, err := Open(dir, Options{Partition: 24 * time.Hour})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	sameRecords(t, "chunked warm reopen", collectChunked(t, re, 2), want)
}

// TestChunkedScanTiers checks that chunk rows carry the storage tier and
// stay identical to the tier-aware record scan over a compacted store.
func TestChunkedScanTiers(t *testing.T) {
	s := NewStoreWith(Options{
		Partition: 6 * time.Hour,
		Retention: 12 * time.Hour,
	})
	racks := []topology.RackID{{Row: 0, Col: 0}, {Row: 1, Col: 9}}
	fill(t, 600, racks, s)
	if _, err := s.Compact(t.TempDir()); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	type tiered struct {
		r    sensors.Record
		tier envdb.Tier
	}
	var want []tiered
	if err := s.EachRecordMergedTier(2, func(r sensors.Record, tier envdb.Tier) bool {
		want = append(want, tiered{r, tier})
		return true
	}); err != nil {
		t.Fatalf("EachRecordMergedTier: %v", err)
	}
	var got []tiered
	if err := s.EachChunkMerged(2, func(c *envdb.Chunk) bool {
		for i := 0; i < c.Len(); i++ {
			got = append(got, tiered{c.Record(i), c.Tiers[i]})
		}
		return true
	}); err != nil {
		t.Fatalf("EachChunkMerged: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("chunked visited %d rows, want %d", len(got), len(want))
	}
	sawDown := false
	for i := range want {
		if got[i].tier != want[i].tier {
			t.Fatalf("row %d tier = %v, want %v", i, got[i].tier, want[i].tier)
		}
		sawDown = sawDown || got[i].tier == envdb.TierDownsampled
	}
	if !sawDown {
		t.Fatal("compacted store produced no downsampled rows — test store mis-built")
	}
}

// TestChunkedScanEqualTimestampsAcrossSeal pins the cross-run continuation
// of the round merge: sealing mid-partition can split records with equal
// timestamps for one rack across two runs, and the chunk path must still
// emit them consecutively in the right global slot.
func TestChunkedScanEqualTimestampsAcrossSeal(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	rng := rand.New(rand.NewSource(5))
	racks := []topology.RackID{{Row: 0, Col: 1}, {Row: 0, Col: 2}}
	ts := base
	for i := 0; i < 40; i++ {
		for _, rack := range racks {
			if err := s.Append(synthRecord(rng, rack, ts)); err != nil {
				t.Fatal(err)
			}
		}
		if i == 19 {
			// Seal with the next appends repeating this exact timestamp:
			// rack 0's equal-timestamp records now span a sealed block and
			// the fresh head.
			s.SealAll()
			continue // do not advance ts
		}
		ts = ts.Add(timeutil.SampleInterval)
	}
	want := mergedReference(s)
	sameRecords(t, "equal timestamps across seal", collectChunked(t, s, 2), want)
}

// TestChunkedScanEarlyStopAndEmpty: stopping after the first chunk must
// release the pool without deadlock, and an empty store must yield no
// callback at all.
func TestChunkedScanEarlyStopAndEmpty(t *testing.T) {
	s := NewStoreWith(Options{Partition: 12 * time.Hour})
	fill(t, 500, topology.AllRacks(), s)
	chunks := 0
	if err := s.EachChunkMerged(4, func(c *envdb.Chunk) bool {
		if c.Len() == 0 {
			t.Fatal("empty chunk delivered")
		}
		chunks++
		return false
	}); err != nil {
		t.Fatalf("early stop: %v", err)
	}
	if chunks != 1 {
		t.Fatalf("visited %d chunks after stopping at the first, want 1", chunks)
	}

	if err := NewStore().EachChunkMerged(2, func(*envdb.Chunk) bool {
		t.Fatal("no chunks expected from an empty store")
		return false
	}); err != nil {
		t.Fatalf("empty scan: %v", err)
	}
}

// TestChunkedScanCorruption: a corrupt sealed payload must surface as an
// error from the chunked scan, not a panic.
func TestChunkedScanCorruption(t *testing.T) {
	s := NewStoreWith(Options{Partition: 6 * time.Hour})
	rack := topology.RackID{Row: 1, Col: 1}
	fill(t, 500, []topology.RackID{rack}, s)
	s.SealAll()
	sh := &s.shards[rack.Index()]
	sh.sealed[len(sh.sealed)-1].times = []byte{0xff, 0xff, 0xff}
	if err := s.EachChunkMerged(2, func(*envdb.Chunk) bool { return true }); err == nil {
		t.Fatal("chunked scan over corrupt block should error")
	}
}

// TestChunkedScanPruning: zone-map predicates skip sealed blocks without
// decoding them. The proof that pruned blocks are never touched: one block
// is corrupted, and the scan stays clean as long as the predicate excludes
// it — then fails when the predicate admits it.
func TestChunkedScanPruning(t *testing.T) {
	s := NewStoreWith(Options{Partition: 6 * time.Hour})
	rack := topology.RackID{Row: 2, Col: 4}
	fill(t, 500, []topology.RackID{rack}, s)
	s.SealAll()

	want := mergedReference(s)
	sh := &s.shards[rack.Index()]
	if len(sh.sealed) < 2 {
		t.Fatalf("need ≥2 sealed blocks, got %d", len(sh.sealed))
	}

	// A tautological predicate prunes nothing and changes nothing.
	all := func(zones *[sensors.NumMetrics]ZoneMap) bool {
		z := zones[sensors.MetricPower]
		return !z.usable() || z.Max >= z.Min
	}
	var got []sensors.Record
	if err := s.EachChunkMergedWhere(2, all, func(c *envdb.Chunk) bool {
		for i := 0; i < c.Len(); i++ {
			got = append(got, c.Record(i))
		}
		return true
	}); err != nil {
		t.Fatalf("EachChunkMergedWhere(all): %v", err)
	}
	sameRecords(t, "tautological predicate", got, want)

	// An impossible predicate prunes every sealed block: zero rows.
	none := func(*[sensors.NumMetrics]ZoneMap) bool { return false }
	rows := 0
	if err := s.EachChunkMergedWhere(2, none, func(c *envdb.Chunk) bool {
		rows += c.Len()
		return true
	}); err != nil {
		t.Fatalf("EachChunkMergedWhere(none): %v", err)
	}
	if rows != 0 {
		t.Fatalf("impossible predicate yielded %d rows, want 0", rows)
	}

	// Corrupt one block's payload. Pruning it keeps the scan clean —
	// proving the block was skipped before any decode — while admitting it
	// surfaces the corruption.
	bad := sh.sealed[1]
	badMin := bad.zones[sensors.MetricPower].Min
	bad.times = []byte{0xff, 0xff, 0xff}
	skipBad := func(zones *[sensors.NumMetrics]ZoneMap) bool {
		z := zones[sensors.MetricPower]
		return !z.usable() || z.Min != badMin
	}
	if err := s.EachChunkMergedWhere(2, skipBad, func(*envdb.Chunk) bool { return true }); err != nil {
		t.Fatalf("scan pruning the corrupt block should stay clean: %v", err)
	}
	if err := s.EachChunkMergedWhere(2, all, func(*envdb.Chunk) bool { return true }); err == nil {
		t.Fatal("scan admitting the corrupt block should error")
	}
}

// TestScanStopsAtRangeEnd pins the early-termination bugfix: a scan whose
// range ends early in the trace must stop walking the block list at the
// first block past the range instead of bounds-checking every remaining
// block (and, before the fix, the same `continue` pattern kept the stream
// alive to the end of the trace).
func TestScanStopsAtRangeEnd(t *testing.T) {
	s := NewStoreWith(Options{Partition: time.Hour})
	rack := topology.RackID{Row: 0, Col: 7}
	const n = 1200 // 100 one-hour partitions at 300 s cadence
	fill(t, n, []topology.RackID{rack}, s)
	s.SealAll()

	// Range covering only the first ~2 partitions.
	from := base
	to := base.Add(20 * timeutil.SampleInterval)
	streams := s.ScanShards(from, to, 1)
	it := MergeByTime(streams)
	got := 0
	for it.Next() {
		got++
	}
	if err := it.Err(); err != nil {
		t.Fatalf("merge: %v", err)
	}
	it.Close() // workers joined: stream state is safe to inspect

	if got != 20 {
		t.Fatalf("visited %d records, want 20", got)
	}
	st := streams[rack.Index()]
	if total := len(st.blocks); total < 100 {
		t.Fatalf("test store has %d blocks, want ≥100", total)
	}
	// Two blocks decoded, then the third (first past the range) terminates
	// the stream without advancing the cursor over the tail.
	if st.nextBlock > 3 {
		t.Fatalf("stream advanced to block %d of %d; early termination should stop ≤3", st.nextBlock, len(st.blocks))
	}
}
