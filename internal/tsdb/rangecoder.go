package tsdb

// Binary range coder for the downsampled (cold) tier's value payloads — an
// LZMA-style adaptive arithmetic coder. Cold blocks hold one value per
// channel per hour instead of per 300 s sample, so the per-symbol model
// cost that rules out adaptive coding on the hot path is amortized over
// whole compacted years here, and the entropy coder buys back most of the
// headroom the fixed varbit buckets leave on the table (~5× vs the raw
// segments, measured in TestCompactReductionRatio).
//
// The symbol layer splits each unsigned value u into bucket = u >> r and r
// low "bypass" bits. Buckets are coded through a 128-node adaptive binary
// context tree (7 bits, MSB-first); bucket 127 escapes to an adaptive
// unary bit-length code plus direct mantissa bits for outliers. The shift
// r is chosen per stream so the stream's mean bucket stays inside the
// tree. Bypass bits are coded at fixed probability 1/2 (encodeDirect) —
// they carry the noise floor, which no model compresses.
//
// The decoder mirrors the encoder exactly and never panics on corrupt
// input: running off the end of the payload sets a sticky error and
// yields zero bytes, which the block layer maps to ErrCorrupt.

import stdbits "math/bits"

const (
	rcProbBits  = 11   // probabilities are 11-bit fixed point
	rcProbInit  = 1024 // = 1/2
	rcMoveBits  = 4    // adaptation shift
	rcTopBits   = 24   // renormalization threshold
	symTreeBits = 7
	symTreeSize = 1 << symTreeBits
	symEscape   = symTreeSize - 1 // bucket 127 escapes to the bit-length code
	symMaxLen   = 64              // escape bit-length classes (value bits)
	// symMaxShift bounds the per-stream bypass shift so bucket<<r stays
	// meaningful; streams needing more than 56 shift bits are degenerate.
	symMaxShift = 56
)

// symModel is the adaptive probability state for one symbol stream.
type symModel struct {
	r    uint // bypass shift: bucket = u >> r
	tree [symTreeSize]uint16
	esc  [symMaxLen + 1]uint16
}

func newSymModel(r uint) *symModel {
	m := &symModel{r: r}
	for i := range m.tree {
		m.tree[i] = rcProbInit
	}
	for i := range m.esc {
		m.esc[i] = rcProbInit
	}
	return m
}

// chooseShift picks the smallest bypass shift that brings the stream's
// mean bucket inside the context tree.
func chooseShift(vals []uint64) uint {
	if len(vals) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range vals {
		mean += float64(v)
	}
	mean /= float64(len(vals))
	var r uint
	for mean >= float64(symEscape) && r < symMaxShift {
		mean /= 2
		r++
	}
	return r
}

// rcEncoder is the carry-propagating LZMA-style range encoder.
type rcEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

func newRCEncoder() *rcEncoder {
	return &rcEncoder{rng: 0xFFFFFFFF, cacheSize: 1}
}

func (e *rcEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		c := e.cache
		for {
			e.out = append(e.out, c+byte(e.low>>32))
			c = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

func (e *rcEncoder) encodeBit(prob *uint16, bit int) {
	bound := (e.rng >> rcProbBits) * uint32(*prob)
	if bit == 0 {
		e.rng = bound
		*prob += (1<<rcProbBits - *prob) >> rcMoveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*prob -= *prob >> rcMoveBits
	}
	for e.rng < 1<<rcTopBits {
		e.shiftLow()
		e.rng <<= 8
	}
}

// encodeDirect codes one bit at fixed probability 1/2, bypassing the model.
func (e *rcEncoder) encodeDirect(bit int) {
	e.rng >>= 1
	if bit != 0 {
		e.low += uint64(e.rng)
	}
	for e.rng < 1<<rcTopBits {
		e.shiftLow()
		e.rng <<= 8
	}
}

// symbol codes one unsigned value through m.
func (e *rcEncoder) symbol(m *symModel, u uint64) {
	b := u >> m.r
	enc := b
	if enc > symEscape {
		enc = symEscape
	}
	node := 1
	for i := symTreeBits - 1; i >= 0; i-- {
		bit := int(enc>>uint(i)) & 1
		e.encodeBit(&m.tree[node], bit)
		node = node<<1 | bit
	}
	if enc == symEscape {
		v := b - symEscape
		c := stdbits.Len64(v)
		for i := 0; i < c; i++ {
			e.encodeBit(&m.esc[i], 1)
		}
		if c < symMaxLen {
			e.encodeBit(&m.esc[c], 0)
		}
		for i := c - 2; i >= 0; i-- {
			e.encodeDirect(int(v>>uint(i)) & 1)
		}
	}
	for i := int(m.r) - 1; i >= 0; i-- {
		e.encodeDirect(int(u>>uint(i)) & 1)
	}
}

// finish flushes the pending carry chain and returns the payload.
func (e *rcEncoder) finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// rcDecoder mirrors rcEncoder. A payload that ends early sets the sticky
// short flag; decoded values after that point are garbage but bounded, and
// the caller reports ErrCorrupt.
type rcDecoder struct {
	buf   []byte
	pos   int
	rng   uint32
	code  uint32
	short bool
}

func newRCDecoder(buf []byte) *rcDecoder {
	d := &rcDecoder{buf: buf, rng: 0xFFFFFFFF}
	// The encoder's first shiftLow always emits the initial zero cache
	// byte; consuming 5 bytes mirrors that plus the 4-byte code window.
	for i := 0; i < 5; i++ {
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return d
}

func (d *rcDecoder) nextByte() byte {
	if d.pos >= len(d.buf) {
		d.short = true
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *rcDecoder) decodeBit(prob *uint16) int {
	bound := (d.rng >> rcProbBits) * uint32(*prob)
	var bit int
	if d.code < bound {
		d.rng = bound
		*prob += (1<<rcProbBits - *prob) >> rcMoveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*prob -= *prob >> rcMoveBits
		bit = 1
	}
	for d.rng < 1<<rcTopBits {
		d.code = d.code<<8 | uint32(d.nextByte())
		d.rng <<= 8
	}
	return bit
}

func (d *rcDecoder) decodeDirect() int {
	d.rng >>= 1
	var bit int
	if d.code >= d.rng {
		d.code -= d.rng
		bit = 1
	}
	for d.rng < 1<<rcTopBits {
		d.code = d.code<<8 | uint32(d.nextByte())
		d.rng <<= 8
	}
	return bit
}

// symbol decodes one unsigned value through m, mirroring rcEncoder.symbol.
func (d *rcDecoder) symbol(m *symModel) uint64 {
	node := 1
	for i := 0; i < symTreeBits; i++ {
		node = node<<1 | d.decodeBit(&m.tree[node])
	}
	b := uint64(node - symTreeSize)
	if b == symEscape {
		c := 0
		for c < symMaxLen && d.decodeBit(&m.esc[c]) == 1 {
			c++
		}
		var v uint64
		if c > 0 {
			v = 1
			for i := 0; i < c-1; i++ {
				v = v<<1 | uint64(d.decodeDirect())
			}
		}
		b = symEscape + v
	}
	u := b << m.r
	for i := int(m.r) - 1; i >= 0; i-- {
		u |= uint64(d.decodeDirect()) << uint(i)
	}
	return u
}
