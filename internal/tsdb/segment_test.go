package tsdb

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

// TestFlushOpenRoundTrip is the core persistence contract: a store written
// with Flush and reloaded with Open answers every query identically,
// including calendar fields that depend on the records' time zone.
func TestFlushOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	racks := []topology.RackID{{Row: 0, Col: 1}, {Row: 1, Col: 8}, {Row: 2, Col: 15}}
	const n = 1000 // ~3.5 partitions per rack
	fill(t, n, racks, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DiskBytes; got <= 0 {
		t.Errorf("Stats().DiskBytes after Flush = %d, want > 0", got)
	}

	got, err := Open(dir, Options{Partition: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("reopened Len = %d, want %d", got.Len(), s.Len())
	}
	if gd, wd := got.Stats().DiskBytes, s.Stats().DiskBytes; gd != wd {
		t.Errorf("reopened DiskBytes = %d, want %d", gd, wd)
	}

	from := base.Add(-time.Hour)
	to := base.Add((n + 1) * timeutil.SampleInterval)
	for _, rack := range racks {
		w := s.Query(rack, from, to)
		g := got.Query(rack, from, to)
		if len(g) != len(w) {
			t.Fatalf("rack %v: Query len = %d, want %d", rack, len(g), len(w))
		}
		for i := range w {
			if !g[i].Time.Equal(w[i].Time) {
				t.Fatalf("rack %v sample %d: time %v, want %v", rack, i, g[i].Time, w[i].Time)
			}
			// The persisted zone must reconstruct calendar fields, not just
			// the instant: offline analyses bucket by month and weekday.
			if g[i].Time.Format(time.RFC3339) != w[i].Time.Format(time.RFC3339) {
				t.Fatalf("rack %v sample %d: zone-dependent rendering %q, want %q",
					rack, i, g[i].Time.Format(time.RFC3339), w[i].Time.Format(time.RFC3339))
			}
			for _, m := range sensors.AllMetrics() {
				if g[i].Value(m) != w[i].Value(m) {
					t.Fatalf("rack %v sample %d %v: %v, want %v", rack, i, m, g[i].Value(m), w[i].Value(m))
				}
			}
		}

		wAgg, err := s.Aggregate(rack, sensors.MetricPower, from, to, 6*time.Hour)
		if err != nil {
			t.Fatalf("rack %v: Aggregate(mem): %v", rack, err)
		}
		gAgg, err := got.Aggregate(rack, sensors.MetricPower, from, to, 6*time.Hour)
		if err != nil {
			t.Fatalf("rack %v: Aggregate(reopened): %v", rack, err)
		}
		if len(gAgg) != len(wAgg) {
			t.Fatalf("rack %v: Aggregate windows = %d, want %d", rack, len(gAgg), len(wAgg))
		}
		for k := range wAgg {
			gw, ww := gAgg[k], wAgg[k]
			if gw.Count != ww.Count || gw.Sum != ww.Sum ||
				(ww.Count > 0 && (gw.Min != ww.Min || gw.Max != ww.Max)) {
				t.Fatalf("rack %v window %d: %+v, want %+v", rack, k, gw, ww)
			}
		}
	}

	// Rack-major full scans agree too.
	var wantOrder, gotOrder []sensors.Record
	s.EachRecord(func(r sensors.Record) { wantOrder = append(wantOrder, r) })
	got.EachRecord(func(r sensors.Record) { gotOrder = append(gotOrder, r) })
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("EachRecord visited %d, want %d", len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if !gotOrder[i].Time.Equal(wantOrder[i].Time) || gotOrder[i].Rack != wantOrder[i].Rack {
			t.Fatalf("EachRecord[%d] = (%v, %v), want (%v, %v)",
				i, gotOrder[i].Rack, gotOrder[i].Time, wantOrder[i].Rack, wantOrder[i].Time)
		}
	}
}

// TestFlushOpenRaw exercises the XOR channel path across the process
// boundary: unquantized float64 payloads — including NaN and infinities —
// survive Flush/Open bit for bit.
func TestFlushOpenRaw(t *testing.T) {
	dir := t.TempDir()
	s := NewRawStore()
	rack := topology.RackID{Row: 2, Col: 9}
	rng := rand.New(rand.NewSource(11))
	var want []sensors.Record
	for i := 0; i < 700; i++ {
		rec := sensors.Record{
			Time:          base.Add(time.Duration(i) * timeutil.SampleInterval),
			Rack:          rack,
			DCTemperature: units.Fahrenheit(82 + rng.NormFloat64()),
			DCHumidity:    units.RelativeHumidity(rng.Float64() * 100),
			Flow:          units.GPM(26.5 + rng.NormFloat64()*0.1),
			InletTemp:     units.Fahrenheit(64 + rng.NormFloat64()*0.08),
			OutletTemp:    units.Fahrenheit(79 + rng.NormFloat64()*0.12),
			Power:         units.Watts(57000 + rng.NormFloat64()*250),
		}
		switch i {
		case 100:
			rec.Flow = units.GPM(math.NaN())
		case 200:
			rec.Power = units.Watts(math.Inf(1))
		}
		want = append(want, rec)
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := got.Query(rack, base, base.Add(1000*timeutil.SampleInterval))
	if len(recs) != len(want) {
		t.Fatalf("Query len = %d, want %d", len(recs), len(want))
	}
	for i := range want {
		for _, m := range sensors.AllMetrics() {
			g, w := math.Float64bits(recs[i].Value(m)), math.Float64bits(want[i].Value(m))
			if g != w {
				t.Fatalf("sample %d %v: bits %x, want %x", i, m, g, w)
			}
		}
	}
}

func TestOpenNoData(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("Open(empty dir) = %v, want ErrNoData", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("Open(missing dir) = %v, want ErrNoData", err)
	}
}

// flushOneShard writes a small single-rack store and returns its segment
// file path, for the corruption tests to mangle.
func flushOneShard(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	rack := topology.RackID{Row: 0, Col: 0}
	fill(t, 600, []topology.RackID{rack}, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, segFileName(rack.Index()))
}

func TestOpenCorruption(t *testing.T) {
	cases := map[string]func(t *testing.T, path string){
		"truncated header": func(t *testing.T, path string) {
			if err := os.Truncate(path, 7); err != nil {
				t.Fatal(err)
			}
		},
		"truncated payload": func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		},
		"flipped payload bit": func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)-9] ^= 0x10
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bad magic": func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			copy(buf, "XXXX")
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"unsupported version": func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[4], buf[5] = 0xFF, 0x7F
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"trailing garbage": func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("junk")); err != nil {
				t.Fatal(err)
			}
			f.Close()
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir, path := flushOneShard(t)
			corrupt(t, path)
			_, err := Open(dir, Options{})
			if err == nil {
				t.Fatal("Open succeeded on a corrupted segment")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("Open error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

// TestReopenAppendFlush checks the warm-restart ingest path: appends after
// Open resume at the persisted watermark, out-of-order records are still
// rejected, and a second Flush + Open sees everything.
func TestReopenAppendFlush(t *testing.T) {
	dir := t.TempDir()
	rack := topology.RackID{Row: 1, Col: 2}
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	const n = 500
	fill(t, n, []topology.RackID{rack}, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{Partition: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	// A record older than the persisted watermark must be rejected.
	if err := re.Append(synthRecord(rng, rack, base)); err == nil {
		t.Error("append before the persisted watermark should fail")
	}
	for i := n; i < n+200; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		if err := re.Append(synthRecord(rng, rack, ts)); err != nil {
			t.Fatalf("append after reopen: %v", err)
		}
	}
	if re.Len() != n+200 {
		t.Fatalf("Len after reopen+append = %d, want %d", re.Len(), n+200)
	}
	if err := re.Flush(dir); err != nil {
		t.Fatal(err)
	}
	final, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if final.Len() != n+200 {
		t.Fatalf("Len after second round trip = %d, want %d", final.Len(), n+200)
	}
	recs := final.Query(rack, base, base.Add((n+300)*timeutil.SampleInterval))
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatalf("unordered records after reopen at %d", i)
		}
	}
}

// TestReopenConcurrentAppendQuery runs writers and readers against a store
// reopened from disk — the -race half of the persistence contract: lazily
// decoded disk blocks and fresh head appends share the shard snapshots.
func TestReopenConcurrentAppendQuery(t *testing.T) {
	dir := t.TempDir()
	racks := []topology.RackID{{Row: 0, Col: 3}, {Row: 1, Col: 8}, {Row: 2, Col: 15}}
	s := NewStoreWith(Options{Partition: time.Hour})
	const persisted = 600
	fill(t, persisted, racks, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{Partition: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	const appended = 800
	var wg sync.WaitGroup
	done := make(chan struct{})
	for wi, rack := range racks {
		wg.Add(1)
		go func(seed int64, rack topology.RackID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := persisted; i < persisted+appended; i++ {
				ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
				if err := re.Append(synthRecord(rng, rack, ts)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(int64(wi), rack)
	}
	for ri := 0; ri < 4; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(400 + seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				rack := racks[rng.Intn(len(racks))]
				to := base.Add(time.Duration(rng.Intn(persisted+appended)) * timeutil.SampleInterval)
				recs := re.Query(rack, base, to)
				for i := 1; i < len(recs); i++ {
					if recs[i].Time.Before(recs[i-1].Time) {
						t.Error("unordered query result")
						return
					}
				}
				_, _ = re.Aggregate(rack, sensors.MetricFlow, base, to, time.Hour)
			}
		}(int64(ri))
	}
	go func() {
		for re.Len() < (persisted+appended)*len(racks) {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	wg.Wait()
	if re.Len() != (persisted+appended)*len(racks) {
		t.Fatalf("Len = %d, want %d", re.Len(), (persisted+appended)*len(racks))
	}
}

// TestFlushDeterministic: the same store contents flush to byte-identical
// segment files, so repeated flushes are cheap to diff and verify.
func TestFlushDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	racks := []topology.RackID{{Row: 0, Col: 5}, {Row: 2, Col: 11}}
	fill(t, 700, racks, s)
	if err := s.Flush(dirA); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(dirB); err != nil {
		t.Fatal(err)
	}
	for _, rack := range racks {
		name := segFileName(rack.Index())
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between two flushes of the same store", name)
		}
	}
}

// TestFlushLeavesNoTempFiles: a successful flush renames every temp file
// into place.
func TestFlushLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	fill(t, 50, []topology.RackID{{Row: 0, Col: 0}}, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
