package tsdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

// TestFlushOpenRoundTrip is the core persistence contract: a store written
// with Flush and reloaded with Open answers every query identically,
// including calendar fields that depend on the records' time zone.
func TestFlushOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	racks := []topology.RackID{{Row: 0, Col: 1}, {Row: 1, Col: 8}, {Row: 2, Col: 15}}
	const n = 1000 // ~3.5 partitions per rack
	fill(t, n, racks, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().DiskBytes; got <= 0 {
		t.Errorf("Stats().DiskBytes after Flush = %d, want > 0", got)
	}

	got, err := Open(dir, Options{Partition: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("reopened Len = %d, want %d", got.Len(), s.Len())
	}
	if gd, wd := got.Stats().DiskBytes, s.Stats().DiskBytes; gd != wd {
		t.Errorf("reopened DiskBytes = %d, want %d", gd, wd)
	}

	from := base.Add(-time.Hour)
	to := base.Add((n + 1) * timeutil.SampleInterval)
	for _, rack := range racks {
		w := s.Query(rack, from, to)
		g := got.Query(rack, from, to)
		if len(g) != len(w) {
			t.Fatalf("rack %v: Query len = %d, want %d", rack, len(g), len(w))
		}
		for i := range w {
			if !g[i].Time.Equal(w[i].Time) {
				t.Fatalf("rack %v sample %d: time %v, want %v", rack, i, g[i].Time, w[i].Time)
			}
			// The persisted zone must reconstruct calendar fields, not just
			// the instant: offline analyses bucket by month and weekday.
			if g[i].Time.Format(time.RFC3339) != w[i].Time.Format(time.RFC3339) {
				t.Fatalf("rack %v sample %d: zone-dependent rendering %q, want %q",
					rack, i, g[i].Time.Format(time.RFC3339), w[i].Time.Format(time.RFC3339))
			}
			for _, m := range sensors.AllMetrics() {
				if g[i].Value(m) != w[i].Value(m) {
					t.Fatalf("rack %v sample %d %v: %v, want %v", rack, i, m, g[i].Value(m), w[i].Value(m))
				}
			}
		}

		wAgg, err := s.Aggregate(rack, sensors.MetricPower, from, to, 6*time.Hour)
		if err != nil {
			t.Fatalf("rack %v: Aggregate(mem): %v", rack, err)
		}
		gAgg, err := got.Aggregate(rack, sensors.MetricPower, from, to, 6*time.Hour)
		if err != nil {
			t.Fatalf("rack %v: Aggregate(reopened): %v", rack, err)
		}
		if len(gAgg) != len(wAgg) {
			t.Fatalf("rack %v: Aggregate windows = %d, want %d", rack, len(gAgg), len(wAgg))
		}
		for k := range wAgg {
			gw, ww := gAgg[k], wAgg[k]
			if gw.Count != ww.Count || gw.Sum != ww.Sum ||
				(ww.Count > 0 && (gw.Min != ww.Min || gw.Max != ww.Max)) {
				t.Fatalf("rack %v window %d: %+v, want %+v", rack, k, gw, ww)
			}
		}
	}

	// Rack-major full scans agree too.
	var wantOrder, gotOrder []sensors.Record
	s.EachRecord(func(r sensors.Record) { wantOrder = append(wantOrder, r) })
	got.EachRecord(func(r sensors.Record) { gotOrder = append(gotOrder, r) })
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("EachRecord visited %d, want %d", len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if !gotOrder[i].Time.Equal(wantOrder[i].Time) || gotOrder[i].Rack != wantOrder[i].Rack {
			t.Fatalf("EachRecord[%d] = (%v, %v), want (%v, %v)",
				i, gotOrder[i].Rack, gotOrder[i].Time, wantOrder[i].Rack, wantOrder[i].Time)
		}
	}
}

// TestFlushOpenRaw exercises the XOR channel path across the process
// boundary: unquantized float64 payloads — including NaN and infinities —
// survive Flush/Open bit for bit.
func TestFlushOpenRaw(t *testing.T) {
	dir := t.TempDir()
	s := NewRawStore()
	rack := topology.RackID{Row: 2, Col: 9}
	rng := rand.New(rand.NewSource(11))
	var want []sensors.Record
	for i := 0; i < 700; i++ {
		rec := sensors.Record{
			Time:          base.Add(time.Duration(i) * timeutil.SampleInterval),
			Rack:          rack,
			DCTemperature: units.Fahrenheit(82 + rng.NormFloat64()),
			DCHumidity:    units.RelativeHumidity(rng.Float64() * 100),
			Flow:          units.GPM(26.5 + rng.NormFloat64()*0.1),
			InletTemp:     units.Fahrenheit(64 + rng.NormFloat64()*0.08),
			OutletTemp:    units.Fahrenheit(79 + rng.NormFloat64()*0.12),
			Power:         units.Watts(57000 + rng.NormFloat64()*250),
		}
		switch i {
		case 100:
			rec.Flow = units.GPM(math.NaN())
		case 200:
			rec.Power = units.Watts(math.Inf(1))
		}
		want = append(want, rec)
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := got.Query(rack, base, base.Add(1000*timeutil.SampleInterval))
	if len(recs) != len(want) {
		t.Fatalf("Query len = %d, want %d", len(recs), len(want))
	}
	for i := range want {
		for _, m := range sensors.AllMetrics() {
			g, w := math.Float64bits(recs[i].Value(m)), math.Float64bits(want[i].Value(m))
			if g != w {
				t.Fatalf("sample %d %v: bits %x, want %x", i, m, g, w)
			}
		}
	}
}

func TestOpenNoData(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("Open(empty dir) = %v, want ErrNoData", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), Options{}); !errors.Is(err, ErrNoData) {
		t.Errorf("Open(missing dir) = %v, want ErrNoData", err)
	}
}

// flushOneShard writes a small single-rack store and returns its segment
// file path, for the corruption tests to mangle.
func flushOneShard(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	rack := topology.RackID{Row: 0, Col: 0}
	fill(t, 600, []topology.RackID{rack}, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, segFileName(rack.Index()))
}

// segmentV1Bytes rewrites a version-2 segment image in the version-1
// block-header layout: the per-block zone maps are stripped and each block
// CRC is recomputed over the remaining header fields plus the payload.
// It reproduces exactly what a pre-zone-map build would have written for
// the same store, so the tests (and the segment fuzzer's seed corpus) can
// exercise the read-compat path without keeping golden files around. The
// second return is false when buf is not a well-formed v2 segment.
func segmentV1Bytes(buf []byte) ([]byte, bool) {
	if len(buf) < segFileHeaderSize {
		return nil, false
	}
	nblocks := int(binary.LittleEndian.Uint32(buf[8:12]))
	locLen := int(binary.LittleEndian.Uint16(buf[12:14]))
	out := make([]byte, 0, len(buf))
	out = append(out, buf[:segFileHeaderSize+locLen]...)
	binary.LittleEndian.PutUint16(out[4:6], segVersion1)
	off := segFileHeaderSize + locLen
	for i := 0; i < nblocks; i++ {
		if len(buf)-off < segBlockHeaderSizeV2 {
			return nil, false
		}
		h := buf[off : off+segBlockHeaderSizeV2]
		fields := h[:segBlockHeaderSize-4] // sans zones and CRC
		payload := int(binary.LittleEndian.Uint32(h[20:24]))
		for p := 24; p < segBlockHeaderSize-4; p += 13 {
			payload += int(binary.LittleEndian.Uint32(h[p+9 : p+13]))
		}
		if len(buf)-off-segBlockHeaderSizeV2 < payload {
			return nil, false
		}
		body := buf[off+segBlockHeaderSizeV2 : off+segBlockHeaderSizeV2+payload]
		crc := crc32.ChecksumIEEE(fields)
		crc = crc32.Update(crc, crc32.IEEETable, body)
		out = append(out, fields...)
		out = binary.LittleEndian.AppendUint32(out, crc)
		out = append(out, body...)
		off += segBlockHeaderSizeV2 + payload
	}
	if off != len(buf) {
		return nil, false
	}
	return out, true
}

func convertSegmentToV1(t *testing.T, path string) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := segmentV1Bytes(buf)
	if !ok {
		t.Fatalf("segment %s is not a well-formed v2 file", path)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenVersion1Segment pins segment read compatibility: a version-1 file
// (no zone maps) opens, answers queries and merged scans identically to the
// version-2 original, and reflushing upgrades it to version 2 with the NaN
// "unusable" zone sentinel — never fabricated bounds that could prune
// wrongly.
func TestOpenVersion1Segment(t *testing.T) {
	dir := t.TempDir()
	racks := []topology.RackID{{Row: 0, Col: 2}, {Row: 1, Col: 7}}
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	fill(t, 700, racks, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	for _, rack := range racks {
		convertSegmentToV1(t, filepath.Join(dir, segFileName(rack.Index())))
	}

	v1, err := Open(dir, Options{Partition: 24 * time.Hour})
	if err != nil {
		t.Fatalf("Open(v1 segments): %v", err)
	}
	if v1.Len() != s.Len() {
		t.Fatalf("v1 Len = %d, want %d", v1.Len(), s.Len())
	}
	from, to := base.Add(-time.Hour), base.Add(800*timeutil.SampleInterval)
	for _, rack := range racks {
		w := s.Query(rack, from, to)
		g := v1.Query(rack, from, to)
		if len(g) != len(w) {
			t.Fatalf("rack %v: v1 Query len = %d, want %d", rack, len(g), len(w))
		}
		for i := range w {
			for _, m := range sensors.AllMetrics() {
				if g[i].Value(m) != w[i].Value(m) {
					t.Fatalf("rack %v sample %d %v: %v, want %v", rack, i, m, g[i].Value(m), w[i].Value(m))
				}
			}
		}
	}
	// The chunked merged scan must deliver every record even under a
	// predicate that matches nothing: version-1 blocks have no zones, so
	// nothing may be pruned.
	pruneAll := func(*[sensors.NumMetrics]ZoneMap) bool { return false }
	rows := 0
	err = v1.EachChunkMergedWhere(1, pruneAll, func(c *envdb.Chunk) bool {
		rows += len(c.Times)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != s.Len() {
		t.Fatalf("v1 pruned scan visited %d rows, want %d (zone-less blocks must not prune)", rows, s.Len())
	}

	// Reflush: the store rewrites what it read as version 2 and reopens.
	dir2 := t.TempDir()
	if err := v1.Flush(dir2); err != nil {
		t.Fatal(err)
	}
	for _, rack := range racks {
		buf, err := os.ReadFile(filepath.Join(dir2, segFileName(rack.Index())))
		if err != nil {
			t.Fatal(err)
		}
		if v := binary.LittleEndian.Uint16(buf[4:6]); v != segVersion {
			t.Fatalf("reflushed segment version = %d, want %d", v, segVersion)
		}
	}
	v2, err := Open(dir2, Options{Partition: 24 * time.Hour})
	if err != nil {
		t.Fatalf("Open(reflushed v2): %v", err)
	}
	if v2.Len() != s.Len() {
		t.Fatalf("reflushed Len = %d, want %d", v2.Len(), s.Len())
	}
	for _, rack := range racks {
		w := s.Query(rack, from, to)
		g := v2.Query(rack, from, to)
		if len(g) != len(w) {
			t.Fatalf("rack %v: reflushed Query len = %d, want %d", rack, len(g), len(w))
		}
		for i := range w {
			for _, m := range sensors.AllMetrics() {
				if g[i].Value(m) != w[i].Value(m) {
					t.Fatalf("rack %v sample %d %v: %v, want %v", rack, i, m, g[i].Value(m), w[i].Value(m))
				}
			}
		}
	}
}

func TestOpenCorruption(t *testing.T) {
	cases := map[string]func(t *testing.T, path string){
		"truncated header": func(t *testing.T, path string) {
			if err := os.Truncate(path, 7); err != nil {
				t.Fatal(err)
			}
		},
		"truncated payload": func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		},
		"flipped payload bit": func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)-9] ^= 0x10
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bad magic": func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			copy(buf, "XXXX")
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"unsupported version": func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[4], buf[5] = 0xFF, 0x7F
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"inverted zone map": func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// First block's first zone pair: Min = 1.0, Max = 0.0. The
			// parser must reject the inversion outright — a mangled zone
			// that survived would silently prune valid blocks.
			locLen := int(binary.LittleEndian.Uint16(buf[12:14]))
			z := segFileHeaderSize + locLen + segBlockHeaderSize - 4
			binary.LittleEndian.PutUint64(buf[z:], math.Float64bits(1.0))
			binary.LittleEndian.PutUint64(buf[z+8:], math.Float64bits(0.0))
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"trailing garbage": func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("junk")); err != nil {
				t.Fatal(err)
			}
			f.Close()
		},
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir, path := flushOneShard(t)
			corrupt(t, path)
			_, err := Open(dir, Options{})
			if err == nil {
				t.Fatal("Open succeeded on a corrupted segment")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("Open error %v does not wrap ErrCorrupt", err)
			}
		})
	}
}

// TestReopenAppendFlush checks the warm-restart ingest path: appends after
// Open resume at the persisted watermark, out-of-order records are still
// rejected, and a second Flush + Open sees everything.
func TestReopenAppendFlush(t *testing.T) {
	dir := t.TempDir()
	rack := topology.RackID{Row: 1, Col: 2}
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	const n = 500
	fill(t, n, []topology.RackID{rack}, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{Partition: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	// A record older than the persisted watermark must be rejected.
	if err := re.Append(synthRecord(rng, rack, base)); err == nil {
		t.Error("append before the persisted watermark should fail")
	}
	for i := n; i < n+200; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		if err := re.Append(synthRecord(rng, rack, ts)); err != nil {
			t.Fatalf("append after reopen: %v", err)
		}
	}
	if re.Len() != n+200 {
		t.Fatalf("Len after reopen+append = %d, want %d", re.Len(), n+200)
	}
	if err := re.Flush(dir); err != nil {
		t.Fatal(err)
	}
	final, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if final.Len() != n+200 {
		t.Fatalf("Len after second round trip = %d, want %d", final.Len(), n+200)
	}
	recs := final.Query(rack, base, base.Add((n+300)*timeutil.SampleInterval))
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			t.Fatalf("unordered records after reopen at %d", i)
		}
	}
}

// TestReopenConcurrentAppendQuery runs writers and readers against a store
// reopened from disk — the -race half of the persistence contract: lazily
// decoded disk blocks and fresh head appends share the shard snapshots.
func TestReopenConcurrentAppendQuery(t *testing.T) {
	dir := t.TempDir()
	racks := []topology.RackID{{Row: 0, Col: 3}, {Row: 1, Col: 8}, {Row: 2, Col: 15}}
	s := NewStoreWith(Options{Partition: time.Hour})
	const persisted = 600
	fill(t, persisted, racks, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{Partition: time.Hour})
	if err != nil {
		t.Fatal(err)
	}

	const appended = 800
	var wg sync.WaitGroup
	done := make(chan struct{})
	for wi, rack := range racks {
		wg.Add(1)
		go func(seed int64, rack topology.RackID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := persisted; i < persisted+appended; i++ {
				ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
				if err := re.Append(synthRecord(rng, rack, ts)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(int64(wi), rack)
	}
	for ri := 0; ri < 4; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(400 + seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				rack := racks[rng.Intn(len(racks))]
				to := base.Add(time.Duration(rng.Intn(persisted+appended)) * timeutil.SampleInterval)
				recs := re.Query(rack, base, to)
				for i := 1; i < len(recs); i++ {
					if recs[i].Time.Before(recs[i-1].Time) {
						t.Error("unordered query result")
						return
					}
				}
				_, _ = re.Aggregate(rack, sensors.MetricFlow, base, to, time.Hour)
			}
		}(int64(ri))
	}
	go func() {
		for re.Len() < (persisted+appended)*len(racks) {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	wg.Wait()
	if re.Len() != (persisted+appended)*len(racks) {
		t.Fatalf("Len = %d, want %d", re.Len(), (persisted+appended)*len(racks))
	}
}

// TestFlushDeterministic: the same store contents flush to byte-identical
// segment files, so repeated flushes are cheap to diff and verify.
func TestFlushDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	racks := []topology.RackID{{Row: 0, Col: 5}, {Row: 2, Col: 11}}
	fill(t, 700, racks, s)
	if err := s.Flush(dirA); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(dirB); err != nil {
		t.Fatal(err)
	}
	for _, rack := range racks {
		name := segFileName(rack.Index())
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between two flushes of the same store", name)
		}
	}
}

// TestFlushLeavesNoTempFiles: a successful flush renames every temp file
// into place.
func TestFlushLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := NewStore()
	fill(t, 50, []topology.RackID{{Row: 0, Col: 0}}, s)
	if err := s.Flush(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}
