package tsdb

// On-disk segment layer: one file per shard (rack) holding that shard's
// sealed blocks, so a finished run survives restarts and later analyses
// reopen it instead of re-running the simulation — the "record once,
// analyze many times" posture of the paper's DB2 environmental database.
//
// Format (version 2, little-endian):
//
//	file header:
//	  magic    [4]byte  "MTSG"
//	  version  uint16   2 (1 accepted on read; it lacks the zone maps)
//	  shard    uint16   rack index in [0, NumRacks)
//	  nblocks  uint32
//	  locLen   uint16   length of the location name
//	  locOff   int32    UTC offset in seconds of the records' location
//	  loc      []byte   location name (e.g. "America/Chicago", "CST")
//	per block, in time order:
//	  header:
//	    minT      int64    unix nanoseconds of the first sample
//	    maxT      int64    unix nanoseconds of the last sample
//	    count     uint32   samples in the block
//	    timesLen  uint32   compressed timestamp payload length
//	    channels  [6]×(enc uint8, scale float64 bits, dataLen uint32)
//	    zones     [6]×(min float64 bits, max float64 bits)  — version ≥ 2
//	                       only; both-NaN marks an unusable zone (channel
//	                       holds NaN values, so the range proves nothing)
//	    crc       uint32   IEEE CRC32 over the header bytes above plus all
//	                       of the block's payload bytes
//	  payloads:
//	    times bytes, then the six channel payloads
//
// Downsampled-tier segments ("shard-NN.cold.seg", magic "MTSC") share the
// same file-header shape; their per-block headers carry the compaction
// window, window-start bounds, window count, folded source-record count,
// and a counts payload alongside the six channel payloads (the aggregate
// codecs live in downsample.go). Retention compaction writes them and
// rewrites the raw segment behind them; Open resolves a crashed compaction
// by preferring raw blocks over any cold block they overlap.
//
// The CRC covers the header fields as well as the payloads, so corruption
// of counts, bounds, or encodings is caught at Open, not at decode time.
// Payload bytes are not decoded at Open: blocks alias the file buffer and
// decompress lazily on first touch, so a cold open costs O(index) decode
// work. Writes go through a temp file and an atomic rename, so a crashed
// Flush never leaves a half-written segment behind.

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"time"

	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/topology"
)

var (
	// ErrNoData reports an Open directory with no segment files (or no
	// directory at all): the caller should fall back to a cold start.
	ErrNoData = errors.New("no segment data")
	// ErrCorrupt wraps every structural or checksum failure found while
	// parsing a segment file.
	ErrCorrupt = errors.New("corrupt segment")
)

var segMagic = [4]byte{'M', 'T', 'S', 'G'}

// coldMagic marks downsampled-tier segments ("shard-NN.cold.seg"). They
// share the raw format's file-header shape; each block header carries the
// compaction window, the first/last window start, the window count, the
// folded source-record count, and per-channel aggregate payloads
// (see downsample.go for the payload codecs).
var coldMagic = [4]byte{'M', 'T', 'S', 'C'}

const (
	// segVersion1 is the original raw-segment block-header layout; version
	// 2 appends per-channel zone maps (min/max float64 bits) to each block
	// header so scans can prune blocks without decoding. Open accepts both;
	// Flush writes version 2. Cold segments keep their own version-1
	// layout — downsampled blocks already store per-window min/max.
	segVersion1    = 1
	segVersion     = 2
	segVersionCold = 1

	segFileHeaderSize = 4 + 2 + 2 + 4 + 2 + 4 // + location name
	// segBlockHeaderSize covers minT, maxT, count, timesLen, six
	// (enc, scale, dataLen) channel triples, and the CRC (version 1);
	// version 2 adds six (zoneMin, zoneMax) float64 pairs before the CRC.
	segBlockHeaderSize   = 8 + 8 + 4 + 4 + int(sensors.NumMetrics)*(1+8+4) + 4
	segBlockHeaderSizeV2 = segBlockHeaderSize + int(sensors.NumMetrics)*16
	// coldBlockHeaderSize covers window, minT, maxT, count, srcRecords,
	// timesLen, countsLen, six channel triples, and the CRC.
	coldBlockHeaderSize = 8 + 8 + 8 + 4 + 8 + 4 + 4 + int(sensors.NumMetrics)*(1+8+4) + 4
)

func segFileName(shard int) string     { return fmt.Sprintf("shard-%02d.seg", shard) }
func coldSegFileName(shard int) string { return fmt.Sprintf("shard-%02d.cold.seg", shard) }
func hallDirName(hall int) string      { return fmt.Sprintf("hall-%02d", hall) }

// segPlace maps a fleet-wide shard index to its on-disk home: the segment
// directory itself for a single-hall store (the layout every pre-fleet
// segment tree uses), or a hall-HH subdirectory holding that hall's shards
// under their within-hall indices. Segment file headers always carry the
// within-hall index, so a hall directory is self-contained and hall-0 trees
// stay byte-compatible with single-machine ones.
func (s *Store) segPlace(dir string, global int) (shardDir string, fileShard int) {
	if s.fleet.Halls == 1 {
		return dir, global
	}
	return filepath.Join(dir, hallDirName(global/s.fleet.Racks)), global % s.fleet.Racks
}

// Flush seals every head block and persists all sealed blocks to per-shard
// segment files under dir (created if missing), replacing existing segments
// atomically. Records appended concurrently with the flush start fresh head
// blocks and are not persisted until the next Flush. Stats().DiskBytes
// reflects the written footprint afterwards.
func (s *Store) Flush(dir string) error {
	s.init()
	_, span := obs.Span(context.Background(), "tsdb.flush")
	defer span.End()
	s.SealAll()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tsdb: flush: %w", err)
	}
	if s.fleet.Halls > 1 {
		for h := 0; h < s.fleet.Halls; h++ {
			if err := os.MkdirAll(filepath.Join(dir, hallDirName(h)), 0o755); err != nil {
				return fmt.Errorf("tsdb: flush: %w", err)
			}
		}
	}
	loc := s.location()
	var disk int64
	for i := range s.shards {
		snap := s.shards[i].snapshot()
		shardDir, fi := s.segPlace(dir, i)
		if len(snap.sealed) > 0 {
			n, err := writeSegment(shardDir, fi, loc, snap.sealed)
			if err != nil {
				return err
			}
			disk += n
		}
		if len(snap.cold) > 0 {
			name := filepath.Join(shardDir, coldSegFileName(fi))
			tmp := name + ".tmp"
			n, err := writeColdSegment(tmp, fi, loc, snap.cold)
			if err != nil {
				return err
			}
			if err := os.Rename(tmp, name); err != nil {
				return fmt.Errorf("tsdb: flush shard %d: %w", i, err)
			}
			disk += n
		}
	}
	s.diskBytes.Store(disk)
	metFlushBytes.Add(uint64(disk))
	return nil
}

func writeSegment(dir string, shard int, loc *time.Location, blocks []*sealedBlock) (int64, error) {
	name := filepath.Join(dir, segFileName(shard))
	tmp := name + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	// The location name plus its current UTC offset reconstructs both IANA
	// zones (by name) and fixed zones like timeutil.Chicago (by offset).
	locName := loc.String()
	_, locOff := time.Unix(0, blocks[0].minT).In(loc).Zone()

	w := bufio.NewWriter(f)
	written := int64(segFileHeaderSize + len(locName))
	hdr := make([]byte, 0, segFileHeaderSize)
	hdr = append(hdr, segMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, segVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(shard))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(blocks)))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(locName)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(int32(locOff)))
	hdr = append(hdr, locName...)
	if _, err := w.Write(hdr); err != nil {
		return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
	}

	bh := make([]byte, 0, segBlockHeaderSizeV2)
	for _, b := range blocks {
		bh = bh[:0]
		bh = binary.LittleEndian.AppendUint64(bh, uint64(b.minT))
		bh = binary.LittleEndian.AppendUint64(bh, uint64(b.maxT))
		bh = binary.LittleEndian.AppendUint32(bh, uint32(b.count))
		bh = binary.LittleEndian.AppendUint32(bh, uint32(len(b.times)))
		for m := range b.ch {
			c := b.ch[m]
			bh = append(bh, c.enc)
			bh = binary.LittleEndian.AppendUint64(bh, math.Float64bits(c.scale))
			bh = binary.LittleEndian.AppendUint32(bh, uint32(len(c.data)))
		}
		for m := range b.ch {
			z := b.zones[m]
			if !b.hasZones {
				// Blocks loaded from a version-1 segment have no zones;
				// persist the NaN "unusable" sentinel rather than recompute
				// (which would decode every payload during Flush).
				z = ZoneMap{math.NaN(), math.NaN()}
			}
			bh = binary.LittleEndian.AppendUint64(bh, math.Float64bits(z.Min))
			bh = binary.LittleEndian.AppendUint64(bh, math.Float64bits(z.Max))
		}
		crc := crc32.ChecksumIEEE(bh)
		crc = crc32.Update(crc, crc32.IEEETable, b.times)
		for m := range b.ch {
			crc = crc32.Update(crc, crc32.IEEETable, b.ch[m].data)
		}
		bh = binary.LittleEndian.AppendUint32(bh, crc)
		if _, err := w.Write(bh); err != nil {
			return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
		}
		if _, err := w.Write(b.times); err != nil {
			return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
		}
		written += int64(len(bh)) + int64(len(b.times))
		for m := range b.ch {
			if _, err := w.Write(b.ch[m].data); err != nil {
				return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
			}
			written += int64(len(b.ch[m].data))
		}
	}
	if err := w.Flush(); err != nil {
		return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
	}
	if err := os.Rename(tmp, name); err != nil {
		return 0, fmt.Errorf("tsdb: flush shard %d: %w", shard, err)
	}
	return written, nil
}

// Open loads a store previously persisted with Flush. Blocks are validated
// structurally and by checksum but not decoded: payloads alias the file
// buffers and decompress on first touch. Appending resumes after each
// shard's persisted maximum timestamp. A directory with no segment files
// (or a missing directory) returns an error wrapping ErrNoData; corrupted
// or truncated segments return errors wrapping ErrCorrupt. Multi-hall
// stores (opts.Fleet.Halls > 1) read each hall's shards from its hall-HH
// subdirectory; halls with no data yet are simply empty.
func Open(dir string, opts Options) (*Store, error) {
	s := NewStoreWith(opts)
	var disk int64
	loaded := 0
	if s.fleet.Halls > 1 {
		for h := 0; h < s.fleet.Halls; h++ {
			n, cnt, err := s.loadSegDir(filepath.Join(dir, hallDirName(h)), h*s.fleet.Racks)
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					continue // hall with nothing persisted yet
				}
				return nil, err
			}
			disk += n
			loaded += cnt
		}
	} else {
		n, cnt, err := s.loadSegDir(dir, 0)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil, fmt.Errorf("tsdb: open %s: %w", dir, ErrNoData)
			}
			return nil, err
		}
		disk = n
		loaded = cnt
	}
	if loaded == 0 {
		return nil, fmt.Errorf("tsdb: open %s: %w", dir, ErrNoData)
	}
	// Crash recovery across the tiers: a cold block that overlaps any raw
	// sealed block's time range (window extents, not just starts) is a
	// leftover from a compaction that wrote its cold segment but died
	// before the raw rewrite. The raw data is still complete, so raw wins
	// and the stale cold block is dropped. A clean compaction never leaves
	// such an overlap — the fold boundary never splits a window.
	for i := range s.shards {
		sh := &s.shards[i]
		if len(sh.cold) == 0 {
			continue
		}
		kept := make([]*downBlock, 0, len(sh.cold))
		for _, d := range sh.cold {
			stale := false
			for _, b := range sh.sealed {
				if b.minT <= d.maxT+d.window-1 && b.maxT >= d.minT {
					stale = true
					break
				}
			}
			if stale {
				continue
			}
			kept = append(kept, d)
			sh.total += d.count
		}
		sh.cold = kept
		if len(kept) > 0 {
			// Forbid appends into compacted windows: the watermark moves to
			// the end of the last cold window if raw data doesn't already
			// reach past it.
			last := kept[len(kept)-1]
			if end := last.maxT + last.window - 1; !sh.hasLast || end > sh.lastT {
				sh.lastT = end
				sh.hasLast = true
			}
		}
	}
	for i := range s.shards {
		s.shards[i].counter = s.shards[i].total
	}
	s.diskBytes.Store(disk)
	return s, nil
}

// loadSegDir reads every segment file in one directory into the store,
// mapping each file's within-hall shard index to shards[base+index]. A
// missing directory surfaces as fs.ErrNotExist for the caller to translate
// (cold start for a flat store, empty hall for a fleet one).
func (s *Store) loadSegDir(dir string, base int) (disk int64, loaded int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, 0, err
		}
		return 0, 0, fmt.Errorf("tsdb: open %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		// The raw pattern below also matches cold segment names, so the
		// cold suffix must be routed first.
		if ok, _ := filepath.Match("shard-*.cold.seg", e.Name()); ok {
			path := filepath.Join(dir, e.Name())
			buf, err := os.ReadFile(path)
			if err != nil {
				return 0, 0, fmt.Errorf("tsdb: open: %w", err)
			}
			shard, blocks, loc, err := parseColdSegment(e.Name(), buf)
			if err != nil {
				return 0, 0, err
			}
			if shard >= s.fleet.Racks {
				return 0, 0, fmt.Errorf("tsdb: segment %s: %w: shard %d outside fleet (%d racks per hall)", e.Name(), ErrCorrupt, shard, s.fleet.Racks)
			}
			sh := &s.shards[base+shard]
			if len(sh.cold) > 0 {
				return 0, 0, fmt.Errorf("tsdb: segment %s: %w: duplicate cold shard %d", e.Name(), ErrCorrupt, shard)
			}
			sh.cold = blocks
			s.loc.CompareAndSwap(nil, loc)
			disk += int64(len(buf))
			loaded++
			continue
		}
		if ok, _ := filepath.Match("shard-*.seg", e.Name()); !ok {
			continue
		}
		path := filepath.Join(dir, e.Name())
		buf, err := os.ReadFile(path)
		if err != nil {
			return 0, 0, fmt.Errorf("tsdb: open: %w", err)
		}
		shard, blocks, loc, err := parseSegment(e.Name(), buf)
		if err != nil {
			return 0, 0, err
		}
		if shard >= s.fleet.Racks {
			return 0, 0, fmt.Errorf("tsdb: segment %s: %w: shard %d outside fleet (%d racks per hall)", e.Name(), ErrCorrupt, shard, s.fleet.Racks)
		}
		sh := &s.shards[base+shard]
		if sh.total > 0 {
			return 0, 0, fmt.Errorf("tsdb: segment %s: %w: duplicate shard %d", e.Name(), ErrCorrupt, shard)
		}
		for _, b := range blocks {
			sh.sealed = append(sh.sealed, b)
			sh.total += b.count
		}
		sh.lastT = blocks[len(blocks)-1].maxT
		sh.hasLast = true
		s.loc.CompareAndSwap(nil, loc)
		disk += int64(len(buf))
		loaded++
	}
	return disk, loaded, nil
}

// parseSegment validates one segment file and returns its shard index,
// blocks (aliasing buf), and the records' location.
func parseSegment(name string, buf []byte) (int, []*sealedBlock, *time.Location, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("tsdb: segment %s: %w: %s", name, ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(buf) < segFileHeaderSize {
		return 0, nil, nil, corrupt("truncated file header (%d bytes)", len(buf))
	}
	if [4]byte(buf[:4]) != segMagic {
		return 0, nil, nil, corrupt("bad magic %q", buf[:4])
	}
	version := binary.LittleEndian.Uint16(buf[4:6])
	if version != segVersion1 && version != segVersion {
		return 0, nil, nil, corrupt("unsupported format version %d (want %d or %d)", version, segVersion1, segVersion)
	}
	bhSize := segBlockHeaderSize
	if version >= segVersion {
		bhSize = segBlockHeaderSizeV2
	}
	shard := int(binary.LittleEndian.Uint16(buf[6:8]))
	if shard >= topology.NumRacks {
		return 0, nil, nil, corrupt("shard index %d out of range (racks: %d)", shard, topology.NumRacks)
	}
	nblocks := int(binary.LittleEndian.Uint32(buf[8:12]))
	locLen := int(binary.LittleEndian.Uint16(buf[12:14]))
	locOff := int(int32(binary.LittleEndian.Uint32(buf[14:18])))
	if len(buf) < segFileHeaderSize+locLen {
		return 0, nil, nil, corrupt("truncated location name")
	}
	locName := string(buf[segFileHeaderSize : segFileHeaderSize+locLen])
	loc := loadLocation(locName, locOff)
	if nblocks <= 0 || nblocks > (len(buf)-segFileHeaderSize)/bhSize {
		return 0, nil, nil, corrupt("implausible block count %d for %d bytes", nblocks, len(buf))
	}

	blocks := make([]*sealedBlock, 0, nblocks)
	off := segFileHeaderSize + locLen
	var prevMax int64
	for i := 0; i < nblocks; i++ {
		if len(buf)-off < bhSize {
			return 0, nil, nil, corrupt("block %d: truncated header", i)
		}
		h := buf[off : off+bhSize]
		b := &sealedBlock{
			minT:  int64(binary.LittleEndian.Uint64(h[0:8])),
			maxT:  int64(binary.LittleEndian.Uint64(h[8:16])),
			count: int(binary.LittleEndian.Uint32(h[16:20])),
			src:   fmt.Sprintf("segment %s block %d", name, i),
		}
		timesLen := int(binary.LittleEndian.Uint32(h[20:24]))
		payload := timesLen
		p := 24
		for m := range b.ch {
			b.ch[m].enc = h[p]
			b.ch[m].scale = math.Float64frombits(binary.LittleEndian.Uint64(h[p+1 : p+9]))
			dataLen := int(binary.LittleEndian.Uint32(h[p+9 : p+13]))
			payload += dataLen
			p += 13
		}
		if version >= segVersion {
			for m := range b.zones {
				b.zones[m].Min = math.Float64frombits(binary.LittleEndian.Uint64(h[p : p+8]))
				b.zones[m].Max = math.Float64frombits(binary.LittleEndian.Uint64(h[p+8 : p+16]))
				p += 16
			}
			b.hasZones = true
		}
		wantCRC := binary.LittleEndian.Uint32(h[p : p+4])

		if b.count <= 0 {
			return 0, nil, nil, corrupt("block %d: empty block", i)
		}
		if b.hasZones {
			for m, z := range b.zones {
				// Valid zones are either ordered or the both-NaN "unusable"
				// sentinel; anything else is a mangled header the CRC would
				// catch anyway — reject it with a precise message first.
				if !z.usable() && !(math.IsNaN(z.Min) && math.IsNaN(z.Max)) {
					return 0, nil, nil, corrupt("block %d: channel %d: inverted zone map [%v, %v]", i, m, z.Min, z.Max)
				}
			}
		}
		// Plausibility floor before any decoder allocates count-sized
		// buffers: delta-of-delta timestamps cost 64 bits for the first
		// value and at least one bit for each later one.
		if timesLen*8 < 63+b.count {
			return 0, nil, nil, corrupt("block %d: %d samples cannot fit in %d timestamp bytes", i, b.count, timesLen)
		}
		if b.minT > b.maxT {
			return 0, nil, nil, corrupt("block %d: inverted time bounds", i)
		}
		if i > 0 && b.minT < prevMax {
			return 0, nil, nil, corrupt("block %d: overlaps previous block", i)
		}
		prevMax = b.maxT
		if len(buf)-off-bhSize < payload {
			return 0, nil, nil, corrupt("block %d: truncated payload (%d of %d bytes)", i, len(buf)-off-bhSize, payload)
		}

		crc := crc32.ChecksumIEEE(h[:p]) // header fields, sans CRC itself
		crc = crc32.Update(crc, crc32.IEEETable, buf[off+bhSize:off+bhSize+payload])
		if crc != wantCRC {
			return 0, nil, nil, corrupt("block %d: checksum mismatch (got %08x, want %08x)", i, crc, wantCRC)
		}

		q := off + bhSize
		b.times = buf[q : q+timesLen : q+timesLen]
		q += timesLen
		p = 24
		for m := range b.ch {
			dataLen := int(binary.LittleEndian.Uint32(h[p+9 : p+13]))
			b.ch[m].data = buf[q : q+dataLen : q+dataLen]
			q += dataLen
			p += 13
			switch b.ch[m].enc {
			case encInt:
				if !(b.ch[m].scale > 0) || math.IsInf(b.ch[m].scale, 1) { // also rejects NaN
					return 0, nil, nil, corrupt("block %d: channel %d: invalid scale %v", i, m, b.ch[m].scale)
				}
				if dataLen*8 < b.count { // varbit: at least one bit per value
					return 0, nil, nil, corrupt("block %d: channel %d: %d values cannot fit in %d bytes", i, m, b.count, dataLen)
				}
			case encIntPacked:
				if !(b.ch[m].scale > 0) || math.IsInf(b.ch[m].scale, 1) { // also rejects NaN
					return 0, nil, nil, corrupt("block %d: channel %d: invalid scale %v", i, m, b.ch[m].scale)
				}
				// Packed groups cost at least their 7-bit width header.
				if groups := (b.count + packGroup - 1) / packGroup; dataLen*8 < groups*7 {
					return 0, nil, nil, corrupt("block %d: channel %d: %d values cannot fit in %d bytes", i, m, b.count, dataLen)
				}
			case encXOR:
				if dataLen*8 < 63+b.count { // 64-bit first value, ≥1 bit each after
					return 0, nil, nil, corrupt("block %d: channel %d: %d values cannot fit in %d bytes", i, m, b.count, dataLen)
				}
			default:
				return 0, nil, nil, corrupt("block %d: channel %d: unknown encoding %d", i, m, b.ch[m].enc)
			}
		}
		blocks = append(blocks, b)
		off = q
	}
	if off != len(buf) {
		return 0, nil, nil, corrupt("%d trailing bytes after last block", len(buf)-off)
	}
	return shard, blocks, loc, nil
}

// writeColdSegment writes one shard's downsampled blocks to path (no
// rename: Flush and Compact wrap it in their own tmp+rename step so the
// failure window is theirs to test) and fsyncs before returning.
func writeColdSegment(path string, shard int, loc *time.Location, blocks []*downBlock) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("tsdb: compact shard %d: %w", shard, err)
	}
	locName := loc.String()
	_, locOff := time.Unix(0, blocks[0].minT).In(loc).Zone()

	w := bufio.NewWriter(f)
	written := int64(segFileHeaderSize + len(locName))
	hdr := make([]byte, 0, segFileHeaderSize)
	hdr = append(hdr, coldMagic[:]...)
	hdr = binary.LittleEndian.AppendUint16(hdr, segVersionCold)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(shard))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(blocks)))
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(locName)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(int32(locOff)))
	hdr = append(hdr, locName...)
	writeErr := func(err error) (int64, error) {
		f.Close()
		os.Remove(path)
		return 0, fmt.Errorf("tsdb: compact shard %d: %w", shard, err)
	}
	if _, err := w.Write(hdr); err != nil {
		return writeErr(err)
	}

	bh := make([]byte, 0, coldBlockHeaderSize)
	for _, d := range blocks {
		bh = bh[:0]
		bh = binary.LittleEndian.AppendUint64(bh, uint64(d.window))
		bh = binary.LittleEndian.AppendUint64(bh, uint64(d.minT))
		bh = binary.LittleEndian.AppendUint64(bh, uint64(d.maxT))
		bh = binary.LittleEndian.AppendUint32(bh, uint32(d.count))
		bh = binary.LittleEndian.AppendUint64(bh, uint64(d.srcRecords))
		bh = binary.LittleEndian.AppendUint32(bh, uint32(len(d.times)))
		bh = binary.LittleEndian.AppendUint32(bh, uint32(len(d.counts)))
		for m := range d.ch {
			c := d.ch[m]
			bh = append(bh, c.enc)
			bh = binary.LittleEndian.AppendUint64(bh, math.Float64bits(c.scale))
			bh = binary.LittleEndian.AppendUint32(bh, uint32(len(c.data)))
		}
		crc := crc32.ChecksumIEEE(bh)
		crc = crc32.Update(crc, crc32.IEEETable, d.times)
		crc = crc32.Update(crc, crc32.IEEETable, d.counts)
		for m := range d.ch {
			crc = crc32.Update(crc, crc32.IEEETable, d.ch[m].data)
		}
		bh = binary.LittleEndian.AppendUint32(bh, crc)
		if _, err := w.Write(bh); err != nil {
			return writeErr(err)
		}
		if _, err := w.Write(d.times); err != nil {
			return writeErr(err)
		}
		if _, err := w.Write(d.counts); err != nil {
			return writeErr(err)
		}
		written += int64(len(bh) + len(d.times) + len(d.counts))
		for m := range d.ch {
			if _, err := w.Write(d.ch[m].data); err != nil {
				return writeErr(err)
			}
			written += int64(len(d.ch[m].data))
		}
	}
	if err := w.Flush(); err != nil {
		return writeErr(err)
	}
	if err := f.Sync(); err != nil {
		return writeErr(err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("tsdb: compact shard %d: %w", shard, err)
	}
	return written, nil
}

// parseColdSegment validates one downsampled segment file and returns its
// shard index, blocks (aliasing buf), and the records' location.
func parseColdSegment(name string, buf []byte) (int, []*downBlock, *time.Location, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("tsdb: segment %s: %w: %s", name, ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(buf) < segFileHeaderSize {
		return 0, nil, nil, corrupt("truncated file header (%d bytes)", len(buf))
	}
	if [4]byte(buf[:4]) != coldMagic {
		return 0, nil, nil, corrupt("bad magic %q", buf[:4])
	}
	version := binary.LittleEndian.Uint16(buf[4:6])
	if version != segVersionCold {
		return 0, nil, nil, corrupt("unsupported format version %d (want %d)", version, segVersionCold)
	}
	shard := int(binary.LittleEndian.Uint16(buf[6:8]))
	if shard >= topology.NumRacks {
		return 0, nil, nil, corrupt("shard index %d out of range (racks: %d)", shard, topology.NumRacks)
	}
	nblocks := int(binary.LittleEndian.Uint32(buf[8:12]))
	locLen := int(binary.LittleEndian.Uint16(buf[12:14]))
	locOff := int(int32(binary.LittleEndian.Uint32(buf[14:18])))
	if len(buf) < segFileHeaderSize+locLen {
		return 0, nil, nil, corrupt("truncated location name")
	}
	locName := string(buf[segFileHeaderSize : segFileHeaderSize+locLen])
	loc := loadLocation(locName, locOff)
	if nblocks <= 0 || nblocks > (len(buf)-segFileHeaderSize)/coldBlockHeaderSize {
		return 0, nil, nil, corrupt("implausible block count %d for %d bytes", nblocks, len(buf))
	}

	blocks := make([]*downBlock, 0, nblocks)
	off := segFileHeaderSize + locLen
	var prevEnd int64
	for i := 0; i < nblocks; i++ {
		if len(buf)-off < coldBlockHeaderSize {
			return 0, nil, nil, corrupt("block %d: truncated header", i)
		}
		h := buf[off : off+coldBlockHeaderSize]
		d := &downBlock{
			window:     int64(binary.LittleEndian.Uint64(h[0:8])),
			minT:       int64(binary.LittleEndian.Uint64(h[8:16])),
			maxT:       int64(binary.LittleEndian.Uint64(h[16:24])),
			count:      int(binary.LittleEndian.Uint32(h[24:28])),
			srcRecords: int64(binary.LittleEndian.Uint64(h[28:36])),
			src:        fmt.Sprintf("segment %s block %d", name, i),
		}
		timesLen := int(binary.LittleEndian.Uint32(h[36:40]))
		countsLen := int(binary.LittleEndian.Uint32(h[40:44]))
		payload := timesLen + countsLen
		p := 44
		for m := range d.ch {
			d.ch[m].enc = h[p]
			d.ch[m].scale = math.Float64frombits(binary.LittleEndian.Uint64(h[p+1 : p+9]))
			dataLen := int(binary.LittleEndian.Uint32(h[p+9 : p+13]))
			payload += dataLen
			p += 13
		}
		wantCRC := binary.LittleEndian.Uint32(h[p : p+4])

		if d.window <= 0 {
			return 0, nil, nil, corrupt("block %d: invalid window %d", i, d.window)
		}
		if d.count <= 0 {
			return 0, nil, nil, corrupt("block %d: empty block", i)
		}
		if timesLen*8 < 63+d.count {
			return 0, nil, nil, corrupt("block %d: %d windows cannot fit in %d timestamp bytes", i, d.count, timesLen)
		}
		if countsLen*8 < d.count {
			return 0, nil, nil, corrupt("block %d: %d windows cannot fit in %d count bytes", i, d.count, countsLen)
		}
		if d.srcRecords < int64(d.count) {
			return 0, nil, nil, corrupt("block %d: %d source records for %d windows", i, d.srcRecords, d.count)
		}
		if d.minT > d.maxT {
			return 0, nil, nil, corrupt("block %d: inverted time bounds", i)
		}
		if d.minT != floorDiv(d.minT, d.window)*d.window || d.maxT != floorDiv(d.maxT, d.window)*d.window {
			return 0, nil, nil, corrupt("block %d: bounds not aligned to %dns windows", i, d.window)
		}
		if i > 0 && d.minT < prevEnd {
			return 0, nil, nil, corrupt("block %d: overlaps previous block", i)
		}
		prevEnd = d.maxT + d.window
		if len(buf)-off-coldBlockHeaderSize < payload {
			return 0, nil, nil, corrupt("block %d: truncated payload (%d of %d bytes)", i, len(buf)-off-coldBlockHeaderSize, payload)
		}

		crc := crc32.ChecksumIEEE(h[:p]) // header fields, sans CRC itself
		crc = crc32.Update(crc, crc32.IEEETable, buf[off+coldBlockHeaderSize:off+coldBlockHeaderSize+payload])
		if crc != wantCRC {
			return 0, nil, nil, corrupt("block %d: checksum mismatch (got %08x, want %08x)", i, crc, wantCRC)
		}

		q := off + coldBlockHeaderSize
		d.times = buf[q : q+timesLen : q+timesLen]
		q += timesLen
		d.counts = buf[q : q+countsLen : q+countsLen]
		q += countsLen
		p = 44
		for m := range d.ch {
			dataLen := int(binary.LittleEndian.Uint32(h[p+9 : p+13]))
			d.ch[m].data = buf[q : q+dataLen : q+dataLen]
			q += dataLen
			p += 13
			switch d.ch[m].enc {
			case encInt:
				if !(d.ch[m].scale > 0) || math.IsInf(d.ch[m].scale, 1) { // also rejects NaN
					return 0, nil, nil, corrupt("block %d: channel %d: invalid scale %v", i, m, d.ch[m].scale)
				}
			case encXOR:
			default:
				return 0, nil, nil, corrupt("block %d: channel %d: unknown encoding %d", i, m, d.ch[m].enc)
			}
		}
		blocks = append(blocks, d)
		off = q
	}
	if off != len(buf) {
		return 0, nil, nil, corrupt("%d trailing bytes after last block", len(buf)-off)
	}
	return shard, blocks, loc, nil
}

// loadLocation reconstructs the records' location: IANA names resolve via
// the zone database; fixed zones (like the twin's CST) fall back to the
// persisted name and offset.
func loadLocation(name string, offsetSec int) *time.Location {
	switch name {
	case "", "UTC":
		return time.UTC
	}
	if loc, err := time.LoadLocation(name); err == nil {
		return loc
	}
	return time.FixedZone(name, offsetSec)
}
