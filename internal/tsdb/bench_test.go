package tsdb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
	"unsafe"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// benchRecords pre-generates n sequential samples for one rack.
func benchRecords(n int) []sensors.Record {
	rng := rand.New(rand.NewSource(42))
	rack := topology.RackID{Row: 1, Col: 4}
	out := make([]sensors.Record, n)
	for i := range out {
		out[i] = synthRecord(rng, rack, base.Add(time.Duration(i)*timeutil.SampleInterval))
	}
	return out
}

// BenchmarkAppend measures tsdb ingest throughput (records/op includes the
// amortized cost of sealing a 30-day block every 8640 appends).
func BenchmarkAppend(b *testing.B) {
	recs := benchRecords(1 << 16)
	s := NewStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		// Keep time monotonic across wraps.
		r.Time = r.Time.Add(time.Duration(i/len(recs)*len(recs)) * timeutil.SampleInterval)
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSliceStore is the envdb.Store baseline for ingest.
func BenchmarkAppendSliceStore(b *testing.B) {
	recs := benchRecords(1 << 16)
	s := envdb.NewStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		r.Time = r.Time.Add(time.Duration(i/len(recs)*len(recs)) * timeutil.SampleInterval)
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStore builds a sealed store with days of telemetry on one rack.
func benchStore(b *testing.B, days int) (*Store, topology.RackID, time.Time) {
	b.Helper()
	n := days * 288 // samples/day at 300 s
	recs := benchRecords(n)
	s := NewStore()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	s.SealAll()
	return s, recs[0].Rack, base.Add(time.Duration(n) * timeutil.SampleInterval)
}

// BenchmarkCompression reports the sealed footprint against the slice
// store's in-memory record size: bytes/sample is the Gorilla-style metric
// (compressed bytes per timestamp+value pair, 6 values per record).
func BenchmarkCompression(b *testing.B) {
	s, _, _ := benchStore(b, 120)
	st := s.Stats()
	sliceBytesPerRecord := float64(unsafe.Sizeof(sensors.Record{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = s.Stats()
	}
	b.ReportMetric(st.BytesPerSample, "B/sample")
	b.ReportMetric(st.BytesPerRecord, "B/record")
	b.ReportMetric(sliceBytesPerRecord, "sliceB/record")
	b.ReportMetric(sliceBytesPerRecord/float64(sensors.NumMetrics), "sliceB/sample")
}

// BenchmarkQueryRange scans a 30-day range (8640 records) per op,
// decompressing all six channels.
func BenchmarkQueryRange(b *testing.B) {
	s, rack, _ := benchStore(b, 120)
	from := base.Add(10 * 24 * time.Hour)
	to := from.Add(30 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Query(rack, from, to); len(got) == 0 {
			b.Fatal("empty query")
		}
	}
}

// BenchmarkQueryRangeParallel runs the same scan from many goroutines: the
// RWMutex-per-shard design and lock-free block decoding let range queries
// scale with cores (compare ns/op against BenchmarkQueryRange — on a
// single-core host the two match, demonstrating zero contention overhead;
// on multi-core hosts ns/op drops roughly linearly).
func BenchmarkQueryRangeParallel(b *testing.B) {
	s, rack, _ := benchStore(b, 120)
	from := base.Add(10 * 24 * time.Hour)
	to := from.Add(30 * 24 * time.Hour)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if got := s.Query(rack, from, to); len(got) == 0 {
				b.Fatal("empty query")
			}
		}
	})
}

// BenchmarkSeries extracts one metric over 30 days — the pushdown path that
// decodes a single compressed column instead of materializing records.
func BenchmarkSeries(b *testing.B) {
	s, rack, _ := benchStore(b, 120)
	from := base.Add(10 * 24 * time.Hour)
	to := from.Add(30 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, vs := s.Series(rack, sensors.MetricOutletTemp, from, to); len(vs) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkAggregate computes daily min/max/mean over 90 days without
// materializing any records.
func BenchmarkAggregate(b *testing.B) {
	s, rack, end := benchStore(b, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if aggs, err := s.Aggregate(rack, sensors.MetricPower, base, end, 24*time.Hour); err != nil || len(aggs) == 0 {
			b.Fatalf("empty aggregate (err %v)", err)
		}
	}
}

// benchStoreAllRacks builds a sealed full-machine store: every rack,
// days of telemetry, so merged scans exercise the 48-way heap and the
// shard fan-out.
func benchStoreAllRacks(b *testing.B, days int) *Store {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	s := NewStoreWith(Options{Partition: 7 * 24 * time.Hour})
	n := days * 288
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		for _, rack := range topology.AllRacks() {
			if err := s.Append(synthRecord(rng, rack, ts)); err != nil {
				b.Fatal(err)
			}
		}
	}
	s.SealAll()
	return s
}

// BenchmarkEachRecord is the full-trace replay benchmark on the batch-
// columnar path: the chunked merged scan in global (timestamp, rack) order
// with a single decode worker pipelined against the merge loop — the shape
// offline replay uses. Compare against BenchmarkEachRecordSerial (rack-
// major, no merge) and BenchmarkEachRecordParallel (record-at-a-time
// merge) for the chunked-vs-record contrast bench.sh records.
func BenchmarkEachRecord(b *testing.B) {
	s := benchStoreAllRacks(b, 7)
	want := s.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := s.EachChunkMerged(1, func(c *envdb.Chunk) bool { n += c.Len(); return true }); err != nil {
			b.Fatal(err)
		}
		if n != want {
			b.Fatalf("visited %d, want %d", n, want)
		}
	}
	b.ReportMetric(float64(want), "records/op")
}

// BenchmarkEachRecordSerial is the serial full-trace replay baseline:
// rack-major order, one shard at a time, records materialized one by one.
func BenchmarkEachRecordSerial(b *testing.B) {
	s := benchStoreAllRacks(b, 7)
	want := s.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.EachRecord(func(sensors.Record) { n++ })
		if n != want {
			b.Fatalf("visited %d, want %d", n, want)
		}
	}
	b.ReportMetric(float64(want), "records/op")
}

// BenchmarkEachRecordParallel replays the same trace through the parallel
// fan-out + k-way merge in global timestamp order. The GOMAXPROCS sub-
// benchmarks show the decode scaling; on a single-core host all worker
// counts collapse to serial throughput plus merge overhead.
func BenchmarkEachRecordParallel(b *testing.B) {
	s := benchStoreAllRacks(b, 7)
	want := s.Len()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				if err := s.EachRecordMerged(workers, func(sensors.Record) bool { n++; return true }); err != nil {
					b.Fatal(err)
				}
				if n != want {
					b.Fatalf("visited %d, want %d", n, want)
				}
			}
			b.ReportMetric(float64(want), "records/op")
		})
	}
}

// benchTicks pre-generates n time-ordered full-machine ticks flattened
// tick-major: 48 records per timestamp, the stream shape a pushing
// client accumulates into one ingest frame.
func benchTicks(n int) []sensors.Record {
	rng := rand.New(rand.NewSource(42))
	racks := topology.AllRacks()
	out := make([]sensors.Record, 0, n*len(racks))
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		for _, rack := range racks {
			out = append(out, synthRecord(rng, rack, ts))
		}
	}
	return out
}

// resetHeads truncates every shard's head in place, keeping slice
// capacity, so the ingest benchmarks measure steady-state append cost
// instead of the one-time slice growth of a cold store. Benchmark-only:
// it reaches into shard internals under the shard locks.
func resetHeads(s *Store) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.head != nil {
			sh.head.times = sh.head.times[:0]
			for m := range sh.head.vals {
				sh.head.vals[m] = sh.head.vals[m][:0]
			}
		}
		sh.total = 0
		sh.lastT = 0
		sh.hasLast = false
		sh.counter = 0
		sh.mu.Unlock()
	}
}

// benchIngestTicks drives one 85-tick ingest frame (85 ticks × 48 racks
// = 4080 records) per op through the given ingest function against a
// warm store: heads are pre-grown to the full working set, then
// truncated in place (untimed) every 47 ops — 85×47 samples stay under
// the next head-capacity boundary — so both variants measure the
// per-record append path, not allocation. Each op consumes a distinct
// frame from the pre-generated stream, so neither variant gets to replay
// a cache-resident batch. The huge partition keeps sealing out of the
// loop.
func benchIngestTicks(b *testing.B, ingest func(envdb.DB, []sensors.Record) error) {
	const ticksPerOp = 85
	const opsPerStore = 47
	recs := benchTicks(ticksPerOp * opsPerStore)
	frame := ticksPerOp * topology.NumRacks // records per op
	s := NewStoreWith(Options{Partition: 1000000 * time.Hour})
	for _, r := range recs { // grow head capacity once, untimed
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	resetHeads(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := i % opsPerStore
		if i > 0 && op == 0 {
			b.StopTimer()
			resetHeads(s)
			b.StartTimer()
		}
		if err := ingest(s, recs[op*frame:(op+1)*frame]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	records := int64(b.N) * int64(frame)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(records), "ns/record")
}

// BenchmarkIngestTickLoop is the pre-batch ingest baseline: the shape a
// server without AppendTick uses on each ingest frame — one locked
// Append per record through the envdb.DB interface, 4080 lock
// round-trips per frame.
func BenchmarkIngestTickLoop(b *testing.B) {
	benchIngestTicks(b, func(db envdb.DB, frame []sensors.Record) error {
		for _, r := range frame {
			if err := db.Append(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkIngestTickBatch is the batched ingest path: one AppendTick
// per frame validates the whole batch up front, locks each touched shard
// once, and bulk-fills each head's 85-sample run. Compare ns/record
// against BenchmarkIngestTickLoop — the ratio is the per-record cost the
// batch path strips from the ingest hot loop.
func BenchmarkIngestTickBatch(b *testing.B) {
	benchIngestTicks(b, func(db envdb.DB, frame []sensors.Record) error {
		return db.(envdb.BatchAppender).AppendTick(frame)
	})
}

// benchStoreFleet builds a sealed 4-hall fleet store (192 racks) with
// days of telemetry on every rack, ingested tick-at-a-time.
func benchStoreFleet(b *testing.B, days int) *Store {
	b.Helper()
	fleet := topology.Fleet{Halls: 4, Racks: topology.NumRacks}
	rng := rand.New(rand.NewSource(42))
	racks := fleet.AllRacks()
	s := NewStoreWith(Options{Partition: 7 * 24 * time.Hour, Fleet: fleet})
	n := days * 288
	tick := make([]sensors.Record, len(racks))
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		for j, rack := range racks {
			tick[j] = synthRecord(rng, rack, ts)
		}
		if err := s.AppendTick(tick); err != nil {
			b.Fatal(err)
		}
	}
	s.SealAll()
	return s
}

// BenchmarkFleetScanChunked replays a 4-hall / 192-rack fleet store
// through the chunked merged scan — the 192-way merge a fleet-wide
// analysis or audit pass runs, four times the single-machine fan-out of
// BenchmarkEachRecord.
func BenchmarkFleetScanChunked(b *testing.B) {
	s := benchStoreFleet(b, 2)
	want := s.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := s.EachChunkMerged(1, func(c *envdb.Chunk) bool { n += c.Len(); return true }); err != nil {
			b.Fatal(err)
		}
		if n != want {
			b.Fatalf("visited %d, want %d", n, want)
		}
	}
	b.ReportMetric(float64(want), "records/op")
}
