package tsdb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

var base = time.Date(2015, 3, 1, 0, 0, 0, 0, timeutil.Chicago)

// round3 quantizes to the store's default precision so the slice store and
// tsdb return bit-identical values in parity tests.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// synthRecord fabricates a coolant-monitor sample with the sensor model's
// noise amplitudes, pre-quantized to the CSV schema precision.
func synthRecord(rng *rand.Rand, rack topology.RackID, ts time.Time) sensors.Record {
	day := float64(ts.Sub(base)) / float64(24*time.Hour)
	seasonal := 5 * math.Sin(2*math.Pi*day/365)
	return sensors.Record{
		Time:          ts,
		Rack:          rack,
		DCTemperature: units.Fahrenheit(round3(82 + seasonal + rng.NormFloat64()*0.25)),
		DCHumidity:    units.RelativeHumidity(round3(32 - seasonal + rng.NormFloat64()*0.35)),
		Flow:          units.GPM(round3(26.5 + rng.NormFloat64()*0.10)),
		InletTemp:     units.Fahrenheit(round3(64 + rng.NormFloat64()*0.08)),
		OutletTemp:    units.Fahrenheit(round3(79 + rng.NormFloat64()*0.12)),
		Power:         units.Watts(math.Round(10*(57000+rng.NormFloat64()*250)) / 10),
	}
}

// fill appends n samples at the coolant-monitor cadence for each given rack
// to every provided store.
func fill(t *testing.T, n int, racks []topology.RackID, dbs ...envdb.DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		for _, rack := range racks {
			rec := synthRecord(rng, rack, ts)
			for _, db := range dbs {
				if err := db.Append(rec); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
		}
	}
}

// TestParityWithSliceStore drives identical data through envdb.Store and
// tsdb.Store — across several sealed partitions plus a live head — and
// requires identical query results.
func TestParityWithSliceStore(t *testing.T) {
	ts := NewStoreWith(Options{Partition: 24 * time.Hour}) // 288 samples/block
	ref := envdb.NewStore()
	racks := []topology.RackID{{Row: 0, Col: 1}, {Row: 1, Col: 8}, {Row: 2, Col: 15}}
	const n = 1000 // ~3.5 partitions
	fill(t, n, racks, ts, ref)

	if ts.Len() != ref.Len() {
		t.Fatalf("Len = %d, want %d", ts.Len(), ref.Len())
	}
	if st := ts.Stats(); st.SealedBlocks < 9 { // ≥3 sealed partitions × 3 racks
		t.Fatalf("expected multiple sealed blocks, got %d", st.SealedBlocks)
	}
	from := base.Add(100 * timeutil.SampleInterval)
	to := base.Add(700 * timeutil.SampleInterval)
	for _, rack := range racks {
		got := ts.Query(rack, from, to)
		want := ref.Query(rack, from, to)
		if len(got) != len(want) {
			t.Fatalf("rack %v: Query len = %d, want %d", rack, len(got), len(want))
		}
		for i := range want {
			if !got[i].Time.Equal(want[i].Time) {
				t.Fatalf("rack %v sample %d: time %v, want %v", rack, i, got[i].Time, want[i].Time)
			}
			if got[i].Rack != want[i].Rack {
				t.Fatalf("rack %v sample %d: rack %v", rack, i, got[i].Rack)
			}
			for _, m := range sensors.AllMetrics() {
				if got[i].Value(m) != want[i].Value(m) {
					t.Fatalf("rack %v sample %d %v: %v, want %v", rack, i, m, got[i].Value(m), want[i].Value(m))
				}
			}
		}
		gt, gv := ts.Series(rack, sensors.MetricOutletTemp, from, to)
		wt, wv := ref.Series(rack, sensors.MetricOutletTemp, from, to)
		if len(gt) != len(wt) {
			t.Fatalf("Series len = %d, want %d", len(gt), len(wt))
		}
		for i := range wv {
			if gv[i] != wv[i] || !gt[i].Equal(wt[i]) {
				t.Fatalf("Series[%d] = (%v, %v), want (%v, %v)", i, gt[i], gv[i], wt[i], wv[i])
			}
		}
	}

	// EachRecord must visit the same records in the same rack-major order.
	var gotOrder, wantOrder []sensors.Record
	ts.EachRecord(func(r sensors.Record) { gotOrder = append(gotOrder, r) })
	ref.EachRecord(func(r sensors.Record) { wantOrder = append(wantOrder, r) })
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("EachRecord visited %d, want %d", len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if !gotOrder[i].Time.Equal(wantOrder[i].Time) || gotOrder[i].Rack != wantOrder[i].Rack {
			t.Fatalf("EachRecord[%d] = (%v, %v), want (%v, %v)",
				i, gotOrder[i].Rack, gotOrder[i].Time, wantOrder[i].Rack, wantOrder[i].Time)
		}
	}
}

func TestOutOfOrderAppend(t *testing.T) {
	s := NewStore()
	r := topology.RackID{Row: 1, Col: 1}
	rng := rand.New(rand.NewSource(1))
	if err := s.Append(synthRecord(rng, r, base.Add(time.Hour))); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(synthRecord(rng, r, base)); err == nil {
		t.Error("out-of-order append should fail")
	}
	if err := s.Append(synthRecord(rng, r, base.Add(time.Hour))); err != nil {
		t.Errorf("equal-time append should succeed: %v", err)
	}
	// Other racks are independent shards.
	if err := s.Append(synthRecord(rng, topology.RackID{Row: 0, Col: 0}, base)); err != nil {
		t.Errorf("other-rack append should succeed: %v", err)
	}
}

func TestQuantizationOnIngest(t *testing.T) {
	s := NewStore()
	r := topology.RackID{Row: 0, Col: 3}
	rec := sensors.Record{
		Time: base, Rack: r,
		DCTemperature: 80.00049, DCHumidity: 31.9996,
		Flow: 26.5001, InletTemp: 64.123456, OutletTemp: 79,
		Power: units.Watts(57000.04),
	}
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	got := s.Query(r, base, base.Add(time.Minute))[0]
	if float64(got.DCTemperature) != 80.0 || float64(got.DCHumidity) != 32.0 ||
		float64(got.Flow) != 26.5 || float64(got.InletTemp) != 64.123 ||
		float64(got.Power) != 57000.0 {
		t.Errorf("quantized record = %+v", got)
	}
	// Stored values round-trip losslessly through seal/decode.
	s.SealAll()
	after := s.Query(r, base, base.Add(time.Minute))[0]
	for _, m := range sensors.AllMetrics() {
		if after.Value(m) != got.Value(m) {
			t.Errorf("%v changed across seal: %v -> %v", m, got.Value(m), after.Value(m))
		}
	}
}

// TestRawStoreLossless checks the XOR path end to end: arbitrary float64
// payloads (including NaN and infinities) survive seal/decode bit-for-bit.
func TestRawStoreLossless(t *testing.T) {
	s := NewRawStore()
	r := topology.RackID{Row: 2, Col: 9}
	rng := rand.New(rand.NewSource(11))
	var want []sensors.Record
	for i := 0; i < 700; i++ {
		rec := sensors.Record{
			Time: base.Add(time.Duration(i) * timeutil.SampleInterval),
			Rack: r,
			// Unquantized full-precision values.
			DCTemperature: units.Fahrenheit(82 + rng.NormFloat64()),
			DCHumidity:    units.RelativeHumidity(rng.Float64() * 100),
			Flow:          units.GPM(26.5 + rng.NormFloat64()*0.1),
			InletTemp:     units.Fahrenheit(64 + rng.NormFloat64()*0.08),
			OutletTemp:    units.Fahrenheit(79 + rng.NormFloat64()*0.12),
			Power:         units.Watts(57000 + rng.NormFloat64()*250),
		}
		switch i {
		case 100:
			rec.Flow = units.GPM(math.NaN())
		case 200:
			rec.Power = units.Watts(math.Inf(1))
		}
		want = append(want, rec)
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	s.SealAll()
	got := s.Query(r, base, base.Add(1000*timeutil.SampleInterval))
	if len(got) != len(want) {
		t.Fatalf("Query len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		for _, m := range sensors.AllMetrics() {
			g, w := math.Float64bits(got[i].Value(m)), math.Float64bits(want[i].Value(m))
			if g != w {
				t.Fatalf("sample %d %v: bits %x, want %x", i, m, g, w)
			}
		}
	}
}

func TestAggregatePushdown(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	rack := topology.RackID{Row: 1, Col: 2}
	const n = 2000
	fill(t, n, []topology.RackID{rack}, s)
	from := base.Add(37 * timeutil.SampleInterval)
	to := base.Add(1800 * timeutil.SampleInterval)
	window := 6 * time.Hour

	got, err := s.Aggregate(rack, sensors.MetricPower, from, to, window)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	wantWindows := int((to.Sub(from) + window - 1) / window)
	if len(got) != wantWindows {
		t.Fatalf("windows = %d, want %d", len(got), wantWindows)
	}
	// Naive reference from Query.
	recs := s.Query(rack, from, to)
	want := make([]WindowAgg, wantWindows)
	for i := range want {
		want[i] = WindowAgg{Start: from.Add(time.Duration(i) * window), Min: math.NaN(), Max: math.NaN()}
	}
	for _, r := range recs {
		k := int(r.Time.Sub(from) / window)
		v := r.Value(sensors.MetricPower)
		w := &want[k]
		if w.Count == 0 || v < w.Min {
			w.Min = v
		}
		if w.Count == 0 || v > w.Max {
			w.Max = v
		}
		w.Sum += v
		w.Count++
	}
	for k := range want {
		g, w := got[k], want[k]
		if !g.Start.Equal(w.Start) || g.Count != w.Count {
			t.Fatalf("window %d: (%v, %d), want (%v, %d)", k, g.Start, g.Count, w.Start, w.Count)
		}
		if w.Count == 0 {
			if !math.IsNaN(g.Min) || !math.IsNaN(g.Max) || !math.IsNaN(g.Mean()) {
				t.Fatalf("window %d: empty window should be NaN, got %+v", k, g)
			}
			continue
		}
		if g.Min != w.Min || g.Max != w.Max || math.Abs(g.Sum-w.Sum) > 1e-6*math.Abs(w.Sum) {
			t.Fatalf("window %d: %+v, want %+v", k, g, w)
		}
	}

	// Whole-range aggregate (window <= 0).
	all, err := s.Aggregate(rack, sensors.MetricPower, from, to, 0)
	if err != nil {
		t.Fatalf("whole-range Aggregate: %v", err)
	}
	if len(all) != 1 || all[0].Count != len(recs) {
		t.Fatalf("whole-range aggregate = %+v, want count %d", all, len(recs))
	}
	if inv, err := s.Aggregate(rack, sensors.MetricPower, to, from, window); err != nil || inv != nil {
		t.Errorf("inverted range should aggregate to nil, nil; got %v, %v", inv, err)
	}
}

func TestAggregateWindowCountClamp(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	rack := topology.RackID{Row: 0, Col: 0}
	fill(t, 2000, []topology.RackID{rack}, s)
	from := base
	to := base.AddDate(6, 0, 0)

	// A 1ns window over a multi-year range would need ~2e17 WindowAgg
	// allocations; it must error out instead of attempting them. The old
	// ceiling-division window count also overflowed int64 here (span +
	// winN - 1 with a large winN), so exercise both extremes.
	if _, err := s.Aggregate(rack, sensors.MetricPower, from, to, time.Nanosecond); err == nil {
		t.Fatal("1ns window over six years should error, not allocate")
	}
	if aggs, err := s.Aggregate(rack, sensors.MetricPower, from, to, time.Duration(math.MaxInt64)); err != nil || len(aggs) != 1 {
		t.Fatalf("huge window: %d windows, err %v; want 1 window", len(aggs), err)
	}
	// A legitimate fine-grained resolution still works under the clamp.
	aggs, err := s.Aggregate(rack, sensors.MetricPower, from, from.Add(100000*time.Second), time.Second)
	if err != nil {
		t.Fatalf("100k windows: %v", err)
	}
	if len(aggs) != 100000 {
		t.Fatalf("windows = %d, want 100000", len(aggs))
	}
}

func TestIterMatchesQuery(t *testing.T) {
	s := NewStoreWith(Options{Partition: 12 * time.Hour})
	rack := topology.RackID{Row: 0, Col: 7}
	fill(t, 600, []topology.RackID{rack}, s)
	from := base.Add(3 * timeutil.SampleInterval)
	to := base.Add(555 * timeutil.SampleInterval)
	want := s.Query(rack, from, to)
	it := s.Iter(rack, from, to)
	var got []sensors.Record
	for it.Next() {
		got = append(got, it.Record())
	}
	if len(got) != len(want) {
		t.Fatalf("iter yielded %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iter[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Empty range.
	if it := s.Iter(rack, to, to); it.Next() {
		t.Error("empty range iterator should be exhausted")
	}
}

func TestDownsample(t *testing.T) {
	s := NewStoreWith(Options{Downsample: 3})
	ref := envdb.NewDownsampledStore(3)
	rack := topology.RackID{Row: 0, Col: 0}
	fill(t, 9, []topology.RackID{rack}, s, ref)
	if s.Len() != ref.Len() || s.Len() != 3 {
		t.Errorf("downsampled Len = %d (ref %d), want 3", s.Len(), ref.Len())
	}
}

func TestCSVRoundTripByteIdentical(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	racks := []topology.RackID{{Row: 0, Col: 13}, {Row: 1, Col: 8}}
	fill(t, 400, racks, s)
	s.SealAll()

	var first bytes.Buffer
	if err := s.ExportCSV(&first); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.ImportCSV(bytes.NewReader(first.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("round-trip Len = %d, want %d", s2.Len(), s.Len())
	}
	var second bytes.Buffer
	if err := s2.ExportCSV(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("export → import → export is not byte-identical")
	}
}

// TestCompressionBudget is the acceptance gate: realistic noisy telemetry
// must seal at ≤ 4 bytes per (timestamp, value) sample — versus ~15 for the
// 88-byte records of the slice store — while round-tripping losslessly.
func TestCompressionBudget(t *testing.T) {
	s := NewStore()
	racks := []topology.RackID{{Row: 0, Col: 0}, {Row: 1, Col: 8}, {Row: 2, Col: 15}, {Row: 0, Col: 9}}
	const n = 17280 // 60 days at 300 s: two 30-day partitions per rack
	rng := rand.New(rand.NewSource(7))
	want := make(map[topology.RackID][]sensors.Record)
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		for _, rack := range racks {
			rec := synthRecord(rng, rack, ts)
			want[rack] = append(want[rack], rec)
			if err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.SealAll()
	st := s.Stats()
	if st.SealedRecords != n*len(racks) {
		t.Fatalf("sealed %d records, want %d", st.SealedRecords, n*len(racks))
	}
	if st.BytesPerSample > 4 {
		t.Errorf("compression = %.2f bytes/sample, want <= 4 (%.2f bytes/record)",
			st.BytesPerSample, st.BytesPerRecord)
	}
	t.Logf("sealed: %.2f bytes/sample, %.2f bytes/record, %d blocks, %.2f MiB total",
		st.BytesPerSample, st.BytesPerRecord, st.SealedBlocks, float64(st.SealedBytes)/(1<<20))

	// Lossless: decoding returns exactly the values stored (the synthetic
	// inputs are pre-quantized, so ingest quantization is the identity).
	for _, rack := range racks {
		recs := s.Query(rack, base, base.Add(time.Duration(n)*timeutil.SampleInterval))
		if len(recs) != n {
			t.Fatalf("rack %v: %d records, want %d", rack, len(recs), n)
		}
		for k, w := range want[rack] {
			if !recs[k].Time.Equal(w.Time) {
				t.Fatalf("rack %v sample %d: time %v, want %v", rack, k, recs[k].Time, w.Time)
			}
			for _, m := range sensors.AllMetrics() {
				if recs[k].Value(m) != w.Value(m) {
					t.Fatalf("rack %v sample %d %v: %v, want %v", rack, k, m, recs[k].Value(m), w.Value(m))
				}
			}
		}
	}
}

func TestZeroValueStore(t *testing.T) {
	var s Store
	rack := topology.RackID{Row: 2, Col: 2}
	rng := rand.New(rand.NewSource(5))
	if err := s.Append(synthRecord(rng, rack, base)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || len(s.Query(rack, base, base.Add(time.Minute))) != 1 {
		t.Error("zero-value store should be usable")
	}
}

func TestQueryEmptyRange(t *testing.T) {
	s := NewStore()
	rack := topology.RackID{Row: 0, Col: 5}
	rng := rand.New(rand.NewSource(6))
	if err := s.Append(synthRecord(rng, rack, base)); err != nil {
		t.Fatal(err)
	}
	if got := s.Query(rack, base.Add(time.Hour), base.Add(2*time.Hour)); len(got) != 0 {
		t.Errorf("empty-range query returned %d records", len(got))
	}
	if got := s.Query(topology.RackID{Row: 2, Col: 2}, base, base.Add(time.Hour)); len(got) != 0 {
		t.Errorf("unknown rack query returned %d records", len(got))
	}
}

// TestDownsampleWatermark mirrors the envdb test: samples skipped by
// downsampling still advance the out-of-order watermark, so a record older
// than a skipped sample is rejected rather than silently breaking order.
func TestDownsampleWatermark(t *testing.T) {
	s := NewStoreWith(Options{Downsample: 3})
	rack := topology.RackID{Row: 0, Col: 2}
	rng := rand.New(rand.NewSource(7))
	if err := s.Append(synthRecord(rng, rack, base)); err != nil { // kept
		t.Fatal(err)
	}
	if err := s.Append(synthRecord(rng, rack, base.Add(2*time.Minute))); err != nil { // skipped
		t.Fatal(err)
	}
	if err := s.Append(synthRecord(rng, rack, base.Add(time.Minute))); err == nil {
		t.Error("append behind a downsample-skipped sample should fail")
	}
}
