package tsdb

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/topology"
	"mira/internal/units"
)

// Iter is a streaming cursor over one rack's records in [from, to). It
// decompresses one block at a time against a point-in-time snapshot, so
// scans run without holding locks and without materializing the range.
type Iter struct {
	rack   topology.RackID
	loc    *time.Location
	fromN  int64
	toN    int64
	blocks []blockView

	bi    int
	times []int64
	cols  [sensors.NumMetrics][]float64
	pos   int
	hi    int
	cur   sensors.Record
	err   error
}

// Iter returns a streaming iterator over one rack's records in [from, to).
func (s *Store) Iter(rack topology.RackID, from, to time.Time) *Iter {
	s.init()
	return s.iterShard(rack, s.readShard(rack), from.UnixNano(), to.UnixNano())
}

func (s *Store) iterShard(rack topology.RackID, sh *shard, fromN, toN int64) *Iter {
	snap := sh.snapshot()
	return &Iter{
		rack:   rack,
		loc:    s.location(),
		fromN:  fromN,
		toN:    toN,
		blocks: snap.blocks(),
		pos:    1, // forces block advance on the first Next
		hi:     0,
	}
}

// Next advances the cursor; it returns false when the range is exhausted
// or a block failed to decode (see Err).
func (it *Iter) Next() bool {
	for it.pos+1 >= it.hi {
		if !it.nextBlock() {
			return false
		}
	}
	it.pos++
	it.fill()
	return true
}

// Err reports the first block decode failure the iteration hit, nil on a
// clean scan. Decode failures are only reachable through in-process
// corruption (segments are checksum-verified at Open), so the error-free
// query surface treats a non-nil Err as a panic-worthy invariant violation.
func (it *Iter) Err() error { return it.err }

// nextBlock decodes the next block overlapping the range; false when none.
func (it *Iter) nextBlock() bool {
	if it.err != nil {
		return false
	}
	for ; it.bi < len(it.blocks); it.bi++ {
		bv := it.blocks[it.bi]
		minT, maxT := bv.bounds()
		if minT >= it.toN {
			// Blocks are time-ordered: every later block is past the range
			// too, so stop instead of bounds-checking the whole tail.
			return false
		}
		if maxT < it.fromN {
			continue
		}
		times, err := bv.timestamps()
		if err != nil {
			it.err = err
			return false
		}
		lo, hi := searchRange(times, it.fromN, it.toN)
		if lo >= hi {
			continue
		}
		it.times = times
		for m := range it.cols {
			if it.cols[m], err = bv.channel(sensors.Metric(m)); err != nil {
				it.err = err
				return false
			}
		}
		it.pos = lo - 1
		it.hi = hi
		it.bi++
		return true
	}
	return false
}

func (it *Iter) fill() {
	it.cur = recordAt(it.rack, it.loc, it.times[it.pos], &it.cols, it.pos)
}

// recordAt materializes one record from decoded columnar data; shared by
// the per-rack Iter and the parallel merge iterator so both produce
// bit-identical records from the same stored bytes.
func recordAt(rack topology.RackID, loc *time.Location, tN int64, cols *[sensors.NumMetrics][]float64, i int) sensors.Record {
	return sensors.Record{
		Time:          time.Unix(0, tN).In(loc),
		Rack:          rack,
		DCTemperature: units.Fahrenheit(cols[sensors.MetricDCTemperature][i]),
		DCHumidity:    units.RelativeHumidity(cols[sensors.MetricDCHumidity][i]),
		Flow:          units.GPM(cols[sensors.MetricFlow][i]),
		InletTemp:     units.Fahrenheit(cols[sensors.MetricInletTemp][i]),
		OutletTemp:    units.Fahrenheit(cols[sensors.MetricOutletTemp][i]),
		Power:         units.Watts(cols[sensors.MetricPower][i]),
	}
}

// Record returns the record at the cursor; valid after Next returns true.
func (it *Iter) Record() sensors.Record { return it.cur }

// WindowAgg is one aggregation window of Store.Aggregate. The type lives
// in envdb (shared with the slice-backed store's Aggregator capability);
// the alias keeps tsdb's historical name working.
type WindowAgg = envdb.WindowAgg

// MaxAggregateWindows caps how many windows one Aggregate call may
// materialize. A pathological window (1ns over a six-year range is ~2e17
// windows) would otherwise OOM the process before a single sample is
// read; 4Mi windows is ~256 MiB of WindowAgg, far beyond any legitimate
// figure resolution.
const MaxAggregateWindows = 4 << 20

// Aggregate computes min/max/sum/count of one metric per fixed window over
// [from, to) — aggregation pushdown: only the metric's compressed column is
// decoded, block by block, and no records are materialized. Windows are
// aligned to from; a non-positive window yields a single window spanning
// the whole range. Empty windows are included with Count 0. It errors when
// the window count would exceed MaxAggregateWindows or a block fails to
// decode.
//
// Downsampled blocks answer from their stored per-window count/sum/min/max
// columns; each compacted window is attributed to the aggregation window
// containing its start. For decimal-quantized channels (the default for
// all six) sums accumulate in the integer domain, so the result is exact —
// equal to aggregating the pre-compaction raw records — whenever the
// query's window grid does not split compacted windows: [from, to) aligned
// to the compaction-window grid with window a multiple of the compaction
// window (or a single whole-range window). Under that precondition count,
// min, and max are exact on every channel, including XOR-fallback ones —
// only XOR-fallback sums stay float-order approximate across tiers. A grid
// that does split compacted windows attributes each cold window to the
// aggregation window containing its start.
func (s *Store) Aggregate(rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) ([]WindowAgg, error) {
	s.init()
	return s.aggregate(rack, m, from, to, window)
}

// AggregateCtx implements envdb.ContextAggregator: Aggregate as a child
// span of ctx's trace. The plain Aggregate deliberately starts no span —
// it runs on untraced hot paths (pushdown sweeps) where a root trace per
// call would be noise.
func (s *Store) AggregateCtx(ctx context.Context, rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) ([]WindowAgg, error) {
	s.init()
	_, span := obs.Span(ctx, "tsdb.aggregate")
	defer span.End()
	aggs, err := s.aggregate(rack, m, from, to, window)
	if err == nil {
		span.SetAttr("rack", rack.String())
		span.SetAttr("windows", strconv.Itoa(len(aggs)))
	}
	return aggs, err
}

func (s *Store) aggregate(rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) ([]WindowAgg, error) {
	defer metQueryDur.With(opAggregate).ObserveSince(time.Now())
	fromN, toN := from.UnixNano(), to.UnixNano()
	if toN <= fromN {
		return nil, nil
	}
	winN := int64(window)
	if winN <= 0 {
		winN = toN - fromN
	}
	// (span-1)/winN+1 rather than (span+winN-1)/winN: the latter overflows
	// int64 for large spans, silently truncating the window count.
	nWin := (toN-fromN-1)/winN + 1
	if nWin > MaxAggregateWindows {
		return nil, fmt.Errorf("tsdb: aggregate window %v over span %v needs %d windows (max %d)",
			window, time.Duration(toN-fromN), nWin, int64(MaxAggregateWindows))
	}
	loc := s.location()
	out := make([]WindowAgg, nWin)
	for k := range out {
		out[k] = WindowAgg{
			Start: time.Unix(0, fromN+int64(k)*winN).In(loc),
			Min:   math.NaN(),
			Max:   math.NaN(),
		}
	}
	// Sums accumulate twice: in float (always valid) and in the quantized
	// integer domain. Integer addition is associative, so when every
	// contribution stays integral the integer totals replace the float
	// sums at the end — making Sum independent of accumulation order and
	// therefore identical before and after compaction.
	scale := s.scales[m]
	exact := scale > 0
	sumsI := make([]int64, nWin)
	snap := s.readShard(rack).snapshot()
	for _, bv := range snap.blocks() {
		minT, maxT := bv.bounds()
		if minT >= toN {
			break // blocks are time-ordered: the rest are past the range
		}
		if maxT < fromN {
			continue
		}
		ts, err := bv.timestamps()
		if err != nil {
			return nil, err
		}
		lo, hi := searchRange(ts, fromN, toN)
		if lo >= hi {
			continue
		}
		if d := bv.down; d != nil {
			counts, err := d.recordCounts()
			if err != nil {
				return nil, err
			}
			col, err := d.channelAgg(m, counts)
			if err != nil {
				return nil, err
			}
			for i := lo; i < hi; i++ {
				k := (ts[i] - fromN) / winN
				w := &out[k]
				var mn, mx, sm float64
				if col.scale > 0 {
					mn = float64(col.minsI[i]) / col.scale
					mx = float64(col.maxsI[i]) / col.scale
					sm = float64(col.sumsI[i]) / col.scale
					if exact && col.scale == scale {
						if s2, ok := addInt64(sumsI[k], col.sumsI[i]); ok {
							sumsI[k] = s2
						} else {
							exact = false
						}
					} else {
						exact = false
					}
				} else {
					exact = false
					mn, mx, sm = col.minsF[i], col.maxsF[i], col.sumsF[i]
				}
				if w.Count == 0 || mn < w.Min {
					w.Min = mn
				}
				if w.Count == 0 || mx > w.Max {
					w.Max = mx
				}
				w.Sum += sm
				w.Count += int(counts[i])
			}
			continue
		}
		if b := bv.sealed; b != nil && exact && (b.ch[m].enc == encInt || b.ch[m].enc == encIntPacked) && b.ch[m].scale == scale {
			// Raw integer fast path: decode the quantized column once and
			// derive the float values by division — the same work as the
			// generic decode, plus the integer accumulation for free.
			metDecode.Inc()
			ints, err := decodeQuantizedInto(nil, b.ch[m], b.count)
			if err != nil {
				return nil, b.wrap(m.String(), err)
			}
			for i := lo; i < hi; i++ {
				k := (ts[i] - fromN) / winN
				w := &out[k]
				v := float64(ints[i]) / scale
				if w.Count == 0 || v < w.Min {
					w.Min = v
				}
				if w.Count == 0 || v > w.Max {
					w.Max = v
				}
				w.Sum += v
				w.Count++
				if exact {
					if s2, ok := addInt64(sumsI[k], ints[i]); ok {
						sumsI[k] = s2
					} else {
						exact = false
					}
				}
			}
			continue
		}
		col, err := bv.channel(m)
		if err != nil {
			return nil, err
		}
		for i := lo; i < hi; i++ {
			k := (ts[i] - fromN) / winN
			w := &out[k]
			v := col[i]
			if w.Count == 0 || v < w.Min {
				w.Min = v
			}
			if w.Count == 0 || v > w.Max {
				w.Max = v
			}
			w.Sum += v
			w.Count++
			if exact {
				// Head values were quantized on ingest, so they round-trip
				// through the integer grid; anything that doesn't (raw-
				// precision channels, XOR fallback) demotes the whole query
				// to float sums.
				n := math.Round(v * scale)
				if !(math.Abs(n) < maxQuantized) || float64(int64(n))/scale != v {
					exact = false
				} else if s2, ok := addInt64(sumsI[k], int64(n)); ok {
					sumsI[k] = s2
				} else {
					exact = false
				}
			}
		}
	}
	if exact {
		for k := range out {
			if out[k].Count > 0 {
				out[k].Sum = float64(sumsI[k]) / scale
			}
		}
	}
	return out, nil
}

var (
	_ envdb.Aggregator        = (*Store)(nil)
	_ envdb.ContextAggregator = (*Store)(nil)
)
