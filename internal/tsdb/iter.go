package tsdb

import (
	"math"
	"time"

	"mira/internal/sensors"
	"mira/internal/topology"
	"mira/internal/units"
)

// Iter is a streaming cursor over one rack's records in [from, to). It
// decompresses one block at a time against a point-in-time snapshot, so
// scans run without holding locks and without materializing the range.
type Iter struct {
	rack   topology.RackID
	loc    *time.Location
	fromN  int64
	toN    int64
	blocks []blockView

	bi    int
	times []int64
	cols  [sensors.NumMetrics][]float64
	pos   int
	hi    int
	cur   sensors.Record
	err   error
}

// Iter returns a streaming iterator over one rack's records in [from, to).
func (s *Store) Iter(rack topology.RackID, from, to time.Time) *Iter {
	s.init()
	return s.iterShard(rack, &s.shards[rack.Index()], from.UnixNano(), to.UnixNano())
}

func (s *Store) iterShard(rack topology.RackID, sh *shard, fromN, toN int64) *Iter {
	snap := sh.snapshot()
	return &Iter{
		rack:   rack,
		loc:    s.location(),
		fromN:  fromN,
		toN:    toN,
		blocks: snap.blocks(),
		pos:    1, // forces block advance on the first Next
		hi:     0,
	}
}

// Next advances the cursor; it returns false when the range is exhausted
// or a block failed to decode (see Err).
func (it *Iter) Next() bool {
	for it.pos+1 >= it.hi {
		if !it.nextBlock() {
			return false
		}
	}
	it.pos++
	it.fill()
	return true
}

// Err reports the first block decode failure the iteration hit, nil on a
// clean scan. Decode failures are only reachable through in-process
// corruption (segments are checksum-verified at Open), so the error-free
// query surface treats a non-nil Err as a panic-worthy invariant violation.
func (it *Iter) Err() error { return it.err }

// nextBlock decodes the next block overlapping the range; false when none.
func (it *Iter) nextBlock() bool {
	if it.err != nil {
		return false
	}
	for ; it.bi < len(it.blocks); it.bi++ {
		bv := it.blocks[it.bi]
		minT, maxT := bv.bounds()
		if maxT < it.fromN || minT >= it.toN {
			continue
		}
		times, err := bv.timestamps()
		if err != nil {
			it.err = err
			return false
		}
		lo, hi := searchRange(times, it.fromN, it.toN)
		if lo >= hi {
			continue
		}
		it.times = times
		for m := range it.cols {
			if it.cols[m], err = bv.channel(sensors.Metric(m)); err != nil {
				it.err = err
				return false
			}
		}
		it.pos = lo - 1
		it.hi = hi
		it.bi++
		return true
	}
	return false
}

func (it *Iter) fill() {
	i := it.pos
	it.cur = sensors.Record{
		Time:          time.Unix(0, it.times[i]).In(it.loc),
		Rack:          it.rack,
		DCTemperature: units.Fahrenheit(it.cols[sensors.MetricDCTemperature][i]),
		DCHumidity:    units.RelativeHumidity(it.cols[sensors.MetricDCHumidity][i]),
		Flow:          units.GPM(it.cols[sensors.MetricFlow][i]),
		InletTemp:     units.Fahrenheit(it.cols[sensors.MetricInletTemp][i]),
		OutletTemp:    units.Fahrenheit(it.cols[sensors.MetricOutletTemp][i]),
		Power:         units.Watts(it.cols[sensors.MetricPower][i]),
	}
}

// Record returns the record at the cursor; valid after Next returns true.
func (it *Iter) Record() sensors.Record { return it.cur }

// WindowAgg is one aggregation window of Store.Aggregate.
type WindowAgg struct {
	// Start is the window's inclusive start; the window spans one Aggregate
	// window length.
	Start time.Time
	// Count is the number of samples that fell in the window.
	Count int
	// Min, Max, Sum summarize the metric over the window (Min/Max are NaN
	// when Count is zero).
	Min, Max, Sum float64
}

// Mean is Sum/Count, NaN for an empty window.
func (w WindowAgg) Mean() float64 {
	if w.Count == 0 {
		return math.NaN()
	}
	return w.Sum / float64(w.Count)
}

// Aggregate computes min/max/sum/count of one metric per fixed window over
// [from, to) — aggregation pushdown: only the metric's compressed column is
// decoded, block by block, and no records are materialized. Windows are
// aligned to from; a non-positive window yields a single window spanning
// the whole range. Empty windows are included with Count 0.
func (s *Store) Aggregate(rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) []WindowAgg {
	s.init()
	defer metQueryDur.With(opAggregate).ObserveSince(time.Now())
	fromN, toN := from.UnixNano(), to.UnixNano()
	if toN <= fromN {
		return nil
	}
	winN := int64(window)
	if winN <= 0 {
		winN = toN - fromN
	}
	nWin := int((toN - fromN + winN - 1) / winN)
	loc := s.location()
	out := make([]WindowAgg, nWin)
	for k := range out {
		out[k] = WindowAgg{
			Start: time.Unix(0, fromN+int64(k)*winN).In(loc),
			Min:   math.NaN(),
			Max:   math.NaN(),
		}
	}
	snap := s.shards[rack.Index()].snapshot()
	for _, bv := range snap.blocks() {
		minT, maxT := bv.bounds()
		if maxT < fromN || minT >= toN {
			continue
		}
		ts := mustDecode(bv.timestamps())
		lo, hi := searchRange(ts, fromN, toN)
		if lo >= hi {
			continue
		}
		col := mustDecode(bv.channel(m))
		for i := lo; i < hi; i++ {
			w := &out[(ts[i]-fromN)/winN]
			v := col[i]
			if w.Count == 0 || v < w.Min {
				w.Min = v
			}
			if w.Count == 0 || v > w.Max {
				w.Max = v
			}
			w.Sum += v
			w.Count++
		}
	}
	return out
}
