package tsdb

import (
	"context"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/topology"
)

// TestScanWorkerSpansJoinScanTrace pins the goroutine parent-linkage fix:
// the per-block decode spans started inside ScanShards' worker pool must
// be children of the merged-scan span, not fresh roots — the scan context
// has to be threaded into the pool, not dropped at the goroutine boundary.
func TestScanWorkerSpansJoinScanTrace(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	fill(t, 400, topology.AllRacks()[:6], s)

	ctx, root := obs.Span(context.Background(), "test.scan_trace")
	n := 0
	if err := s.EachRecordMergedTierCtx(ctx, 4, func(r sensors.Record, _ envdb.Tier) bool {
		n++
		return true
	}); err != nil {
		t.Fatalf("EachRecordMergedTierCtx: %v", err)
	}
	root.End()
	if n != 400*6 {
		t.Fatalf("scanned %d records, want %d", n, 400*6)
	}

	frags := obs.TraceByID(root.Context().Trace)
	if len(frags) == 0 {
		t.Fatal("scan trace not retained")
	}
	var spans []obs.SpanRecord
	for _, f := range frags {
		spans = append(spans, f.Spans...)
	}
	var mergedID obs.SpanID
	for _, sp := range spans {
		if sp.Name == "tsdb.scan_merged" {
			mergedID = sp.ID
			if sp.Parent != root.Context().Span {
				t.Fatalf("tsdb.scan_merged parent %s, want root %s", sp.Parent, root.Context().Span)
			}
		}
	}
	if mergedID == 0 {
		t.Fatal("no tsdb.scan_merged span in trace")
	}
	blocks := 0
	for _, sp := range spans {
		if sp.Name != "tsdb.scan_block" {
			continue
		}
		blocks++
		if sp.Parent == 0 {
			t.Fatal("tsdb.scan_block span is a root: worker pool dropped the scan context")
		}
		if sp.Parent != mergedID {
			t.Fatalf("tsdb.scan_block parent %s, want tsdb.scan_merged %s", sp.Parent, mergedID)
		}
	}
	if blocks == 0 {
		t.Fatal("no tsdb.scan_block worker spans in trace")
	}
}

// TestPlainScanStartsNoSpans pins the no-pollution side of the same fix:
// the low-level ScanShards surface (the auditor's path) runs with no
// trace context and must not mint root traces — neither for itself nor
// per decoded block.
func TestPlainScanStartsNoSpans(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	fill(t, 300, topology.AllRacks()[:4], s)

	before := make(map[obs.TraceID]bool)
	for _, tr := range obs.Traces() {
		before[tr.Trace] = true
	}
	it := MergeByTime(s.ScanShards(time.Unix(0, minTime), time.Unix(0, maxTime), 4))
	for it.Next() {
	}
	if err := it.Err(); err != nil {
		t.Fatalf("merge iter: %v", err)
	}
	it.Close()
	for _, tr := range obs.Traces() {
		if !before[tr.Trace] {
			t.Fatalf("plain ScanShards minted trace %s with %d spans (first: %q)",
				tr.Trace, len(tr.Spans), tr.Spans[0].Name)
		}
	}
}
