package tsdb

// The parallel query layer: ScanShards fans a time-range scan out across
// the 48 rack shards through a bounded pool of block-decode workers, and
// MergeByTime folds the per-shard streams into one iterator that yields
// records in global timestamp order (ties broken by rack index) — the
// shard-then-merge shape Prometheus' TSDB and Gorilla use for scan
// queries. The design keeps memory bounded: each shard has at most two
// decoded runs resident (the one being merged plus one prefetch), however
// long the trace is.
//
// Scheduling is demand-driven: a shard's next block is only decoded when
// a request for it sits in the pool queue, and the merge iterator issues
// exactly one outstanding request per shard (re-armed the moment it takes
// a finished run). Workers therefore never block delivering results —
// every result channel has room by construction — which makes the pool
// deadlock-free for any worker count, including workers < shards.

import (
	"context"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/topology"
)

// scanRun is one decoded, range-clipped block of a shard: timestamps, all
// channel columns, and the [lo, hi) index window inside them.
type scanRun struct {
	times  []int64
	cols   [sensors.NumMetrics][]float64
	lo, hi int
	tier   envdb.Tier // which storage tier the run decoded from
	err    error
	last   bool // no further runs will follow from this shard
}

// BlockPredicate decides from a sealed block's per-channel zone maps
// whether the block could contain matching records; returning false prunes
// the block from the scan without decoding a single payload byte.
// Predicates must be conservative: a zone with NaN bounds is unusable (the
// channel holds NaN values, so the range proves nothing) and must not
// prune, and blocks without zones (head, cold tier, version-1 segments)
// are always scanned.
type BlockPredicate func(zones *[sensors.NumMetrics]ZoneMap) bool

// scanArena is one reusable set of decode buffers. Each ShardStream owns
// two (see ShardStream.arenas), so after the first two runs a scan's
// steady state decodes with zero allocations.
type scanArena struct {
	times []int64
	ints  []int64 // quantized-integer scratch shared across the six channels
	cols  [sensors.NumMetrics][]float64
}

// arenaPool recycles arena pairs across scans: a full-store scan is brief
// but its decode buffers are not small (two runs' worth of eight columns
// per shard), so handing them back at pool close makes repeated scans —
// the replay/figure pipeline — allocation-free instead of megabytes per
// pass. Recycling happens in scanPool.close, strictly after the workers
// have joined; consumers must not touch run buffers after that (Close).
var arenaPool = sync.Pool{New: func() any { return new([2]scanArena) }}

// ShardStream is one shard's portion of a fanned-out scan: an
// order-preserving stream of decoded runs produced by the pool's workers
// against the shard's point-in-time snapshot. Streams are created by
// ScanShards and consumed by MergeByTime.
type ShardStream struct {
	rack       topology.RackID
	rackIdx    int    // fleet-wide shard index: the merge tie-break key
	rackCode   uint16 // packed wire identity (topology.RackID.Code)
	loc        *time.Location
	fromN, toN int64
	pool       *scanPool
	pred       BlockPredicate

	// nextBlock is advanced only by the worker currently serving this
	// stream's request; the one-outstanding-request invariant makes that a
	// single writer at any time.
	blocks    []blockView
	nextBlock int
	resCh     chan scanRun

	// arenas double-buffers the decode target: run k decodes into
	// arenas[k&1], so the run the consumer holds (k-1, the other parity)
	// stays intact while its successor decodes. Run k's buffers are
	// reclaimed only for run k+2, whose decode starts strictly after the
	// consumer took run k+1 — and taking run k+1 drops every reference
	// into run k. runSeq counts emitted runs; both are worker-side state
	// under the same single-writer invariant as nextBlock. The pair comes
	// from arenaPool and returns there when the scan's pool closes.
	arenas *[2]scanArena
	runSeq uint

	// Consumer-side cursor, touched only by the merge iterator.
	cur  scanRun
	pos  int
	done bool
	err  error
}

// decodeStep produces the stream's next non-empty run, or a terminal
// marker. It runs on a pool worker.
func (st *ShardStream) decodeStep() scanRun {
	for ; st.nextBlock < len(st.blocks); st.nextBlock++ {
		bv := st.blocks[st.nextBlock]
		minT, maxT := bv.bounds()
		if minT >= st.toN {
			// Blocks are time-ordered, so every later block starts past the
			// range too: the stream is done, no per-block tail check needed.
			return scanRun{last: true}
		}
		if maxT < st.fromN {
			continue
		}
		if st.pred != nil {
			if sb := bv.sealed; sb != nil && sb.hasZones && !st.pred(&sb.zones) {
				metScanPruned.Inc()
				if st.pool.stats != nil {
					st.pool.stats.BlocksPruned.Add(1)
				}
				continue
			}
		}
		start := time.Now()
		// Worker-side child span: pool.ctx carries the scan's parent span
		// (threaded through ScanShardsCtx), so block decodes running on
		// pool goroutines still link into the request's trace. Untraced
		// scans skip the span entirely — no root-trace pollution from the
		// auditor or plain local replays.
		var sp *obs.ActiveSpan
		if st.pool.traced {
			_, sp = obs.Span(st.pool.ctx, "tsdb.scan_block")
		}
		ar := &st.arenas[st.runSeq&1]
		times, err := bv.timestampsArena(ar.times)
		if err != nil {
			sp.End()
			return scanRun{err: err, last: true}
		}
		if bv.sealed != nil {
			ar.times = times
		}
		lo, hi := searchRange(times, st.fromN, st.toN)
		if lo >= hi {
			sp.End()
			continue
		}
		run := scanRun{times: times, lo: lo, hi: hi}
		if bv.down != nil {
			run.tier = envdb.TierDownsampled
		}
		for m := range run.cols {
			col, scratch, err := bv.channelArena(sensors.Metric(m), ar.cols[m], ar.ints)
			if err != nil {
				sp.End()
				return scanRun{err: err, last: true}
			}
			run.cols[m] = col
			if bv.sealed != nil {
				ar.cols[m], ar.ints = col, scratch
			}
		}
		metScanBlocks.Inc()
		if st.pool.stats != nil {
			st.pool.stats.BlocksDecoded.Add(1)
		}
		metScanDecodeDur.ObserveSince(start)
		sp.SetAttr("rows", strconv.Itoa(hi-lo))
		sp.End()
		st.nextBlock++
		st.runSeq++
		return run
	}
	return scanRun{last: true}
}

// advanceRun blocks until the stream's next run is decoded, then re-arms
// the prefetch request so the following run decodes while this one is
// consumed. It returns false when the stream is exhausted or failed.
func (st *ShardStream) advanceRun() bool {
	if st.done {
		return false
	}
	wait := time.Now()
	run := <-st.resCh
	metScanStallDur.ObserveSince(wait)
	if run.err != nil {
		st.err, st.done = run.err, true
		return false
	}
	if run.last {
		st.done = true
		return false
	}
	st.pool.request(st)
	st.cur, st.pos = run, run.lo
	return true
}

func (st *ShardStream) curTime() int64 { return st.cur.times[st.pos] }

// scanPool is the bounded worker pool one ScanShards call shares across
// its shard streams.
type scanPool struct {
	reqCh   chan *ShardStream
	quit    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	streams []*ShardStream // for arena recycling at close

	// Request-scoped observability, set before the first request is armed
	// (the channel send publishes the fields to the workers): the scan's
	// context (carrying the parent span for worker-side child spans), its
	// per-request counters, and whether the context is traced at all.
	ctx    context.Context
	stats  *envdb.ScanStats
	traced bool
}

func newScanPool(workers, streams int) *scanPool {
	p := &scanPool{
		// One outstanding request per stream means the queue never fills.
		reqCh: make(chan *ShardStream, streams),
		quit:  make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case st := <-p.reqCh:
					run := st.decodeStep()
					// resCh has room by construction; the quit arm only
					// matters if the consumer abandoned the scan.
					select {
					case st.resCh <- run:
					case <-p.quit:
						return
					}
				case <-p.quit:
					return
				}
			}
		}()
	}
	return p
}

func (p *scanPool) request(st *ShardStream) {
	select {
	case p.reqCh <- st:
	case <-p.quit:
	}
}

// close stops the workers and waits for them to exit, then hands every
// stream's arena pair back to arenaPool; safe to call twice. Run buffers
// (ShardStream.cur) must not be read after close — they may already be
// decoding another scan's blocks.
func (p *scanPool) close() {
	p.once.Do(func() { close(p.quit) })
	p.wg.Wait()
	for _, st := range p.streams {
		if st.arenas != nil {
			arenaPool.Put(st.arenas)
			st.arenas = nil
		}
	}
}

// normWorkers clamps a requested worker count: <= 0 selects GOMAXPROCS,
// and more workers than shards would only idle.
func normWorkers(workers, streams int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > streams {
		workers = streams
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ScanShards snapshots every shard and starts a pool of `workers` decode
// workers (<= 0 selects GOMAXPROCS) fanning out over them, returning one
// order-preserving stream per shard for records in [from, to). The
// streams must be consumed — and eventually Closed — through
// MergeByTime; most callers want EachRecordMerged instead.
func (s *Store) ScanShards(from, to time.Time, workers int) []*ShardStream {
	return s.ScanShardsWhereCtx(context.Background(), from, to, workers, nil)
}

// ScanShardsCtx is ScanShards threading a request context into the worker
// pool: block decodes become child spans of the context's active span and
// scan counters (envdb.ScanStatsFrom) accumulate the request's work.
func (s *Store) ScanShardsCtx(ctx context.Context, from, to time.Time, workers int) []*ShardStream {
	return s.ScanShardsWhereCtx(ctx, from, to, workers, nil)
}

// ScanShardsWhere is ScanShards with zone-map pruning: sealed blocks whose
// per-channel zones fail pred are skipped without decoding. pred runs on
// pool workers, so it must be safe for concurrent calls; nil scans
// everything.
func (s *Store) ScanShardsWhere(from, to time.Time, workers int, pred BlockPredicate) []*ShardStream {
	return s.ScanShardsWhereCtx(context.Background(), from, to, workers, pred)
}

// ScanShardsWhereCtx combines ScanShardsCtx and ScanShardsWhere.
func (s *Store) ScanShardsWhereCtx(ctx context.Context, from, to time.Time, workers int, pred BlockPredicate) []*ShardStream {
	s.init()
	if ctx == nil {
		ctx = context.Background()
	}
	workers = normWorkers(workers, len(s.shards))
	metScanWorkers.Set(float64(workers))
	pool := newScanPool(workers, len(s.shards))
	pool.ctx = ctx
	pool.stats = envdb.ScanStatsFrom(ctx)
	_, pool.traced = obs.SpanContextFrom(ctx)
	fromN, toN := from.UnixNano(), to.UnixNano()
	loc := s.location()
	streams := make([]*ShardStream, len(s.shards))
	for i := range streams {
		snap := s.shards[i].snapshot()
		rack := s.fleet.RackAt(i)
		streams[i] = &ShardStream{
			rack:     rack,
			rackIdx:  i,
			rackCode: rack.Code(),
			loc:      loc,
			fromN:    fromN,
			toN:      toN,
			pool:     pool,
			pred:     pred,
			blocks:   snap.blocks(),
			resCh:    make(chan scanRun, 1),
			arenas:   arenaPool.Get().(*[2]scanArena),
		}
	}
	pool.streams = streams
	// Arm every stream's first request only after all are constructed, so
	// workers see fully-built streams.
	for _, st := range streams {
		pool.request(st)
	}
	return streams
}

// MergeIter yields the records of a fanned-out scan in global
// (timestamp, rack) order via a k-way heap merge over the shard streams.
// Call Close when done (Next does it on normal exhaustion); check Err
// after the final Next.
type MergeIter struct {
	pool    *scanPool
	pending []*ShardStream // streams not yet admitted to the heap
	h       streamHeap
	// (boundT, boundRack) caches the smallest key among the non-top heap
	// entries — min(h[1], h[2]), which bounds every other entry by the heap
	// property. While the top stream's next record stays below it, Next
	// emits straight out of the run without touching the heap, so a stream
	// that is ahead of the others (sparse racks, disjoint time ranges)
	// costs one compare per record instead of a heap fix. Fully interleaved
	// tick-aligned data crosses the boundary every record and keeps the
	// old per-record fix; the chunked path (EachChunkMerged) is the fast
	// lane for that shape.
	boundT    int64
	boundRack int
	cur       sensors.Record
	curTier   envdb.Tier
	merged    uint64
	err       error
	closed    bool
}

// MergeByTime merges the shard streams of one ScanShards call into a
// single time-ordered iterator. Only one decoded run per shard (plus one
// prefetch) is ever resident, so a full-store merge over years of
// telemetry needs O(shards) memory, not O(trace).
func MergeByTime(streams []*ShardStream) *MergeIter {
	it := &MergeIter{pending: streams}
	if len(streams) > 0 {
		it.pool = streams[0].pool
	}
	return it
}

// Next advances to the next record in global time order; false when the
// scan is exhausted, failed (see Err), or closed.
func (it *MergeIter) Next() bool {
	if it.closed || it.err != nil {
		return false
	}
	if it.pending != nil {
		// First call: admit every stream's first run. The waits overlap —
		// all streams were armed at ScanShards time, so workers are already
		// decoding ahead of this loop.
		for _, st := range it.pending {
			if st.advanceRun() {
				it.h = append(it.h, st)
			} else if st.err != nil {
				it.fail(st.err)
				return false
			}
		}
		it.pending = nil
		it.h.init()
		it.rebound()
	} else if len(it.h) > 0 {
		st := it.h[0]
		st.pos++
		if st.pos < st.cur.hi {
			if t := st.cur.times[st.pos]; t < it.boundT || (t == it.boundT && st.rackIdx < it.boundRack) {
				// Still the global minimum: emit without a heap fix.
			} else {
				it.h.fix()
				it.rebound()
			}
		} else if st.advanceRun() {
			it.h.fix()
			it.rebound()
		} else if st.err != nil {
			it.fail(st.err)
			return false
		} else {
			it.h.popTop()
			it.rebound()
		}
	}
	if len(it.h) == 0 {
		it.Close()
		return false
	}
	top := it.h[0]
	it.cur = recordAt(top.rack, top.loc, top.cur.times[top.pos], &top.cur.cols, top.pos)
	it.curTier = top.cur.tier
	it.merged++
	return true
}

// Record returns the record at the cursor; valid after Next returns true.
func (it *MergeIter) Record() sensors.Record { return it.cur }

// Tier reports which storage tier the current record came from: TierRaw
// for full-rate samples, TierDownsampled for cold-tier window records
// (timestamped at the window start, valued at the window mean).
func (it *MergeIter) Tier() envdb.Tier { return it.curTier }

// Err reports the first shard decode failure, nil on a clean scan.
func (it *MergeIter) Err() error { return it.err }

func (it *MergeIter) fail(err error) {
	it.err = err
	it.Close()
}

// rebound recomputes the cached second-best key after any heap mutation.
// Every non-top entry is a descendant of h[1] or h[2], so min(h[1], h[2])
// bounds them all.
func (it *MergeIter) rebound() {
	h := it.h
	if len(h) < 2 {
		it.boundT, it.boundRack = math.MaxInt64, int(^uint(0)>>1)
		return
	}
	it.boundT, it.boundRack = h[1].curTime(), h[1].rackIdx
	if len(h) > 2 {
		if t, r := h[2].curTime(), h[2].rackIdx; t < it.boundT || (t == it.boundT && r < it.boundRack) {
			it.boundT, it.boundRack = t, r
		}
	}
}

// Close releases the scan's worker pool; idempotent. Next calls it
// automatically on exhaustion or error, so explicit Close only matters
// for early abandonment.
func (it *MergeIter) Close() {
	if it.closed {
		return
	}
	it.closed = true
	metScanRecords.Add(it.merged)
	if it.pool != nil && it.pool.stats != nil {
		it.pool.stats.Records.Add(int64(it.merged))
	}
	it.merged = 0
	if it.pool != nil {
		it.pool.close()
	}
}

// streamHeap is a binary min-heap of shard streams ordered by
// (current timestamp, rack index) — the rack tie-break makes the merged
// order deterministic and equal to the rack-major visit order within one
// tick.
type streamHeap []*ShardStream

func (h streamHeap) less(a, b *ShardStream) bool {
	ta, tb := a.curTime(), b.curTime()
	if ta != tb {
		return ta < tb
	}
	return a.rackIdx < b.rackIdx
}

func (h streamHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// fix restores heap order after the root's key grew (its stream advanced).
func (h streamHeap) fix() { h.down(0) }

func (h *streamHeap) popTop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 1 {
		h.down(0)
	}
}

func (h streamHeap) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		min := l
		if r := l + 1; r < len(h) && h.less(h[r], h[l]) {
			min = r
		}
		if !h.less(h[min], h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

var (
	_ envdb.ShardScanner       = (*Store)(nil)
	_ envdb.TierScanner        = (*Store)(nil)
	_ envdb.ContextTierScanner = (*Store)(nil)
)

// EachRecordMerged implements envdb.ShardScanner: it visits every stored
// record in global (timestamp, rack) order, decoding shards in parallel
// on `workers` goroutines (<= 0 selects GOMAXPROCS) while the visit
// itself stays single-threaded and in order. The scan runs against
// per-shard snapshots, so concurrent appends proceed untouched. It stops
// early when f returns false and returns the first decode failure instead
// of panicking — unlike EachRecord, this surface is also meant for
// streaming over segment-loaded stores.
func (s *Store) EachRecordMerged(workers int, f func(sensors.Record) bool) error {
	return s.EachRecordMergedTier(workers, func(r sensors.Record, _ envdb.Tier) bool {
		return f(r)
	})
}

// EachRecordMergedTier implements envdb.TierScanner: EachRecordMerged with
// each record's storage tier, so callers can route full-rate replay logic
// over the hot window only while still seeing the cold tier's window
// records (one mean-valued record per compaction window).
func (s *Store) EachRecordMergedTier(workers int, f func(sensors.Record, envdb.Tier) bool) error {
	return s.EachRecordMergedTierCtx(context.Background(), workers, f)
}

// EachRecordMergedTierCtx implements envdb.ContextTierScanner: the merged
// scan as a child span of ctx's trace, with block decodes on the worker
// pool linked under it and the request's scan counters updated.
func (s *Store) EachRecordMergedTierCtx(ctx context.Context, workers int, f func(sensors.Record, envdb.Tier) bool) error {
	ctx, span := obs.Span(ctx, "tsdb.scan_merged")
	defer span.End()
	st := envdb.ScanStatsFrom(ctx)
	if st == nil {
		st = new(envdb.ScanStats)
		ctx = envdb.ContextWithScanStats(ctx, st)
	}
	defer func() {
		span.SetAttr("rows", strconv.FormatInt(st.Records.Load(), 10))
		span.SetAttr("blocks", strconv.FormatInt(st.BlocksDecoded.Load(), 10))
		span.SetAttr("pruned", strconv.FormatInt(st.BlocksPruned.Load(), 10))
	}()
	defer metQueryDur.With(opScanMerged).ObserveSince(time.Now())
	it := MergeByTime(s.ScanShardsCtx(ctx, time.Unix(0, minTime), time.Unix(0, maxTime), workers))
	defer it.Close()
	for it.Next() {
		if !f(it.Record(), it.Tier()) {
			break
		}
	}
	return it.Err()
}
