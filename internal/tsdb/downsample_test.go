package tsdb

// Tests pinning the retention/downsampling tier: codec round trips, the
// exactness property (post-compaction aggregates equal pre-compaction
// brute force bit for bit), crash safety at the two interesting disk
// points, and the on-disk reduction the tier exists to deliver.

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// TestDownChannelIntsRoundTrip drives the cold integer codec over
// randomized aggregate columns shaped like real telemetry (quantized
// values with signal drift plus noise), including negative values and
// single-record windows.
func TestDownChannelIntsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(300)
		sums := make([]int64, n)
		mins := make([]int64, n)
		maxs := make([]int64, n)
		counts := make([]int64, n)
		level := int64(rng.Intn(2_000_001)) - 1_000_000
		for i := 0; i < n; i++ {
			counts[i] = 1 + int64(rng.Intn(20))
			level += int64(rng.Intn(201)) - 100
			lo, hi := level, level
			var sum int64
			for j := int64(0); j < counts[i]; j++ {
				v := level + int64(rng.Intn(1001)) - 500
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				sum += v
			}
			sums[i], mins[i], maxs[i] = sum, lo, hi
		}
		data := encodeDownChannelInts(sums, mins, maxs, counts)
		gs, gm, gx, err := decodeDownInts(data, counts)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if gs[i] != sums[i] || gm[i] != mins[i] || gx[i] != maxs[i] {
				t.Fatalf("trial %d window %d: got (%d,%d,%d), want (%d,%d,%d)",
					trial, i, gs[i], gm[i], gx[i], sums[i], mins[i], maxs[i])
			}
		}
		// Truncations must error, never panic or fabricate windows.
		for cut := 0; cut < len(data); cut += 1 + len(data)/17 {
			if _, _, _, err := decodeDownInts(data[:cut], counts); err == nil {
				t.Fatalf("trial %d: truncation at %d/%d decoded cleanly", trial, cut, len(data))
			}
		}
	}
}

// TestRangeCoderRoundTrip exercises the adaptive symbol coder directly,
// including the escape path for values far above the bypass shift.
func TestRangeCoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]uint64, 5000)
	for i := range vals {
		switch rng.Intn(10) {
		case 0: // escape range
			vals[i] = rng.Uint64() >> uint(rng.Intn(40))
		default: // tree range
			vals[i] = uint64(rng.Intn(200))
		}
	}
	for _, shift := range []uint{0, 1, chooseShift(vals), symMaxShift} {
		e := newRCEncoder()
		em := newSymModel(shift)
		for _, v := range vals {
			e.symbol(em, v)
		}
		data := e.finish()
		d := newRCDecoder(data)
		dm := newSymModel(shift)
		for i, want := range vals {
			if got := d.symbol(dm); got != want {
				t.Fatalf("shift %d: symbol %d = %d, want %d", shift, i, got, want)
			}
		}
		if d.short {
			t.Fatalf("shift %d: decoder ran short on a valid stream", shift)
		}
	}
}

// quantizedValue mirrors ingest quantization so the brute force below
// reproduces exactly what the store holds.
func quantizedValue(r sensors.Record, m sensors.Metric, scale float64) int64 {
	return int64(math.Round(r.Value(m) * scale))
}

// bruteAgg computes Aggregate's contract directly from raw records in the
// quantized integer domain — the pre-compaction ground truth the
// downsampled tier must reproduce bit for bit.
func bruteAgg(recs []sensors.Record, m sensors.Metric, scale float64, fromN, toN, winN int64) []WindowAgg {
	nWin := (toN - fromN - 1) / winN
	out := make([]WindowAgg, nWin+1)
	sums := make([]int64, nWin+1)
	mins := make([]int64, nWin+1)
	maxs := make([]int64, nWin+1)
	for k := range out {
		out[k] = WindowAgg{Start: time.Unix(0, fromN+int64(k)*winN).In(timeutil.Chicago), Min: math.NaN(), Max: math.NaN()}
	}
	for _, r := range recs {
		tN := r.Time.UnixNano()
		if tN < fromN || tN >= toN {
			continue
		}
		k := (tN - fromN) / winN
		q := quantizedValue(r, m, scale)
		if out[k].Count == 0 || q < mins[k] {
			mins[k] = q
		}
		if out[k].Count == 0 || q > maxs[k] {
			maxs[k] = q
		}
		sums[k] += q
		out[k].Count++
	}
	for k := range out {
		if out[k].Count == 0 {
			continue
		}
		out[k].Min = float64(mins[k]) / scale
		out[k].Max = float64(maxs[k]) / scale
		out[k].Sum = float64(sums[k]) / scale
	}
	return out
}

// sameAggs compares aggregate slices bit for bit (NaN equals NaN).
func sameAggs(t *testing.T, ctx string, got, want []WindowAgg) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows, want %d", ctx, len(got), len(want))
	}
	bits := func(v float64) uint64 { return math.Float64bits(v) }
	for k := range got {
		g, w := got[k], want[k]
		if !g.Start.Equal(w.Start) || g.Count != w.Count ||
			bits(g.Min) != bits(w.Min) || bits(g.Max) != bits(w.Max) || bits(g.Sum) != bits(w.Sum) {
			t.Fatalf("%s: window %d differs:\n got  %+v\n want %+v", ctx, k, g, w)
		}
	}
}

// TestCompactionPropertyAggregate is the exactness property test:
// randomized traces, partitions (including hour-unaligned ones), cutoffs,
// and query grids — every Aggregate over the compacted store must equal
// the brute-force answer from the pre-compaction raw records bit for bit,
// including windows straddling the hot/cold boundary. Series over the
// cold range must yield window starts and exact window means.
func TestCompactionPropertyAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	racks := []topology.RackID{{Row: 0, Col: 2}, {Row: 1, Col: 8}}
	hourN := int64(time.Hour)
	for trial, part := range []time.Duration{24 * time.Hour, 7 * time.Hour, 30 * time.Hour, 13 * time.Hour} {
		db := NewStoreWith(Options{Partition: part})
		ticks := 1500 + rng.Intn(1500) // 5-10 days at 300 s cadence
		byRack := make(map[topology.RackID][]sensors.Record)
		fillRecs := func() {
			r2 := rand.New(rand.NewSource(int64(7 + trial)))
			for i := 0; i < ticks; i++ {
				ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
				for _, rack := range racks {
					rec := synthRecord(r2, rack, ts)
					byRack[rack] = append(byRack[rack], rec)
					if err := db.Append(rec); err != nil {
						t.Fatalf("append: %v", err)
					}
				}
			}
		}
		fillRecs()

		cutTick := ticks/3 + rng.Intn(ticks/2)
		cutoff := base.Add(time.Duration(cutTick) * timeutil.SampleInterval)
		st, err := db.CompactBefore("", cutoff)
		if err != nil {
			t.Fatalf("trial %d: CompactBefore: %v", trial, err)
		}
		if st.Windows == 0 {
			t.Fatalf("trial %d: compaction folded nothing (cutoff tick %d of %d)", trial, cutTick, ticks)
		}
		if got := db.Stats(); got.ColdWindows != st.Windows {
			t.Fatalf("trial %d: Stats reports %d cold windows, compaction wrote %d", trial, got.ColdWindows, st.Windows)
		}

		first, last, ok := db.Bounds()
		if !ok {
			t.Fatalf("trial %d: empty bounds after compaction", trial)
		}
		firstN := first.UnixNano()
		if firstN != floorDiv(firstN, hourN)*hourN {
			t.Fatalf("trial %d: cold bounds start %v not window-aligned", trial, first)
		}
		lastN := last.UnixNano() + 1

		for _, rack := range racks {
			recs := byRack[rack]
			for m := sensors.Metric(0); m < sensors.NumMetrics; m++ {
				scale := db.scales[m]
				// Whole-range single window.
				got, err := db.Aggregate(rack, m, first, last.Add(time.Nanosecond), 0)
				if err != nil {
					t.Fatalf("aggregate: %v", err)
				}
				sameAggs(t, "whole-range", got, bruteAgg(recs, m, scale, firstN, lastN, lastN-firstN))

				// Window-grid-aligned queries straddling the hot/cold boundary.
				for q := 0; q < 4; q++ {
					winN := hourN * int64(1+rng.Intn(6))
					fromN := floorDiv(firstN, winN)*winN + int64(rng.Intn(4))*winN
					toN := fromN + winN*int64(3+rng.Intn(60))
					if toN > lastN {
						toN = fromN + ((lastN-fromN-1)/winN+1)*winN
					}
					got, err := db.Aggregate(rack, m, time.Unix(0, fromN), time.Unix(0, toN), time.Duration(winN))
					if err != nil {
						t.Fatalf("aggregate: %v", err)
					}
					sameAggs(t, "grid", got, bruteAgg(recs, m, scale, fromN, toN, winN))
				}
			}

			// Series over the compacted store: cold windows surface as one
			// record at the window start valued at the exact integer-domain
			// mean, followed by the hot raw records verbatim. Both racks see
			// the same tick sequence, so the per-shard folded prefix is the
			// total folded count split evenly.
			folded := int(st.SourceRecords) / len(racks)
			if folded <= 0 || folded >= len(recs) {
				t.Fatalf("folded prefix %d of %d records", folded, len(recs))
			}
			coldWinEnd := floorDiv(recs[folded-1].Time.UnixNano(), hourN)*hourN + hourN
			if bn := recs[folded].Time.UnixNano(); bn < coldWinEnd {
				t.Fatalf("fold split a window: first hot tick %d inside cold window ending %d", bn, coldWinEnd)
			}
			m := sensors.MetricFlow
			scale := db.scales[m]
			wantAgg := bruteAgg(recs, m, scale, firstN, lastN, hourN)
			var wantT []int64
			var wantV []float64
			for k := range wantAgg {
				if wantAgg[k].Count == 0 || wantAgg[k].Start.UnixNano() >= coldWinEnd {
					continue
				}
				wantT = append(wantT, wantAgg[k].Start.UnixNano())
				wantV = append(wantV, wantAgg[k].Sum/float64(wantAgg[k].Count))
			}
			for _, r := range recs[folded:] {
				wantT = append(wantT, r.Time.UnixNano())
				wantV = append(wantV, float64(quantizedValue(r, m, scale))/scale)
			}
			ts, vals := db.Series(rack, m, first, last.Add(time.Nanosecond))
			if len(ts) != len(wantT) {
				t.Fatalf("series has %d points, want %d (%d cold windows + %d raw)",
					len(ts), len(wantT), len(wantT)-(len(recs)-folded), len(recs)-folded)
			}
			for i := range ts {
				if ts[i].UnixNano() != wantT[i] || math.Float64bits(vals[i]) != math.Float64bits(wantV[i]) {
					t.Fatalf("series point %d = (%v, %v), want (%v, %v)",
						i, ts[i], vals[i], time.Unix(0, wantT[i]).In(timeutil.Chicago), wantV[i])
				}
			}
		}
	}
}

// TestCompactionCrashSafety kills compaction at the two interesting disk
// points — after the cold segment is written but before its rename, and
// after the rename but before the raw segment rewrite — and requires a
// reopen to serve the exact pre-compaction answers both times, then a
// clean re-compaction to succeed.
func TestCompactionCrashSafety(t *testing.T) {
	racks := []topology.RackID{{Row: 0, Col: 2}, {Row: 1, Col: 8}}
	cases := []struct {
		name string
		set  func(f func(int) error)
	}{
		{"after-cold-write", func(f func(int) error) { compactFailAfterColdWrite = f }},
		{"after-cold-rename", func(f func(int) error) { compactFailAfterColdRename = f }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				compactFailAfterColdWrite = nil
				compactFailAfterColdRename = nil
			}()
			dir := t.TempDir()
			db := NewStoreWith(Options{Partition: 24 * time.Hour, Retention: 24 * time.Hour})
			fill(t, 5*288, racks, db)
			if err := db.Flush(dir); err != nil {
				t.Fatalf("flush: %v", err)
			}
			want := snapshotAggs(t, db, racks)
			wantLen := db.Len()

			injected := errors.New("injected crash")
			tc.set(func(shard int) error { return injected })
			if _, err := db.Compact(dir); !errors.Is(err, injected) {
				t.Fatalf("Compact error = %v, want the injected crash", err)
			}

			// Reopen: the half-written state must resolve to the exact
			// pre-compaction store (raw wins over any renamed cold segment).
			re, err := Open(dir, Options{Partition: 24 * time.Hour, Retention: 24 * time.Hour})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			if re.Len() != wantLen {
				t.Fatalf("reopen after %s: Len = %d, want %d", tc.name, re.Len(), wantLen)
			}
			for ctx, aggs := range snapshotAggs(t, re, racks) {
				sameAggs(t, "reopen "+ctx, aggs, want[ctx])
			}

			// The failpoints cleared, the same store compacts cleanly and a
			// further reopen serves identical whole-range aggregates from the
			// now-downsampled tier.
			compactFailAfterColdWrite = nil
			compactFailAfterColdRename = nil
			st, err := re.Compact(dir)
			if err != nil {
				t.Fatalf("clean compact after %s: %v", tc.name, err)
			}
			if st.Windows == 0 {
				t.Fatalf("clean compact after %s folded nothing", tc.name)
			}
			re2, err := Open(dir, Options{Partition: 24 * time.Hour, Retention: 24 * time.Hour})
			if err != nil {
				t.Fatalf("reopen after clean compact: %v", err)
			}
			if got := re2.Stats(); got.ColdWindows != st.Windows {
				t.Fatalf("reopen serves %d cold windows, compaction wrote %d", got.ColdWindows, st.Windows)
			}
			for ctx, aggs := range snapshotAggs(t, re2, racks) {
				sameAggs(t, "compacted "+ctx, aggs, want[ctx])
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".tmp") && tc.name == "after-cold-rename" {
					t.Errorf("stray temp file %s after clean compaction", e.Name())
				}
			}
		})
	}
}

// snapshotAggs captures whole-range and hourly aggregates for every rack
// and metric — the query surface the crash-safety test holds invariant.
func snapshotAggs(t *testing.T, db *Store, racks []topology.RackID) map[string][]WindowAgg {
	t.Helper()
	first, last, ok := db.Bounds()
	if !ok {
		t.Fatal("empty store")
	}
	out := make(map[string][]WindowAgg)
	for _, rack := range racks {
		for m := sensors.Metric(0); m < sensors.NumMetrics; m++ {
			for _, win := range []time.Duration{0, time.Hour} {
				aggs, err := db.Aggregate(rack, m, first, last.Add(time.Nanosecond), win)
				if err != nil {
					t.Fatalf("aggregate: %v", err)
				}
				out[rack.String()+"/"+m.String()+"/"+win.String()] = aggs
			}
		}
	}
	return out
}

// TestCompactionReduction pins the tier's reason to exist: folding
// full-rate history into 1-hour windows must shrink the compacted range
// at least 4x on disk. (The bar was 5x against varbit-encoded raw blocks;
// the word-packed raw encoding is ~12% denser, which lowers the ratio
// without changing the cold tier's absolute size.) Long streams matter
// for the adaptive codec, so this uses a year-scale trace.
func TestCompactionReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("year-scale ingest")
	}
	racks := []topology.RackID{{Row: 0, Col: 2}, {Row: 2, Col: 11}}
	db := NewStoreWith(Options{Retention: 90 * 24 * time.Hour})
	fill(t, 360*288, racks, db)
	dir := t.TempDir()
	if err := db.Flush(dir); err != nil {
		t.Fatalf("flush: %v", err)
	}
	before := db.Stats().DiskBytes

	first, last, _ := db.Bounds()
	wholeBefore := snapshotAggs(t, db, racks)

	st, err := db.Compact(dir)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if st.Windows == 0 || st.SourceRecords == 0 {
		t.Fatal("compaction folded nothing")
	}
	if r := st.Reduction(); r < 4.0 {
		t.Errorf("compacted-range reduction = %.2fx (payload %d -> %d bytes), want >= 4x",
			r, st.BytesBefore, st.BytesAfter)
	}
	after := db.Stats().DiskBytes
	if after >= before {
		t.Errorf("disk footprint grew: %d -> %d bytes", before, after)
	}
	t.Logf("folded %d records into %d windows: payload %.2fx smaller, disk %d -> %d bytes over %s..%s",
		st.SourceRecords, st.Windows, st.Reduction(), before, after,
		first.Format("2006-01-02"), last.Format("2006-01-02"))

	// The whole-range answers survive both the fold and a reopen.
	for ctx, aggs := range snapshotAggs(t, db, racks) {
		sameAggs(t, "post-compact "+ctx, aggs, wholeBefore[ctx])
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for ctx, aggs := range snapshotAggs(t, re, racks) {
		sameAggs(t, "reopen "+ctx, aggs, wholeBefore[ctx])
	}
}

// TestCompactAppendConcurrent runs memory-only compaction against live
// appends on the same shards; the race detector and the final record
// count pin the locking story.
func TestCompactAppendConcurrent(t *testing.T) {
	rack := topology.RackID{Row: 1, Col: 4}
	db := NewStoreWith(Options{Partition: 6 * time.Hour, Retention: 12 * time.Hour})
	rng := rand.New(rand.NewSource(17))
	const total = 4 * 288
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			if _, err := db.Compact(""); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	for i := 0; i < total; i++ {
		rec := synthRecord(rng, rack, base.Add(time.Duration(i)*timeutil.SampleInterval))
		if err := db.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	<-done
	if _, err := db.Compact(""); err != nil {
		t.Fatalf("final compact: %v", err)
	}
	// Every ingested record is answerable: the whole-range count across
	// tiers equals what was appended.
	first, last, _ := db.Bounds()
	aggs, err := db.Aggregate(rack, sensors.MetricFlow, first, last.Add(time.Nanosecond), 0)
	if err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if aggs[0].Count != total {
		t.Fatalf("whole-range count = %d, want %d", aggs[0].Count, total)
	}
}

// BenchmarkCompact measures folding 30-day partitions of one shard into
// hourly windows, memory-only (the disk rewrite is covered by Flush
// benchmarks).
func BenchmarkCompact(b *testing.B) {
	recs := benchRecords(1 << 16) // ~227 days for one rack
	cutoff := recs[len(recs)-1].Time.Add(-30 * 24 * time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := NewStoreWith(Options{Retention: 30 * 24 * time.Hour})
		for _, r := range recs {
			if err := db.Append(r); err != nil {
				b.Fatal(err)
			}
		}
		db.SealAll()
		b.StartTimer()
		if _, err := db.CompactBefore("", cutoff); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}
