package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

func TestBitStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := &bitWriter{}
	type field struct {
		v uint64
		n uint
	}
	var fields []field
	for i := 0; i < 5000; i++ {
		n := uint(rng.Intn(64) + 1)
		v := rng.Uint64()
		if n < 64 {
			v &= 1<<n - 1
		}
		fields = append(fields, field{v, n})
		w.writeBits(v, n)
	}
	r := &bitReader{b: w.bytes()}
	for i, f := range fields {
		if got := r.readBits(f.n); got != f.v {
			t.Fatalf("field %d: read %d, want %d (%d bits)", i, got, f.v, f.n)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip of %d = %d", v, got)
		}
	}
	// Small magnitudes must map to small codes.
	if zigzag(0) != 0 || zigzag(-1) != 1 || zigzag(1) != 2 {
		t.Errorf("zigzag ordering broken: %d %d %d", zigzag(0), zigzag(-1), zigzag(1))
	}
}

func TestVarbitRoundTrip(t *testing.T) {
	var vals []uint64
	// Bucket boundaries and random values.
	for _, size := range varbitSizes {
		if size < 64 {
			vals = append(vals, 1<<size-1, 1<<size)
		}
	}
	vals = append(vals, 0, 1, 2, math.MaxUint64)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		vals = append(vals, rng.Uint64()>>uint(rng.Intn(64)))
	}
	w := &bitWriter{}
	for _, v := range vals {
		writeVarbit(w, v)
	}
	r := &bitReader{b: w.bytes()}
	for i, v := range vals {
		if got := readVarbit(r); got != v {
			t.Fatalf("value %d: read %d, want %d", i, got, v)
		}
	}
}

func TestTimesCodec(t *testing.T) {
	cases := map[string][]int64{
		"empty":     {},
		"single":    {1234567890123456789},
		"regular":   {0, 300e9, 600e9, 900e9, 1200e9},
		"jittered":  {0, 300e9, 601e9, 899e9, 1200e9, 1200e9}, // incl. duplicate
		"negative":  {-900e9, -600e9, -300e9, 0},
		"irregular": {5, 7, 1 << 50, 1<<50 + 1},
	}
	for name, ts := range cases {
		buf := encodeTimes(ts)
		got, err := decodeTimes(buf, len(ts))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range ts {
			if got[i] != ts[i] {
				t.Errorf("%s: ts[%d] = %d, want %d", name, i, got[i], ts[i])
			}
		}
	}
	// A fixed cadence must cost ~1 bit per timestamp after the first two.
	n := 8640
	ts := make([]int64, n)
	for i := range ts {
		ts[i] = int64(i) * 300e9
	}
	if got := len(encodeTimes(ts)); got > 8+9+n/8+2 {
		t.Errorf("regular cadence compressed to %d bytes for %d timestamps", got, n)
	}
}

func TestIntsCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := []int64{64250, 0, -1, math.MaxInt64 / 2, math.MinInt64 / 2}
	for i := 0; i < 5000; i++ {
		vals = append(vals, vals[len(vals)-1]+int64(rng.NormFloat64()*300))
	}
	buf := encodeInts(vals)
	got, err := decodeInts(buf, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("ints[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

// TestDecodeTruncated feeds each decoder a truncated payload and expects a
// wrapped overrun error rather than a panic: compressed payloads can now
// arrive from disk, so short streams are input errors.
func TestDecodeTruncated(t *testing.T) {
	ts := []int64{0, 300e9, 600e9, 900e9, 1<<50 + 7}
	ints := []int64{64250, 64000, -3, 1 << 40}
	floats := []float64{64.0, 64.1, math.Pi, -1e300}
	tbuf, ibuf, fbuf := encodeTimes(ts), encodeInts(ints), encodeXOR(floats)
	for cut := 0; cut < len(tbuf); cut++ {
		if _, err := decodeTimes(tbuf[:cut], len(ts)); err == nil {
			t.Errorf("decodeTimes with %d/%d bytes: no error", cut, len(tbuf))
		}
	}
	for cut := 0; cut < len(ibuf); cut++ {
		if _, err := decodeInts(ibuf[:cut], len(ints)); err == nil {
			t.Errorf("decodeInts with %d/%d bytes: no error", cut, len(ibuf))
		}
	}
	for cut := 0; cut < len(fbuf); cut++ {
		if _, err := decodeXOR(fbuf[:cut], len(floats)); err == nil {
			t.Errorf("decodeXOR with %d/%d bytes: no error", cut, len(fbuf))
		}
	}
	// Asking for more samples than were encoded overruns too.
	if _, err := decodeTimes(tbuf, len(ts)+64); err == nil {
		t.Error("decodeTimes past the stream end: no error")
	}
	if _, err := decodeXOR(fbuf, len(floats)+64); err == nil {
		t.Error("decodeXOR past the stream end: no error")
	}
}

func TestXORCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, math.Pi,
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.MaxFloat64, math.SmallestNonzeroFloat64,
		64.0, 64.0, 64.0, // repeats: the one-bit path
	}
	for i := 0; i < 5000; i++ {
		vals = append(vals, 64+rng.NormFloat64()*0.1)
	}
	buf := encodeXOR(vals)
	got, err := decodeXOR(buf, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		want := math.Float64bits(vals[i])
		if math.Float64bits(got[i]) != want {
			t.Fatalf("xor[%d] = %x, want %x", i, math.Float64bits(got[i]), want)
		}
	}
}
