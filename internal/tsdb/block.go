package tsdb

import (
	"fmt"
	"math"
	"time"

	"mira/internal/sensors"
)

// Channel encodings of a sealed block.
const (
	encInt byte = iota + 1 // zigzag-varbit deltas of decimal-quantized integers
	encXOR                 // Gorilla XOR of raw float64 bits
	// encIntPacked stores the same quantized-integer deltas as encInt in
	// frame-of-reference width groups (see encodeIntsPacked) — the form new
	// blocks seal to, since fixed-width groups decode several times faster
	// than prefix codes. encInt stays decodable for blocks loaded from
	// pre-existing segments.
	encIntPacked
)

// maxQuantized bounds quantized magnitudes to the float64-exact integer
// range; larger values fall back to XOR encoding.
const maxQuantized = 1 << 53

// channelData is one compressed value column of a sealed block.
type channelData struct {
	enc   byte
	scale float64 // 10^decimals, valid when enc == encInt
	data  []byte
}

// ZoneMap is the value range of one channel inside a sealed block — the
// pruning index of the columnar scan path: a block whose zones cannot
// satisfy a scan predicate is skipped without decoding a single payload
// byte. NaN bounds mark an unusable zone (the channel holds NaN values, so
// the range proves nothing); unusable zones never prune.
type ZoneMap struct {
	Min, Max float64
}

// usable reports whether the zone can prune; false for NaN bounds.
func (z ZoneMap) usable() bool { return z.Min <= z.Max }

// computeZone scans one non-empty value column for its zone map.
func computeZone(vals []float64) ZoneMap {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v != v { // NaN: the zone cannot bound this block
			return ZoneMap{math.NaN(), math.NaN()}
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return ZoneMap{mn, mx}
}

// sealedBlock is an immutable, compressed run of one rack's samples. All
// fields are written once at seal time (or segment load time); concurrent
// readers decode without locks.
type sealedBlock struct {
	minT, maxT int64 // unix nanoseconds of the first/last sample
	count      int
	times      []byte
	ch         [sensors.NumMetrics]channelData
	// zones holds per-channel value bounds when hasZones is set. Blocks
	// sealed in memory always carry them; disk-loaded blocks carry them
	// from format version 2 on (version-1 segments predate zone maps and
	// scan unpruned).
	zones    [sensors.NumMetrics]ZoneMap
	hasZones bool
	// src names the segment file and block index for disk-loaded blocks
	// ("" for memory-born ones), so decode errors identify their origin.
	src string
}

// headBlock is the mutable in-progress partition of a shard: plain columnar
// slices, appended under the shard's write lock. Readers snapshot the slice
// headers under the read lock; appends only ever write past the snapshotted
// length (or reallocate), so snapshots stay immutable.
type headBlock struct {
	partition int64 // partition index = floor(unixnano / partition length)
	times     []int64
	vals      [sensors.NumMetrics][]float64
}

// sealHead compresses a non-empty head block. Channels whose values survive
// an exact quantize/dequantize round trip at the store's decimal scale use
// the integer delta encoding (~2 bytes/value on noisy sensor data); the
// rest — including channels configured for raw precision — use Gorilla XOR.
func sealHead(h *headBlock, scales [sensors.NumMetrics]float64) *sealedBlock {
	defer metSealDur.ObserveSince(time.Now())
	b := &sealedBlock{
		minT:  h.times[0],
		maxT:  h.times[len(h.times)-1],
		count: len(h.times),
		times: encodeTimes(h.times),
	}
	for m := range h.vals {
		b.ch[m] = encodeChannel(h.vals[m], scales[m])
		b.zones[m] = computeZone(h.vals[m])
	}
	b.hasZones = true
	return b
}

func encodeChannel(vals []float64, scale float64) channelData {
	if scale > 0 {
		if ints, ok := quantizeExact(vals, scale); ok {
			return channelData{enc: encIntPacked, scale: scale, data: encodeIntsPacked(ints)}
		}
	}
	return channelData{enc: encXOR, data: encodeXOR(vals)}
}

// quantizeExact converts values to scaled integers, reporting whether the
// conversion is invertible bit-for-bit (it is whenever the values were
// quantized at the same scale on ingest).
func quantizeExact(vals []float64, scale float64) ([]int64, bool) {
	ints := make([]int64, len(vals))
	for i, v := range vals {
		n := math.Round(v * scale)
		if math.IsNaN(n) || n >= maxQuantized || n <= -maxQuantized {
			return nil, false
		}
		iv := int64(n)
		if float64(iv)/scale != v {
			return nil, false
		}
		ints[i] = iv
	}
	return ints, true
}

// wrap qualifies a decode error with the block's origin and marks it as
// corruption: payloads are either memory-born or checksum-verified at
// Open, so a failed decode means the bytes went bad after that.
func (b *sealedBlock) wrap(what string, err error) error {
	if b.src != "" {
		return fmt.Errorf("tsdb: %s: %s: %w: %w", b.src, what, ErrCorrupt, err)
	}
	return fmt.Errorf("tsdb: sealed block: %s: %w: %w", what, ErrCorrupt, err)
}

func (b *sealedBlock) decodeTimes() ([]int64, error) {
	return b.decodeTimesArena(nil)
}

// decodeTimesArena decodes the timestamp column into dst, reusing its
// backing array when large enough.
func (b *sealedBlock) decodeTimesArena(dst []int64) ([]int64, error) {
	metDecode.Inc()
	ts, err := decodeTimesInto(dst, b.times, b.count)
	if err != nil {
		return nil, b.wrap("timestamps", err)
	}
	return ts, nil
}

// decodeChannel materializes one value column — the unit of decompression
// work, so single-metric reads (Series, Aggregate) skip five sixths of it.
func (b *sealedBlock) decodeChannel(m sensors.Metric) ([]float64, error) {
	out, _, err := b.decodeChannelArena(m, nil, nil)
	return out, err
}

// decodeChannelArena decodes one value column into dst, using scratch for
// the quantized-integer intermediate; both are reused when large enough,
// and the (possibly regrown) scratch is returned for the caller's arena.
func (b *sealedBlock) decodeChannelArena(m sensors.Metric, dst []float64, scratch []int64) ([]float64, []int64, error) {
	metDecode.Inc()
	c := b.ch[m]
	if c.enc == encXOR {
		out, err := decodeXORInto(dst, c.data, b.count)
		if err != nil {
			return nil, scratch, b.wrap(m.String(), err)
		}
		return out, scratch, nil
	}
	ints, err := decodeQuantizedInto(scratch, c, b.count)
	if err != nil {
		return nil, scratch, b.wrap(m.String(), err)
	}
	out := float64Slice(dst, b.count)
	scale := c.scale
	for i, n := range ints {
		out[i] = float64(n) / scale
	}
	return out, ints, nil
}

// decodeQuantizedInto decodes a quantized channel's integer stream,
// dispatching on its encoding generation (varbit for pre-existing segment
// blocks, word-packed for newly sealed ones).
func decodeQuantizedInto(dst []int64, c channelData, n int) ([]int64, error) {
	if c.enc == encIntPacked {
		return decodeIntsPackedInto(dst, c.data, n)
	}
	return decodeIntsInto(dst, c.data, n)
}

// payloadBytes is the compressed size of the block's streams.
func (b *sealedBlock) payloadBytes() int64 {
	n := int64(len(b.times))
	for m := range b.ch {
		n += int64(len(b.ch[m].data))
	}
	return n
}
