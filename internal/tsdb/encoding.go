// Package tsdb is a sharded, compressed, concurrent time-series storage
// engine for coolant-monitor telemetry — the production-grade replacement
// for the slice-backed environmental store in internal/envdb. Records are
// sharded per rack; each shard holds time-partitioned blocks. The active
// head block per shard is a plain columnar buffer; sealed blocks are
// compressed with Gorilla-style encodings (Facebook's in-memory TSDB,
// VLDB'15): delta-of-delta timestamps and, per float64 channel, either
// XOR-of-previous-value encoding (bit-lossless) or zigzag-varbit delta
// encoding of decimal-quantized integers when the channel's values are
// exactly representable at the block's decimal scale. An RWMutex per shard
// lets many analytical readers scan while the simulator appends.
package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	stdbits "math/bits"
)

// bitWriter appends bits MSB-first into a growing byte slice.
type bitWriter struct {
	b []byte
	n uint // bits used in the last byte (0..7; 0 = last byte full or empty)
}

func (w *bitWriter) writeBit(bit bool) {
	if bit {
		w.writeBits(1, 1)
	} else {
		w.writeBits(0, 1)
	}
}

func (w *bitWriter) writeBits(v uint64, nbits uint) {
	v <<= 64 - nbits
	for nbits > 0 {
		if w.n == 0 {
			w.b = append(w.b, 0)
		}
		free := 8 - w.n
		take := nbits
		if take > free {
			take = free
		}
		w.b[len(w.b)-1] |= byte(v >> (64 - take) << (free - take))
		v <<= take
		nbits -= take
		w.n = (w.n + take) & 7
	}
}

func (w *bitWriter) bytes() []byte { return w.b }

// errOverrun reports a compressed stream that ended before the declared
// sample count was decoded — a truncated or corrupted payload.
var errOverrun = errors.New("bitstream overrun")

// bitReader consumes bits MSB-first through a 64-bit look-ahead word so
// multi-bit reads cost one shift instead of a bounds check per bit (the
// per-bit loop was the decode bottleneck: ~570 ns per record across seven
// streams). Bits above r.n in cur are always zero. Overrunning the stream
// sets a sticky error and yields zero bits: sealed payloads may come from
// disk, so a short stream is an input error the decoders report, not a
// panic.
type bitReader struct {
	b   []byte
	off int    // next byte of b to load into cur
	cur uint64 // MSB-aligned look-ahead bits
	n   uint   // valid bit count in cur (0..64)
	err error
}

func (r *bitReader) refill() {
	// Away from the stream tail, top the word up with one unaligned 8-byte
	// load instead of a byte loop; only whole bytes are consumed, and the
	// partial-byte residue is masked off to keep bits past r.n zero.
	if take := (64 - r.n) >> 3; take > 0 && r.off+8 <= len(r.b) {
		w := binary.BigEndian.Uint64(r.b[r.off:])
		w &= ^uint64(0) << (64 - take*8)
		r.cur |= w >> r.n
		r.off += int(take)
		r.n += take * 8
		return
	}
	for r.n <= 56 && r.off < len(r.b) {
		r.cur |= uint64(r.b[r.off]) << (56 - r.n)
		r.off++
		r.n += 8
	}
}

func (r *bitReader) overrun() {
	r.err = errOverrun
	r.cur, r.n = 0, 0
}

// skip discards nbits; the caller must have checked nbits <= r.n.
func (r *bitReader) skip(nbits uint) {
	r.cur <<= nbits
	r.n -= nbits
}

func (r *bitReader) readBit() bool {
	return r.readBits(1) != 0
}

func (r *bitReader) readBits(nbits uint) uint64 {
	if r.n < nbits {
		r.refill()
		if r.n < nbits {
			return r.readBitsSlow(nbits)
		}
	}
	v := r.cur >> (64 - nbits) // nbits >= 1 at every call site
	r.skip(nbits)
	return v
}

// readBitsSlow handles reads wider than the refilled look-ahead: a
// misaligned word tops out at 57..63 bits, so a 64-bit read may need bits
// from two fills.
func (r *bitReader) readBitsSlow(nbits uint) uint64 {
	take := r.n
	v := r.cur >> (64 - take) // take == 0 shifts by 64: zero, as intended
	r.skip(take)
	rest := nbits - take
	r.refill()
	if r.n < rest {
		r.overrun()
		return 0
	}
	v = v<<rest | r.cur>>(64-rest)
	r.skip(rest)
	return v
}

// zigzag maps signed deltas onto small unsigned values (0,-1,1,-2 → 0,1,2,3).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// varbitSizes are the payload widths of the prefix-coded buckets. The
// prefix '0' encodes zero; k leading ones select varbitSizes[k-1]. The 12-
// and 17-bit buckets carry most sensor deltas (noise-scale differences in
// milli-units); 64 catches first values and pathological jumps.
var varbitSizes = [...]uint{7, 12, 17, 24, 32, 64}

func writeVarbit(w *bitWriter, u uint64) {
	if u == 0 {
		w.writeBit(false)
		return
	}
	for k, size := range varbitSizes {
		if size == 64 || u < 1<<size {
			// k+1 leading ones; all but the last bucket add a terminating zero.
			for i := 0; i <= k; i++ {
				w.writeBit(true)
			}
			if size != 64 {
				w.writeBit(false)
			}
			w.writeBits(u, size)
			return
		}
	}
}

// readVarbit decodes one prefix-coded value. The prefix, terminator, and
// payload of every bucket except the 64-bit one fit in at most 38 bits, so
// after one refill the whole value is peeked from cur and consumed with a
// single shift.
func readVarbit(r *bitReader) uint64 {
	if r.n < 38 {
		r.refill()
		if r.n == 0 {
			r.overrun()
			return 0
		}
	}
	w := r.cur
	if w>>63 == 0 { // '0' prefix: zero delta, the fixed-cadence fast path
		r.skip(1)
		return 0
	}
	ones := uint(stdbits.LeadingZeros64(^w)) // <= r.n: bits past r.n are zero
	if ones >= uint(len(varbitSizes)) {      // 64-bit bucket, no terminator
		r.skip(uint(len(varbitSizes)))
		return r.readBits(64)
	}
	size := varbitSizes[ones-1]
	total := ones + 1 + size // prefix ones, terminating zero, payload
	if r.n < total {
		r.overrun()
		return 0
	}
	v := (w << (ones + 1)) >> (64 - size)
	r.skip(total)
	return v
}

// encodeTimes compresses timestamps (unix nanoseconds) with delta-of-delta
// coding: the first value is stored raw, the second as a zigzag delta, the
// rest as zigzag delta-of-deltas. A fixed-cadence sampler (the coolant
// monitor's 300 s) costs one bit per timestamp after the second.
func encodeTimes(ts []int64) []byte {
	w := &bitWriter{}
	var prev, prevDelta int64
	for i, t := range ts {
		switch i {
		case 0:
			w.writeBits(uint64(t), 64)
		case 1:
			prevDelta = t - prev
			writeVarbit(w, zigzag(prevDelta))
		default:
			d := t - prev
			writeVarbit(w, zigzag(d-prevDelta))
			prevDelta = d
		}
		prev = t
	}
	return w.bytes()
}

// int64Slice returns dst resized to n samples, reallocating only when the
// capacity is short — the arena-reuse primitive of the chunked scan path.
func int64Slice(dst []int64, n int) []int64 {
	if cap(dst) < n {
		return make([]int64, n)
	}
	return dst[:n]
}

func float64Slice(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

func decodeTimes(buf []byte, n int) ([]int64, error) {
	return decodeTimesInto(nil, buf, n)
}

// refill8 tops a local look-ahead word up from buf with one unaligned
// 8-byte load (whole bytes only, partial-byte residue masked to keep bits
// past the valid count zero); near the stream tail it falls back to a byte
// loop. It returns ok=false when the word is empty and the stream is
// drained — a bitstream overrun.
func refill8(buf []byte, cur uint64, bits uint, off int) (uint64, uint, int, bool) {
	if take := (64 - bits) >> 3; off+8 <= len(buf) {
		w := binary.BigEndian.Uint64(buf[off:])
		w &= ^uint64(0) << (64 - take*8)
		return cur | w>>bits, bits + take*8, off + int(take), true
	}
	for bits <= 56 && off < len(buf) {
		cur |= uint64(buf[off]) << (56 - bits)
		off++
		bits += 8
	}
	return cur, bits, off, bits > 0
}

// readTailBits pulls one width-bit payload that straddles a refill (the
// caller saw bits < width) — 64-bit varbit buckets and >56-bit packed
// groups only, so this stays off the hot path.
func readTailBits(buf []byte, cur uint64, bits uint, off int, width uint) (uint64, uint64, uint, int, bool) {
	take := bits
	v := cur >> (64 - take) // take == 0 shifts by 64: zero, as intended
	rest := width - take
	cur, bits = 0, 0
	for bits <= 56 && off < len(buf) {
		cur |= uint64(buf[off]) << (56 - bits)
		off++
		bits += 8
	}
	if bits < rest {
		return 0, 0, 0, off, false
	}
	v = v<<rest | cur>>(64-rest)
	return v, cur << rest, bits - rest, off, true
}

// decodeTimesInto decodes n delta-of-delta timestamps into dst, reusing its
// backing array when large enough. The loop keeps the bit cursor in locals
// (no per-value method calls or struct traffic) and folds runs of '0'
// prefixes — zero delta-of-deltas, the whole stream for a fixed-cadence
// sampler — into one LeadingZeros64 per word: this is the hot half of the
// chunked scan's decode budget.
func decodeTimesInto(dst []int64, buf []byte, n int) ([]int64, error) {
	out := int64Slice(dst, n)
	if n == 0 {
		return out, nil
	}
	if len(buf) < 8 {
		return nil, fmt.Errorf("decoding timestamps: %w", errOverrun)
	}
	// The first timestamp is written raw before any varbit, so it is
	// byte-aligned in the first eight bytes.
	prev := int64(binary.BigEndian.Uint64(buf))
	out[0] = prev
	var (
		cur   uint64
		bits  uint
		off   = 8
		delta int64
		ok    bool
	)
	for i := 1; i < n; {
		if bits < 38 {
			if cur, bits, off, ok = refill8(buf, cur, bits, off); !ok {
				return nil, fmt.Errorf("decoding timestamps: %w", errOverrun)
			}
		}
		w := cur
		if w>>63 == 0 {
			// '0'-prefix run: each leading zero bit is one unchanged delta.
			z := uint(stdbits.LeadingZeros64(w))
			if z > bits {
				z = bits // bits past the valid count are zero, not data
			}
			if rem := uint(n - i); z > rem {
				z = rem // don't consume the stream's zero-padding as values
			}
			cur <<= z
			bits -= z
			for e := i + int(z); i < e; i++ {
				prev += delta
				out[i] = prev
			}
			continue
		}
		ones := uint(stdbits.LeadingZeros64(^w)) // <= bits: bits past bits are zero
		var u uint64
		if ones >= uint(len(varbitSizes)) { // 64-bit bucket, no terminator
			if u, cur, bits, off, ok = readTailBits(buf, cur<<6, bits-6, off, 64); !ok {
				return nil, fmt.Errorf("decoding timestamps: %w", errOverrun)
			}
		} else {
			size := varbitSizes[ones-1]
			total := ones + 1 + size // prefix ones, terminating zero, payload
			if bits < total {
				return nil, fmt.Errorf("decoding timestamps: %w", errOverrun)
			}
			u = (w << (ones + 1)) >> (64 - size)
			cur <<= total
			bits -= total
		}
		delta += unzigzag(u)
		prev += delta
		out[i] = prev
		i++
	}
	return out, nil
}

// encodeInts compresses a quantized channel: the first value raw-ish
// (zigzag varbit), the rest as zigzag deltas. Plain deltas beat
// delta-of-delta here because sensor noise is i.i.d. — second differences
// have ~√3× the variance of first differences.
func encodeInts(vals []int64) []byte {
	w := &bitWriter{}
	var prev int64
	for i, v := range vals {
		if i == 0 {
			writeVarbit(w, zigzag(v))
		} else {
			writeVarbit(w, zigzag(v-prev))
		}
		prev = v
	}
	return w.bytes()
}

func decodeInts(buf []byte, n int) ([]int64, error) {
	return decodeIntsInto(nil, buf, n)
}

// decodeIntsInto decodes n zigzag-delta integers into dst, reusing its
// backing array when large enough. Like decodeTimesInto it runs the bit
// cursor in locals and folds '0'-prefix runs (repeated values) into one
// LeadingZeros64; with six channels per block this loop dominates the
// chunked scan's decode time.
func decodeIntsInto(dst []int64, buf []byte, n int) ([]int64, error) {
	out := int64Slice(dst, n)
	if n == 0 {
		return out, nil
	}
	var (
		cur  uint64
		bits uint
		off  int
		prev int64
		ok   bool
	)
	for i := 0; i < n; {
		if bits < 38 {
			if cur, bits, off, ok = refill8(buf, cur, bits, off); !ok {
				return nil, fmt.Errorf("decoding integer deltas: %w", errOverrun)
			}
		}
		w := cur
		if w>>63 == 0 {
			// '0'-prefix run: each leading zero bit is one zero delta, so a
			// stretch of repeated values costs one LeadingZeros64 total.
			z := uint(stdbits.LeadingZeros64(w))
			if z > bits {
				z = bits // bits past the valid count are zero, not data
			}
			if rem := uint(n - i); z > rem {
				z = rem // don't consume the stream's zero-padding as values
			}
			cur <<= z
			bits -= z
			for e := i + int(z); i < e; i++ {
				out[i] = prev
			}
			continue
		}
		ones := uint(stdbits.LeadingZeros64(^w)) // <= bits: bits past bits are zero
		var u uint64
		if ones >= uint(len(varbitSizes)) { // 64-bit bucket, no terminator
			if u, cur, bits, off, ok = readTailBits(buf, cur<<6, bits-6, off, 64); !ok {
				return nil, fmt.Errorf("decoding integer deltas: %w", errOverrun)
			}
		} else {
			size := varbitSizes[ones-1]
			total := ones + 1 + size // prefix ones, terminating zero, payload
			if bits < total {
				return nil, fmt.Errorf("decoding integer deltas: %w", errOverrun)
			}
			u = (w << (ones + 1)) >> (64 - size)
			cur <<= total
			bits -= total
		}
		prev += unzigzag(u)
		out[i] = prev
		i++
	}
	return out, nil
}

// packGroup is the group size of the word-packed integer encoding: 64
// deltas per width group keeps the 7-bit width header under 2% overhead
// while bounding how far one outlier delta inflates its neighbours.
const packGroup = 64

// encodeIntsPacked compresses a quantized channel with frame-of-reference
// word packing: the same zigzag deltas as encodeInts, but grouped in runs
// of packGroup and stored at a fixed width per group — a 7-bit width header
// (0..64, the widest delta of the group) followed by every delta at exactly
// that many bits. Width 0 encodes a whole group of repeated values in just
// the header. Against varbit this trades the per-value prefix code (and its
// unpredictable branches) for per-group headroom below the widest delta;
// on noisy sensor data the sizes come out within a few percent, while
// decode drops to a branch-light shift loop — the batch-decode form the
// chunked scan path is built around.
func encodeIntsPacked(vals []int64) []byte {
	w := &bitWriter{}
	var prev int64
	for g := 0; g < len(vals); g += packGroup {
		end := g + packGroup
		if end > len(vals) {
			end = len(vals)
		}
		width, p := 0, prev
		for _, v := range vals[g:end] {
			if bl := stdbits.Len64(zigzag(v - p)); bl > width {
				width = bl
			}
			p = v
		}
		w.writeBits(uint64(width), 7)
		if width == 0 {
			prev = p
			continue
		}
		for _, v := range vals[g:end] {
			w.writeBits(zigzag(v-prev), uint(width))
			prev = v
		}
	}
	return w.bytes()
}

func decodeIntsPacked(buf []byte, n int) ([]int64, error) {
	return decodeIntsPackedInto(nil, buf, n)
}

// decodeIntsPackedInto decodes n word-packed integer deltas into dst,
// reusing its backing array when large enough. One group costs one 7-bit
// header read; its values then stream out of the look-ahead word at a fixed
// shift each — no prefix decode, no width branch per value — which is why
// newly sealed blocks use this encoding over varbit.
func decodeIntsPackedInto(dst []int64, buf []byte, n int) ([]int64, error) {
	out := int64Slice(dst, n)
	if n == 0 {
		return out, nil
	}
	fail := func() ([]int64, error) {
		return nil, fmt.Errorf("decoding packed integer deltas: %w", errOverrun)
	}
	var (
		cur  uint64
		bits uint
		off  int
		prev int64
		ok   bool
	)
	for i := 0; i < n; {
		if bits < 7 {
			if cur, bits, off, ok = refill8(buf, cur, bits, off); !ok || bits < 7 {
				return fail()
			}
		}
		width := uint(cur >> 57)
		cur <<= 7
		bits -= 7
		cnt := n - i
		if cnt > packGroup {
			cnt = packGroup
		}
		switch {
		case width == 0:
			for e := i + cnt; i < e; i++ {
				out[i] = prev
			}
		case width > 64:
			return nil, fmt.Errorf("decoding packed integer deltas: invalid group width %d", width)
		case width > 56:
			// Wider than one refill guarantees: split reads, off the hot path
			// (such groups carry first values or pathological jumps).
			for e := i + cnt; i < e; i++ {
				u := cur >> (64 - width)
				if bits >= width {
					cur <<= width
					bits -= width
				} else if u, cur, bits, off, ok = readTailBits(buf, cur, bits, off, width); !ok {
					return fail()
				}
				prev += unzigzag(u)
				out[i] = prev
			}
		default:
			for e := i + cnt; i < e; i++ {
				if bits < width {
					if cur, bits, off, ok = refill8(buf, cur, bits, off); !ok || bits < width {
						return fail()
					}
				}
				prev += unzigzag(cur >> (64 - width))
				cur <<= width
				bits -= width
				out[i] = prev
			}
		}
	}
	return out, nil
}

// encodeXOR is the classic Gorilla float encoding: XOR against the previous
// value; a zero XOR costs one bit, otherwise the meaningful bits are stored
// either inside the previous leading/trailing-zero window ('10') or with a
// fresh 5-bit leading-zero count and 6-bit length ('11'). Bit-lossless for
// any float64, including NaN, infinities, and -0.
func encodeXOR(vals []float64) []byte {
	w := &bitWriter{}
	var prev uint64
	leading, trailing := ^uint(0), uint(0) // invalid window marker
	for i, v := range vals {
		bits := math.Float64bits(v)
		if i == 0 {
			w.writeBits(bits, 64)
			prev = bits
			continue
		}
		xor := bits ^ prev
		prev = bits
		if xor == 0 {
			w.writeBit(false)
			continue
		}
		w.writeBit(true)
		l := uint(stdbits.LeadingZeros64(xor))
		if l > 31 {
			l = 31 // 5-bit field
		}
		t := uint(stdbits.TrailingZeros64(xor))
		if leading != ^uint(0) && l >= leading && t >= trailing {
			w.writeBit(false)
			w.writeBits(xor>>trailing, 64-leading-trailing)
		} else {
			leading, trailing = l, t
			sig := 64 - l - t
			w.writeBit(true)
			w.writeBits(uint64(l), 5)
			w.writeBits(uint64(sig-1), 6)
			w.writeBits(xor>>t, sig)
		}
	}
	return w.bytes()
}

func decodeXOR(buf []byte, n int) ([]float64, error) {
	return decodeXORInto(nil, buf, n)
}

// decodeXORInto decodes n XOR-encoded floats into dst, reusing its backing
// array when large enough. The control prefix and window descriptor ('11' +
// 5-bit leading + 6-bit length) together span at most 13 bits, so each
// value's framing is peeked from the look-ahead word in one shot.
func decodeXORInto(dst []float64, buf []byte, n int) ([]float64, error) {
	out := float64Slice(dst, n)
	if n == 0 {
		return out, nil
	}
	r := &bitReader{b: buf}
	bits := r.readBits(64)
	out[0] = math.Float64frombits(bits)
	var leading, trailing uint
	for i := 1; i < n; i++ {
		if r.n < 13 {
			r.refill()
		}
		w := r.cur
		if w>>63 == 0 { // '0': identical value
			if r.n == 0 {
				r.overrun()
				break
			}
			r.skip(1)
			out[i] = math.Float64frombits(bits)
			continue
		}
		if w>>62&1 != 0 { // '11': new window descriptor
			if r.n < 13 {
				r.overrun()
				break
			}
			leading = uint(w>>57) & 31
			sig := uint(w>>51)&63 + 1
			if leading+sig > 64 {
				// Corrupted window descriptor; without this check the
				// trailing count underflows and the read length explodes.
				return nil, fmt.Errorf("decoding XOR floats: invalid window (leading %d, significant %d)", leading, sig)
			}
			trailing = 64 - leading - sig
			r.skip(13)
		} else { // '10': reuse the previous window
			if r.n < 2 {
				r.overrun()
				break
			}
			r.skip(2)
		}
		bits ^= r.readBits(64-leading-trailing) << trailing
		out[i] = math.Float64frombits(bits)
		if r.err != nil {
			break
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("decoding XOR floats: %w", r.err)
	}
	return out, nil
}
