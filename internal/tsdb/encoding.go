// Package tsdb is a sharded, compressed, concurrent time-series storage
// engine for coolant-monitor telemetry — the production-grade replacement
// for the slice-backed environmental store in internal/envdb. Records are
// sharded per rack; each shard holds time-partitioned blocks. The active
// head block per shard is a plain columnar buffer; sealed blocks are
// compressed with Gorilla-style encodings (Facebook's in-memory TSDB,
// VLDB'15): delta-of-delta timestamps and, per float64 channel, either
// XOR-of-previous-value encoding (bit-lossless) or zigzag-varbit delta
// encoding of decimal-quantized integers when the channel's values are
// exactly representable at the block's decimal scale. An RWMutex per shard
// lets many analytical readers scan while the simulator appends.
package tsdb

import (
	"errors"
	"fmt"
	"math"
	stdbits "math/bits"
)

// bitWriter appends bits MSB-first into a growing byte slice.
type bitWriter struct {
	b []byte
	n uint // bits used in the last byte (0..7; 0 = last byte full or empty)
}

func (w *bitWriter) writeBit(bit bool) {
	if bit {
		w.writeBits(1, 1)
	} else {
		w.writeBits(0, 1)
	}
}

func (w *bitWriter) writeBits(v uint64, nbits uint) {
	v <<= 64 - nbits
	for nbits > 0 {
		if w.n == 0 {
			w.b = append(w.b, 0)
		}
		free := 8 - w.n
		take := nbits
		if take > free {
			take = free
		}
		w.b[len(w.b)-1] |= byte(v >> (64 - take) << (free - take))
		v <<= take
		nbits -= take
		w.n = (w.n + take) & 7
	}
}

func (w *bitWriter) bytes() []byte { return w.b }

// errOverrun reports a compressed stream that ended before the declared
// sample count was decoded — a truncated or corrupted payload.
var errOverrun = errors.New("bitstream overrun")

// bitReader consumes bits MSB-first. Overrunning the stream sets a sticky
// error and yields zero bits: sealed payloads may now come from disk, so a
// short stream is an input error the decoders report, not a panic.
type bitReader struct {
	b   []byte
	bit uint
	err error
}

func (r *bitReader) readBit() bool {
	i := r.bit >> 3
	if i >= uint(len(r.b)) {
		r.err = errOverrun
		return false
	}
	bit := r.b[i]>>(7-r.bit&7)&1 == 1
	r.bit++
	return bit
}

func (r *bitReader) readBits(nbits uint) uint64 {
	var v uint64
	for ; nbits > 0; nbits-- {
		v <<= 1
		if r.readBit() {
			v |= 1
		}
		if r.err != nil {
			return 0
		}
	}
	return v
}

// zigzag maps signed deltas onto small unsigned values (0,-1,1,-2 → 0,1,2,3).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// varbitSizes are the payload widths of the prefix-coded buckets. The
// prefix '0' encodes zero; k leading ones select varbitSizes[k-1]. The 12-
// and 17-bit buckets carry most sensor deltas (noise-scale differences in
// milli-units); 64 catches first values and pathological jumps.
var varbitSizes = [...]uint{7, 12, 17, 24, 32, 64}

func writeVarbit(w *bitWriter, u uint64) {
	if u == 0 {
		w.writeBit(false)
		return
	}
	for k, size := range varbitSizes {
		if size == 64 || u < 1<<size {
			// k+1 leading ones; all but the last bucket add a terminating zero.
			for i := 0; i <= k; i++ {
				w.writeBit(true)
			}
			if size != 64 {
				w.writeBit(false)
			}
			w.writeBits(u, size)
			return
		}
	}
}

func readVarbit(r *bitReader) uint64 {
	ones := 0
	for ones < len(varbitSizes) && r.readBit() {
		ones++
	}
	if ones == 0 {
		return 0
	}
	return r.readBits(varbitSizes[ones-1])
}

// encodeTimes compresses timestamps (unix nanoseconds) with delta-of-delta
// coding: the first value is stored raw, the second as a zigzag delta, the
// rest as zigzag delta-of-deltas. A fixed-cadence sampler (the coolant
// monitor's 300 s) costs one bit per timestamp after the second.
func encodeTimes(ts []int64) []byte {
	w := &bitWriter{}
	var prev, prevDelta int64
	for i, t := range ts {
		switch i {
		case 0:
			w.writeBits(uint64(t), 64)
		case 1:
			prevDelta = t - prev
			writeVarbit(w, zigzag(prevDelta))
		default:
			d := t - prev
			writeVarbit(w, zigzag(d-prevDelta))
			prevDelta = d
		}
		prev = t
	}
	return w.bytes()
}

func decodeTimes(buf []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	if n == 0 {
		return out, nil
	}
	r := &bitReader{b: buf}
	out[0] = int64(r.readBits(64))
	var delta int64
	for i := 1; i < n; i++ {
		if i == 1 {
			delta = unzigzag(readVarbit(r))
		} else {
			delta += unzigzag(readVarbit(r))
		}
		out[i] = out[i-1] + delta
	}
	if r.err != nil {
		return nil, fmt.Errorf("decoding timestamps: %w", r.err)
	}
	return out, nil
}

// encodeInts compresses a quantized channel: the first value raw-ish
// (zigzag varbit), the rest as zigzag deltas. Plain deltas beat
// delta-of-delta here because sensor noise is i.i.d. — second differences
// have ~√3× the variance of first differences.
func encodeInts(vals []int64) []byte {
	w := &bitWriter{}
	var prev int64
	for i, v := range vals {
		if i == 0 {
			writeVarbit(w, zigzag(v))
		} else {
			writeVarbit(w, zigzag(v-prev))
		}
		prev = v
	}
	return w.bytes()
}

func decodeInts(buf []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	if n == 0 {
		return out, nil
	}
	r := &bitReader{b: buf}
	out[0] = unzigzag(readVarbit(r))
	for i := 1; i < n; i++ {
		out[i] = out[i-1] + unzigzag(readVarbit(r))
	}
	if r.err != nil {
		return nil, fmt.Errorf("decoding integer deltas: %w", r.err)
	}
	return out, nil
}

// encodeXOR is the classic Gorilla float encoding: XOR against the previous
// value; a zero XOR costs one bit, otherwise the meaningful bits are stored
// either inside the previous leading/trailing-zero window ('10') or with a
// fresh 5-bit leading-zero count and 6-bit length ('11'). Bit-lossless for
// any float64, including NaN, infinities, and -0.
func encodeXOR(vals []float64) []byte {
	w := &bitWriter{}
	var prev uint64
	leading, trailing := ^uint(0), uint(0) // invalid window marker
	for i, v := range vals {
		bits := math.Float64bits(v)
		if i == 0 {
			w.writeBits(bits, 64)
			prev = bits
			continue
		}
		xor := bits ^ prev
		prev = bits
		if xor == 0 {
			w.writeBit(false)
			continue
		}
		w.writeBit(true)
		l := uint(stdbits.LeadingZeros64(xor))
		if l > 31 {
			l = 31 // 5-bit field
		}
		t := uint(stdbits.TrailingZeros64(xor))
		if leading != ^uint(0) && l >= leading && t >= trailing {
			w.writeBit(false)
			w.writeBits(xor>>trailing, 64-leading-trailing)
		} else {
			leading, trailing = l, t
			sig := 64 - l - t
			w.writeBit(true)
			w.writeBits(uint64(l), 5)
			w.writeBits(uint64(sig-1), 6)
			w.writeBits(xor>>t, sig)
		}
	}
	return w.bytes()
}

func decodeXOR(buf []byte, n int) ([]float64, error) {
	out := make([]float64, n)
	if n == 0 {
		return out, nil
	}
	r := &bitReader{b: buf}
	bits := r.readBits(64)
	out[0] = math.Float64frombits(bits)
	var leading, trailing uint
	for i := 1; i < n; i++ {
		if !r.readBit() { // identical value
			out[i] = math.Float64frombits(bits)
			continue
		}
		if r.readBit() { // new window
			leading = uint(r.readBits(5))
			sig := uint(r.readBits(6)) + 1
			if leading+sig > 64 {
				// Corrupted window descriptor; without this check the
				// trailing count underflows and the read length explodes.
				return nil, fmt.Errorf("decoding XOR floats: invalid window (leading %d, significant %d)", leading, sig)
			}
			trailing = 64 - leading - sig
		}
		sig := 64 - leading - trailing
		bits ^= r.readBits(sig) << trailing
		out[i] = math.Float64frombits(bits)
		if r.err != nil {
			break
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("decoding XOR floats: %w", r.err)
	}
	return out, nil
}
