package tsdb

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/topology"
)

// DefaultPartition is the time span of one block: 30 days ≈ 8640 samples at
// the coolant monitor's 300 s cadence.
const DefaultPartition = 30 * 24 * time.Hour

// DefaultCompactWindow is the cold-tier cadence retention compaction folds
// old partitions down to: one window per hour, 1/12 of the monitor's 300 s
// sample rate.
const DefaultCompactWindow = time.Hour

// Options configures a Store.
type Options struct {
	// Partition is the block length (default 30 days). Sealed blocks carry
	// their time bounds, so range queries skip whole partitions.
	Partition time.Duration
	// Precision is the per-channel decimal quantization applied on ingest:
	// 0 selects the channel's default (the CSV export schema: 3 decimals,
	// 1 for power), positive values override it, and negative values keep
	// raw float64 bits (sealed with XOR encoding instead of integer deltas).
	Precision [sensors.NumMetrics]int
	// Downsample keeps only every Nth sample per rack (0 or 1 = keep all).
	// Retained for drop-in compatibility with envdb.Store; compression makes
	// full-rate six-year runs fit in memory, so the default keeps all.
	Downsample int
	// Retention is the hot window: Compact folds sealed partitions whose
	// data is older than Retention (measured back from the store's last
	// record, not wall clock — traces are simulated) into downsampled
	// blocks at CompactWindow cadence. 0 disables compaction.
	Retention time.Duration
	// CompactWindow is the cold-tier window length (default 1 hour). Each
	// downsampled window retains count/sum/min/max per channel.
	CompactWindow time.Duration
}

// defaultDecimals mirrors the envdb CSV export schema, so ingest
// quantization never discards information that survives an export anyway.
func defaultDecimals(m sensors.Metric) int {
	if m == sensors.MetricPower {
		return 1
	}
	return 3
}

// shard holds one rack's blocks. The RWMutex guards the block list and the
// head's slice headers; sealed blocks and snapshotted head prefixes are
// immutable, so readers decode outside the lock.
type shard struct {
	mu      sync.RWMutex
	cold    []*downBlock // downsampled tier, strictly before every sealed block
	sealed  []*sealedBlock
	head    *headBlock
	lastT   int64
	hasLast bool
	counter int
	// total counts the records the shard yields to readers: raw samples
	// plus one pseudo-record (the window mean) per downsampled window.
	total int
}

// Store is a sharded, compressed, concurrent environmental database: one
// shard per rack, Gorilla-compressed sealed blocks plus a mutable head
// block per shard. It satisfies envdb.DB, so it is a drop-in replacement
// for the slice-backed envdb.Store anywhere telemetry is recorded or
// queried. The zero value is ready to use with default Options.
type Store struct {
	opts      Options
	scales    [sensors.NumMetrics]float64 // 10^decimals; 0 = raw (XOR)
	partNanos int64
	compWin   int64 // cold-tier window length, nanoseconds
	once      sync.Once
	loc       atomic.Pointer[time.Location]
	diskBytes atomic.Int64 // segment bytes as of the last Flush/Open
	compactMu sync.Mutex   // serializes Compact runs (the only sealed-block remover)
	shards    [topology.NumRacks]shard
}

var _ envdb.DB = (*Store)(nil)

// NewStore creates a store with default options: 30-day partitions,
// CSV-schema precision, no downsampling.
func NewStore() *Store { return NewStoreWith(Options{}) }

// NewStoreWith creates a store with explicit options.
func NewStoreWith(o Options) *Store {
	s := &Store{opts: o}
	s.init()
	return s
}

// NewRawStore creates a store that preserves raw float64 bits on every
// channel (XOR-compressed; larger, but bit-lossless for unquantized data).
func NewRawStore() *Store {
	var o Options
	for m := range o.Precision {
		o.Precision[m] = -1
	}
	return NewStoreWith(o)
}

func (s *Store) init() {
	s.once.Do(func() {
		if s.opts.Partition <= 0 {
			s.opts.Partition = DefaultPartition
		}
		s.partNanos = int64(s.opts.Partition)
		if s.opts.CompactWindow <= 0 {
			s.opts.CompactWindow = DefaultCompactWindow
		}
		s.compWin = int64(s.opts.CompactWindow)
		for m := range s.scales {
			dec := s.opts.Precision[m]
			if dec == 0 {
				dec = defaultDecimals(sensors.Metric(m))
			}
			if dec < 0 {
				s.scales[m] = 0 // raw
				continue
			}
			scale := 1.0
			for i := 0; i < dec; i++ {
				scale *= 10
			}
			s.scales[m] = scale
		}
	})
}

func (s *Store) location() *time.Location {
	if l := s.loc.Load(); l != nil {
		return l
	}
	return time.UTC
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Append ingests one record. Records must arrive in non-decreasing time
// order per rack (equal timestamps are fine); concurrent appends to
// different racks proceed in parallel.
func (s *Store) Append(r sensors.Record) error {
	s.init()
	s.loc.CompareAndSwap(nil, r.Time.Location())
	t := r.Time.UnixNano()
	sh := &s.shards[r.Rack.Index()]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.hasLast && t < sh.lastT {
		metOutOfOrder.Inc()
		return fmt.Errorf("tsdb: out-of-order record for rack %v: %v before %v",
			r.Rack, r.Time, time.Unix(0, sh.lastT).In(s.location()))
	}
	metAppend.Inc()
	// The monotonicity watermark advances for every accepted record, kept
	// or not: with Downsample > 1, an out-of-order record landing between
	// two skipped samples must still be rejected.
	sh.lastT = t
	sh.hasLast = true
	sh.counter++
	if s.opts.Downsample > 1 && (sh.counter-1)%s.opts.Downsample != 0 {
		return nil
	}
	part := floorDiv(t, s.partNanos)
	if sh.head != nil && sh.head.partition != part {
		sh.sealed = append(sh.sealed, sealHead(sh.head, s.scales))
		sh.head = nil
	}
	if sh.head == nil {
		sh.head = &headBlock{partition: part}
	}
	sh.head.times = append(sh.head.times, t)
	for m := range sh.head.vals {
		v := r.Value(sensors.Metric(m))
		if scale := s.scales[m]; scale > 0 {
			v = quantize(v, scale)
		}
		sh.head.vals[m] = append(sh.head.vals[m], v)
	}
	sh.total++
	return nil
}

// quantize rounds v to the store's decimal grid. NaN/Inf pass through (the
// sealer falls back to XOR for such blocks).
func quantize(v, scale float64) float64 {
	q := math.Round(v*scale) / scale
	if q != q { // NaN
		return v
	}
	return q
}

// SealAll compresses every non-empty head block. Appends afterwards start
// fresh heads; use before Stats for a fully-compressed footprint, or to
// bound head memory when ingest pauses.
func (s *Store) SealAll() {
	s.init()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.head != nil && len(sh.head.times) > 0 {
			sh.sealed = append(sh.sealed, sealHead(sh.head, s.scales))
			sh.head = nil
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of records the store yields across all racks:
// raw samples plus one window record per downsampled window.
func (s *Store) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.total
		sh.mu.RUnlock()
	}
	return total
}

// snapshot is an immutable view of one shard taken under its read lock:
// sealed block pointers plus the head's current slice prefixes. The backing
// arrays are never mutated below the snapshotted lengths, so the snapshot
// can be decoded and scanned lock-free.
type snapshot struct {
	cold      []*downBlock
	sealed    []*sealedBlock
	headTimes []int64
	headVals  [sensors.NumMetrics][]float64
	// total is the shard's stored-record count at snapshot time (Stats).
	total int
}

func (sh *shard) snapshot() snapshot {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	snap := snapshot{
		cold:   sh.cold[:len(sh.cold):len(sh.cold)],
		sealed: sh.sealed[:len(sh.sealed):len(sh.sealed)],
		total:  sh.total,
	}
	if sh.head != nil {
		n := len(sh.head.times)
		snap.headTimes = sh.head.times[:n:n]
		for m := range sh.head.vals {
			snap.headVals[m] = sh.head.vals[m][:n:n]
		}
	}
	return snap
}

// blockView is one time-ordered run of samples: a downsampled block (one
// record per window, timestamped at the window start, valued at the window
// mean), a sealed block (decoded lazily, one column at a time), or the
// head prefix.
type blockView struct {
	down     *downBlock
	sealed   *sealedBlock
	headSnap *snapshot
}

func (snap *snapshot) blocks() []blockView {
	views := make([]blockView, 0, len(snap.cold)+len(snap.sealed)+1)
	// Cold blocks precede every sealed block in time (the compaction
	// boundary never splits a window), so this order is time order.
	for _, d := range snap.cold {
		views = append(views, blockView{down: d})
	}
	for _, b := range snap.sealed {
		views = append(views, blockView{sealed: b})
	}
	if len(snap.headTimes) > 0 {
		views = append(views, blockView{headSnap: snap})
	}
	return views
}

func (bv blockView) bounds() (minT, maxT int64) {
	if bv.down != nil {
		return bv.down.minT, bv.down.maxT
	}
	if bv.sealed != nil {
		return bv.sealed.minT, bv.sealed.maxT
	}
	return bv.headSnap.headTimes[0], bv.headSnap.headTimes[len(bv.headSnap.headTimes)-1]
}

func (bv blockView) timestamps() ([]int64, error) {
	if bv.down != nil {
		return bv.down.starts()
	}
	if bv.sealed != nil {
		return bv.sealed.decodeTimes()
	}
	return bv.headSnap.headTimes, nil
}

func (bv blockView) channel(m sensors.Metric) ([]float64, error) {
	if bv.down != nil {
		counts, err := bv.down.recordCounts()
		if err != nil {
			return nil, err
		}
		return bv.down.channelMeans(m, counts)
	}
	if bv.sealed != nil {
		return bv.sealed.decodeChannel(m)
	}
	return bv.headSnap.headVals[m], nil
}

// timestampsArena is timestamps with arena reuse: sealed blocks decode into
// dst's backing array when it is large enough. Head views alias their
// snapshot and cold blocks decode fresh (they are rare), so both ignore dst.
func (bv blockView) timestampsArena(dst []int64) ([]int64, error) {
	if bv.sealed != nil {
		return bv.sealed.decodeTimesArena(dst)
	}
	return bv.timestamps()
}

// channelArena is channel with arena reuse for sealed blocks; the (possibly
// regrown) integer scratch comes back for the caller to keep. Head and cold
// views ignore the arena like timestampsArena.
func (bv blockView) channelArena(m sensors.Metric, dst []float64, scratch []int64) ([]float64, []int64, error) {
	if bv.sealed != nil {
		return bv.sealed.decodeChannelArena(m, dst, scratch)
	}
	out, err := bv.channel(m)
	return out, scratch, err
}

// mustDecode is the internal-invariant backstop for the error-free query
// surface (Query, Series, EachRecord): memory-born blocks are correct by
// construction and disk-loaded blocks are checksum-verified at Open, so a
// decode error here means in-process memory corruption or a codec bug —
// not bad input. Callers that want errors instead of a panic (e.g.
// streaming over untrusted segments) use Iter, Aggregate, or
// EachRecordMerged and check the returned error.
func mustDecode[T any](v T, err error) T {
	mustOK(err)
	return v
}

func mustOK(err error) {
	if err != nil {
		panic(err)
	}
}

// searchRange returns the half-open index range of times within [fromN, toN).
func searchRange(times []int64, fromN, toN int64) (lo, hi int) {
	lo = sort.Search(len(times), func(i int) bool { return times[i] >= fromN })
	hi = sort.Search(len(times), func(i int) bool { return times[i] >= toN })
	return lo, hi
}

// Query returns the stored records for one rack with timestamps in
// [from, to), in time order. Values are the stored (ingest-quantized)
// values; see Options.Precision.
func (s *Store) Query(rack topology.RackID, from, to time.Time) []sensors.Record {
	s.init()
	defer metQueryDur.With(opQuery).ObserveSince(time.Now())
	out := []sensors.Record{}
	it := s.Iter(rack, from, to)
	for it.Next() {
		out = append(out, it.Record())
	}
	mustOK(it.Err())
	return out
}

// Series extracts one metric for one rack over [from, to) as parallel
// times/values slices, decompressing only that metric's column.
func (s *Store) Series(rack topology.RackID, m sensors.Metric, from, to time.Time) ([]time.Time, []float64) {
	s.init()
	defer metQueryDur.With(opSeries).ObserveSince(time.Now())
	loc := s.location()
	fromN, toN := from.UnixNano(), to.UnixNano()
	snap := s.shards[rack.Index()].snapshot()
	times := []time.Time{}
	vals := []float64{}
	for _, bv := range snap.blocks() {
		minT, maxT := bv.bounds()
		if minT >= toN {
			break // blocks are time-ordered: the rest are past the range
		}
		if maxT < fromN {
			continue
		}
		ts := mustDecode(bv.timestamps())
		lo, hi := searchRange(ts, fromN, toN)
		if lo >= hi {
			continue
		}
		col := mustDecode(bv.channel(m))
		for i := lo; i < hi; i++ {
			times = append(times, time.Unix(0, ts[i]).In(loc))
			vals = append(vals, col[i])
		}
	}
	return times, vals
}

// EachRecord visits every stored record (rack-major, time order within
// rack). The visit runs against a per-shard snapshot, so it never blocks
// concurrent appends for more than the snapshot instant.
func (s *Store) EachRecord(f func(sensors.Record)) {
	s.EachRecordUntil(func(r sensors.Record) bool { f(r); return true })
}

// EachRecordUntil visits records rack-major until f returns false.
func (s *Store) EachRecordUntil(f func(sensors.Record) bool) {
	s.init()
	for i := range s.shards {
		it := s.iterShard(topology.RackByIndex(i), &s.shards[i], minTime, maxTime)
		for it.Next() {
			if !f(it.Record()) {
				// Every exit path must surface a latched decode failure —
				// corruption seen mid-scan may not be dropped just because
				// the visitor stopped early.
				mustOK(it.Err())
				return
			}
		}
		mustOK(it.Err())
	}
}

// Sentinel nanos covering any representable sample time.
const (
	minTime = int64(-1) << 62
	maxTime = int64(1)<<62 - 1
)

// ExportCSV writes all records (rack-major) in the envdb export schema.
func (s *Store) ExportCSV(w io.Writer) error { return envdb.WriteCSV(w, s) }

// ImportCSV reads records in the envdb export schema into the store.
// Because the default ingest precision equals the schema's formatting
// precision, export → import → export round-trips byte-identically.
func (s *Store) ImportCSV(r io.Reader) error { return envdb.ReadCSV(r, s) }

// Stats describes the store's footprint.
type Stats struct {
	// Records is the record count the store yields to readers: raw samples
	// (sealed + head) plus one window record per downsampled window.
	Records int
	// SealedRecords and SealedBlocks count the compressed raw portion.
	SealedRecords int
	SealedBlocks  int
	// SealedBytes is the compressed payload size of all sealed blocks.
	SealedBytes int64
	// HeadBytes is the uncompressed columnar head footprint.
	HeadBytes int64
	// ColdBlocks/ColdWindows/ColdSourceRecords/ColdBytes describe the
	// downsampled tier: block and window counts, how many raw records were
	// folded into it, and its compressed payload size.
	ColdBlocks        int
	ColdWindows       int
	ColdSourceRecords int64
	ColdBytes         int64
	// BytesPerRecord is SealedBytes / SealedRecords: one record is one
	// timestamp plus six float64 channels.
	BytesPerRecord float64
	// BytesPerSample is the Gorilla-style metric: compressed bytes per
	// (timestamp, value) sample, i.e. SealedBytes / (SealedRecords × 6).
	BytesPerSample float64
	// DiskBytes is the on-disk footprint of the store's segment files as of
	// the last Flush or Open; 0 for a purely in-memory store.
	DiskBytes int64
}

// Stats reports the current footprint. Call SealAll first for a
// fully-compressed view.
//
// Stats never blocks ingest beyond the snapshot instant: each shard's read
// lock is held only long enough to copy the block-list header (the same
// snapshot the query surface takes), and the per-block byte accounting —
// slice-length sums over already-compressed payloads, never a decode —
// runs lock-free afterwards. ExposeGauges republishes these numbers as
// scrape-time gauges, so live processes should scrape /metrics instead of
// polling this one-shot struct.
func (s *Store) Stats() Stats {
	s.init()
	var st Stats
	for i := range s.shards {
		snap := s.shards[i].snapshot()
		st.Records += snap.total
		st.SealedBlocks += len(snap.sealed)
		for _, b := range snap.sealed {
			st.SealedRecords += b.count
			st.SealedBytes += b.payloadBytes()
		}
		st.ColdBlocks += len(snap.cold)
		for _, d := range snap.cold {
			st.ColdWindows += d.count
			st.ColdSourceRecords += d.srcRecords
			st.ColdBytes += d.payloadBytes()
		}
		st.HeadBytes += int64(len(snap.headTimes)) * 8 * (1 + int64(sensors.NumMetrics))
	}
	if st.SealedRecords > 0 {
		st.BytesPerRecord = float64(st.SealedBytes) / float64(st.SealedRecords)
		st.BytesPerSample = st.BytesPerRecord / float64(sensors.NumMetrics)
	}
	st.DiskBytes = s.diskBytes.Load()
	return st
}

// Bounds reports the earliest and latest record timestamps across all
// racks; ok is false for an empty store.
func (s *Store) Bounds() (first, last time.Time, ok bool) {
	s.init()
	var minN, maxN int64
	for i := range s.shards {
		snap := s.shards[i].snapshot()
		for _, bv := range snap.blocks() {
			lo, hi := bv.bounds()
			if !ok || lo < minN {
				minN = lo
			}
			if !ok || hi > maxN {
				maxN = hi
			}
			ok = true
		}
	}
	if !ok {
		return time.Time{}, time.Time{}, false
	}
	loc := s.location()
	return time.Unix(0, minN).In(loc), time.Unix(0, maxN).In(loc), true
}
