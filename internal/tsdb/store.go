package tsdb

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/topology"
)

// DefaultPartition is the time span of one block: 30 days ≈ 8640 samples at
// the coolant monitor's 300 s cadence.
const DefaultPartition = 30 * 24 * time.Hour

// DefaultCompactWindow is the cold-tier cadence retention compaction folds
// old partitions down to: one window per hour, 1/12 of the monitor's 300 s
// sample rate.
const DefaultCompactWindow = time.Hour

// Options configures a Store.
type Options struct {
	// Fleet is the deployment shape: one shard per fleet rack. The zero
	// value is the paper's single 48-rack machine; multi-hall fleets get
	// halls × racks shards and per-hall segment directories on disk.
	Fleet topology.Fleet
	// Location fixes the time zone used to materialize record timestamps.
	// When nil, the store adopts the location of whichever record lands
	// first (fine for the single-writer simulator; concurrent first appends
	// from mixed zones should set this explicitly).
	Location *time.Location
	// Partition is the block length (default 30 days). Sealed blocks carry
	// their time bounds, so range queries skip whole partitions.
	Partition time.Duration
	// Precision is the per-channel decimal quantization applied on ingest:
	// 0 selects the channel's default (the CSV export schema: 3 decimals,
	// 1 for power), positive values override it, and negative values keep
	// raw float64 bits (sealed with XOR encoding instead of integer deltas).
	Precision [sensors.NumMetrics]int
	// Downsample keeps only every Nth sample per rack (0 or 1 = keep all).
	// Retained for drop-in compatibility with envdb.Store; compression makes
	// full-rate six-year runs fit in memory, so the default keeps all.
	Downsample int
	// Retention is the hot window: Compact folds sealed partitions whose
	// data is older than Retention (measured back from the store's last
	// record, not wall clock — traces are simulated) into downsampled
	// blocks at CompactWindow cadence. 0 disables compaction.
	Retention time.Duration
	// CompactWindow is the cold-tier window length (default 1 hour). Each
	// downsampled window retains count/sum/min/max per channel.
	CompactWindow time.Duration
}

// defaultDecimals mirrors the envdb CSV export schema, so ingest
// quantization never discards information that survives an export anyway.
func defaultDecimals(m sensors.Metric) int {
	if m == sensors.MetricPower {
		return 1
	}
	return 3
}

// shard holds one rack's blocks. The RWMutex guards the block list and the
// head's slice headers; sealed blocks and snapshotted head prefixes are
// immutable, so readers decode outside the lock.
type shard struct {
	mu      sync.RWMutex
	cold    []*downBlock // downsampled tier, strictly before every sealed block
	sealed  []*sealedBlock
	head    *headBlock
	lastT   int64
	hasLast bool
	counter int
	// total counts the records the shard yields to readers: raw samples
	// plus one pseudo-record (the window mean) per downsampled window.
	total int
}

// Store is a sharded, compressed, concurrent environmental database: one
// shard per rack, Gorilla-compressed sealed blocks plus a mutable head
// block per shard. It satisfies envdb.DB, so it is a drop-in replacement
// for the slice-backed envdb.Store anywhere telemetry is recorded or
// queried. The zero value is ready to use with default Options.
type Store struct {
	opts      Options
	fleet     topology.Fleet              // normalized Options.Fleet
	scales    [sensors.NumMetrics]float64 // 10^decimals; 0 = raw (XOR)
	partNanos int64
	compWin   int64 // cold-tier window length, nanoseconds
	once      sync.Once
	loc       atomic.Pointer[time.Location]
	diskBytes atomic.Int64 // segment bytes as of the last Flush/Open
	compactMu sync.Mutex   // serializes Compact runs (the only sealed-block remover)
	tickPool  sync.Pool    // *tickScratch for AppendTick
	shards    []shard      // one per fleet rack, topology.Fleet.GlobalIndex order
}

var (
	_ envdb.DB             = (*Store)(nil)
	_ envdb.BatchAppender  = (*Store)(nil)
	_ envdb.FleetDescriber = (*Store)(nil)
)

// NewStore creates a store with default options: 30-day partitions,
// CSV-schema precision, no downsampling.
func NewStore() *Store { return NewStoreWith(Options{}) }

// NewStoreWith creates a store with explicit options.
func NewStoreWith(o Options) *Store {
	s := &Store{opts: o}
	s.init()
	return s
}

// NewRawStore creates a store that preserves raw float64 bits on every
// channel (XOR-compressed; larger, but bit-lossless for unquantized data).
func NewRawStore() *Store {
	var o Options
	for m := range o.Precision {
		o.Precision[m] = -1
	}
	return NewStoreWith(o)
}

func (s *Store) init() {
	s.once.Do(func() {
		s.fleet = s.opts.Fleet.Norm()
		s.shards = make([]shard, s.fleet.NumRacks())
		s.tickPool.New = func() any {
			return &tickScratch{
				shards: make([]tickShardState, len(s.shards)),
			}
		}
		if s.opts.Location != nil {
			s.loc.Store(s.opts.Location)
		}
		if s.opts.Partition <= 0 {
			s.opts.Partition = DefaultPartition
		}
		s.partNanos = int64(s.opts.Partition)
		if s.opts.CompactWindow <= 0 {
			s.opts.CompactWindow = DefaultCompactWindow
		}
		s.compWin = int64(s.opts.CompactWindow)
		for m := range s.scales {
			dec := s.opts.Precision[m]
			if dec == 0 {
				dec = defaultDecimals(sensors.Metric(m))
			}
			if dec < 0 {
				s.scales[m] = 0 // raw
				continue
			}
			scale := 1.0
			for i := 0; i < dec; i++ {
				scale *= 10
			}
			s.scales[m] = scale
		}
	})
}

func (s *Store) location() *time.Location {
	if l := s.loc.Load(); l != nil {
		return l
	}
	return time.UTC
}

// Fleet returns the store's normalized deployment shape.
func (s *Store) Fleet() topology.Fleet {
	s.init()
	return s.fleet
}

// emptyShard backs reads for racks outside the store's fleet: queries on
// them see an empty snapshot instead of panicking or aliasing a real shard.
var emptyShard shard

// shardPtr returns the shard owning rack, or nil for a rack outside the
// fleet (writers reject it, readers treat it as empty).
func (s *Store) shardPtr(rack topology.RackID) *shard {
	if !s.fleet.Contains(rack) {
		return nil
	}
	return &s.shards[s.fleet.GlobalIndex(rack)]
}

func (s *Store) readShard(rack topology.RackID) *shard {
	if sh := s.shardPtr(rack); sh != nil {
		return sh
	}
	return &emptyShard
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Append ingests one record. Records must arrive in non-decreasing time
// order per rack (equal timestamps are fine); concurrent appends to
// different racks proceed in parallel.
func (s *Store) Append(r sensors.Record) error {
	s.init()
	s.loc.CompareAndSwap(nil, r.Time.Location())
	t := r.Time.UnixNano()
	sh := s.shardPtr(r.Rack)
	if sh == nil {
		return fmt.Errorf("tsdb: rack %v outside fleet (%d halls × %d racks)",
			r.Rack, s.fleet.Halls, s.fleet.Racks)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.hasLast && t < sh.lastT {
		metOutOfOrder.Inc()
		return fmt.Errorf("tsdb: out-of-order record for rack %v: %v before %v",
			r.Rack, r.Time, time.Unix(0, sh.lastT).In(s.location()))
	}
	metAppend.Inc()
	// The monotonicity watermark advances for every accepted record, kept
	// or not: with Downsample > 1, an out-of-order record landing between
	// two skipped samples must still be rejected.
	sh.lastT = t
	sh.hasLast = true
	sh.counter++
	if s.opts.Downsample > 1 && (sh.counter-1)%s.opts.Downsample != 0 {
		return nil
	}
	part := floorDiv(t, s.partNanos)
	if sh.head != nil && sh.head.partition != part {
		sh.sealed = append(sh.sealed, sealHead(sh.head, s.scales))
		sh.head = nil
	}
	if sh.head == nil {
		sh.head = &headBlock{partition: part}
	}
	sh.head.times = append(sh.head.times, t)
	for m := range sh.head.vals {
		v := r.Value(sensors.Metric(m))
		if scale := s.scales[m]; scale > 0 {
			v = quantize(v, scale)
		}
		sh.head.vals[m] = append(sh.head.vals[m], v)
	}
	sh.total++
	return nil
}

// quantize rounds v to the store's decimal grid. NaN/Inf pass through (the
// sealer falls back to XOR for such blocks).
func quantize(v, scale float64) float64 {
	q := math.Round(v*scale) / scale
	if q != q { // NaN
		return v
	}
	return q
}

// qz applies the channel's ingest quantization; scale 0 marks a raw
// channel that keeps its float64 bits.
func qz(v, scale float64) float64 {
	if scale > 0 {
		return quantize(v, scale)
	}
	return v
}

// tickScratch is AppendTick's reusable per-call state, pooled on the store
// so steady-state batched ingest allocates nothing: each shard's group of
// batch indices keeps its capacity across calls, and reset() only touches
// the shards the previous batch actually used.
type tickScratch struct {
	nanos   []int64          // per record: UnixNano
	shards  []tickShardState // per shard: this batch's group + watermark
	touched []int32          // shards with a non-empty group
}

// tickShardState packs one shard's per-batch state into a single cache
// line's worth of scratch, so pass 1 touches one array, not two.
type tickShardState struct {
	group    []int32 // batch indices, reset via touched
	lastSeen int64   // newest timestamp seen in this batch
}

func (sc *tickScratch) reset() {
	for _, j := range sc.touched {
		sc.shards[j].group = sc.shards[j].group[:0]
	}
	sc.touched = sc.touched[:0]
}

// AppendTick ingests a batch of records atomically: the whole batch is
// validated first — fleet membership and per-rack time order, both within
// the batch and against each shard's watermark — and only then applied,
// under a single lock acquisition per touched shard. Either every record
// lands or none does, so a rejected batch leaves the store byte-identical
// and safe to retry after correction; that all-or-nothing contract is what
// lets the network server treat one ingest frame as its unit of dedup.
// Batching also amortizes the per-record locking, bounds checks, and slice
// growth of the Append loop (see BenchmarkIngestTickBatch). Concurrent
// AppendTick calls lock shards in ascending fleet order, so they cannot
// deadlock; Append may interleave between batches but not inside one.
func (s *Store) AppendTick(recs []sensors.Record) error {
	s.init()
	if len(recs) == 0 {
		return nil
	}
	s.loc.CompareAndSwap(nil, recs[0].Time.Location())
	sc := s.tickPool.Get().(*tickScratch)
	defer s.tickPool.Put(sc)
	if cap(sc.nanos) < len(recs) {
		sc.nanos = make([]int64, len(recs))
	}
	nanos := sc.nanos[:len(recs)]
	// Pass 1, lock-free: validate fleet membership and intra-batch time
	// order while grouping the batch by shard. Nothing is applied until the
	// whole batch checks out. The fleet membership check and global index
	// are open-coded — this loop runs per record on the ingest hot path,
	// and Fleet's methods re-derive the normalized shape on every call.
	halls, perHall := s.fleet.Halls, s.fleet.Racks
	states := sc.shards
	touched := sc.touched
	for i := range recs {
		r := &recs[i]
		idx := r.Rack.Row*topology.ColsPerRow + r.Rack.Col
		if uint(r.Rack.Row) >= topology.Rows || uint(r.Rack.Col) >= topology.ColsPerRow ||
			uint(r.Rack.Hall) >= uint(halls) || idx >= perHall {
			sc.touched = touched
			sc.reset()
			return fmt.Errorf("tsdb: rack %v outside fleet (%d halls × %d racks)",
				r.Rack, halls, perHall)
		}
		st := &states[r.Rack.Hall*perHall+idx]
		t := r.Time.UnixNano()
		nanos[i] = t
		if len(st.group) == 0 {
			touched = append(touched, int32(r.Rack.Hall*perHall+idx))
		} else if t < st.lastSeen {
			sc.touched = touched
			sc.reset()
			metOutOfOrder.Inc()
			return fmt.Errorf("tsdb: out-of-order record in batch for rack %v: %v before %v",
				r.Rack, r.Time, time.Unix(0, st.lastSeen).In(s.location()))
		}
		st.lastSeen = t
		st.group = append(st.group, int32(i))
	}
	sc.touched = touched
	// Lock touched shards in ascending fleet order (insertion sort: the
	// batch is typically already in rack order, and concurrent AppendTick
	// calls must agree on lock order) and validate each group's first
	// record against the shard watermark; any violation releases every
	// lock with the store untouched.
	for k := 1; k < len(touched); k++ {
		for l := k; l > 0 && touched[l] < touched[l-1]; l-- {
			touched[l], touched[l-1] = touched[l-1], touched[l]
		}
	}
	for k, j := range touched {
		sh := &s.shards[j]
		sh.mu.Lock()
		if first := sc.shards[j].group[0]; sh.hasLast && nanos[first] < sh.lastT {
			rack, when, wm := recs[first].Rack, recs[first].Time, sh.lastT
			for _, jj := range touched[:k+1] {
				s.shards[jj].mu.Unlock()
			}
			sc.reset()
			metOutOfOrder.Inc()
			return fmt.Errorf("tsdb: out-of-order batch for rack %v: %v before %v",
				rack, when, time.Unix(0, wm).In(s.location()))
		}
	}
	// Validation passed: apply every group, then release the locks.
	for _, j := range touched {
		sh := &s.shards[j]
		s.applyGroup(sh, recs, nanos, sc.shards[j].group)
		sh.lastT = sc.shards[j].lastSeen
		sh.hasLast = true
		sh.mu.Unlock()
	}
	metAppend.Add(uint64(len(recs)))
	sc.reset()
	return nil
}

// applyGroup appends one shard's group of a validated batch under the
// shard's (held) write lock: downsample stride first, then one fillHead
// call per partition run — the column-at-a-time amortization that makes
// AppendTick fast.
func (s *Store) applyGroup(sh *shard, recs []sensors.Record, nanos []int64, g []int32) {
	if d := s.opts.Downsample; d > 1 {
		kept := 0
		for _, x := range g {
			sh.counter++
			if (sh.counter-1)%d == 0 {
				g[kept] = x
				kept++
			}
		}
		g = g[:kept]
	} else {
		sh.counter += len(g)
	}
	for len(g) > 0 {
		t0 := nanos[g[0]]
		part := floorDiv(t0, s.partNanos)
		if sh.head != nil && sh.head.partition != part {
			sh.sealed = append(sh.sealed, sealHead(sh.head, s.scales))
			sh.head = nil
		}
		if sh.head == nil {
			sh.head = &headBlock{partition: part}
		}
		run := len(g)
		// end > t0 guards (part+1)*partNanos overflow: when the partition
		// end is unrepresentable no later partition exists, so the whole
		// group belongs to this one.
		if end := (part + 1) * s.partNanos; end > t0 && nanos[g[run-1]] >= end {
			run = sort.Search(run, func(x int) bool { return nanos[g[x]] >= end })
		}
		s.fillHead(sh.head, recs, nanos, g[:run])
		sh.total += run
		g = g[run:]
	}
}

// fillHead appends one partition run of grouped records to a head block,
// growing each column once and quantizing values straight into place. The
// arithmetic must stay exactly quantize's — Append and AppendTick have to
// produce bit-identical heads.
func (s *Store) fillHead(h *headBlock, recs []sensors.Record, nanos []int64, g []int32) {
	base := len(h.times)
	h.times = reserve(h.times, len(g))
	for m := range h.vals {
		h.vals[m] = reserve(h.vals[m], len(g))
	}
	// The reslices to len(g) let the compiler drop the per-column bounds
	// checks inside the loop: every column provably spans the whole run.
	times := h.times[base:][:len(g)]
	v0, v1, v2 := h.vals[0][base:][:len(g)], h.vals[1][base:][:len(g)], h.vals[2][base:][:len(g)]
	v3, v4, v5 := h.vals[3][base:][:len(g)], h.vals[4][base:][:len(g)], h.vals[5][base:][:len(g)]
	s0, s1, s2 := s.scales[0], s.scales[1], s.scales[2]
	s3, s4, s5 := s.scales[3], s.scales[4], s.scales[5]
	for k, x := range g {
		r := &recs[x]
		times[k] = nanos[x]
		a0, a1, a2 := float64(r.DCTemperature), float64(r.DCHumidity), float64(r.Flow)
		a3, a4, a5 := float64(r.InletTemp), float64(r.OutletTemp), float64(r.Power)
		if s0 > 0 {
			a0 = quantize(a0, s0)
		}
		if s1 > 0 {
			a1 = quantize(a1, s1)
		}
		if s2 > 0 {
			a2 = quantize(a2, s2)
		}
		if s3 > 0 {
			a3 = quantize(a3, s3)
		}
		if s4 > 0 {
			a4 = quantize(a4, s4)
		}
		if s5 > 0 {
			a5 = quantize(a5, s5)
		}
		v0[k], v1[k], v2[k] = a0, a1, a2
		v3[k], v4[k], v5[k] = a3, a4, a5
	}
}

// reserve extends s by n elements the caller will overwrite. The capacity
// hit skips append's zeroing of the extension — fillHead stores to every
// reserved index, so the stale memory is never read.
func reserve[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	return append(s, make([]T, n)...)
}

// SealAll compresses every non-empty head block. Appends afterwards start
// fresh heads; use before Stats for a fully-compressed footprint, or to
// bound head memory when ingest pauses.
func (s *Store) SealAll() {
	s.init()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if sh.head != nil && len(sh.head.times) > 0 {
			sh.sealed = append(sh.sealed, sealHead(sh.head, s.scales))
			sh.head = nil
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of records the store yields across all racks:
// raw samples plus one window record per downsampled window.
func (s *Store) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.total
		sh.mu.RUnlock()
	}
	return total
}

// snapshot is an immutable view of one shard taken under its read lock:
// sealed block pointers plus the head's current slice prefixes. The backing
// arrays are never mutated below the snapshotted lengths, so the snapshot
// can be decoded and scanned lock-free.
type snapshot struct {
	cold      []*downBlock
	sealed    []*sealedBlock
	headTimes []int64
	headVals  [sensors.NumMetrics][]float64
	// total is the shard's stored-record count at snapshot time (Stats).
	total int
}

func (sh *shard) snapshot() snapshot {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	snap := snapshot{
		cold:   sh.cold[:len(sh.cold):len(sh.cold)],
		sealed: sh.sealed[:len(sh.sealed):len(sh.sealed)],
		total:  sh.total,
	}
	if sh.head != nil {
		n := len(sh.head.times)
		snap.headTimes = sh.head.times[:n:n]
		for m := range sh.head.vals {
			snap.headVals[m] = sh.head.vals[m][:n:n]
		}
	}
	return snap
}

// blockView is one time-ordered run of samples: a downsampled block (one
// record per window, timestamped at the window start, valued at the window
// mean), a sealed block (decoded lazily, one column at a time), or the
// head prefix.
type blockView struct {
	down     *downBlock
	sealed   *sealedBlock
	headSnap *snapshot
}

func (snap *snapshot) blocks() []blockView {
	views := make([]blockView, 0, len(snap.cold)+len(snap.sealed)+1)
	// Cold blocks precede every sealed block in time (the compaction
	// boundary never splits a window), so this order is time order.
	for _, d := range snap.cold {
		views = append(views, blockView{down: d})
	}
	for _, b := range snap.sealed {
		views = append(views, blockView{sealed: b})
	}
	if len(snap.headTimes) > 0 {
		views = append(views, blockView{headSnap: snap})
	}
	return views
}

func (bv blockView) bounds() (minT, maxT int64) {
	if bv.down != nil {
		return bv.down.minT, bv.down.maxT
	}
	if bv.sealed != nil {
		return bv.sealed.minT, bv.sealed.maxT
	}
	return bv.headSnap.headTimes[0], bv.headSnap.headTimes[len(bv.headSnap.headTimes)-1]
}

func (bv blockView) timestamps() ([]int64, error) {
	if bv.down != nil {
		return bv.down.starts()
	}
	if bv.sealed != nil {
		return bv.sealed.decodeTimes()
	}
	return bv.headSnap.headTimes, nil
}

func (bv blockView) channel(m sensors.Metric) ([]float64, error) {
	if bv.down != nil {
		counts, err := bv.down.recordCounts()
		if err != nil {
			return nil, err
		}
		return bv.down.channelMeans(m, counts)
	}
	if bv.sealed != nil {
		return bv.sealed.decodeChannel(m)
	}
	return bv.headSnap.headVals[m], nil
}

// timestampsArena is timestamps with arena reuse: sealed blocks decode into
// dst's backing array when it is large enough. Head views alias their
// snapshot and cold blocks decode fresh (they are rare), so both ignore dst.
func (bv blockView) timestampsArena(dst []int64) ([]int64, error) {
	if bv.sealed != nil {
		return bv.sealed.decodeTimesArena(dst)
	}
	return bv.timestamps()
}

// channelArena is channel with arena reuse for sealed blocks; the (possibly
// regrown) integer scratch comes back for the caller to keep. Head and cold
// views ignore the arena like timestampsArena.
func (bv blockView) channelArena(m sensors.Metric, dst []float64, scratch []int64) ([]float64, []int64, error) {
	if bv.sealed != nil {
		return bv.sealed.decodeChannelArena(m, dst, scratch)
	}
	out, err := bv.channel(m)
	return out, scratch, err
}

// mustDecode is the internal-invariant backstop for the error-free query
// surface (Query, Series, EachRecord): memory-born blocks are correct by
// construction and disk-loaded blocks are checksum-verified at Open, so a
// decode error here means in-process memory corruption or a codec bug —
// not bad input. Callers that want errors instead of a panic (e.g.
// streaming over untrusted segments) use Iter, Aggregate, or
// EachRecordMerged and check the returned error.
func mustDecode[T any](v T, err error) T {
	mustOK(err)
	return v
}

func mustOK(err error) {
	if err != nil {
		panic(err)
	}
}

// searchRange returns the half-open index range of times within [fromN, toN).
func searchRange(times []int64, fromN, toN int64) (lo, hi int) {
	lo = sort.Search(len(times), func(i int) bool { return times[i] >= fromN })
	hi = sort.Search(len(times), func(i int) bool { return times[i] >= toN })
	return lo, hi
}

// Query returns the stored records for one rack with timestamps in
// [from, to), in time order. Values are the stored (ingest-quantized)
// values; see Options.Precision.
func (s *Store) Query(rack topology.RackID, from, to time.Time) []sensors.Record {
	s.init()
	defer metQueryDur.With(opQuery).ObserveSince(time.Now())
	out := []sensors.Record{}
	it := s.Iter(rack, from, to)
	for it.Next() {
		out = append(out, it.Record())
	}
	mustOK(it.Err())
	return out
}

// Series extracts one metric for one rack over [from, to) as parallel
// times/values slices, decompressing only that metric's column.
func (s *Store) Series(rack topology.RackID, m sensors.Metric, from, to time.Time) ([]time.Time, []float64) {
	s.init()
	defer metQueryDur.With(opSeries).ObserveSince(time.Now())
	loc := s.location()
	fromN, toN := from.UnixNano(), to.UnixNano()
	snap := s.readShard(rack).snapshot()
	times := []time.Time{}
	vals := []float64{}
	for _, bv := range snap.blocks() {
		minT, maxT := bv.bounds()
		if minT >= toN {
			break // blocks are time-ordered: the rest are past the range
		}
		if maxT < fromN {
			continue
		}
		ts := mustDecode(bv.timestamps())
		lo, hi := searchRange(ts, fromN, toN)
		if lo >= hi {
			continue
		}
		col := mustDecode(bv.channel(m))
		for i := lo; i < hi; i++ {
			times = append(times, time.Unix(0, ts[i]).In(loc))
			vals = append(vals, col[i])
		}
	}
	return times, vals
}

// EachRecord visits every stored record (rack-major, time order within
// rack). The visit runs against a per-shard snapshot, so it never blocks
// concurrent appends for more than the snapshot instant.
func (s *Store) EachRecord(f func(sensors.Record)) {
	s.EachRecordUntil(func(r sensors.Record) bool { f(r); return true })
}

// EachRecordUntil visits records rack-major until f returns false.
func (s *Store) EachRecordUntil(f func(sensors.Record) bool) {
	s.init()
	for i := range s.shards {
		it := s.iterShard(s.fleet.RackAt(i), &s.shards[i], minTime, maxTime)
		for it.Next() {
			if !f(it.Record()) {
				// Every exit path must surface a latched decode failure —
				// corruption seen mid-scan may not be dropped just because
				// the visitor stopped early.
				mustOK(it.Err())
				return
			}
		}
		mustOK(it.Err())
	}
}

// Sentinel nanos covering any representable sample time.
const (
	minTime = int64(-1) << 62
	maxTime = int64(1)<<62 - 1
)

// ExportCSV writes all records (rack-major) in the envdb export schema.
func (s *Store) ExportCSV(w io.Writer) error { return envdb.WriteCSV(w, s) }

// ImportCSV reads records in the envdb export schema into the store.
// Because the default ingest precision equals the schema's formatting
// precision, export → import → export round-trips byte-identically.
func (s *Store) ImportCSV(r io.Reader) error { return envdb.ReadCSV(r, s) }

// Stats describes the store's footprint.
type Stats struct {
	// Records is the record count the store yields to readers: raw samples
	// (sealed + head) plus one window record per downsampled window.
	Records int
	// SealedRecords and SealedBlocks count the compressed raw portion.
	SealedRecords int
	SealedBlocks  int
	// SealedBytes is the compressed payload size of all sealed blocks.
	SealedBytes int64
	// HeadBytes is the uncompressed columnar head footprint.
	HeadBytes int64
	// ColdBlocks/ColdWindows/ColdSourceRecords/ColdBytes describe the
	// downsampled tier: block and window counts, how many raw records were
	// folded into it, and its compressed payload size.
	ColdBlocks        int
	ColdWindows       int
	ColdSourceRecords int64
	ColdBytes         int64
	// BytesPerRecord is SealedBytes / SealedRecords: one record is one
	// timestamp plus six float64 channels.
	BytesPerRecord float64
	// BytesPerSample is the Gorilla-style metric: compressed bytes per
	// (timestamp, value) sample, i.e. SealedBytes / (SealedRecords × 6).
	BytesPerSample float64
	// DiskBytes is the on-disk footprint of the store's segment files as of
	// the last Flush or Open; 0 for a purely in-memory store.
	DiskBytes int64
}

// Stats reports the current footprint. Call SealAll first for a
// fully-compressed view.
//
// Stats never blocks ingest beyond the snapshot instant: each shard's read
// lock is held only long enough to copy the block-list header (the same
// snapshot the query surface takes), and the per-block byte accounting —
// slice-length sums over already-compressed payloads, never a decode —
// runs lock-free afterwards. ExposeGauges republishes these numbers as
// scrape-time gauges, so live processes should scrape /metrics instead of
// polling this one-shot struct.
func (s *Store) Stats() Stats {
	s.init()
	var st Stats
	for i := range s.shards {
		snap := s.shards[i].snapshot()
		st.Records += snap.total
		st.SealedBlocks += len(snap.sealed)
		for _, b := range snap.sealed {
			st.SealedRecords += b.count
			st.SealedBytes += b.payloadBytes()
		}
		st.ColdBlocks += len(snap.cold)
		for _, d := range snap.cold {
			st.ColdWindows += d.count
			st.ColdSourceRecords += d.srcRecords
			st.ColdBytes += d.payloadBytes()
		}
		st.HeadBytes += int64(len(snap.headTimes)) * 8 * (1 + int64(sensors.NumMetrics))
	}
	if st.SealedRecords > 0 {
		st.BytesPerRecord = float64(st.SealedBytes) / float64(st.SealedRecords)
		st.BytesPerSample = st.BytesPerRecord / float64(sensors.NumMetrics)
	}
	st.DiskBytes = s.diskBytes.Load()
	return st
}

// Bounds reports the earliest and latest record timestamps across all
// racks; ok is false for an empty store.
func (s *Store) Bounds() (first, last time.Time, ok bool) {
	s.init()
	var minN, maxN int64
	for i := range s.shards {
		snap := s.shards[i].snapshot()
		for _, bv := range snap.blocks() {
			lo, hi := bv.bounds()
			if !ok || lo < minN {
				minN = lo
			}
			if !ok || hi > maxN {
				maxN = hi
			}
			ok = true
		}
	}
	if !ok {
		return time.Time{}, time.Time{}, false
	}
	loc := s.location()
	return time.Unix(0, minN).In(loc), time.Unix(0, maxN).In(loc), true
}
