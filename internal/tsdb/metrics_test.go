package tsdb

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// TestStatsDoesNotDecode pins the lock-discipline fix: Stats accounts for
// sealed blocks from snapshot metadata (compressed payload lengths) and
// must never decompress anything or hold a shard lock while summing.
// mira_tsdb_block_decode_total counts every payload decode, so it must not
// move across a Stats call. (No t.Parallel: the counter is process-global.)
func TestStatsDoesNotDecode(t *testing.T) {
	db := NewStoreWith(Options{Partition: time.Hour})
	racks := []topology.RackID{{Row: 0, Col: 0}, {Row: 1, Col: 8}}
	fill(t, 100, racks, db) // 100 samples at 300 s spans several 1 h partitions
	db.SealAll()

	before := metDecode.Value()
	st := db.Stats()
	if got := metDecode.Value(); got != before {
		t.Errorf("Stats decoded %d payloads; accounting must be metadata-only", got-before)
	}
	if st.Records != db.Len() || st.SealedBytes == 0 {
		t.Errorf("stats = %+v, want %d records and nonzero sealed bytes", st, db.Len())
	}
}

// TestStatsConcurrentWithIngest hammers Stats and the scrape-time gauge
// refresh while appends, seals, and queries run — the deadlock regression
// test for holding shard locks during byte accounting (meaningful under
// -race, which tier-1 runs).
func TestStatsConcurrentWithIngest(t *testing.T) {
	db := NewStore()
	reg := obs.NewRegistry()
	db.ExposeGauges(reg)

	rack := topology.RackID{Row: 2, Col: 3}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
			rec := sensors.Record{Time: ts, Rack: rack, Power: 57000}
			if err := db.Append(rec); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if i%500 == 499 {
				db.SealAll()
			}
			i++
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				st := db.Stats()
				if st.Records < 0 {
					t.Error("negative record count")
				}
				reg.WritePrometheus(io.Discard)
				db.Query(rack, base, base.Add(24*time.Hour))
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestCorruptStoreFlipsHealthz is the end of the satellite chain: a
// truncated segment makes Open fail with ErrCorrupt, the error goes to
// SetHealth, and /healthz answers 503 with the corruption text — what a
// long-running miramon -listen does instead of exiting.
func TestCorruptStoreFlipsHealthz(t *testing.T) {
	dir := t.TempDir()
	db := NewStore()
	fill(t, 300, []topology.RackID{{Row: 0, Col: 1}}, db)
	if err := db.Flush(dir); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments flushed: %v", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(corrupt) = %v, want ErrCorrupt", err)
	}

	reg := obs.NewRegistry()
	reg.SetHealth(err)
	srv := httptest.NewServer(reg.HTTPHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "corrupt segment") {
		t.Errorf("healthz body %q should name the corruption", body)
	}
}
