package tsdb

// Retention compaction: fold sealed partitions older than the hot window
// into downsampled blocks (see downsample.go) and rewrite the on-disk
// segments so the cold range is stored once, at 1/12 the footprint.
//
// Crash safety hinges on ordering and one recovery rule. Per shard, the
// disk sequence is: write the cold segment to a temp file, fsync, rename
// it into place, then atomically rewrite (or remove) the raw segment. At
// Open, a cold block is dropped whenever any raw sealed block overlaps its
// window extent — raw wins. A crash before the cold rename leaves only a
// stray .tmp file (old raw + old cold served); a crash between the rename
// and the raw rewrite leaves the new cold block overlapping the still-full
// raw segment, so reopen drops it and serves the raw pre-state; a crash
// after the raw rewrite serves the compacted post-state. The fold never
// splits a compaction window across the hot/cold boundary (the fold prefix
// shrinks until its last window is strictly before the first remaining raw
// sample), so after a clean compaction no raw block can overlap a cold
// block and the recovery rule never discards good data.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mira/internal/obs"
)

// Compaction failpoints, nil in production. Tests set them to return an
// error at the two interesting crash points; a non-nil return aborts the
// shard's compaction after the corresponding disk step, leaving the disk
// mid-state and the in-memory store untouched.
var (
	compactFailAfterColdWrite  func(shard int) error
	compactFailAfterColdRename func(shard int) error
)

// CompactStats summarizes one Compact run.
type CompactStats struct {
	// Shards and Blocks count the shards touched and raw blocks folded.
	Shards, Blocks int
	// SourceRecords is the raw records folded; Windows the downsampled
	// windows written for them.
	SourceRecords int64
	Windows       int
	// BytesBefore/BytesAfter compare compressed payload size of the folded
	// raw blocks vs the downsampled blocks replacing them.
	BytesBefore, BytesAfter int64
}

// Reduction is the on-disk size reduction factor for the compacted range.
func (st CompactStats) Reduction() float64 {
	if st.BytesAfter == 0 {
		return 0
	}
	return float64(st.BytesBefore) / float64(st.BytesAfter)
}

// Compact folds data older than Options.Retention (measured back from the
// store's newest record) into the downsampled tier. A no-op when Retention
// is 0 or the store is empty. With a non-empty dir, on-disk segments are
// rewritten as described above; with dir == "" the compaction is
// memory-only.
func (s *Store) Compact(dir string) (CompactStats, error) {
	s.init()
	if s.opts.Retention <= 0 {
		return CompactStats{}, nil
	}
	_, last, ok := s.Bounds()
	if !ok {
		return CompactStats{}, nil
	}
	return s.CompactBefore(dir, last.Add(-s.opts.Retention))
}

// CompactBefore folds sealed blocks whose data lies entirely in compaction
// windows before cutoff. The head block never folds (it is the hot tail by
// construction), and neither does the window holding a shard's newest
// record, so appends always continue past the cold tier.
func (s *Store) CompactBefore(dir string, cutoff time.Time) (CompactStats, error) {
	s.init()
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	_, span := obs.Span(context.Background(), "tsdb.compact")
	defer span.End()
	start := time.Now()
	defer metCompactDur.ObserveSince(start)
	metCompactTotal.Inc()

	win := s.compWin
	cutN := floorDiv(cutoff.UnixNano(), win) * win
	loc := s.location()
	var st CompactStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sealed := sh.sealed[:len(sh.sealed):len(sh.sealed)]
		cold := sh.cold[:len(sh.cold):len(sh.cold)]
		hasHead := sh.head != nil && len(sh.head.times) > 0
		var headFirst int64
		if hasHead {
			headFirst = sh.head.times[0]
		}
		lastT, hasLast := sh.lastT, sh.hasLast
		sh.mu.RUnlock()
		if len(sealed) == 0 || !hasLast {
			continue
		}
		// Never fold the window containing the shard's newest record: a
		// lagging shard must keep appending into it, and an append landing
		// inside a cold window would create the raw/cold overlap the Open
		// recovery rule resolves by discarding the cold block.
		eff := cutN
		if wm := floorDiv(lastT, win) * win; wm < eff {
			eff = wm
		}
		k := 0
		for k < len(sealed) && sealed[k].maxT < eff {
			k++
		}
		// Shrink the fold prefix until its last window is strictly before
		// the first remaining raw sample's window, so no compaction window
		// straddles the hot/cold boundary.
		for k > 0 {
			lastWin := floorDiv(sealed[k-1].maxT, win)
			var nextT int64
			switch {
			case k < len(sealed):
				nextT = sealed[k].minT
			case hasHead:
				nextT = headFirst
			default:
				nextT = 0 // unreachable: the watermark guard keeps the last block hot
			}
			if floorDiv(nextT, win) <= lastWin {
				k--
				continue
			}
			break
		}
		if k == 0 {
			continue
		}
		fold := sealed[:k]
		d, err := foldBlocks(fold, s.scales, win, "")
		if err != nil {
			return st, err
		}
		if dir != "" {
			shardDir, fi := s.segPlace(dir, i)
			if shardDir != dir {
				if err := os.MkdirAll(shardDir, 0o755); err != nil {
					return st, fmt.Errorf("tsdb: compact shard %d: %w", i, err)
				}
			}
			name := filepath.Join(shardDir, coldSegFileName(fi))
			tmp := name + ".tmp"
			allCold := append(append([]*downBlock(nil), cold...), d)
			if _, err := writeColdSegment(tmp, fi, loc, allCold); err != nil {
				return st, err
			}
			if f := compactFailAfterColdWrite; f != nil {
				if err := f(i); err != nil {
					return st, err
				}
			}
			if err := os.Rename(tmp, name); err != nil {
				return st, fmt.Errorf("tsdb: compact shard %d: %w", i, err)
			}
			if f := compactFailAfterColdRename; f != nil {
				if err := f(i); err != nil {
					return st, err
				}
			}
			// Rewrite the raw segment without the folded prefix. Appends may
			// have sealed new blocks since the snapshot; they were not on
			// disk before this and will persist at the next Flush, exactly as
			// without compaction.
			rawName := filepath.Join(shardDir, segFileName(fi))
			if len(sealed) > k {
				if _, err := writeSegment(shardDir, fi, loc, sealed[k:]); err != nil {
					return st, err
				}
			} else if err := os.Remove(rawName); err != nil && !os.IsNotExist(err) {
				return st, fmt.Errorf("tsdb: compact shard %d: %w", i, err)
			}
		}
		var foldedRecords int
		var foldedBytes int64
		for _, b := range fold {
			foldedRecords += b.count
			foldedBytes += b.payloadBytes()
		}
		sh.mu.Lock()
		// Only compaction removes sealed blocks and compactMu serializes it,
		// so sh.sealed still starts with exactly the folded prefix; appends
		// can only have appended behind it.
		rest := make([]*sealedBlock, len(sh.sealed)-k)
		copy(rest, sh.sealed[k:])
		sh.sealed = rest
		sh.cold = append(sh.cold, d)
		sh.total -= foldedRecords - d.count
		sh.mu.Unlock()

		st.Shards++
		st.Blocks += k
		st.SourceRecords += int64(foldedRecords)
		st.Windows += d.count
		st.BytesBefore += foldedBytes
		st.BytesAfter += d.payloadBytes()
	}
	if dir != "" && st.Shards > 0 {
		n, err := dirSegBytes(dir)
		if err != nil {
			return st, err
		}
		s.diskBytes.Store(n)
	}
	metCompactBlocks.Add(uint64(st.Blocks))
	metCompactRecords.Add(uint64(st.SourceRecords))
	metCompactWindows.Add(uint64(st.Windows))
	if r := st.BytesBefore - st.BytesAfter; r > 0 {
		metCompactBytesReclaimed.Add(uint64(r))
	}
	return st, nil
}

// dirSegBytes sums the on-disk size of all segment files under dir,
// including hall-HH subdirectories of a fleet layout.
func dirSegBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("tsdb: compact: %w", err)
	}
	var n int64
	for _, e := range entries {
		if e.IsDir() {
			if ok, _ := filepath.Match("hall-*", e.Name()); !ok {
				continue
			}
			sub, err := dirSegBytes(filepath.Join(dir, e.Name()))
			if err != nil {
				return 0, err
			}
			n += sub
			continue
		}
		if ok, _ := filepath.Match("shard-*.seg", e.Name()); !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return 0, fmt.Errorf("tsdb: compact: %w", err)
		}
		n += info.Size()
	}
	return n, nil
}
