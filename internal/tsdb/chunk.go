package tsdb

// The batch-columnar merge: EachChunkMerged delivers the same global
// (timestamp, rack) order as EachRecordMerged, but as columnar chunks
// built a merge *round* at a time instead of one record per heap
// operation. Each round finds the minimum timestamp t0 across the shard
// streams and the next distinct timestamp after it; if one stream alone
// holds t0 it bulk-copies every record below that boundary (a whole run
// on disjoint shards), and if several streams tie at t0 — the common
// shape for tick-aligned telemetry — each emits its t0 records in rack
// order. Either way the copy is a tight per-run loop with no heap
// maintenance, which is what moves the merged scan from ~2M to >20M
// records/s on one core: the decode worker pipelines against this
// merge loop, and neither does per-record bookkeeping.

import (
	"context"
	"math"
	"strconv"
	"time"

	"mira/internal/envdb"
	"mira/internal/obs"
)

// chunkTargetRows is the fill target of one chunk: small enough that a
// chunk's columns stay cache-resident for the consumer, large enough to
// amortize the callback. Rounds are indivisible, so a chunk may overshoot
// by up to one round.
const chunkTargetRows = 4096

var (
	_ envdb.ChunkScanner        = (*Store)(nil)
	_ envdb.ContextChunkScanner = (*Store)(nil)
)

// EachChunkMerged implements envdb.ChunkScanner: the merged scan of
// EachRecordMerged delivered as reused columnar chunks. workers bounds the
// decode pool exactly as in EachRecordMerged; the chunk assembly itself is
// single-threaded, so row order is deterministic and equal to the record
// surface's visit order.
func (s *Store) EachChunkMerged(workers int, f func(*envdb.Chunk) bool) error {
	return s.EachChunkMergedWhereCtx(context.Background(), workers, nil, f)
}

// EachChunkMergedCtx implements envdb.ContextChunkScanner: the chunked
// scan as a child span of ctx's trace, with worker-side block decodes
// linked under it and the request's scan counters updated.
func (s *Store) EachChunkMergedCtx(ctx context.Context, workers int, f func(*envdb.Chunk) bool) error {
	return s.EachChunkMergedWhereCtx(ctx, workers, nil, f)
}

// EachChunkMergedWhere is EachChunkMerged with zone-map pruning: sealed
// blocks whose zones fail pred are skipped without decoding (see
// ScanShardsWhere). Rows from unpruned blocks still appear even when they
// individually fail the predicate — zones prune blocks, not rows.
func (s *Store) EachChunkMergedWhere(workers int, pred BlockPredicate, f func(*envdb.Chunk) bool) error {
	return s.EachChunkMergedWhereCtx(context.Background(), workers, pred, f)
}

// EachChunkMergedWhereCtx combines EachChunkMergedCtx and
// EachChunkMergedWhere.
func (s *Store) EachChunkMergedWhereCtx(ctx context.Context, workers int, pred BlockPredicate, f func(*envdb.Chunk) bool) error {
	ctx, span := obs.Span(ctx, "tsdb.scan_chunked")
	defer span.End()
	st := envdb.ScanStatsFrom(ctx)
	if st == nil {
		st = new(envdb.ScanStats)
		ctx = envdb.ContextWithScanStats(ctx, st)
	}
	defer func() {
		span.SetAttr("rows", strconv.FormatInt(st.Records.Load(), 10))
		span.SetAttr("blocks", strconv.FormatInt(st.BlocksDecoded.Load(), 10))
		span.SetAttr("pruned", strconv.FormatInt(st.BlocksPruned.Load(), 10))
	}()
	defer metQueryDur.With(opScanChunked).ObserveSince(time.Now())
	streams := s.ScanShardsWhereCtx(ctx, time.Unix(0, minTime), time.Unix(0, maxTime), workers, pred)
	cm := chunkMerger{streams: streams}
	if len(streams) > 0 {
		cm.pool = streams[0].pool
		cm.chunk.Loc = streams[0].loc
	}
	defer cm.close()
	for cm.fill() {
		if !f(&cm.chunk) {
			break
		}
	}
	return cm.err
}

// chunkMerger folds shard streams into columnar chunks one merge round at
// a time. Unlike MergeIter it reads eagerly — a fill may decode past a
// consumer's early stop by up to a chunk — in exchange for doing no
// per-record heap work.
type chunkMerger struct {
	pool    *scanPool
	streams []*ShardStream // as returned by ScanShards, rack-index order
	active  []*ShardStream // streams with a current run, rack-index order
	chunk   envdb.Chunk
	srcs    [][]float64 // aligned-stretch read cursors, reused across rounds
	started bool
	merged  uint64
	err     error
	closed  bool
}

// fill assembles the next chunk; false on exhaustion or error (a partial
// chunk accumulated before a decode error is discarded — the scan failed).
func (cm *chunkMerger) fill() bool {
	if cm.closed || cm.err != nil {
		return false
	}
	if !cm.started {
		cm.started = true
		// Admit every stream's first run; the waits overlap since all
		// streams were armed at ScanShards time.
		cm.active = make([]*ShardStream, 0, len(cm.streams))
		for _, st := range cm.streams {
			if st.advanceRun() {
				cm.active = append(cm.active, st)
			} else if st.err != nil {
				cm.fail(st.err)
				return false
			}
		}
	}
	c := &cm.chunk
	c.Times = c.Times[:0]
	c.Racks = c.Racks[:0]
	c.Tiers = c.Tiers[:0]
	for m := range c.Cols {
		c.Cols[m] = c.Cols[m][:0]
	}
	for len(cm.active) > 0 && len(c.Times) < chunkTargetRows {
		if !cm.round() {
			return false
		}
	}
	if len(c.Times) == 0 {
		cm.close()
		return false
	}
	cm.merged += uint64(len(c.Times))
	return true
}

// round appends one merge round to the chunk: every remaining record with
// timestamp below the round's boundary, in global (timestamp, rack) order.
// It returns false on a decode error.
func (cm *chunkMerger) round() bool {
	// One pass finds the minimum timestamp t0, how many streams tie at it,
	// the next distinct timestamp after it, and whether every t0 holder is
	// fast-lane eligible: its following record sits in the same run with a
	// later timestamp, so the stream contributes exactly one record and no
	// run advance this round.
	t0, second := int64(math.MaxInt64), int64(math.MaxInt64)
	tied := 0
	fast := true
	for _, st := range cm.active {
		run := &st.cur
		switch t := run.times[st.pos]; {
		case t < t0:
			t0, second, tied = t, t0, 1
			// Constraints recorded by holders of the old minimum no longer
			// apply: they don't tie t0 anymore.
			fast = st.pos+1 < run.hi && run.times[st.pos+1] > t
		case t == t0:
			tied++
			if st.pos+1 >= run.hi || run.times[st.pos+1] == t {
				fast = false
			}
		case t < second:
			second = t
		}
	}
	if tied > 1 && fast {
		// Tick-aligned fast lanes. When every stream ties, whole stretches
		// of rounds usually share identical timestamp sequences and can be
		// emitted in one strided pass; otherwise fall back to one indexed-
		// store round — the per-record appends of the general path spend
		// most of the merge in single-element memmoves.
		if tied == len(cm.active) && cm.roundsAligned() {
			return true
		}
		cm.emitTied(t0, tied)
		return true
	}
	// A lone minimum owns every record below the second-distinct timestamp
	// (its run, often); tied minima interleave by rack, so they each emit
	// exactly their t0 records (nanosecond timestamps: t > t0 ⇒ t ≥ t0+1).
	limit := second
	if tied > 1 {
		limit = t0 + 1
	}
	exhausted := false
	for _, st := range cm.active {
		if st.curTime() >= limit {
			continue
		}
		if !cm.emit(st, limit) {
			if st.err != nil {
				cm.fail(st.err)
				return false
			}
			exhausted = true
		}
	}
	if exhausted {
		kept := cm.active[:0]
		for _, st := range cm.active {
			if !st.done {
				kept = append(kept, st)
			}
		}
		cm.active = kept
	}
	return true
}

// roundsAligned handles the hottest merge shape — every active stream tied
// at the round minimum, tick-aligned — by emitting up to a chunk's worth of
// whole rounds in one strided pass: per stream, per column, a tight copy
// with stride len(active), instead of per-round slice-header reloads and
// minimum rescans. It returns false (emitting nothing) when the streams'
// timestamp sequences diverge immediately; the caller then falls back to
// the one-round path.
func (cm *chunkMerger) roundsAligned() bool {
	active := cm.active
	nA := len(active)
	c := &cm.chunk
	// Rounds to attempt: enough to fill the chunk to its target (rounds are
	// indivisible, so the last may overshoot — same contract as fill).
	k := (chunkTargetRows - len(c.Times) + nA - 1) / nA
	// Every stream must keep one record resident after the stretch: the
	// next round's minimum scan reads it, and stopping short of the run
	// boundary sidesteps cross-run equal-timestamp continuation entirely.
	for _, st := range active {
		if avail := st.cur.hi - st.pos - 1; avail < k {
			k = avail
		}
	}
	if k < 1 {
		return false
	}
	ref := active[0]
	rt := ref.cur.times[ref.pos:]
	// The stretch is the longest prefix that is strictly increasing on the
	// reference stream and timestamp-identical on every other; strict
	// increase means each round takes exactly one record per stream, so
	// emitting round-by-round in active (= rack) order reproduces the
	// general path's global order exactly.
	for r := 1; r < k; r++ {
		if rt[r] <= rt[r-1] {
			k = r
			break
		}
	}
	for _, st := range active[1:] {
		ts := st.cur.times[st.pos:]
		for r := 0; r < k; r++ {
			if ts[r] != rt[r] {
				k = r
				break
			}
		}
	}
	if k < 1 {
		return false
	}
	// If any stream's first record past the stretch repeats the stretch's
	// last timestamp, that record must stay adjacent to the stream's round
	// k-1 record — shrinking by one round restores strictness everywhere:
	// every stream matched rt through index k, and rt increases below k.
	for _, st := range active {
		if st.cur.times[st.pos+k] <= rt[k-1] {
			k--
			break
		}
	}
	if k < 1 {
		return false
	}
	w := len(c.Times)
	kn := k * nA
	cm.growChunk(w + kn)
	times := c.Times[w : w+kn]
	for r := 0; r < k; r++ {
		t := rt[r]
		row := times[r*nA : (r+1)*nA]
		for j := range row {
			row[j] = t
		}
	}
	// The rack and tier columns repeat one nA-wide pattern every round:
	// write it once, then double it with copy — two memmoves per power of
	// two instead of k*nA strided byte stores.
	racks := c.Racks[w : w+kn]
	tiers := c.Tiers[w : w+kn]
	for si, st := range active {
		racks[si] = st.rackCode
		tiers[si] = st.cur.tier
	}
	for f := nA; f < kn; f *= 2 {
		copy(racks[f:], racks[:f])
		copy(tiers[f:], tiers[:f])
	}
	// Value columns interleave round-major. Iterating rounds in the outer
	// loop keeps the stores sequential (consecutive cache lines) while each
	// stream's read cursor advances one element per round, so all nA source
	// lines stay resident — measurably faster than the transposed loop whose
	// stores stride nA*8 bytes and touch a fresh line each.
	if cap(cm.srcs) < nA {
		cm.srcs = make([][]float64, nA)
	}
	srcs := cm.srcs[:nA]
	for m := range c.Cols {
		for si, st := range active {
			srcs[si] = st.cur.cols[m][st.pos : st.pos+k]
		}
		col := c.Cols[m][w : w+kn]
		for r := 0; r < k; r++ {
			row := col[r*nA : r*nA+nA]
			for si := range row {
				row[si] = srcs[si][r]
			}
		}
	}
	for _, st := range active {
		st.pos += k
	}
	return true
}

// emitTied appends exactly one record from each of the `tied` streams
// sitting at t0, in active (= rack) order. Callers guarantee every such
// stream's next record stays in the same run with a later timestamp, so no
// boundary handling is needed here.
func (cm *chunkMerger) emitTied(t0 int64, tied int) {
	c := &cm.chunk
	w := len(c.Times)
	cm.growChunk(w + tied)
	times, racks, tiers := c.Times, c.Racks, c.Tiers
	for _, st := range cm.active {
		run := &st.cur
		p := st.pos
		if run.times[p] != t0 {
			continue
		}
		times[w] = t0
		racks[w] = st.rackCode
		tiers[w] = run.tier
		for m := range c.Cols {
			c.Cols[m][w] = run.cols[m][p]
		}
		st.pos = p + 1
		w++
	}
}

// growCol extends a chunk column to length w, reallocating with headroom
// only when the capacity is short.
func growCol[T any](s []T, w int) []T {
	if cap(s) >= w {
		return s[:w]
	}
	ns := make([]T, w, w+w/2)
	copy(ns, s)
	return ns
}

// growChunk extends every chunk column to length w; once the first chunk
// warms the capacities this is nine reslices.
func (cm *chunkMerger) growChunk(w int) {
	c := &cm.chunk
	c.Times = growCol(c.Times, w)
	c.Racks = growCol(c.Racks, w)
	c.Tiers = growCol(c.Tiers, w)
	for m := range c.Cols {
		c.Cols[m] = growCol(c.Cols[m], w)
	}
}

// emit bulk-copies st's records below limit into the chunk, following the
// stream across run boundaries while records keep arriving below the limit
// (a seal during ingest can split equal timestamps across two runs). It
// returns false when the stream is exhausted or failed.
func (cm *chunkMerger) emit(st *ShardStream, limit int64) bool {
	c := &cm.chunk
	rackCode := st.rackCode
	for {
		run := &st.cur
		i, hi, times := st.pos, run.hi, run.times
		for i < hi && times[i] < limit {
			i++
		}
		if n := i - st.pos; n > 0 {
			c.Times = append(c.Times, times[st.pos:i]...)
			for k := 0; k < n; k++ {
				c.Racks = append(c.Racks, rackCode)
				c.Tiers = append(c.Tiers, run.tier)
			}
			for m := range c.Cols {
				c.Cols[m] = append(c.Cols[m], run.cols[m][st.pos:i]...)
			}
			st.pos = i
		}
		if i < hi {
			return true
		}
		// Run exhausted below the limit: the next run may continue it.
		// Everything needed from this run is copied, so handing the
		// stream's buffers back (advanceRun re-arms the prefetch) is safe.
		if !st.advanceRun() {
			return false
		}
		if st.curTime() >= limit {
			return true
		}
	}
}

func (cm *chunkMerger) fail(err error) {
	cm.err = err
	cm.close()
}

// close releases the scan's worker pool; idempotent.
func (cm *chunkMerger) close() {
	if cm.closed {
		return
	}
	cm.closed = true
	metScanRecords.Add(cm.merged)
	if cm.pool != nil && cm.pool.stats != nil {
		cm.pool.stats.Records.Add(int64(cm.merged))
	}
	cm.merged = 0
	if cm.pool != nil {
		cm.pool.close()
	}
}
