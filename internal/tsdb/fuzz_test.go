package tsdb

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// fuzzSeedSegments flushes and compacts a short synthetic trace so the
// segment fuzzer starts from valid raw and cold on-disk bytes.
func fuzzSeedSegments(f *testing.F) (raw, cold []byte) {
	f.Helper()
	dir := f.TempDir()
	db := NewStoreWith(Options{Partition: 24 * time.Hour, Retention: 24 * time.Hour})
	rack := topology.RackID{Row: 1, Col: 4}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3*288; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		if err := db.Append(synthRecord(rng, rack, ts)); err != nil {
			f.Fatalf("append %d: %v", i, err)
		}
	}
	if err := db.Flush(dir); err != nil {
		f.Fatalf("flush: %v", err)
	}
	if st, err := db.Compact(dir); err != nil {
		f.Fatalf("compact: %v", err)
	} else if st.Windows == 0 {
		f.Fatalf("compaction folded nothing")
	}
	shard := rack.Index()
	raw, err := os.ReadFile(filepath.Join(dir, segFileName(shard)))
	if err != nil {
		f.Fatalf("read raw segment: %v", err)
	}
	cold, err = os.ReadFile(filepath.Join(dir, coldSegFileName(shard)))
	if err != nil {
		f.Fatalf("read cold segment: %v", err)
	}
	return raw, cold
}

// FuzzOpenSegment feeds arbitrary bytes through both segment parsers and,
// when parsing succeeds, through every block decode path. Any rejection
// must be a wrapped ErrCorrupt; nothing may panic.
func FuzzOpenSegment(f *testing.F) {
	raw, cold := fuzzSeedSegments(f)
	f.Add(raw)
	f.Add(cold)
	// The version-1 rendering of the same blocks seeds the zone-less
	// read-compat path, and an inverted first zone seeds the zone
	// validator's rejection path.
	if v1, ok := segmentV1Bytes(raw); ok {
		f.Add(v1)
	} else {
		f.Fatal("raw seed segment did not convert to v1")
	}
	{
		mut := append([]byte(nil), raw...)
		locLen := int(binary.LittleEndian.Uint16(mut[12:14]))
		z := segFileHeaderSize + locLen + segBlockHeaderSize - 4
		binary.LittleEndian.PutUint64(mut[z:], math.Float64bits(1.0))
		binary.LittleEndian.PutUint64(mut[z+8:], math.Float64bits(0.0))
		f.Add(mut)
	}
	for _, b := range [][]byte{raw, cold} {
		for _, n := range []int{0, 1, segFileHeaderSize, len(b) / 2, len(b) - 1} {
			if n >= 0 && n < len(b) {
				f.Add(b[:n])
			}
		}
		for _, off := range []int{6, segFileHeaderSize + 3, len(b) / 3, len(b) - 9} {
			if off >= 0 && off < len(b) {
				mut := append([]byte(nil), b...)
				mut[off] ^= 0x40
				f.Add(mut)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, blocks, _, err := parseSegment("shard-00.seg", data); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("parseSegment error does not wrap ErrCorrupt: %v", err)
			}
		} else {
			for _, b := range blocks {
				if _, err := b.decodeTimes(); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("decodeTimes error does not wrap ErrCorrupt: %v", err)
				}
				for m := sensors.Metric(0); m < sensors.NumMetrics; m++ {
					if _, err := b.decodeChannel(m); err != nil && !errors.Is(err, ErrCorrupt) {
						t.Fatalf("decodeChannel(%d) error does not wrap ErrCorrupt: %v", m, err)
					}
				}
			}
		}
		if _, blocks, _, err := parseColdSegment("shard-00.cold.seg", data); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("parseColdSegment error does not wrap ErrCorrupt: %v", err)
			}
		} else {
			for _, d := range blocks {
				if _, err := d.starts(); err != nil && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("starts error does not wrap ErrCorrupt: %v", err)
				}
				counts, err := d.recordCounts()
				if err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("recordCounts error does not wrap ErrCorrupt: %v", err)
					}
					continue
				}
				for m := sensors.Metric(0); m < sensors.NumMetrics; m++ {
					if _, err := d.channelAgg(m, counts); err != nil && !errors.Is(err, ErrCorrupt) {
						t.Fatalf("channelAgg(%d) error does not wrap ErrCorrupt: %v", m, err)
					}
					if _, err := d.channelMeans(m, counts); err != nil && !errors.Is(err, ErrCorrupt) {
						t.Fatalf("channelMeans(%d) error does not wrap ErrCorrupt: %v", m, err)
					}
				}
			}
		}
	})
}

// fuzzCounts rebuilds the deterministic per-window counts the down-channel
// codec needs; the seed corpus encodes against the same sequence.
func fuzzCounts(n int) []int64 {
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(i%17) + 1
	}
	return counts
}

// FuzzDecodeBlock drives the stream decoders directly with arbitrary
// payloads and value counts: they must return cleanly (value or error) on
// every input, never panic or hang.
func FuzzDecodeBlock(f *testing.F) {
	ts := make([]int64, 64)
	ints := make([]int64, 64)
	floats := make([]float64, 64)
	sums := make([]int64, 64)
	mins := make([]int64, 64)
	maxs := make([]int64, 64)
	fsums := make([]float64, 64)
	counts := fuzzCounts(64)
	rng := rand.New(rand.NewSource(9))
	for i := range ts {
		ts[i] = int64(i)*300e9 + int64(rng.Intn(3))
		ints[i] = rng.Int63n(2000) - 1000
		floats[i] = rng.NormFloat64() * 100
		mf := rng.Int63n(900) - 450
		sums[i] = mf*counts[i] + rng.Int63n(counts[i])
		mins[i] = sums[i]/counts[i] - rng.Int63n(50)
		maxs[i] = sums[i]/counts[i] + rng.Int63n(50)
		fsums[i] = floats[i] * float64(counts[i])
	}
	f.Add(uint16(64), encodeTimes(ts))
	f.Add(uint16(64), encodeInts(ints))
	f.Add(uint16(64), encodeIntsPacked(ints))
	f.Add(uint16(64), encodeXOR(floats))
	// Packed-codec structural edges: a lone all-zero group header, a
	// count spanning multiple groups, and an invalid group width (65,
	// MSB-first: 1000001 + a padding 0 bit).
	f.Add(uint16(64), []byte{0x00})
	f.Add(uint16(129), encodeIntsPacked(make([]int64, 129)))
	f.Add(uint16(64), []byte{0x82})
	f.Add(uint16(64), encodeDownChannelInts(sums, mins, maxs, counts))
	f.Add(uint16(64), encodeDownChannelFloats(fsums, append([]float64(nil), floats...), append([]float64(nil), floats...)))
	f.Add(uint16(1), []byte{0})
	f.Add(uint16(4096), []byte{})
	f.Fuzz(func(t *testing.T, n uint16, data []byte) {
		count := int(n)%4096 + 1
		if out, err := decodeTimes(data, count); err == nil && len(out) != count {
			t.Fatalf("decodeTimes returned %d values, want %d", len(out), count)
		}
		if out, err := decodeInts(data, count); err == nil && len(out) != count {
			t.Fatalf("decodeInts returned %d values, want %d", len(out), count)
		}
		if out, err := decodeIntsPacked(data, count); err == nil && len(out) != count {
			t.Fatalf("decodeIntsPacked returned %d values, want %d", len(out), count)
		}
		if out, err := decodeXOR(data, count); err == nil && len(out) != count {
			t.Fatalf("decodeXOR returned %d values, want %d", len(out), count)
		}
		if s, mn, mx, err := decodeDownInts(data, fuzzCounts(count)); err == nil {
			if len(s) != count || len(mn) != count || len(mx) != count {
				t.Fatalf("decodeDownInts returned %d/%d/%d values, want %d", len(s), len(mn), len(mx), count)
			}
		}
		if s, mn, mx, err := decodeDownFloats(data, count); err == nil {
			if len(s) != count || len(mn) != count || len(mx) != count {
				t.Fatalf("decodeDownFloats returned %d/%d/%d values, want %d", len(s), len(mn), len(mx), count)
			}
			for i := range s {
				_ = math.Abs(s[i])
			}
		}
	})
}
