package tsdb

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// fleetTicks builds n tick-major full-fleet ticks: one record per rack per
// timestamp, the frame shape a pushing client accumulates.
func fleetTicks(fleet topology.Fleet, n int) []sensors.Record {
	rng := rand.New(rand.NewSource(7))
	out := make([]sensors.Record, 0, n*fleet.NumRacks())
	for i := 0; i < n; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		for g := 0; g < fleet.NumRacks(); g++ {
			out = append(out, synthRecord(rng, fleet.RackAt(g), ts))
		}
	}
	return out
}

// dumpStore flattens everything the store yields, in EachRecord order.
func dumpStore(s *Store) []sensors.Record {
	var out []sensors.Record
	s.EachRecord(func(r sensors.Record) { out = append(out, r) })
	return out
}

// sameBits compares two records field by field on exact float64 bit
// patterns — the equivalence the batched ingest path must preserve.
func sameBits(a, b sensors.Record) bool {
	if !a.Time.Equal(b.Time) || a.Rack != b.Rack {
		return false
	}
	for _, m := range sensors.AllMetrics() {
		if math.Float64bits(a.Value(m)) != math.Float64bits(b.Value(m)) {
			return false
		}
	}
	return true
}

func requireSameDump(t *testing.T, got, want []sensors.Record, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", what, len(got), len(want))
	}
	for i := range want {
		if !sameBits(got[i], want[i]) {
			t.Fatalf("%s: record %d differs:\n got  %+v\nwant %+v", what, i, got[i], want[i])
		}
	}
}

// TestAppendTickMatchesAppend pins bit-identity between the two ingest
// paths: a store fed whole frames through AppendTick holds exactly the
// records — same quantized float64 bits, same partitions, same downsample
// selections — as a store fed one record at a time, before and after
// sealing.
func TestAppendTickMatchesAppend(t *testing.T) {
	for _, tc := range []struct {
		name  string
		opts  Options
		ticks int
	}{
		{"default", Options{Partition: 24 * time.Hour}, 30},
		{"partition-roll", Options{Partition: time.Hour}, 40}, // frames span partition seals
		{"downsample", Options{Partition: 24 * time.Hour, Downsample: 3}, 31},
		{"fleet-2-hall", Options{Partition: 24 * time.Hour, Fleet: topology.Fleet{Halls: 2, Racks: topology.NumRacks}}, 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fleet := tc.opts.Fleet.Norm()
			recs := fleetTicks(fleet, tc.ticks)
			one := NewStoreWith(tc.opts)
			for _, r := range recs {
				if err := one.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			batched := NewStoreWith(tc.opts)
			// Uneven frames: multiple ticks per AppendTick, with a ragged
			// tail, so frames cross partition and downsample boundaries.
			frame := 7 * fleet.NumRacks()
			for off := 0; off < len(recs); off += frame {
				end := off + frame
				if end > len(recs) {
					end = len(recs)
				}
				if err := batched.AppendTick(recs[off:end]); err != nil {
					t.Fatal(err)
				}
			}
			requireSameDump(t, dumpStore(batched), dumpStore(one), "pre-seal dump")
			one.SealAll()
			batched.SealAll()
			requireSameDump(t, dumpStore(batched), dumpStore(one), "post-seal dump")
		})
	}
}

// TestAppendTickAtomicOnError is the partial-batch regression pin: a batch
// that fails validation — out-of-order against the store, out-of-order
// within the batch, or a rack outside the fleet — leaves the store
// byte-identical, and a corrected batch retried afterwards is accepted in
// full.
func TestAppendTickAtomicOnError(t *testing.T) {
	fleet := topology.Fleet{}.Norm()
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	seed := fleetTicks(fleet, 2)
	if err := s.AppendTick(seed); err != nil {
		t.Fatal(err)
	}
	before := dumpStore(s)
	outOfOrderBefore := metOutOfOrder.Value()

	next := fleetTicks(fleet, 3)[2*fleet.NumRacks():] // tick 2, after the seed

	// Mid-batch record older than the rack's stored watermark.
	stale := append([]sensors.Record(nil), next...)
	stale[17].Time = base.Add(-time.Hour)
	if err := s.AppendTick(stale); err == nil || !strings.Contains(err.Error(), "out-of-order") {
		t.Fatalf("stale batch error = %v, want out-of-order", err)
	}
	// Two records for one rack in the wrong order within the batch itself.
	disordered := append([]sensors.Record(nil), next...)
	disordered = append(disordered, disordered[3])
	disordered[len(disordered)-1].Time = disordered[3].Time.Add(-timeutil.SampleInterval)
	if err := s.AppendTick(disordered); err == nil || !strings.Contains(err.Error(), "out-of-order") {
		t.Fatalf("disordered batch error = %v, want out-of-order", err)
	}
	// A rack from a hall this store is not sized for.
	foreign := append([]sensors.Record(nil), next...)
	foreign[5].Rack.Hall = 1
	if err := s.AppendTick(foreign); err == nil || !strings.Contains(err.Error(), "outside fleet") {
		t.Fatalf("foreign-rack batch error = %v, want outside fleet", err)
	}

	requireSameDump(t, dumpStore(s), before, "store after rejected batches")
	if got := metOutOfOrder.Value() - outOfOrderBefore; got != 2 {
		t.Fatalf("mira_tsdb_out_of_order_total advanced by %d, want 2", got)
	}

	// The corrected batch — same tick, valid shape — lands in full.
	if err := s.AppendTick(next); err != nil {
		t.Fatal(err)
	}
	if want := len(before) + len(next); s.Len() != want {
		t.Fatalf("store has %d records after corrected retry, want %d", s.Len(), want)
	}
}

// TestAppendTickEmpty: a zero-length batch is a no-op, not an error.
func TestAppendTickEmpty(t *testing.T) {
	s := NewStore()
	if err := s.AppendTick(nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("store has %d records after empty batch", s.Len())
	}
}

// TestAppendTickConcurrent drives concurrent batched ingest for disjoint
// halls of a fleet store (run under -race): per-shard locking must keep
// writers independent and the ascending lock order deadlock-free.
func TestAppendTickConcurrent(t *testing.T) {
	fleet := topology.Fleet{Halls: 4, Racks: topology.NumRacks}
	s := NewStoreWith(Options{Partition: 24 * time.Hour, Fleet: fleet})
	const ticks = 24
	var wg sync.WaitGroup
	errs := make([]error, fleet.Halls)
	for h := 0; h < fleet.Halls; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			hallFleet := topology.Fleet{Halls: 1, Racks: fleet.Racks}
			recs := fleetTicks(hallFleet, ticks)
			for i := range recs {
				recs[i].Rack.Hall = h
			}
			for off := 0; off < len(recs); off += 3 * fleet.Racks {
				end := off + 3*fleet.Racks
				if end > len(recs) {
					end = len(recs)
				}
				if err := s.AppendTick(recs[off:end]); err != nil {
					errs[h] = err
					return
				}
			}
		}(h)
	}
	wg.Wait()
	for h, err := range errs {
		if err != nil {
			t.Fatalf("hall %d: %v", h, err)
		}
	}
	if want := fleet.Halls * ticks * fleet.Racks; s.Len() != want {
		t.Fatalf("store has %d records, want %d", s.Len(), want)
	}
}

// TestOptionsLocation pins the explicit calendar-zone override: with
// Options.Location set, reads reconstruct instants in that zone no matter
// what zone the first appended record carried.
func TestOptionsLocation(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour, Location: timeutil.Chicago})
	rec := fleetTicks(topology.Fleet{}.Norm(), 1)[0]
	rec.Time = rec.Time.UTC()
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	got := s.Query(rec.Rack, rec.Time.Add(-time.Minute), rec.Time.Add(time.Minute))
	if len(got) != 1 {
		t.Fatalf("query returned %d records, want 1", len(got))
	}
	if name, _ := got[0].Time.Zone(); name == "UTC" {
		t.Fatalf("record came back in UTC; want the configured zone %v", timeutil.Chicago)
	}
	if loc := got[0].Time.Location(); loc != timeutil.Chicago {
		t.Fatalf("record zone = %v, want %v", loc, timeutil.Chicago)
	}
}

// TestConcurrentFirstAppend races the very first appends on a fresh store
// across goroutines (run under -race): the calendar-zone latch must be a
// single atomic publication, and every read afterwards sees one winner.
func TestConcurrentFirstAppend(t *testing.T) {
	s := NewStoreWith(Options{Partition: 24 * time.Hour})
	fleet := topology.Fleet{}.Norm()
	tick := fleetTicks(fleet, 1)
	var wg sync.WaitGroup
	errs := make([]error, len(tick))
	for i := range tick {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := tick[i]
			if i%2 == 0 {
				r.Time = r.Time.UTC() // two zones race for the latch
			}
			errs[i] = s.Append(r)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if s.Len() != len(tick) {
		t.Fatalf("store has %d records, want %d", s.Len(), len(tick))
	}
	// Whichever zone won, every record reads back in the same one.
	want := s.Query(tick[0].Rack, base.Add(-time.Hour).UTC(), base.Add(time.Hour).UTC())[0].Time.Location()
	s.EachRecord(func(r sensors.Record) {
		if r.Time.Location() != want {
			t.Fatalf("mixed calendar zones in one store: %v and %v", r.Time.Location(), want)
		}
	})
}
