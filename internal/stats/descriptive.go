// Package stats implements the statistical toolkit the paper's analyses
// rely on: descriptive statistics, quantiles, histograms, Pearson and
// Spearman correlation, ordinary-least-squares linear regression (the
// figures' red-line fits), classifier evaluation metrics, and k-fold
// cross-validation splits.
//
// The package is deliberately self-contained (stdlib only) because the
// original study leaned on Python's data-analysis ecosystem, which has no
// equivalent in the Go standard library.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty data")

// ErrLengthMismatch is returned when paired samples differ in length.
var ErrLengthMismatch = errors.New("stats: length mismatch")

// Mean returns the arithmetic mean of xs; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs; NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleVariance returns the unbiased (n-1) sample variance.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// Min returns the smallest value in xs; NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs; NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the middle value of xs (average of the two central values
// for even lengths); NaN for empty input. The input is not modified.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile of xs (q in [0,1]) using linear
// interpolation between order statistics; NaN for empty input or q outside
// [0,1]. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles computes several quantiles in one pass over a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// Summary bundles the descriptive statistics reported throughout the paper.
type Summary struct {
	N        int
	Mean     float64
	Median   float64
	StdDev   float64
	Min      float64
	Max      float64
	P05, P25 float64
	P75, P95 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Median: nan, StdDev: nan, Min: nan, Max: nan, P05: nan, P25: nan, P75: nan, P95: nan}
	}
	qs := Quantiles(xs, 0.05, 0.25, 0.5, 0.75, 0.95)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: qs[2],
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P05:    qs[0], P25: qs[1], P75: qs[3], P95: qs[4],
	}
}

// SpreadPercent returns the spread of xs as a percentage of its minimum:
// 100·(max−min)/min. The paper reports rack-to-rack variation this way
// (e.g. "flow rate varies up to 11% among the racks").
func SpreadPercent(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mn, mx := Min(xs), Max(xs)
	if mn == 0 {
		return math.Inf(1)
	}
	return 100 * (mx - mn) / mn
}

// PercentChange returns 100·(b−a)/a.
func PercentChange(a, b float64) float64 {
	if a == 0 {
		return math.Inf(1)
	}
	return 100 * (b - a) / a
}
