package stats

import (
	"math"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.999} {
		h.Add(x)
	}
	h.Add(-1)         // underflow
	h.Add(10)         // overflow (Hi exclusive)
	h.Add(math.NaN()) // counted as underflow
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.Underflow != 2 || h.Overflow != 1 {
		t.Errorf("under/over = %d/%d, want 2/1", h.Underflow, h.Overflow)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, c := range wantCounts {
		if h.Counts[i] != c {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], c)
		}
	}
}

func TestHistogramBinCenterMode(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", c)
	}
	if c := h.BinCenter(4); c != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", c)
	}
	if !math.IsNaN(h.Mode()) {
		t.Error("empty histogram Mode should be NaN")
	}
	h.Add(6.5)
	h.Add(6.9)
	h.Add(1)
	if m := h.Mode(); m != 7 {
		t.Errorf("Mode = %v, want 7", m)
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bins", func() { NewHistogram(0, 1, 0) })
	mustPanic("empty range", func() { NewHistogram(5, 5, 3) })
}

func TestRollingWindow(t *testing.T) {
	r := NewRolling(3)
	if r.Len() != 0 || r.Full() {
		t.Error("fresh window should be empty")
	}
	if !math.IsNaN(r.Oldest()) || !math.IsNaN(r.Newest()) || !math.IsNaN(r.Mean()) {
		t.Error("empty window accessors should be NaN")
	}
	r.Push(1)
	r.Push(2)
	if r.Len() != 2 || r.Full() {
		t.Errorf("Len = %d, Full = %v", r.Len(), r.Full())
	}
	if r.Oldest() != 1 || r.Newest() != 2 {
		t.Errorf("Oldest/Newest = %v/%v", r.Oldest(), r.Newest())
	}
	r.Push(3)
	if !r.Full() {
		t.Error("window should be full")
	}
	r.Push(4) // evicts 1
	vals := r.Values()
	want := []float64{2, 3, 4}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
	if r.Oldest() != 2 || r.Newest() != 4 {
		t.Errorf("after eviction Oldest/Newest = %v/%v", r.Oldest(), r.Newest())
	}
	approx(t, "Rolling.Mean", r.Mean(), 3, 1e-12)
	approx(t, "Rolling.Delta", r.Delta(), 2, 1e-12)
	if r.At(0) != 2 || r.At(2) != 4 {
		t.Errorf("At = %v/%v", r.At(0), r.At(2))
	}
	if !math.IsNaN(r.At(-1)) || !math.IsNaN(r.At(3)) {
		t.Error("out-of-range At should be NaN")
	}
}

func TestRollingDeltaShortWindow(t *testing.T) {
	r := NewRolling(5)
	if r.Delta() != 0 {
		t.Error("empty window Delta should be 0")
	}
	r.Push(7)
	if r.Delta() != 0 {
		t.Error("single-value Delta should be 0")
	}
	r.Push(9)
	approx(t, "two-value delta", r.Delta(), 2, 0)
}

func TestRollingLongSequence(t *testing.T) {
	r := NewRolling(72) // six hours of 300s samples
	for i := 0; i < 1000; i++ {
		r.Push(float64(i))
	}
	if r.Oldest() != 928 || r.Newest() != 999 {
		t.Errorf("Oldest/Newest = %v/%v, want 928/999", r.Oldest(), r.Newest())
	}
	approx(t, "long delta", r.Delta(), 71, 0)
	if len(r.Values()) != 72 {
		t.Errorf("Values len = %d", len(r.Values()))
	}
}
