package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient between
// paired samples xs and ys, in [-1, 1]. It returns an error for mismatched
// lengths or fewer than two observations, and NaN when either sample has zero
// variance.
//
// The paper uses this to quantify, e.g., the 0.45 correlation between rack
// power and rack utilization (Fig. 6) and the weak correlations between CMF
// counts and utilization (−0.21), outlet temperature (−0.06), and humidity
// (0.06) in Fig. 11.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return math.NaN(), ErrLengthMismatch
	}
	if len(xs) < 2 {
		return math.NaN(), ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN(), nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns Spearman's rank correlation coefficient: the Pearson
// correlation of the ranks of xs and ys, with ties assigned average ranks.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return math.NaN(), ErrLengthMismatch
	}
	if len(xs) < 2 {
		return math.NaN(), ErrEmpty
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based ranks of xs, assigning tied values their average
// rank (fractional ranks).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// LinearFit is an ordinary-least-squares straight-line fit y = Intercept +
// Slope·x, the "red line" drawn through the yearly trends in Fig. 2.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// FitLine computes the OLS fit of ys against xs. It returns an error for
// mismatched lengths or fewer than two points, and a zero-slope fit when xs
// has no variance.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrLengthMismatch
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Slope: 0, Intercept: my, R2: 0}, nil
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		// R² = 1 − SSR/SST for OLS equals (sxy²)/(sxx·syy).
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Intercept + f.Slope*x }
