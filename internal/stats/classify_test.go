package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 90, FP: 10, TN: 85, FN: 15}
	approx(t, "Accuracy", c.Accuracy(), 0.875, 1e-12)
	approx(t, "Precision", c.Precision(), 0.9, 1e-12)
	approx(t, "Recall", c.Recall(), 90.0/105.0, 1e-12)
	approx(t, "FPR", c.FalsePositiveRate(), 10.0/95.0, 1e-12)
	p, r := c.Precision(), c.Recall()
	approx(t, "F1", c.F1(), 2*p*r/(p+r), 1e-12)
	if c.Total() != 200 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestConfusionObserve(t *testing.T) {
	var c Confusion
	c.Observe(true, true)
	c.Observe(true, false)
	c.Observe(false, true)
	c.Observe(false, false)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Errorf("Observe wiring wrong: %+v", c)
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Add(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestConfusionEmptyNaN(t *testing.T) {
	var c Confusion
	if !math.IsNaN(c.Accuracy()) || !math.IsNaN(c.Precision()) ||
		!math.IsNaN(c.Recall()) || !math.IsNaN(c.F1()) || !math.IsNaN(c.FalsePositiveRate()) {
		t.Error("empty confusion metrics should be NaN")
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, TN: 1}
	s := c.String()
	if !strings.Contains(s, "acc=1.000") || !strings.Contains(s, "n=2") {
		t.Errorf("String = %q", s)
	}
}

func TestKFoldPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	folds := KFold(103, 5, rng)
	if len(folds) != 5 {
		t.Fatalf("fold count = %d", len(folds))
	}
	seen := make(map[int]bool)
	for _, f := range folds {
		if len(f) < 20 || len(f) > 21 {
			t.Errorf("fold size %d should be 20 or 21", len(f))
		}
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 103 {
		t.Errorf("covered %d indices, want 103", len(seen))
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFold(50, 5, rand.New(rand.NewSource(1)))
	b := KFold(50, 5, rand.New(rand.NewSource(1)))
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("non-deterministic folds")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("non-deterministic folds")
			}
		}
	}
}

func TestKFoldPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, k int }{{10, 1}, {3, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KFold(%d,%d) should panic", tc.n, tc.k)
				}
			}()
			KFold(tc.n, tc.k, rng)
		}()
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train, test := TrainTestSplit(100, 0.2, rng)
	if len(test) != 20 || len(train) != 80 {
		t.Errorf("split sizes = %d/%d, want 80/20", len(train), len(test))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d duplicated", i)
		}
		seen[i] = true
	}
	// Clamping.
	tr, te := TrainTestSplit(10, -0.5, rng)
	if len(te) != 0 || len(tr) != 10 {
		t.Error("negative fraction should clamp to 0")
	}
	tr, te = TrainTestSplit(10, 1.5, rng)
	if len(te) != 10 || len(tr) != 0 {
		t.Error("fraction > 1 should clamp to 1")
	}
}
