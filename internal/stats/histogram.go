package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside the
// range are counted in the under/overflow counters rather than dropped, so
// totals remain meaningful.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram creates a histogram with n equal-width bins spanning [lo, hi).
// It panics if n <= 0 or hi <= lo, which indicate programmer error.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: histogram bins must be positive, got %d", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%g, %g) is empty", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case math.IsNaN(x):
		h.Underflow++ // treat NaN as unclassifiable
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard FP edge at x just below Hi
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Mode returns the center of the most populated bin; NaN if empty.
func (h *Histogram) Mode() float64 {
	best, bestCount := -1, -1
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if bestCount <= 0 {
		return math.NaN()
	}
	return h.BinCenter(best)
}

// Rolling maintains summary statistics over a sliding window of the last
// Size observations, used for the trailing-window feature extraction in the
// CMF predictor and for streaming anomaly detection.
type Rolling struct {
	size int
	buf  []float64
	head int
	full bool
}

// NewRolling creates a rolling window of the given size (must be positive).
func NewRolling(size int) *Rolling {
	if size <= 0 {
		panic(fmt.Sprintf("stats: rolling window size must be positive, got %d", size))
	}
	return &Rolling{size: size, buf: make([]float64, size)}
}

// Push appends an observation, evicting the oldest once the window is full.
func (r *Rolling) Push(x float64) {
	r.buf[r.head] = x
	r.head = (r.head + 1) % r.size
	if r.head == 0 {
		r.full = true
	}
}

// Len returns the number of observations currently in the window.
func (r *Rolling) Len() int {
	if r.full {
		return r.size
	}
	return r.head
}

// Full reports whether the window has reached capacity.
func (r *Rolling) Full() bool { return r.full }

// Values returns the window contents in insertion order (oldest first).
func (r *Rolling) Values() []float64 {
	n := r.Len()
	out := make([]float64, 0, n)
	if r.full {
		out = append(out, r.buf[r.head:]...)
		out = append(out, r.buf[:r.head]...)
		return out
	}
	return append(out, r.buf[:r.head]...)
}

// Oldest returns the oldest value in the window; NaN if empty.
func (r *Rolling) Oldest() float64 {
	if r.Len() == 0 {
		return math.NaN()
	}
	if r.full {
		return r.buf[r.head]
	}
	return r.buf[0]
}

// Newest returns the most recently pushed value; NaN if empty.
func (r *Rolling) Newest() float64 {
	if r.Len() == 0 {
		return math.NaN()
	}
	idx := r.head - 1
	if idx < 0 {
		idx = r.size - 1
	}
	return r.buf[idx]
}

// At returns the value at offset i from the oldest entry (0 = oldest).
// It returns NaN when i is out of range.
func (r *Rolling) At(i int) float64 {
	if i < 0 || i >= r.Len() {
		return math.NaN()
	}
	if r.full {
		return r.buf[(r.head+i)%r.size]
	}
	return r.buf[i]
}

// Mean returns the mean of the window contents; NaN if empty.
func (r *Rolling) Mean() float64 {
	n := r.Len()
	if n == 0 {
		return math.NaN()
	}
	var s float64
	for i := 0; i < n; i++ {
		s += r.At(i)
	}
	return s / float64(n)
}

// Delta returns newest − oldest: the change across the window, the key
// feature family for CMF prediction (the paper: "not only the level of
// cooling metrics, but more importantly the change in their values").
func (r *Rolling) Delta() float64 {
	if r.Len() < 2 {
		return 0
	}
	return r.Newest() - r.Oldest()
}
