package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-12)
	approx(t, "Median", Median(xs), 4.5, 1e-12)
	approx(t, "Median odd", Median([]float64{3, 1, 2}), 2, 1e-12)
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Variance", Variance(xs), 4, 1e-12)
	approx(t, "StdDev", StdDev(xs), 2, 1e-12)
	approx(t, "SampleVariance", SampleVariance(xs), 32.0/7.0, 1e-12)
	if !math.IsNaN(SampleVariance([]float64{1})) {
		t.Error("SampleVariance of one point should be NaN")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	approx(t, "Min", Min(xs), -1, 0)
	approx(t, "Max", Max(xs), 7, 0)
	approx(t, "Sum", Sum(xs), 11, 0)
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, "Q0", Quantile(xs, 0), 1, 1e-12)
	approx(t, "Q1", Quantile(xs, 1), 5, 1e-12)
	approx(t, "Q0.5", Quantile(xs, 0.5), 3, 1e-12)
	approx(t, "Q0.25", Quantile(xs, 0.25), 2, 1e-12)
	approx(t, "Q0.1", Quantile(xs, 0.1), 1.4, 1e-12)
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("out-of-range q should give NaN")
	}
	if !math.IsNaN(Quantile([]float64{}, 0.5)) {
		t.Error("empty input should give NaN")
	}
	approx(t, "single", Quantile([]float64{42}, 0.73), 42, 0)
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	_ = Quantile(xs, 0.5)
	want := []float64{5, 1, 4, 2, 3}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Quantile mutated input: %v", xs)
		}
	}
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := Quantiles(xs, 0, 0.5, 1, 2)
	approx(t, "batch q0", got[0], 1, 1e-12)
	approx(t, "batch q.5", got[1], 3, 1e-12)
	approx(t, "batch q1", got[2], 5, 1e-12)
	if !math.IsNaN(got[3]) {
		t.Error("invalid q in batch should be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	f := func(a, b float64) bool {
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 {
		t.Errorf("N = %d", s.N)
	}
	approx(t, "Summary.Mean", s.Mean, 50, 1e-9)
	approx(t, "Summary.Median", s.Median, 50, 1e-9)
	approx(t, "Summary.Min", s.Min, 0, 0)
	approx(t, "Summary.Max", s.Max, 100, 0)
	approx(t, "Summary.P25", s.P25, 25, 1e-9)
	approx(t, "Summary.P95", s.P95, 95, 1e-9)
	empty := Summarize(nil)
	if !math.IsNaN(empty.Mean) || empty.N != 0 {
		t.Error("empty summary should be NaN/0")
	}
}

func TestSpreadPercent(t *testing.T) {
	// 26 GPM min, 28.86 GPM max → 11% spread, the Fig. 7 flow variation.
	approx(t, "SpreadPercent", SpreadPercent([]float64{26, 27, 28.86}), 11, 0.01)
	if !math.IsInf(SpreadPercent([]float64{0, 5}), 1) {
		t.Error("zero min should give +Inf")
	}
	if !math.IsNaN(SpreadPercent(nil)) {
		t.Error("empty should be NaN")
	}
}

func TestPercentChange(t *testing.T) {
	approx(t, "PercentChange", PercentChange(2.5, 2.9), 16, 1e-9)
	approx(t, "PercentChange down", PercentChange(64, 59.52), -7, 1e-9)
	if !math.IsInf(PercentChange(0, 1), 1) {
		t.Error("zero base should give +Inf")
	}
}
