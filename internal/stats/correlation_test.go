package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Pearson perfect +", r, 1, 1e-12)

	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Pearson perfect -", r, -1, 1e-12)
}

func TestPearsonIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.03 {
		t.Errorf("independent Pearson = %v, want ≈0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	r, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3})
	if err != nil || !math.IsNaN(r) {
		t.Errorf("zero-variance Pearson = %v, %v; want NaN, nil", r, err)
	}
}

func TestPearsonInvariantToAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = xs[i] + 0.3*rng.NormFloat64()
	}
	r1, _ := Pearson(xs, ys)
	scaled := make([]float64, len(xs))
	for i, x := range xs {
		scaled[i] = 100*x - 40
	}
	r2, _ := Pearson(scaled, ys)
	approx(t, "affine invariance", r2, r1, 1e-9)
}

func TestSpearmanMonotone(t *testing.T) {
	// Monotone nonlinear relation: Spearman = 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	rs, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Spearman monotone", rs, 1, 1e-12)
	rp, _ := Pearson(xs, ys)
	if rp >= rs {
		t.Errorf("Pearson %v should be below Spearman %v for convex monotone", rp, rs)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 5 + 2x
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Slope", fit.Slope, 2, 1e-12)
	approx(t, "Intercept", fit.Intercept, 5, 1e-12)
	approx(t, "R2", fit.R2, 1, 1e-12)
	approx(t, "At(10)", fit.At(10), 25, 1e-12)
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Mira-like: power rises 2.5 → 2.9 MW over six years.
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		frac := float64(i) / float64(n-1)
		xs[i] = 2014 + 6*frac
		ys[i] = 2.5 + 0.4*frac + 0.08*rng.NormFloat64()
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "noisy slope", fit.Slope, 0.4/6, 0.01)
	if fit.Slope <= 0 {
		t.Error("trend should be rising")
	}
	if fit.R2 <= 0.3 || fit.R2 > 1 {
		t.Errorf("R2 = %v out of plausible range", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	fit, err := FitLine([]float64{2, 2, 2}, []float64{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "constant-x slope", fit.Slope, 0, 0)
	approx(t, "constant-x intercept", fit.Intercept, 5, 1e-12)
}
