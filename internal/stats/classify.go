package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Confusion is a binary-classification confusion matrix. The positive class
// is "a CMF will occur within the horizon" in the paper's predictor.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one prediction/label pair.
func (c *Confusion) Observe(predictedPositive, actuallyPositive bool) {
	switch {
	case predictedPositive && actuallyPositive:
		c.TP++
	case predictedPositive && !actuallyPositive:
		c.FP++
	case !predictedPositive && actuallyPositive:
		c.FN++
	default:
		c.TN++
	}
}

// Add accumulates another confusion matrix into c (used to merge the
// per-fold matrices of cross-validation).
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total returns the number of observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is the ratio of correct predictions to total predictions.
func (c Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return math.NaN()
	}
	return float64(c.TP+c.TN) / float64(n)
}

// Precision is TP / (TP + FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate is FP / (FP + TN), the metric the paper highlights for
// proactive-mitigation cost (6% at six hours, 1.2% at 30 minutes).
func (c Confusion) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return math.NaN()
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

func (c Confusion) String() string {
	return fmt.Sprintf("acc=%.3f prec=%.3f rec=%.3f f1=%.3f fpr=%.3f (n=%d)",
		c.Accuracy(), c.Precision(), c.Recall(), c.F1(), c.FalsePositiveRate(), c.Total())
}

// KFold produces k disjoint folds of the indices [0, n) after a seeded
// shuffle, for the paper's 5-fold cross-validation. Folds differ in size by
// at most one element. It panics if k <= 1 or n < k (programmer error: a
// fold would be empty).
func KFold(n, k int, rng *rand.Rand) [][]int {
	if k <= 1 {
		panic(fmt.Sprintf("stats: KFold needs k > 1, got %d", k))
	}
	if n < k {
		panic(fmt.Sprintf("stats: KFold needs n >= k, got n=%d k=%d", n, k))
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	folds := make([][]int, k)
	for i, v := range idx {
		folds[i%k] = append(folds[i%k], v)
	}
	return folds
}

// TrainTestSplit partitions indices [0, n) into a train and test set with
// the given test fraction after a seeded shuffle.
func TrainTestSplit(n int, testFrac float64, rng *rand.Rand) (train, test []int) {
	if testFrac < 0 {
		testFrac = 0
	}
	if testFrac > 1 {
		testFrac = 1
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(math.Round(float64(n) * testFrac))
	return idx[cut:], idx[:cut]
}
