package airflow

import (
	"testing"

	"mira/internal/stats"
	"mira/internal/topology"
	"mira/internal/units"
)

func TestScoresInRange(t *testing.T) {
	f := NewField(1)
	for _, r := range topology.AllRacks() {
		s := f.Score(r)
		if s <= 0 || s > 1 {
			t.Errorf("score(%v) = %v out of (0,1]", r, s)
		}
	}
}

func TestRowEndsHaveLowerAirflow(t *testing.T) {
	f := NewField(2)
	for row := 0; row < topology.Rows; row++ {
		end := f.Score(topology.RackID{Row: row, Col: 0})
		center := f.Score(topology.RackID{Row: row, Col: 7})
		if row == 1 {
			// Column 8 of row 1 is the hotspot; use column 7 as center,
			// still fine. Column 0 must be below center regardless.
			_ = center
		}
		if end >= center {
			t.Errorf("row %d: end score %v should be below center %v", row, end, center)
		}
	}
}

func TestHotspotRack(t *testing.T) {
	f := NewField(3)
	if s := f.Score(topology.HumidityHotspot); s > 0.35 {
		t.Errorf("hotspot score = %v, want <= 0.35", s)
	}
	// Hotspot is more humid than its neighbors despite low airflow.
	base := units.RelativeHumidity(32)
	hot := f.RackHumidity(base, topology.HumidityHotspot)
	neighbor := f.RackHumidity(base, topology.RackID{Row: 1, Col: 7})
	if hot <= neighbor {
		t.Errorf("hotspot humidity %v should exceed neighbor %v", hot, neighbor)
	}
}

func TestRowEndsDrierAndWarmer(t *testing.T) {
	f := NewField(4)
	baseT := units.Fahrenheit(80)
	baseRH := units.RelativeHumidity(32)
	end := topology.RackID{Row: 0, Col: 15}
	center := topology.RackID{Row: 0, Col: 7}
	if f.RackTemperature(baseT, end) <= f.RackTemperature(baseT, center) {
		t.Error("row-end rack should be warmer")
	}
	if f.RackHumidity(baseRH, end) >= f.RackHumidity(baseRH, center) {
		t.Error("row-end rack should be drier")
	}
}

func TestSpreadMatchesPaper(t *testing.T) {
	f := NewField(5)
	baseT := units.Fahrenheit(80)
	baseRH := units.RelativeHumidity(32)
	var temps, rhs []float64
	for _, r := range topology.AllRacks() {
		temps = append(temps, float64(f.RackTemperature(baseT, r)))
		rhs = append(rhs, float64(f.RackHumidity(baseRH, r)))
	}
	// Paper: temperature differs by up to 11%, humidity by up to 36%.
	tSpread := stats.SpreadPercent(temps)
	if tSpread < 4 || tSpread > 13 {
		t.Errorf("temperature spread = %v%%, want ≈8-11%%", tSpread)
	}
	hSpread := stats.SpreadPercent(rhs)
	if hSpread < 25 || hSpread > 42 {
		t.Errorf("humidity spread = %v%%, want ≈36%%", hSpread)
	}
	// The hotspot is the most humid rack on the floor.
	hot := float64(f.RackHumidity(baseRH, topology.HumidityHotspot))
	if hot < stats.Max(rhs) {
		t.Errorf("hotspot humidity %v should be the maximum %v", hot, stats.Max(rhs))
	}
}

func TestHumidityClamped(t *testing.T) {
	f := NewField(6)
	rh := f.RackHumidity(98, topology.HumidityHotspot)
	if rh > 100 {
		t.Errorf("humidity %v exceeds 100", rh)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := NewField(7), NewField(7)
	for _, r := range topology.AllRacks() {
		if a.Score(r) != b.Score(r) {
			t.Fatal("field should be deterministic")
		}
	}
}
