// Package airflow models the underfloor airflow field beneath Mira's three
// rack rows and its effect on per-rack ambient conditions. The paper's §V
// findings it reproduces: airflow is significantly lower near the ends of
// each row (obstructive surfaces), making those racks drier and warmer;
// localized obstructions (plumbing pipes, air-cooling vents, torus cables)
// create additional anomalies, most prominently the humidity hotspot at rack
// (1,8); rack-to-rack differences reach ≈36% for humidity and ≈11% for
// temperature.
package airflow

import (
	"math/rand"

	"mira/internal/topology"
	"mira/internal/units"
)

// Field is the static per-rack airflow characterization of the machine
// floor. It is built once per simulation from the obstruction layout.
type Field struct {
	score [topology.NumRacks]float64 // 0 = fully obstructed, 1 = free flow
}

// NewField builds the airflow field. The seed shapes the random component of
// the obstruction map; the row-end effect and the rack (1,8) hotspot are
// structural.
func NewField(seed int64) *Field {
	rng := rand.New(rand.NewSource(seed))
	f := &Field{}
	for i := range f.score {
		r := topology.RackByIndex(i)
		score := 1.0
		// Row ends: the last three-four racks on either side of each row
		// sit behind obstructive surfaces; airflow tapers toward the ends.
		if d := r.DistanceFromRowEnd(); d < 4 {
			score -= 0.38 * (1 - float64(d)/4)
		}
		// Scattered under-floor obstructions: pipes, vents, cable trays.
		score -= 0.10 * rng.Float64()
		if score < 0.2 {
			score = 0.2
		}
		f.score[i] = score
	}
	// Rack (1,8): airflow-blocking plumbing and torus cabling right under
	// the center of row 1 trap humid air — the paper's localized hotspot.
	f.score[topology.HumidityHotspot.Index()] = 0.30
	return f
}

// Score returns the airflow score of a rack in (0, 1].
func (f *Field) Score(r topology.RackID) float64 { return f.score[r.Index()] }

// Row-end racks are drier (obstructions keep the moist supply air away) yet
// warmer (less heat is carried off). Rack (1,8) behaves differently: its
// obstructions trap moist air rather than blocking supply, so low airflow
// there raises humidity. The hotspot flag keeps the two cases apart.

// RackTemperature maps the room-level ambient temperature to the rack-local
// value: low-airflow racks run warmer. The offsets span ≈8°F, which against
// a ≈76–82°F base reproduces the paper's ≤11% rack-to-rack temperature
// difference.
func (f *Field) RackTemperature(base units.Fahrenheit, r topology.RackID) units.Fahrenheit {
	score := f.score[r.Index()]
	return base + units.Fahrenheit(8.0*(1-score))
}

// RackHumidity maps the room-level humidity to the rack-local value.
// Ordinary low-airflow racks (row ends) are drier; the (1,8) hotspot traps
// moisture and reads wetter. Factors span ≈0.78–1.10, reproducing the
// paper's ≤36% rack-to-rack humidity difference.
func (f *Field) RackHumidity(base units.RelativeHumidity, r topology.RackID) units.RelativeHumidity {
	score := f.score[r.Index()]
	var factor float64
	if r == topology.HumidityHotspot {
		factor = 1.10
	} else {
		// score 1 → 1.02; score 0.52 (row end) → 0.81.
		factor = 0.58 + 0.44*score
	}
	return units.RelativeHumidity(float64(base) * factor).Clamp()
}
