package analysis

import (
	"time"

	"mira/internal/cooling"
	"mira/internal/stats"
	"mira/internal/timeutil"
	"mira/internal/units"
	"mira/internal/weather"
)

// Efficiency summarizes the facility's energy picture — the "Efficiency
// Measures" of the paper's title: monthly PUE, the winter benefit of the
// waterside economizer, and the cooling energy avoided per year.
type Efficiency struct {
	// Month keys 1..12 with the mean PUE of each month.
	Month []int
	PUE   []float64
	// MeanPUE across the year.
	MeanPUE float64
	// WinterPUE and SummerPUE are the Dec–Mar and Jun–Sep means; free
	// cooling makes winter cheaper.
	WinterPUE, SummerPUE float64
	// CoolingEnergyKWh is the annual plant energy.
	CoolingEnergyKWh float64
	// EconomizerSavingsKWh is the annual energy the economizer displaced.
	EconomizerSavingsKWh float64
}

// EfficiencyStudy walks one reference year hour by hour: IT power comes
// from the collector's monthly profile, plant power from the cooling model
// against the weather. PUE = (IT + plant) / IT.
func (c *Collector) EfficiencyStudy(seed int64, year int) Efficiency {
	defer c.timed("efficiency_study")()
	wx := weather.New(seed)
	plant := cooling.NewPlant(wx, seed+1)

	monthIT := make(map[int]float64) // MW by month
	keys, means := c.powerByMon.Means()
	for i, k := range keys {
		monthIT[k] = means[i]
	}

	var out Efficiency
	var pueSum [13]float64
	var pueN [13]int
	var coolingKWh, chillerOnlyKWh float64
	start := time.Date(year, 1, 1, 0, 0, 0, 0, timeutil.Chicago)
	for ts := start; ts.Before(start.AddDate(1, 0, 0)); ts = ts.Add(time.Hour) {
		m := int(ts.Month())
		itMW, ok := monthIT[m]
		if !ok || itMW <= 0 {
			continue
		}
		it := units.MW(itMW)
		heat := units.Watts(float64(it) * 0.9)
		plantPower := plant.Power(heat, ts)
		pue := (float64(it) + float64(plantPower)) / float64(it)
		pueSum[m] += pue
		pueN[m]++
		coolingKWh += plantPower.Kilowatts()
		chillerOnly := units.Watts(float64(heat)/cooling.ChillerCOP) + cooling.PumpTowerPower
		chillerOnlyKWh += chillerOnly.Kilowatts()
	}
	var winter, summer []float64
	for m := 1; m <= 12; m++ {
		if pueN[m] == 0 {
			continue
		}
		pue := pueSum[m] / float64(pueN[m])
		out.Month = append(out.Month, m)
		out.PUE = append(out.PUE, pue)
		switch {
		case m == 12 || m <= 3:
			winter = append(winter, pue)
		case m >= 6 && m <= 9:
			summer = append(summer, pue)
		}
	}
	out.MeanPUE = stats.Mean(out.PUE)
	out.WinterPUE = stats.Mean(winter)
	out.SummerPUE = stats.Mean(summer)
	out.CoolingEnergyKWh = coolingKWh
	out.EconomizerSavingsKWh = chillerOnlyKWh - coolingKWh
	return out
}
