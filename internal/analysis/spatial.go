package analysis

import (
	"mira/internal/stats"
	"mira/internal/topology"
)

// RackPowerUtil is Fig. 6: per-rack mean power and utilization, their
// spread, the extremal racks, and the power-utilization correlation (paper:
// ≈0.45; highest power at (0,D), highest utilization at (0,A), row 0
// leading both).
type RackPowerUtil struct {
	PowerKW        []float64 // indexed by rack dense index
	UtilPct        []float64
	PowerSpreadPct float64
	UtilSpreadPct  float64
	Correlation    float64
	MaxPowerRack   topology.RackID
	MaxUtilRack    topology.RackID
	// RowPowerKW and RowUtilPct are the row-level means.
	RowPowerKW [topology.Rows]float64
	RowUtilPct [topology.Rows]float64
}

// Fig6RackPowerUtil computes the Fig. 6 panels.
func (c *Collector) Fig6RackPowerUtil() RackPowerUtil {
	defer c.timed("fig6_rack_power_util")()
	power := rackMeans(&c.rackPower)
	for i := range power {
		power[i] /= 1000 // W → kW
	}
	util := rackMeans(&c.rackUtil)
	out := RackPowerUtil{
		PowerKW:        power,
		UtilPct:        util,
		PowerSpreadPct: stats.SpreadPercent(power),
		UtilSpreadPct:  stats.SpreadPercent(util),
	}
	if r, err := stats.Pearson(power, util); err == nil {
		out.Correlation = r
	}
	out.MaxPowerRack = argmaxRack(power)
	out.MaxUtilRack = argmaxRack(util)
	for row := 0; row < topology.Rows; row++ {
		var p, u float64
		for _, rk := range topology.RowRacks(row) {
			p += power[rk.Index()]
			u += util[rk.Index()]
		}
		out.RowPowerKW[row] = p / topology.ColsPerRow
		out.RowUtilPct[row] = u / topology.ColsPerRow
	}
	return out
}

// RackCoolant is Fig. 7: per-rack coolant flow, inlet, and outlet with
// their spreads (paper: ≤11% flow, ≈1% inlet, ≤3% outlet).
type RackCoolant struct {
	FlowGPM []float64
	InletF  []float64
	OutletF []float64

	FlowSpreadPct   float64
	InletSpreadPct  float64
	OutletSpreadPct float64
}

// Fig7RackCoolant computes the Fig. 7 panels.
func (c *Collector) Fig7RackCoolant() RackCoolant {
	defer c.timed("fig7_rack_coolant")()
	flow := rackMeans(&c.rackFlow)
	inlet := rackMeans(&c.rackInlet)
	outlet := rackMeans(&c.rackOutlet)
	return RackCoolant{
		FlowGPM: flow, InletF: inlet, OutletF: outlet,
		FlowSpreadPct:   stats.SpreadPercent(flow),
		InletSpreadPct:  stats.SpreadPercent(inlet),
		OutletSpreadPct: stats.SpreadPercent(outlet),
	}
}

// RackAmbient is Fig. 9: per-rack ambient temperature and humidity with
// spreads (paper: ≤11% temperature, ≤36% humidity) and the hotspot/row-end
// structure.
type RackAmbient struct {
	TempF      []float64
	HumidityRH []float64

	TempSpreadPct float64
	HumSpreadPct  float64
	// MaxHumidityRack should be the (1,8) hotspot.
	MaxHumidityRack topology.RackID
	// RowEndTempExcess is the mean temperature of the outer three racks of
	// each row minus the inner racks (positive: ends run warmer).
	RowEndTempExcess float64
	// RowEndHumidityDeficit is inner minus outer humidity (positive: ends
	// run drier).
	RowEndHumidityDeficit float64
}

// Fig9RackAmbient computes the Fig. 9 panels.
func (c *Collector) Fig9RackAmbient() RackAmbient {
	defer c.timed("fig9_rack_ambient")()
	return ambientFromMeans(rackMeans(&c.rackTemp), rackMeans(&c.rackHum))
}

func argmaxRack(vals []float64) topology.RackID {
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return topology.RackByIndex(best)
}
