package analysis

import (
	"context"
	"time"

	"mira/internal/obs"
)

// metFigDur records how long each figure's aggregation takes, labeled by
// figure, so slow panels stand out on /metrics and in RunReports.
var metFigDur = obs.NewHistogramVec("mira_analysis_figure_duration_seconds",
	"wall-clock time to compute one figure's aggregates, labeled by figure", "figure", nil)

// timed starts the figure clock; defer the returned func:
//
//	defer timed("fig9_rack_ambient")()
func timed(figure string) func() {
	start := time.Now()
	return func() { metFigDur.With(figure).ObserveSince(start) }
}

// timed on a Collector is the package-level timed plus a tracing span named
// "analysis."+figure. Figures computed after an offline replay become
// children of the replay's trace (the Collector holds the analysis.replay
// span context); a Collector fed live by the simulator has no replay trace,
// so its figures trace as sampled roots.
func (c *Collector) timed(figure string) func() {
	stop := timed(figure)
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	_, span := obs.Span(ctx, "analysis."+figure)
	return func() {
		span.End()
		stop()
	}
}
