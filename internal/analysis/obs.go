package analysis

import (
	"time"

	"mira/internal/obs"
)

// metFigDur records how long each figure's aggregation takes, labeled by
// figure, so slow panels stand out on /metrics and in RunReports.
var metFigDur = obs.NewHistogramVec("mira_analysis_figure_duration_seconds",
	"wall-clock time to compute one figure's aggregates, labeled by figure", "figure", nil)

// timed starts the figure clock; defer the returned func:
//
//	defer timed("fig9_rack_ambient")()
func timed(figure string) func() {
	start := time.Now()
	return func() { metFigDur.With(figure).ObserveSince(start) }
}
