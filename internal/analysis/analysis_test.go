package analysis

import (
	"math"
	"sync"
	"testing"
	"time"

	"mira/internal/sim"
	"mira/internal/topology"
)

// fullRun executes the entire 2014–2019 production window once per test
// binary at a 15-minute step and caches the results for every figure test.
var fullRun = struct {
	once sync.Once
	c    *Collector
	win  *sim.IncidentWindowRecorder
	s    *sim.Simulator
	err  error
}{}

const fullStep = 15 * time.Minute

func fullSim(t *testing.T) (*Collector, *sim.IncidentWindowRecorder, *sim.Simulator) {
	t.Helper()
	if testing.Short() {
		t.Skip("full six-year reproduction skipped in -short mode")
	}
	fullRun.once.Do(func() {
		windowTicks := int((6 * time.Hour) / fullStep)
		fullRun.c = NewCollector()
		fullRun.win = sim.NewIncidentWindowRecorder(windowTicks, 200, 4000)
		fullRun.s = sim.New(sim.Config{Seed: 42, Step: fullStep})
		fullRun.s.AddRecorder(fullRun.c)
		fullRun.s.AddRecorder(fullRun.win)
		fullRun.err = fullRun.s.Run()
		fullRun.c.Finalize()
	})
	if fullRun.err != nil {
		t.Fatal(fullRun.err)
	}
	return fullRun.c, fullRun.win, fullRun.s
}

func TestFig2YearlyTrend(t *testing.T) {
	c, _, _ := fullSim(t)
	fig := c.Fig2YearlyTrend()
	if len(fig.YearMonth) != 72 {
		t.Fatalf("months = %d, want 72", len(fig.YearMonth))
	}
	// Paper: power ≈2.5 → ≈2.9 MW, rising fit.
	if fig.PowerFit.Slope <= 0 {
		t.Error("power trend should rise")
	}
	if fig.PowerStartMW < 2.3 || fig.PowerStartMW > 2.7 {
		t.Errorf("2014 fitted power = %v MW, want ≈2.5", fig.PowerStartMW)
	}
	if fig.PowerEndMW < 2.7 || fig.PowerEndMW > 3.1 {
		t.Errorf("2019 fitted power = %v MW, want ≈2.9", fig.PowerEndMW)
	}
	// Paper: utilization ≈80% → ≈93%, rising fit.
	if fig.UtilFit.Slope <= 0 {
		t.Error("utilization trend should rise")
	}
	if fig.UtilStartPct < 74 || fig.UtilStartPct > 86 {
		t.Errorf("2014 fitted utilization = %v%%, want ≈80%%", fig.UtilStartPct)
	}
	if fig.UtilEndPct < 87 || fig.UtilEndPct > 97 {
		t.Errorf("2019 fitted utilization = %v%%, want ≈93%%", fig.UtilEndPct)
	}
}

func TestFig3CoolantTimeline(t *testing.T) {
	c, _, _ := fullSim(t)
	fig := c.Fig3CoolantTimeline()
	// Theta step: ≈1250 → ≈1300 GPM.
	if fig.FlowBeforeTheta < 1220 || fig.FlowBeforeTheta > 1270 {
		t.Errorf("pre-Theta flow = %v, want ≈1250", fig.FlowBeforeTheta)
	}
	if fig.FlowAfterTheta < 1280 || fig.FlowAfterTheta > 1330 {
		t.Errorf("post-Theta flow = %v, want ≈1300", fig.FlowAfterTheta)
	}
	if fig.FlowAfterTheta-fig.FlowBeforeTheta < 30 {
		t.Error("Theta cutover step missing")
	}
	// Overall σ: paper reports 41 GPM / 0.61°F / 0.71°F.
	if fig.FlowStd < 20 || fig.FlowStd > 60 {
		t.Errorf("flow σ = %v GPM, want ≈41", fig.FlowStd)
	}
	if fig.InletStd < 0.3 || fig.InletStd > 1.1 {
		t.Errorf("inlet σ = %v °F, want ≈0.61", fig.InletStd)
	}
	if fig.OutletStd < 0.35 || fig.OutletStd > 1.7 {
		t.Errorf("outlet σ = %v °F, want small (paper: 0.71)", fig.OutletStd)
	}
	if fig.OutletStd <= fig.InletStd {
		t.Error("outlet should vary more than inlet")
	}
}

func TestFig4MonthlyProfile(t *testing.T) {
	c, _, _ := fullSim(t)
	fig := c.Fig4MonthlyProfile()
	if len(fig.Month) != 12 {
		t.Fatalf("months = %d", len(fig.Month))
	}
	// Power/utilization higher in H2 (allocation-year deadlines).
	if fig.SecondHalfPowerGain <= 0 {
		t.Errorf("H2 power gain = %v, want > 0", fig.SecondHalfPowerGain)
	}
	if fig.SecondHalfUtilGain <= 0 {
		t.Errorf("H2 utilization gain = %v, want > 0", fig.SecondHalfUtilGain)
	}
	// Inlet slightly warmer in the free-cooling months.
	if fig.WinterInletExcess <= 0 || fig.WinterInletExcess > 2 {
		t.Errorf("winter inlet excess = %v °F, want ≈0.5-1", fig.WinterInletExcess)
	}
	// Cooling metrics vary < 1.5% month over month (paper).
	if fig.MaxCoolantChangePct >= 2.5 {
		t.Errorf("max coolant monthly change = %v%%, want < 2.5%%", fig.MaxCoolantChangePct)
	}
	// December should be the peak power month.
	maxI := 0
	for i := range fig.PowerMW {
		if fig.PowerMW[i] > fig.PowerMW[maxI] {
			maxI = i
		}
	}
	if fig.Month[maxI] < 10 {
		t.Errorf("peak power month = %d, want late in the year", fig.Month[maxI])
	}
}

func TestFig5WeekdayProfile(t *testing.T) {
	c, _, _ := fullSim(t)
	fig := c.Fig5WeekdayProfile()
	if len(fig.Weekday) != 7 {
		t.Fatalf("weekdays = %d", len(fig.Weekday))
	}
	// Paper: power +≈6% on non-Mondays, utilization +≈1.5%, outlet +≈2%,
	// flow and inlet flat.
	if fig.NonMondayPowerGainPct < 1.5 || fig.NonMondayPowerGainPct > 12 {
		t.Errorf("non-Monday power gain = %v%%, want ≈6%%", fig.NonMondayPowerGainPct)
	}
	if fig.NonMondayUtilGainPct < 0.3 || fig.NonMondayUtilGainPct > 6 {
		t.Errorf("non-Monday utilization gain = %v%%, want ≈1.5%%", fig.NonMondayUtilGainPct)
	}
	if fig.NonMondayUtilGainPct >= fig.NonMondayPowerGainPct {
		t.Error("power effect should exceed utilization effect (burner jobs)")
	}
	if fig.NonMondayOutletGainPct <= 0 || fig.NonMondayOutletGainPct > 5 {
		t.Errorf("non-Monday outlet gain = %v%%, want ≈2%%", fig.NonMondayOutletGainPct)
	}
	if math.Abs(fig.NonMondayFlowGainPct) > 1 {
		t.Errorf("flow should not depend on weekday: %v%%", fig.NonMondayFlowGainPct)
	}
	if math.Abs(fig.NonMondayInletGainPct) > 1 {
		t.Errorf("inlet should not depend on weekday: %v%%", fig.NonMondayInletGainPct)
	}
}

func TestFig6RackPowerUtil(t *testing.T) {
	c, _, _ := fullSim(t)
	fig := c.Fig6RackPowerUtil()
	// Paper: power varies up to 15% across racks.
	if fig.PowerSpreadPct < 5 || fig.PowerSpreadPct > 25 {
		t.Errorf("rack power spread = %v%%, want ≈15%%", fig.PowerSpreadPct)
	}
	// Highest power at (0,D); highest utilization at (0,A).
	if fig.MaxPowerRack != topology.HotRack {
		t.Errorf("max power rack = %v, want (0,D)", fig.MaxPowerRack)
	}
	if fig.MaxUtilRack.Row != 0 {
		t.Errorf("max utilization rack = %v, want on row 0", fig.MaxUtilRack)
	}
	// Row 0 leads both metrics.
	if fig.RowPowerKW[0] <= fig.RowPowerKW[1] || fig.RowPowerKW[0] <= fig.RowPowerKW[2] {
		t.Errorf("row 0 power %v should lead rows 1-2 (%v, %v)", fig.RowPowerKW[0], fig.RowPowerKW[1], fig.RowPowerKW[2])
	}
	if fig.RowUtilPct[0] <= fig.RowUtilPct[1] || fig.RowUtilPct[0] <= fig.RowUtilPct[2] {
		t.Errorf("row 0 utilization %v should lead rows 1-2 (%v, %v)", fig.RowUtilPct[0], fig.RowUtilPct[1], fig.RowUtilPct[2])
	}
	// Paper: correlation ≈0.45 — positive but far from 1.
	if fig.Correlation < 0.15 || fig.Correlation > 0.8 {
		t.Errorf("power-utilization correlation = %v, want ≈0.45", fig.Correlation)
	}
}

func TestFig7RackCoolant(t *testing.T) {
	c, _, _ := fullSim(t)
	fig := c.Fig7RackCoolant()
	// Paper: flow ≤11%, inlet ≈1%, outlet ≤3%.
	if fig.FlowSpreadPct < 6 || fig.FlowSpreadPct > 15 {
		t.Errorf("flow spread = %v%%, want ≈11%%", fig.FlowSpreadPct)
	}
	if fig.InletSpreadPct > 2 {
		t.Errorf("inlet spread = %v%%, want ≈1%%", fig.InletSpreadPct)
	}
	if fig.OutletSpreadPct < 1 || fig.OutletSpreadPct > 6 {
		t.Errorf("outlet spread = %v%%, want ≈3%%", fig.OutletSpreadPct)
	}
	if fig.OutletSpreadPct <= fig.InletSpreadPct {
		t.Error("outlet spread should exceed inlet spread")
	}
	if fig.FlowSpreadPct <= fig.OutletSpreadPct {
		t.Error("flow spread should dominate")
	}
}

func TestFig8AmbientTimeline(t *testing.T) {
	c, _, _ := fullSim(t)
	fig := c.Fig8AmbientTimeline()
	// Paper: temperature 76–90 °F (σ 2.48), humidity 28–37 RH (σ 3.66).
	if fig.TempStd < 1.2 || fig.TempStd > 4 {
		t.Errorf("temperature σ = %v, want ≈2.48", fig.TempStd)
	}
	if fig.HumStd < 2 || fig.HumStd > 6 {
		t.Errorf("humidity σ = %v, want ≈3.66", fig.HumStd)
	}
	if fig.TempMin < 70 || fig.TempMax > 95 {
		t.Errorf("temperature range [%v, %v] implausible", fig.TempMin, fig.TempMax)
	}
	if fig.HumMin < 20 || fig.HumMax > 45 {
		t.Errorf("humidity range [%v, %v] implausible", fig.HumMin, fig.HumMax)
	}
	// Humidity peaks in summer.
	if fig.SummerHumidityExcess <= 0 {
		t.Errorf("summer humidity excess = %v, want > 0", fig.SummerHumidityExcess)
	}
}

func TestFig9RackAmbient(t *testing.T) {
	c, _, _ := fullSim(t)
	fig := c.Fig9RackAmbient()
	// Paper: temperature ≤11%, humidity ≤36% across racks.
	if fig.TempSpreadPct < 4 || fig.TempSpreadPct > 14 {
		t.Errorf("rack temperature spread = %v%%, want ≈11%%", fig.TempSpreadPct)
	}
	if fig.HumSpreadPct < 20 || fig.HumSpreadPct > 45 {
		t.Errorf("rack humidity spread = %v%%, want ≈36%%", fig.HumSpreadPct)
	}
	if fig.MaxHumidityRack != topology.HumidityHotspot {
		t.Errorf("most humid rack = %v, want the (1,8) hotspot", fig.MaxHumidityRack)
	}
	if fig.RowEndTempExcess <= 0 {
		t.Errorf("row ends should run warmer: %v", fig.RowEndTempExcess)
	}
	if fig.RowEndHumidityDeficit <= 0 {
		t.Errorf("row ends should run drier: %v", fig.RowEndHumidityDeficit)
	}
}

func TestFig10CMFPerYear(t *testing.T) {
	_, _, s := fullSim(t)
	fig := Fig10CMFPerYear(s.Log())
	// Paper: 361 total, ≈40% in 2016, two-year quiet gap.
	if fig.Total < 280 || fig.Total > 460 {
		t.Errorf("total CMFs = %d, want ≈361", fig.Total)
	}
	if fig.Share2016 < 0.28 || fig.Share2016 > 0.52 {
		t.Errorf("2016 share = %v, want ≈0.40", fig.Share2016)
	}
	if fig.QuietGapDays < 500 {
		t.Errorf("longest quiet gap = %v days, want > 500 (the 2017–2018 lull)", fig.QuietGapDays)
	}
	if fig.Counts[3] != 0 { // 2017
		t.Errorf("2017 CMFs = %d, want 0", fig.Counts[3])
	}
}

func TestFig11CMFPerRack(t *testing.T) {
	c, _, s := fullSim(t)
	fig := Fig11CMFPerRack(s.Log(), c)
	// Paper: max 14 at (1,8), min 5 at (2,7).
	if fig.MaxRack != topology.HumidityHotspot {
		t.Errorf("max-failure rack = %v (%d), want (1,8)", fig.MaxRack, fig.MaxCount)
	}
	if fig.MaxCount < 9 || fig.MaxCount > 21 {
		t.Errorf("max rack count = %d, want ≈14", fig.MaxCount)
	}
	if fig.MinCount < 2 || fig.MinCount > 8 {
		t.Errorf("min rack count = %d, want ≈5", fig.MinCount)
	}
	// Correlations: all weak (paper: −0.21, −0.06, +0.06).
	for name, corr := range map[string]float64{
		"utilization": fig.CorrUtilization,
		"outlet":      fig.CorrOutletTemp,
		"humidity":    fig.CorrHumidity,
	} {
		if math.Abs(corr) > 0.45 {
			t.Errorf("CMF-%s correlation = %v, want weak (|r| < 0.45)", name, corr)
		}
	}
}

func TestFig12LeadUp(t *testing.T) {
	c, win, s := fullSim(t)
	fig := Fig12LeadUp(win.Positives(), c.Incidents(), fullStep)
	_ = s
	if fig.Windows < 20 {
		t.Fatalf("windows analyzed = %d, want many", fig.Windows)
	}
	// Paper: inlet dips ≈−7% then ends ≈+8%; outlet dips ≈−5%; flow stable
	// until ≈30 min then collapses.
	if fig.InletMaxDipPct > -4 || fig.InletMaxDipPct < -10 {
		t.Errorf("inlet max dip = %v%%, want ≈-7%%", fig.InletMaxDipPct)
	}
	if fig.InletFinalPct < 4 || fig.InletFinalPct > 12 {
		t.Errorf("inlet final spike = %v%%, want ≈+8%%", fig.InletFinalPct)
	}
	if fig.OutletMaxDipPct > -2.5 || fig.OutletMaxDipPct < -9 {
		t.Errorf("outlet max dip = %v%%, want ≈-5%%", fig.OutletMaxDipPct)
	}
	if fig.FlowFinalPct > -25 {
		t.Errorf("final flow change = %v%%, want ≈-45%%", fig.FlowFinalPct)
	}
	if fig.FlowStableUntilH > 1.0 {
		t.Errorf("flow destabilizes %v h out, want within the last hour", fig.FlowStableUntilH)
	}
}

func TestFig14PostCMF(t *testing.T) {
	_, _, s := fullSim(t)
	fig := Fig14PostCMF(s.Log())
	if fig.Incidents < 50 {
		t.Fatalf("incidents = %d", fig.Incidents)
	}
	// Paper: rate(6h) < 75% of rate(3h); rate(48h) ≈ 10%.
	if fig.Rate6vs3 >= 0.85 {
		t.Errorf("rate(6h)/rate(3h) = %v, want < 0.85", fig.Rate6vs3)
	}
	if fig.Rate48vs3 < 0.04 || fig.Rate48vs3 > 0.25 {
		t.Errorf("rate(48h)/rate(3h) = %v, want ≈0.10", fig.Rate48vs3)
	}
	// Rates decay monotonically across windows.
	for i := 1; i < len(fig.RatePerHour); i++ {
		if fig.RatePerHour[i] > fig.RatePerHour[i-1]*1.05 {
			t.Errorf("post-CMF rate should decay: %v", fig.RatePerHour)
		}
	}
	// Type mix: AC-to-DC ≈50%, process < 2%... allow sampling slack.
	if f := fig.TypeFraction[0x0]; f != 0 { // no CMFs in the non-CMF mix
		t.Errorf("coolant-monitor events in non-CMF mix: %v", f)
	}
}

func TestFig14TypeMix(t *testing.T) {
	_, _, s := fullSim(t)
	fig := Fig14PostCMF(s.Log())
	var acdc, process float64
	for tp, f := range fig.TypeFraction {
		switch tp.String() {
		case "ac-to-dc-power":
			acdc = f
		case "process":
			process = f
		}
	}
	if acdc < 0.38 || acdc > 0.62 {
		t.Errorf("AC-to-DC fraction = %v, want ≈0.50", acdc)
	}
	if process > 0.05 {
		t.Errorf("process fraction = %v, want rare", process)
	}
}

func TestFig15PostCMFSpatial(t *testing.T) {
	c, _, s := fullSim(t)
	fig := Fig15PostCMFSpatial(s.Log(), c.Incidents())
	if fig.Pairs < 100 {
		t.Fatalf("pairs = %d", fig.Pairs)
	}
	// Follow-ons land anywhere: mean distance ≈ the uniform-random mean.
	if math.Abs(fig.MeanDistance-fig.RandomExpectedDistance) > 1.2 {
		t.Errorf("mean follow-on distance = %v, random expectation = %v — should be close",
			fig.MeanDistance, fig.RandomExpectedDistance)
	}
	if fig.SameRackFraction > 0.15 {
		t.Errorf("same-rack fraction = %v, follow-ons should not cluster on the epicenter", fig.SameRackFraction)
	}
	if len(fig.Examples) == 0 {
		t.Error("no spatial examples captured")
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector()
	c.Finalize()
	fig := c.Fig7RackCoolant()
	if !math.IsNaN(fig.FlowGPM[0]) {
		t.Error("empty collector should produce NaN means")
	}
}
