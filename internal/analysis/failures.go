package analysis

import (
	"math"
	"time"

	"mira/internal/ras"
	"mira/internal/sim"
	"mira/internal/stats"
	"mira/internal/topology"
)

// CMFPerYear is Fig. 10: counted coolant-monitor failures by calendar year.
type CMFPerYear struct {
	Years  []int
	Counts []int
	Total  int
	// Share2016 is the fraction of all failures landing in 2016 (paper:
	// ≈40%).
	Share2016 float64
	// QuietGapDays is the longest failure-free stretch (paper: over two
	// years spanning 2017–2018).
	QuietGapDays float64
}

// Fig10CMFPerYear applies the paper's dedup methodology to the RAS log.
func Fig10CMFPerYear(log *ras.Log) CMFPerYear {
	defer timed("fig10_cmf_per_year")()
	events := log.DedupCMF()
	byYear := ras.CountByYear(events)
	out := CMFPerYear{Total: len(events)}
	for y := 2014; y <= 2019; y++ {
		out.Years = append(out.Years, y)
		out.Counts = append(out.Counts, byYear[y])
	}
	if out.Total > 0 {
		out.Share2016 = float64(byYear[2016]) / float64(out.Total)
	}
	var prev time.Time
	for _, e := range events {
		if !prev.IsZero() {
			if gap := e.Time.Sub(prev).Hours() / 24; gap > out.QuietGapDays {
				out.QuietGapDays = gap
			}
		}
		prev = e.Time
	}
	return out
}

// CMFPerRack is Fig. 11: counted failures per rack and their correlations
// with the rack-level utilization, outlet temperature, and humidity fields
// (paper: −0.21, −0.06, +0.06 — no usable signal).
type CMFPerRack struct {
	Counts             [topology.NumRacks]int
	MaxRack, MinRack   topology.RackID
	MaxCount, MinCount int

	CorrUtilization float64
	CorrOutletTemp  float64
	CorrHumidity    float64
}

// Fig11CMFPerRack combines the deduped log with the collector's rack means.
func Fig11CMFPerRack(log *ras.Log, c *Collector) CMFPerRack {
	defer c.timed("fig11_cmf_per_rack")()
	events := log.DedupCMF()
	out := CMFPerRack{Counts: ras.CountByRack(events)}
	counts := make([]float64, topology.NumRacks)
	maxI, minI := 0, 0
	for i, n := range out.Counts {
		counts[i] = float64(n)
		if n > out.Counts[maxI] {
			maxI = i
		}
		if n < out.Counts[minI] {
			minI = i
		}
	}
	out.MaxRack, out.MinRack = topology.RackByIndex(maxI), topology.RackByIndex(minI)
	out.MaxCount, out.MinCount = out.Counts[maxI], out.Counts[minI]
	if r, err := stats.Pearson(counts, rackMeans(&c.rackUtil)); err == nil {
		out.CorrUtilization = r
	}
	if r, err := stats.Pearson(counts, rackMeans(&c.rackOutlet)); err == nil {
		out.CorrOutletTemp = r
	}
	if r, err := stats.Pearson(counts, rackMeans(&c.rackHum)); err == nil {
		out.CorrHumidity = r
	}
	return out
}

// LeadUp is Fig. 12: the mean relative change of the coolant metrics as a
// CMF approaches, from six hours out to the failure.
type LeadUp struct {
	// LeadHours are the lead times (descending, e.g. 6.0 … 0.0).
	LeadHours []float64
	// FlowPct, InletPct, OutletPct are mean percent changes relative to the
	// six-hour-out value.
	FlowPct   []float64
	InletPct  []float64
	OutletPct []float64
	// Windows is the number of pre-CMF windows averaged.
	Windows int

	// Headline statistics (paper: inlet −7% then +8% in the last half
	// hour; outlet −5% around three hours out; flow stable until ≈30 min).
	InletMaxDipPct   float64
	InletFinalPct    float64
	OutletMaxDipPct  float64
	FlowFinalPct     float64
	FlowStableUntilH float64
}

// Fig12LeadUp averages the epicenter pre-CMF windows captured by the
// incident recorder. step is the simulation tick length.
func Fig12LeadUp(windows []sim.Window, incidents []sim.Incident, step time.Duration) LeadUp {
	defer timed("fig12_lead_up")()
	// Epicenter windows only: cascade racks lack the local flow collapse.
	epi := make(map[topology.RackID]map[time.Time]bool)
	for _, inc := range incidents {
		if epi[inc.Epicenter] == nil {
			epi[inc.Epicenter] = make(map[time.Time]bool)
		}
		epi[inc.Epicenter][inc.Time] = true
	}

	var out LeadUp
	var flowSum, inletSum, outletSum []float64
	for _, w := range windows {
		if epi[w.Rack] == nil || !epi[w.Rack][w.End] || len(w.Records) < 2 {
			continue
		}
		n := len(w.Records)
		if flowSum == nil {
			flowSum = make([]float64, n)
			inletSum = make([]float64, n)
			outletSum = make([]float64, n)
		}
		if len(flowSum) != n {
			continue // mixed window lengths; skip stragglers
		}
		f0 := float64(w.Records[0].Flow)
		i0 := float64(w.Records[0].InletTemp)
		o0 := float64(w.Records[0].OutletTemp)
		if f0 == 0 || i0 == 0 || o0 == 0 {
			continue
		}
		for k, rec := range w.Records {
			flowSum[k] += (float64(rec.Flow)/f0 - 1) * 100
			inletSum[k] += (float64(rec.InletTemp)/i0 - 1) * 100
			outletSum[k] += (float64(rec.OutletTemp)/o0 - 1) * 100
		}
		out.Windows++
	}
	if out.Windows == 0 {
		return out
	}
	n := len(flowSum)
	for k := 0; k < n; k++ {
		lead := float64(n-1-k) * step.Hours()
		out.LeadHours = append(out.LeadHours, lead)
		out.FlowPct = append(out.FlowPct, flowSum[k]/float64(out.Windows))
		out.InletPct = append(out.InletPct, inletSum[k]/float64(out.Windows))
		out.OutletPct = append(out.OutletPct, outletSum[k]/float64(out.Windows))
	}
	out.InletMaxDipPct = stats.Min(out.InletPct)
	out.InletFinalPct = out.InletPct[n-1]
	out.OutletMaxDipPct = stats.Min(out.OutletPct)
	out.FlowFinalPct = out.FlowPct[n-1]
	// Flow is "stable" while its mean deviation stays within 2%.
	out.FlowStableUntilH = out.LeadHours[0]
	for k := 0; k < n; k++ {
		if math.Abs(out.FlowPct[k]) > 2 {
			out.FlowStableUntilH = out.LeadHours[k]
			break
		}
	}
	return out
}

// PostCMF is Fig. 14: the rate of (deduplicated) non-CMF failures in
// windows after a CMF and the type distribution.
type PostCMF struct {
	// WindowHours are the cumulative windows (3, 6, 12, 24, 48).
	WindowHours []float64
	// RatePerHour is the mean count per hour within each window, averaged
	// over CMF incidents.
	RatePerHour []float64
	// Rate6vs3 and Rate48vs3 are the headline ratios (paper: <0.75, ≈0.10).
	Rate6vs3  float64
	Rate48vs3 float64
	// TypeFraction is the mix of post-CMF failure types (paper: AC-to-DC
	// ≈50%, process <2%).
	TypeFraction map[ras.EventType]float64
	// Incidents is the number of CMFs analyzed.
	Incidents int
}

// Fig14PostCMF measures post-CMF failure rates from the RAS log.
func Fig14PostCMF(log *ras.Log) PostCMF {
	defer timed("fig14_post_cmf")()
	cmfs := log.DedupCMF()
	nonCMF := log.DedupNonCMF()
	out := PostCMF{
		WindowHours:  []float64{3, 6, 12, 24, 48},
		TypeFraction: make(map[ras.EventType]float64),
	}
	// Collapse per-rack CMF counts into incidents: CMFs within six hours of
	// each other (the storm) share the same follow-on failures, so measure
	// from the first rack's timestamp.
	var incidentTimes []time.Time
	for _, e := range cmfs {
		if len(incidentTimes) == 0 || e.Time.Sub(incidentTimes[len(incidentTimes)-1]) > ras.CMFWindow {
			incidentTimes = append(incidentTimes, e.Time)
		}
	}
	out.Incidents = len(incidentTimes)
	if out.Incidents == 0 {
		return out
	}
	counts := make([]float64, len(out.WindowHours))
	typeCounts := make(map[ras.EventType]int)
	totalTyped := 0
	for _, t0 := range incidentTimes {
		for _, e := range nonCMF {
			tau := e.Time.Sub(t0).Hours()
			if tau < 0 {
				continue
			}
			for wi, w := range out.WindowHours {
				if tau <= w {
					counts[wi]++
				}
			}
			if tau <= 48 {
				typeCounts[e.Type]++
				totalTyped++
			}
		}
	}
	out.RatePerHour = make([]float64, len(out.WindowHours))
	for i, w := range out.WindowHours {
		out.RatePerHour[i] = counts[i] / float64(out.Incidents) / w
	}
	if out.RatePerHour[0] > 0 {
		out.Rate6vs3 = out.RatePerHour[1] / out.RatePerHour[0]
		out.Rate48vs3 = out.RatePerHour[4] / out.RatePerHour[0]
	}
	for tp, n := range typeCounts {
		out.TypeFraction[tp] = float64(n) / float64(totalTyped)
	}
	return out
}

// PostCMFSpatial is Fig. 15: where follow-on failures land relative to the
// CMF epicenter. The paper's point: anywhere — there is no spatial
// affinity.
type PostCMFSpatial struct {
	// MeanDistance is the mean Manhattan rack-grid distance between each
	// epicenter and its follow-on failures within 48 h.
	MeanDistance float64
	// RandomExpectedDistance is the analytic mean distance to a uniformly
	// random rack, for comparison.
	RandomExpectedDistance float64
	// SameRackFraction is how many follow-ons hit the epicenter itself.
	SameRackFraction float64
	// Pairs is the number of (CMF, follow-on) pairs measured.
	Pairs int
	// Examples maps the first up-to-3 incidents to their follow-on racks.
	Examples []SpatialExample
}

// SpatialExample is one Fig. 15 panel: an epicenter and its follow-ons.
type SpatialExample struct {
	Epicenter topology.RackID
	FollowOns []topology.RackID
}

// Fig15PostCMFSpatial measures follow-on locations.
func Fig15PostCMFSpatial(log *ras.Log, incidents []sim.Incident) PostCMFSpatial {
	defer timed("fig15_post_cmf_spatial")()
	nonCMF := log.DedupNonCMF()
	var out PostCMFSpatial
	var distSum float64
	same := 0
	for _, inc := range incidents {
		var follows []topology.RackID
		for _, e := range nonCMF {
			tau := e.Time.Sub(inc.Time).Hours()
			if tau < 0 || tau > 48 {
				continue
			}
			follows = append(follows, e.Rack)
			distSum += manhattan(inc.Epicenter, e.Rack)
			if e.Rack == inc.Epicenter {
				same++
			}
			out.Pairs++
		}
		if len(out.Examples) < 3 && len(follows) >= 2 {
			out.Examples = append(out.Examples, SpatialExample{Epicenter: inc.Epicenter, FollowOns: follows})
		}
	}
	if out.Pairs > 0 {
		out.MeanDistance = distSum / float64(out.Pairs)
		out.SameRackFraction = float64(same) / float64(out.Pairs)
	}
	out.RandomExpectedDistance = randomMeanDistance()
	return out
}

func manhattan(a, b topology.RackID) float64 {
	return math.Abs(float64(a.Row-b.Row)) + math.Abs(float64(a.Col-b.Col))
}

// randomMeanDistance is the expected Manhattan distance from a uniformly
// random rack to another uniformly random rack on the 3×16 grid.
func randomMeanDistance() float64 {
	var sum float64
	n := 0
	for _, a := range topology.AllRacks() {
		for _, b := range topology.AllRacks() {
			sum += manhattan(a, b)
			n++
		}
	}
	return sum / float64(n)
}
