package analysis

// Synthetic unit tests: feed the Collector hand-built samples with known
// patterns and check each figure computation directly, without running the
// simulator.

import (
	"math"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/ras"
	"mira/internal/sensors"
	"mira/internal/sim"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

// feedTick pushes one tick of synthetic telemetry: system values plus one
// record per rack produced by mk.
func feedTick(c *Collector, ts time.Time, powerMW, util float64, mk func(r topology.RackID) sensors.Record) {
	c.OnTick(ts, units.MW(powerMW), util)
	for _, r := range topology.AllRacks() {
		c.OnRackState(ts, r, util)
		c.OnSample(mk(r))
	}
}

func flatRecord(ts time.Time, r topology.RackID) sensors.Record {
	return sensors.Record{
		Time: ts, Rack: r,
		DCTemperature: 80, DCHumidity: 32,
		Flow: 26, InletTemp: 64, OutletTemp: 79,
		Power: units.KW(55),
	}
}

func TestFig2FitOnSyntheticTrend(t *testing.T) {
	c := NewCollector()
	// Two years of monthly samples with a linear power ramp 2.5 → 2.9 and
	// utilization 80 → 93.
	start := time.Date(2014, 1, 15, 0, 0, 0, 0, timeutil.Chicago)
	months := 24
	for m := 0; m < months; m++ {
		ts := start.AddDate(0, m, 0)
		frac := float64(m) / float64(months-1)
		feedTick(c, ts, 2.5+0.4*frac, 0.80+0.13*frac, func(r topology.RackID) sensors.Record {
			return flatRecord(ts, r)
		})
	}
	c.Finalize()
	fig := c.Fig2YearlyTrend()
	if len(fig.YearMonth) != months {
		t.Fatalf("months = %d", len(fig.YearMonth))
	}
	if math.Abs(fig.PowerStartMW-2.5) > 0.02 || math.Abs(fig.PowerEndMW-2.9) > 0.02 {
		t.Errorf("power fit = %v -> %v, want 2.5 -> 2.9", fig.PowerStartMW, fig.PowerEndMW)
	}
	if math.Abs(fig.UtilStartPct-80) > 0.7 || math.Abs(fig.UtilEndPct-93) > 0.7 {
		t.Errorf("utilization fit = %v -> %v, want 80 -> 93", fig.UtilStartPct, fig.UtilEndPct)
	}
	if fig.PowerFit.R2 < 0.99 {
		t.Errorf("noiseless ramp should fit with R2 ≈ 1, got %v", fig.PowerFit.R2)
	}
}

func TestFig3ThetaStepOnSynthetic(t *testing.T) {
	c := NewCollector()
	// Daily samples through 2016; flow steps at the cutover.
	for d := 0; d < 366; d++ {
		ts := time.Date(2016, 1, 1, 12, 0, 0, 0, timeutil.Chicago).AddDate(0, 0, d)
		flow := units.GPM(1250.0 / topology.NumRacks)
		if !ts.Before(timeutil.ThetaCutover) {
			flow = 1300.0 / topology.NumRacks
		}
		feedTick(c, ts, 2.7, 0.9, func(r topology.RackID) sensors.Record {
			rec := flatRecord(ts, r)
			rec.Flow = flow
			return rec
		})
	}
	c.Finalize()
	fig := c.Fig3CoolantTimeline()
	if math.Abs(fig.FlowBeforeTheta-1250) > 1 {
		t.Errorf("pre-Theta flow = %v", fig.FlowBeforeTheta)
	}
	if math.Abs(fig.FlowAfterTheta-1300) > 1 {
		t.Errorf("post-Theta flow = %v", fig.FlowAfterTheta)
	}
	// Constant temperatures: near-zero σ.
	if fig.InletStd > 1e-9 || fig.OutletStd > 1e-9 {
		t.Errorf("constant temps should have zero σ: %v / %v", fig.InletStd, fig.OutletStd)
	}
}

func TestFig5MondayDipOnSynthetic(t *testing.T) {
	c := NewCollector()
	start := time.Date(2015, 3, 1, 12, 0, 0, 0, timeutil.Chicago)
	for d := 0; d < 28; d++ {
		ts := start.AddDate(0, 0, d)
		power, util := 2.8, 0.91
		if ts.Weekday() == time.Monday {
			power, util = 2.8/1.06, 0.91/1.015 // the paper's 6% / 1.5% gaps
		}
		feedTick(c, ts, power, util, func(r topology.RackID) sensors.Record {
			return flatRecord(ts, r)
		})
	}
	c.Finalize()
	fig := c.Fig5WeekdayProfile()
	if math.Abs(fig.NonMondayPowerGainPct-6) > 0.2 {
		t.Errorf("power gain = %v, want 6", fig.NonMondayPowerGainPct)
	}
	if math.Abs(fig.NonMondayUtilGainPct-1.5) > 0.2 {
		t.Errorf("utilization gain = %v, want 1.5", fig.NonMondayUtilGainPct)
	}
	if math.Abs(fig.NonMondayFlowGainPct) > 1e-9 {
		t.Errorf("flat flow should have zero weekday effect: %v", fig.NonMondayFlowGainPct)
	}
}

func TestFig6SpatialOnSynthetic(t *testing.T) {
	c := NewCollector()
	ts := time.Date(2015, 3, 3, 12, 0, 0, 0, timeutil.Chicago)
	// Rack (0,D) draws 15% more power; rack (0,A) runs busier.
	c.OnTick(ts, units.MW(2.7), 0.9)
	for _, r := range topology.AllRacks() {
		util := 0.88
		if r == topology.BusyRack {
			util = 0.99
		}
		c.OnRackState(ts, r, util)
		rec := flatRecord(ts, r)
		if r == topology.HotRack {
			rec.Power = units.KW(55 * 1.15)
		}
		c.OnSample(rec)
	}
	c.Finalize()
	fig := c.Fig6RackPowerUtil()
	if fig.MaxPowerRack != topology.HotRack {
		t.Errorf("max power rack = %v", fig.MaxPowerRack)
	}
	if fig.MaxUtilRack != topology.BusyRack {
		t.Errorf("max util rack = %v", fig.MaxUtilRack)
	}
	if math.Abs(fig.PowerSpreadPct-15) > 0.2 {
		t.Errorf("power spread = %v, want 15", fig.PowerSpreadPct)
	}
}

func TestFig10And14OnSyntheticLog(t *testing.T) {
	log := ras.NewLog()
	rack := topology.RackID{Row: 1, Col: 8}
	// Three CMF incidents: 2014, two in 2016.
	times := []time.Time{
		time.Date(2014, 3, 1, 0, 0, 0, 0, timeutil.Chicago),
		time.Date(2016, 7, 1, 0, 0, 0, 0, timeutil.Chicago),
		time.Date(2016, 9, 1, 0, 0, 0, 0, timeutil.Chicago),
	}
	for _, ts := range times {
		log.Append(ras.Event{Time: ts, Rack: rack, Type: ras.CoolantMonitor, Severity: ras.Fatal})
		// Follow-on failures: two fast, one slow.
		log.Append(ras.Event{Time: ts.Add(time.Hour), Rack: topology.RackID{Row: 0, Col: 1}, Type: ras.ACToDCPower, Severity: ras.Fatal})
		log.Append(ras.Event{Time: ts.Add(2 * time.Hour), Rack: topology.RackID{Row: 2, Col: 9}, Type: ras.BQL, Severity: ras.Fatal})
		log.Append(ras.Event{Time: ts.Add(40 * time.Hour), Rack: topology.RackID{Row: 1, Col: 2}, Type: ras.BQC, Severity: ras.Fatal})
	}
	fig10 := Fig10CMFPerYear(log)
	if fig10.Total != 3 {
		t.Errorf("total = %d", fig10.Total)
	}
	if math.Abs(fig10.Share2016-2.0/3.0) > 1e-9 {
		t.Errorf("2016 share = %v", fig10.Share2016)
	}
	if fig10.QuietGapDays < 800 {
		t.Errorf("quiet gap = %v days", fig10.QuietGapDays)
	}

	fig14 := Fig14PostCMF(log)
	if fig14.Incidents != 3 {
		t.Fatalf("incidents = %d", fig14.Incidents)
	}
	// Rates decay: 2 events in 3h → 0.667/h; 3 in 48h → 0.0625/h.
	if math.Abs(fig14.RatePerHour[0]-2.0/3.0) > 1e-9 {
		t.Errorf("rate(3h) = %v", fig14.RatePerHour[0])
	}
	if math.Abs(fig14.Rate48vs3-(3.0/48.0)/(2.0/3.0)) > 1e-9 {
		t.Errorf("rate48v3 = %v", fig14.Rate48vs3)
	}
	if fig14.TypeFraction[ras.ACToDCPower] != 1.0/3.0 {
		t.Errorf("AC-DC fraction = %v", fig14.TypeFraction[ras.ACToDCPower])
	}
}

func TestFig12OnSyntheticWindows(t *testing.T) {
	rack := topology.RackID{Row: 0, Col: 3}
	end := time.Date(2016, 8, 1, 12, 0, 0, 0, timeutil.Chicago)
	step := 30 * time.Minute
	n := 13 // six hours
	recs := make([]sensors.Record, n)
	for i := range recs {
		recs[i] = flatRecord(end.Add(-time.Duration(n-1-i)*step), rack)
	}
	// Inlet dips 7% mid-window and spikes 8% at the end; flow collapses.
	recs[n/2].InletTemp = 64 * 0.93
	recs[n-1].InletTemp = 64 * 1.08
	recs[n-1].Flow = 26 * 0.55
	windows := []sim.Window{{Rack: rack, End: end, Records: recs}}
	incidents := []sim.Incident{{Time: end, Epicenter: rack, Racks: []topology.RackID{rack}}}
	fig := Fig12LeadUp(windows, incidents, step)
	if fig.Windows != 1 {
		t.Fatalf("windows = %d", fig.Windows)
	}
	if math.Abs(fig.InletMaxDipPct-(-7)) > 0.01 {
		t.Errorf("dip = %v", fig.InletMaxDipPct)
	}
	if math.Abs(fig.InletFinalPct-8) > 0.01 {
		t.Errorf("spike = %v", fig.InletFinalPct)
	}
	if math.Abs(fig.FlowFinalPct-(-45)) > 0.01 {
		t.Errorf("flow final = %v", fig.FlowFinalPct)
	}
	// Cascade-only windows (no matching epicenter) are excluded.
	other := []sim.Incident{{Time: end, Epicenter: topology.RackID{Row: 2, Col: 2}}}
	if fig := Fig12LeadUp(windows, other, step); fig.Windows != 0 {
		t.Errorf("non-epicenter windows should be excluded, got %d", fig.Windows)
	}
}

func TestFig15OnSyntheticLog(t *testing.T) {
	log := ras.NewLog()
	epicenter := topology.RackID{Row: 1, Col: 4}
	ts := time.Date(2016, 8, 1, 0, 0, 0, 0, timeutil.Chicago)
	log.Append(ras.Event{Time: ts, Rack: epicenter, Type: ras.CoolantMonitor, Severity: ras.Fatal})
	far := topology.RackID{Row: 0, Col: 15} // distance 1 + 11 = 12
	log.Append(ras.Event{Time: ts.Add(2 * time.Hour), Rack: far, Type: ras.BQL, Severity: ras.Fatal})
	near := epicenter
	log.Append(ras.Event{Time: ts.Add(4 * time.Hour), Rack: near, Type: ras.BQC, Severity: ras.Fatal})
	incidents := []sim.Incident{{Time: ts, Epicenter: epicenter, Racks: []topology.RackID{epicenter}}}
	fig := Fig15PostCMFSpatial(log, incidents)
	if fig.Pairs != 2 {
		t.Fatalf("pairs = %d", fig.Pairs)
	}
	if math.Abs(fig.MeanDistance-6) > 1e-9 { // (12 + 0) / 2
		t.Errorf("mean distance = %v", fig.MeanDistance)
	}
	if fig.SameRackFraction != 0.5 {
		t.Errorf("same-rack fraction = %v", fig.SameRackFraction)
	}
	if fig.RandomExpectedDistance < 5 || fig.RandomExpectedDistance > 8 {
		t.Errorf("random expectation = %v", fig.RandomExpectedDistance)
	}
}

func TestEfficiencyStudy(t *testing.T) {
	c := NewCollector()
	// Feed a flat 2.8 MW IT profile across the year.
	for m := 1; m <= 12; m++ {
		ts := time.Date(2015, time.Month(m), 15, 12, 0, 0, 0, timeutil.Chicago)
		feedTick(c, ts, 2.8, 0.9, func(r topology.RackID) sensors.Record {
			return flatRecord(ts, r)
		})
	}
	c.Finalize()
	eff := c.EfficiencyStudy(3, 2015)
	if len(eff.Month) != 12 {
		t.Fatalf("months = %d", len(eff.Month))
	}
	// Liquid cooling with an economizer: PUE in the efficient range.
	if eff.MeanPUE < 1.10 || eff.MeanPUE > 1.45 {
		t.Errorf("mean PUE = %v, want ≈1.2-1.35", eff.MeanPUE)
	}
	// Free cooling makes winter cheaper than summer.
	if eff.WinterPUE >= eff.SummerPUE {
		t.Errorf("winter PUE %v should beat summer %v", eff.WinterPUE, eff.SummerPUE)
	}
	if eff.EconomizerSavingsKWh <= 0 {
		t.Errorf("economizer savings = %v", eff.EconomizerSavingsKWh)
	}
	// Savings bounded by the design figure (~2.17 GWh/season).
	if eff.EconomizerSavingsKWh > 3e6 {
		t.Errorf("savings implausibly large: %v", eff.EconomizerSavingsKWh)
	}
	if eff.CoolingEnergyKWh <= 0 {
		t.Error("cooling energy should be positive")
	}
}

func TestCollectFromStoreMatchesLive(t *testing.T) {
	// Feed identical telemetry to a live collector and through an envdb
	// store; the coolant/ambient figures must agree.
	live := NewCollector()
	db := envdb.NewStore()
	start := time.Date(2015, 5, 1, 0, 0, 0, 0, timeutil.Chicago)
	for tick := 0; tick < 200; tick++ {
		ts := start.Add(time.Duration(tick) * 5 * time.Minute)
		live.OnTick(ts, units.MW(2.7), 0.9)
		for _, r := range topology.AllRacks() {
			rec := flatRecord(ts, r)
			rec.Flow = units.GPM(25 + float64(r.Index())*0.06)
			rec.DCHumidity = units.RelativeHumidity(28 + float64(r.Index())*0.2)
			live.OnSample(rec)
			if err := db.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	live.Finalize()
	offline := CollectFromStore(db)

	lf, of := live.Fig7RackCoolant(), offline.Fig7RackCoolant()
	if math.Abs(lf.FlowSpreadPct-of.FlowSpreadPct) > 1e-9 {
		t.Errorf("flow spread live %v vs offline %v", lf.FlowSpreadPct, of.FlowSpreadPct)
	}
	for i := range lf.FlowGPM {
		if math.Abs(lf.FlowGPM[i]-of.FlowGPM[i]) > 1e-9 {
			t.Fatalf("rack %d flow live %v vs offline %v", i, lf.FlowGPM[i], of.FlowGPM[i])
		}
	}
	la, oa := live.Fig9RackAmbient(), offline.Fig9RackAmbient()
	if math.Abs(la.HumSpreadPct-oa.HumSpreadPct) > 1e-9 {
		t.Errorf("humidity spread live %v vs offline %v", la.HumSpreadPct, oa.HumSpreadPct)
	}
	// Offline reconstructs system power as the rack sum.
	off3 := offline.Fig3CoolantTimeline()
	if off3.FlowBeforeTheta <= 0 {
		t.Error("offline flow timeline empty")
	}
}
