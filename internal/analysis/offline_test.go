package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
	"mira/internal/units"
)

// TestCollectFromStoreMixedLocations: records carrying the same instant in
// different time.Locations (Chicago-simulated vs UTC CSV-reimported) must
// land in the same tick. Grouping by time.Time map keys split them, which
// halved the reconstructed per-tick system power and plant flow.
func TestCollectFromStoreMixedLocations(t *testing.T) {
	db := envdb.NewStore()
	rackA := topology.RackID{Row: 0, Col: 1}
	rackB := topology.RackID{Row: 1, Col: 8}
	start := time.Date(2015, 3, 10, 0, 0, 0, 0, timeutil.Chicago)
	const ticks = 6
	for i := 0; i < ticks; i++ {
		ts := start.Add(time.Duration(i) * timeutil.SampleInterval)
		ra := flatRecord(ts, rackA)
		ra.Flow = 10
		rb := flatRecord(ts.UTC(), rackB) // same instant, different location
		rb.Flow = 20
		if err := db.Append(ra); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(rb); err != nil {
			t.Fatal(err)
		}
	}

	c := CollectFromStore(db)
	fig := c.Fig3CoolantTimeline()
	// One tick per instant → the plant flow is the two racks' sum, not the
	// mean of two half-populated ticks.
	if want := 30.0; math.Abs(fig.FlowBeforeTheta-want) > 1e-9 {
		t.Errorf("plant flow = %v GPM, want %v (instants split into per-location ticks?)", fig.FlowBeforeTheta, want)
	}
	// System power likewise sums both racks per tick.
	trend := c.Fig2YearlyTrend()
	if len(trend.PowerMW) == 0 {
		t.Fatal("no power samples collected")
	}
	wantMW := float64(2*units.KW(55)) / 1e6
	for i, p := range trend.PowerMW {
		if math.Abs(p-wantMW) > 1e-9 {
			t.Errorf("month %d power = %v MW, want %v", i, p, wantMW)
		}
	}
}

// multiDayStore simulates a multi-day full-machine trace (every rack,
// coolant-monitor cadence) into a compressed store with enough variation
// to make every figure's aggregates non-trivial.
func multiDayStore(t *testing.T, days int) *tsdb.Store {
	t.Helper()
	db := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	fillTrace(t, db, 0, days*288) // 300 s cadence
	return db
}

// fillTrace appends ticks [from, to) of the deterministic multi-day trace
// to db. The rng is re-seeded and fast-forwarded through skipped ticks, so
// any tick range yields the same records regardless of where it starts —
// a compacted store's hot window can be rebuilt record-for-record.
func fillTrace(t *testing.T, db *tsdb.Store, from, to int) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	start := time.Date(2015, 3, 10, 0, 0, 0, 0, timeutil.Chicago)
	for i := 0; i < to; i++ {
		ts := start.Add(time.Duration(i) * timeutil.SampleInterval)
		for _, rack := range topology.AllRacks() {
			r := flatRecord(ts, rack)
			r.Flow = units.GPM(26 + rng.Float64())
			r.InletTemp = units.Fahrenheit(64 + rng.Float64())
			r.OutletTemp = units.Fahrenheit(79 + rng.Float64())
			r.DCTemperature = units.Fahrenheit(80 + 2*rng.Float64())
			r.DCHumidity = units.RelativeHumidity(30 + 4*rng.Float64())
			r.Power = units.Watts(55000 + 100*rng.Float64())
			if i < from {
				continue
			}
			if err := db.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestReplayMergedBoundedMemory pins the tentpole's memory bound on a
// multi-day full-machine trace: the streaming replay's peak buffering is
// exactly one tick — one record per rack — where the old path
// materialized the whole trace (ticks × racks records) in a map.
func TestReplayMergedBoundedMemory(t *testing.T) {
	db := multiDayStore(t, 3) // 864 ticks × 48 racks ≈ 41k records
	c := NewCollector()
	maxTick, err := replayMerged(db, 4, c)
	if err != nil {
		t.Fatalf("replayMerged: %v", err)
	}
	c.Finalize()
	if maxTick != topology.NumRacks {
		t.Fatalf("peak tick buffer = %d records, want %d (one per rack)", maxTick, topology.NumRacks)
	}
	if got := c.Fig7RackCoolant(); len(got.FlowGPM) != topology.NumRacks {
		t.Fatalf("replay produced %d rack means", len(got.FlowGPM))
	}
}

// TestReplayChunkedMatchesRecords pins the tentpole's correctness bar: the
// batch-columnar replay (the default) and the record-at-a-time replay
// (ForceRecords) must produce figures that are bit-identical — not merely
// close — because both materialize records from the same decoded columns
// in the same visit order.
func TestReplayChunkedMatchesRecords(t *testing.T) {
	db := multiDayStore(t, 2)
	chunked := CollectFromStoreOpts(db, CollectOptions{Workers: 3})
	records := CollectFromStoreOpts(db, CollectOptions{Workers: 3, ForceRecords: true})

	if got, want := fmt.Sprintf("%+v", chunked.Fig3CoolantTimeline()), fmt.Sprintf("%+v", records.Fig3CoolantTimeline()); got != want {
		t.Errorf("Fig3 differs:\n chunked %s\n records %s", got, want)
	}
	if got, want := chunked.Fig7RackCoolant(), records.Fig7RackCoolant(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig7 differs:\n chunked %+v\n records %+v", got, want)
	}
	if got, want := fmt.Sprintf("%+v", chunked.Fig8AmbientTimeline()), fmt.Sprintf("%+v", records.Fig8AmbientTimeline()); got != want {
		t.Errorf("Fig8 differs:\n chunked %s\n records %s", got, want)
	}
	if got, want := chunked.Fig9RackAmbient(), records.Fig9RackAmbient(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig9 differs:\n chunked %+v\n records %+v", got, want)
	}
}

// TestReplayChunkedBoundedMemory: the chunked replay's tick buffer stays
// one record per rack even though the scan hands over multi-tick chunks.
func TestReplayChunkedBoundedMemory(t *testing.T) {
	db := multiDayStore(t, 2)
	c := NewCollector()
	maxTick, err := replayChunked(db, 4, c)
	if err != nil {
		t.Fatalf("replayChunked: %v", err)
	}
	c.Finalize()
	if maxTick != topology.NumRacks {
		t.Fatalf("peak tick buffer = %d records, want %d (one per rack)", maxTick, topology.NumRacks)
	}
}

// noShardScan hides the ShardScanner capability so CollectFromStore takes
// the buffering fallback path.
type noShardScan struct{ envdb.DB }

// TestCollectFromStoreFallbackEquivalence: the streaming merged replay
// and the legacy buffering fallback must produce identical figures from
// the same store.
func TestCollectFromStoreFallbackEquivalence(t *testing.T) {
	db := multiDayStore(t, 2)
	merged := CollectFromStoreParallel(db, 3)
	fallback := CollectFromStore(noShardScan{db})

	// Fig3/Fig8 carry NaN fields when the trace has no summer months, and
	// NaN != NaN under DeepEqual; the %+v rendering distinguishes every
	// non-NaN float while treating NaN as equal to itself.
	if got, want := fmt.Sprintf("%+v", merged.Fig3CoolantTimeline()), fmt.Sprintf("%+v", fallback.Fig3CoolantTimeline()); got != want {
		t.Errorf("Fig3 differs:\n merged  %s\n grouped %s", got, want)
	}
	if got, want := merged.Fig7RackCoolant(), fallback.Fig7RackCoolant(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig7 differs:\n merged  %+v\n grouped %+v", got, want)
	}
	if got, want := fmt.Sprintf("%+v", merged.Fig8AmbientTimeline()), fmt.Sprintf("%+v", fallback.Fig8AmbientTimeline()); got != want {
		t.Errorf("Fig8 differs:\n merged  %s\n grouped %s", got, want)
	}
	if got, want := merged.Fig9RackAmbient(), fallback.Fig9RackAmbient(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig9 differs:\n merged  %+v\n grouped %+v", got, want)
	}
}

// closeF reports a ≈ b within relative tolerance tol (NaN equals NaN).
func closeF(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// closeSlice reports elementwise closeF over equal-length slices.
func closeSlice(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !closeF(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// TestPushdownMatchesReplay: Figs. 7/9 computed via aggregation pushdown
// (compressed columns only, no replay) must match the full replay. The
// pushdown sums accumulate in the quantized integer domain (so they stay
// exact across retention compaction) while the replay folds floats in tick
// order, so the comparison allows summation-order rounding — a relative
// tolerance far tighter than any figure resolution, not bit-equality.
func TestPushdownMatchesReplay(t *testing.T) {
	const tol = 1e-9
	db := multiDayStore(t, 2)
	c := CollectFromStoreParallel(db, 2)

	fig7, err := Fig7CoolantPushdown(db)
	if err != nil {
		t.Fatalf("Fig7CoolantPushdown: %v", err)
	}
	if want := c.Fig7RackCoolant(); !closeSlice(fig7.FlowGPM, want.FlowGPM, tol) ||
		!closeSlice(fig7.InletF, want.InletF, tol) ||
		!closeSlice(fig7.OutletF, want.OutletF, tol) ||
		!closeF(fig7.FlowSpreadPct, want.FlowSpreadPct, tol) ||
		!closeF(fig7.InletSpreadPct, want.InletSpreadPct, tol) ||
		!closeF(fig7.OutletSpreadPct, want.OutletSpreadPct, tol) {
		t.Errorf("Fig7 pushdown differs:\n pushdown %+v\n replay   %+v", fig7, want)
	}
	fig9, err := Fig9AmbientPushdown(db)
	if err != nil {
		t.Fatalf("Fig9AmbientPushdown: %v", err)
	}
	if want := c.Fig9RackAmbient(); !closeSlice(fig9.TempF, want.TempF, tol) ||
		!closeSlice(fig9.HumidityRH, want.HumidityRH, tol) ||
		!closeF(fig9.TempSpreadPct, want.TempSpreadPct, tol) ||
		!closeF(fig9.HumSpreadPct, want.HumSpreadPct, tol) ||
		fig9.MaxHumidityRack != want.MaxHumidityRack ||
		!closeF(fig9.RowEndTempExcess, want.RowEndTempExcess, tol) ||
		!closeF(fig9.RowEndHumidityDeficit, want.RowEndHumidityDeficit, tol) {
		t.Errorf("Fig9 pushdown differs:\n pushdown %+v\n replay   %+v", fig9, want)
	}
}

// TestReplaySkipsDownsampledTier: after retention compaction the replay
// figures must cover exactly the retained hot window. A downsampled
// window's record is an aggregate stand-in, not a monitor tick — feeding
// it to the collector would fabricate ticks — so the compacted store's
// replay must equal, record for record, the replay of a store holding
// only the hot-window ticks.
func TestReplaySkipsDownsampledTier(t *testing.T) {
	db := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour, Retention: 24 * time.Hour})
	fillTrace(t, db, 0, 3*288)
	st, err := db.Compact("")
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Windows == 0 {
		t.Fatal("compaction folded nothing; the downsampled tier is not exercised")
	}

	// Every shard sees the same tick sequence, so the folded-record count
	// identifies exactly which prefix of ticks moved to the cold tier
	// (partition boundaries fall on UTC days, not local ones, so the prefix
	// is not a whole number of local days).
	fromTick := int(st.SourceRecords) / topology.NumRacks
	if fromTick*topology.NumRacks != int(st.SourceRecords) || fromTick <= 0 || fromTick >= 3*288 {
		t.Fatalf("compaction folded %d records; want a whole positive prefix of %d-rack ticks", st.SourceRecords, topology.NumRacks)
	}
	hot := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	fillTrace(t, hot, fromTick, 3*288)

	got := CollectFromStoreParallel(db, 3)
	want := CollectFromStoreParallel(hot, 3)
	if g, w := fmt.Sprintf("%+v", got.Fig3CoolantTimeline()), fmt.Sprintf("%+v", want.Fig3CoolantTimeline()); g != w {
		t.Errorf("Fig3 differs:\n compacted %s\n hot-only  %s", g, w)
	}
	if g, w := got.Fig7RackCoolant(), want.Fig7RackCoolant(); !reflect.DeepEqual(g, w) {
		t.Errorf("Fig7 differs:\n compacted %+v\n hot-only  %+v", g, w)
	}
	if g, w := got.Fig9RackAmbient(), want.Fig9RackAmbient(); !reflect.DeepEqual(g, w) {
		t.Errorf("Fig9 differs:\n compacted %+v\n hot-only  %+v", g, w)
	}
}

// TestPushdownCompactionInvariant: the Fig. 7/9 pushdown figures must be
// bit-identical before and after retention compaction. The downsampled
// tier stores per-window sums in the quantized integer domain, and
// integer addition is associative — so folding a year of raw records into
// hourly windows changes nothing about a whole-range mean.
func TestPushdownCompactionInvariant(t *testing.T) {
	db := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour, Retention: 24 * time.Hour})
	fillTrace(t, db, 0, 3*288)

	before7, err := Fig7CoolantPushdown(db)
	if err != nil {
		t.Fatalf("Fig7CoolantPushdown: %v", err)
	}
	before9, err := Fig9AmbientPushdown(db)
	if err != nil {
		t.Fatalf("Fig9AmbientPushdown: %v", err)
	}
	st, err := db.Compact("")
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Windows == 0 {
		t.Fatal("compaction folded nothing; the invariant is not exercised")
	}
	after7, err := Fig7CoolantPushdown(db)
	if err != nil {
		t.Fatalf("Fig7CoolantPushdown after compact: %v", err)
	}
	after9, err := Fig9AmbientPushdown(db)
	if err != nil {
		t.Fatalf("Fig9AmbientPushdown after compact: %v", err)
	}
	if !reflect.DeepEqual(before7, after7) {
		t.Errorf("Fig7 changed under compaction:\n before %+v\n after  %+v", before7, after7)
	}
	if !reflect.DeepEqual(before9, after9) {
		t.Errorf("Fig9 changed under compaction:\n before %+v\n after  %+v", before9, after9)
	}
}
