package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
	"mira/internal/units"
)

// TestCollectFromStoreMixedLocations: records carrying the same instant in
// different time.Locations (Chicago-simulated vs UTC CSV-reimported) must
// land in the same tick. Grouping by time.Time map keys split them, which
// halved the reconstructed per-tick system power and plant flow.
func TestCollectFromStoreMixedLocations(t *testing.T) {
	db := envdb.NewStore()
	rackA := topology.RackID{Row: 0, Col: 1}
	rackB := topology.RackID{Row: 1, Col: 8}
	start := time.Date(2015, 3, 10, 0, 0, 0, 0, timeutil.Chicago)
	const ticks = 6
	for i := 0; i < ticks; i++ {
		ts := start.Add(time.Duration(i) * timeutil.SampleInterval)
		ra := flatRecord(ts, rackA)
		ra.Flow = 10
		rb := flatRecord(ts.UTC(), rackB) // same instant, different location
		rb.Flow = 20
		if err := db.Append(ra); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(rb); err != nil {
			t.Fatal(err)
		}
	}

	c := CollectFromStore(db)
	fig := c.Fig3CoolantTimeline()
	// One tick per instant → the plant flow is the two racks' sum, not the
	// mean of two half-populated ticks.
	if want := 30.0; math.Abs(fig.FlowBeforeTheta-want) > 1e-9 {
		t.Errorf("plant flow = %v GPM, want %v (instants split into per-location ticks?)", fig.FlowBeforeTheta, want)
	}
	// System power likewise sums both racks per tick.
	trend := c.Fig2YearlyTrend()
	if len(trend.PowerMW) == 0 {
		t.Fatal("no power samples collected")
	}
	wantMW := float64(2*units.KW(55)) / 1e6
	for i, p := range trend.PowerMW {
		if math.Abs(p-wantMW) > 1e-9 {
			t.Errorf("month %d power = %v MW, want %v", i, p, wantMW)
		}
	}
}

// multiDayStore simulates a multi-day full-machine trace (every rack,
// coolant-monitor cadence) into a compressed store with enough variation
// to make every figure's aggregates non-trivial.
func multiDayStore(t *testing.T, days int) *tsdb.Store {
	t.Helper()
	db := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	rng := rand.New(rand.NewSource(11))
	start := time.Date(2015, 3, 10, 0, 0, 0, 0, timeutil.Chicago)
	ticks := days * 288 // 300 s cadence
	for i := 0; i < ticks; i++ {
		ts := start.Add(time.Duration(i) * timeutil.SampleInterval)
		for _, rack := range topology.AllRacks() {
			r := flatRecord(ts, rack)
			r.Flow = units.GPM(26 + rng.Float64())
			r.InletTemp = units.Fahrenheit(64 + rng.Float64())
			r.OutletTemp = units.Fahrenheit(79 + rng.Float64())
			r.DCTemperature = units.Fahrenheit(80 + 2*rng.Float64())
			r.DCHumidity = units.RelativeHumidity(30 + 4*rng.Float64())
			r.Power = units.Watts(55000 + 100*rng.Float64())
			if err := db.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// TestReplayMergedBoundedMemory pins the tentpole's memory bound on a
// multi-day full-machine trace: the streaming replay's peak buffering is
// exactly one tick — one record per rack — where the old path
// materialized the whole trace (ticks × racks records) in a map.
func TestReplayMergedBoundedMemory(t *testing.T) {
	db := multiDayStore(t, 3) // 864 ticks × 48 racks ≈ 41k records
	c := NewCollector()
	maxTick, err := replayMerged(db, 4, c)
	if err != nil {
		t.Fatalf("replayMerged: %v", err)
	}
	c.Finalize()
	if maxTick != topology.NumRacks {
		t.Fatalf("peak tick buffer = %d records, want %d (one per rack)", maxTick, topology.NumRacks)
	}
	if got := c.Fig7RackCoolant(); len(got.FlowGPM) != topology.NumRacks {
		t.Fatalf("replay produced %d rack means", len(got.FlowGPM))
	}
}

// noShardScan hides the ShardScanner capability so CollectFromStore takes
// the buffering fallback path.
type noShardScan struct{ envdb.DB }

// TestCollectFromStoreFallbackEquivalence: the streaming merged replay
// and the legacy buffering fallback must produce identical figures from
// the same store.
func TestCollectFromStoreFallbackEquivalence(t *testing.T) {
	db := multiDayStore(t, 2)
	merged := CollectFromStoreParallel(db, 3)
	fallback := CollectFromStore(noShardScan{db})

	// Fig3/Fig8 carry NaN fields when the trace has no summer months, and
	// NaN != NaN under DeepEqual; the %+v rendering distinguishes every
	// non-NaN float while treating NaN as equal to itself.
	if got, want := fmt.Sprintf("%+v", merged.Fig3CoolantTimeline()), fmt.Sprintf("%+v", fallback.Fig3CoolantTimeline()); got != want {
		t.Errorf("Fig3 differs:\n merged  %s\n grouped %s", got, want)
	}
	if got, want := merged.Fig7RackCoolant(), fallback.Fig7RackCoolant(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig7 differs:\n merged  %+v\n grouped %+v", got, want)
	}
	if got, want := fmt.Sprintf("%+v", merged.Fig8AmbientTimeline()), fmt.Sprintf("%+v", fallback.Fig8AmbientTimeline()); got != want {
		t.Errorf("Fig8 differs:\n merged  %s\n grouped %s", got, want)
	}
	if got, want := merged.Fig9RackAmbient(), fallback.Fig9RackAmbient(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig9 differs:\n merged  %+v\n grouped %+v", got, want)
	}
}

// TestPushdownMatchesReplay: Figs. 7/9 computed via aggregation pushdown
// (compressed columns only, no replay) must be bit-identical to the full
// replay — same per-rack fold order, so reflect.DeepEqual, not a
// tolerance.
func TestPushdownMatchesReplay(t *testing.T) {
	db := multiDayStore(t, 2)
	c := CollectFromStoreParallel(db, 2)

	fig7, err := Fig7CoolantPushdown(db)
	if err != nil {
		t.Fatalf("Fig7CoolantPushdown: %v", err)
	}
	if want := c.Fig7RackCoolant(); !reflect.DeepEqual(fig7, want) {
		t.Errorf("Fig7 pushdown differs:\n pushdown %+v\n replay   %+v", fig7, want)
	}
	fig9, err := Fig9AmbientPushdown(db)
	if err != nil {
		t.Fatalf("Fig9AmbientPushdown: %v", err)
	}
	if want := c.Fig9RackAmbient(); !reflect.DeepEqual(fig9, want) {
		t.Errorf("Fig9 pushdown differs:\n pushdown %+v\n replay   %+v", fig9, want)
	}
}
