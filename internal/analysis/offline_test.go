package analysis

import (
	"math"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

// TestCollectFromStoreMixedLocations: records carrying the same instant in
// different time.Locations (Chicago-simulated vs UTC CSV-reimported) must
// land in the same tick. Grouping by time.Time map keys split them, which
// halved the reconstructed per-tick system power and plant flow.
func TestCollectFromStoreMixedLocations(t *testing.T) {
	db := envdb.NewStore()
	rackA := topology.RackID{Row: 0, Col: 1}
	rackB := topology.RackID{Row: 1, Col: 8}
	start := time.Date(2015, 3, 10, 0, 0, 0, 0, timeutil.Chicago)
	const ticks = 6
	for i := 0; i < ticks; i++ {
		ts := start.Add(time.Duration(i) * timeutil.SampleInterval)
		ra := flatRecord(ts, rackA)
		ra.Flow = 10
		rb := flatRecord(ts.UTC(), rackB) // same instant, different location
		rb.Flow = 20
		if err := db.Append(ra); err != nil {
			t.Fatal(err)
		}
		if err := db.Append(rb); err != nil {
			t.Fatal(err)
		}
	}

	c := CollectFromStore(db)
	fig := c.Fig3CoolantTimeline()
	// One tick per instant → the plant flow is the two racks' sum, not the
	// mean of two half-populated ticks.
	if want := 30.0; math.Abs(fig.FlowBeforeTheta-want) > 1e-9 {
		t.Errorf("plant flow = %v GPM, want %v (instants split into per-location ticks?)", fig.FlowBeforeTheta, want)
	}
	// System power likewise sums both racks per tick.
	trend := c.Fig2YearlyTrend()
	if len(trend.PowerMW) == 0 {
		t.Fatal("no power samples collected")
	}
	wantMW := float64(2*units.KW(55)) / 1e6
	for i, p := range trend.PowerMW {
		if math.Abs(p-wantMW) > 1e-9 {
			t.Errorf("month %d power = %v MW, want %v", i, p, wantMW)
		}
	}
}
