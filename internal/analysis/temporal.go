package analysis

import (
	"time"

	"mira/internal/stats"
)

// YearlyTrend is Fig. 2: the monthly power/utilization timeline over the six
// years with the linear ("red line") fits.
type YearlyTrend struct {
	// YearMonth keys (year*100+month) and the corresponding monthly means.
	YearMonth   []int
	PowerMW     []float64
	Utilization []float64
	// PowerFit and UtilFit are OLS fits against fractional years.
	PowerFit stats.LinearFit
	UtilFit  stats.LinearFit
	// Start/End of the fitted lines, evaluated at the first/last month.
	PowerStartMW, PowerEndMW float64
	UtilStartPct, UtilEndPct float64
}

// ymToYears converts a year*100+month key to fractional years.
func ymToYears(ym int) float64 {
	return float64(ym/100) + (float64(ym%100)-0.5)/12
}

// Fig2YearlyTrend computes the Fig. 2 series and fits.
func (c *Collector) Fig2YearlyTrend() YearlyTrend {
	defer c.timed("fig2_yearly_trend")()
	keys, power := c.powerByYM.Means()
	_, util := c.utilByYM.Means()
	years := make([]float64, len(keys))
	for i, k := range keys {
		years[i] = ymToYears(k)
	}
	out := YearlyTrend{YearMonth: keys, PowerMW: power, Utilization: util}
	if fit, err := stats.FitLine(years, power); err == nil {
		out.PowerFit = fit
		out.PowerStartMW = fit.At(years[0])
		out.PowerEndMW = fit.At(years[len(years)-1])
	}
	if fit, err := stats.FitLine(years, util); err == nil {
		out.UtilFit = fit
		out.UtilStartPct = fit.At(years[0])
		out.UtilEndPct = fit.At(years[len(years)-1])
	}
	return out
}

// CoolantTimeline is Fig. 3: monthly plant flow, inlet, and outlet series
// with the overall standard deviations the caption reports (41 GPM, 0.61°F,
// 0.71°F).
type CoolantTimeline struct {
	YearMonth []int
	FlowGPM   []float64
	InletF    []float64
	OutletF   []float64

	FlowStd, InletStd, OutletStd float64
	// FlowBeforeTheta and FlowAfterTheta are the mean plant flows on either
	// side of the July 2016 cutover.
	FlowBeforeTheta, FlowAfterTheta float64
}

// Fig3CoolantTimeline computes the Fig. 3 series.
func (c *Collector) Fig3CoolantTimeline() CoolantTimeline {
	defer c.timed("fig3_coolant_timeline")()
	keys, flow := c.flowTotByYM.Means()
	_, inlet := c.inletByYM.Means()
	_, outlet := c.outletByYM.Means()
	out := CoolantTimeline{
		YearMonth: keys, FlowGPM: flow, InletF: inlet, OutletF: outlet,
		FlowStd:   c.flowTotOv.StdDev(),
		InletStd:  c.inletOv.StdDev(),
		OutletStd: c.outletOv.StdDev(),
	}
	var before, after stats.Summary
	var bvals, avals []float64
	for i, k := range keys {
		if k < 201607 {
			bvals = append(bvals, flow[i])
		} else {
			avals = append(avals, flow[i])
		}
	}
	before = stats.Summarize(bvals)
	after = stats.Summarize(avals)
	out.FlowBeforeTheta = before.Mean
	out.FlowAfterTheta = after.Mean
	return out
}

// MonthlyProfile is Fig. 4: medians by month of year.
type MonthlyProfile struct {
	Month       []int
	PowerMW     []float64
	Utilization []float64
	FlowGPM     []float64
	InletF      []float64
	OutletF     []float64
	// SecondHalfPowerGain is the H2/H1 median power ratio − 1.
	SecondHalfPowerGain float64
	// SecondHalfUtilGain is the H2/H1 median utilization ratio − 1.
	SecondHalfUtilGain float64
	// WinterInletExcess is the Dec–Mar minus Apr–Nov mean inlet (°F); the
	// economizer makes it positive.
	WinterInletExcess float64
	// MaxCoolantChangePct is the largest |month − January| percent change
	// across flow/inlet/outlet (paper: < 1.5%).
	MaxCoolantChangePct float64
}

// Fig4MonthlyProfile computes the Fig. 4 panels. The table reports monthly
// medians (as the paper plots); the half-year gains are computed from the
// monthly means, which stay sensitive even when the machine saturates.
func (c *Collector) Fig4MonthlyProfile() MonthlyProfile {
	defer c.timed("fig4_monthly_profile")()
	months, power := c.powerByMon.Medians()
	_, util := c.utilByMon.Medians()
	_, powerMean := c.powerByMon.Means()
	_, utilMean := c.utilByMon.Means()
	_, flow := c.flowByMon.Means()
	_, inlet := c.inletByMon.Means()
	_, outlet := c.outletByMon.Means()
	out := MonthlyProfile{
		Month: months, PowerMW: power, Utilization: util,
		FlowGPM: flow, InletF: inlet, OutletF: outlet,
	}
	meanOf := func(vals []float64, pick func(m int) bool) float64 {
		var sel []float64
		for i, m := range months {
			if pick(m) {
				sel = append(sel, vals[i])
			}
		}
		return stats.Mean(sel)
	}
	h1 := func(m int) bool { return m <= 6 }
	h2 := func(m int) bool { return m > 6 }
	out.SecondHalfPowerGain = meanOf(powerMean, h2)/meanOf(powerMean, h1) - 1
	out.SecondHalfUtilGain = meanOf(utilMean, h2)/meanOf(utilMean, h1) - 1
	winter := func(m int) bool { return m == 12 || m <= 3 }
	rest := func(m int) bool { return m > 3 && m < 12 }
	out.WinterInletExcess = meanOf(inlet, winter) - meanOf(inlet, rest)

	var maxChange float64
	for _, vals := range [][]float64{flow, inlet, outlet} {
		jan := vals[0]
		for _, v := range vals {
			if ch := stats.PercentChange(jan, v); ch > maxChange {
				maxChange = ch
			} else if -ch > maxChange {
				maxChange = -ch
			}
		}
	}
	out.MaxCoolantChangePct = maxChange
	return out
}

// WeekdayProfile is Fig. 5: day-of-week means and the Monday-effect
// statistics.
type WeekdayProfile struct {
	// Weekday keys 0=Sunday..6=Saturday.
	Weekday     []int
	PowerMW     []float64
	Utilization []float64
	FlowGPM     []float64
	InletF      []float64
	OutletF     []float64
	// NonMondayPowerGainPct: power on non-Mondays vs Monday (paper ≈6%).
	NonMondayPowerGainPct float64
	// NonMondayUtilGainPct: utilization gain (paper ≈1.5%).
	NonMondayUtilGainPct float64
	// NonMondayOutletGainPct: outlet temperature gain (paper ≈2%).
	NonMondayOutletGainPct float64
	// NonMondayInletGainPct and NonMondayFlowGainPct should be ≈0.
	NonMondayInletGainPct float64
	NonMondayFlowGainPct  float64
}

// Fig5WeekdayProfile computes the Fig. 5 panels.
func (c *Collector) Fig5WeekdayProfile() WeekdayProfile {
	defer c.timed("fig5_weekday_profile")()
	days, power := c.powerByDow.Means()
	_, util := c.utilByDow.Means()
	_, flow := c.flowByDow.Means()
	_, inlet := c.inletByDow.Means()
	_, outlet := c.outletByDow.Means()
	out := WeekdayProfile{
		Weekday: days, PowerMW: power, Utilization: util,
		FlowGPM: flow, InletF: inlet, OutletF: outlet,
	}
	gain := func(vals []float64) float64 {
		var monday, others float64
		var n int
		for i, d := range days {
			if time.Weekday(d) == time.Monday {
				monday = vals[i]
			} else {
				others += vals[i]
				n++
			}
		}
		if n == 0 || monday == 0 {
			return 0
		}
		return (others/float64(n)/monday - 1) * 100
	}
	out.NonMondayPowerGainPct = gain(power)
	out.NonMondayUtilGainPct = gain(util)
	out.NonMondayOutletGainPct = gain(outlet)
	out.NonMondayInletGainPct = gain(inlet)
	out.NonMondayFlowGainPct = gain(flow)
	return out
}

// AmbientTimeline is Fig. 8: the monthly data-center temperature and
// humidity with the overall standard deviations (2.48°F, 3.66 RH).
type AmbientTimeline struct {
	YearMonth  []int
	TempF      []float64
	HumidityRH []float64

	TempStd, HumStd  float64
	TempMin, TempMax float64
	HumMin, HumMax   float64
	// SummerHumidityExcess is mean summer-month humidity minus winter.
	SummerHumidityExcess float64
}

// Fig8AmbientTimeline computes the Fig. 8 series.
func (c *Collector) Fig8AmbientTimeline() AmbientTimeline {
	defer c.timed("fig8_ambient_timeline")()
	keys, temp := c.tempByYM.Means()
	_, hum := c.humByYM.Means()
	out := AmbientTimeline{
		YearMonth: keys, TempF: temp, HumidityRH: hum,
		TempStd: c.tempOv.StdDev(), HumStd: c.humOv.StdDev(),
		TempMin: stats.Min(temp), TempMax: stats.Max(temp),
		HumMin: stats.Min(hum), HumMax: stats.Max(hum),
	}
	var summer, winter []float64
	for i, k := range keys {
		switch m := k % 100; {
		case m >= 6 && m <= 8:
			summer = append(summer, hum[i])
		case m == 12 || m <= 2:
			winter = append(winter, hum[i])
		}
	}
	out.SummerHumidityExcess = stats.Mean(summer) - stats.Mean(winter)
	return out
}
