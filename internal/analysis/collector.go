// Package analysis reproduces every figure of the paper's evaluation from
// simulated telemetry: the yearly, monthly, and day-of-week profiles
// (Figs. 2, 4, 5), the coolant and ambient timelines (Figs. 3, 8), the
// rack-level spatial maps (Figs. 6, 7, 9), the CMF frequency and location
// statistics (Figs. 10, 11), the pre-failure lead-up curves (Fig. 12), and
// the post-CMF failure-rate and type analyses (Figs. 14, 15). The CMF
// predictor itself (Fig. 13) lives in internal/core.
//
// A single streaming Collector gathers every aggregate in one simulation
// pass with bounded memory.
package analysis

import (
	"context"
	"time"

	"mira/internal/sensors"
	"mira/internal/series"
	"mira/internal/sim"
	"mira/internal/topology"
	"mira/internal/units"
)

// Collector is a sim.Recorder that accumulates every figure's aggregates.
type Collector struct {
	sim.NopRecorder

	// ctx carries the replay trace so per-figure aggregations start as
	// children of the analysis.replay span (nil outside an offline replay,
	// in which case figures trace as roots). See Collector.timed in obs.go.
	ctx context.Context

	// System-level profiles.
	powerByYM  *series.Profile
	utilByYM   *series.Profile
	powerByMon *series.Profile
	utilByMon  *series.Profile
	powerByDow *series.Profile
	utilByDow  *series.Profile

	// Per-tick cross-rack aggregates (Fig. 3 plots one system-level line
	// per metric: the plant flow total and the rack-mean temperatures).
	flowTotByYM  *series.Profile
	flowTotOv    series.VarAcc
	curTick      time.Time
	curFlowSum   float64
	curInletSum  float64
	curOutletSum float64
	curFlowCount int

	// Cross-rack coolant/ambient profiles.
	inletByYM   *series.Profile
	outletByYM  *series.Profile
	flowByMon   *series.Profile
	inletByMon  *series.Profile
	outletByMon *series.Profile
	flowByDow   *series.Profile
	inletByDow  *series.Profile
	outletByDow *series.Profile
	tempByYM    *series.Profile
	humByYM     *series.Profile

	// Overall standard deviations (paper Figs. 3, 8 captions).
	inletOv  series.VarAcc
	outletOv series.VarAcc
	tempOv   series.VarAcc
	humOv    series.VarAcc

	// Per-rack means.
	rackPower  [topology.NumRacks]series.MeanAcc
	rackUtil   [topology.NumRacks]series.MeanAcc
	rackFlow   [topology.NumRacks]series.MeanAcc
	rackInlet  [topology.NumRacks]series.MeanAcc
	rackOutlet [topology.NumRacks]series.MeanAcc
	rackTemp   [topology.NumRacks]series.MeanAcc
	rackHum    [topology.NumRacks]series.MeanAcc

	// Incidents observed.
	incidents []sim.Incident
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		powerByYM:   series.NewProfile(series.ByYearMonth),
		utilByYM:    series.NewProfile(series.ByYearMonth),
		powerByMon:  series.NewProfile(series.ByMonth),
		utilByMon:   series.NewProfile(series.ByMonth),
		powerByDow:  series.NewProfile(series.ByWeekday),
		utilByDow:   series.NewProfile(series.ByWeekday),
		flowTotByYM: series.NewProfile(series.ByYearMonth),
		inletByYM:   series.NewProfile(series.ByYearMonth),
		outletByYM:  series.NewProfile(series.ByYearMonth),
		flowByMon:   series.NewProfile(series.ByMonth),
		inletByMon:  series.NewProfile(series.ByMonth),
		outletByMon: series.NewProfile(series.ByMonth),
		flowByDow:   series.NewProfile(series.ByWeekday),
		inletByDow:  series.NewProfile(series.ByWeekday),
		outletByDow: series.NewProfile(series.ByWeekday),
		tempByYM:    series.NewProfile(series.ByYearMonth),
		humByYM:     series.NewProfile(series.ByYearMonth),
	}
}

// OnTick records system power and utilization and flushes the previous
// tick's plant-flow total (OnTick always precedes the tick's samples).
func (c *Collector) OnTick(t time.Time, p units.Watts, util float64) {
	c.flushFlow()
	c.curTick = t
	mw := p.Megawatts()
	c.powerByYM.Add(t, mw)
	c.powerByMon.Add(t, mw)
	c.powerByDow.Add(t, mw)
	pct := util * 100
	c.utilByYM.Add(t, pct)
	c.utilByMon.Add(t, pct)
	c.utilByDow.Add(t, pct)
}

func (c *Collector) flushFlow() {
	if c.curFlowCount > 0 {
		n := float64(c.curFlowCount)
		c.flowTotByYM.Add(c.curTick, c.curFlowSum)
		c.flowTotOv.Add(c.curFlowSum)
		c.inletOv.Add(c.curInletSum / n)
		c.outletOv.Add(c.curOutletSum / n)
		c.curFlowSum, c.curInletSum, c.curOutletSum, c.curFlowCount = 0, 0, 0, 0
	}
}

// OnSample accumulates the coolant and ambient aggregates.
func (c *Collector) OnSample(r sensors.Record) {
	i := r.Rack.Index()
	flow := float64(r.Flow)
	inlet := float64(r.InletTemp)
	outlet := float64(r.OutletTemp)
	temp := float64(r.DCTemperature)
	hum := float64(r.DCHumidity)

	c.curFlowSum += flow
	c.curInletSum += inlet
	c.curOutletSum += outlet
	c.curFlowCount++

	c.inletByYM.Add(r.Time, inlet)
	c.outletByYM.Add(r.Time, outlet)
	c.flowByMon.Add(r.Time, flow)
	c.inletByMon.Add(r.Time, inlet)
	c.outletByMon.Add(r.Time, outlet)
	c.flowByDow.Add(r.Time, flow)
	c.inletByDow.Add(r.Time, inlet)
	c.outletByDow.Add(r.Time, outlet)
	c.tempByYM.Add(r.Time, temp)
	c.humByYM.Add(r.Time, hum)

	c.tempOv.Add(temp)
	c.humOv.Add(hum)

	c.rackPower[i].Add(float64(r.Power))
	c.rackFlow[i].Add(flow)
	c.rackInlet[i].Add(inlet)
	c.rackOutlet[i].Add(outlet)
	c.rackTemp[i].Add(temp)
	c.rackHum[i].Add(hum)
}

// OnRackState accumulates per-rack utilization.
func (c *Collector) OnRackState(_ time.Time, rack topology.RackID, util float64) {
	c.rackUtil[rack.Index()].Add(util * 100)
}

// OnIncident remembers the incident list.
func (c *Collector) OnIncident(inc sim.Incident) { c.incidents = append(c.incidents, inc) }

// Finalize flushes trailing per-tick accumulations. Call once after the run.
func (c *Collector) Finalize() { c.flushFlow() }

// Incidents returns the observed CMF incidents.
func (c *Collector) Incidents() []sim.Incident { return c.incidents }

// rackMeans extracts a per-rack mean vector.
func rackMeans(accs *[topology.NumRacks]series.MeanAcc) []float64 {
	out := make([]float64, topology.NumRacks)
	for i := range accs {
		out[i] = accs[i].Mean()
	}
	return out
}
