package analysis

import (
	"sort"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/units"
)

// CollectFromStore replays an environmental database (the slice-backed
// envdb.Store or the compressed tsdb.Store, e.g. telemetry re-imported from
// a mirasim CSV export) through a Collector, enabling offline analysis of
// exported traces. System power is reconstructed as the sum of rack powers
// per tick; utilization is unavailable offline, so the
// utilization-dependent panels of Figs. 2, 4–6 read NaN while every
// coolant/ambient figure (3, 7, 8, 9) is fully usable.
func CollectFromStore(db envdb.DB) *Collector {
	defer timed("collect_from_store")()
	c := NewCollector()
	// Records are stored rack-major; group them into ticks by instant.
	// Keys are UnixNano, not time.Time: the == on time.Time compares wall
	// clock and location too, so identical instants from different sources
	// (Chicago-simulated vs UTC CSV-reimported telemetry) would split into
	// separate ticks and corrupt the reconstructed system power.
	byTick := make(map[int64][]sensors.Record)
	var order []int64
	db.EachRecord(func(r sensors.Record) {
		k := r.Time.UnixNano()
		if _, ok := byTick[k]; !ok {
			order = append(order, k)
		}
		byTick[k] = append(byTick[k], r)
	})
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	for _, k := range order {
		recs := byTick[k]
		var totalPower units.Watts
		for _, r := range recs {
			totalPower += r.Power
		}
		c.OnTick(recs[0].Time, totalPower, nanUtil)
		for _, r := range recs {
			c.OnSample(r)
		}
	}
	c.Finalize()
	return c
}

// nanUtil marks utilization as unknown in offline mode.
var nanUtil = func() float64 {
	var zero float64
	return zero / zero // NaN
}()
