package analysis

import (
	"sort"
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/units"
)

// CollectFromStore replays an environmental database (the slice-backed
// envdb.Store or the compressed tsdb.Store, e.g. telemetry re-imported from
// a mirasim CSV export) through a Collector, enabling offline analysis of
// exported traces. System power is reconstructed as the sum of rack powers
// per tick; utilization is unavailable offline, so the
// utilization-dependent panels of Figs. 2, 4–6 read NaN while every
// coolant/ambient figure (3, 7, 8, 9) is fully usable.
func CollectFromStore(db envdb.DB) *Collector {
	c := NewCollector()
	// Records are stored rack-major; group them into ticks by timestamp.
	byTick := make(map[time.Time][]sensors.Record)
	var order []time.Time
	db.EachRecord(func(r sensors.Record) {
		if _, ok := byTick[r.Time]; !ok {
			order = append(order, r.Time)
		}
		byTick[r.Time] = append(byTick[r.Time], r)
	})
	sortTimes(order)
	for _, ts := range order {
		recs := byTick[ts]
		var totalPower units.Watts
		for _, r := range recs {
			totalPower += r.Power
		}
		c.OnTick(ts, totalPower, nanUtil)
		for _, r := range recs {
			c.OnSample(r)
		}
	}
	c.Finalize()
	return c
}

// nanUtil marks utilization as unknown in offline mode.
var nanUtil = func() float64 {
	var zero float64
	return zero / zero // NaN
}()

func sortTimes(ts []time.Time) {
	sort.Slice(ts, func(a, b int) bool { return ts[a].Before(ts[b]) })
}
