package analysis

import (
	"context"
	"sort"
	"time"

	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/stats"
	"mira/internal/topology"
	"mira/internal/units"
)

// CollectFromStore replays an environmental database (the slice-backed
// envdb.Store or the compressed tsdb.Store, e.g. telemetry re-imported from
// a mirasim CSV export) through a Collector, enabling offline analysis of
// exported traces. System power is reconstructed as the sum of rack powers
// per tick; utilization is unavailable offline, so the
// utilization-dependent panels of Figs. 2, 4–6 read NaN while every
// coolant/ambient figure (3, 7, 8, 9) is fully usable. It is
// CollectFromStoreParallel with the default worker count.
func CollectFromStore(db envdb.DB) *Collector {
	return CollectFromStoreParallel(db, 0)
}

// CollectOptions configures an offline replay.
type CollectOptions struct {
	// Workers bounds the scan's shard-decode pool; <= 0 selects GOMAXPROCS.
	Workers int
	// ForceRecords replays through the record-at-a-time merge surface even
	// when the store supports batch-columnar scans — the comparison
	// baseline for verifying that the chunked default produces identical
	// figures (scripts/smoke.sh diffs the two).
	ForceRecords bool
	// Hall selects which machine hall of a fleet store to analyze (default
	// 0 — for a single-machine store that is the whole trace). The paper's
	// figures describe one 48-rack machine, so a fleet replay analyzes one
	// hall at a time; records from other halls are skipped during the scan
	// and the reconstructed system power covers the selected hall only.
	// The filter applies identically to local and remote stores, so the
	// figures stay bit-identical across a push/analyze round trip.
	Hall int
}

// CollectFromStoreParallel is CollectFromStoreOpts with only the worker
// count set — the chunked scan path when the store supports it.
func CollectFromStoreParallel(db envdb.DB, workers int) *Collector {
	return CollectFromStoreOpts(db, CollectOptions{Workers: workers})
}

// CollectFromStoreOpts replays db through a Collector. The replay is a
// streaming run-length pass over the time-ordered merge: peak buffering is
// one tick — at most one record per rack — regardless of trace length.
// Stores exposing the batch-columnar surface (envdb.ChunkScanner) replay
// chunk-at-a-time, materializing records only inside the tick grouping
// loop; plain ShardScanner stores replay record-at-a-time; stores with
// neither capability fall back to the buffering replay (O(trace) memory).
// Both scan surfaces decode the same stored bytes, so the figures are
// bit-identical across all paths.
//
// Stores with a downsampled cold tier replay the hot window only: a cold
// window's mean record is not a sample, so feeding it to the tick/incident
// pipeline would fabricate ticks. Replay figures therefore cover the
// retained full-rate range, while the Fig. 7/9 pushdown figures aggregate
// across both tiers exactly.
func CollectFromStoreOpts(db envdb.DB, opts CollectOptions) *Collector {
	return CollectFromStoreCtx(context.Background(), db, opts)
}

// CollectFromStoreCtx is CollectFromStoreOpts under a caller trace: the
// replay runs as an "analysis.replay" span parented to ctx, the scan path
// taken is recorded as the span's scan_mode attribute (chunked, record, or
// grouped), and the returned Collector keeps the replay trace so later
// per-figure aggregations join it as children. Stores exposing the
// context-aware scan capabilities (envdb.ContextChunkScanner,
// envdb.ContextTierScanner) additionally propagate the trace into their
// own scan spans; plain stores replay identically, just untraced below
// this level.
func CollectFromStoreCtx(ctx context.Context, db envdb.DB, opts CollectOptions) *Collector {
	defer timed("collect_from_store")()
	ctx, span := obs.Span(ctx, "analysis.replay")
	defer span.End()
	c := NewCollector()
	c.ctx = ctx
	mode := "grouped"
	// The replay surfaces are error-free; a merged-scan failure means
	// in-process corruption — the same invariant the tsdb query surface
	// treats as panic-worthy.
	if cs, ok := db.(envdb.ChunkScanner); ok && !opts.ForceRecords {
		mode = "chunked"
		if _, err := replayChunkedHallCtx(ctx, cs, opts.Workers, opts.Hall, c); err != nil {
			panic(err)
		}
	} else if ss, ok := db.(envdb.ShardScanner); ok {
		mode = "record"
		if _, err := replayMergedHallCtx(ctx, ss, opts.Workers, opts.Hall, c); err != nil {
			panic(err)
		}
	} else {
		replayGrouped(db, opts.Hall, c)
	}
	span.SetAttr("scan_mode", mode)
	c.Finalize()
	return c
}

// tickAccum groups a time-ordered record stream into monitor ticks and
// feeds them to the collector; shared by the record-at-a-time and chunked
// replays so both produce identical figures by construction.
//
// Grouping keys are unix nanoseconds, not time.Time: == on time.Time
// compares wall clock and location too, so identical instants from
// different sources (Chicago-simulated vs UTC CSV-reimported telemetry)
// would split into separate ticks and corrupt the reconstructed system
// power.
type tickAccum struct {
	c       *Collector
	tick    []sensors.Record
	curN    int64
	maxTick int
}

func newTickAccum(c *Collector) *tickAccum {
	return &tickAccum{c: c, tick: make([]sensors.Record, 0, topology.NumRacks)}
}

// visit appends one record of instant k; a new instant flushes the
// previous tick first.
func (a *tickAccum) visit(k int64, r sensors.Record) {
	if len(a.tick) != 0 && k != a.curN {
		a.flush()
	}
	a.curN = k
	a.tick = append(a.tick, r)
}

// flush replays the buffered tick: system power is reconstructed as the
// sum of rack powers at the instant.
func (a *tickAccum) flush() {
	if len(a.tick) == 0 {
		return
	}
	var totalPower units.Watts
	for _, r := range a.tick {
		totalPower += r.Power
	}
	a.c.OnTick(a.tick[0].Time, totalPower, nanUtil)
	for _, r := range a.tick {
		a.c.OnSample(r)
	}
	if len(a.tick) > a.maxTick {
		a.maxTick = len(a.tick)
	}
	a.tick = a.tick[:0]
}

// replayMerged streams a merged (global time order, rack-ascending within
// an instant) record-at-a-time scan through the collector. It returns the
// peak tick-buffer length so tests can pin the O(racks) memory bound.
func replayMerged(ss envdb.ShardScanner, workers int, c *Collector) (maxTick int, err error) {
	return replayMergedHallCtx(context.Background(), ss, workers, 0, c)
}

func replayMergedCtx(ctx context.Context, ss envdb.ShardScanner, workers int, c *Collector) (maxTick int, err error) {
	return replayMergedHallCtx(ctx, ss, workers, 0, c)
}

func replayMergedHallCtx(ctx context.Context, ss envdb.ShardScanner, workers, hall int, c *Collector) (maxTick int, err error) {
	acc := newTickAccum(c)
	visit := func(r sensors.Record) bool {
		if r.Rack.Hall != hall {
			return true
		}
		acc.visit(r.Time.UnixNano(), r)
		return true
	}
	// Tiered store: replay raw samples only. Downsampled window records
	// are aggregate stand-ins, not monitor ticks.
	tierVisit := func(r sensors.Record, tier envdb.Tier) bool {
		if tier != envdb.TierRaw {
			return true
		}
		return visit(r)
	}
	if cts, ok := ss.(envdb.ContextTierScanner); ok {
		err = cts.EachRecordMergedTierCtx(ctx, workers, tierVisit)
	} else if ts, ok := ss.(envdb.TierScanner); ok {
		err = ts.EachRecordMergedTier(workers, tierVisit)
	} else {
		err = ss.EachRecordMerged(workers, visit)
	}
	if err != nil {
		return acc.maxTick, err
	}
	acc.flush()
	return acc.maxTick, nil
}

// replayChunked is replayMerged over the batch-columnar scan surface: tick
// boundaries are found on the raw int64 timestamp column and records are
// materialized only as they enter the tick buffer. Chunks carry the tier
// column, so cold-tier rows are skipped without a separate capability
// probe. Chunk.Record materializes from the same decoded columns the
// record surface reads, so the resulting figures are bit-identical to the
// record-at-a-time replay.
func replayChunked(cs envdb.ChunkScanner, workers int, c *Collector) (maxTick int, err error) {
	return replayChunkedHallCtx(context.Background(), cs, workers, 0, c)
}

func replayChunkedCtx(ctx context.Context, cs envdb.ChunkScanner, workers int, c *Collector) (maxTick int, err error) {
	return replayChunkedHallCtx(ctx, cs, workers, 0, c)
}

func replayChunkedHallCtx(ctx context.Context, cs envdb.ChunkScanner, workers, hall int, c *Collector) (maxTick int, err error) {
	acc := newTickAccum(c)
	// The hall filter runs on the packed-code column (hall in the high
	// byte), so off-hall rows never materialize a record.
	hallCode := uint16(hall) << 8
	visit := func(ch *envdb.Chunk) bool {
		for i, k := range ch.Times {
			if ch.Tiers[i] != envdb.TierRaw || ch.Racks[i]&0xFF00 != hallCode {
				continue
			}
			acc.visit(k, ch.Record(i))
		}
		return true
	}
	if ccs, ok := cs.(envdb.ContextChunkScanner); ok {
		err = ccs.EachChunkMergedCtx(ctx, workers, visit)
	} else {
		err = cs.EachChunkMerged(workers, visit)
	}
	if err != nil {
		return acc.maxTick, err
	}
	acc.flush()
	return acc.maxTick, nil
}

// replayGrouped is the fallback for stores without merged scans: buffer
// the whole trace, group records into ticks by instant, and replay in
// sorted order. O(trace) memory — kept only for envdb.DB implementations
// outside this module.
func replayGrouped(db envdb.DB, hall int, c *Collector) {
	byTick := make(map[int64][]sensors.Record)
	var order []int64
	db.EachRecord(func(r sensors.Record) {
		if r.Rack.Hall != hall {
			return
		}
		k := r.Time.UnixNano()
		if _, ok := byTick[k]; !ok {
			order = append(order, k)
		}
		byTick[k] = append(byTick[k], r)
	})
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	for _, k := range order {
		recs := byTick[k]
		var totalPower units.Watts
		for _, r := range recs {
			totalPower += r.Power
		}
		c.OnTick(recs[0].Time, totalPower, nanUtil)
		for _, r := range recs {
			c.OnSample(r)
		}
	}
}

// nanUtil marks utilization as unknown in offline mode.
var nanUtil = func() float64 {
	var zero float64
	return zero / zero // NaN
}()

// rackMeansPushdown computes each rack's whole-trace mean of one metric
// via aggregation pushdown: one single-window Aggregate per rack, so only
// that metric's compressed column is decoded and no records are
// materialized. For quantized channels the sums accumulate in the integer
// domain, which makes the means exact and compaction-invariant: the same
// value before and after the store's cold range is downsampled. They agree
// with a full float-order replay to within summation-order rounding.
func rackMeansPushdown(ctx context.Context, db envdb.Aggregator, m sensors.Metric, from, to time.Time, hall int) ([]float64, error) {
	ca, traced := db.(envdb.ContextAggregator)
	out := make([]float64, topology.NumRacks)
	for i := range out {
		rack := topology.RackByIndex(i)
		rack.Hall = hall
		var aggs []envdb.WindowAgg
		var err error
		if traced {
			aggs, err = ca.AggregateCtx(ctx, rack, m, from, to, 0)
		} else {
			aggs, err = db.Aggregate(rack, m, from, to, 0)
		}
		if err != nil {
			return nil, err
		}
		if len(aggs) == 0 {
			out[i] = nanUtil
			continue
		}
		out[i] = aggs[0].Mean()
	}
	return out, nil
}

// Fig7CoolantPushdown computes the Fig. 7 panels straight from compressed
// columns, skipping record materialization and the replay entirely — the
// fast path when only per-rack means are needed. Results match
// Fig7RackCoolant after a full replay of the same store up to float
// summation order, and are identical before and after retention
// compaction (the cold tier stores exact sums).
func Fig7CoolantPushdown(db envdb.Aggregator) (RackCoolant, error) {
	return Fig7CoolantPushdownCtx(context.Background(), db)
}

// Fig7CoolantPushdownCtx is Fig7CoolantPushdown under a caller trace: the
// per-rack Aggregate sweep runs as children of an "analysis.fig7_pushdown"
// span parented to ctx (when the store implements envdb.ContextAggregator).
func Fig7CoolantPushdownCtx(ctx context.Context, db envdb.Aggregator) (RackCoolant, error) {
	return Fig7CoolantPushdownHall(ctx, db, 0)
}

// Fig7CoolantPushdownHall is Fig7CoolantPushdownCtx scoped to one machine
// hall of a fleet store (hall 0 is the whole store for single-machine
// trees) — the pushdown analogue of CollectOptions.Hall.
func Fig7CoolantPushdownHall(ctx context.Context, db envdb.Aggregator, hall int) (RackCoolant, error) {
	defer timed("fig7_rack_coolant_pushdown")()
	ctx, span := obs.Span(ctx, "analysis.fig7_pushdown")
	defer span.End()
	first, last, ok := db.Bounds()
	if !ok {
		return RackCoolant{}, nil
	}
	to := last.Add(time.Nanosecond)
	flow, err := rackMeansPushdown(ctx, db, sensors.MetricFlow, first, to, hall)
	if err != nil {
		return RackCoolant{}, err
	}
	inlet, err := rackMeansPushdown(ctx, db, sensors.MetricInletTemp, first, to, hall)
	if err != nil {
		return RackCoolant{}, err
	}
	outlet, err := rackMeansPushdown(ctx, db, sensors.MetricOutletTemp, first, to, hall)
	if err != nil {
		return RackCoolant{}, err
	}
	return RackCoolant{
		FlowGPM: flow, InletF: inlet, OutletF: outlet,
		FlowSpreadPct:   stats.SpreadPercent(flow),
		InletSpreadPct:  stats.SpreadPercent(inlet),
		OutletSpreadPct: stats.SpreadPercent(outlet),
	}, nil
}

// Fig9AmbientPushdown computes the Fig. 9 panels via aggregation
// pushdown; matches Fig9RackAmbient after a full replay of the same store
// up to float summation order, and is compaction-invariant.
func Fig9AmbientPushdown(db envdb.Aggregator) (RackAmbient, error) {
	return Fig9AmbientPushdownCtx(context.Background(), db)
}

// Fig9AmbientPushdownCtx is Fig9AmbientPushdown under a caller trace; see
// Fig7CoolantPushdownCtx.
func Fig9AmbientPushdownCtx(ctx context.Context, db envdb.Aggregator) (RackAmbient, error) {
	return Fig9AmbientPushdownHall(ctx, db, 0)
}

// Fig9AmbientPushdownHall is Fig9AmbientPushdownCtx scoped to one machine
// hall; see Fig7CoolantPushdownHall.
func Fig9AmbientPushdownHall(ctx context.Context, db envdb.Aggregator, hall int) (RackAmbient, error) {
	defer timed("fig9_rack_ambient_pushdown")()
	ctx, span := obs.Span(ctx, "analysis.fig9_pushdown")
	defer span.End()
	first, last, ok := db.Bounds()
	if !ok {
		return RackAmbient{}, nil
	}
	to := last.Add(time.Nanosecond)
	temp, err := rackMeansPushdown(ctx, db, sensors.MetricDCTemperature, first, to, hall)
	if err != nil {
		return RackAmbient{}, err
	}
	hum, err := rackMeansPushdown(ctx, db, sensors.MetricDCHumidity, first, to, hall)
	if err != nil {
		return RackAmbient{}, err
	}
	return ambientFromMeans(temp, hum), nil
}

// ambientFromMeans assembles the Fig. 9 structure from per-rack mean
// vectors; shared by the replay and pushdown paths.
func ambientFromMeans(temp, hum []float64) RackAmbient {
	out := RackAmbient{
		TempF: temp, HumidityRH: hum,
		TempSpreadPct:   stats.SpreadPercent(temp),
		HumSpreadPct:    stats.SpreadPercent(hum),
		MaxHumidityRack: argmaxRack(hum),
	}
	var endT, endH, inT, inH []float64
	for _, r := range topology.AllRacks() {
		if r.DistanceFromRowEnd() < 3 {
			endT = append(endT, temp[r.Index()])
			endH = append(endH, hum[r.Index()])
		} else {
			inT = append(inT, temp[r.Index()])
			inH = append(inH, hum[r.Index()])
		}
	}
	out.RowEndTempExcess = stats.Mean(endT) - stats.Mean(inT)
	out.RowEndHumidityDeficit = stats.Mean(inH) - stats.Mean(endH)
	return out
}
