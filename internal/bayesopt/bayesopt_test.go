package bayesopt

import (
	"math"
	"testing"
)

func TestIntGrid(t *testing.T) {
	g := IntGrid([]int{1, 2}, []int{10, 20, 30})
	if len(g) != 6 {
		t.Fatalf("grid size = %d, want 6", len(g))
	}
	if g[0][0] != 1 || g[0][1] != 10 {
		t.Errorf("g[0] = %v", g[0])
	}
	if g[5][0] != 2 || g[5][1] != 30 {
		t.Errorf("g[5] = %v", g[5])
	}
	if IntGrid() != nil {
		t.Error("no axes should give nil")
	}
	if IntGrid([]int{}) != nil {
		t.Error("empty axis should give nil")
	}
}

func TestMinimizeFindsQuadraticMinimum(t *testing.T) {
	// f(x,y) = (x-12)² + (y-6)², minimum at (12, 6).
	grid := IntGrid([]int{2, 4, 6, 8, 10, 12, 14, 16}, []int{2, 4, 6, 8, 10})
	calls := 0
	f := func(x []float64) float64 {
		calls++
		return (x[0]-12)*(x[0]-12) + (x[1]-6)*(x[1]-6)
	}
	res, err := Minimize(f, Config{Candidates: grid, InitSamples: 4, Iterations: 12, LengthScale: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > 4.1 {
		t.Errorf("BestCost = %v at %v, want near-optimal (<= 4.1)", res.BestCost, res.Best)
	}
	if calls != len(res.Evaluated) || calls != len(res.Costs) {
		t.Errorf("bookkeeping mismatch: calls=%d evaluated=%d costs=%d", calls, len(res.Evaluated), len(res.Costs))
	}
	if calls > 16 {
		t.Errorf("evaluated %d points, budget is 16", calls)
	}
	// BO should not need the whole 40-point grid.
	if calls >= len(grid) {
		t.Errorf("BO evaluated the entire grid (%d points)", calls)
	}
}

func TestMinimizeBeatsBudgetedScanOnAverage(t *testing.T) {
	// With a smooth objective and a limited budget, GP-guided search should
	// find a better point than the same number of arbitrary-order probes.
	grid := IntGrid([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f := func(x []float64) float64 { return math.Abs(x[0] - 13) }
	res, err := Minimize(f, Config{Candidates: grid, InitSamples: 2, Iterations: 5, LengthScale: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Budget of 7 of 16 candidates; GP should close in on 13.
	if res.BestCost > 1 {
		t.Errorf("BestCost = %v (best=%v), want <= 1", res.BestCost, res.Best)
	}
}

func TestMinimizeExhaustsSmallGrid(t *testing.T) {
	grid := IntGrid([]int{1, 2, 3})
	res, err := Minimize(func(x []float64) float64 { return -x[0] }, Config{Candidates: grid, InitSamples: 2, Iterations: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluated) != 3 {
		t.Errorf("evaluated %d, want all 3", len(res.Evaluated))
	}
	if res.Best[0] != 3 {
		t.Errorf("Best = %v, want [3]", res.Best)
	}
}

func TestMinimizeErrors(t *testing.T) {
	if _, err := Minimize(func([]float64) float64 { return 0 }, Config{}); err != ErrNoCandidates {
		t.Errorf("want ErrNoCandidates, got %v", err)
	}
	bad := [][]float64{{1, 2}, {3}}
	if _, err := Minimize(func([]float64) float64 { return 0 }, Config{Candidates: bad}); err == nil {
		t.Error("ragged candidates should error")
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	grid := IntGrid([]int{1, 2, 3, 4, 5, 6, 7, 8})
	f := func(x []float64) float64 { return (x[0] - 5) * (x[0] - 5) }
	run := func() []float64 {
		res, err := Minimize(f, Config{Candidates: grid, InitSamples: 2, Iterations: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.Costs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic evaluation count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic costs")
		}
	}
}

func TestGPInterpolatesObservations(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{5, 3, 2, 4}
	g, err := fitGP(X, y, 1, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		mu, sigma := g.predict(x)
		if math.Abs(mu-y[i]) > 0.01 {
			t.Errorf("GP mean at observed %v = %v, want %v", x, mu, y[i])
		}
		if sigma > 0.01 {
			t.Errorf("GP sigma at observed point = %v, want ≈0", sigma)
		}
	}
	// Far from data, the posterior reverts toward the mean with high sigma.
	mu, sigma := g.predict([]float64{100})
	if math.Abs(mu-3.5) > 0.01 {
		t.Errorf("far-field mean = %v, want prior mean 3.5", mu)
	}
	if sigma < 0.9 {
		t.Errorf("far-field sigma = %v, want ≈1", sigma)
	}
}

func TestExpectedImprovement(t *testing.T) {
	// A point certainly better than best has EI = best - mu.
	if ei := expectedImprovement(1, 0, 3); ei != 2 {
		t.Errorf("certain-improvement EI = %v, want 2", ei)
	}
	// A point certainly worse has EI = 0.
	if ei := expectedImprovement(5, 0, 3); ei != 0 {
		t.Errorf("certain-worse EI = %v, want 0", ei)
	}
	// Uncertainty adds value: same mean, more sigma → more EI.
	low := expectedImprovement(3, 0.1, 3)
	high := expectedImprovement(3, 1.0, 3)
	if high <= low {
		t.Errorf("EI should grow with sigma: %v vs %v", low, high)
	}
	// EI is non-negative.
	for _, mu := range []float64{-2, 0, 2, 5} {
		for _, s := range []float64{0, 0.5, 2} {
			if ei := expectedImprovement(mu, s, 1); ei < 0 {
				t.Errorf("EI(%v,%v) = %v < 0", mu, s, ei)
			}
		}
	}
}

func TestNormFunctions(t *testing.T) {
	if math.Abs(normCDF(0)-0.5) > 1e-12 {
		t.Error("normCDF(0) != 0.5")
	}
	if math.Abs(normCDF(1.96)-0.975) > 1e-3 {
		t.Errorf("normCDF(1.96) = %v", normCDF(1.96))
	}
	if math.Abs(normPDF(0)-0.39894) > 1e-4 {
		t.Errorf("normPDF(0) = %v", normPDF(0))
	}
}
