// Package bayesopt implements the Bayesian-optimization loop the paper uses
// for hyper-parameter tuning of the CMF predictor's neural-network
// architecture ("Bayesian Optimization ... is used to optimize the
// architecture of this neural network (number of neurons per layer)").
//
// A Gaussian-process surrogate with an RBF kernel models the objective over
// a finite candidate grid; candidates are picked by the expected-improvement
// acquisition function. The objective is minimized (e.g. validation loss).
package bayesopt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mira/internal/mat"
)

// Objective evaluates a candidate point and returns its cost (lower is
// better), e.g. cross-validated validation loss of a network architecture.
type Objective func(x []float64) float64

// Config controls an optimization run.
type Config struct {
	// Candidates is the finite search grid; each entry is one point.
	Candidates [][]float64
	// InitSamples is how many random candidates to evaluate before the GP
	// guides the search (default 3).
	InitSamples int
	// Iterations is the number of GP-guided evaluations (default 10).
	Iterations int
	// LengthScale is the RBF kernel length scale (default 1).
	LengthScale float64
	// Noise is the observation-noise variance added to the kernel diagonal
	// (default 1e-6).
	Noise float64
	// Seed drives the initial random sampling.
	Seed int64
}

// Result is the outcome of an optimization run.
type Result struct {
	// Best is the best candidate found.
	Best []float64
	// BestCost is the objective at Best.
	BestCost float64
	// Evaluated lists every evaluated point in order.
	Evaluated [][]float64
	// Costs are the observed objective values parallel to Evaluated.
	Costs []float64
}

// ErrNoCandidates is returned when the search grid is empty.
var ErrNoCandidates = errors.New("bayesopt: no candidates")

// Minimize runs the Bayesian-optimization loop and returns the best point
// found. The objective is called at most InitSamples+Iterations times; each
// candidate is evaluated at most once.
func Minimize(f Objective, cfg Config) (Result, error) {
	if len(cfg.Candidates) == 0 {
		return Result{}, ErrNoCandidates
	}
	dim := len(cfg.Candidates[0])
	for i, c := range cfg.Candidates {
		if len(c) != dim {
			return Result{}, fmt.Errorf("bayesopt: candidate %d has dim %d, want %d", i, len(c), dim)
		}
	}
	if cfg.InitSamples <= 0 {
		cfg.InitSamples = 3
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 10
	}
	if cfg.LengthScale <= 0 {
		cfg.LengthScale = 1
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 1e-6
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	remaining := make([]int, len(cfg.Candidates))
	for i := range remaining {
		remaining[i] = i
	}
	rng.Shuffle(len(remaining), func(i, j int) { remaining[i], remaining[j] = remaining[j], remaining[i] })

	var res Result
	res.BestCost = math.Inf(1)
	evaluate := func(ci int) {
		x := cfg.Candidates[ci]
		cost := f(x)
		res.Evaluated = append(res.Evaluated, x)
		res.Costs = append(res.Costs, cost)
		if cost < res.BestCost {
			res.BestCost = cost
			res.Best = x
		}
	}

	// Initial random evaluations.
	nInit := cfg.InitSamples
	if nInit > len(remaining) {
		nInit = len(remaining)
	}
	for i := 0; i < nInit; i++ {
		evaluate(remaining[0])
		remaining = remaining[1:]
	}

	// GP-guided loop.
	for it := 0; it < cfg.Iterations && len(remaining) > 0; it++ {
		gp, err := fitGP(res.Evaluated, res.Costs, cfg.LengthScale, cfg.Noise)
		if err != nil {
			// Ill-conditioned surrogate: fall back to a random candidate
			// rather than aborting the search.
			evaluate(remaining[0])
			remaining = remaining[1:]
			continue
		}
		bestIdx, bestEI := 0, math.Inf(-1)
		for pos, ci := range remaining {
			mu, sigma := gp.predict(cfg.Candidates[ci])
			ei := expectedImprovement(mu, sigma, res.BestCost)
			if ei > bestEI {
				bestEI = ei
				bestIdx = pos
			}
		}
		evaluate(remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return res, nil
}

// gp is a fitted Gaussian-process surrogate (zero mean, RBF kernel).
type gp struct {
	X     [][]float64
	alpha []float64
	l     *mat.Dense
	ls    float64
	meanY float64
}

func rbf(a, b []float64, ls float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * ls * ls))
}

func fitGP(X [][]float64, y []float64, ls, noise float64) (*gp, error) {
	n := len(X)
	// Center observations so the zero-mean prior is reasonable.
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)

	k := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rbf(X[i], X[j], ls)
			if i == j {
				v += noise
			}
			k.Set(i, j, v)
		}
	}
	l, ok := mat.Cholesky(k)
	if !ok {
		return nil, errors.New("bayesopt: kernel matrix not positive definite")
	}
	centered := make([]float64, n)
	for i, v := range y {
		centered[i] = v - meanY
	}
	alpha := mat.SolveCholesky(l, centered)
	return &gp{X: X, alpha: alpha, l: l, ls: ls, meanY: meanY}, nil
}

// predict returns the posterior mean and standard deviation at x.
func (g *gp) predict(x []float64) (mu, sigma float64) {
	n := len(g.X)
	kstar := make([]float64, n)
	for i := range g.X {
		kstar[i] = rbf(x, g.X[i], g.ls)
	}
	mu = g.meanY
	for i := range kstar {
		mu += kstar[i] * g.alpha[i]
	}
	// Var = k(x,x) − k*ᵀ K⁻¹ k*.
	v := mat.SolveCholesky(g.l, kstar)
	variance := 1.0 // rbf(x, x) = 1
	for i := range kstar {
		variance -= kstar[i] * v[i]
	}
	if variance < 0 {
		variance = 0
	}
	return mu, math.Sqrt(variance)
}

// expectedImprovement is the EI acquisition for minimization.
func expectedImprovement(mu, sigma, best float64) float64 {
	if sigma < 1e-12 {
		if mu < best {
			return best - mu
		}
		return 0
	}
	z := (best - mu) / sigma
	return (best-mu)*normCDF(z) + sigma*normPDF(z)
}

func normPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// IntGrid builds a candidate grid from integer axis values, e.g. layer
// widths {4, 8, 12, 16} × {4, 8, 12, 16} × {2, 4, 6}. The cartesian product
// order is row-major over the axes.
func IntGrid(axes ...[]int) [][]float64 {
	if len(axes) == 0 {
		return nil
	}
	total := 1
	for _, a := range axes {
		total *= len(a)
	}
	if total == 0 {
		return nil
	}
	out := make([][]float64, 0, total)
	idx := make([]int, len(axes))
	for {
		point := make([]float64, len(axes))
		for d, i := range idx {
			point[d] = float64(axes[d][i])
		}
		out = append(out, point)
		// Increment the mixed-radix counter.
		d := len(axes) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(axes[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return out
}
