// Package series provides time-series containers and the streaming
// aggregators the analyses are built on: grouping samples by calendar year,
// month, or day of week, and accumulating per-rack means without
// materializing the full six-year, 300-second-granularity trace in memory.
package series

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mira/internal/stats"
	"mira/internal/timeutil"
)

// Point is one timestamped observation.
type Point struct {
	T time.Time
	V float64
}

// Series is an ordered sequence of timestamped observations.
type Series struct {
	Name   string
	Points []Point
}

// New creates an empty named series.
func New(name string) *Series { return &Series{Name: name} }

// Append adds a point; callers are expected to append in time order.
func (s *Series) Append(t time.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Values returns the observation values in order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Slice returns the sub-series with timestamps in [from, to).
func (s *Series) Slice(from, to time.Time) *Series {
	out := New(s.Name)
	for _, p := range s.Points {
		if !p.T.Before(from) && p.T.Before(to) {
			out.Points = append(out.Points, p)
		}
	}
	return out
}

// Resample reduces the series to one point per bucket of the given width,
// each holding the mean of the bucket, anchored at the first point's bucket.
func (s *Series) Resample(width time.Duration) *Series {
	out := New(s.Name)
	if len(s.Points) == 0 || width <= 0 {
		return out
	}
	anchor := s.Points[0].T
	var (
		bucket int64 = 0
		sum    float64
		n      int
	)
	flush := func(b int64) {
		if n > 0 {
			out.Append(anchor.Add(time.Duration(b)*width), sum/float64(n))
		}
		sum, n = 0, 0
	}
	for _, p := range s.Points {
		b := int64(p.T.Sub(anchor) / width)
		if b != bucket {
			flush(bucket)
			bucket = b
		}
		sum += p.V
		n++
	}
	flush(bucket)
	return out
}

// Summary returns descriptive statistics of the series values.
func (s *Series) Summary() stats.Summary { return stats.Summarize(s.Values()) }

// ---------------------------------------------------------------------------
// Streaming aggregators
// ---------------------------------------------------------------------------

// MeanAcc is a streaming mean accumulator.
type MeanAcc struct {
	Sum float64
	N   int
}

// Add records one observation.
func (a *MeanAcc) Add(v float64) {
	a.Sum += v
	a.N++
}

// Mean returns the accumulated mean; NaN if no observations were recorded.
func (a *MeanAcc) Mean() float64 {
	if a.N == 0 {
		return math.NaN()
	}
	return a.Sum / float64(a.N)
}

// VarAcc is a streaming mean/variance accumulator (Welford's algorithm),
// used for the paper's "overall standard deviation" figures (41 GPM, 0.61°F,
// 0.71°F, 2.48°F, 3.66 RH) without storing the raw samples.
type VarAcc struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *VarAcc) Add(v float64) {
	if a.n == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.n++
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}

// N returns the number of observations.
func (a *VarAcc) N() int { return a.n }

// Mean returns the running mean; NaN if empty.
func (a *VarAcc) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// StdDev returns the running population standard deviation; NaN if empty.
func (a *VarAcc) StdDev() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

// Min returns the smallest observation; NaN if empty.
func (a *VarAcc) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation; NaN if empty.
func (a *VarAcc) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// GroupBy identifies a calendar grouping for streaming profiles.
type GroupBy int

const (
	// ByYear groups by calendar year (keys 2014..2019).
	ByYear GroupBy = iota
	// ByMonth groups by month of year (keys 1..12), pooling years — the
	// paper's Fig. 4 monthly profiles.
	ByMonth
	// ByWeekday groups by day of week (keys 0=Sunday..6=Saturday) — the
	// paper's Fig. 5 daily profiles.
	ByWeekday
	// ByHour groups by hour of day (keys 0..23).
	ByHour
	// ByYearMonth groups by absolute month (key year*100+month), for
	// timeline plots like Figs. 2, 3 and 8.
	ByYearMonth
)

// keyOf maps a timestamp to its group key.
func (g GroupBy) keyOf(t time.Time) int {
	t = t.In(timeutil.Chicago)
	switch g {
	case ByYear:
		return t.Year()
	case ByMonth:
		return int(t.Month())
	case ByWeekday:
		return int(t.Weekday())
	case ByHour:
		return t.Hour()
	case ByYearMonth:
		return t.Year()*100 + int(t.Month())
	default:
		panic(fmt.Sprintf("series: unknown GroupBy %d", int(g)))
	}
}

// Profile accumulates a calendar-grouped profile of a metric: for each group
// key it tracks a streaming mean and extrema, plus a bounded reservoir for
// median estimation.
type Profile struct {
	Group  GroupBy
	groups map[int]*groupAcc
}

type groupAcc struct {
	v VarAcc
	r *Reservoir
}

// NewProfile creates a profile with the given grouping.
func NewProfile(g GroupBy) *Profile {
	return &Profile{Group: g, groups: make(map[int]*groupAcc)}
}

// Add records one observation at time t.
func (p *Profile) Add(t time.Time, v float64) {
	k := p.Group.keyOf(t)
	acc, ok := p.groups[k]
	if !ok {
		acc = &groupAcc{r: NewReservoir(4096, int64(k)*7919+1)}
		p.groups[k] = acc
	}
	acc.v.Add(v)
	acc.r.Add(v)
}

// Keys returns the group keys in ascending order.
func (p *Profile) Keys() []int {
	keys := make([]int, 0, len(p.groups))
	for k := range p.groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Mean returns the mean for key k; NaN if the key was never observed.
func (p *Profile) Mean(k int) float64 {
	if acc, ok := p.groups[k]; ok {
		return acc.v.Mean()
	}
	return math.NaN()
}

// Median returns the (reservoir-estimated) median for key k; NaN if absent.
func (p *Profile) Median(k int) float64 {
	if acc, ok := p.groups[k]; ok {
		return stats.Median(acc.r.Values())
	}
	return math.NaN()
}

// N returns the observation count for key k.
func (p *Profile) N(k int) int {
	if acc, ok := p.groups[k]; ok {
		return acc.v.N()
	}
	return 0
}

// Means returns the keys and their means as parallel slices.
func (p *Profile) Means() (keys []int, means []float64) {
	keys = p.Keys()
	means = make([]float64, len(keys))
	for i, k := range keys {
		means[i] = p.Mean(k)
	}
	return keys, means
}

// Medians returns the keys and their medians as parallel slices.
func (p *Profile) Medians() (keys []int, medians []float64) {
	keys = p.Keys()
	medians = make([]float64, len(keys))
	for i, k := range keys {
		medians[i] = p.Median(k)
	}
	return keys, medians
}

// Reservoir is a fixed-size uniform random sample of a stream (Vitter's
// algorithm R), used to estimate medians over multi-year streams in bounded
// memory.
type Reservoir struct {
	cap   int
	seen  int64
	vals  []float64
	state uint64
}

// NewReservoir creates a reservoir holding at most capacity values. The seed
// makes sampling deterministic.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		panic(fmt.Sprintf("series: reservoir capacity must be positive, got %d", capacity))
	}
	return &Reservoir{cap: capacity, state: uint64(seed)*2654435761 + 1}
}

// next is a small xorshift PRNG; the reservoir does not need crypto-quality
// randomness, just cheap uniformity that is independent of math/rand's
// global state.
func (r *Reservoir) next() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x
}

// Add offers one value to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.vals) < r.cap {
		r.vals = append(r.vals, v)
		return
	}
	j := int64(r.next() % uint64(r.seen))
	if j < int64(r.cap) {
		r.vals[j] = v
	}
}

// Values returns the current sample (not a copy in time order).
func (r *Reservoir) Values() []float64 { return r.vals }

// Seen returns how many values have been offered.
func (r *Reservoir) Seen() int64 { return r.seen }
