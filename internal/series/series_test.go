package series

import (
	"math"
	"testing"
	"time"

	"mira/internal/timeutil"
)

var t0 = time.Date(2015, 3, 2, 0, 0, 0, 0, timeutil.Chicago) // a Monday

func TestSeriesAppendValues(t *testing.T) {
	s := New("power")
	for i := 0; i < 5; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Hour), float64(i*10))
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	vals := s.Values()
	if vals[0] != 0 || vals[4] != 40 {
		t.Errorf("Values = %v", vals)
	}
	if s.Name != "power" {
		t.Errorf("Name = %q", s.Name)
	}
}

func TestSeriesSlice(t *testing.T) {
	s := New("x")
	for i := 0; i < 10; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Hour), float64(i))
	}
	sub := s.Slice(t0.Add(2*time.Hour), t0.Add(5*time.Hour))
	if sub.Len() != 3 {
		t.Fatalf("Slice len = %d, want 3", sub.Len())
	}
	if sub.Points[0].V != 2 || sub.Points[2].V != 4 {
		t.Errorf("Slice points = %v", sub.Points)
	}
}

func TestSeriesResample(t *testing.T) {
	s := New("x")
	// 6 points at 10-minute spacing; resample to 30 min buckets.
	for i := 0; i < 6; i++ {
		s.Append(t0.Add(time.Duration(i)*10*time.Minute), float64(i))
	}
	rs := s.Resample(30 * time.Minute)
	if rs.Len() != 2 {
		t.Fatalf("Resample len = %d, want 2", rs.Len())
	}
	if rs.Points[0].V != 1 { // mean of 0,1,2
		t.Errorf("bucket 0 = %v, want 1", rs.Points[0].V)
	}
	if rs.Points[1].V != 4 { // mean of 3,4,5
		t.Errorf("bucket 1 = %v, want 4", rs.Points[1].V)
	}
	if empty := New("e").Resample(time.Hour); empty.Len() != 0 {
		t.Error("resampling empty series should be empty")
	}
	if bad := s.Resample(0); bad.Len() != 0 {
		t.Error("non-positive width should give empty result")
	}
}

func TestSeriesSummary(t *testing.T) {
	s := New("x")
	for i := 1; i <= 5; i++ {
		s.Append(t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	sum := s.Summary()
	if sum.N != 5 || sum.Mean != 3 || sum.Median != 3 {
		t.Errorf("Summary = %+v", sum)
	}
}

func TestMeanAcc(t *testing.T) {
	var a MeanAcc
	if !math.IsNaN(a.Mean()) {
		t.Error("empty mean should be NaN")
	}
	for _, v := range []float64{2, 4, 6} {
		a.Add(v)
	}
	if a.Mean() != 4 || a.N != 3 {
		t.Errorf("MeanAcc = %v (n=%d)", a.Mean(), a.N)
	}
}

func TestVarAccMatchesBatch(t *testing.T) {
	var a VarAcc
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() != len(xs) {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if math.Abs(a.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %v", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestVarAccEmpty(t *testing.T) {
	var a VarAcc
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.StdDev()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Error("empty VarAcc accessors should be NaN")
	}
}

func TestGroupKeys(t *testing.T) {
	ts := time.Date(2016, 7, 4, 13, 0, 0, 0, timeutil.Chicago) // Monday
	cases := []struct {
		g    GroupBy
		want int
	}{
		{ByYear, 2016},
		{ByMonth, 7},
		{ByWeekday, 1},
		{ByHour, 13},
		{ByYearMonth, 201607},
	}
	for _, tc := range cases {
		if got := tc.g.keyOf(ts); got != tc.want {
			t.Errorf("keyOf(%d) = %d, want %d", int(tc.g), got, tc.want)
		}
	}
}

func TestProfileMonthly(t *testing.T) {
	p := NewProfile(ByMonth)
	// Two years of observations: January values 10, July values 20.
	for year := 2014; year <= 2015; year++ {
		jan := time.Date(year, 1, 15, 0, 0, 0, 0, timeutil.Chicago)
		jul := time.Date(year, 7, 15, 0, 0, 0, 0, timeutil.Chicago)
		for i := 0; i < 50; i++ {
			p.Add(jan.Add(time.Duration(i)*time.Hour), 10)
			p.Add(jul.Add(time.Duration(i)*time.Hour), 20)
		}
	}
	keys := p.Keys()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 7 {
		t.Fatalf("Keys = %v", keys)
	}
	if p.Mean(1) != 10 || p.Mean(7) != 20 {
		t.Errorf("Means = %v/%v", p.Mean(1), p.Mean(7))
	}
	if p.Median(1) != 10 || p.Median(7) != 20 {
		t.Errorf("Medians = %v/%v", p.Median(1), p.Median(7))
	}
	if p.N(1) != 100 {
		t.Errorf("N(1) = %d", p.N(1))
	}
	if !math.IsNaN(p.Mean(3)) || !math.IsNaN(p.Median(3)) || p.N(3) != 0 {
		t.Error("missing key should be NaN/0")
	}
	ks, means := p.Means()
	if len(ks) != 2 || means[0] != 10 {
		t.Errorf("Means() = %v %v", ks, means)
	}
	ks, meds := p.Medians()
	if len(ks) != 2 || meds[1] != 20 {
		t.Errorf("Medians() = %v %v", ks, meds)
	}
}

func TestProfileWeekday(t *testing.T) {
	p := NewProfile(ByWeekday)
	// Monday low, other days high — the Fig. 5 shape.
	for d := 0; d < 28; d++ {
		ts := t0.AddDate(0, 0, d)
		v := 100.0
		if ts.Weekday() == time.Monday {
			v = 90
		}
		p.Add(ts, v)
	}
	if p.Mean(int(time.Monday)) != 90 {
		t.Errorf("Monday mean = %v", p.Mean(1))
	}
	if p.Mean(int(time.Wednesday)) != 100 {
		t.Errorf("Wednesday mean = %v", p.Mean(3))
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 0; i < 50; i++ {
		r.Add(float64(i))
	}
	if len(r.Values()) != 50 || r.Seen() != 50 {
		t.Errorf("len=%d seen=%d", len(r.Values()), r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Sampling a large uniform ramp should estimate the median well.
	r := NewReservoir(2000, 42)
	n := 200000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if len(r.Values()) != 2000 {
		t.Fatalf("reservoir len = %d", len(r.Values()))
	}
	var sum float64
	for _, v := range r.Values() {
		sum += v
	}
	mean := sum / 2000
	if math.Abs(mean-float64(n)/2) > float64(n)*0.05 {
		t.Errorf("reservoir mean = %v, want ≈%v", mean, n/2)
	}
}

func TestReservoirPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity reservoir should panic")
		}
	}()
	NewReservoir(0, 1)
}

// TestSeriesResampleTrailingPartial pins the final flush: a last bucket
// with fewer points than the others must still be emitted, with the mean
// of just its own points.
func TestSeriesResampleTrailingPartial(t *testing.T) {
	s := New("x")
	// 7 points at 10-minute spacing; 30-minute buckets → 3, 3, and a
	// trailing singleton.
	for i := 0; i < 7; i++ {
		s.Append(t0.Add(time.Duration(i)*10*time.Minute), float64(i))
	}
	rs := s.Resample(30 * time.Minute)
	if rs.Len() != 3 {
		t.Fatalf("Resample len = %d, want 3 (trailing partial bucket dropped?)", rs.Len())
	}
	last := rs.Points[2]
	if last.V != 6 { // mean of the lone point 6
		t.Errorf("trailing bucket mean = %v, want 6", last.V)
	}
	if want := t0.Add(time.Hour); !last.T.Equal(want) {
		t.Errorf("trailing bucket anchored at %v, want %v", last.T, want)
	}
	// A single-point series is all trailing bucket.
	one := New("y")
	one.Append(t0, 42)
	if rs := one.Resample(time.Hour); rs.Len() != 1 || rs.Points[0].V != 42 {
		t.Errorf("single-point resample = %v", rs.Points)
	}
}
