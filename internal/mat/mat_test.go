package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseAndAccess(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 7)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 || m.At(0, 1) != 0 {
		t.Errorf("element access wrong: %+v", m)
	}
	r := m.Row(1)
	if len(r) != 3 || r[2] != 7 {
		t.Errorf("Row = %v", r)
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone should not share storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("T dims = %dx%d", mt.Rows, mt.Cols)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Errorf("T values wrong: %+v", mt)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVecDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := MulVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v", got)
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 2, 3}
	AddScaled(dst, 2, []float64{10, 20, 30})
	if dst[0] != 21 || dst[2] != 63 {
		t.Errorf("AddScaled = %v", dst)
	}
}

func TestApply(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	m.Apply(math.Abs)
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("Apply = %+v", m)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("NewDense bad dims", func() { NewDense(0, 3) })
	mustPanic("FromRows empty", func() { FromRows(nil) })
	mustPanic("FromRows ragged", func() { FromRows([][]float64{{1, 2}, {3}}) })
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	mustPanic("Mul mismatch", func() { Mul(a, b) })
	mustPanic("MulVec mismatch", func() { MulVec(a, []float64{1}) })
	mustPanic("Dot mismatch", func() { Dot([]float64{1}, []float64{1, 2}) })
	mustPanic("AddScaled mismatch", func() { AddScaled([]float64{1}, 1, []float64{1, 2}) })
	mustPanic("Cholesky non-square", func() { Cholesky(a) })
}

func TestCholeskySolve(t *testing.T) {
	// SPD matrix.
	a := FromRows([][]float64{
		{4, 2, 0.6},
		{2, 5, 1.5},
		{0.6, 1.5, 3},
	})
	l, ok := Cholesky(a)
	if !ok {
		t.Fatal("Cholesky failed on SPD matrix")
	}
	// Verify L·Lᵀ == a.
	llt := Mul(l, l.T())
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(llt.At(i, j)-a.At(i, j)) > 1e-10 {
				t.Errorf("LLt[%d][%d] = %v, want %v", i, j, llt.At(i, j), a.At(i, j))
			}
		}
	}
	// Solve a known system.
	xTrue := []float64{1, -2, 0.5}
	b := MulVec(a, xTrue)
	x := SolveCholesky(l, b)
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3 and -1
	if _, ok := Cholesky(a); ok {
		t.Error("Cholesky should fail on indefinite matrix")
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 2 + rng.Intn(5)
		// Build SPD as GᵀG + n·I.
		g := NewDense(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := Mul(g.T(), g)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := MulVec(a, xTrue)
		l, ok := Cholesky(a)
		if !ok {
			return false
		}
		x := SolveCholesky(l, b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		a := NewDense(3, 4)
		b := NewDense(4, 2)
		c := NewDense(2, 5)
		for _, m := range []*Dense{a, b, c} {
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
		}
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
