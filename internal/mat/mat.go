// Package mat provides the small dense-matrix kernels used by the neural
// network and the Gaussian-process surrogate: matrix-vector and
// matrix-matrix products, transpose, element-wise operations, and a
// Cholesky-based linear solver.
//
// Matrices are row-major. The package favors clarity over BLAS-style
// performance; problem sizes here are tiny (a dozen neurons, tens of
// Bayesian-optimization observations).
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense creates a zeroed r×c matrix. It panics on non-positive
// dimensions.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be non-empty and of
// equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows needs at least one non-empty row")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mat: ragged rows (%d vs %d)", len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing array).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product a·b. It panics on dimension mismatch.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a·x. It panics on dimension
// mismatch.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d · %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of x and y. It panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// AddScaled computes dst += alpha·x in place. It panics on length mismatch.
func AddScaled(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: AddScaled length mismatch %d vs %d", len(dst), len(x)))
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Apply replaces every element of m with f(element) in place and returns m.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// Cholesky computes the lower-triangular factor L with a·aᵀ = L·Lᵀ for a
// symmetric positive-definite matrix. It returns false when the matrix is
// not positive definite.
func Cholesky(a *Dense) (*Dense, bool) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Cholesky needs a square matrix, got %dx%d", a.Rows, a.Cols))
	}
	n := a.Rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, true
}

// SolveCholesky solves a·x = b given the Cholesky factor L of a, via
// forward then backward substitution.
func SolveCholesky(l *Dense, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveCholesky length mismatch %d vs %d", len(b), n))
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
