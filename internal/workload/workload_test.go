package workload

import (
	"math"
	"testing"
	"time"

	"mira/internal/timeutil"
)

func TestOfferedLoadGrowth(t *testing.T) {
	g := NewGenerator(1)
	early := g.OfferedLoad(time.Date(2014, 4, 15, 0, 0, 0, 0, timeutil.Chicago))
	late := g.OfferedLoad(time.Date(2019, 4, 15, 0, 0, 0, 0, timeutil.Chicago))
	if late <= early {
		t.Errorf("offered load should grow over years: %v -> %v", early, late)
	}
	if late-early < 0.08 || late-early > 0.2 {
		t.Errorf("five-year growth = %v, want ≈0.11", late-early)
	}
}

func TestOfferedLoadSeasonal(t *testing.T) {
	g := NewGenerator(1)
	// INCITE deadline pressure: December load above May load, same year.
	may := g.OfferedLoad(time.Date(2016, 5, 10, 0, 0, 0, 0, timeutil.Chicago))
	dec := g.OfferedLoad(time.Date(2016, 12, 10, 0, 0, 0, 0, timeutil.Chicago))
	if dec <= may {
		t.Errorf("December load (%v) should exceed May load (%v)", dec, may)
	}
}

func TestOfferedLoadBounded(t *testing.T) {
	g := NewGenerator(1)
	for ts := timeutil.ProductionStart; ts.Before(timeutil.ProductionEnd); ts = ts.Add(91 * time.Hour) {
		l := g.OfferedLoad(ts)
		if l < 0.3 || l > 1.3 {
			t.Fatalf("offered load out of range at %v: %v", ts, l)
		}
	}
}

func TestArrivalsRateMatchesLoad(t *testing.T) {
	g := NewGenerator(2)
	ts := time.Date(2016, 3, 1, 0, 0, 0, 0, timeutil.Chicago)
	var mpHours float64
	days := 30
	for i := 0; i < days*24; i++ {
		for _, j := range g.Arrivals(ts, time.Hour) {
			mpHours += float64(j.Midplanes) * j.Walltime.Hours()
		}
		ts = ts.Add(time.Hour)
	}
	// Offered demand should be ≈ load × capacity.
	wantLoad := g.OfferedLoad(ts)
	gotLoad := mpHours / (float64(days) * 24 * 96)
	if math.Abs(gotLoad-wantLoad) > 0.12 {
		t.Errorf("offered demand = %v of capacity, want ≈%v", gotLoad, wantLoad)
	}
}

func TestMeanJobMidplaneHours(t *testing.T) {
	// The constant used to convert load to arrival rate must track the
	// sampling distributions.
	g := NewGenerator(3)
	ts := time.Date(2015, 6, 1, 0, 0, 0, 0, timeutil.Chicago)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		j := g.sample(ts)
		sum += float64(j.Midplanes) * j.Walltime.Hours()
	}
	got := sum / float64(n)
	if math.Abs(got-meanJobMidplaneHours) > 1.5 {
		t.Errorf("empirical mean midplane-hours = %v, constant = %v; update the constant", got, meanJobMidplaneHours)
	}
}

func TestSampleDistributions(t *testing.T) {
	g := NewGenerator(4)
	ts := time.Date(2015, 6, 1, 0, 0, 0, 0, timeutil.Chicago)
	counts := map[Queue]int{}
	affinity := 0
	n := 10000
	for i := 0; i < n; i++ {
		j := g.sample(ts)
		counts[j.Queue]++
		if j.Midplanes < 1 || j.Midplanes > 96 {
			t.Fatalf("bad size %d", j.Midplanes)
		}
		if j.Intensity < 0.6 || j.Intensity > 1.45 {
			t.Fatalf("bad intensity %v", j.Intensity)
		}
		if j.Walltime < 30*time.Minute || j.Walltime > 24*time.Hour {
			t.Fatalf("bad walltime %v", j.Walltime)
		}
		if j.AffinityCol >= 0 {
			affinity++
			if j.Queue != ProdShort {
				t.Fatal("affinity should only apply to prod-short")
			}
			ok := false
			for _, c := range AffinityColumns {
				if j.AffinityCol == c {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("bad affinity column %d", j.AffinityCol)
			}
		}
	}
	if f := float64(counts[ProdLong]) / float64(n); f < 0.12 || f > 0.18 {
		t.Errorf("prod-long fraction = %v, want ≈0.15", f)
	}
	if f := float64(counts[ProdCapability]) / float64(n); f < 0.005 || f > 0.016 {
		t.Errorf("capability fraction = %v, want ≈0.01", f)
	}
	if f := float64(affinity) / float64(n); f < 0.10 || f > 0.18 {
		t.Errorf("affinity fraction = %v, want ≈0.14", f)
	}
}

func TestIntensityMeanNearOne(t *testing.T) {
	g := NewGenerator(5)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += g.sampleIntensity()
	}
	if mean := sum / float64(n); math.Abs(mean-1.0) > 0.03 {
		t.Errorf("mean intensity = %v, want ≈1.0", mean)
	}
}

func TestCapabilityJobsAreLarge(t *testing.T) {
	g := NewGenerator(6)
	for i := 0; i < 200; i++ {
		if s := g.sampleSize(ProdCapability); s < 32 {
			t.Fatalf("capability job size %d < 32 midplanes", s)
		}
	}
}

func TestProdLongWalltimes(t *testing.T) {
	g := NewGenerator(7)
	for i := 0; i < 200; i++ {
		w := g.sampleWalltime(ProdLong)
		if w < 6*time.Hour || w > 24*time.Hour {
			t.Fatalf("prod-long walltime %v out of range", w)
		}
	}
}

func TestPoisson(t *testing.T) {
	g := NewGenerator(8)
	for _, mean := range []float64{0, 0.5, 3, 50} {
		var sum float64
		n := 4000
		for i := 0; i < n; i++ {
			sum += float64(g.poisson(mean))
		}
		got := sum / float64(n)
		tol := 0.15*mean + 0.05
		if math.Abs(got-mean) > tol {
			t.Errorf("poisson(%v) empirical mean = %v", mean, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	ts := time.Date(2015, 6, 1, 0, 0, 0, 0, timeutil.Chicago)
	a := NewGenerator(9).Arrivals(ts, 24*time.Hour)
	b := NewGenerator(9).Arrivals(ts, 24*time.Hour)
	if len(a) != len(b) {
		t.Fatal("non-deterministic arrival count")
	}
	for i := range a {
		if a[i].Midplanes != b[i].Midplanes || a[i].Walltime != b[i].Walltime {
			t.Fatal("non-deterministic jobs")
		}
	}
}

func TestNewBurner(t *testing.T) {
	ts := time.Date(2015, 6, 1, 9, 0, 0, 0, timeutil.Chicago)
	b := NewBurner(ts, 2, 8*time.Hour)
	if b.Intensity != BurnerIntensity {
		t.Errorf("burner intensity = %v", b.Intensity)
	}
	if b.ID != -1 || b.Midplanes != 2 || b.Walltime != 8*time.Hour {
		t.Errorf("burner fields wrong: %+v", b)
	}
	if BurnerIntensity >= 0.8 {
		t.Error("burner intensity should be well below production intensity")
	}
}

func TestQueueString(t *testing.T) {
	if ProdLong.String() != "prod-long" || ProdShort.String() != "prod-short" || ProdCapability.String() != "prod-capability" {
		t.Error("Queue.String mismatch")
	}
}

func TestJobString(t *testing.T) {
	g := NewGenerator(10)
	j := g.sample(time.Date(2015, 6, 1, 0, 0, 0, 0, timeutil.Chicago))
	if s := j.String(); len(s) == 0 {
		t.Error("empty job string")
	}
}
