// Package workload generates the job stream offered to the Mira scheduler:
// INCITE, ALCC, and discretionary projects with deadline-driven submission
// pressure near their allocation-year ends, midplane-granular job sizes,
// walltime distributions, per-job CPU intensity, and the user rack-affinity
// hotspots the paper observed on columns 2, 6, A, and B.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mira/internal/timeutil"
	"mira/internal/topology"
)

// Queue identifies a scheduler queue.
type Queue int

const (
	// ProdShort is the default production queue.
	ProdShort Queue = iota
	// ProdLong is the long-walltime queue whose jobs are placed on row 0
	// (paper §IV-A).
	ProdLong
	// ProdCapability is the queue for full- or near-full-machine runs that
	// force the scheduler to drain.
	ProdCapability
)

func (q Queue) String() string {
	switch q {
	case ProdLong:
		return "prod-long"
	case ProdCapability:
		return "prod-capability"
	default:
		return "prod-short"
	}
}

// Job is one schedulable unit of work. Sizes are expressed in midplanes
// (512 nodes each), the Blue Gene/Q allocation granularity.
type Job struct {
	ID        int64
	Program   timeutil.Program
	Queue     Queue
	Midplanes int
	Walltime  time.Duration
	// Intensity is the job's CPU-intensity factor relative to a nominal
	// workload (≈0.6–1.4). Power draw scales with it; utilization does not,
	// which is what decorrelates the two metrics (paper: correlation 0.45).
	Intensity float64
	// AffinityCol, when >= 0, is the rack column the submitting user
	// habitually targets.
	AffinityCol int
	// Submitted is the submission time.
	Submitted time.Time
}

// String renders a compact description for logs.
func (j Job) String() string {
	return fmt.Sprintf("job %d [%s/%s] %dmp %s int=%.2f", j.ID, j.Program, j.Queue, j.Midplanes, j.Walltime, j.Intensity)
}

// Generator produces the stochastic job stream. It is deterministic for a
// given seed.
type Generator struct {
	rng    *rand.Rand
	nextID int64

	// BaseLoad is the offered load (fraction of machine capacity) at the
	// start of production, before deadline effects (default 0.82).
	BaseLoad float64
	// LoadGrowthPerYear is the linear growth of offered load per year
	// (default 0.024), reflecting the demand growth that raised Mira's
	// utilization from ≈80% to ≈93%.
	LoadGrowthPerYear float64
	// DeadlinePressure scales how strongly submissions concentrate near
	// allocation-year ends (default 0.35).
	DeadlinePressure float64
	// AffinityFraction is the fraction of prod-short jobs submitted by
	// rack-affine users (default 0.18).
	AffinityFraction float64
}

// AffinityColumns are the rack columns the paper identifies as utilization
// hotspots created by users repeatedly targeting specific regions:
// columns 2, 6, A, and B.
var AffinityColumns = []int{0x2, 0x6, 0xA, 0xB}

// NewGenerator creates a job generator with the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:               rand.New(rand.NewSource(seed)),
		BaseLoad:          0.82,
		LoadGrowthPerYear: 0.024,
		DeadlinePressure:  0.35,
		AffinityFraction:  0.18,
	}
}

// OfferedLoad returns the instantaneous offered load (fraction of machine
// capacity demanded) at time t. It combines the multi-year demand growth
// with INCITE and ALCC allocation-year deadline pressure. INCITE (the
// larger, higher-priority program) dominates, which raises load in the
// second half of each calendar year (paper Fig. 4).
func (g *Generator) OfferedLoad(t time.Time) float64 {
	years := t.Sub(timeutil.ProductionStart).Hours() / (365.25 * 24)
	base := g.BaseLoad + g.LoadGrowthPerYear*years

	// Deadline pressure ramps as each program's allocation year runs out.
	// Program weights: INCITE 60%, ALCC 30%, discretionary 10% of demand.
	fi := timeutil.AllocationYearFraction(timeutil.INCITE, t)
	fa := timeutil.AllocationYearFraction(timeutil.ALCC, t)
	pressure := 0.60*math.Pow(fi, 3) + 0.30*math.Pow(fa, 3)
	// Center the pressure term so it redistributes load across the year
	// rather than only adding to it (E[f³] = 1/4 for uniform f).
	centered := pressure - 0.225

	load := base + g.DeadlinePressure*centered
	if load < 0.3 {
		load = 0.3
	}
	return load
}

// meanJobMidplaneHours is the expected midplane-hours of one generated job,
// used to convert offered load into an arrival rate. Kept in sync with the
// sampling distributions below by TestMeanJobMidplaneHours.
const meanJobMidplaneHours = 20.6

// Arrivals returns the jobs submitted during (t, t+dt]. The arrival process
// is Poisson with a rate matched to OfferedLoad.
func (g *Generator) Arrivals(t time.Time, dt time.Duration) []Job {
	load := g.OfferedLoad(t)
	// capacity is 96 midplane-hours per hour.
	jobsPerHour := load * float64(topology.NumMidplanes) / meanJobMidplaneHours
	expected := jobsPerHour * dt.Hours()
	n := g.poisson(expected)
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		jobs = append(jobs, g.sample(t))
	}
	return jobs
}

// sample draws one job.
func (g *Generator) sample(t time.Time) Job {
	g.nextID++
	j := Job{ID: g.nextID, Submitted: t, AffinityCol: -1}

	// Program mix: INCITE 60%, ALCC 30%, discretionary 10% — weighted
	// additionally by each program's own deadline proximity so the
	// program composition shifts over the year.
	fi := timeutil.AllocationYearFraction(timeutil.INCITE, t)
	fa := timeutil.AllocationYearFraction(timeutil.ALCC, t)
	wi := 0.60 * (0.4 + 1.6*fi*fi)
	wa := 0.30 * (0.4 + 1.6*fa*fa)
	wd := 0.10
	u := g.rng.Float64() * (wi + wa + wd)
	switch {
	case u < wi:
		j.Program = timeutil.INCITE
	case u < wi+wa:
		j.Program = timeutil.ALCC
	default:
		j.Program = timeutil.Discretionary
	}

	// Queue mix: 15% prod-long (preferring row 0), ~1% occasional
	// capability runs, rest prod-short.
	switch q := g.rng.Float64(); {
	case q < 0.15:
		j.Queue = ProdLong
	case q < 0.16:
		j.Queue = ProdCapability
	default:
		j.Queue = ProdShort
	}

	j.Midplanes = g.sampleSize(j.Queue)
	j.Walltime = g.sampleWalltime(j.Queue)
	j.Intensity = g.sampleIntensity()
	if j.Queue == ProdLong {
		// Long production jobs "usually do not underutilize the allocated
		// nodes" (paper §IV-A): they run hotter on average.
		j.Intensity *= 1.06
		if j.Intensity > 1.45 {
			j.Intensity = 1.45
		}
	}

	if j.Queue == ProdShort && g.rng.Float64() < g.AffinityFraction {
		// Column A's users were the heaviest rack-targeters (the paper's
		// highest-utilization rack is (0,A)).
		switch u := g.rng.Float64(); {
		case u < 0.40:
			j.AffinityCol = 0xA
		case u < 0.62:
			j.AffinityCol = 0xB
		case u < 0.82:
			j.AffinityCol = 0x2
		default:
			j.AffinityCol = 0x6
		}
	}
	return j
}

// sampleSize draws a job size in midplanes. INCITE capability jobs can span
// the machine; typical jobs are 1–8 midplanes (512–4,096 nodes).
func (g *Generator) sampleSize(q Queue) int {
	if q == ProdCapability {
		// Half-machine or larger runs.
		sizes := []int{32, 48, 64, 96}
		return sizes[g.rng.Intn(len(sizes))]
	}
	// Geometric-ish preference for small power-of-two sizes.
	sizes := []int{1, 2, 4, 8, 16}
	weights := []float64{0.34, 0.30, 0.20, 0.11, 0.05}
	u := g.rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return sizes[i]
		}
	}
	return sizes[len(sizes)-1]
}

// sampleWalltime draws a runtime. prod-long jobs run 6–24 h, others 0.5–8 h.
func (g *Generator) sampleWalltime(q Queue) time.Duration {
	var hours float64
	switch q {
	case ProdLong:
		hours = 6 + 18*g.rng.Float64()
	case ProdCapability:
		hours = 2 + 6*g.rng.Float64()
	default:
		hours = 0.5 + 7.5*math.Pow(g.rng.Float64(), 1.6)
	}
	return time.Duration(hours * float64(time.Hour))
}

// sampleIntensity draws the CPU-intensity factor: lognormal-ish around 1,
// clipped to [0.6, 1.4].
func (g *Generator) sampleIntensity() float64 {
	v := math.Exp(g.rng.NormFloat64() * 0.13)
	if v < 0.6 {
		v = 0.6
	}
	if v > 1.4 {
		v = 1.4
	}
	return v
}

// poisson draws from a Poisson distribution with the given mean, using the
// normal approximation for large means.
func (g *Generator) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*g.rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// BurnerIntensity is the CPU-intensity of the burner jobs run during
// maintenance to keep idle racks warm. They perform no useful computation
// and draw noticeably less power than production jobs, which is why Mira's
// Monday power dips ≈6% while utilization dips only ≈1.5% (paper Fig. 5).
const BurnerIntensity = 0.55

// NewBurner creates a burner job covering the given midplane count.
func NewBurner(t time.Time, midplanes int, walltime time.Duration) Job {
	return Job{
		ID:          -1, // burners are not user jobs
		Program:     timeutil.Discretionary,
		Queue:       ProdShort,
		Midplanes:   midplanes,
		Walltime:    walltime,
		Intensity:   BurnerIntensity,
		AffinityCol: -1,
		Submitted:   t,
	}
}
