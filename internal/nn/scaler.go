package nn

import (
	"fmt"
	"math"
)

// Scaler standardizes feature vectors to zero mean and unit variance, fitted
// on training data only (so test data never leaks into the normalization).
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-feature means and standard deviations of X.
// Features with zero variance get Std 1 so they pass through unchanged
// after centering. It panics on an empty or ragged matrix.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 || len(X[0]) == 0 {
		panic("nn: FitScaler needs a non-empty matrix")
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		if len(row) != d {
			panic(fmt.Sprintf("nn: ragged feature matrix (%d vs %d)", len(row), d))
		}
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns the standardized copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row of X into a new matrix.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}
