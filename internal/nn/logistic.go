package nn

import (
	"math"
	"math/rand"
)

// Logistic is a logistic-regression binary classifier, used as a simpler
// baseline against the paper's neural network.
type Logistic struct {
	W []float64
	B float64
}

// NewLogistic creates an untrained model for d features.
func NewLogistic(d int) *Logistic { return &Logistic{W: make([]float64, d)} }

// Predict returns P(y=1 | x).
func (m *Logistic) Predict(x []float64) float64 {
	s := m.B
	for i, v := range x {
		s += m.W[i] * v
	}
	return 1 / (1 + math.Exp(-s))
}

// PredictClass thresholds Predict.
func (m *Logistic) PredictClass(x []float64, threshold float64) bool {
	return m.Predict(x) >= threshold
}

// Fit trains by mini-batch gradient descent on binary cross-entropy and
// returns the mean loss per epoch.
func (m *Logistic) Fit(X [][]float64, Y []float64, cfg TrainConfig) ([]float64, error) {
	if len(X) == 0 || len(X) != len(Y) {
		return nil, ErrBadTrainingSet
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	d := len(m.W)
	gw := make([]float64, d)
	losses := make([]float64, 0, cfg.Epochs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for j := range gw {
				gw[j] = 0
			}
			gb := 0.0
			for _, i := range idx[start:end] {
				p := m.Predict(X[i])
				pc := math.Min(math.Max(p, 1e-12), 1-1e-12)
				epochLoss += -(Y[i]*math.Log(pc) + (1-Y[i])*math.Log(1-pc))
				diff := p - Y[i]
				for j, v := range X[i] {
					gw[j] += diff * v
				}
				gb += diff
			}
			inv := cfg.LearningRate / float64(end-start)
			for j := range m.W {
				m.W[j] -= inv * (gw[j] + cfg.L2*m.W[j]*float64(end-start))
			}
			m.B -= inv * gb
		}
		losses = append(losses, epochLoss/float64(len(idx)))
	}
	return losses, nil
}
