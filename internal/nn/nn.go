// Package nn implements the feed-forward neural network used by the CMF
// predictor: fully-connected layers, ReLU and sigmoid activations, binary
// cross-entropy loss, and mini-batch SGD (with momentum) and Adam
// optimizers. The paper's predictor is a three-hidden-layer network
// (12, 12, 6 neurons) with ReLU activations and a sigmoid output, trained
// for 50 epochs.
//
// Everything is deterministic given the seed, so experiments and tests are
// reproducible.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation identifies a layer activation function.
type Activation int

const (
	// Identity applies no nonlinearity.
	Identity Activation = iota
	// ReLU is max(0, x).
	ReLU
	// Sigmoid is 1/(1+e^-x); used on the output layer for binary
	// classification.
	Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh
)

func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	default:
		return "unknown"
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivFromOutput returns dσ/dx given the activated output y = σ(x).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// layer is one fully-connected layer: out = act(W·in + b).
type layer struct {
	in, out int
	act     Activation
	w       []float64 // out × in, row-major
	b       []float64 // out

	// Forward-pass cache for backprop.
	lastIn  []float64
	lastOut []float64

	// Gradient accumulators.
	gw []float64
	gb []float64

	// Optimizer state.
	mw, vw []float64
	mb, vb []float64
}

func newLayer(in, out int, act Activation, rng *rand.Rand) *layer {
	l := &layer{
		in: in, out: out, act: act,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		mw: make([]float64, in*out),
		vw: make([]float64, in*out),
		mb: make([]float64, out),
		vb: make([]float64, out),
	}
	// He initialization, appropriate for ReLU layers.
	scale := math.Sqrt(2.0 / float64(in))
	for i := range l.w {
		l.w[i] = rng.NormFloat64() * scale
	}
	return l
}

func (l *layer) forward(x []float64) []float64 {
	l.lastIn = x
	out := make([]float64, l.out)
	for o := 0; o < l.out; o++ {
		s := l.b[o]
		row := l.w[o*l.in : (o+1)*l.in]
		for i, v := range x {
			s += row[i] * v
		}
		out[o] = l.act.apply(s)
	}
	l.lastOut = out
	return out
}

// backward consumes dL/dout and returns dL/din, accumulating weight grads.
func (l *layer) backward(dOut []float64) []float64 {
	dIn := make([]float64, l.in)
	for o := 0; o < l.out; o++ {
		dz := dOut[o] * l.act.derivFromOutput(l.lastOut[o])
		l.gb[o] += dz
		row := l.w[o*l.in : (o+1)*l.in]
		grow := l.gw[o*l.in : (o+1)*l.in]
		for i := range row {
			grow[i] += dz * l.lastIn[i]
			dIn[i] += dz * row[i]
		}
	}
	return dIn
}

func (l *layer) zeroGrad() {
	for i := range l.gw {
		l.gw[i] = 0
	}
	for i := range l.gb {
		l.gb[i] = 0
	}
}

// Network is a feed-forward neural network for binary classification or
// regression.
type Network struct {
	layers []*layer
	inDim  int
}

// Config describes a network architecture.
type Config struct {
	// Inputs is the input feature dimension.
	Inputs int
	// Hidden lists the widths of the hidden layers (e.g. {12, 12, 6}).
	Hidden []int
	// HiddenAct is the hidden activation (default ReLU).
	HiddenAct Activation
	// OutputAct is the output activation (default Sigmoid, for binary
	// classification).
	OutputAct Activation
	// Outputs is the output dimension (default 1).
	Outputs int
	// Seed makes weight initialization deterministic.
	Seed int64
}

// New builds a network from the configuration. It returns an error for a
// non-positive input dimension or hidden width.
func New(cfg Config) (*Network, error) {
	if cfg.Inputs <= 0 {
		return nil, fmt.Errorf("nn: invalid input dimension %d", cfg.Inputs)
	}
	if cfg.Outputs <= 0 {
		cfg.Outputs = 1
	}
	if cfg.HiddenAct == Identity {
		cfg.HiddenAct = ReLU
	}
	if cfg.OutputAct == Identity {
		cfg.OutputAct = Sigmoid
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{inDim: cfg.Inputs}
	prev := cfg.Inputs
	for _, h := range cfg.Hidden {
		if h <= 0 {
			return nil, fmt.Errorf("nn: invalid hidden width %d", h)
		}
		n.layers = append(n.layers, newLayer(prev, h, cfg.HiddenAct, rng))
		prev = h
	}
	n.layers = append(n.layers, newLayer(prev, cfg.Outputs, cfg.OutputAct, rng))
	return n, nil
}

// InputDim returns the expected feature-vector length.
func (n *Network) InputDim() int { return n.inDim }

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}

// Forward runs inference on one feature vector. It panics if the input
// length does not match the network's input dimension (programmer error).
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.inDim {
		panic(fmt.Sprintf("nn: input dim %d, want %d", len(x), n.inDim))
	}
	for _, l := range n.layers {
		x = l.forward(x)
	}
	return x
}

// Predict returns the scalar output for one input (first output unit).
func (n *Network) Predict(x []float64) float64 { return n.Forward(x)[0] }

// PredictClass returns the thresholded binary decision for one input.
func (n *Network) PredictClass(x []float64, threshold float64) bool {
	return n.Predict(x) >= threshold
}

// backprop accumulates gradients of the binary cross-entropy loss for one
// (x, y) example and returns the example loss. Assumes the output layer is a
// single sigmoid unit, so dL/dz simplifies to (p − y); we feed backward
// dL/dout = (p−y)/σ'(z) to reuse the generic layer backward.
func (n *Network) backprop(x []float64, y float64) float64 {
	p := n.Forward(x)[0]
	// Clip for numerical stability of the loss (gradient uses raw p).
	pc := math.Min(math.Max(p, 1e-12), 1-1e-12)
	loss := -(y*math.Log(pc) + (1-y)*math.Log(1-pc))

	out := n.layers[len(n.layers)-1]
	dOut := make([]float64, out.out)
	d := out.act.derivFromOutput(out.lastOut[0])
	if d < 1e-12 {
		d = 1e-12
	}
	dOut[0] = (p - y) / d
	grad := dOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].backward(grad)
	}
	return loss
}

// Optimizer identifies a gradient-descent variant.
type Optimizer int

const (
	// SGD is stochastic gradient descent with momentum 0.9.
	SGD Optimizer = iota
	// Adam is the Adam optimizer with the standard β₁=0.9, β₂=0.999.
	Adam
)

func (o Optimizer) String() string {
	if o == Adam {
		return "adam"
	}
	return "sgd"
}

// TrainConfig controls Fit.
type TrainConfig struct {
	// Epochs is the number of passes over the training data (paper: 50).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// LearningRate (default 0.01 for SGD, 0.001 for Adam).
	LearningRate float64
	// Optimizer selects SGD or Adam.
	Optimizer Optimizer
	// Seed drives shuffling.
	Seed int64
	// L2 is the weight-decay coefficient (default 0).
	L2 float64
}

// ErrBadTrainingSet is returned when X and Y disagree or are empty.
var ErrBadTrainingSet = errors.New("nn: bad training set")

// Fit trains the network on features X and binary labels Y, minimizing
// binary cross-entropy. It returns the mean training loss per epoch.
func (n *Network) Fit(X [][]float64, Y []float64, cfg TrainConfig) ([]float64, error) {
	if len(X) == 0 || len(X) != len(Y) {
		return nil, ErrBadTrainingSet
	}
	for _, x := range X {
		if len(x) != n.inDim {
			return nil, fmt.Errorf("nn: feature dim %d, want %d: %w", len(x), n.inDim, ErrBadTrainingSet)
		}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearningRate <= 0 {
		if cfg.Optimizer == Adam {
			cfg.LearningRate = 0.001
		} else {
			cfg.LearningRate = 0.01
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, l := range n.layers {
				l.zeroGrad()
			}
			for _, i := range idx[start:end] {
				epochLoss += n.backprop(X[i], Y[i])
			}
			step++
			n.applyGradients(cfg, end-start, step)
		}
		losses = append(losses, epochLoss/float64(len(idx)))
	}
	return losses, nil
}

func (n *Network) applyGradients(cfg TrainConfig, batch int, step int) {
	lr := cfg.LearningRate
	inv := 1.0 / float64(batch)
	switch cfg.Optimizer {
	case Adam:
		const (
			b1  = 0.9
			b2  = 0.999
			eps = 1e-8
		)
		bc1 := 1 - math.Pow(b1, float64(step))
		bc2 := 1 - math.Pow(b2, float64(step))
		for _, l := range n.layers {
			for i := range l.w {
				g := l.gw[i]*inv + cfg.L2*l.w[i]
				l.mw[i] = b1*l.mw[i] + (1-b1)*g
				l.vw[i] = b2*l.vw[i] + (1-b2)*g*g
				l.w[i] -= lr * (l.mw[i] / bc1) / (math.Sqrt(l.vw[i]/bc2) + eps)
			}
			for i := range l.b {
				g := l.gb[i] * inv
				l.mb[i] = b1*l.mb[i] + (1-b1)*g
				l.vb[i] = b2*l.vb[i] + (1-b2)*g*g
				l.b[i] -= lr * (l.mb[i] / bc1) / (math.Sqrt(l.vb[i]/bc2) + eps)
			}
		}
	default: // SGD with momentum, reusing mw/mb as velocity.
		const momentum = 0.9
		for _, l := range n.layers {
			for i := range l.w {
				g := l.gw[i]*inv + cfg.L2*l.w[i]
				l.mw[i] = momentum*l.mw[i] - lr*g
				l.w[i] += l.mw[i]
			}
			for i := range l.b {
				l.mb[i] = momentum*l.mb[i] - lr*l.gb[i]*inv
				l.b[i] += l.mb[i]
			}
		}
	}
}

// Loss returns the mean binary cross-entropy of the network on (X, Y).
func (n *Network) Loss(X [][]float64, Y []float64) float64 {
	if len(X) == 0 {
		return math.NaN()
	}
	var total float64
	for i, x := range X {
		p := n.Predict(x)
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		total += -(Y[i]*math.Log(p) + (1-Y[i])*math.Log(1-p))
	}
	return total / float64(len(X))
}
