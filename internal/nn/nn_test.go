package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestActivationValues(t *testing.T) {
	if ReLU.apply(-1) != 0 || ReLU.apply(3) != 3 {
		t.Error("ReLU wrong")
	}
	if s := Sigmoid.apply(0); s != 0.5 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid.apply(100); s < 0.999 {
		t.Errorf("Sigmoid(100) = %v", s)
	}
	if Tanh.apply(0) != 0 {
		t.Error("Tanh(0) != 0")
	}
	if Identity.apply(2.5) != 2.5 {
		t.Error("Identity wrong")
	}
}

func TestActivationDerivatives(t *testing.T) {
	// Numeric check: derivFromOutput(σ(x)) ≈ dσ/dx.
	for _, act := range []Activation{Sigmoid, Tanh, ReLU} {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			h := 1e-6
			num := (act.apply(x+h) - act.apply(x-h)) / (2 * h)
			ana := act.derivFromOutput(act.apply(x))
			if math.Abs(num-ana) > 1e-4 {
				t.Errorf("%v'(%v): numeric %v vs analytic %v", act, x, num, ana)
			}
		}
	}
}

func TestActivationString(t *testing.T) {
	if ReLU.String() != "relu" || Sigmoid.String() != "sigmoid" ||
		Tanh.String() != "tanh" || Identity.String() != "identity" {
		t.Error("Activation.String mismatch")
	}
	if SGD.String() != "sgd" || Adam.String() != "adam" {
		t.Error("Optimizer.String mismatch")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Inputs: 0}); err == nil {
		t.Error("zero inputs should error")
	}
	if _, err := New(Config{Inputs: 4, Hidden: []int{5, -1}}); err == nil {
		t.Error("negative hidden width should error")
	}
	n, err := New(Config{Inputs: 6, Hidden: []int{12, 12, 6}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Paper architecture: 6→12→12→6→1.
	want := 6*12 + 12 + 12*12 + 12 + 12*6 + 6 + 6*1 + 1
	if n.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", n.NumParams(), want)
	}
	if n.InputDim() != 6 {
		t.Errorf("InputDim = %d", n.InputDim())
	}
}

func TestForwardPanicsOnBadDim(t *testing.T) {
	n, _ := New(Config{Inputs: 3, Hidden: []int{4}, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("Forward with wrong dim should panic")
		}
	}()
	n.Forward([]float64{1, 2})
}

func TestOutputRangeSigmoid(t *testing.T) {
	n, _ := New(Config{Inputs: 4, Hidden: []int{8}, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		p := n.Predict(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Predict = %v out of [0,1]", p)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := New(Config{Inputs: 5, Hidden: []int{7}, Seed: 42})
	b, _ := New(Config{Inputs: 5, Hidden: []int{7}, Seed: 42})
	x := []float64{1, -1, 0.5, 2, -0.3}
	if a.Predict(x) != b.Predict(x) {
		t.Error("same seed should give identical networks")
	}
	c, _ := New(Config{Inputs: 5, Hidden: []int{7}, Seed: 43})
	if a.Predict(x) == c.Predict(x) {
		t.Error("different seeds should give different networks")
	}
}

func TestGradientNumericalCheck(t *testing.T) {
	// Compare backprop gradients to finite differences on a tiny net.
	n, _ := New(Config{Inputs: 3, Hidden: []int{4}, HiddenAct: Tanh, Seed: 7})
	x := []float64{0.5, -1.2, 0.8}
	y := 1.0
	for _, l := range n.layers {
		l.zeroGrad()
	}
	n.backprop(x, y)
	lossAt := func() float64 {
		p := n.Predict(x)
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		return -(y*math.Log(p) + (1-y)*math.Log(1-p))
	}
	const h = 1e-6
	for li, l := range n.layers {
		for wi := range l.w {
			orig := l.w[wi]
			l.w[wi] = orig + h
			up := lossAt()
			l.w[wi] = orig - h
			down := lossAt()
			l.w[wi] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-l.gw[wi]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d w[%d]: numeric %v vs backprop %v", li, wi, num, l.gw[wi])
			}
		}
		for bi := range l.b {
			orig := l.b[bi]
			l.b[bi] = orig + h
			up := lossAt()
			l.b[bi] = orig - h
			down := lossAt()
			l.b[bi] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-l.gb[bi]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d b[%d]: numeric %v vs backprop %v", li, bi, num, l.gb[bi])
			}
		}
	}
}

// xorData builds the classic non-linearly-separable XOR dataset with noise.
func xorData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		a := rng.Intn(2)
		b := rng.Intn(2)
		X[i] = []float64{float64(a) + 0.1*rng.NormFloat64(), float64(b) + 0.1*rng.NormFloat64()}
		if a != b {
			Y[i] = 1
		}
	}
	return X, Y
}

func TestFitLearnsXORWithSGD(t *testing.T) {
	X, Y := xorData(400, 1)
	n, _ := New(Config{Inputs: 2, Hidden: []int{8, 8}, Seed: 2})
	losses, err := n.Fit(X, Y, TrainConfig{Epochs: 200, LearningRate: 0.05, Optimizer: SGD, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	correct := 0
	for i, x := range X {
		if n.PredictClass(x, 0.5) == (Y[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Errorf("XOR train accuracy = %v, want >= 0.95", acc)
	}
}

func TestFitLearnsXORWithAdam(t *testing.T) {
	X, Y := xorData(400, 5)
	n, _ := New(Config{Inputs: 2, Hidden: []int{8, 8}, Seed: 6})
	_, err := n.Fit(X, Y, TrainConfig{Epochs: 100, Optimizer: Adam, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range X {
		if n.PredictClass(x, 0.5) == (Y[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.95 {
		t.Errorf("Adam XOR accuracy = %v, want >= 0.95", acc)
	}
}

func TestFitValidation(t *testing.T) {
	n, _ := New(Config{Inputs: 2, Hidden: []int{3}, Seed: 1})
	if _, err := n.Fit(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := n.Fit([][]float64{{1, 2}}, []float64{1, 0}, TrainConfig{}); err == nil {
		t.Error("mismatched X/Y should error")
	}
	if _, err := n.Fit([][]float64{{1}}, []float64{1}, TrainConfig{}); err == nil {
		t.Error("wrong feature dim should error")
	}
}

func TestLossDecreasesGeneralization(t *testing.T) {
	// Train/test split on a linearly separable problem: test loss should be low.
	rng := rand.New(rand.NewSource(8))
	n := 600
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x1, x2 := rng.NormFloat64(), rng.NormFloat64()
		X[i] = []float64{x1, x2}
		if x1+x2 > 0 {
			Y[i] = 1
		}
	}
	net, _ := New(Config{Inputs: 2, Hidden: []int{6}, Seed: 9})
	_, err := net.Fit(X[:400], Y[:400], TrainConfig{Epochs: 60, Optimizer: Adam, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if l := net.Loss(X[400:], Y[400:]); l > 0.25 {
		t.Errorf("test loss = %v, want < 0.25", l)
	}
	if !math.IsNaN(net.Loss(nil, nil)) {
		t.Error("empty Loss should be NaN")
	}
}

func TestFitDeterministic(t *testing.T) {
	X, Y := xorData(100, 11)
	run := func() float64 {
		n, _ := New(Config{Inputs: 2, Hidden: []int{5}, Seed: 12})
		_, err := n.Fit(X, Y, TrainConfig{Epochs: 10, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		return n.Predict(X[0])
	}
	if run() != run() {
		t.Error("training should be deterministic under fixed seeds")
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	X, Y := xorData(200, 14)
	big, _ := New(Config{Inputs: 2, Hidden: []int{8}, Seed: 15})
	reg, _ := New(Config{Inputs: 2, Hidden: []int{8}, Seed: 15})
	if _, err := big.Fit(X, Y, TrainConfig{Epochs: 50, Seed: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Fit(X, Y, TrainConfig{Epochs: 50, Seed: 16, L2: 0.05}); err != nil {
		t.Fatal(err)
	}
	norm := func(n *Network) float64 {
		var s float64
		for _, l := range n.layers {
			for _, w := range l.w {
				s += w * w
			}
		}
		return s
	}
	if norm(reg) >= norm(big) {
		t.Errorf("L2-regularized norm %v should be below unregularized %v", norm(reg), norm(big))
	}
}
