package nn

import (
	"math"
	"testing"
)

func TestFitScalerBasics(t *testing.T) {
	X := [][]float64{{1, 100}, {3, 200}, {5, 300}}
	s := FitScaler(X)
	if s.Mean[0] != 3 || s.Mean[1] != 200 {
		t.Errorf("Mean = %v", s.Mean)
	}
	z := s.Transform([]float64{3, 200})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Transform(mean) = %v, want zeros", z)
	}
	// Standardized training data has unit std per feature.
	Z := s.TransformAll(X)
	for j := 0; j < 2; j++ {
		var ss float64
		for i := range Z {
			ss += Z[i][j] * Z[i][j]
		}
		if std := math.Sqrt(ss / 3); math.Abs(std-1) > 1e-9 {
			t.Errorf("feature %d std = %v, want 1", j, std)
		}
	}
}

func TestFitScalerConstantFeature(t *testing.T) {
	X := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	s := FitScaler(X)
	z := s.Transform([]float64{5, 2})
	if z[0] != 0 {
		t.Errorf("constant feature should center to 0, got %v", z[0])
	}
	if s.Std[0] != 1 {
		t.Errorf("constant feature Std should default to 1, got %v", s.Std[0])
	}
}

func TestFitScalerPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":  func() { FitScaler(nil) },
		"ragged": func() { FitScaler([][]float64{{1, 2}, {3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLogisticLearnsLinearBoundary(t *testing.T) {
	X := make([][]float64, 0, 400)
	Y := make([]float64, 0, 400)
	for i := 0; i < 400; i++ {
		x1 := float64(i%20)/10 - 1
		x2 := float64(i/20%20)/10 - 1
		X = append(X, []float64{x1, x2})
		if 2*x1-x2 > 0.1 {
			Y = append(Y, 1)
		} else {
			Y = append(Y, 0)
		}
	}
	m := NewLogistic(2)
	losses, err := m.Fit(X, Y, TrainConfig{Epochs: 200, LearningRate: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Error("logistic loss did not decrease")
	}
	correct := 0
	for i, x := range X {
		if m.PredictClass(x, 0.5) == (Y[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.93 {
		t.Errorf("logistic accuracy = %v, want >= 0.93", acc)
	}
}

func TestLogisticValidation(t *testing.T) {
	m := NewLogistic(2)
	if _, err := m.Fit(nil, nil, TrainConfig{}); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := m.Fit([][]float64{{1, 2}}, []float64{0, 1}, TrainConfig{}); err == nil {
		t.Error("mismatched X/Y should error")
	}
}

func TestLogisticPredictRange(t *testing.T) {
	m := NewLogistic(3)
	m.W = []float64{10, -5, 2}
	m.B = 1
	for _, x := range [][]float64{{100, 0, 0}, {-100, 0, 0}, {0, 0, 0}} {
		p := m.Predict(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Errorf("Predict(%v) = %v", x, p)
		}
	}
}
