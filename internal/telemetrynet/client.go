package telemetrynet

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/topology"
)

// ClientOptions configures a telemetry Client.
type ClientOptions struct {
	// BatchSize is the records-per-frame push granularity (default 4096):
	// Append buffers until a full batch, then pushes synchronously, so a
	// slow server back-pressures the producer instead of growing a queue.
	BatchSize int
	// Retries is how many times one push is re-sent after a transport
	// failure or 5xx response (default 3). Retries reuse the batch's
	// sequence token, so a push whose response was lost deduplicates
	// server-side instead of double-appending.
	Retries int
	// HTTPClient overrides the transport (e.g. miraload widens the
	// connection pool for thousands of concurrent requests).
	HTTPClient *http.Client
	// ClientID overrides the random ingest identity. Two clients must not
	// share an ID: the server's dedup watermark is per-ID.
	ClientID uint64
	// Context bounds every push: canceling it aborts in-flight requests
	// AND the backoff waits between retries, so Append/Flush return
	// promptly with an error wrapping the context's error instead of
	// sleeping out the remaining retry schedule against a dead server.
	// Defaults to context.Background (pushes never canceled).
	Context context.Context
}

// ClientStats counts what a client pushed over its lifetime.
type ClientStats struct {
	PushedBatches    int
	PushedRecords    int
	Retries          int
	DuplicateBatches int
}

// Client speaks the telemetrynet wire protocol and implements envdb.DB —
// including the envdb.Aggregator pushdown and the optional merged-scan
// capabilities — against a remote Server, so `mirasim -push` records into
// it and `miraanalyze -remote` analyzes through it exactly as they would
// an in-process store. Reads are bit-identical to local reads: float64
// channels travel as raw bit patterns and aggregation runs server-side.
//
// Error model: methods that return errors (Append, Flush, Aggregate,
// EachRecordMerged*, ExportCSV/ImportCSV, Info) surface transport and
// protocol failures normally. The error-free envdb.DB read surface
// (Query, Series, Len, Bounds, EachRecord*) mirrors the local stores'
// convention — there a failure means corrupted memory and panics — by
// panicking on a failed request; remote consumers should prefer the
// erroring surfaces, which every shipped consumer (analysis replay and
// pushdown) already uses. Check connectivity once with Info before
// leaning on the error-free surface.
//
// The client is safe for concurrent use; Append/Flush serialize on an
// internal mutex (one frame in flight), reads run concurrently.
type Client struct {
	base    string
	hc      *http.Client
	batch   int
	retries int
	id      uint64
	ctx     context.Context

	mu    sync.Mutex
	buf   []sensors.Record
	seq   uint64
	stats ClientStats
}

var (
	_ envdb.DB                 = (*Client)(nil)
	_ envdb.Aggregator         = (*Client)(nil)
	_ envdb.TierScanner        = (*Client)(nil)
	_ envdb.ContextTierScanner = (*Client)(nil)
	_ envdb.ContextAggregator  = (*Client)(nil)
)

// NewClient creates a client for the telemetry server at baseURL (e.g.
// "http://mon-host:8080"); no connection is made until the first request.
func NewClient(baseURL string, opts ClientOptions) *Client {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 4096
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 3
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{Timeout: 5 * time.Minute}
	}
	if opts.ClientID == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			opts.ClientID = binary.LittleEndian.Uint64(b[:])
		}
		if opts.ClientID == 0 {
			opts.ClientID = uint64(time.Now().UnixNano()) | 1
		}
	}
	if opts.Context == nil {
		opts.Context = context.Background()
	}
	return &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      opts.HTTPClient,
		batch:   opts.BatchSize,
		retries: opts.Retries,
		id:      opts.ClientID,
		ctx:     opts.Context,
	}
}

// Stats snapshots the client's push counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Append buffers one record, pushing a frame when the batch fills. A push
// failure is returned here (and the batch dropped) rather than silently
// requeued — the recorder latches the first error and the run fails loudly.
func (c *Client) Append(r sensors.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = append(c.buf, r)
	if len(c.buf) >= c.batch {
		return c.flushLocked()
	}
	return nil
}

// Flush pushes the buffered partial batch, if any. Call after the last
// Append so the tail of a run reaches the server.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Client) flushLocked() error {
	if len(c.buf) == 0 {
		return nil
	}
	// One span per push, covering every retry; the span's trace rides the
	// X-Mira-Trace header so the server's net.ingest handler links to it.
	ctx, span := obs.Span(c.ctx, "net.client.ingest")
	defer span.End()
	span.SetAttr("rows", strconv.Itoa(len(c.buf)))
	c.seq++
	frame := encodeIngestFrame(nil, c.id, c.seq, c.buf)
	n := len(c.buf)
	// Win or lose, the batch is consumed: a batch the server rejected must
	// not poison every subsequent flush, and a transport-dead batch is
	// reported to the caller instead of silently retried forever.
	c.buf = c.buf[:0]
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			metClientRetries.Inc()
			// The backoff wait races the client context: a canceled push
			// must not sleep out the remaining retry schedule against a
			// server that is already known to be down.
			timer := time.NewTimer(retryBackoff(attempt, c.id, c.seq))
			select {
			case <-c.ctx.Done():
				timer.Stop()
				metClientErrors.Inc()
				return fmt.Errorf("telemetrynet: push canceled on attempt %d: %w (last error: %v)",
					attempt, c.ctx.Err(), lastErr)
			case <-timer.C:
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ingest", bytes.NewReader(frame))
		if err != nil {
			metClientErrors.Inc()
			return fmt.Errorf("telemetrynet: push: %w", err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		injectTrace(req, ctx)
		resp, err := c.hc.Do(req)
		if err != nil {
			if c.ctx.Err() != nil {
				metClientErrors.Inc()
				return fmt.Errorf("telemetrynet: push canceled on attempt %d: %w", attempt+1, err)
			}
			lastErr = err
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			var res IngestResult
			if json.Unmarshal(body, &res) == nil {
				c.stats.DuplicateBatches += res.DuplicateBatches
			}
			c.stats.PushedBatches++
			c.stats.PushedRecords += n
			metClientPushBatches.Inc()
			metClientPushRecords.Add(uint64(n))
			return nil
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("telemetrynet: push: server %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		default:
			metClientErrors.Inc()
			return fmt.Errorf("telemetrynet: push rejected (%d): %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
	}
	metClientErrors.Inc()
	return fmt.Errorf("telemetrynet: push failed after %d attempts: %w", c.retries+1, lastErr)
}

// retryBackoff is the wait before retry `attempt` (1-based): linear 50 ms
// steps plus up to 25 ms of deterministic jitter mixed from the client
// identity, the batch sequence, and the attempt counter. The jitter
// decorrelates the retry schedules of many clients whose pushes failed at
// the same instant (a restarting server would otherwise see them all
// again simultaneously, every 50 ms); deriving it from counters instead
// of a RNG keeps the schedule reproducible for a given client and batch.
func retryBackoff(attempt int, id, seq uint64) time.Duration {
	h := id ^ seq*0x9E3779B97F4A7C15 ^ uint64(attempt)*0xFF51AFD7ED558CCD
	h ^= h >> 33
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 33
	jitter := time.Duration(h % uint64(25*time.Millisecond))
	return time.Duration(attempt)*50*time.Millisecond + jitter
}

// httpError carries the status code so capability fallbacks can detect
// 501/404 (endpoint or pushdown unavailable).
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("telemetrynet: server %d: %s", e.code, e.msg)
}

func unavailable(err error) bool {
	he, ok := err.(*httpError)
	return ok && (he.code == http.StatusNotImplemented || he.code == http.StatusNotFound)
}

// injectTrace stamps the outgoing request with the context's trace, so
// the server joins the caller's trace instead of starting a fresh root.
func injectTrace(req *http.Request, ctx context.Context) {
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		req.Header.Set(obs.TraceHeader, sc.HeaderValue())
	}
}

// get issues one API request under ctx; non-200 responses become
// *httpError. The context's active span is propagated on the wire.
func (c *Client) get(ctx context.Context, path string, q url.Values) (io.ReadCloser, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		metClientErrors.Inc()
		return nil, fmt.Errorf("telemetrynet: %s: %w", path, err)
	}
	injectTrace(req, ctx)
	resp, err := c.hc.Do(req)
	if err != nil {
		metClientErrors.Inc()
		return nil, fmt.Errorf("telemetrynet: %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		metClientErrors.Inc()
		return nil, &httpError{code: resp.StatusCode, msg: strings.TrimSpace(string(body))}
	}
	return resp.Body, nil
}

func rangeParams(rack topology.RackID, from, to time.Time) url.Values {
	// The rack travels as its packed code; for hall 0 this is the plain
	// index, so the params are unchanged against pre-fleet servers.
	return url.Values{
		"rack": {strconv.FormatUint(uint64(rack.Code()), 10)},
		"from": {strconv.FormatInt(from.UnixNano(), 10)},
		"to":   {strconv.FormatInt(to.UnixNano(), 10)},
	}
}

// Info fetches the server's store summary — also the cheap connectivity
// pre-flight before using the error-free read surface.
func (c *Client) Info() (Info, error) { return c.infoCtx(c.ctx) }

func (c *Client) infoCtx(ctx context.Context) (Info, error) {
	ctx, span := obs.Span(ctx, "net.client.info")
	defer span.End()
	body, err := c.get(ctx, "/v1/info", nil)
	if err != nil {
		return Info{}, err
	}
	defer body.Close()
	var info Info
	if err := json.NewDecoder(body).Decode(&info); err != nil {
		return Info{}, fmt.Errorf("telemetrynet: decoding info: %w", err)
	}
	return info, nil
}

// Len returns the remote record count. Panics on a failed request (see the
// type's error-model note).
func (c *Client) Len() int {
	info, err := c.Info()
	if err != nil {
		panic(err)
	}
	return info.Records
}

// Bounds implements envdb.Aggregator's bounds surface from /v1/info.
// Panics on a failed request.
func (c *Client) Bounds() (first, last time.Time, ok bool) {
	info, err := c.Info()
	if err != nil {
		panic(err)
	}
	if !info.HasData {
		return time.Time{}, time.Time{}, false
	}
	loc := zoneLocation(info.ZoneOffsetSeconds)
	return time.Unix(0, info.FirstUnixNano).In(loc), time.Unix(0, info.LastUnixNano).In(loc), true
}

func (c *Client) queryErr(ctx context.Context, rack topology.RackID, from, to time.Time) ([]sensors.Record, error) {
	ctx, span := obs.Span(ctx, "net.client.query")
	defer span.End()
	body, err := c.get(ctx, "/v1/query", rangeParams(rack, from, to))
	if err != nil {
		return nil, err
	}
	defer body.Close()
	out := []sensors.Record{}
	if err := readChunkStream(body, func(r sensors.Record, _ byte) bool {
		out = append(out, r)
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Query returns one rack's records in [from, to). Panics on a failed
// request.
func (c *Client) Query(rack topology.RackID, from, to time.Time) []sensors.Record {
	out, err := c.queryErr(c.ctx, rack, from, to)
	if err != nil {
		panic(err)
	}
	return out
}

// Series extracts one metric for one rack over [from, to). Panics on a
// failed request.
func (c *Client) Series(rack topology.RackID, m sensors.Metric, from, to time.Time) ([]time.Time, []float64) {
	ctx, span := obs.Span(c.ctx, "net.client.series")
	defer span.End()
	q := rangeParams(rack, from, to)
	q.Set("metric", strconv.Itoa(int(m)))
	body, err := c.get(ctx, "/v1/series", q)
	if err != nil {
		panic(err)
	}
	defer body.Close()
	times, vals, err := decodeSeries(body)
	if err != nil {
		panic(err)
	}
	return times, vals
}

// EachRecord visits every remote record rack-major (time order within a
// rack), streamed in CRC-checked chunks. Panics on a failed request.
func (c *Client) EachRecord(f func(sensors.Record)) {
	c.EachRecordUntil(func(r sensors.Record) bool { f(r); return true })
}

// EachRecordUntil visits records like EachRecord, stopping early when f
// returns false (the remaining stream is abandoned, not downloaded).
// Panics on a failed request.
func (c *Client) EachRecordUntil(f func(sensors.Record) bool) {
	err := c.scan(c.ctx, url.Values{"order": {"rack"}}, func(r sensors.Record, _ byte) bool { return f(r) })
	if err == nil {
		return
	}
	if unavailable(err) {
		// Fallback for servers without /v1/scan: per-rack range queries in
		// rack order reproduce the same visit order.
		if ferr := c.fallbackRackScan(f); ferr == nil {
			return
		}
	}
	panic(err)
}

func (c *Client) scan(ctx context.Context, q url.Values, f func(sensors.Record, byte) bool) error {
	ctx, span := obs.Span(ctx, "net.client.scan")
	defer span.End()
	body, err := c.get(ctx, "/v1/scan", q)
	if err != nil {
		return err
	}
	defer body.Close()
	rows := 0
	defer func() { span.SetAttr("rows", strconv.Itoa(rows)) }()
	return readChunkStream(body, func(r sensors.Record, tier byte) bool {
		rows++
		return f(r, tier)
	})
}

func (c *Client) fallbackRackScan(f func(sensors.Record) bool) error {
	info, err := c.Info()
	if err != nil {
		return err
	}
	if !info.HasData {
		return nil
	}
	loc := zoneLocation(info.ZoneOffsetSeconds)
	first := time.Unix(0, info.FirstUnixNano).In(loc)
	to := time.Unix(0, info.LastUnixNano).In(loc).Add(time.Nanosecond)
	// Pre-fleet servers omit the fleet fields; Norm defaults them to the
	// single-machine 1 × 48 shape.
	fleet := topology.Fleet{Halls: info.Halls, Racks: info.RacksPerHall}.Norm()
	for _, rack := range fleet.AllRacks() {
		recs, err := c.queryErr(c.ctx, rack, first, to)
		if err != nil {
			return err
		}
		for _, r := range recs {
			if !f(r) {
				return nil
			}
		}
	}
	return nil
}

// EachRecordMerged implements envdb.ShardScanner over the wire: the server
// streams its global time-ordered merge (workers bounds the server-side
// decode fan-out, still capped by the server's own option).
func (c *Client) EachRecordMerged(workers int, f func(sensors.Record) bool) error {
	return c.EachRecordMergedTier(workers, func(r sensors.Record, _ envdb.Tier) bool { return f(r) })
}

// EachRecordMergedTier implements envdb.TierScanner over the wire. When
// the server lacks the scan endpoint it falls back to per-rack queries
// merged client-side (O(trace) memory, every record TierRaw) — the
// graceful-degradation contract of the optional scanner capabilities.
func (c *Client) EachRecordMergedTier(workers int, f func(sensors.Record, envdb.Tier) bool) error {
	return c.EachRecordMergedTierCtx(c.ctx, workers, f)
}

// EachRecordMergedTierCtx implements envdb.ContextTierScanner over the
// wire: the scan request carries ctx's trace in X-Mira-Trace, so the
// server-side handler and tsdb scan spans join the caller's trace.
func (c *Client) EachRecordMergedTierCtx(ctx context.Context, workers int, f func(sensors.Record, envdb.Tier) bool) error {
	q := url.Values{"order": {"time"}, "tiers": {"1"}}
	if workers > 0 {
		q.Set("workers", strconv.Itoa(workers))
	}
	err := c.scan(ctx, q, func(r sensors.Record, tier byte) bool { return f(r, envdb.Tier(tier)) })
	if err != nil && unavailable(err) {
		return c.fallbackMergedTier(f)
	}
	return err
}

func (c *Client) fallbackMergedTier(f func(sensors.Record, envdb.Tier) bool) error {
	var all []sensors.Record
	if err := c.fallbackRackScan(func(r sensors.Record) bool {
		all = append(all, r)
		return true
	}); err != nil {
		return err
	}
	sort.SliceStable(all, func(a, b int) bool {
		ta, tb := all[a].Time.UnixNano(), all[b].Time.UnixNano()
		if ta != tb {
			return ta < tb
		}
		return all[a].Rack.Code() < all[b].Rack.Code()
	})
	for _, r := range all {
		if !f(r, envdb.TierRaw) {
			return nil
		}
	}
	return nil
}

// Aggregate implements envdb.Aggregator over the wire: the server computes
// per-window count/min/max/sum straight off its compressed columns and the
// results travel as raw float64 bits — bit-identical to an in-process
// Aggregate call. When the server's store cannot push down (501), the
// client degrades to aggregating a Series fetch locally (float-order
// accumulation, no integer-domain exactness).
func (c *Client) Aggregate(rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) ([]envdb.WindowAgg, error) {
	return c.AggregateCtx(c.ctx, rack, m, from, to, window)
}

// AggregateCtx implements envdb.ContextAggregator over the wire.
func (c *Client) AggregateCtx(ctx context.Context, rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) ([]envdb.WindowAgg, error) {
	ctx, span := obs.Span(ctx, "net.client.aggregate")
	defer span.End()
	q := rangeParams(rack, from, to)
	q.Set("metric", strconv.Itoa(int(m)))
	q.Set("window", strconv.FormatInt(int64(window), 10))
	body, err := c.get(ctx, "/v1/aggregate", q)
	if err != nil {
		if unavailable(err) {
			return c.aggregateLocal(rack, m, from, to, window)
		}
		return nil, err
	}
	defer body.Close()
	wire, loc, err := decodeAggs(body)
	if err != nil {
		return nil, err
	}
	out := make([]envdb.WindowAgg, len(wire))
	for i, a := range wire {
		out[i] = envdb.WindowAgg{
			Start: time.Unix(0, a.startN).In(loc),
			Count: int(a.count),
			Min:   a.min, Max: a.max, Sum: a.sum,
		}
	}
	return out, nil
}

// aggregateLocal reproduces the tsdb window grid over a fetched series.
func (c *Client) aggregateLocal(rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) ([]envdb.WindowAgg, error) {
	fromN, toN := from.UnixNano(), to.UnixNano()
	if toN <= fromN {
		return nil, nil
	}
	winN := int64(window)
	if winN <= 0 {
		winN = toN - fromN
	}
	nWin := (toN-fromN-1)/winN + 1
	if nWin > maxAggWindows {
		return nil, fmt.Errorf("telemetrynet: aggregate fallback needs %d windows (max %d)", nWin, maxAggWindows)
	}
	times, vals := c.Series(rack, m, from, to)
	loc := time.UTC
	if len(times) > 0 {
		loc = times[0].Location()
	}
	out := make([]envdb.WindowAgg, nWin)
	for k := range out {
		out[k] = envdb.WindowAgg{Start: time.Unix(0, fromN+int64(k)*winN).In(loc), Min: math.NaN(), Max: math.NaN()}
	}
	for i, t := range times {
		k := (t.UnixNano() - fromN) / winN
		w := &out[k]
		v := vals[i]
		if w.Count == 0 || v < w.Min {
			w.Min = v
		}
		if w.Count == 0 || v > w.Max {
			w.Max = v
		}
		w.Sum += v
		w.Count++
	}
	return out, nil
}

// ExportCSV writes every remote record in the envdb CSV schema.
func (c *Client) ExportCSV(w io.Writer) error { return envdb.WriteCSV(w, c) }

// ImportCSV pushes records from the envdb CSV schema, flushing the final
// partial batch.
func (c *Client) ImportCSV(r io.Reader) error {
	if err := envdb.ReadCSV(r, c); err != nil {
		return err
	}
	return c.Flush()
}
