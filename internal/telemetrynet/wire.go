// Package telemetrynet is the network telemetry service of the digital
// twin: the wire protocol, HTTP server, and envdb.DB client that split the
// paper's monitoring pipeline (§III) across processes. Remote simulators
// push length-prefixed binary frames of coolant-monitor records into a
// central store (miramon -serve), and analyses query the same store over
// the wire through a client that satisfies the envdb.DB and
// envdb.Aggregator surfaces — so every existing consumer works unchanged
// against a live remote store.
//
// The wire format is documented in DESIGN.md §7. In short: an ingest frame
// is a fixed 32-byte header (magic, payload length, client ID, batch
// sequence, record count, zone offset) followed by 57-byte fixed-width
// records and an IEEE CRC32 over header+payload. The (client ID, sequence)
// pair makes retried pushes idempotent: the server remembers the highest
// sequence applied per client and drops replays. Query responses reuse the
// record encoding in CRC-checked chunks, and float64 channels travel as
// raw bit patterns, so remote reads are bit-identical to in-process reads.
package telemetrynet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"mira/internal/sensors"
	"mira/internal/topology"
	"mira/internal/units"
)

// ErrFrame marks every malformed-input failure of the wire decoders: bad
// magic, inconsistent lengths, out-of-range racks, truncation, checksum
// mismatch. Like tsdb.ErrCorrupt for segment files, arbitrary bytes must
// decode to a wrapped ErrFrame or a valid value — never a panic (pinned by
// FuzzDecodeIngestFrame).
var ErrFrame = errors.New("telemetrynet: malformed frame")

const (
	// ingestMagic/chunkMagic/seriesMagic/aggMagic version the wire format;
	// any incompatible change mints new magics. "MTN2" is the fleet-era
	// ingest frame: identical header, but records carry a uint16 packed
	// rack code (topology.RackID.Code) instead of a uint8 rack index, so a
	// pusher can address any hall. Decoders accept both; encoders emit v1
	// whenever every record lives in hall 0 (a hall-0 code equals the plain
	// index), keeping single-machine byte streams identical to the v1 era.
	ingestMagic   = 0x314E544D // "MTN1": v1 ingest, uint8 rack records
	ingestMagicV2 = 0x324E544D // "MTN2": v2 ingest, uint16 rack-code records
	chunkMagic    = 0x524E544D // "MTNR": record-chunk stream header
	seriesMagic   = 0x534E544D // "MTNS": series response
	aggMagic      = 0x414E544D // "MTNA": aggregate response

	// recordSize is the fixed v1 encoding of one sensors.Record: rack index
	// (uint8), UnixNano timestamp (int64), six float64 channel bit
	// patterns. Little-endian throughout. The v2 encoding widens the rack
	// field to a uint16 packed code and leaves everything else in place.
	recordSize   = 1 + 8 + 8*int(sensors.NumMetrics)
	recordSizeV2 = 2 + 8 + 8*int(sensors.NumMetrics)
	// tierRecordSize appends one envdb.Tier byte (scan streams only).
	tierRecordSize   = recordSize + 1
	tierRecordSizeV2 = recordSizeV2 + 1

	// ingestHeaderSize: magic, payloadLen, clientID, seq, count, zoneOff.
	ingestHeaderSize = 4 + 4 + 8 + 8 + 4 + 4

	// maxFrameRecords bounds one ingest frame; together with the payload
	// length check it caps the allocation a hostile frame can request.
	maxFrameRecords = 1 << 20
	// maxChunkRecords bounds one response chunk.
	maxChunkRecords = 1 << 16
	// maxSeriesPoints and maxAggWindows bound single-shot response decodes.
	maxSeriesPoints = 1 << 26
	maxAggWindows   = 1 << 24
)

func frameErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
}

// frameLen converts a wire-supplied element count into the byte length
// count*size+extra. The cap check happens here, before the multiply, and
// the arithmetic is 64-bit throughout, so a hostile count near 2^32 can
// never wrap a length computation — the invariant holds even if a caller's
// own bounds check is later reordered or relaxed. Every decoder that sizes
// a read from a wire count goes through this.
func frameLen(kind string, count uint32, size, extra int, maxElems uint32) (int, error) {
	if count > maxElems {
		return 0, frameErr("%s count %d exceeds %d", kind, count, maxElems)
	}
	n := int64(count)*int64(size) + int64(extra)
	if n > math.MaxInt32 {
		return 0, frameErr("%s length %d overflows frame bounds", kind, n)
	}
	return int(n), nil
}

// readBody reads exactly need bytes, growing the buffer in 1 MiB steps so
// a hostile header declaring a huge length cannot demand the allocation up
// front — memory grows only as fast as bytes actually arrive.
func readBody(r io.Reader, need int) ([]byte, error) {
	const step = 1 << 20
	cap0 := need
	if cap0 > step {
		cap0 = step
	}
	body := make([]byte, 0, cap0)
	for len(body) < need {
		n := need - len(body)
		if n > step {
			n = step
		}
		off := len(body)
		body = append(body, make([]byte, n)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return nil, err
		}
	}
	return body, nil
}

// zoneOffset extracts the fixed UTC offset (seconds) of t's location.
// Calendar bucketing downstream (monthly figures) depends on the zone, so
// the wire carries it and both ends reconstruct instants in the same
// offset; the zone's name is cosmetic and does not travel.
func zoneOffset(t time.Time) int32 {
	_, off := t.Zone()
	return int32(off)
}

// zoneLocation reconstructs a *time.Location from a wire offset.
func zoneLocation(off int32) *time.Location {
	if off == 0 {
		return time.UTC
	}
	return time.FixedZone("wire", int(off))
}

func appendRecord(buf []byte, r sensors.Record) []byte {
	buf = append(buf, byte(r.Rack.Index()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Time.UnixNano()))
	for m := 0; m < int(sensors.NumMetrics); m++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value(sensors.Metric(m))))
	}
	return buf
}

// appendRecordWide is the v2 record encoding: the rack travels as its
// uint16 packed code (hall high byte, within-hall index low byte).
func appendRecordWide(buf []byte, r sensors.Record) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, r.Rack.Code())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Time.UnixNano()))
	for m := 0; m < int(sensors.NumMetrics); m++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value(sensors.Metric(m))))
	}
	return buf
}

// hallZero reports whether every record lives in hall 0, i.e. the batch is
// expressible in the v1 record encoding.
func hallZero(recs []sensors.Record) bool {
	for i := range recs {
		if recs[i].Rack.Hall != 0 {
			return false
		}
	}
	return true
}

// decodeRecord decodes one fixed-width v1 record; b must hold recordSize
// bytes.
func decodeRecord(b []byte, loc *time.Location) (sensors.Record, error) {
	idx := int(b[0])
	if idx >= topology.NumRacks {
		return sensors.Record{}, frameErr("rack index %d out of range", idx)
	}
	var vals [sensors.NumMetrics]float64
	for m := range vals {
		vals[m] = math.Float64frombits(binary.LittleEndian.Uint64(b[9+8*m:]))
	}
	return recordFromValues(topology.RackByIndex(idx),
		time.Unix(0, int64(binary.LittleEndian.Uint64(b[1:]))).In(loc), vals), nil
}

// decodeRecordWide decodes one fixed-width v2 record; b must hold
// recordSizeV2 bytes.
func decodeRecordWide(b []byte, loc *time.Location) (sensors.Record, error) {
	rack, err := topology.RackFromCode(binary.LittleEndian.Uint16(b))
	if err != nil {
		return sensors.Record{}, frameErr("%v", err)
	}
	var vals [sensors.NumMetrics]float64
	for m := range vals {
		vals[m] = math.Float64frombits(binary.LittleEndian.Uint64(b[10+8*m:]))
	}
	return recordFromValues(rack,
		time.Unix(0, int64(binary.LittleEndian.Uint64(b[2:]))).In(loc), vals), nil
}

// recordFromValues assembles a Record from its six channel values in
// sensors.Metric order — the inverse of Record.Value.
func recordFromValues(rack topology.RackID, t time.Time, vals [sensors.NumMetrics]float64) sensors.Record {
	return sensors.Record{
		Time:          t,
		Rack:          rack,
		DCTemperature: units.Fahrenheit(vals[sensors.MetricDCTemperature]),
		DCHumidity:    units.RelativeHumidity(vals[sensors.MetricDCHumidity]),
		Flow:          units.GPM(vals[sensors.MetricFlow]),
		InletTemp:     units.Fahrenheit(vals[sensors.MetricInletTemp]),
		OutletTemp:    units.Fahrenheit(vals[sensors.MetricOutletTemp]),
		Power:         units.Watts(vals[sensors.MetricPower]),
	}
}

// ingestFrame is one decoded push batch.
type ingestFrame struct {
	ClientID uint64
	Seq      uint64
	Records  []sensors.Record
}

// encodeIngestFrame appends one ingest frame for recs to buf. The zone
// offset is taken from the first record (one simulator feeds one frame, so
// a batch never mixes zones). A batch confined to hall 0 encodes as a v1
// frame — byte-identical to the pre-fleet protocol — and anything touching
// a higher hall encodes as v2 with wide rack codes.
func encodeIngestFrame(buf []byte, clientID, seq uint64, recs []sensors.Record) []byte {
	magic, rsize := uint32(ingestMagic), recordSize
	if !hallZero(recs) {
		magic, rsize = ingestMagicV2, recordSizeV2
	}
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)*rsize))
	buf = binary.LittleEndian.AppendUint64(buf, clientID)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(zoneOffset(recs[0].Time)))
	for _, r := range recs {
		if magic == ingestMagicV2 {
			buf = appendRecordWide(buf, r)
		} else {
			buf = appendRecord(buf, r)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// decodeIngestFrame reads one frame from r. A clean end of stream returns
// io.EOF; truncation mid-frame, a bad magic, inconsistent lengths, or a
// checksum mismatch return a wrapped ErrFrame.
func decodeIngestFrame(r io.Reader) (ingestFrame, error) {
	var hdr [ingestHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return ingestFrame{}, io.EOF
		}
		return ingestFrame{}, frameErr("reading header: %v", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return ingestFrame{}, frameErr("reading header: %v", err)
	}
	rsize := recordSize
	switch m := binary.LittleEndian.Uint32(hdr[0:]); m {
	case ingestMagic:
	case ingestMagicV2:
		rsize = recordSizeV2
	default:
		return ingestFrame{}, frameErr("bad magic %#x", m)
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[4:])
	clientID := binary.LittleEndian.Uint64(hdr[8:])
	seq := binary.LittleEndian.Uint64(hdr[16:])
	count := binary.LittleEndian.Uint32(hdr[24:])
	zoneOff := int32(binary.LittleEndian.Uint32(hdr[28:]))
	if count == 0 || count > maxFrameRecords {
		return ingestFrame{}, frameErr("record count %d out of range [1, %d]", count, maxFrameRecords)
	}
	need, err := frameLen("record", count, rsize, 4, maxFrameRecords)
	if err != nil {
		return ingestFrame{}, err
	}
	if int64(payloadLen) != int64(need)-4 {
		return ingestFrame{}, frameErr("payload length %d does not match %d records", payloadLen, count)
	}
	body, err := readBody(r, need)
	if err != nil {
		return ingestFrame{}, frameErr("reading %d-byte payload: %v", payloadLen, err)
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, body[:payloadLen])
	if got := binary.LittleEndian.Uint32(body[payloadLen:]); got != sum {
		return ingestFrame{}, frameErr("checksum mismatch: frame %#x, computed %#x", got, sum)
	}
	loc := zoneLocation(zoneOff)
	recs := make([]sensors.Record, count)
	for i := range recs {
		var err error
		if rsize == recordSizeV2 {
			recs[i], err = decodeRecordWide(body[i*rsize:], loc)
		} else {
			recs[i], err = decodeRecord(body[i*rsize:], loc)
		}
		if err != nil {
			return ingestFrame{}, fmt.Errorf("record %d: %w", i, err)
		}
	}
	return ingestFrame{ClientID: clientID, Seq: seq, Records: recs}, nil
}

// chunkWriter streams records as CRC-checked chunks: a 12-byte stream
// header (magic, flags, zone offset) followed by chunks of
// [count uint32 | payload | crc32], terminated by a zero-count chunk whose
// CRC covers just the count. Flag bit 0 marks tiered records (one
// envdb.Tier byte appended to each record); flag bit 1 marks wide-rack
// records (v2 encoding, uint16 packed rack code). Servers set the wide
// flag only for multi-hall stores, so single-machine response streams stay
// byte-identical to the v1 era.
type chunkWriter struct {
	w       io.Writer
	buf     []byte
	count   uint32
	tiered  bool
	wide    bool
	started bool
	zoneOff int32
}

const (
	chunkFlagTiered   = 1
	chunkFlagWideRack = 2
)

func newChunkWriter(w io.Writer, tiered, wide bool, zoneOff int32) *chunkWriter {
	return &chunkWriter{w: w, tiered: tiered, wide: wide, zoneOff: zoneOff}
}

func (cw *chunkWriter) header() []byte {
	var flags uint32
	if cw.tiered {
		flags |= chunkFlagTiered
	}
	if cw.wide {
		flags |= chunkFlagWideRack
	}
	hdr := binary.LittleEndian.AppendUint32(nil, chunkMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, flags)
	return binary.LittleEndian.AppendUint32(hdr, uint32(cw.zoneOff))
}

func (cw *chunkWriter) add(r sensors.Record, tier byte) error {
	if !cw.started {
		cw.started = true
		if _, err := cw.w.Write(cw.header()); err != nil {
			return err
		}
		cw.buf = binary.LittleEndian.AppendUint32(cw.buf[:0], 0) // count placeholder
	}
	if cw.wide {
		cw.buf = appendRecordWide(cw.buf, r)
	} else {
		cw.buf = appendRecord(cw.buf, r)
	}
	if cw.tiered {
		cw.buf = append(cw.buf, tier)
	}
	cw.count++
	if cw.count >= maxChunkRecords {
		return cw.flushChunk()
	}
	return nil
}

func (cw *chunkWriter) flushChunk() error {
	if cw.count == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(cw.buf[:4], cw.count)
	cw.buf = binary.LittleEndian.AppendUint32(cw.buf, crc32.ChecksumIEEE(cw.buf))
	_, err := cw.w.Write(cw.buf)
	cw.buf = binary.LittleEndian.AppendUint32(cw.buf[:0], 0)
	cw.count = 0
	return err
}

// close flushes the pending chunk and writes the zero-count terminator, so
// the reader can tell a complete stream from a truncated one.
func (cw *chunkWriter) close() error {
	if !cw.started {
		cw.started = true
		if _, err := cw.w.Write(cw.header()); err != nil {
			return err
		}
	}
	if err := cw.flushChunk(); err != nil {
		return err
	}
	end := binary.LittleEndian.AppendUint32(nil, 0)
	end = binary.LittleEndian.AppendUint32(end, crc32.ChecksumIEEE(end[:4]))
	_, err := cw.w.Write(end)
	return err
}

// readChunkStream decodes a chunk stream, invoking f for each record until
// the terminator chunk or f returns false (early stop: the remaining body
// is abandoned, not decoded). Returns a wrapped ErrFrame on any malformed
// or truncated input.
func readChunkStream(r io.Reader, f func(rec sensors.Record, tier byte) bool) error {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frameErr("reading stream header: %v", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != chunkMagic {
		return frameErr("bad stream magic %#x", m)
	}
	flags := binary.LittleEndian.Uint32(hdr[4:])
	tiered := flags&chunkFlagTiered != 0
	wide := flags&chunkFlagWideRack != 0
	loc := zoneLocation(int32(binary.LittleEndian.Uint32(hdr[8:])))
	rsize := recordSize
	if wide {
		rsize = recordSizeV2
	}
	size := rsize
	if tiered {
		size++
	}
	var chunk []byte
	for {
		var cntBuf [4]byte
		if _, err := io.ReadFull(r, cntBuf[:]); err != nil {
			return frameErr("reading chunk count: %v", err)
		}
		count := binary.LittleEndian.Uint32(cntBuf[:])
		need, err := frameLen("chunk", count, size, 4, maxChunkRecords)
		if err != nil {
			return err
		}
		if cap(chunk) < need {
			chunk = make([]byte, need)
		}
		chunk = chunk[:need]
		if _, err := io.ReadFull(r, chunk); err != nil {
			return frameErr("reading %d-record chunk: %v", count, err)
		}
		sum := crc32.ChecksumIEEE(cntBuf[:])
		sum = crc32.Update(sum, crc32.IEEETable, chunk[:need-4])
		if got := binary.LittleEndian.Uint32(chunk[need-4:]); got != sum {
			return frameErr("chunk checksum mismatch: stream %#x, computed %#x", got, sum)
		}
		if count == 0 {
			return nil // terminator
		}
		for i := 0; i < int(count); i++ {
			var rec sensors.Record
			var err error
			if wide {
				rec, err = decodeRecordWide(chunk[i*size:], loc)
			} else {
				rec, err = decodeRecord(chunk[i*size:], loc)
			}
			if err != nil {
				return err
			}
			var tier byte
			if tiered {
				tier = chunk[i*size+rsize]
			}
			if !f(rec, tier) {
				return nil
			}
		}
	}
}

// encodeSeries writes a series response: times as UnixNano, values as raw
// float64 bits, one CRC over the whole message.
func encodeSeries(w io.Writer, zoneOff int32, times []time.Time, vals []float64) error {
	buf := binary.LittleEndian.AppendUint32(nil, seriesMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(zoneOff))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(times)))
	for _, t := range times {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.UnixNano()))
	}
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

func decodeSeries(r io.Reader) ([]time.Time, []float64, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, frameErr("reading series header: %v", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != seriesMagic {
		return nil, nil, frameErr("bad series magic %#x", m)
	}
	loc := zoneLocation(int32(binary.LittleEndian.Uint32(hdr[4:])))
	count := binary.LittleEndian.Uint32(hdr[8:])
	need, err := frameLen("series", count, 16, 4, maxSeriesPoints)
	if err != nil {
		return nil, nil, err
	}
	body, err := readBody(r, need)
	if err != nil {
		return nil, nil, frameErr("reading %d-point series: %v", count, err)
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, body[:len(body)-4])
	if got := binary.LittleEndian.Uint32(body[len(body)-4:]); got != sum {
		return nil, nil, frameErr("series checksum mismatch: got %#x, computed %#x", got, sum)
	}
	times := make([]time.Time, count)
	vals := make([]float64, count)
	for i := range times {
		times[i] = time.Unix(0, int64(binary.LittleEndian.Uint64(body[i*8:]))).In(loc)
	}
	off := int(count) * 8
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off+i*8:]))
	}
	return times, vals, nil
}

// encodeAggs writes an aggregate response: per window, start (UnixNano),
// count, and min/max/sum as raw float64 bits — bit-exact pushdown results.
func encodeAggs(w io.Writer, zoneOff int32, aggs []windowAgg) error {
	buf := binary.LittleEndian.AppendUint32(nil, aggMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(zoneOff))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(aggs)))
	for _, a := range aggs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.startN))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(a.count))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.min))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.max))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.sum))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// windowAgg is the wire form of envdb.WindowAgg.
type windowAgg struct {
	startN int64
	count  int64
	min    float64
	max    float64
	sum    float64
}

const aggEntrySize = 8 * 5

func decodeAggs(r io.Reader) ([]windowAgg, *time.Location, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, frameErr("reading aggregate header: %v", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != aggMagic {
		return nil, nil, frameErr("bad aggregate magic %#x", m)
	}
	loc := zoneLocation(int32(binary.LittleEndian.Uint32(hdr[4:])))
	count := binary.LittleEndian.Uint32(hdr[8:])
	need, err := frameLen("aggregate", count, aggEntrySize, 4, maxAggWindows)
	if err != nil {
		return nil, nil, err
	}
	body, err := readBody(r, need)
	if err != nil {
		return nil, nil, frameErr("reading %d-window aggregate: %v", count, err)
	}
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, body[:len(body)-4])
	if got := binary.LittleEndian.Uint32(body[len(body)-4:]); got != sum {
		return nil, nil, frameErr("aggregate checksum mismatch: got %#x, computed %#x", got, sum)
	}
	out := make([]windowAgg, count)
	for i := range out {
		b := body[i*aggEntrySize:]
		out[i] = windowAgg{
			startN: int64(binary.LittleEndian.Uint64(b[0:])),
			count:  int64(binary.LittleEndian.Uint64(b[8:])),
			min:    math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
			max:    math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
			sum:    math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
		}
	}
	return out, loc, nil
}
