package telemetrynet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
	"mira/internal/units"
)

// startServer serves db's telemetry API on a loopback listener and returns
// a client for it.
func startServer(t *testing.T, db envdb.DB) (*httptest.Server, *Client) {
	t.Helper()
	ts := httptest.NewServer(NewServer(db, ServerOptions{}).Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ClientOptions{BatchSize: 64})
}

// netTrace builds ticks×racks records at coolant-monitor cadence, grouped
// tick-major so per-rack timestamps are strictly increasing (the tsdb
// Append contract).
func netTrace(ticks int) []sensors.Record {
	start := time.Date(2014, 5, 20, 0, 0, 0, 0, timeutil.Chicago)
	var recs []sensors.Record
	for i := 0; i < ticks; i++ {
		ts := start.Add(time.Duration(i) * timeutil.SampleInterval)
		for r := 0; r < topology.NumRacks; r++ {
			recs = append(recs, sensors.Record{
				Time:          ts,
				Rack:          topology.RackByIndex(r),
				DCTemperature: units.Fahrenheit(80 + float64(i%7)),
				DCHumidity:    units.RelativeHumidity(30 + float64(r%5)),
				Flow:          units.GPM(26 + 0.125*float64((i+r)%16)),
				InletTemp:     units.Fahrenheit(64 + 0.25*float64(i%8)),
				OutletTemp:    units.Fahrenheit(79 + 0.25*float64(r%8)),
				Power:         units.Watts(55000 + 100*float64(i%11)),
			})
		}
	}
	return recs
}

func fillStore(t *testing.T, db envdb.DB, recs []sensors.Record) {
	t.Helper()
	for _, r := range recs {
		if err := db.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIngestThenRead pushes a trace through the wire and checks every read
// surface of the client against the backing store directly.
func TestIngestThenRead(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	_, client := startServer(t, store)
	recs := netTrace(20)
	fillStore(t, client, recs) // through the wire
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(recs) {
		t.Fatalf("store has %d records after ingest, want %d", store.Len(), len(recs))
	}
	if client.Len() != len(recs) {
		t.Fatalf("client.Len() = %d, want %d", client.Len(), len(recs))
	}

	first, last, ok := client.Bounds()
	wf, wl, wok := store.Bounds()
	if ok != wok || !first.Equal(wf) || !last.Equal(wl) {
		t.Fatalf("client bounds (%v, %v, %v) != store bounds (%v, %v, %v)", first, last, ok, wf, wl, wok)
	}
	_, cOff := first.Zone()
	_, sOff := wf.Zone()
	if cOff != sOff {
		t.Fatalf("client zone offset %d != store %d", cOff, sOff)
	}

	rack := topology.RackByIndex(3)
	from, to := wf, wl.Add(time.Nanosecond)
	got, want := client.Query(rack, from, to), store.Query(rack, from, to)
	if len(got) != len(want) {
		t.Fatalf("Query: %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("Query record %d: %+v != %+v", i, got[i], want[i])
		}
	}

	gt, gv := client.Series(rack, sensors.MetricFlow, from, to)
	st, sv := store.Series(rack, sensors.MetricFlow, from, to)
	if len(gt) != len(st) {
		t.Fatalf("Series: %d points, want %d", len(gt), len(st))
	}
	for i := range st {
		if !gt[i].Equal(st[i]) || math.Float64bits(gv[i]) != math.Float64bits(sv[i]) {
			t.Fatalf("Series point %d: (%v, %v) != (%v, %v)", i, gt[i], gv[i], st[i], sv[i])
		}
	}
}

// TestIngestDedup pins the idempotency contract: replaying a frame with an
// already-applied (client, seq) token stores nothing and reports the
// duplicate, so a push retried after a lost response cannot double-append.
func TestIngestDedup(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	ts, _ := startServer(t, store)
	recs := netTrace(2)
	frame := encodeIngestFrame(nil, 7, 1, recs)

	post := func() IngestResult {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		var res IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	if res := post(); res.AcceptedRecords != len(recs) || res.DuplicateBatches != 0 {
		t.Fatalf("first push: %+v", res)
	}
	dupsBefore := metIngestDuplicates.Value()
	if res := post(); res.AcceptedBatches != 0 || res.DuplicateBatches != 1 {
		t.Fatalf("replayed push: %+v, want 0 accepted / 1 duplicate", res)
	}
	if got := metIngestDuplicates.Value() - dupsBefore; got != 1 {
		t.Fatalf("mira_net_ingest_duplicate_batches_total advanced by %d, want 1", got)
	}
	if store.Len() != len(recs) {
		t.Fatalf("store has %d records after replay, want %d (stored once)", store.Len(), len(recs))
	}
	// A frame with a lower sequence from the same client is also a replay.
	frame = encodeIngestFrame(nil, 7, 0, recs)
	if res := post(); res.DuplicateBatches != 1 || store.Len() != len(recs) {
		t.Fatalf("stale-seq push: %+v, store %d", res, store.Len())
	}
}

// TestIngestMalformed: hostile bodies get a 400 and a counted error, never
// a panic, and leave the store untouched.
func TestIngestMalformed(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	ts, _ := startServer(t, store)
	valid := encodeIngestFrame(nil, 1, 1, netTrace(1))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-2] ^= 0xFF

	cases := map[string][]byte{
		"garbage":   []byte("not a frame at all"),
		"truncated": valid[:len(valid)/2],
		"bad crc":   corrupt,
	}
	errsBefore := metIngestErrors.Value()
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if got := metIngestErrors.Value() - errsBefore; got != uint64(len(cases)) {
		t.Fatalf("mira_net_ingest_errors_total advanced by %d, want %d", got, len(cases))
	}
	if store.Len() != 0 {
		t.Fatalf("store has %d records after malformed pushes, want 0", store.Len())
	}

	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest: status %d, want 405", resp.StatusCode)
	}
}

// TestAggregatePushdown: remote aggregation is bit-identical to calling
// the store's pushdown in-process.
func TestAggregatePushdown(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	fillStore(t, store, netTrace(30))
	_, client := startServer(t, store)

	first, last, _ := store.Bounds()
	rack := topology.RackByIndex(17)
	window := time.Hour
	want, err := store.Aggregate(rack, sensors.MetricFlow, first, last.Add(time.Nanosecond), window)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Aggregate(rack, sensors.MetricFlow, first, last.Add(time.Nanosecond), window)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d windows, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := got[i], want[i]
		if !a.Start.Equal(b.Start) || a.Count != b.Count ||
			math.Float64bits(a.Min) != math.Float64bits(b.Min) ||
			math.Float64bits(a.Max) != math.Float64bits(b.Max) ||
			math.Float64bits(a.Sum) != math.Float64bits(b.Sum) {
			t.Fatalf("window %d: %+v != %+v", i, a, b)
		}
	}
}

// TestAggregateNotImplemented: a store without pushdown yields 501 on the
// wire and the client degrades to aggregating a fetched series locally.
func TestAggregateNotImplemented(t *testing.T) {
	store := envdb.NewStore() // no envdb.Aggregator
	fillStore(t, store, netTrace(4))
	ts, client := startServer(t, store)

	resp, err := http.Get(ts.URL + "/v1/aggregate?rack=0&from=0&to=1&metric=0&window=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("aggregate status %d, want 501", resp.StatusCode)
	}

	start := time.Date(2014, 5, 20, 0, 0, 0, 0, timeutil.Chicago)
	to := start.Add(4 * timeutil.SampleInterval)
	got, err := client.Aggregate(topology.RackByIndex(2), sensors.MetricFlow, start, to, timeutil.SampleInterval)
	if err != nil {
		t.Fatalf("client fallback: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("%d windows, want 4", len(got))
	}
	_, vals := store.Series(topology.RackByIndex(2), sensors.MetricFlow, start, to)
	for i, w := range got {
		if w.Count != 1 || w.Min != vals[i] || w.Max != vals[i] || w.Sum != vals[i] {
			t.Fatalf("window %d = %+v, want single sample %v", i, w, vals[i])
		}
	}
}

// TestScanOrders checks both streaming scan orders against the store's own
// iteration, tier bytes included.
func TestScanOrders(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	fillStore(t, store, netTrace(10))
	_, client := startServer(t, store)

	var wantRack, gotRack []sensors.Record
	store.EachRecord(func(r sensors.Record) { wantRack = append(wantRack, r) })
	client.EachRecord(func(r sensors.Record) { gotRack = append(gotRack, r) })
	if len(gotRack) != len(wantRack) {
		t.Fatalf("rack scan: %d records, want %d", len(gotRack), len(wantRack))
	}
	for i := range wantRack {
		if !sameRecord(gotRack[i], wantRack[i]) {
			t.Fatalf("rack scan record %d: %+v != %+v", i, gotRack[i], wantRack[i])
		}
	}

	type tiered struct {
		r    sensors.Record
		tier envdb.Tier
	}
	var wantTime, gotTime []tiered
	if err := store.EachRecordMergedTier(3, func(r sensors.Record, tier envdb.Tier) bool {
		wantTime = append(wantTime, tiered{r, tier})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := client.EachRecordMergedTier(3, func(r sensors.Record, tier envdb.Tier) bool {
		gotTime = append(gotTime, tiered{r, tier})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotTime) != len(wantTime) {
		t.Fatalf("time scan: %d records, want %d", len(gotTime), len(wantTime))
	}
	for i := range wantTime {
		if !sameRecord(gotTime[i].r, wantTime[i].r) || gotTime[i].tier != wantTime[i].tier {
			t.Fatalf("time scan record %d mismatch", i)
		}
	}

	// Early stop downloads a prefix without erroring.
	n := 0
	if err := client.EachRecordMerged(2, func(sensors.Record) bool { n++; return n < 7 }); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("early stop visited %d, want 7", n)
	}
}

func TestInfoEmptyStore(t *testing.T) {
	_, client := startServer(t, tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour}))
	info, err := client.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.HasData || info.Records != 0 || !info.Aggregator {
		t.Fatalf("empty-store info = %+v", info)
	}
	if _, _, ok := client.Bounds(); ok {
		t.Fatal("Bounds ok on empty store")
	}
}

// TestConcurrentIngestQuery is the tentpole's race check: many clients
// pushing disjoint racks while readers hammer info, range queries, and
// aggregate pushdown against the same live store. Run under -race by
// make check.
func TestConcurrentIngestQuery(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	ts, _ := startServer(t, store)

	const (
		pushers = 4
		ticks   = 60
	)
	start := time.Date(2014, 5, 20, 0, 0, 0, 0, timeutil.Chicago)
	var wg sync.WaitGroup
	errs := make(chan error, pushers+4)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// One pusher per rack group keeps per-rack append order intact
			// no matter how HTTP requests interleave.
			c := NewClient(ts.URL, ClientOptions{BatchSize: 48})
			for i := 0; i < ticks; i++ {
				tick := start.Add(time.Duration(i) * timeutil.SampleInterval)
				for r := p; r < topology.NumRacks; r += pushers {
					rec := sensors.Record{Time: tick, Rack: topology.RackByIndex(r),
						Flow: units.GPM(26 + float64(p)), Power: units.Watts(55000)}
					if err := c.Append(rec); err != nil {
						errs <- err
						return
					}
				}
			}
			if err := c.Flush(); err != nil {
				errs <- err
			}
		}(p)
	}
	readClient := NewClient(ts.URL, ClientOptions{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			to := start.Add(ticks * timeutil.SampleInterval)
			for i := 0; i < 40; i++ {
				if _, err := readClient.Info(); err != nil {
					errs <- fmt.Errorf("info: %w", err)
					return
				}
				rack := topology.RackByIndex((g*11 + i) % topology.NumRacks)
				if _, err := readClient.queryErr(context.Background(), rack, start, to); err != nil {
					errs <- fmt.Errorf("query: %w", err)
					return
				}
				if _, err := readClient.Aggregate(rack, sensors.MetricFlow, start, to, time.Hour); err != nil {
					errs <- fmt.Errorf("aggregate: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if want := ticks * topology.NumRacks; store.Len() != want {
		t.Fatalf("store has %d records after concurrent ingest, want %d", store.Len(), want)
	}
}
