// Package faultinject wraps an http.Handler with deterministic fault
// injection for exactly-once protocol tests. It models the failure shapes a
// retrying client must survive: requests dropped before the handler applies
// them, responses lost after the handler commits, whole requests delivered
// twice, and requests delayed past their peers. Faults are chosen by a Rule
// keyed on (method, path, attempt) so tests stay deterministic — no clocks,
// no randomness — and the transport counts what it injected so a test can
// assert its faults actually fired.
//
// Extracted from telemetrynet's lossy-transport ingest test so the campaign
// dispatcher's claim/complete exactly-once tests exercise the identical
// failure model.
package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// bodyBytes is a buffered request body that can be replayed.
type bodyBytes []byte

func snapshotBody(req *http.Request) bodyBytes {
	if req.Body == nil {
		return nil
	}
	b, _ := io.ReadAll(req.Body)
	req.Body.Close()
	return b
}

func (b bodyBytes) reader() io.ReadCloser {
	return io.NopCloser(bytes.NewReader(b))
}

// Action is the fate of one request.
type Action int

const (
	// Pass delivers the request normally.
	Pass Action = iota
	// Drop kills the request with a 503 before the handler runs: the
	// request is lost before application.
	Drop
	// Blackhole runs the handler for real, then aborts the connection:
	// the effect is applied but the response never reaches the client.
	Blackhole
	// Duplicate runs the handler twice for one client request (the first
	// response is discarded): a replayed delivery.
	Duplicate
	// Delay sleeps before delivering normally: a late request that may
	// arrive after the client has already retried it.
	Delay
)

// String names the action for test diagnostics.
func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Blackhole:
		return "blackhole"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	}
	return "unknown"
}

// Rule decides the fate of one request: method and path identify the
// endpoint, attempt is the 1-based count of requests this transport has seen
// for that (method, path) pair.
type Rule func(method, path string, attempt int64) Action

// EveryNth reproduces the classic lossy-transport schedule: every drop-th
// request is dropped before application and every blackhole-th commits but
// loses its response. A zero period disables that fault. Drop wins ties.
func EveryNth(drop, blackhole int64) Rule {
	return func(method, path string, attempt int64) Action {
		switch {
		case drop > 0 && attempt%drop == 0:
			return Drop
		case blackhole > 0 && attempt%blackhole == 0:
			return Blackhole
		}
		return Pass
	}
}

// Transport wraps Inner with fault injection. The zero Rule passes
// everything through.
type Transport struct {
	Inner http.Handler
	Rule  Rule
	// Sleep is the Delay action's pause (default 2 ms).
	Sleep time.Duration

	mu       sync.Mutex
	attempts map[string]int64
	injected map[Action]int64
}

// next bumps the (method, path) attempt counter and picks the action.
func (t *Transport) next(method, path string) Action {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attempts == nil {
		t.attempts = make(map[string]int64)
		t.injected = make(map[Action]int64)
	}
	key := method + " " + path
	t.attempts[key]++
	act := Pass
	if t.Rule != nil {
		act = t.Rule(method, path, t.attempts[key])
	}
	t.injected[act]++
	return act
}

// Injected reports how many requests received the given action, so a test
// can assert its fault schedule actually fired.
func (t *Transport) Injected(a Action) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected[a]
}

// Attempts reports how many requests the transport has seen for one
// (method, path) pair.
func (t *Transport) Attempts(method, path string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts[method+" "+path]
}

func (t *Transport) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch t.next(req.Method, req.URL.Path) {
	case Drop:
		http.Error(w, "faultinject: injected outage", http.StatusServiceUnavailable)
	case Blackhole:
		// Apply for real, then drop the response on the floor. ErrAbortHandler
		// makes net/http sever the connection so the client sees a transport
		// error, exactly as if the response packet was lost.
		rec := httptest.NewRecorder()
		t.Inner.ServeHTTP(rec, req)
		panic(http.ErrAbortHandler)
	case Duplicate:
		// Deliver the same request twice; the client sees the second
		// response. Bodies are replayable only if buffered, so duplicate
		// delivery snapshots the body first.
		body := snapshotBody(req)
		first := req.Clone(req.Context())
		first.Body = body.reader()
		rec := httptest.NewRecorder()
		t.Inner.ServeHTTP(rec, first)
		second := req.Clone(req.Context())
		second.Body = body.reader()
		t.Inner.ServeHTTP(w, second)
	case Delay:
		d := t.Sleep
		if d <= 0 {
			d = 2 * time.Millisecond
		}
		time.Sleep(d)
		t.Inner.ServeHTTP(w, req)
	default:
		t.Inner.ServeHTTP(w, req)
	}
}
