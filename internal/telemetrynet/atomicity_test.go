package telemetrynet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/telemetrynet/faultinject"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
)

// postFrame POSTs one encoded ingest frame and returns the response status
// plus the decoded result (valid only on 200).
func postFrame(t *testing.T, url string, frame []byte) (int, IngestResult) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res IngestResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, res
}

// storeDump flattens a store bit-for-bit comparably.
func storeDump(db *tsdb.Store) []string {
	var out []string
	db.EachRecord(func(r sensors.Record) {
		line := fmt.Sprintf("%d %v", r.Time.UnixNano(), r.Rack)
		for _, m := range sensors.AllMetrics() {
			line += fmt.Sprintf(" %x", math.Float64bits(r.Value(m)))
		}
		out = append(out, line)
	})
	return out
}

func sameDump(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIngestRejectedBatchAtomic is the ingest-atomicity regression pin: a
// batch the store rejects mid-frame (out-of-order telemetry) gets a 409,
// leaves the store byte-identical — no partial prefix — and leaves the
// (client, seq) dedup token unconsumed, so the corrected batch retried
// under the same sequence is accepted in full.
func TestIngestRejectedBatchAtomic(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	ts, _ := startServer(t, store)

	seed := netTrace(2)
	if code, res := postFrame(t, ts.URL, encodeIngestFrame(nil, 9, 1, seed)); code != http.StatusOK || res.AcceptedRecords != len(seed) {
		t.Fatalf("seed push: status %d, %+v", code, res)
	}
	before := storeDump(store)

	// Tick 2 with one record rewound before the stored watermark: the kind
	// of client data error that used to leave a partial prefix behind.
	next := netTrace(3)[2*topology.NumRacks:]
	bad := append([]sensors.Record(nil), next...)
	bad[30].Time = bad[30].Time.Add(-time.Hour)
	errsBefore := metIngestErrors.Value()
	if code, _ := postFrame(t, ts.URL, encodeIngestFrame(nil, 9, 2, bad)); code != http.StatusConflict {
		t.Fatalf("bad batch status = %d, want 409", code)
	}
	if got := metIngestErrors.Value() - errsBefore; got != 1 {
		t.Fatalf("mira_net_ingest_errors_total advanced by %d, want 1", got)
	}
	if !sameDump(storeDump(store), before) {
		t.Fatal("store changed across a rejected batch; want byte-identical")
	}

	// Same client, same sequence, corrected data: the token was not
	// consumed by the failure, so this must be applied, not deduplicated.
	if code, res := postFrame(t, ts.URL, encodeIngestFrame(nil, 9, 2, next)); code != http.StatusOK ||
		res.AcceptedBatches != 1 || res.DuplicateBatches != 0 {
		t.Fatalf("corrected retry: status %d, %+v; want 1 accepted, 0 duplicate", code, res)
	}
	if want := len(seed) + len(next); store.Len() != want {
		t.Fatalf("store has %d records, want %d", store.Len(), want)
	}
	// And now the token is consumed: a replay is a duplicate.
	if code, res := postFrame(t, ts.URL, encodeIngestFrame(nil, 9, 2, next)); code != http.StatusOK || res.DuplicateBatches != 1 {
		t.Fatalf("replay after commit: status %d, %+v; want 1 duplicate", code, res)
	}
}

// TestDedupEviction pins the LRU bound on the dedup table: the gauge tracks
// the live entry count against the cap, eviction drops the
// least-recently-active client, and an evicted client's genuinely stale
// replay is still rejected — by the store's own per-rack time-order check —
// rather than silently re-admitted under a fresh watermark.
func TestDedupEviction(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	srv := NewServer(store, ServerOptions{DedupClients: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ticks := netTrace(4)
	tick := func(i int) []sensors.Record { return ticks[i*topology.NumRacks : (i+1)*topology.NumRacks] }

	// Client 1 pushes ticks 0 and 1; clients 2 and 3 push later ticks,
	// evicting client 1 from the two-entry table.
	for i, push := range []struct {
		client, seq uint64
		recs        []sensors.Record
	}{
		{1, 1, tick(0)}, {1, 2, tick(1)}, {2, 1, tick(2)}, {3, 1, tick(3)},
	} {
		if code, res := postFrame(t, ts.URL, encodeIngestFrame(nil, push.client, push.seq, push.recs)); code != http.StatusOK || res.AcceptedBatches != 1 {
			t.Fatalf("push %d: status %d, %+v", i, code, res)
		}
	}
	if got := metDedupClients.Value(); got != 2 {
		t.Fatalf("mira_net_dedup_clients = %v, want 2 (LRU cap)", got)
	}
	srv.mu.Lock()
	_, resident := srv.clients[1]
	srv.mu.Unlock()
	if resident {
		t.Fatal("client 1 still in the dedup table; want it evicted as least recently active")
	}

	// Evicted client 1 replays its first batch under a reused sequence.
	// The server no longer remembers the watermark, but the store's
	// time-order check rejects the stale telemetry: 409, store unchanged.
	before := storeDump(store)
	if code, _ := postFrame(t, ts.URL, encodeIngestFrame(nil, 1, 1, tick(0))); code != http.StatusConflict {
		t.Fatalf("stale replay after eviction: status %d, want 409", code)
	}
	if !sameDump(storeDump(store), before) {
		t.Fatal("store changed on a stale replay after eviction")
	}

	// Fresh telemetry from the returning client is accepted normally.
	fresh := netTrace(5)[4*topology.NumRacks:]
	if code, res := postFrame(t, ts.URL, encodeIngestFrame(nil, 1, 2, fresh)); code != http.StatusOK || res.AcceptedBatches != 1 {
		t.Fatalf("fresh push after eviction: status %d, %+v", code, res)
	}
}

// TestExactlyOnceUnderLossyTransport is the end-to-end idempotency pin:
// several clients push distinct batch streams concurrently through a
// faultinject.Transport that drops requests before application (503 every
// third attempt) and responses after application (connection killed every
// seventh), every failure is blindly retried under the same (client, seq)
// token, and the store ends up with exactly the union of the unique
// batches — nothing lost, nothing doubled.
func TestExactlyOnceUnderLossyTransport(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	flaky := &faultinject.Transport{
		Inner: NewServer(store, ServerOptions{}).Handler(),
		Rule:  faultinject.EveryNth(3, 7),
	}
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	const clients = 8
	const batches = 12
	start := time.Date(2014, 5, 20, 0, 0, 0, 0, timeutil.Chicago)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each client owns six racks, so the union is checkable per rack.
			racks := make([]topology.RackID, 0, 6)
			for r := c * 6; r < (c+1)*6; r++ {
				racks = append(racks, topology.RackByIndex(r))
			}
			for seq := 1; seq <= batches; seq++ {
				recs := make([]sensors.Record, 0, len(racks))
				ti := start.Add(time.Duration(seq) * timeutil.SampleInterval)
				for _, rack := range racks {
					recs = append(recs, netTrace(1)[0]) // template values
					recs[len(recs)-1].Time = ti
					recs[len(recs)-1].Rack = rack
				}
				frame := encodeIngestFrame(nil, uint64(c+1), uint64(seq), recs)
				committed := false
				for attempt := 0; attempt < 50 && !committed; attempt++ {
					resp, err := http.Post(ts.URL+"/v1/ingest", "application/octet-stream", bytes.NewReader(frame))
					if err != nil {
						continue // transport failure: blind retry
					}
					code := resp.StatusCode
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if code == http.StatusOK {
						committed = true // accepted now or deduplicated earlier
					}
				}
				if !committed {
					errs[c] = fmt.Errorf("client %d seq %d never committed", c, seq)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if flaky.Injected(faultinject.Drop) == 0 || flaky.Injected(faultinject.Blackhole) == 0 {
		t.Fatalf("fault schedule never fired (drop=%d blackhole=%d); test proved nothing",
			flaky.Injected(faultinject.Drop), flaky.Injected(faultinject.Blackhole))
	}
	if want := clients * batches * 6; store.Len() != want {
		t.Fatalf("store has %d records, want exactly %d (union of unique batches)", store.Len(), want)
	}
	// Per rack: exactly one record per batch sequence, strictly once.
	for c := 0; c < clients; c++ {
		for r := c * 6; r < (c+1)*6; r++ {
			got := store.Query(topology.RackByIndex(r), start, start.Add(time.Duration(batches+1)*timeutil.SampleInterval))
			if len(got) != batches {
				t.Fatalf("rack %d holds %d records, want %d", r, len(got), batches)
			}
			for i := 1; i < len(got); i++ {
				if !got[i].Time.After(got[i-1].Time) {
					t.Fatalf("rack %d: duplicate or disordered records at %v", r, got[i].Time)
				}
			}
		}
	}
}
