package telemetrynet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/topology"
	"mira/internal/tsdb"
)

// waitTrace polls the default registry's ring until the trace's merged
// fragments contain every wanted span name; distributed finalization means
// the last fragment can land just after the client-side call returns.
func waitTrace(t *testing.T, id obs.TraceID, names ...string) []obs.SpanRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var spans []obs.SpanRecord
		for _, frag := range obs.TraceByID(id) {
			spans = append(spans, frag.Spans...)
		}
		have := make(map[string]bool, len(spans))
		for _, sp := range spans {
			have[sp.Name] = true
		}
		missing := false
		for _, n := range names {
			if !have[n] {
				missing = true
			}
		}
		if !missing {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed: have %v, want %v", id, have, names)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func spanByName(t *testing.T, spans []obs.SpanRecord, name string) obs.SpanRecord {
	t.Helper()
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("span %q not in trace", name)
	return obs.SpanRecord{}
}

// TestEndToEndTracePropagation pins the tentpole: one remote merged scan
// produces a single coherent trace — client RPC span → HTTP → server
// handler span → tsdb merged-scan span → per-block worker spans — visible
// at /debug/traces on both ends (one ring here, since client and server
// share the process).
func TestEndToEndTracePropagation(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	fillStore(t, store, netTrace(8))
	_, client := startServer(t, store)

	ctx, root := obs.Span(context.Background(), "test.e2e")
	rows := 0
	if err := client.EachRecordMergedTierCtx(ctx, 3, func(r sensors.Record, tier envdb.Tier) bool {
		rows++
		return true
	}); err != nil {
		t.Fatalf("remote merged scan: %v", err)
	}
	root.End()
	if rows != 8*topology.NumRacks {
		t.Fatalf("scanned %d rows, want %d", rows, 8*topology.NumRacks)
	}

	id := root.Context().Trace
	spans := waitTrace(t, id,
		"test.e2e", "net.client.scan", "net.scan", "tsdb.scan_merged", "tsdb.scan_block")

	clientScan := spanByName(t, spans, "net.client.scan")
	handler := spanByName(t, spans, "net.scan")
	merged := spanByName(t, spans, "tsdb.scan_merged")
	if clientScan.Parent != spanByName(t, spans, "test.e2e").ID {
		t.Fatalf("net.client.scan parent %s, want root %s", clientScan.Parent, root.Context().Span)
	}
	if handler.Parent != clientScan.ID {
		t.Fatalf("net.scan parent %s: trace context did not cross the wire (want %s)",
			handler.Parent, clientScan.ID)
	}
	if merged.Parent != handler.ID {
		t.Fatalf("tsdb.scan_merged parent %s, want handler span %s", merged.Parent, handler.ID)
	}
	blocks := 0
	for _, sp := range spans {
		if sp.Name == "tsdb.scan_block" {
			blocks++
			if sp.Parent != merged.ID {
				t.Fatalf("tsdb.scan_block parent %s, want scan span %s (worker ctx not threaded)",
					sp.Parent, merged.ID)
			}
		}
	}
	if blocks == 0 {
		t.Fatal("no tsdb.scan_block worker spans in trace")
	}

	// The same trace renders as one tree at /debug/traces/<id>.
	rec := httptest.NewRecorder()
	obs.Default().HTTPHandler().ServeHTTP(rec,
		httptest.NewRequest("GET", "/debug/traces/"+id.String(), nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/traces/%s: status %d", id, rec.Code)
	}
	for _, want := range []string{"test.e2e", "net.scan", "tsdb.scan_merged"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("/debug/traces tree missing %q:\n%s", want, rec.Body.String())
		}
	}
}

// TestMalformedTraceHeaderIgnored pins the hostile-input contract: any
// malformed X-Mira-Trace value is ignored — the request succeeds and the
// server starts a fresh root — while a well-formed one parents the
// handler span to the remote caller.
func TestMalformedTraceHeaderIgnored(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	fillStore(t, store, netTrace(2))
	h := NewServer(store, ServerOptions{}).Handler()

	for _, v := range []string{
		"",
		"garbage",
		"deadbeefcafef00d/0123456789abcdef",    // truncated
		"deadbeefcafef00d/0123456789abcdef/12", // oversized
		"deadbeefcafef00d/0123456789abcdef/x",  // bad flag
		"zzzzzzzzzzzzzzzz/0123456789abcdef/1",  // bad hex
		"0000000000000000/0000000000000000/1",  // zero IDs
		strings.Repeat("A", 4096),              // oversized noise
		"deadbeefcafef00d/0123456789abcdef/1\x00",
	} {
		req := httptest.NewRequest("GET", "/v1/info", nil)
		req.Header.Set(obs.TraceHeader, v)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("header %q: status %d, want 200 (malformed headers must be ignored)", v, rec.Code)
		}
	}

	// Control: a valid header must parent the handler span remotely.
	remote := obs.SpanContext{Trace: 0xfeedfacecafebeef, Span: 0x1122334455667788, Sampled: true}
	req := httptest.NewRequest("GET", "/v1/info", nil)
	req.Header.Set(obs.TraceHeader, remote.HeaderValue())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("valid header: status %d", rec.Code)
	}
	spans := waitTrace(t, remote.Trace, "net.info")
	if sp := spanByName(t, spans, "net.info"); sp.Parent != remote.Span {
		t.Fatalf("net.info parent %s, want remote span %s", sp.Parent, remote.Span)
	}
}

// syncBuf is an io.Writer safe to read while the server's slow-query
// goroutine may still be writing.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLogAlwaysRecords pins the introspection contract: with a
// threshold of 1ns every request is slow, and each one must produce a
// JSON line carrying the endpoint, a parseable trace ID, the query shape,
// and scan statistics.
func TestSlowQueryLogAlwaysRecords(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	recs := netTrace(4)
	fillStore(t, store, recs)
	var buf syncBuf
	ts := httptest.NewServer(NewServer(store, ServerOptions{
		SlowQuery: time.Nanosecond,
		SlowLog:   &buf,
	}).Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ClientOptions{})

	rack := topology.RackByIndex(7)
	from, to := recs[0].Time, recs[len(recs)-1].Time.Add(time.Second)
	if got := client.Query(rack, from, to); len(got) != 4 {
		t.Fatalf("query returned %d records, want 4", len(got))
	}

	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), "\n") {
		if time.Now().After(deadline) {
			t.Fatal("no slow-query line after 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	line := strings.SplitN(buf.String(), "\n", 2)[0]
	var got struct {
		Trace    string            `json:"trace"`
		Endpoint string            `json:"endpoint"`
		Seconds  float64           `json:"seconds"`
		Shape    map[string]string `json:"shape"`
	}
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
	}
	if got.Endpoint != "query" {
		t.Fatalf("endpoint %q, want query", got.Endpoint)
	}
	if len(got.Trace) != 16 {
		t.Fatalf("trace %q is not a 16-hex ID", got.Trace)
	}
	if got.Shape["rack"] != rack.String() {
		t.Fatalf("shape rack %q, want %q (full shape: %v)", got.Shape["rack"], rack, got.Shape)
	}
	if got.Shape["from"] == "" || got.Shape["rows"] != "4" {
		t.Fatalf("shape missing range/rows: %v", got.Shape)
	}
	if got.Seconds <= 0 {
		t.Fatalf("seconds %v, want > 0", got.Seconds)
	}
}

// FuzzTraceHeaderHandling drives arbitrary X-Mira-Trace bytes through a
// live handler beside the wire fuzz targets: whatever the header holds,
// the request must succeed — extraction degrades to a fresh root, never
// an error or panic.
func FuzzTraceHeaderHandling(f *testing.F) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	for _, r := range wireTrace(4) {
		if err := store.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	h := NewServer(store, ServerOptions{}).Handler()
	f.Add("deadbeefcafef00d/0123456789abcdef/1")
	f.Add("deadbeefcafef00d/0123456789abcdef/0")
	f.Add("")
	f.Add("deadbeefcafef00d/0123456789abcdef")
	f.Add("deadbeefcafef00d/0123456789abcdef/12")
	f.Add("0000000000000000/0000000000000000/1")
	f.Add(strings.Repeat("/", 35))
	f.Add(strings.Repeat("f", 64))
	f.Fuzz(func(t *testing.T, v string) {
		req := httptest.NewRequest("GET", "/v1/info", nil)
		req.Header.Set(obs.TraceHeader, v)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("header %q: status %d", v, rec.Code)
		}
	})
}
