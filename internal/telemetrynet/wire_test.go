package telemetrynet

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

// wireTrace builds n deterministic records across racks with every channel
// populated (including awkward float values) in the Chicago fixed zone.
func wireTrace(n int) []sensors.Record {
	rng := rand.New(rand.NewSource(7))
	start := time.Date(2014, 5, 20, 0, 0, 0, 0, timeutil.Chicago)
	recs := make([]sensors.Record, n)
	for i := range recs {
		recs[i] = sensors.Record{
			Time:          start.Add(time.Duration(i) * timeutil.SampleInterval),
			Rack:          topology.RackByIndex(i % topology.NumRacks),
			DCTemperature: units.Fahrenheit(80 + rng.Float64()),
			DCHumidity:    units.RelativeHumidity(30 + rng.Float64()),
			Flow:          units.GPM(26 + rng.Float64()),
			InletTemp:     units.Fahrenheit(64 + rng.Float64()),
			OutletTemp:    units.Fahrenheit(79 + rng.Float64()),
			Power:         units.Watts(55000 + 1000*rng.Float64()),
		}
	}
	return recs
}

// sameRecord compares two records for wire equality: identical instants
// (and zone offsets, which calendar bucketing depends on) and identical
// float64 bit patterns in every channel.
func sameRecord(a, b sensors.Record) bool {
	if !a.Time.Equal(b.Time) || a.Rack != b.Rack {
		return false
	}
	_, offA := a.Time.Zone()
	_, offB := b.Time.Zone()
	if offA != offB {
		return false
	}
	for m := sensors.Metric(0); m < sensors.NumMetrics; m++ {
		if math.Float64bits(a.Value(m)) != math.Float64bits(b.Value(m)) {
			return false
		}
	}
	return true
}

func TestIngestFrameRoundTrip(t *testing.T) {
	recs := wireTrace(97)
	frame := encodeIngestFrame(nil, 0xDEAD, 42, recs)
	if want := ingestHeaderSize + len(recs)*recordSize + 4; len(frame) != want {
		t.Fatalf("frame size = %d, want %d", len(frame), want)
	}
	fr, err := decodeIngestFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if fr.ClientID != 0xDEAD || fr.Seq != 42 {
		t.Fatalf("token = (%#x, %d), want (0xdead, 42)", fr.ClientID, fr.Seq)
	}
	if len(fr.Records) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(fr.Records), len(recs))
	}
	for i := range recs {
		if !sameRecord(recs[i], fr.Records[i]) {
			t.Fatalf("record %d: got %+v, want %+v", i, fr.Records[i], recs[i])
		}
	}

	// Two frames back to back decode in sequence, then a clean io.EOF.
	double := append(append([]byte(nil), frame...), encodeIngestFrame(nil, 1, 2, recs[:3])...)
	r := bytes.NewReader(double)
	for i, wantSeq := range []uint64{42, 2} {
		fr, err := decodeIngestFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Seq != wantSeq {
			t.Fatalf("frame %d seq = %d, want %d", i, fr.Seq, wantSeq)
		}
	}
	if _, err := decodeIngestFrame(r); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestIngestFrameCorruption: any single corrupted byte, and any truncation,
// must surface as a wrapped ErrFrame — never a panic, never silent success.
func TestIngestFrameCorruption(t *testing.T) {
	frame := encodeIngestFrame(nil, 9, 1, wireTrace(5))
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := decodeIngestFrame(bytes.NewReader(bad)); !errors.Is(err, ErrFrame) {
			t.Fatalf("flipped byte %d: err = %v, want ErrFrame", i, err)
		}
	}
	for cut := 1; cut < len(frame); cut++ {
		if _, err := decodeIngestFrame(bytes.NewReader(frame[:cut])); !errors.Is(err, ErrFrame) {
			t.Fatalf("truncated at %d: err = %v, want ErrFrame", cut, err)
		}
	}
	if _, err := decodeIngestFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestChunkStreamRoundTrip(t *testing.T) {
	recs := wireTrace(113)
	for _, tiered := range []bool{false, true} {
		var buf bytes.Buffer
		cw := newChunkWriter(&buf, tiered, false, zoneOffset(recs[0].Time))
		for i, r := range recs {
			if err := cw.add(r, byte(i%2)); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.close(); err != nil {
			t.Fatal(err)
		}
		var got []sensors.Record
		var tiers []byte
		if err := readChunkStream(bytes.NewReader(buf.Bytes()), func(r sensors.Record, tier byte) bool {
			got = append(got, r)
			tiers = append(tiers, tier)
			return true
		}); err != nil {
			t.Fatalf("tiered=%v: %v", tiered, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("tiered=%v: decoded %d records, want %d", tiered, len(got), len(recs))
		}
		for i := range recs {
			if !sameRecord(recs[i], got[i]) {
				t.Fatalf("tiered=%v record %d mismatch", tiered, i)
			}
			wantTier := byte(0)
			if tiered {
				wantTier = byte(i % 2)
			}
			if tiers[i] != wantTier {
				t.Fatalf("tiered=%v record %d tier = %d, want %d", tiered, i, tiers[i], wantTier)
			}
		}

		// Truncation anywhere — including a lost terminator — is detected.
		stream := buf.Bytes()
		for _, cut := range []int{0, 1, len(stream) / 2, len(stream) - 8, len(stream) - 1} {
			err := readChunkStream(bytes.NewReader(stream[:cut]), func(sensors.Record, byte) bool { return true })
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("tiered=%v truncated at %d: err = %v, want ErrFrame", tiered, cut, err)
			}
		}
	}
}

func TestChunkStreamEarlyStop(t *testing.T) {
	recs := wireTrace(20)
	var buf bytes.Buffer
	cw := newChunkWriter(&buf, false, false, 0)
	for _, r := range recs {
		if err := cw.add(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.close(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	if err := readChunkStream(bytes.NewReader(buf.Bytes()), func(sensors.Record, byte) bool {
		seen++
		return seen < 5
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatalf("visited %d records, want 5", seen)
	}
}

func TestEmptyChunkStream(t *testing.T) {
	var buf bytes.Buffer
	if err := newChunkWriter(&buf, false, false, -21600).close(); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := readChunkStream(bytes.NewReader(buf.Bytes()), func(sensors.Record, byte) bool {
		calls++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("empty stream visited %d records", calls)
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	times := make([]time.Time, 50)
	vals := make([]float64, 50)
	start := time.Date(2014, 5, 20, 0, 0, 0, 0, timeutil.Chicago)
	for i := range times {
		times[i] = start.Add(time.Duration(i) * time.Minute)
		vals[i] = float64(i) * 1.25
	}
	vals[7] = math.NaN() // NaN must survive the bit-pattern transport
	var buf bytes.Buffer
	if err := encodeSeries(&buf, zoneOffset(start), times, vals); err != nil {
		t.Fatal(err)
	}
	gotT, gotV, err := decodeSeries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotT) != len(times) || len(gotV) != len(vals) {
		t.Fatalf("decoded %d/%d points, want %d", len(gotT), len(gotV), len(times))
	}
	for i := range times {
		if !gotT[i].Equal(times[i]) {
			t.Fatalf("time %d = %v, want %v", i, gotT[i], times[i])
		}
		if _, off := gotT[i].Zone(); off != -21600 {
			t.Fatalf("time %d zone offset = %d, want -21600", i, off)
		}
		if math.Float64bits(gotV[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d = %v, want %v (bit-exact)", i, gotV[i], vals[i])
		}
	}

	raw := buf.Bytes()
	raw[len(raw)-6] ^= 1
	if _, _, err := decodeSeries(bytes.NewReader(raw)); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupted series: err = %v, want ErrFrame", err)
	}
}

func TestAggsRoundTrip(t *testing.T) {
	aggs := []windowAgg{
		{startN: 1400000000000000000, count: 288, min: 26.001, max: 27.5, sum: 7719.25},
		{startN: 1400086400000000000, count: 0, min: math.NaN(), max: math.NaN(), sum: 0},
	}
	var buf bytes.Buffer
	if err := encodeAggs(&buf, -21600, aggs); err != nil {
		t.Fatal(err)
	}
	got, loc, err := decodeAggs(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, off := time.Unix(0, 0).In(loc).Zone(); off != -21600 {
		t.Fatalf("zone offset = %d, want -21600", off)
	}
	if len(got) != len(aggs) {
		t.Fatalf("decoded %d windows, want %d", len(got), len(aggs))
	}
	for i := range aggs {
		a, b := aggs[i], got[i]
		if a.startN != b.startN || a.count != b.count ||
			math.Float64bits(a.min) != math.Float64bits(b.min) ||
			math.Float64bits(a.max) != math.Float64bits(b.max) ||
			math.Float64bits(a.sum) != math.Float64bits(b.sum) {
			t.Fatalf("window %d = %+v, want %+v", i, b, a)
		}
	}

	raw := buf.Bytes()
	raw[20] ^= 0x10
	if _, _, err := decodeAggs(bytes.NewReader(raw)); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupted aggregate: err = %v, want ErrFrame", err)
	}
}
