package telemetrynet

// Observability instrumentation of the network layer, under the same
// mira_[a-z_]+ naming gate (scripts/lint_metrics.go) as every other
// subsystem. Server metrics count what crossed the wire and how long each
// endpoint took; client metrics count pushes, retries, and dedup-confirmed
// replays so a flaky link is visible from either end.

import "mira/internal/obs"

var (
	// Server side.
	metIngestBatches = obs.NewCounter("mira_net_ingest_batches_total",
		"ingest frames accepted and applied to the store")
	metIngestRecords = obs.NewCounter("mira_net_ingest_records_total",
		"records accepted over the wire across all ingest frames")
	metIngestDuplicates = obs.NewCounter("mira_net_ingest_duplicate_batches_total",
		"ingest frames dropped as replays of an already-applied batch token")
	metIngestErrors = obs.NewCounter("mira_net_ingest_errors_total",
		"ingest requests rejected: malformed frames, bad tokens, or append failures")
	metRequestDur = obs.NewHistogramVec("mira_net_request_duration_seconds",
		"latency of the telemetry API, labeled by endpoint", "endpoint", nil)
	metScanRecordsSent = obs.NewCounter("mira_net_scan_records_sent_total",
		"records streamed to remote scan and query clients")
	metSlowQueries = obs.NewCounterVec("mira_net_slow_queries_total",
		"requests at or over the configured slow-query threshold, labeled by endpoint", "endpoint")
	metDedupClients = obs.NewGauge("mira_net_dedup_clients",
		"client entries in the LRU-bounded ingest dedup table")

	// Client side.
	metClientPushBatches = obs.NewCounter("mira_net_client_push_batches_total",
		"ingest frames pushed by telemetrynet clients in this process")
	metClientPushRecords = obs.NewCounter("mira_net_client_push_records_total",
		"records pushed by telemetrynet clients in this process")
	metClientRetries = obs.NewCounter("mira_net_client_push_retries_total",
		"push attempts repeated after a transport failure or 5xx response")
	metClientErrors = obs.NewCounter("mira_net_client_errors_total",
		"client requests that failed after exhausting retries")
)
