package telemetrynet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"mira/internal/sensors"
	"mira/internal/topology"
)

// FuzzDecodeIngestFrame pins the wire decoders' corruption contract:
// arbitrary bytes — hostile, bit-flipped, or truncated — decode to a valid
// value, a clean io.EOF, or a wrapped ErrFrame. Never a panic, and never a
// runaway allocation (the count/length caps bound every make). The chunk-
// stream reader is exercised on the same corpus since both parsers face
// the network.
func FuzzDecodeIngestFrame(f *testing.F) {
	valid := encodeIngestFrame(nil, 77, 3, wireTrace(4))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x80
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("MTN1 but not really a frame"))
	var chunked bytes.Buffer
	cw := newChunkWriter(&chunked, true, false, -21600)
	for _, r := range wireTrace(6) {
		cw.add(r, 1)
	}
	cw.close()
	f.Add(chunked.Bytes())

	// Overflow-adjacent headers: counts at and beyond every cap, including a
	// count whose count*recordSize product wraps 32-bit arithmetic to a
	// small, internally consistent payload length. frameLen must reject all
	// of these on the count itself, before any length math can wrap.
	hugeCount := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeCount[24:], 0xFFFFFFFF)
	f.Add(hugeCount)
	wrapped := append([]byte(nil), valid...)
	c := uint32(0xFFFFFFFF)
	binary.LittleEndian.PutUint32(wrapped[24:], c)
	binary.LittleEndian.PutUint32(wrapped[4:], c*uint32(recordSize)) // 32-bit wrapped product
	f.Add(wrapped)
	offByOne := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(offByOne[24:], maxFrameRecords+1)
	binary.LittleEndian.PutUint32(offByOne[4:], (maxFrameRecords+1)*uint32(recordSize))
	f.Add(offByOne)
	hugeChunk := append([]byte(nil), chunked.Bytes()[:12]...)
	hugeChunk = binary.LittleEndian.AppendUint32(hugeChunk, 0xFFFFFFFF)
	f.Add(hugeChunk)

	// Fleet-era v2 frames: wide rack codes force the "MTN2" encoding. The
	// corpus gets a whole valid v2 frame, a frame carrying the widest
	// encodable rack index, a v2 header truncated mid-record, and a mixed
	// stream — v1 frame then v2 frame back to back, the shape a server
	// sees when an upgraded client follows a legacy one on a connection.
	fleetRecs := wireTrace(4)
	for i := range fleetRecs {
		fleetRecs[i].Rack.Hall = 1 + i%3
	}
	validV2 := encodeIngestFrame(nil, 78, 4, fleetRecs)
	f.Add(validV2)
	wideRecs := wireTrace(1)[:1]
	wideRecs[0].Rack = topology.RackID{Row: topology.Rows - 1, Col: topology.ColsPerRow - 1, Hall: topology.MaxHalls - 1}
	f.Add(encodeIngestFrame(nil, 79, 5, wideRecs))
	f.Add(validV2[:ingestHeaderSize+recordSizeV2/2])
	f.Add(append(append([]byte(nil), valid...), validV2...))
	flippedV2 := append([]byte(nil), validV2...)
	flippedV2[ingestHeaderSize+2] ^= 0xFF // rack-code byte of the first record
	f.Add(flippedV2)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			_, err := decodeIngestFrame(r)
			if err == nil {
				continue
			}
			if err != io.EOF && !errors.Is(err, ErrFrame) {
				t.Fatalf("decodeIngestFrame: %v is neither io.EOF nor ErrFrame", err)
			}
			break
		}
		err := readChunkStream(bytes.NewReader(data), func(sensors.Record, byte) bool { return true })
		if err != nil && !errors.Is(err, ErrFrame) {
			t.Fatalf("readChunkStream: %v is not ErrFrame", err)
		}
		if _, _, err := decodeSeries(bytes.NewReader(data)); err != nil && !errors.Is(err, ErrFrame) {
			t.Fatalf("decodeSeries: %v is not ErrFrame", err)
		}
		if _, _, err := decodeAggs(bytes.NewReader(data)); err != nil && !errors.Is(err, ErrFrame) {
			t.Fatalf("decodeAggs: %v is not ErrFrame", err)
		}
	})
}
