package telemetrynet

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mira/internal/analysis"
	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
	"mira/internal/units"
)

// fleetAnalysisStore simulates half a day of telemetry for a 4-hall,
// 192-rack fleet, ingested frame-at-a-time through the batched path — the
// shape a fleet-sized miramon -serve store holds.
func fleetAnalysisStore(t *testing.T, fleet topology.Fleet) *tsdb.Store {
	t.Helper()
	db := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour, Fleet: fleet})
	rng := rand.New(rand.NewSource(31))
	start := time.Date(2015, 3, 10, 0, 0, 0, 0, timeutil.Chicago)
	for i := 0; i < 144; i++ {
		ts := start.Add(time.Duration(i) * timeutil.SampleInterval)
		frame := make([]sensors.Record, 0, fleet.NumRacks())
		for g := 0; g < fleet.NumRacks(); g++ {
			frame = append(frame, sensors.Record{
				Time:          ts,
				Rack:          fleet.RackAt(g),
				Flow:          units.GPM(26 + rng.Float64()),
				InletTemp:     units.Fahrenheit(64 + rng.Float64()),
				OutletTemp:    units.Fahrenheit(79 + rng.Float64()),
				DCTemperature: units.Fahrenheit(80 + 2*rng.Float64()),
				DCHumidity:    units.RelativeHumidity(30 + 4*rng.Float64()),
				Power:         units.Watts(55000 + 100*rng.Float64()),
			})
		}
		if err := db.AppendTick(frame); err != nil {
			t.Fatal(err)
		}
	}
	db.SealAll()
	return db
}

// TestRemoteFleetRoundTripBitIdentical is the fleet acceptance pin: a
// 4-hall, 192-rack store analyzed hall by hall through the wire — both the
// Fig. 7/9 aggregation pushdowns and the full streaming replay — produces
// figures bit-identical to the same analysis run in-process against the
// backing store.
func TestRemoteFleetRoundTripBitIdentical(t *testing.T) {
	fleet := topology.Fleet{Halls: 4, Racks: topology.NumRacks}
	store := fleetAnalysisStore(t, fleet)
	_, client := startServer(t, store)

	info, err := client.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Halls != fleet.Halls || info.RacksPerHall != fleet.Racks {
		t.Fatalf("server advertises %d halls × %d racks, want %d × %d",
			info.Halls, info.RacksPerHall, fleet.Halls, fleet.Racks)
	}

	ctx := context.Background()
	for hall := 0; hall < fleet.Halls; hall++ {
		localF7, err := analysis.Fig7CoolantPushdownHall(ctx, store, hall)
		if err != nil {
			t.Fatal(err)
		}
		remoteF7, err := analysis.Fig7CoolantPushdownHall(ctx, client, hall)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(localF7, remoteF7) {
			t.Errorf("hall %d: Fig7 pushdown differs over the wire", hall)
		}
		localF9, err := analysis.Fig9AmbientPushdownHall(ctx, store, hall)
		if err != nil {
			t.Fatal(err)
		}
		remoteF9, err := analysis.Fig9AmbientPushdownHall(ctx, client, hall)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(localF9, remoteF9) {
			t.Errorf("hall %d: Fig9 pushdown differs over the wire", hall)
		}

		opts := analysis.CollectOptions{Workers: 3, Hall: hall}
		local := analysis.CollectFromStoreOpts(store, opts)
		remote := analysis.CollectFromStoreOpts(client, opts)
		if got, want := remote.Fig7RackCoolant(), local.Fig7RackCoolant(); !reflect.DeepEqual(got, want) {
			t.Errorf("hall %d: Fig7 replay differs:\n local  %+v\n remote %+v", hall, want, got)
		}
		if got, want := fmt.Sprintf("%+v", remote.Fig3CoolantTimeline()), fmt.Sprintf("%+v", local.Fig3CoolantTimeline()); got != want {
			t.Errorf("hall %d: Fig3 replay differs:\n local  %s\n remote %s", hall, want, got)
		}
		if got, want := fmt.Sprintf("%+v", remote.Fig9RackAmbient()), fmt.Sprintf("%+v", local.Fig9RackAmbient()); got != want {
			t.Errorf("hall %d: Fig9 replay differs:\n local  %s\n remote %s", hall, want, got)
		}
	}
}
