package telemetrynet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mira/internal/analysis"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/tsdb"
	"mira/internal/units"
)

// analysisStore simulates a two-day full-machine trace with per-channel
// variation, compressed into a sharded store — the shape the paper's
// figures aggregate over.
func analysisStore(t *testing.T) *tsdb.Store {
	t.Helper()
	db := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	rng := rand.New(rand.NewSource(23))
	start := time.Date(2015, 3, 10, 0, 0, 0, 0, timeutil.Chicago)
	for i := 0; i < 2*288; i++ {
		ts := start.Add(time.Duration(i) * timeutil.SampleInterval)
		for _, rack := range topology.AllRacks() {
			r := wireTrace(1)[0]
			r.Time = ts
			r.Rack = rack
			r.Flow = units.GPM(26 + rng.Float64())
			r.InletTemp = units.Fahrenheit(64 + rng.Float64())
			r.OutletTemp = units.Fahrenheit(79 + rng.Float64())
			r.DCTemperature = units.Fahrenheit(80 + 2*rng.Float64())
			r.DCHumidity = units.RelativeHumidity(30 + 4*rng.Float64())
			r.Power = units.Watts(55000 + 100*rng.Float64())
			if err := db.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// TestRemotePushdownBitIdentical is the acceptance pin for the tentpole:
// the Fig. 7 and Fig. 9 aggregation pushdowns through a telemetrynet
// client are bit-identical to running them in-process against the same
// store — the wire carries raw float64 bit patterns and the windows are
// computed server-side.
func TestRemotePushdownBitIdentical(t *testing.T) {
	store := analysisStore(t)
	_, client := startServer(t, store)

	localF7, err := analysis.Fig7CoolantPushdown(store)
	if err != nil {
		t.Fatal(err)
	}
	remoteF7, err := analysis.Fig7CoolantPushdown(client)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(localF7, remoteF7) {
		t.Errorf("Fig7 pushdown differs over the wire:\n local  %+v\n remote %+v", localF7, remoteF7)
	}

	localF9, err := analysis.Fig9AmbientPushdown(store)
	if err != nil {
		t.Fatal(err)
	}
	remoteF9, err := analysis.Fig9AmbientPushdown(client)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(localF9, remoteF9) {
		t.Errorf("Fig9 pushdown differs over the wire:\n local  %+v\n remote %+v", localF9, remoteF9)
	}
}

// TestRemoteReplayEquivalence: the full streaming replay (every figure's
// collector) through the remote scan endpoint matches the in-process
// parallel merged replay. NaN-carrying figures compare via their %+v
// rendering, which treats NaN as equal to itself.
func TestRemoteReplayEquivalence(t *testing.T) {
	store := analysisStore(t)
	_, client := startServer(t, store)

	local := analysis.CollectFromStoreParallel(store, 3)
	remote := analysis.CollectFromStoreParallel(client, 3)

	if got, want := remote.Fig7RackCoolant(), local.Fig7RackCoolant(); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig7 replay differs:\n local  %+v\n remote %+v", want, got)
	}
	if got, want := fmt.Sprintf("%+v", remote.Fig3CoolantTimeline()), fmt.Sprintf("%+v", local.Fig3CoolantTimeline()); got != want {
		t.Errorf("Fig3 replay differs:\n local  %s\n remote %s", want, got)
	}
	if got, want := fmt.Sprintf("%+v", remote.Fig9RackAmbient()), fmt.Sprintf("%+v", local.Fig9RackAmbient()); got != want {
		t.Errorf("Fig9 replay differs:\n local  %s\n remote %s", want, got)
	}
}
