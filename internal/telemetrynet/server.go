package telemetrynet

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"mira/internal/envdb"
	"mira/internal/obs"
	"mira/internal/sensors"
	"mira/internal/topology"
)

// ServerOptions configures a telemetry Server.
type ServerOptions struct {
	// ScanWorkers bounds the decode workers behind streaming scan requests
	// (<= 0 selects GOMAXPROCS); forwarded to the store's merged scan.
	ScanWorkers int

	// SlowQuery enables the slow-query log: any request taking at least
	// this long emits one JSON line to SlowLog with the request's trace
	// ID, query shape, and scan counters. 0 disables.
	SlowQuery time.Duration

	// SlowLog receives slow-query lines; nil selects os.Stderr. Writes
	// are serialized by the server.
	SlowLog io.Writer

	// DedupClients caps the ingest dedup table: at most this many client
	// entries are remembered, least-recently-active evicted first. <= 0
	// selects DefaultDedupClients. An evicted client that reappears starts
	// a fresh watermark; the store's own per-rack time-order check rejects
	// any genuinely stale replay it might carry.
	DedupClients int
}

// DefaultDedupClients bounds the ingest dedup table when
// ServerOptions.DedupClients is unset. 4096 clients × two words dwarfs any
// real fleet (one client per simulator process) while keeping a hostile
// stream of fabricated client IDs from growing server memory without bound.
const DefaultDedupClients = 4096

// Server exposes an environmental database over HTTP: a batched,
// CRC-checked, idempotent ingest endpoint plus query endpoints mirroring
// the envdb.DB / envdb.Aggregator read surface. Mount it on the obs
// observability mux (obs.ServeWith) so /metrics, /healthz, pprof, and the
// telemetry API share one listener — the miramon -serve topology.
//
// Every endpoint is safe for concurrent use to the extent the underlying
// store is; tsdb.Store serves concurrent ingest and queries.
type Server struct {
	db    envdb.DB
	opts  ServerOptions
	fleet topology.Fleet // the store's hall × rack shape (1×48 when unknown)

	// Ingest dedup state: per client, the highest batch sequence committed
	// (water) plus the set of sequences being applied right now (inflight).
	// The watermark advances only after the batch lands in the store, so a
	// rejected or failed batch leaves its (client, seq) token unconsumed
	// and a corrected retry under the same token is accepted — the store
	// applies batches all-or-nothing (envdb.BatchAppender), never a prefix.
	// Clients are LRU-bounded (opts.DedupClients); the list front is the
	// most recently active client.
	mu      sync.Mutex
	clients map[uint64]*list.Element
	lru     *list.List // of *clientState

	slowMu sync.Mutex // serializes slow-query log lines
}

// clientState is one client's dedup entry.
type clientState struct {
	id       uint64
	water    uint64              // highest committed batch sequence
	inflight map[uint64]struct{} // sequences mid-application
}

// NewServer wraps db in a telemetry service.
func NewServer(db envdb.DB, opts ServerOptions) *Server {
	if opts.DedupClients <= 0 {
		opts.DedupClients = DefaultDedupClients
	}
	fleet := topology.Fleet{}.Norm()
	if fd, ok := db.(envdb.FleetDescriber); ok {
		fleet = fd.Fleet().Norm()
	}
	return &Server{
		db:      db,
		opts:    opts,
		fleet:   fleet,
		clients: make(map[uint64]*list.Element),
		lru:     list.New(),
	}
}

// Mount registers the telemetry API on mux under /v1/.
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/v1/ingest", s.traced("ingest", "net.ingest", s.handleIngest))
	mux.HandleFunc("/v1/query", s.traced("query", "net.query", s.handleQuery))
	mux.HandleFunc("/v1/series", s.traced("series", "net.series", s.handleSeries))
	mux.HandleFunc("/v1/aggregate", s.traced("aggregate", "net.aggregate", s.handleAggregate))
	mux.HandleFunc("/v1/scan", s.traced("scan", "net.scan", s.handleScan))
	mux.HandleFunc("/v1/info", s.traced("info", "net.info", s.handleInfo))
}

// Handler returns a standalone handler serving only the telemetry API
// (tests; production deployments mount on the obs mux instead).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Mount(mux)
	return mux
}

// queryShape accumulates the request's shape fields — endpoint, time
// range, rack, tier/order/workers, rows — for the slow-query log and the
// handler span's attributes. Handlers fill it via shapeFrom(ctx).
type queryShape struct {
	mu     sync.Mutex
	fields [][2]string
}

type shapeKey struct{}

func (q *queryShape) set(k, v string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.fields {
		if q.fields[i][0] == k {
			q.fields[i][1] = v
			return
		}
	}
	q.fields = append(q.fields, [2]string{k, v})
}

func (q *queryShape) snapshot() map[string]string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.fields) == 0 {
		return nil
	}
	out := make(map[string]string, len(q.fields))
	for _, kv := range q.fields {
		out[kv[0]] = kv[1]
	}
	return out
}

func shapeFrom(ctx context.Context) *queryShape {
	q, _ := ctx.Value(shapeKey{}).(*queryShape)
	return q
}

// traced wraps an endpoint handler with the request-scoped observability
// stack: extract X-Mira-Trace (malformed values are ignored — the request
// starts a fresh root trace), start the handler span, thread per-request
// scan counters through the context, record the latency histogram with
// the trace ID as its bucket exemplar, and emit a slow-query line when
// the request crosses the configured threshold.
func (s *Server) traced(endpoint, spanName string, h http.HandlerFunc) http.HandlerFunc {
	hist := metRequestDur.With(endpoint)
	return func(w http.ResponseWriter, req *http.Request) {
		ctx := req.Context()
		if sc, ok := obs.ParseTraceHeader(req.Header.Get(obs.TraceHeader)); ok {
			ctx = obs.ContextWithRemoteSpan(ctx, sc)
		}
		stats := new(envdb.ScanStats)
		ctx = envdb.ContextWithScanStats(ctx, stats)
		shape := &queryShape{}
		ctx = context.WithValue(ctx, shapeKey{}, shape)
		ctx, span := obs.Span(ctx, spanName)
		start := time.Now()
		h(w, req.WithContext(ctx))
		elapsed := time.Since(start)
		for k, v := range shape.snapshot() {
			span.SetAttr(k, v)
		}
		trace := span.Context().Trace
		span.End()
		hist.ObserveExemplar(elapsed.Seconds(), trace.String())
		if s.opts.SlowQuery > 0 && elapsed >= s.opts.SlowQuery {
			s.logSlowQuery(endpoint, trace, elapsed, shape, stats)
		}
	}
}

// slowQueryLine is the JSON schema of one slow-query log line.
type slowQueryLine struct {
	TS            string            `json:"ts"`
	Trace         string            `json:"trace"`
	Endpoint      string            `json:"endpoint"`
	Seconds       float64           `json:"seconds"`
	Shape         map[string]string `json:"shape,omitempty"`
	Records       int64             `json:"records"`
	BlocksDecoded int64             `json:"blocks_decoded"`
	BlocksPruned  int64             `json:"blocks_pruned"`
}

func (s *Server) logSlowQuery(endpoint string, trace obs.TraceID, elapsed time.Duration, shape *queryShape, stats *envdb.ScanStats) {
	metSlowQueries.With(endpoint).Inc()
	line, err := json.Marshal(slowQueryLine{
		TS:            time.Now().UTC().Format(time.RFC3339Nano),
		Trace:         trace.String(),
		Endpoint:      endpoint,
		Seconds:       elapsed.Seconds(),
		Shape:         shape.snapshot(),
		Records:       stats.Records.Load(),
		BlocksDecoded: stats.BlocksDecoded.Load(),
		BlocksPruned:  stats.BlocksPruned.Load(),
	})
	if err != nil {
		return // all fields are marshalable; defensive only
	}
	out := s.opts.SlowLog
	if out == nil {
		out = os.Stderr
	}
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	out.Write(append(line, '\n'))
}

// IngestResult is the JSON body of a successful ingest response.
type IngestResult struct {
	AcceptedBatches  int `json:"accepted_batches"`
	AcceptedRecords  int `json:"accepted_records"`
	DuplicateBatches int `json:"duplicate_batches"`
}

// batchClaim is beginBatch's verdict on one (client, seq) token.
type batchClaim int

const (
	batchNew       batchClaim = iota // apply it
	batchDuplicate                   // already committed; drop silently
	batchBusy                        // same token mid-application elsewhere
)

// beginBatch claims (clientID, seq) for application. A sequence at or
// below the client's committed watermark is a duplicate; a sequence
// another request is applying right now is busy (the client should retry
// after that application settles one way or the other). Otherwise the
// sequence is marked inflight and the caller must endBatch it.
func (s *Server) beginBatch(clientID, seq uint64) batchClaim {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st *clientState
	if el, ok := s.clients[clientID]; ok {
		s.lru.MoveToFront(el)
		st = el.Value.(*clientState)
	} else {
		st = &clientState{id: clientID, inflight: make(map[uint64]struct{})}
		s.clients[clientID] = s.lru.PushFront(st)
		s.evictLocked()
		metDedupClients.Set(float64(len(s.clients)))
	}
	if seq <= st.water {
		return batchDuplicate
	}
	if _, busy := st.inflight[seq]; busy {
		return batchBusy
	}
	st.inflight[seq] = struct{}{}
	return batchNew
}

// endBatch releases an inflight token, committing the watermark only when
// the batch landed in the store. A failed batch leaves the token free, so
// a corrected retry under the same (client, seq) is accepted.
func (s *Server) endBatch(clientID, seq uint64, committed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.clients[clientID]
	if !ok {
		return // unreachable: inflight entries are never evicted
	}
	st := el.Value.(*clientState)
	delete(st.inflight, seq)
	if committed && seq > st.water {
		st.water = seq
	}
}

// evictLocked drops least-recently-active clients beyond the configured
// cap, skipping any with inflight batches (their endBatch must find them).
// Callers hold s.mu.
func (s *Server) evictLocked() {
	over := len(s.clients) - s.opts.DedupClients
	for el := s.lru.Back(); el != nil && over > 0; {
		prev := el.Prev()
		if st := el.Value.(*clientState); len(st.inflight) == 0 {
			s.lru.Remove(el)
			delete(s.clients, st.id)
			over--
		}
		el = prev
	}
}

// appendBatch lands one decoded batch in the store: all-or-nothing through
// envdb.BatchAppender when the store provides it (tsdb.Store and
// envdb.Store both do), else a plain Append loop — non-atomic, but any
// partial prefix makes the retried batch fail the store's own time-order
// check rather than double-append.
func (s *Server) appendBatch(recs []sensors.Record) error {
	if ba, ok := s.db.(envdb.BatchAppender); ok {
		return ba.AppendTick(recs)
	}
	for i, rec := range recs {
		if err := s.db.Append(rec); err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
	}
	return nil
}

// handleIngest reads a stream of ingest frames from the request body and
// appends each new batch to the store. Frames apply in order; the first
// malformed frame fails the request with 400 (already-applied frames stay
// applied — the client's retry replays them as deduplicated tokens). A
// batch the store rejects (e.g. out-of-order telemetry) is the client's
// data error: 409, the store is left exactly as it was (the batch applies
// all-or-nothing), and the batch token stays unconsumed so a corrected
// retry under the same sequence is accepted.
func (s *Server) handleIngest(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	shape := shapeFrom(req.Context())
	var res IngestResult
	for {
		fr, err := decodeIngestFrame(req.Body)
		if err == io.EOF {
			break
		}
		if err != nil {
			metIngestErrors.Inc()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch s.beginBatch(fr.ClientID, fr.Seq) {
		case batchDuplicate:
			metIngestDuplicates.Inc()
			res.DuplicateBatches++
			continue
		case batchBusy:
			http.Error(w, fmt.Sprintf("batch %d already being applied", fr.Seq), http.StatusServiceUnavailable)
			return
		}
		err = s.appendBatch(fr.Records)
		s.endBatch(fr.ClientID, fr.Seq, err == nil)
		if err != nil {
			metIngestErrors.Inc()
			http.Error(w, fmt.Sprintf("batch %d: %v", fr.Seq, err), http.StatusConflict)
			return
		}
		metIngestBatches.Inc()
		metIngestRecords.Add(uint64(len(fr.Records)))
		res.AcceptedBatches++
		res.AcceptedRecords += len(fr.Records)
	}
	shape.set("batches", strconv.Itoa(res.AcceptedBatches))
	shape.set("rows", strconv.Itoa(res.AcceptedRecords))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// queryParams parses the shared rack/from/to parameters. The rack travels
// as its packed code (topology.RackID.Code) — for hall 0 that equals the
// plain rack index the v1 protocol used, so old clients keep working
// against single-machine servers. Times travel as UnixNano integers —
// exact, zone-free instants.
func (s *Server) queryParams(req *http.Request) (rack topology.RackID, from, to time.Time, err error) {
	q := req.URL.Query()
	code, err := strconv.ParseUint(q.Get("rack"), 10, 16)
	if err != nil {
		return rack, from, to, fmt.Errorf("bad rack %q", q.Get("rack"))
	}
	rack, err = topology.RackFromCode(uint16(code))
	if err != nil || !s.fleet.Contains(rack) {
		return rack, from, to, fmt.Errorf("bad rack %q", q.Get("rack"))
	}
	fromN, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil {
		return rack, from, to, fmt.Errorf("bad from %q", q.Get("from"))
	}
	toN, err := strconv.ParseInt(q.Get("to"), 10, 64)
	if err != nil {
		return rack, from, to, fmt.Errorf("bad to %q", q.Get("to"))
	}
	return rack, time.Unix(0, fromN).UTC(), time.Unix(0, toN).UTC(), nil
}

func metricParam(req *http.Request) (sensors.Metric, error) {
	m, err := strconv.Atoi(req.URL.Query().Get("metric"))
	if err != nil || m < 0 || m >= int(sensors.NumMetrics) {
		return 0, fmt.Errorf("bad metric %q", req.URL.Query().Get("metric"))
	}
	return sensors.Metric(m), nil
}

// zoneOff reports the store's zone offset (from its earliest record), so
// remote reads reconstruct instants in the same calendar zone as local
// reads — monthly bucketing downstream depends on it.
func (s *Server) zoneOff() int32 {
	if agg, ok := s.db.(envdb.Aggregator); ok {
		if first, _, ok := agg.Bounds(); ok {
			return zoneOffset(first)
		}
		return 0
	}
	var off int32
	s.db.EachRecordUntil(func(r sensors.Record) bool {
		off = zoneOffset(r.Time)
		return false
	})
	return off
}

// setRangeShape records the shared rack/time-range query shape.
func setRangeShape(shape *queryShape, rack topology.RackID, from, to time.Time) {
	shape.set("rack", rack.String())
	shape.set("from", from.UTC().Format(time.RFC3339))
	shape.set("to", to.UTC().Format(time.RFC3339))
}

func (s *Server) handleQuery(w http.ResponseWriter, req *http.Request) {
	rack, from, to, err := s.queryParams(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	shape := shapeFrom(req.Context())
	setRangeShape(shape, rack, from, to)
	recs := s.db.Query(rack, from, to)
	shape.set("rows", strconv.Itoa(len(recs)))
	cw := newChunkWriter(w, false, s.fleet.Halls > 1, s.zoneOff())
	for _, r := range recs {
		if err := cw.add(r, 0); err != nil {
			return // client went away mid-stream
		}
	}
	if cw.close() == nil {
		metScanRecordsSent.Add(uint64(len(recs)))
	}
}

func (s *Server) handleSeries(w http.ResponseWriter, req *http.Request) {
	rack, from, to, err := s.queryParams(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := metricParam(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	shape := shapeFrom(req.Context())
	setRangeShape(shape, rack, from, to)
	shape.set("metric", m.String())
	times, vals := s.db.Series(rack, m, from, to)
	shape.set("rows", strconv.Itoa(len(times)))
	encodeSeries(w, s.zoneOff(), times, vals)
}

func (s *Server) handleAggregate(w http.ResponseWriter, req *http.Request) {
	agg, ok := s.db.(envdb.Aggregator)
	if !ok {
		http.Error(w, "store does not support aggregation pushdown", http.StatusNotImplemented)
		return
	}
	rack, from, to, err := s.queryParams(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m, err := metricParam(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	windowN, err := strconv.ParseInt(req.URL.Query().Get("window"), 10, 64)
	if err != nil || windowN < 0 {
		http.Error(w, fmt.Sprintf("bad window %q", req.URL.Query().Get("window")), http.StatusBadRequest)
		return
	}
	shape := shapeFrom(req.Context())
	setRangeShape(shape, rack, from, to)
	shape.set("metric", m.String())
	shape.set("window", time.Duration(windowN).String())
	var aggs []envdb.WindowAgg
	if ca, ok := s.db.(envdb.ContextAggregator); ok {
		aggs, err = ca.AggregateCtx(req.Context(), rack, m, from, to, time.Duration(windowN))
	} else {
		aggs, err = agg.Aggregate(rack, m, from, to, time.Duration(windowN))
	}
	if err != nil {
		// The store rejected the shape of the query (e.g. too many
		// windows): the client's error, not the server's.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wire := make([]windowAgg, len(aggs))
	for i, a := range aggs {
		wire[i] = windowAgg{startN: a.Start.UnixNano(), count: int64(a.Count), min: a.Min, max: a.Max, sum: a.Sum}
	}
	encodeAggs(w, s.zoneOff(), wire)
}

// handleScan streams every stored record as a chunked frame sequence.
// order=rack (default) walks rack-major like envdb.DB.EachRecord;
// order=time yields the global time-ordered merge (rack ascending within
// an instant) and honors tiers=1 by appending each record's storage tier.
// Stores without the merged-scan capability fall back to a server-side
// buffered sort, so the endpoint's contract holds for any envdb.DB.
func (s *Server) handleScan(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	order := q.Get("order")
	if order == "" {
		order = "rack"
	}
	tiered := q.Get("tiers") == "1"
	workers := s.opts.ScanWorkers
	if ws := q.Get("workers"); ws != "" {
		n, err := strconv.Atoi(ws)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad workers %q", ws), http.StatusBadRequest)
			return
		}
		// The server's own option caps remote fan-out requests: a client
		// cannot demand more decode goroutines than the operator allowed.
		if workers <= 0 || (n > 0 && n < workers) {
			workers = n
		}
	}
	shape := shapeFrom(req.Context())
	shape.set("order", order)
	shape.set("tiers", strconv.FormatBool(tiered))
	shape.set("workers", strconv.Itoa(workers))
	cw := newChunkWriter(w, tiered, s.fleet.Halls > 1, s.zoneOff())
	sent := 0
	emit := func(r sensors.Record, tier envdb.Tier) bool {
		if err := cw.add(r, byte(tier)); err != nil {
			return false // client went away; abandon the scan
		}
		sent++
		return true
	}
	var err error
	switch order {
	case "rack":
		s.db.EachRecordUntil(func(r sensors.Record) bool { return emit(r, envdb.TierRaw) })
	case "time":
		err = s.mergedScan(req.Context(), workers, emit)
	default:
		http.Error(w, fmt.Sprintf("bad order %q", order), http.StatusBadRequest)
		return
	}
	shape.set("rows", strconv.Itoa(sent))
	if err != nil {
		// Mid-stream failure: the chunk stream just stops without its
		// terminator, which the client decodes as a truncated stream.
		return
	}
	if cw.close() == nil {
		metScanRecordsSent.Add(uint64(sent))
	}
}

// mergedScan drives the store's best global-time-order capability:
// TierScanner (context-aware when available, so the scan joins the
// request's trace), then ShardScanner, then a buffered sort over
// EachRecord for minimal stores.
func (s *Server) mergedScan(ctx context.Context, workers int, f func(sensors.Record, envdb.Tier) bool) error {
	if cts, ok := s.db.(envdb.ContextTierScanner); ok {
		return cts.EachRecordMergedTierCtx(ctx, workers, f)
	}
	if ts, ok := s.db.(envdb.TierScanner); ok {
		return ts.EachRecordMergedTier(workers, f)
	}
	if ss, ok := s.db.(envdb.ShardScanner); ok {
		return ss.EachRecordMerged(workers, func(r sensors.Record) bool { return f(r, envdb.TierRaw) })
	}
	var all []sensors.Record
	s.db.EachRecord(func(r sensors.Record) { all = append(all, r) })
	sort.SliceStable(all, func(a, b int) bool {
		ta, tb := all[a].Time.UnixNano(), all[b].Time.UnixNano()
		if ta != tb {
			return ta < tb
		}
		// Packed-code order is hall-major — the same fleet order the
		// tsdb merged scan yields within an instant.
		return all[a].Rack.Code() < all[b].Rack.Code()
	})
	for _, r := range all {
		if !f(r, envdb.TierRaw) {
			return nil
		}
	}
	return nil
}

// Info is the JSON body of /v1/info: the store's record count, time
// bounds, calendar zone, and fleet shape.
type Info struct {
	Records           int   `json:"records"`
	HasData           bool  `json:"has_data"`
	FirstUnixNano     int64 `json:"first_unixnano"`
	LastUnixNano      int64 `json:"last_unixnano"`
	ZoneOffsetSeconds int32 `json:"zone_offset_seconds"`
	// Aggregator reports whether /v1/aggregate is available, so clients
	// can fall back to client-side aggregation without a probe request.
	Aggregator bool `json:"aggregator"`
	// Halls and RacksPerHall describe the store's fleet shape. Omitted
	// (zero) only by pre-fleet servers, so clients default both to the
	// single-machine 1 × 48.
	Halls        int `json:"halls"`
	RacksPerHall int `json:"racks_per_hall"`
}

func (s *Server) handleInfo(w http.ResponseWriter, req *http.Request) {
	info := Info{
		Records:           s.db.Len(),
		ZoneOffsetSeconds: s.zoneOff(),
		Halls:             s.fleet.Halls,
		RacksPerHall:      s.fleet.Racks,
	}
	if agg, ok := s.db.(envdb.Aggregator); ok {
		info.Aggregator = true
		if first, last, ok := agg.Bounds(); ok {
			info.HasData = true
			info.FirstUnixNano = first.UnixNano()
			info.LastUnixNano = last.UnixNano()
		}
	} else {
		s.db.EachRecordUntil(func(r sensors.Record) bool {
			n := r.Time.UnixNano()
			if !info.HasData || n < info.FirstUnixNano {
				info.FirstUnixNano = n
			}
			if !info.HasData || n > info.LastUnixNano {
				info.LastUnixNano = n
			}
			info.HasData = true
			return true
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}
