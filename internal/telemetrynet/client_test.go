package telemetrynet

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mira/internal/envdb"
	"mira/internal/sensors"
	"mira/internal/tsdb"
)

// TestClientRetryDedup is the end-to-end retry story: the server applies a
// push but the response is lost, the client retries the same batch token,
// and the records land exactly once.
func TestClientRetryDedup(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	inner := NewServer(store, ServerOptions{}).Handler()
	var calls int32
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/ingest" && atomic.AddInt32(&calls, 1) == 1 {
			// Apply the batch, then lose the response on the wire.
			inner.ServeHTTP(httptest.NewRecorder(), r)
			http.Error(w, "simulated response loss", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer proxy.Close()

	client := NewClient(proxy.URL, ClientOptions{BatchSize: 1 << 20, Retries: 3})
	recs := netTrace(3)
	fillStore(t, client, recs)
	if err := client.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if store.Len() != len(recs) {
		t.Fatalf("store has %d records, want %d (retried batch must dedup)", store.Len(), len(recs))
	}
	stats := client.Stats()
	if stats.Retries != 1 || stats.DuplicateBatches != 1 || stats.PushedBatches != 1 {
		t.Fatalf("stats = %+v, want 1 retry / 1 duplicate / 1 batch", stats)
	}
}

// TestClientPushRejected: a 4xx rejection is permanent — no retries, the
// error surfaces, and the poisoned batch is dropped so later pushes work.
func TestClientPushRejected(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "out of order", http.StatusConflict)
	}))
	defer ts.Close()
	client := NewClient(ts.URL, ClientOptions{Retries: 3})
	fillStore(t, client, netTrace(1))
	err := client.Flush()
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("flush err = %v, want rejection", err)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("4xx retried %d times, want a single attempt", n)
	}
	if err := client.Flush(); err != nil {
		t.Fatalf("flush after drop: %v (rejected batch must not stick)", err)
	}
}

// TestClientTransportExhaustion: every attempt fails → the error reports
// the attempt count and the batch is consumed.
func TestClientTransportExhaustion(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	client := NewClient(ts.URL, ClientOptions{Retries: 2})
	fillStore(t, client, netTrace(1))
	err := client.Flush()
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("flush err = %v, want exhaustion after 3 attempts", err)
	}
	if n := atomic.LoadInt32(&calls); n != 3 {
		t.Fatalf("made %d attempts, want 3", n)
	}
}

// TestClientCancelDuringRetryBackoff: canceling the client context while
// the push is waiting out a retry backoff against a down server must
// return promptly with the context error — not sleep through the rest of
// the retry schedule (the old bare time.Sleep held Append/Flush, and the
// mutex under them, for the full schedule after cancellation).
func TestClientCancelDuringRetryBackoff(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	// 40 retries at 50ms+ linear steps is a multi-second schedule; the
	// canceled flush must not come anywhere near it.
	client := NewClient(ts.URL, ClientOptions{Retries: 40, Context: ctx})
	fillStore(t, client, netTrace(1))
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := client.Flush()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("flush succeeded against a down server")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("flush err = %v, want wrapped context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("canceled flush took %v; the backoff did not observe the context", elapsed)
	}
	if n := atomic.LoadInt32(&calls); n >= 40 {
		t.Fatalf("made %d attempts after cancel, want an early abort", n)
	}
}

// TestRetryBackoffJitter: the backoff grows with the attempt counter and
// carries per-client, per-batch jitter so simultaneous failures don't
// retry in lockstep.
func TestRetryBackoffJitter(t *testing.T) {
	for attempt := 1; attempt <= 4; attempt++ {
		base := time.Duration(attempt) * 50 * time.Millisecond
		d := retryBackoff(attempt, 7, 3)
		if d < base || d >= base+25*time.Millisecond {
			t.Fatalf("retryBackoff(%d) = %v, want in [%v, %v)", attempt, d, base, base+25*time.Millisecond)
		}
	}
	if retryBackoff(1, 1, 1) == retryBackoff(1, 2, 1) && retryBackoff(2, 1, 1) == retryBackoff(2, 2, 1) {
		t.Fatal("backoff jitter identical across client identities")
	}
}

// TestClientScanFallback: against a server without /v1/scan (an older
// deployment), the merged and rack-order iterations degrade to per-rack
// range queries with identical visit order.
func TestClientScanFallback(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	fillStore(t, store, netTrace(6))
	inner := NewServer(store, ServerOptions{}).Handler()
	noScan := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/scan" {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer noScan.Close()
	client := NewClient(noScan.URL, ClientOptions{})

	var want []sensors.Record
	if err := store.EachRecordMergedTier(2, func(r sensors.Record, _ envdb.Tier) bool {
		want = append(want, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var got []sensors.Record
	if err := client.EachRecordMergedTier(2, func(r sensors.Record, tier envdb.Tier) bool {
		if tier != envdb.TierRaw {
			t.Fatalf("fallback tier = %v, want TierRaw", tier)
		}
		got = append(got, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fallback merged scan: %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !sameRecord(got[i], want[i]) {
			t.Fatalf("fallback merged record %d: %+v != %+v", i, got[i], want[i])
		}
	}

	var rackWant, rackGot []sensors.Record
	store.EachRecord(func(r sensors.Record) { rackWant = append(rackWant, r) })
	client.EachRecord(func(r sensors.Record) { rackGot = append(rackGot, r) })
	if len(rackGot) != len(rackWant) {
		t.Fatalf("fallback rack scan: %d records, want %d", len(rackGot), len(rackWant))
	}
	for i := range rackWant {
		if !sameRecord(rackGot[i], rackWant[i]) {
			t.Fatalf("fallback rack record %d mismatch", i)
		}
	}
}

// TestClientCSV: the client's CSV surface matches the store's byte for
// byte, and an import round-trips through the wire.
func TestClientCSV(t *testing.T) {
	store := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	fillStore(t, store, netTrace(5))
	_, client := startServer(t, store)

	var fromStore, fromClient bytes.Buffer
	if err := store.ExportCSV(&fromStore); err != nil {
		t.Fatal(err)
	}
	if err := client.ExportCSV(&fromClient); err != nil {
		t.Fatal(err)
	}
	if fromStore.String() != fromClient.String() {
		t.Fatal("client CSV export differs from store export")
	}

	dst := tsdb.NewStoreWith(tsdb.Options{Partition: 24 * time.Hour})
	_, dstClient := startServer(t, dst)
	if err := dstClient.ImportCSV(bytes.NewReader(fromStore.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != store.Len() {
		t.Fatalf("imported %d records over the wire, want %d", dst.Len(), store.Len())
	}
	var reexport bytes.Buffer
	if err := dst.ExportCSV(&reexport); err != nil {
		t.Fatal(err)
	}
	if reexport.String() != fromStore.String() {
		t.Fatal("CSV push round-trip changed the data")
	}
}

// TestClientInterfaces pins the capability set other packages type-assert.
func TestClientInterfaces(t *testing.T) {
	var db envdb.DB = NewClient("http://unused", ClientOptions{})
	if _, ok := db.(envdb.Aggregator); !ok {
		t.Error("Client does not satisfy envdb.Aggregator")
	}
	if _, ok := db.(envdb.ShardScanner); !ok {
		t.Error("Client does not satisfy envdb.ShardScanner")
	}
	if _, ok := db.(envdb.TierScanner); !ok {
		t.Error("Client does not satisfy envdb.TierScanner")
	}
}

// TestClientErrorPanics: the error-free read surface panics (rather than
// returning zero values) when the server is unreachable.
func TestClientErrorPanics(t *testing.T) {
	client := NewClient("http://127.0.0.1:1", ClientOptions{
		HTTPClient: &http.Client{Timeout: 200 * time.Millisecond},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Len on unreachable server returned instead of panicking")
		}
	}()
	client.Len()
}
