// Package envdb is the environmental database of the digital twin — the
// stand-in for the IBM DB2 environmental database that stored Mira's
// coolant-monitor samples. It defines the telemetry-store surface (DB) that
// the simulator records into and the analyses query, the CSV interchange
// schema, and a simple slice-backed in-memory implementation (Store). The
// compressed, concurrent production engine lives in mira/internal/tsdb and
// implements the same DB surface.
package envdb

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"mira/internal/sensors"
	"mira/internal/topology"
	"mira/internal/units"
)

// DB is the environmental-database surface shared by the slice-backed
// Store and the compressed tsdb.Store: ordered ingest, rack/time-range
// queries, single-metric series extraction, full scans with early stop,
// and CSV interchange.
type DB interface {
	// Append ingests one record; records must arrive in non-decreasing
	// time order per rack (equal timestamps are allowed).
	Append(r sensors.Record) error
	// Len returns the number of stored records across all racks.
	Len() int
	// Query returns one rack's records with timestamps in [from, to).
	Query(rack topology.RackID, from, to time.Time) []sensors.Record
	// Series extracts one metric for one rack over [from, to).
	Series(rack topology.RackID, m sensors.Metric, from, to time.Time) ([]time.Time, []float64)
	// EachRecord visits every record, rack-major, time order within rack.
	EachRecord(f func(sensors.Record))
	// EachRecordUntil visits records like EachRecord but stops early when
	// f returns false.
	EachRecordUntil(f func(sensors.Record) bool)
	// ExportCSV writes all records in the csvHeader schema.
	ExportCSV(w io.Writer) error
	// ImportCSV reads records in the csvHeader schema.
	ImportCSV(r io.Reader) error
}

// ShardScanner is an optional capability of DB implementations whose
// storage is sharded by rack: a fan-out scan that visits every record in
// global timestamp order (ties broken by ascending rack index) instead of
// EachRecord's rack-major order. workers bounds the number of concurrent
// shard decoders (values <= 1 request a serial scan; implementations
// without decode work may ignore it). The visit order is deterministic
// for a fixed store regardless of workers. The scan stops early when f
// returns false; unlike the panic-on-corruption EachRecord surface,
// scan failures come back as errors.
//
// Consumers that need global time order (e.g. offline tick replay) should
// type-assert for this capability and fall back to buffering EachRecord
// output when it is absent — the DB interface itself stays minimal so
// simple implementations keep working.
type ShardScanner interface {
	EachRecordMerged(workers int, f func(sensors.Record) bool) error
}

// Tier identifies the storage tier a scanned record came from in stores
// with retention/downsampling (tsdb.Store).
type Tier uint8

const (
	// TierRaw marks a full-rate sample stored as ingested.
	TierRaw Tier = iota
	// TierDownsampled marks a cold-tier window record: timestamped at the
	// compaction window's start and valued at the window's per-channel
	// mean, standing in for every raw sample folded into that window.
	TierDownsampled
)

// TierScanner is an optional capability of ShardScanner implementations
// with a downsampled cold tier: the same merged scan, with each record's
// tier. Consumers that replay full-rate semantics (tick grouping, incident
// detection) should skip TierDownsampled records — a window mean is not a
// sample — while aggregate consumers may use both. Implementations without
// tiers simply don't implement this; callers fall back to EachRecordMerged
// treating everything as raw.
type TierScanner interface {
	ShardScanner
	EachRecordMergedTier(workers int, f func(sensors.Record, Tier) bool) error
}

// Chunk is one batch of a chunked merged scan: parallel columns holding up
// to a few thousand consecutive rows of the global (timestamp, rack) order.
// Columnar delivery amortizes the per-record callback and materialization
// cost of EachRecordMerged away — consumers read the columns they need and
// call Record only for rows they must materialize.
//
// A Chunk passed to an EachChunkMerged callback is only valid for the
// duration of the call: the scanner reuses its backing arrays for the next
// chunk. Consumers that need rows afterwards must copy them out.
type Chunk struct {
	// Loc is the records' location, shared by every row.
	Loc *time.Location
	// Times holds unix-nanosecond timestamps, non-decreasing.
	Times []int64
	// Racks holds the packed rack code (topology.RackID.Code: hall high
	// byte, within-hall index low byte) of each row; within equal
	// timestamps rows are ordered by ascending fleet shard order, which
	// equals ascending code order. Hall-0 codes equal the plain rack index.
	Racks []uint16
	// Tiers holds each row's storage tier.
	Tiers []Tier
	// Cols holds one value column per metric, indexed by sensors.Metric.
	Cols [sensors.NumMetrics][]float64
}

// Len returns the number of rows in the chunk.
func (c *Chunk) Len() int { return len(c.Times) }

// Record materializes row i. The result is bit-identical to what the
// record-at-a-time scan surfaces for the same stored row.
func (c *Chunk) Record(i int) sensors.Record {
	rack, err := topology.RackFromCode(c.Racks[i])
	if err != nil {
		// Chunks are produced from valid RackIDs; a bad code is in-process
		// corruption, panic-worthy like the rest of the error-free surface.
		panic(err)
	}
	return sensors.Record{
		Time:          time.Unix(0, c.Times[i]).In(c.Loc),
		Rack:          rack,
		DCTemperature: units.Fahrenheit(c.Cols[sensors.MetricDCTemperature][i]),
		DCHumidity:    units.RelativeHumidity(c.Cols[sensors.MetricDCHumidity][i]),
		Flow:          units.GPM(c.Cols[sensors.MetricFlow][i]),
		InletTemp:     units.Fahrenheit(c.Cols[sensors.MetricInletTemp][i]),
		OutletTemp:    units.Fahrenheit(c.Cols[sensors.MetricOutletTemp][i]),
		Power:         units.Watts(c.Cols[sensors.MetricPower][i]),
	}
}

// ChunkScanner is an optional capability of ShardScanner implementations
// with a batch-columnar scan path: the same global (timestamp, rack) order
// as EachRecordMerged, delivered as columnar chunks instead of one record
// per callback. The scan stops early when f returns false; failures come
// back as errors. Consumers should type-assert for this capability and
// fall back to the record surfaces when it is absent.
type ChunkScanner interface {
	EachChunkMerged(workers int, f func(*Chunk) bool) error
}

// WindowAgg is one aggregation window of an Aggregator pushdown query.
type WindowAgg struct {
	// Start is the window's inclusive start; the window spans one Aggregate
	// window length.
	Start time.Time
	// Count is the number of samples that fell in the window.
	Count int
	// Min, Max, Sum summarize the metric over the window (Min/Max are NaN
	// when Count is zero).
	Min, Max, Sum float64
}

// Mean is Sum/Count, NaN for an empty window.
func (w WindowAgg) Mean() float64 {
	if w.Count == 0 {
		return math.NaN()
	}
	return w.Sum / float64(w.Count)
}

// Aggregator is an optional capability of DB implementations that can
// compute per-window min/max/sum/count of one rack's metric without
// materializing records — aggregation pushdown straight off the storage
// representation. Bounds scopes whole-store aggregations.
type Aggregator interface {
	Bounds() (first, last time.Time, ok bool)
	Aggregate(rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) ([]WindowAgg, error)
}

// Appender is the minimal ingest surface ReadCSV needs.
type Appender interface {
	Append(r sensors.Record) error
}

// BatchAppender is an optional capability of DB implementations with an
// atomic batched ingest path: AppendTick validates the whole batch first
// (per-rack time order within the batch and against the store) and applies
// it all-or-nothing — a returned error guarantees the store is unchanged,
// so the batch is safe to retry after correction. Implementations also
// amortize per-record locking across the batch. Servers ingesting network
// batches should type-assert for this capability and fall back to a
// per-record Append loop (which has no atomicity guarantee) when absent.
type BatchAppender interface {
	AppendTick(recs []sensors.Record) error
}

// RecordVisitor is the minimal scan surface WriteCSV needs.
type RecordVisitor interface {
	EachRecordUntil(f func(sensors.Record) bool)
}

// FleetDescriber is an optional capability of DB implementations that know
// their hall × rack shape. Consumers (the telemetry server, remote
// analyses) treat stores without it as the single-machine 1 × 48 fleet.
type FleetDescriber interface {
	Fleet() topology.Fleet
}

// Store is a plain in-memory environmental database backed by one record
// slice per rack. It is not safe for concurrent use (use tsdb.Store for
// concurrent ingest and scans); the simulator feeds it from a single
// goroutine.
type Store struct {
	// records per rack, in append (time) order.
	records [topology.NumRacks][]sensors.Record

	// Downsample keeps only every Nth sample per rack (0 or 1 = keep all).
	Downsample int
	counter    [topology.NumRacks]int

	// lastT/hasLast track the newest accepted timestamp per rack — kept
	// records or not — so monotonicity holds across downsample-skipped
	// samples.
	lastT   [topology.NumRacks]time.Time
	hasLast [topology.NumRacks]bool
}

var _ DB = (*Store)(nil)

// NewStore creates an empty store keeping every sample.
func NewStore() *Store { return &Store{} }

// NewDownsampledStore creates a store that keeps one of every n samples per
// rack, for bounded-memory multi-year runs.
func NewDownsampledStore(n int) *Store { return &Store{Downsample: n} }

// Append ingests one record. Records must arrive in non-decreasing time
// order per rack; Append returns an error otherwise (the coolant monitor is
// a periodic sampler, so out-of-order data indicates a bug upstream).
func (s *Store) Append(r sensors.Record) error {
	idx := r.Rack.Index()
	if s.hasLast[idx] && r.Time.Before(s.lastT[idx]) {
		return fmt.Errorf("envdb: out-of-order record for rack %v: %v before %v",
			r.Rack, r.Time, s.lastT[idx])
	}
	// Advance the watermark before the downsample skip: an out-of-order
	// record between two skipped samples must still be rejected.
	s.lastT[idx] = r.Time
	s.hasLast[idx] = true
	s.counter[idx]++
	if s.Downsample > 1 && (s.counter[idx]-1)%s.Downsample != 0 {
		return nil
	}
	s.records[idx] = append(s.records[idx], r)
	return nil
}

var _ BatchAppender = (*Store)(nil)

// AppendTick implements BatchAppender: the batch is validated in full —
// per-rack non-decreasing time order, within the batch and against the
// store — before any record lands, so a returned error leaves the store
// unchanged and the corrected batch can simply be resubmitted.
func (s *Store) AppendTick(recs []sensors.Record) error {
	var last [topology.NumRacks]time.Time
	var seen [topology.NumRacks]bool
	for _, r := range recs {
		idx := r.Rack.Index()
		prev, ok := last[idx], seen[idx]
		if !ok {
			prev, ok = s.lastT[idx], s.hasLast[idx]
		}
		if ok && r.Time.Before(prev) {
			return fmt.Errorf("envdb: out-of-order record in batch for rack %v: %v before %v",
				r.Rack, r.Time, prev)
		}
		last[idx], seen[idx] = r.Time, true
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			// Unreachable: the batch was validated above.
			return err
		}
	}
	return nil
}

// Len returns the number of stored records across all racks.
func (s *Store) Len() int {
	total := 0
	for i := range s.records {
		total += len(s.records[i])
	}
	return total
}

// Query returns the stored records for one rack with timestamps in
// [from, to), in time order.
func (s *Store) Query(rack topology.RackID, from, to time.Time) []sensors.Record {
	recs := s.records[rack.Index()]
	lo := sort.Search(len(recs), func(i int) bool { return !recs[i].Time.Before(from) })
	hi := sort.Search(len(recs), func(i int) bool { return !recs[i].Time.Before(to) })
	out := make([]sensors.Record, hi-lo)
	copy(out, recs[lo:hi])
	return out
}

// Series extracts one metric for one rack over [from, to) as parallel
// times/values slices.
func (s *Store) Series(rack topology.RackID, m sensors.Metric, from, to time.Time) ([]time.Time, []float64) {
	recs := s.Query(rack, from, to)
	times := make([]time.Time, len(recs))
	vals := make([]float64, len(recs))
	for i, r := range recs {
		times[i] = r.Time
		vals[i] = r.Value(m)
	}
	return times, vals
}

// EachRecord visits every stored record (rack-major, time order within
// rack). The callback must not retain the record slice.
func (s *Store) EachRecord(f func(sensors.Record)) {
	s.EachRecordUntil(func(r sensors.Record) bool { f(r); return true })
}

// EachRecordUntil visits records like EachRecord but stops as soon as f
// returns false, so consumers (e.g. CSV export hitting a write error) don't
// iterate millions of remaining records for nothing.
func (s *Store) EachRecordUntil(f func(sensors.Record) bool) {
	for i := range s.records {
		for _, r := range s.records[i] {
			if !f(r) {
				return
			}
		}
	}
}

var _ ShardScanner = (*Store)(nil)

// EachRecordMerged implements ShardScanner: a serial k-way merge over the
// per-rack record slices, yielding the whole store in global timestamp
// order with rack-index tie-breaking and O(racks) state — no copy of the
// trace is ever built. The slice store has no per-shard decode work to fan
// out, so workers is ignored.
func (s *Store) EachRecordMerged(_ int, f func(sensors.Record) bool) error {
	var pos [topology.NumRacks]int
	for {
		best := -1
		var bestT int64
		for i := range s.records {
			if pos[i] >= len(s.records[i]) {
				continue
			}
			if t := s.records[i][pos[i]].Time.UnixNano(); best < 0 || t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 {
			return nil
		}
		r := s.records[best][pos[best]]
		pos[best]++
		if !f(r) {
			return nil
		}
	}
}

// csvHeader is the export schema.
var csvHeader = []string{"time", "rack", "dc_temperature_f", "dc_humidity_rh", "coolant_flow_gpm", "inlet_temp_f", "outlet_temp_f", "power_w"}

// ExportCSV writes all records (rack-major) as CSV.
func (s *Store) ExportCSV(w io.Writer) error { return WriteCSV(w, s) }

// ImportCSV reads records in the ExportCSV schema into the store.
func (s *Store) ImportCSV(r io.Reader) error { return ReadCSV(r, s) }

// csvFlushEvery bounds how many rows csv.Writer may buffer before the
// export checks for an underlying write error. Without the periodic flush,
// cw.Write never fails (it only buffers) and a disk-full or closed-pipe
// export would walk every remaining record before noticing.
const csvFlushEvery = 10000

// WriteCSV writes every record of db in the csvHeader schema. The scan
// stops within csvFlushEvery rows of the first underlying write error
// instead of visiting the remaining records.
func WriteCSV(w io.Writer, db RecordVisitor) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("envdb: writing header: %w", err)
	}
	var err error
	rows := 0
	db.EachRecordUntil(func(r sensors.Record) bool {
		row := []string{
			r.Time.UTC().Format(time.RFC3339),
			r.Rack.String(),
			strconv.FormatFloat(float64(r.DCTemperature), 'f', 3, 64),
			strconv.FormatFloat(float64(r.DCHumidity), 'f', 3, 64),
			strconv.FormatFloat(float64(r.Flow), 'f', 3, 64),
			strconv.FormatFloat(float64(r.InletTemp), 'f', 3, 64),
			strconv.FormatFloat(float64(r.OutletTemp), 'f', 3, 64),
			strconv.FormatFloat(float64(r.Power), 'f', 1, 64),
		}
		if err = cw.Write(row); err != nil {
			return false
		}
		rows++
		metCSVWritten.Inc()
		if rows%csvFlushEvery == 0 {
			cw.Flush()
			if err = cw.Error(); err != nil {
				return false
			}
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("envdb: writing rows: %w", err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("envdb: writing rows: %w", err)
	}
	return nil
}

// ReadCSV reads records in the csvHeader schema into dst. The header must
// match the schema column for column: a reordered or renamed column would
// otherwise silently parse values into the wrong channels.
func ReadCSV(r io.Reader, dst Appender) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("envdb: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return fmt.Errorf("envdb: unexpected header %v", header)
	}
	for i, name := range csvHeader {
		if header[i] != name {
			return fmt.Errorf("envdb: header column %d is %q, want %q", i+1, header[i], name)
		}
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("envdb: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return fmt.Errorf("envdb: line %d: %w", line, err)
		}
		if err := dst.Append(rec); err != nil {
			return fmt.Errorf("envdb: line %d: %w", line, err)
		}
		metCSVRead.Inc()
	}
}

func parseRow(row []string) (sensors.Record, error) {
	var rec sensors.Record
	ts, err := time.Parse(time.RFC3339, row[0])
	if err != nil {
		return rec, fmt.Errorf("bad time %q: %w", row[0], err)
	}
	rack, err := topology.ParseRackID(row[1])
	if err != nil {
		return rec, err
	}
	vals := make([]float64, 6)
	for i := 0; i < 6; i++ {
		v, err := strconv.ParseFloat(row[2+i], 64)
		if err != nil {
			return rec, fmt.Errorf("bad value %q: %w", row[2+i], err)
		}
		vals[i] = v
	}
	rec = sensors.Record{
		Time:          ts,
		Rack:          rack,
		DCTemperature: units.Fahrenheit(vals[0]),
		DCHumidity:    units.RelativeHumidity(vals[1]),
		Flow:          units.GPM(vals[2]),
		InletTemp:     units.Fahrenheit(vals[3]),
		OutletTemp:    units.Fahrenheit(vals[4]),
		Power:         units.Watts(vals[5]),
	}
	return rec, nil
}
