// Package envdb is the environmental database of the digital twin — the
// stand-in for the IBM DB2 environmental database that stored Mira's
// coolant-monitor samples. It provides an append-only, time-ordered store
// with rack/time-range/metric queries, optional downsampling on ingest, and
// CSV import/export so simulated telemetry can be inspected and shared.
package envdb

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"mira/internal/sensors"
	"mira/internal/topology"
	"mira/internal/units"
)

// Store is an in-memory environmental database. It is not safe for
// concurrent use; the simulator feeds it from a single goroutine.
type Store struct {
	// records per rack, in append (time) order.
	records [topology.NumRacks][]sensors.Record

	// Downsample keeps only every Nth sample per rack (0 or 1 = keep all).
	Downsample int
	counter    [topology.NumRacks]int
}

// NewStore creates an empty store keeping every sample.
func NewStore() *Store { return &Store{} }

// NewDownsampledStore creates a store that keeps one of every n samples per
// rack, for bounded-memory multi-year runs.
func NewDownsampledStore(n int) *Store { return &Store{Downsample: n} }

// Append ingests one record. Records must arrive in non-decreasing time
// order per rack; Append returns an error otherwise (the coolant monitor is
// a periodic sampler, so out-of-order data indicates a bug upstream).
func (s *Store) Append(r sensors.Record) error {
	idx := r.Rack.Index()
	if n := len(s.records[idx]); n > 0 && r.Time.Before(s.records[idx][n-1].Time) {
		return fmt.Errorf("envdb: out-of-order record for rack %v: %v before %v",
			r.Rack, r.Time, s.records[idx][n-1].Time)
	}
	s.counter[idx]++
	if s.Downsample > 1 && (s.counter[idx]-1)%s.Downsample != 0 {
		return nil
	}
	s.records[idx] = append(s.records[idx], r)
	return nil
}

// Len returns the number of stored records across all racks.
func (s *Store) Len() int {
	total := 0
	for i := range s.records {
		total += len(s.records[i])
	}
	return total
}

// Query returns the stored records for one rack with timestamps in
// [from, to), in time order.
func (s *Store) Query(rack topology.RackID, from, to time.Time) []sensors.Record {
	recs := s.records[rack.Index()]
	lo := sort.Search(len(recs), func(i int) bool { return !recs[i].Time.Before(from) })
	hi := sort.Search(len(recs), func(i int) bool { return !recs[i].Time.Before(to) })
	out := make([]sensors.Record, hi-lo)
	copy(out, recs[lo:hi])
	return out
}

// Series extracts one metric for one rack over [from, to) as parallel
// times/values slices.
func (s *Store) Series(rack topology.RackID, m sensors.Metric, from, to time.Time) ([]time.Time, []float64) {
	recs := s.Query(rack, from, to)
	times := make([]time.Time, len(recs))
	vals := make([]float64, len(recs))
	for i, r := range recs {
		times[i] = r.Time
		vals[i] = r.Value(m)
	}
	return times, vals
}

// EachRecord visits every stored record (rack-major, time order within
// rack). The callback must not retain the record slice.
func (s *Store) EachRecord(f func(sensors.Record)) {
	for i := range s.records {
		for _, r := range s.records[i] {
			f(r)
		}
	}
}

// csvHeader is the export schema.
var csvHeader = []string{"time", "rack", "dc_temperature_f", "dc_humidity_rh", "coolant_flow_gpm", "inlet_temp_f", "outlet_temp_f", "power_w"}

// ExportCSV writes all records (rack-major) as CSV.
func (s *Store) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("envdb: writing header: %w", err)
	}
	var err error
	s.EachRecord(func(r sensors.Record) {
		if err != nil {
			return
		}
		row := []string{
			r.Time.UTC().Format(time.RFC3339),
			r.Rack.String(),
			strconv.FormatFloat(float64(r.DCTemperature), 'f', 3, 64),
			strconv.FormatFloat(float64(r.DCHumidity), 'f', 3, 64),
			strconv.FormatFloat(float64(r.Flow), 'f', 3, 64),
			strconv.FormatFloat(float64(r.InletTemp), 'f', 3, 64),
			strconv.FormatFloat(float64(r.OutletTemp), 'f', 3, 64),
			strconv.FormatFloat(float64(r.Power), 'f', 1, 64),
		}
		err = cw.Write(row)
	})
	if err != nil {
		return fmt.Errorf("envdb: writing rows: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads records in the ExportCSV schema into the store.
func (s *Store) ImportCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("envdb: reading header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return fmt.Errorf("envdb: unexpected header %v", header)
	}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("envdb: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return fmt.Errorf("envdb: line %d: %w", line, err)
		}
		if err := s.Append(rec); err != nil {
			return fmt.Errorf("envdb: line %d: %w", line, err)
		}
	}
}

func parseRow(row []string) (sensors.Record, error) {
	var rec sensors.Record
	ts, err := time.Parse(time.RFC3339, row[0])
	if err != nil {
		return rec, fmt.Errorf("bad time %q: %w", row[0], err)
	}
	rack, err := topology.ParseRackID(row[1])
	if err != nil {
		return rec, err
	}
	vals := make([]float64, 6)
	for i := 0; i < 6; i++ {
		v, err := strconv.ParseFloat(row[2+i], 64)
		if err != nil {
			return rec, fmt.Errorf("bad value %q: %w", row[2+i], err)
		}
		vals[i] = v
	}
	rec = sensors.Record{
		Time:          ts,
		Rack:          rack,
		DCTemperature: units.Fahrenheit(vals[0]),
		DCHumidity:    units.RelativeHumidity(vals[1]),
		Flow:          units.GPM(vals[2]),
		InletTemp:     units.Fahrenheit(vals[3]),
		OutletTemp:    units.Fahrenheit(vals[4]),
		Power:         units.Watts(vals[5]),
	}
	return rec, nil
}
