package envdb

// Context-aware scan capabilities. The plain DB surface predates request
// tracing; these optional interfaces let a caller thread a
// context.Context — carrying trace spans and per-request scan counters —
// through a scan without changing the base contract. Callers type-assert
// and fall back to the plain methods, so every DB keeps working.
//
// ScanStats lives here (not in tsdb) so the telemetry server can read the
// counters without importing the storage engine.

import (
	"context"
	"sync/atomic"
	"time"

	"mira/internal/sensors"
	"mira/internal/topology"
)

// ScanStats accumulates per-request scan work: rows delivered by the
// merge, blocks decoded, and blocks skipped undecoded by zone-map
// pruning. Counters are atomic — decode workers update them concurrently.
type ScanStats struct {
	Records       atomic.Int64
	BlocksDecoded atomic.Int64
	BlocksPruned  atomic.Int64
}

type scanStatsKey struct{}

// ContextWithScanStats returns a context carrying s; scans started under
// it add their work to the counters.
func ContextWithScanStats(ctx context.Context, s *ScanStats) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, scanStatsKey{}, s)
}

// ScanStatsFrom returns the context's scan counters, or nil.
func ScanStatsFrom(ctx context.Context) *ScanStats {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scanStatsKey{}).(*ScanStats)
	return s
}

// ContextTierScanner is a TierScanner whose merged scan accepts a
// context for tracing and scan accounting.
type ContextTierScanner interface {
	EachRecordMergedTierCtx(ctx context.Context, workers int, f func(sensors.Record, Tier) bool) error
}

// ContextChunkScanner is a ChunkScanner whose chunked scan accepts a
// context for tracing and scan accounting.
type ContextChunkScanner interface {
	EachChunkMergedCtx(ctx context.Context, workers int, f func(*Chunk) bool) error
}

// ContextAggregator is an Aggregator whose pushdown accepts a context
// for tracing.
type ContextAggregator interface {
	AggregateCtx(ctx context.Context, rack topology.RackID, m sensors.Metric, from, to time.Time, window time.Duration) ([]WindowAgg, error)
}
