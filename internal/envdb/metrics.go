package envdb

import "mira/internal/obs"

// CSV interchange counters: rows actually committed (written past the csv
// buffer, or appended into the destination store), so a failed transfer
// shows how far it got.
var (
	metCSVWritten = obs.NewCounter("mira_envdb_csv_rows_written_total",
		"data rows emitted by WriteCSV, excluding the header")
	metCSVRead = obs.NewCounter("mira_envdb_csv_rows_read_total",
		"data rows parsed and appended by ReadCSV")
)
