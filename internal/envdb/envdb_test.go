package envdb

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

func rec(rack topology.RackID, ts time.Time, inlet float64) sensors.Record {
	return sensors.Record{
		Time: ts, Rack: rack,
		DCTemperature: 80, DCHumidity: 32,
		Flow: 26.5, InletTemp: units.Fahrenheit(inlet), OutletTemp: 79,
		Power: units.KW(57),
	}
}

var base = time.Date(2015, 3, 1, 0, 0, 0, 0, timeutil.Chicago)

func TestAppendAndQuery(t *testing.T) {
	s := NewStore()
	r1 := topology.RackID{Row: 0, Col: 1}
	r2 := topology.RackID{Row: 2, Col: 7}
	for i := 0; i < 10; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		if err := s.Append(rec(r1, ts, 64)); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(rec(r2, ts, 65)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 20 {
		t.Errorf("Len = %d, want 20", s.Len())
	}
	got := s.Query(r1, base.Add(2*timeutil.SampleInterval), base.Add(5*timeutil.SampleInterval))
	if len(got) != 3 {
		t.Fatalf("Query returned %d records, want 3", len(got))
	}
	for _, r := range got {
		if r.Rack != r1 {
			t.Errorf("cross-rack contamination: %v", r.Rack)
		}
	}
}

func TestAppendOutOfOrder(t *testing.T) {
	s := NewStore()
	r := topology.RackID{Row: 1, Col: 1}
	if err := s.Append(rec(r, base.Add(time.Hour), 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec(r, base, 64)); err == nil {
		t.Error("out-of-order append should fail")
	}
	// Equal timestamps are fine (re-sampling edge).
	if err := s.Append(rec(r, base.Add(time.Hour), 64)); err != nil {
		t.Errorf("equal-time append should succeed: %v", err)
	}
}

func TestSeries(t *testing.T) {
	s := NewStore()
	r := topology.RackID{Row: 1, Col: 4}
	for i := 0; i < 5; i++ {
		if err := s.Append(rec(r, base.Add(time.Duration(i)*time.Minute), 64+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	times, vals := s.Series(r, sensors.MetricInletTemp, base, base.Add(time.Hour))
	if len(times) != 5 || len(vals) != 5 {
		t.Fatalf("series lengths = %d/%d", len(times), len(vals))
	}
	if vals[0] != 64 || vals[4] != 68 {
		t.Errorf("series values = %v", vals)
	}
}

func TestDownsampling(t *testing.T) {
	s := NewDownsampledStore(3)
	r := topology.RackID{Row: 0, Col: 0}
	for i := 0; i < 9; i++ {
		if err := s.Append(rec(r, base.Add(time.Duration(i)*time.Minute), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Errorf("downsampled Len = %d, want 3", s.Len())
	}
}

func TestEachRecord(t *testing.T) {
	s := NewStore()
	for i, r := range topology.AllRacks() {
		if err := s.Append(rec(r, base, 64+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	s.EachRecord(func(sensors.Record) { count++ })
	if count != topology.NumRacks {
		t.Errorf("EachRecord visited %d, want %d", count, topology.NumRacks)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewStore()
	r1 := topology.RackID{Row: 0, Col: 13}
	r2 := topology.RackID{Row: 1, Col: 8}
	for i := 0; i < 4; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		if err := s.Append(rec(r1, ts, 64.25)); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(rec(r2, ts, 63.75)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(0,D)") || !strings.Contains(out, "(1,8)") {
		t.Errorf("CSV missing rack ids:\n%s", out)
	}

	s2 := NewStore()
	if err := s2.ImportCSV(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() {
		t.Errorf("round-trip Len = %d, want %d", s2.Len(), s.Len())
	}
	got := s2.Query(r1, base, base.Add(time.Hour))
	if len(got) != 4 {
		t.Fatalf("round-trip query = %d records", len(got))
	}
	if float64(got[0].InletTemp) != 64.25 {
		t.Errorf("round-trip inlet = %v", got[0].InletTemp)
	}
	if got[0].Power != units.KW(57) {
		t.Errorf("round-trip power = %v", got[0].Power)
	}
}

func TestImportCSVErrors(t *testing.T) {
	s := NewStore()
	if err := s.ImportCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail on header")
	}
	if err := s.ImportCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("wrong header should fail")
	}
	bad := strings.Join(csvHeader, ",") + "\n2015-01-01T00:00:00Z,(9,9),1,2,3,4,5,6\n"
	if err := s.ImportCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad rack should fail")
	}
	bad2 := strings.Join(csvHeader, ",") + "\nnot-a-time,(0,0),1,2,3,4,5,6\n"
	if err := s.ImportCSV(strings.NewReader(bad2)); err == nil {
		t.Error("bad time should fail")
	}
	bad3 := strings.Join(csvHeader, ",") + "\n2015-01-01T00:00:00Z,(0,0),x,2,3,4,5,6\n"
	if err := s.ImportCSV(strings.NewReader(bad3)); err == nil {
		t.Error("bad value should fail")
	}
}

// TestImportCSVReorderedHeader: a column-reordered CSV must be rejected,
// not silently parsed into the wrong channels.
func TestImportCSVReorderedHeader(t *testing.T) {
	reordered := []string{"time", "rack", "dc_humidity_rh", "dc_temperature_f", "coolant_flow_gpm", "inlet_temp_f", "outlet_temp_f", "power_w"}
	csv := strings.Join(reordered, ",") + "\n2015-01-01T00:00:00Z,(0,0),32.000,80.000,26.500,64.000,79.000,57000.0\n"
	s := NewStore()
	err := s.ImportCSV(strings.NewReader(csv))
	if err == nil {
		t.Fatal("reordered header should fail")
	}
	if !strings.Contains(err.Error(), "dc_temperature_f") {
		t.Errorf("error should name the mismatched column: %v", err)
	}
	// A renamed column fails too.
	renamed := strings.Replace(strings.Join(csvHeader, ","), "power_w", "power_kw", 1)
	if err := s.ImportCSV(strings.NewReader(renamed + "\n")); err == nil {
		t.Error("renamed column should fail")
	}
}

func TestEachRecordUntil(t *testing.T) {
	s := NewStore()
	for i, r := range topology.AllRacks() {
		if err := s.Append(rec(r, base, 64+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	visited := 0
	s.EachRecordUntil(func(sensors.Record) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Errorf("EachRecordUntil visited %d, want 5", visited)
	}
}

// failWriter errors on every write.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// countingVisitor counts how many records WriteCSV pulls from the store.
type countingVisitor struct {
	db      *Store
	visited int
}

func (c *countingVisitor) EachRecordUntil(f func(sensors.Record) bool) {
	c.db.EachRecordUntil(func(r sensors.Record) bool {
		c.visited++
		return f(r)
	})
}

// TestExportCSVEarlyStop: once the writer fails, the export must stop
// visiting records instead of iterating the whole store. The csv.Writer
// buffers ~4 KiB, so the error surfaces after a few dozen rows — far fewer
// than the thousands stored.
func TestExportCSVEarlyStop(t *testing.T) {
	s := NewStore()
	r := topology.RackID{Row: 0, Col: 2}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := s.Append(rec(r, base.Add(time.Duration(i)*timeutil.SampleInterval), 64)); err != nil {
			t.Fatal(err)
		}
	}
	cv := &countingVisitor{db: s}
	err := WriteCSV(failWriter{}, cv)
	if err == nil {
		t.Fatal("export to a failing writer should error")
	}
	if cv.visited >= n {
		t.Errorf("export visited all %d records despite the write error", cv.visited)
	}
	if cv.visited == 0 {
		t.Error("export visited no records (buffered writer should accept some rows first)")
	}
}

func TestQueryEmptyRange(t *testing.T) {
	s := NewStore()
	r := topology.RackID{Row: 0, Col: 5}
	if err := s.Append(rec(r, base, 64)); err != nil {
		t.Fatal(err)
	}
	if got := s.Query(r, base.Add(time.Hour), base.Add(2*time.Hour)); len(got) != 0 {
		t.Errorf("empty-range query returned %d records", len(got))
	}
	// Unqueried rack: empty, not nil panic.
	if got := s.Query(topology.RackID{Row: 2, Col: 2}, base, base.Add(time.Hour)); len(got) != 0 {
		t.Errorf("unknown rack query returned %d records", len(got))
	}
}

// TestDownsampleWatermark: the out-of-order watermark must advance on
// skipped samples too. With the watermark only tracking retained records, a
// record older than a skipped sample slipped in and broke time order.
func TestDownsampleWatermark(t *testing.T) {
	s := NewDownsampledStore(3)
	r := topology.RackID{Row: 0, Col: 2}
	if err := s.Append(rec(r, base, 64)); err != nil { // kept
		t.Fatal(err)
	}
	if err := s.Append(rec(r, base.Add(2*time.Minute), 64)); err != nil { // skipped
		t.Fatal(err)
	}
	if err := s.Append(rec(r, base.Add(time.Minute), 64)); err == nil {
		t.Error("append behind a downsample-skipped sample should fail")
	}
}

// failAfterWriter accepts the first n bytes, then errors.
type failAfterWriter struct {
	n int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriteCSVStopsOnWriteError: csv.Writer only surfaces underlying write
// errors at Flush, so WriteCSV must flush periodically and abort the scan —
// not walk every remaining record after the destination is dead.
func TestWriteCSVStopsOnWriteError(t *testing.T) {
	s := NewStore()
	r := topology.RackID{Row: 1, Col: 3}
	const n = 2*csvFlushEvery + 5000
	for i := 0; i < n; i++ {
		if err := s.Append(rec(r, base.Add(time.Duration(i)*time.Second), 64)); err != nil {
			t.Fatal(err)
		}
	}
	cv := &countingVisitor{db: s}
	err := WriteCSV(&failAfterWriter{n: 256}, cv)
	if err == nil {
		t.Fatal("WriteCSV on a failing writer should error")
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Errorf("error %v does not wrap the underlying write error", err)
	}
	if cv.visited > csvFlushEvery {
		t.Errorf("visited %d records after the writer died, want <= %d", cv.visited, csvFlushEvery)
	}
	if cv.visited == n {
		t.Error("scan walked the entire store despite a dead writer")
	}
}

// TestEachRecordMerged: the slice store's ShardScanner must yield the
// whole store in global time order with rack-index tie-breaking, matching
// the contract of the compressed store's parallel scanner.
func TestEachRecordMerged(t *testing.T) {
	s := NewStore()
	racks := []topology.RackID{{Row: 2, Col: 14}, {Row: 0, Col: 3}, {Row: 1, Col: 9}}
	const ticks = 50
	for i := 0; i < ticks; i++ {
		ts := base.Add(time.Duration(i) * timeutil.SampleInterval)
		for j, r := range racks {
			// Stagger appends so per-rack slices interleave in time.
			if i%len(racks) == j {
				continue
			}
			if err := s.Append(rec(r, ts, 64)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var prevT int64
	prevRack := -1
	n := 0
	if err := s.EachRecordMerged(7, func(r sensors.Record) bool {
		k := r.Time.UnixNano()
		if n > 0 && (k < prevT || (k == prevT && r.Rack.Index() <= prevRack)) {
			t.Fatalf("order violation at record %d: (%d,%d) after (%d,%d)", n, k, r.Rack.Index(), prevT, prevRack)
		}
		prevT, prevRack = k, r.Rack.Index()
		n++
		return true
	}); err != nil {
		t.Fatalf("EachRecordMerged: %v", err)
	}
	if n != s.Len() {
		t.Fatalf("visited %d records, want %d", n, s.Len())
	}

	// Early stop.
	n = 0
	if err := s.EachRecordMerged(1, func(sensors.Record) bool { n++; return n < 10 }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("early stop visited %d, want 10", n)
	}
}
