package scheduler

import (
	"testing"
	"time"

	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/workload"
)

// mkJob builds a simple test job.
func mkJob(id int64, q workload.Queue, midplanes int, walltime time.Duration) workload.Job {
	return workload.Job{
		ID: id, Queue: q, Midplanes: midplanes, Walltime: walltime,
		Intensity: 1.0, AffinityCol: -1,
	}
}

// aTuesday returns a quiet (non-maintenance) start time.
func aTuesday() time.Time {
	return time.Date(2015, 6, 2, 0, 0, 0, 0, timeutil.Chicago)
}

func TestPlaceAndComplete(t *testing.T) {
	s := New(Config{Seed: 1})
	now := aTuesday()
	s.Submit([]workload.Job{mkJob(1, workload.ProdShort, 4, 2*time.Hour)})
	s.Step(now)
	if got := s.SystemUtilization(now); got != 4.0/96.0 {
		t.Errorf("utilization = %v, want %v", got, 4.0/96.0)
	}
	if s.Stats().Started != 1 {
		t.Errorf("started = %d", s.Stats().Started)
	}
	// After walltime the job completes.
	later := now.Add(3 * time.Hour)
	s.Step(later)
	if got := s.SystemUtilization(later); got != 0 {
		t.Errorf("post-completion utilization = %v", got)
	}
	if s.Stats().Completed != 1 {
		t.Errorf("completed = %d", s.Stats().Completed)
	}
}

func TestProdLongPrefersRow0(t *testing.T) {
	s := New(Config{Seed: 2})
	now := aTuesday()
	// 20 prod-long jobs of 2 midplanes = 40 midplanes demanded; row 0 holds
	// 32, the remaining 8 spill onto the other rows.
	var jobs []workload.Job
	for i := int64(1); i <= 20; i++ {
		jobs = append(jobs, mkJob(i, workload.ProdLong, 2, 4*time.Hour))
	}
	s.Submit(jobs)
	s.Step(now)
	// Row 0 saturated first.
	for _, r := range topology.RowRacks(0) {
		if u := s.RackUtilization(r, now); u != 1 {
			t.Errorf("row-0 rack %v utilization = %v, want 1", r, u)
		}
	}
	spilled := 0.0
	for row := 1; row < 3; row++ {
		for _, r := range topology.RowRacks(row) {
			spilled += s.RackUtilization(r, now) * topology.MidplanesPerRack
		}
	}
	if spilled != 8 {
		t.Errorf("spilled midplanes = %v, want 8", spilled)
	}
	if s.QueueDepth() != 0 {
		t.Errorf("queue depth = %d, want 0", s.QueueDepth())
	}
}

func TestOrdinaryJobsFillWholeMachine(t *testing.T) {
	s := New(Config{Seed: 3})
	now := aTuesday()
	// 96 midplanes of ordinary work fills the machine.
	var jobs []workload.Job
	for i := int64(1); i <= 24; i++ {
		jobs = append(jobs, mkJob(i, workload.ProdShort, 4, 4*time.Hour))
	}
	s.Submit(jobs)
	s.Step(now)
	if u := s.SystemUtilization(now); u != 1 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestAffinityPlacement(t *testing.T) {
	s := New(Config{Seed: 4})
	now := aTuesday()
	j := mkJob(1, workload.ProdShort, 6, 4*time.Hour)
	j.AffinityCol = 0xB
	s.Submit([]workload.Job{j})
	s.Step(now)
	// All six midplanes should land on column B racks (3 racks × 2), with
	// the habitual target (0,B) covered first.
	for row := 0; row < 3; row++ {
		r := topology.RackID{Row: row, Col: 0xB}
		if u := s.RackUtilization(r, now); u != 1 {
			t.Errorf("affinity rack %v utilization = %v, want 1", r, u)
		}
	}
}

func TestCapabilityHeadBlocksQueue(t *testing.T) {
	// A negative base disables backfilling outright (0 would mean "use the
	// default").
	s := New(Config{Seed: 5, BackfillBase: -10, BackfillGrowthPerYear: 0.0001})
	now := aTuesday()
	// Fill half the machine with long jobs.
	var fill []workload.Job
	for i := int64(1); i <= 12; i++ {
		fill = append(fill, mkJob(i, workload.ProdShort, 4, 10*time.Hour))
	}
	s.Submit(fill)
	s.Step(now)
	// Now a full-machine capability job heads the queue, followed by small jobs.
	s.Submit([]workload.Job{mkJob(100, workload.ProdCapability, 96, 2*time.Hour)})
	s.Submit([]workload.Job{mkJob(101, workload.ProdShort, 1, time.Hour)})
	now = now.Add(timeutil.SampleInterval)
	s.Step(now)
	// With backfill ≈ 0, the small job must wait behind the capability job.
	if s.Stats().Started != 12 {
		t.Errorf("started = %d, want 12 (capability drains, small blocked)", s.Stats().Started)
	}
}

func TestBackfillFillsHoles(t *testing.T) {
	s := New(Config{Seed: 6, BackfillBase: 0.98})
	now := aTuesday()
	// Fill part of the machine so the capability job cannot start.
	s.Submit([]workload.Job{mkJob(1, workload.ProdShort, 4, 8*time.Hour)})
	s.Step(now)
	// A full-machine job heads the queue (drain begins), followed by a
	// short job that ends before the drain completes.
	now = now.Add(timeutil.SampleInterval)
	s.Submit([]workload.Job{
		mkJob(100, workload.ProdCapability, 96, 2*time.Hour),
		mkJob(101, workload.ProdShort, 2, time.Hour),    // ends before shadow
		mkJob(102, workload.ProdShort, 2, 48*time.Hour), // would delay the head
	})
	s.Step(now)
	// Job 101 should backfill; job 102 must not (it would delay the head,
	// and the head needs every slot).
	if got := s.SystemUtilization(now); got != 6.0/96.0 {
		t.Errorf("utilization = %v, want %v (jobs 1+101 only)", got, 6.0/96.0)
	}
	if s.Stats().Started != 2 {
		t.Errorf("started = %d, want 2", s.Stats().Started)
	}
}

func TestMaintenanceMonday(t *testing.T) {
	s := New(Config{Seed: 7, MaintenanceEvery: 1, ServiceFraction: 0.25})
	// Saturate the machine on Sunday.
	now := time.Date(2015, 6, 7, 0, 0, 0, 0, timeutil.Chicago) // Sunday
	var jobs []workload.Job
	for i := int64(1); i <= 24; i++ {
		jobs = append(jobs, mkJob(i, workload.ProdShort, 4, 48*time.Hour))
	}
	s.Submit(jobs)
	s.Step(now)
	if u := s.SystemUtilization(now); u != 1 {
		t.Fatalf("pre-maintenance utilization = %v, want 1", u)
	}
	// Monday 10 AM: in maintenance.
	mon := time.Date(2015, 6, 8, 10, 0, 0, 0, timeutil.Chicago)
	s.Step(mon)
	util := s.SystemUtilization(mon)
	// Burners keep most midplanes busy; the service fraction is down.
	if util < 0.55 || util > 0.9 {
		t.Errorf("maintenance utilization = %v, want ≈0.75", util)
	}
	if s.Stats().Killed == 0 {
		t.Error("maintenance should kill running user jobs")
	}
	// All busy midplanes should be burners at low intensity.
	snap := s.Snapshot(mon)
	for i, mp := range snap {
		if mp.State == Busy {
			t.Errorf("midplane %d running user job during maintenance", i)
		}
		if mp.State == Burning && mp.Intensity != workload.BurnerIntensity {
			t.Errorf("burner intensity = %v", mp.Intensity)
		}
	}
	// Tuesday: window over, machine accepts jobs again.
	tue := time.Date(2015, 6, 9, 12, 0, 0, 0, timeutil.Chicago)
	s.Step(tue)
	s.Submit([]workload.Job{mkJob(100, workload.ProdShort, 4, time.Hour)})
	s.Step(tue.Add(timeutil.SampleInterval))
	if s.Stats().Started != 25 {
		t.Errorf("started = %d, want 25", s.Stats().Started)
	}
}

func TestFailRacksKillsJobsAndTakesRacksDown(t *testing.T) {
	s := New(Config{Seed: 8})
	now := aTuesday()
	var jobs []workload.Job
	for i := int64(1); i <= 24; i++ {
		jobs = append(jobs, mkJob(i, workload.ProdShort, 4, 10*time.Hour))
	}
	s.Submit(jobs)
	s.Step(now)
	victim := topology.RackID{Row: 1, Col: 3}
	until := now.Add(6 * time.Hour)
	killed := s.FailRacks([]topology.RackID{victim}, until)
	if killed == 0 {
		t.Error("failing a busy rack should kill jobs")
	}
	if !s.RackDown(victim, now.Add(time.Hour)) {
		t.Error("rack should be down after failure")
	}
	if s.RackDown(victim, until.Add(time.Hour)) {
		t.Error("rack should recover after the outage window")
	}
	if u := s.RackUtilization(victim, now.Add(time.Hour)); u != 0 {
		t.Errorf("failed rack utilization = %v", u)
	}
	// Down midplanes are reported Down in the snapshot.
	snap := s.Snapshot(now.Add(time.Hour))
	base := victim.Index() * topology.MidplanesPerRack
	if snap[base].State != Down || snap[base+1].State != Down {
		t.Error("snapshot should show rack Down")
	}
}

func TestMultiRackJobKilledOnce(t *testing.T) {
	s := New(Config{Seed: 9})
	now := aTuesday()
	// One 8-midplane job spans racks; failing one rack kills the whole job.
	s.Submit([]workload.Job{mkJob(1, workload.ProdShort, 8, 10*time.Hour)})
	s.Step(now)
	// Find a rack the job landed on.
	var rack topology.RackID
	found := false
	for _, r := range topology.AllRacks() {
		if s.RackUtilization(r, now) > 0 {
			rack = r
			found = true
			break
		}
	}
	if !found {
		t.Fatal("job not placed")
	}
	killed := s.FailRacks([]topology.RackID{rack}, now.Add(6*time.Hour))
	if killed != 1 {
		t.Errorf("killed = %d, want 1", killed)
	}
	// The job is gone everywhere, not just on the failed rack.
	if u := s.SystemUtilization(now); u != 0 {
		t.Errorf("utilization after kill = %v", u)
	}
}

func TestQueueLimitRejects(t *testing.T) {
	s := New(Config{Seed: 10, QueueLimit: 5})
	var jobs []workload.Job
	for i := int64(1); i <= 10; i++ {
		jobs = append(jobs, mkJob(i, workload.ProdCapability, 96, time.Hour))
	}
	s.Submit(jobs)
	if s.QueueDepth() != 5 {
		t.Errorf("queue depth = %d, want 5", s.QueueDepth())
	}
	if s.Stats().Rejected != 5 {
		t.Errorf("rejected = %d, want 5", s.Stats().Rejected)
	}
}

func TestUtilizationCalibration(t *testing.T) {
	// Drive the scheduler with the real workload generator for two months in
	// 2014 and two in 2019; mean utilization should bracket the paper's
	// 80% → 93% growth. This is the load-bearing calibration behind Fig. 2.
	if testing.Short() {
		t.Skip("calibration run skipped in -short mode")
	}
	run := func(start time.Time, seed int64) float64 {
		gen := workload.NewGenerator(seed)
		s := New(Config{Seed: seed})
		var util, n float64
		step := 2 * timeutil.SampleInterval
		for now, end := start, start.Add(60*24*time.Hour); now.Before(end); now = now.Add(step) {
			s.Submit(gen.Arrivals(now, step))
			s.Step(now)
			util += s.SystemUtilization(now)
			n++
		}
		return util / n
	}
	early := run(time.Date(2014, 3, 1, 0, 0, 0, 0, timeutil.Chicago), 11)
	late := run(time.Date(2019, 3, 1, 0, 0, 0, 0, timeutil.Chicago), 12)
	if early < 0.72 || early > 0.88 {
		t.Errorf("2014 utilization = %v, want ≈0.80", early)
	}
	if late < 0.86 || late > 0.97 {
		t.Errorf("2019 utilization = %v, want ≈0.93", late)
	}
	if late <= early {
		t.Errorf("utilization should grow: %v -> %v", early, late)
	}
}

func TestQueueStatsAccounting(t *testing.T) {
	gen := workload.NewGenerator(20)
	s := New(Config{Seed: 20})
	now := aTuesday()
	for i := 0; i < 2000; i++ { // ~one week
		s.Submit(gen.Arrivals(now, timeutil.SampleInterval))
		s.Step(now)
		now = now.Add(timeutil.SampleInterval)
	}
	short := s.QueueStatsFor(workload.ProdShort)
	long := s.QueueStatsFor(workload.ProdLong)
	if short.Started == 0 || long.Started == 0 {
		t.Fatalf("queues should have started jobs: short=%d long=%d", short.Started, long.Started)
	}
	if short.MeanWaitHours() < 0 || long.MeanWaitHours() < 0 {
		t.Error("negative wait times")
	}
	// Requested walltimes respect the generator's distributions.
	if long.MeanRunHours() <= short.MeanRunHours() {
		t.Errorf("prod-long mean walltime (%v) should exceed prod-short (%v)",
			long.MeanRunHours(), short.MeanRunHours())
	}
	if short.MidplaneHours <= 0 || long.MidplaneHours <= 0 {
		t.Error("midplane-hours should accumulate")
	}
	// Totals agree with the Started counter.
	cap := s.QueueStatsFor(workload.ProdCapability)
	if short.Started+long.Started+cap.Started != s.Stats().Started {
		t.Errorf("per-queue starts %d+%d+%d != total %d",
			short.Started, long.Started, cap.Started, s.Stats().Started)
	}
}

func TestSchedulerInvariants(t *testing.T) {
	// Drive the scheduler with a random mixed workload and check structural
	// invariants every tick: busy midplanes never exceed capacity, a
	// running job occupies exactly its requested midplanes, and utilization
	// stays in [0, 1].
	gen := workload.NewGenerator(30)
	s := New(Config{Seed: 30})
	now := aTuesday()
	for tick := 0; tick < 3000; tick++ {
		s.Submit(gen.Arrivals(now, timeutil.SampleInterval))
		s.Step(now)

		if u := s.SystemUtilization(now); u < 0 || u > 1 {
			t.Fatalf("tick %d: utilization %v out of [0,1]", tick, u)
		}
		snap := s.Snapshot(now)
		if len(snap) != topology.NumMidplanes {
			t.Fatalf("snapshot size %d", len(snap))
		}
		perJob := make(map[int64]int)
		busy := 0
		for i, mp := range snap {
			switch mp.State {
			case Busy:
				busy++
				if mp.Intensity < 0.5 || mp.Intensity > 1.5 {
					t.Fatalf("tick %d midplane %d: intensity %v", tick, i, mp.Intensity)
				}
				perJob[s.slots[i].jobID]++
			case Burning:
				busy++
			}
		}
		if busy > topology.NumMidplanes {
			t.Fatalf("tick %d: %d busy midplanes", tick, busy)
		}
		// Occasionally fail a random rack and confirm cleanup.
		if tick%977 == 500 {
			victim := topology.RackByIndex(tick % topology.NumRacks)
			s.FailRacks([]topology.RackID{victim}, now.Add(2*time.Hour))
			if u := s.RackUtilization(victim, now); u != 0 {
				t.Fatalf("failed rack %v still busy: %v", victim, u)
			}
		}
		now = now.Add(timeutil.SampleInterval)
	}
	// Conservation: started jobs are either completed, killed, or running.
	st := s.Stats()
	running := make(map[int64]bool)
	for i := range s.slots {
		if s.slots[i].jobID > 0 && s.slots[i].busyUntil.After(now) {
			running[s.slots[i].jobID] = true
		}
	}
	if st.Completed+st.Killed+int64(len(running)) < st.Started {
		t.Errorf("job conservation violated: started=%d completed=%d killed=%d running=%d",
			st.Started, st.Completed, st.Killed, len(running))
	}
}

func TestAvoidSteersPlacement(t *testing.T) {
	s := New(Config{Seed: 40})
	now := aTuesday()
	victim := topology.RackID{Row: 1, Col: 6}
	s.Avoid(victim, now.Add(6*time.Hour))
	// Offer less work than the machine holds: the flagged rack must stay
	// empty while alternatives exist.
	var jobs []workload.Job
	for i := int64(1); i <= 20; i++ {
		jobs = append(jobs, mkJob(i, workload.ProdShort, 4, 4*time.Hour))
	}
	s.Submit(jobs)
	s.Step(now)
	if u := s.RackUtilization(victim, now); u != 0 {
		t.Errorf("avoided rack utilization = %v, want 0", u)
	}
	if s.SystemUtilization(now) < 0.8 {
		t.Error("other racks should absorb the work")
	}
	// When the machine is otherwise full, the flagged rack is still usable
	// (soft avoid, not a hard drain).
	s2 := New(Config{Seed: 41})
	s2.Avoid(victim, now.Add(6*time.Hour))
	var fill []workload.Job
	for i := int64(1); i <= 24; i++ {
		fill = append(fill, mkJob(i, workload.ProdShort, 4, 4*time.Hour))
	}
	s2.Submit(fill)
	s2.Step(now)
	if u := s2.SystemUtilization(now); u != 1 {
		t.Errorf("soft avoid must not strand capacity: utilization %v", u)
	}
	// After the deadline the rack is ordinary again.
	later := now.Add(7 * time.Hour)
	s.Step(later)
	s.Submit([]workload.Job{func() workload.Job {
		j := mkJob(100, workload.ProdShort, 6, time.Hour)
		j.AffinityCol = victim.Col
		return j
	}()})
	s.Step(later.Add(timeutil.SampleInterval))
	if u := s.RackUtilization(victim, later.Add(timeutil.SampleInterval)); u == 0 {
		t.Error("expired avoid flag should allow placement again")
	}
}
