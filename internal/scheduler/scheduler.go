// Package scheduler simulates Mira's Cobalt-style job scheduler at midplane
// granularity: FIFO dispatch with probabilistic backfilling, prod-long jobs
// pinned to row 0, capability-job drains, project reservations that go
// partially unused, Monday maintenance windows with burner jobs, and
// rack-failure integration (failed racks kill their jobs and stay down).
//
// The scheduler is the mechanism behind the paper's utilization findings:
// the 80%→93% multi-year growth, the INCITE/ALCC monthly profile, the
// Monday dip, row 0's elevated utilization, and the column hotspots.
package scheduler

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/workload"
)

// MidplaneState describes what a midplane is doing for power modeling.
type MidplaneState int

const (
	// Idle: powered on, no job.
	Idle MidplaneState = iota
	// Busy: running a production job.
	Busy
	// Burning: running a maintenance burner job.
	Burning
	// Down: powered off (rack failure or being serviced).
	Down
)

// slot is the state of one midplane.
type slot struct {
	busyUntil     time.Time
	intensity     float64
	burner        bool
	jobID         int64
	reservedUntil time.Time
	downUntil     time.Time
}

// Config holds the tunable scheduler parameters. The zero value is replaced
// by defaults in New.
type Config struct {
	// Seed drives all stochastic decisions.
	Seed int64
	// BackfillBase is the per-attempt probability that a hole can be
	// backfilled at the start of production (default 0.30).
	BackfillBase float64
	// BackfillGrowthPerYear is the annual improvement of backfilling
	// (default 0.06), reflecting scheduler and policy refinements.
	BackfillGrowthPerYear float64
	// MaintenanceEvery is the Monday cadence of maintenance (default 2 =
	// every other Monday).
	MaintenanceEvery int
	// ServiceFraction is the fraction of midplanes powered off for service
	// during maintenance (default 0.25); the rest run burner jobs.
	ServiceFraction float64
	// ReservationMeanDays is the mean gap between project reservations that
	// hold midplanes idle (default 10).
	ReservationMeanDays float64
	// QueueLimit caps the backlog; beyond it, arriving jobs are rejected
	// (users throttle themselves on a saturated machine). Default 400.
	QueueLimit int
}

func (c Config) withDefaults() Config {
	if c.BackfillBase == 0 {
		c.BackfillBase = 0.30
	}
	if c.BackfillGrowthPerYear == 0 {
		c.BackfillGrowthPerYear = 0.06
	}
	if c.MaintenanceEvery == 0 {
		c.MaintenanceEvery = 2
	}
	if c.ServiceFraction == 0 {
		c.ServiceFraction = 0.25
	}
	if c.ReservationMeanDays == 0 {
		c.ReservationMeanDays = 10
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 400
	}
	return c
}

// Scheduler is the midplane-granular scheduler simulator.
type Scheduler struct {
	cfg   Config
	rng   *rand.Rand
	slots [topology.NumMidplanes]slot
	queue []workload.Job
	cal   timeutil.MaintenanceCalendar

	inMaintenance  bool
	maintenanceEnd time.Time

	// perm is the tick's placement visit order: a popularity-weighted
	// shuffle, so user demand concentrates on some racks without any
	// index-order artifact.
	perm []int
	// avoidUntil implements CMF-aware scheduling: placement treats a
	// flagged rack's midplanes as a last resort until the deadline passes.
	avoidUntil [topology.NumMidplanes]time.Time
	// popularity is the per-midplane placement weight (users habitually
	// target certain racks, creating the paper's utilization spread).
	popularity [topology.NumMidplanes]float64

	// Counters.
	started   int64
	killed    int64
	rejected  int64
	completed int64

	// Per-queue accounting.
	queueStats [3]QueueStats
}

// QueueStats accumulates per-queue scheduling statistics.
type QueueStats struct {
	Started       int64
	WaitHoursSum  float64
	RunHoursSum   float64
	MidplaneHours float64
}

// MeanWaitHours returns the mean queue wait of started jobs.
func (q QueueStats) MeanWaitHours() float64 {
	if q.Started == 0 {
		return 0
	}
	return q.WaitHoursSum / float64(q.Started)
}

// MeanRunHours returns the mean requested walltime of started jobs.
func (q QueueStats) MeanRunHours() float64 {
	if q.Started == 0 {
		return 0
	}
	return q.RunHoursSum / float64(q.Started)
}

// New creates a scheduler.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cal: timeutil.MaintenanceCalendar{Every: cfg.MaintenanceEvery},
	}
	for rack := 0; rack < topology.NumRacks; rack++ {
		w := math.Exp(s.rng.NormFloat64() * 0.65)
		if w < 0.35 {
			w = 0.35
		}
		if w > 2.2 {
			w = 2.2
		}
		for m := 0; m < topology.MidplanesPerRack; m++ {
			s.popularity[rack*topology.MidplanesPerRack+m] = w
		}
	}
	// Rack (0,A) was the single most-targeted rack on Mira (paper Fig. 6b).
	base := topology.BusyRack.Index() * topology.MidplanesPerRack
	s.popularity[base] = 3.4
	s.popularity[base+1] = 3.4
	return s
}

// Submit adds jobs to the queue, rejecting beyond the backlog limit.
func (s *Scheduler) Submit(jobs []workload.Job) {
	for _, j := range jobs {
		if len(s.queue) >= s.cfg.QueueLimit {
			s.rejected++
			continue
		}
		s.queue = append(s.queue, j)
	}
}

// QueueDepth returns the number of queued jobs.
func (s *Scheduler) QueueDepth() int { return len(s.queue) }

// Stats reports cumulative scheduler counters.
type Stats struct {
	Started, Killed, Rejected, Completed int64
}

// Stats returns the cumulative counters.
func (s *Scheduler) Stats() Stats {
	return Stats{Started: s.started, Killed: s.killed, Rejected: s.rejected, Completed: s.completed}
}

// Step advances the scheduler to time now: completes finished jobs, handles
// maintenance transitions, starts reservations, and dispatches queued jobs.
func (s *Scheduler) Step(now time.Time) {
	s.perm = s.weightedOrder()
	s.complete(now)
	s.handleMaintenance(now)
	s.maybeReserve(now)
	if !s.inMaintenance {
		s.dispatch(now)
	} else {
		s.refreshBurners(now)
	}
}

// weightedOrder draws a popularity-weighted random permutation of the
// midplanes (Efraimidis-Spirakis sampling: sort by u^(1/w) descending).
func (s *Scheduler) weightedOrder() []int {
	type keyed struct {
		idx int
		key float64
	}
	ks := make([]keyed, topology.NumMidplanes)
	for i := range ks {
		ks[i] = keyed{idx: i, key: math.Pow(s.rng.Float64(), 1/s.popularity[i])}
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a].key > ks[b].key })
	out := make([]int, len(ks))
	for i, k := range ks {
		out[i] = k.idx
	}
	return out
}

// complete frees slots whose jobs have finished.
func (s *Scheduler) complete(now time.Time) {
	var done map[int64]bool
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.busyUntil.IsZero() || sl.busyUntil.After(now) {
			continue
		}
		if !sl.burner && sl.jobID != 0 {
			if done == nil {
				done = make(map[int64]bool)
			}
			if !done[sl.jobID] {
				done[sl.jobID] = true
				s.completed++
			}
		}
		sl.busyUntil = time.Time{}
		sl.jobID = 0
		sl.burner = false
		sl.intensity = 0
	}
}

// handleMaintenance enters and leaves Monday maintenance windows.
func (s *Scheduler) handleMaintenance(now time.Time) {
	inWindow := s.cal.InMaintenance(now)
	switch {
	case inWindow && !s.inMaintenance:
		s.inMaintenance = true
		// Find the window end by scanning forward at sample granularity.
		end := now
		for s.cal.InMaintenance(end) {
			end = end.Add(timeutil.SampleInterval)
		}
		s.maintenanceEnd = end
		// Drain: kill all user jobs.
		for i := range s.slots {
			sl := &s.slots[i]
			if sl.busyUntil.After(now) && !sl.burner {
				s.killSlot(i)
			}
		}
		// Power off a service subset; burners cover the rest.
		for i := range s.slots {
			if s.rng.Float64() < s.cfg.ServiceFraction {
				s.slots[i].downUntil = laterOf(s.slots[i].downUntil, s.maintenanceEnd)
			}
		}
		s.refreshBurners(now)
	case !inWindow && s.inMaintenance:
		s.inMaintenance = false
		// Burners end with the window via busyUntil; nothing else to do.
	}
}

// refreshBurners starts burner jobs on every available midplane during
// maintenance, keeping otherwise-idle racks warm (the paper: cold inlet
// coolant can damage inactive CPUs).
func (s *Scheduler) refreshBurners(now time.Time) {
	for i := range s.slots {
		sl := &s.slots[i]
		if s.slotAvailable(sl, now) {
			sl.busyUntil = s.maintenanceEnd
			sl.burner = true
			sl.jobID = -1
			sl.intensity = workload.BurnerIntensity
		}
	}
}

// maybeReserve occasionally reserves a block of midplanes that a project
// then leaves (partially) unused — one of the paper's sources of transient
// utilization drops.
func (s *Scheduler) maybeReserve(now time.Time) {
	perTick := timeutil.SampleInterval.Hours() / (s.cfg.ReservationMeanDays * 24)
	if s.rng.Float64() >= perTick {
		return
	}
	count := 8 + s.rng.Intn(17) // 8–24 midplanes
	hold := time.Duration(6+s.rng.Intn(13)) * time.Hour
	until := now.Add(hold)
	reserved := 0
	for _, i := range s.rng.Perm(topology.NumMidplanes) {
		if reserved >= count {
			break
		}
		sl := &s.slots[i]
		if s.slotAvailable(sl, now) {
			sl.reservedUntil = until
			reserved++
		}
	}
}

// slotAvailable reports whether a midplane can accept work at now.
func (s *Scheduler) slotAvailable(sl *slot, now time.Time) bool {
	return !sl.busyUntil.After(now) && !sl.reservedUntil.After(now) && !sl.downUntil.After(now)
}

// backfillProb returns the probability that a hole can be filled by an
// out-of-order job at time t; it improves over the production years.
func (s *Scheduler) backfillProb(t time.Time) float64 {
	years := t.Sub(timeutil.ProductionStart).Hours() / (365.25 * 24)
	p := s.cfg.BackfillBase + s.cfg.BackfillGrowthPerYear*years
	return math.Min(p, 0.98)
}

// dispatch places queued jobs with EASY backfilling: strict FIFO for the
// head job (a capability job at the head drains the machine behind a shadow
// reservation), and out-of-order starts for later jobs only when they finish
// before the head's projected start, so the head cannot starve.
func (s *Scheduler) dispatch(now time.Time) {
	for len(s.queue) > 0 {
		if !s.tryPlace(&s.queue[0], now, nil) {
			break
		}
		s.queue = s.queue[1:]
	}
	if len(s.queue) <= 1 {
		return
	}
	shadow, shadowSlots := s.shadow(&s.queue[0], now)
	// Backfill pass over a bounded scan window.
	p := s.backfillProb(now)
	scan := s.queue[1:]
	if len(scan) > 150 {
		scan = scan[:150]
	}
	kept := make([]workload.Job, 0, len(s.queue))
	kept = append(kept, s.queue[0])
	for i := range scan {
		j := &scan[i]
		// EASY rule: a backfilled job must not delay the head. Jobs ending
		// before the head's projected start may use any slot; longer jobs
		// must avoid the slots the head is waiting on.
		var banned map[int]bool
		if !now.Add(j.Walltime).Before(shadow) {
			banned = shadowSlots
		}
		if s.rng.Float64() < p && s.tryPlace(j, now, banned) {
			continue
		}
		// Keep scanning: later, smaller jobs may still fit this tick.
		kept = append(kept, *j)
	}
	s.queue = append(kept, s.queue[1+len(scan):]...)
}

// shadow estimates when the head job will be able to start — the moment its
// Midplanes-th eligible slot becomes free, assuming no further arrivals —
// and which slots it is waiting on (the earliest-free ones).
func (s *Scheduler) shadow(j *workload.Job, now time.Time) (time.Time, map[int]bool) {
	eligible := s.eligibleSlots(j)
	if len(eligible) < j.Midplanes {
		// The job can never run; let backfill proceed unrestricted.
		return now.Add(365 * 24 * time.Hour), nil
	}
	type freeSlot struct {
		idx  int
		free time.Time
	}
	frees := make([]freeSlot, 0, len(eligible))
	for _, i := range eligible {
		sl := &s.slots[i]
		free := now
		for _, t := range []time.Time{sl.busyUntil, sl.reservedUntil, sl.downUntil} {
			if t.After(free) {
				free = t
			}
		}
		frees = append(frees, freeSlot{idx: i, free: free})
	}
	sort.Slice(frees, func(a, b int) bool { return frees[a].free.Before(frees[b].free) })
	slots := make(map[int]bool, j.Midplanes)
	for _, f := range frees[:j.Midplanes] {
		slots[f.idx] = true
	}
	return frees[j.Midplanes-1].free, slots
}

// eligibleSlots returns every slot index the job's placement policy allows,
// regardless of current availability. All queues may ultimately use any
// midplane (prod-long merely prefers row 0).
func (s *Scheduler) eligibleSlots(j *workload.Job) []int {
	out := make([]int, topology.NumMidplanes)
	for i := range out {
		out[i] = i
	}
	return out
}

// tryPlace attempts to start the job now, honoring queue placement policy
// and avoiding banned slots (the head job's shadow reservation). It returns
// true when the job was started.
func (s *Scheduler) tryPlace(j *workload.Job, now time.Time, banned map[int]bool) bool {
	candidates := s.candidateSlots(j, now)
	if len(banned) > 0 {
		filtered := candidates[:0]
		for _, i := range candidates {
			if !banned[i] {
				filtered = append(filtered, i)
			}
		}
		candidates = filtered
	}
	// CMF-aware scheduling: demote flagged midplanes to a last resort.
	clear := make([]int, 0, len(candidates))
	var flagged []int
	for _, i := range candidates {
		if s.avoided(i, now) {
			flagged = append(flagged, i)
		} else {
			clear = append(clear, i)
		}
	}
	if len(clear) >= j.Midplanes {
		candidates = clear
	} else {
		candidates = append(clear, flagged...)
	}
	if len(candidates) < j.Midplanes {
		return false
	}
	end := now.Add(j.Walltime)
	for _, i := range candidates[:j.Midplanes] {
		sl := &s.slots[i]
		sl.busyUntil = end
		sl.burner = false
		sl.jobID = j.ID
		sl.intensity = j.Intensity
	}
	s.started++
	q := &s.queueStats[int(j.Queue)]
	q.Started++
	if !j.Submitted.IsZero() && now.After(j.Submitted) {
		q.WaitHoursSum += now.Sub(j.Submitted).Hours()
	}
	q.RunHoursSum += j.Walltime.Hours()
	q.MidplaneHours += float64(j.Midplanes) * j.Walltime.Hours()
	return true
}

// QueueStatsFor returns the accumulated statistics of one queue.
func (s *Scheduler) QueueStatsFor(q workload.Queue) QueueStats {
	return s.queueStats[int(q)]
}

// candidateSlots returns available midplane indices ordered by the job's
// placement preference. Within each preference group, the tick's shuffled
// visit order applies, so no rack is systematically favored by index.
func (s *Scheduler) candidateSlots(j *workload.Job, now time.Time) []int {
	order := s.perm
	if order == nil {
		order = make([]int, topology.NumMidplanes)
		for i := range order {
			order[i] = i
		}
	}
	var pref, rest []int
	appendAvail := func(dst *[]int, idx int) {
		if s.slotAvailable(&s.slots[idx], now) {
			*dst = append(*dst, idx)
		}
	}
	row0End := topology.ColsPerRow * topology.MidplanesPerRack
	switch {
	case j.Queue == workload.ProdLong:
		// prod-long jobs are allocated racks from row 0 (paper §IV-A),
		// spilling onto other rows only when row 0 is full.
		for _, idx := range order {
			if idx < row0End {
				appendAvail(&pref, idx)
			} else {
				appendAvail(&rest, idx)
			}
		}
		return append(pref, rest...)
	case j.AffinityCol >= 0:
		// Rack-affine users: the row-0 rack of their column first (the
		// habitual target), then the rest of the column, then anywhere.
		var first []int
		rackOf := func(idx int) topology.RackID {
			return topology.RackByIndex(idx / topology.MidplanesPerRack)
		}
		for _, idx := range order {
			r := rackOf(idx)
			switch {
			case r.Col == j.AffinityCol && r.Row == 0:
				appendAvail(&first, idx)
			case r.Col == j.AffinityCol:
				appendAvail(&pref, idx)
			default:
				appendAvail(&rest, idx)
			}
		}
		return append(append(first, pref...), rest...)
	default:
		// Ordinary jobs place anywhere, visiting racks in the tick's
		// popularity-weighted order.
		_ = rest
		for _, idx := range order {
			appendAvail(&pref, idx)
		}
		return pref
	}
}

// killSlot terminates the job on slot i, killing all slots of that job.
func (s *Scheduler) killSlot(i int) {
	jobID := s.slots[i].jobID
	if jobID == 0 {
		return
	}
	for k := range s.slots {
		sl := &s.slots[k]
		if sl.jobID == jobID {
			sl.busyUntil = time.Time{}
			sl.jobID = 0
			sl.burner = false
			sl.intensity = 0
		}
	}
	s.killed++
}

// Avoid flags a rack for CMF-aware scheduling until the given time: no new
// jobs are placed on it while any alternative capacity exists, letting its
// running jobs drain ahead of a predicted coolant monitor failure (the
// paper's closing opportunity: "develop CMF-aware job schedulers").
func (s *Scheduler) Avoid(r topology.RackID, until time.Time) {
	base := r.Index() * topology.MidplanesPerRack
	for m := 0; m < topology.MidplanesPerRack; m++ {
		s.avoidUntil[base+m] = laterOf(s.avoidUntil[base+m], until)
	}
}

// avoided reports whether the midplane is flagged at now.
func (s *Scheduler) avoided(idx int, now time.Time) bool {
	return s.avoidUntil[idx].After(now)
}

// FailRacks takes the given racks down until the given time, killing every
// job with presence on them (coolant monitor failures kill whole racks and,
// through multi-rack jobs, many more jobs). It returns the number of jobs
// killed.
func (s *Scheduler) FailRacks(racks []topology.RackID, until time.Time) int {
	before := s.killed
	for _, r := range racks {
		base := r.Index() * topology.MidplanesPerRack
		for m := 0; m < topology.MidplanesPerRack; m++ {
			i := base + m
			if s.slots[i].jobID != 0 && !s.slots[i].burner {
				s.killSlot(i)
			}
			s.slots[i].busyUntil = time.Time{}
			s.slots[i].burner = false
			s.slots[i].jobID = 0
			s.slots[i].intensity = 0
			s.slots[i].downUntil = laterOf(s.slots[i].downUntil, until)
		}
	}
	return int(s.killed - before)
}

// RackDown reports whether the rack is powered off at now.
func (s *Scheduler) RackDown(r topology.RackID, now time.Time) bool {
	base := r.Index() * topology.MidplanesPerRack
	// A rack is down when all its midplanes are down (failures take whole
	// racks; maintenance service takes individual midplanes).
	for m := 0; m < topology.MidplanesPerRack; m++ {
		if !s.slots[base+m].downUntil.After(now) {
			return false
		}
	}
	return true
}

// MidplaneSnapshot describes one midplane for the power and cooling models.
type MidplaneSnapshot struct {
	State     MidplaneState
	Intensity float64
}

// Snapshot returns the state of every midplane at now, indexed by midplane
// number (rack.Index()*2 + m).
func (s *Scheduler) Snapshot(now time.Time) []MidplaneSnapshot {
	out := make([]MidplaneSnapshot, topology.NumMidplanes)
	for i := range s.slots {
		sl := &s.slots[i]
		switch {
		case sl.downUntil.After(now):
			out[i] = MidplaneSnapshot{State: Down}
		case sl.busyUntil.After(now) && sl.burner:
			out[i] = MidplaneSnapshot{State: Burning, Intensity: sl.intensity}
		case sl.busyUntil.After(now):
			out[i] = MidplaneSnapshot{State: Busy, Intensity: sl.intensity}
		default:
			out[i] = MidplaneSnapshot{State: Idle}
		}
	}
	return out
}

// SystemUtilization returns the fraction of nodes running jobs at now.
// Burner jobs count as utilization (they are jobs occupying nodes), matching
// the paper's definition of "percentage of nodes on which jobs are running";
// serviced/down midplanes do not.
func (s *Scheduler) SystemUtilization(now time.Time) float64 {
	busy := 0
	for i := range s.slots {
		if s.slots[i].busyUntil.After(now) && !s.slots[i].downUntil.After(now) {
			busy++
		}
	}
	return float64(busy) / float64(topology.NumMidplanes)
}

// RackUtilization returns the fraction of the rack's nodes running jobs.
func (s *Scheduler) RackUtilization(r topology.RackID, now time.Time) float64 {
	base := r.Index() * topology.MidplanesPerRack
	busy := 0
	for m := 0; m < topology.MidplanesPerRack; m++ {
		sl := &s.slots[base+m]
		if sl.busyUntil.After(now) && !sl.downUntil.After(now) {
			busy++
		}
	}
	return float64(busy) / float64(topology.MidplanesPerRack)
}

func laterOf(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
