// Package timeutil provides the simulation calendar for the Mira digital
// twin: the 2014–2019 production window, the 300-second coolant-monitor
// sampling cadence, INCITE and ALCC allocation years, Monday maintenance
// windows, and season helpers.
//
// All times are handled in the data center's local zone, modeled as a fixed
// UTC-6 offset (Central Standard Time, Argonne, Illinois). Using a fixed
// offset keeps the six-year simulation deterministic and independent of the
// host's timezone database.
package timeutil

import "time"

// Chicago is the fixed-offset location used for all calendar computations.
var Chicago = time.FixedZone("CST", -6*60*60)

// SampleInterval is the coolant-monitor sampling granularity: one sample per
// rack every 300 seconds.
const SampleInterval = 300 * time.Second

// Production window of the Mira system.
var (
	ProductionStart = time.Date(2014, 1, 1, 0, 0, 0, 0, Chicago)
	ProductionEnd   = time.Date(2020, 1, 1, 0, 0, 0, 0, Chicago)
)

// ProductionYears lists the calendar years Mira was in production.
var ProductionYears = []int{2014, 2015, 2016, 2017, 2018, 2019}

// InProduction reports whether t falls inside the production window
// [ProductionStart, ProductionEnd).
func InProduction(t time.Time) bool {
	return !t.Before(ProductionStart) && t.Before(ProductionEnd)
}

// ThetaCutover is the point at which the Theta system was connected to
// Mira's cooling loop and the plant flow rate was raised from ~1250 to
// ~1300 GPM (July 2016).
var ThetaCutover = time.Date(2016, 7, 1, 0, 0, 0, 0, Chicago)

// ThetaTestingStart and ThetaTestingEnd bound the period during which Theta
// was in early testing and dumped extra heat into the shared loop, raising
// both inlet and outlet coolant temperatures (June 2016 – early 2017).
var (
	ThetaTestingStart = time.Date(2016, 6, 1, 0, 0, 0, 0, Chicago)
	ThetaTestingEnd   = time.Date(2017, 2, 1, 0, 0, 0, 0, Chicago)
)

// Program identifies an allocation program at the ALCF.
type Program int

const (
	// INCITE projects run on a January 1 – December 31 allocation year and
	// are the higher-priority, larger program.
	INCITE Program = iota
	// ALCC projects run on a July 1 – June 30 allocation year.
	ALCC
	// Discretionary projects have no allocation-year deadline.
	Discretionary
)

func (p Program) String() string {
	switch p {
	case INCITE:
		return "INCITE"
	case ALCC:
		return "ALCC"
	case Discretionary:
		return "Discretionary"
	default:
		return "Unknown"
	}
}

// AllocationYearFraction returns how far through its allocation year the
// given program is at time t, in [0, 1). Users concentrate job submissions
// near the end of the allocation year (fraction → 1) to burn remaining core
// hours, which drives the paper's monthly utilization profile (Fig. 4).
func AllocationYearFraction(p Program, t time.Time) float64 {
	t = t.In(Chicago)
	var start time.Time
	switch p {
	case ALCC:
		// July 1 – June 30.
		start = time.Date(t.Year(), 7, 1, 0, 0, 0, 0, Chicago)
		if t.Before(start) {
			start = time.Date(t.Year()-1, 7, 1, 0, 0, 0, 0, Chicago)
		}
	default:
		// INCITE and discretionary use the calendar year.
		start = time.Date(t.Year(), 1, 1, 0, 0, 0, 0, Chicago)
	}
	end := start.AddDate(1, 0, 0)
	frac := float64(t.Sub(start)) / float64(end.Sub(start))
	if frac < 0 {
		frac = 0
	}
	if frac >= 1 {
		frac = 1 - 1e-12
	}
	return frac
}

// MaintenanceWindow describes one scheduled maintenance period.
type MaintenanceWindow struct {
	Start time.Time
	End   time.Time
}

// Contains reports whether t falls inside the window [Start, End).
func (w MaintenanceWindow) Contains(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// MaintenanceCalendar generates Mira's scheduled maintenance windows:
// Mondays starting at 9 AM local, lasting 6–10 hours. The paper notes the
// maintenance is not literally every week; Every controls the cadence
// (1 = every Monday, 2 = every other Monday, ...).
type MaintenanceCalendar struct {
	// Every is the Monday cadence; a value <= 0 is treated as 1.
	Every int
	// DurationFor selects the window length for a given Monday. If nil, a
	// deterministic 6–10 h pattern keyed on the ISO week is used.
	DurationFor func(monday time.Time) time.Duration
}

// windowFor returns the maintenance window for the Monday containing t, or a
// zero window if that Monday is skipped by the cadence.
func (c MaintenanceCalendar) windowFor(t time.Time) (MaintenanceWindow, bool) {
	t = t.In(Chicago)
	if t.Weekday() != time.Monday {
		return MaintenanceWindow{}, false
	}
	every := c.Every
	if every <= 0 {
		every = 1
	}
	_, week := t.ISOWeek()
	if week%every != 0 && every > 1 {
		return MaintenanceWindow{}, false
	}
	monday := time.Date(t.Year(), t.Month(), t.Day(), 9, 0, 0, 0, Chicago)
	dur := 6*time.Hour + time.Duration(week%5)*time.Hour // 6..10h pattern
	if c.DurationFor != nil {
		dur = c.DurationFor(monday)
	}
	return MaintenanceWindow{Start: monday, End: monday.Add(dur)}, true
}

// InMaintenance reports whether t falls inside a scheduled maintenance
// window.
func (c MaintenanceCalendar) InMaintenance(t time.Time) bool {
	w, ok := c.windowFor(t)
	return ok && w.Contains(t)
}

// Season identifies a meteorological season in Chicago.
type Season int

const (
	Winter Season = iota
	Spring
	Summer
	Autumn
)

func (s Season) String() string {
	switch s {
	case Winter:
		return "Winter"
	case Spring:
		return "Spring"
	case Summer:
		return "Summer"
	case Autumn:
		return "Autumn"
	default:
		return "Unknown"
	}
}

// SeasonOf returns the meteorological season containing t.
func SeasonOf(t time.Time) Season {
	switch t.In(Chicago).Month() {
	case time.December, time.January, time.February:
		return Winter
	case time.March, time.April, time.May:
		return Spring
	case time.June, time.July, time.August:
		return Summer
	default:
		return Autumn
	}
}

// FreeCoolingSeason reports whether t falls in the December–March window in
// which the Chilled Water Plant's waterside economizer can displace the
// chillers (the paper's "colder months").
func FreeCoolingSeason(t time.Time) bool {
	switch t.In(Chicago).Month() {
	case time.December, time.January, time.February, time.March:
		return true
	default:
		return false
	}
}

// YearFraction returns the position of t inside its calendar year in [0, 1),
// used by the seasonal weather model.
func YearFraction(t time.Time) float64 {
	t = t.In(Chicago)
	start := time.Date(t.Year(), 1, 1, 0, 0, 0, 0, Chicago)
	end := start.AddDate(1, 0, 0)
	return float64(t.Sub(start)) / float64(end.Sub(start))
}

// HourOfDay returns the local hour of day including the fractional part.
func HourOfDay(t time.Time) float64 {
	t = t.In(Chicago)
	return float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
}

// Ticks returns the number of SampleInterval steps in [start, end).
func Ticks(start, end time.Time) int {
	if !end.After(start) {
		return 0
	}
	return int(end.Sub(start) / SampleInterval)
}
