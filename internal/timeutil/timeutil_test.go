package timeutil

import (
	"testing"
	"time"
)

func TestProductionWindow(t *testing.T) {
	if !InProduction(ProductionStart) {
		t.Error("ProductionStart should be in production")
	}
	if InProduction(ProductionEnd) {
		t.Error("ProductionEnd should be exclusive")
	}
	mid := time.Date(2016, 7, 4, 12, 0, 0, 0, Chicago)
	if !InProduction(mid) {
		t.Error("mid-2016 should be in production")
	}
	if InProduction(time.Date(2013, 12, 31, 23, 59, 0, 0, Chicago)) {
		t.Error("2013 should not be in production")
	}
	if len(ProductionYears) != 6 {
		t.Errorf("ProductionYears = %v, want 6 entries", ProductionYears)
	}
}

func TestTicksSixYears(t *testing.T) {
	got := Ticks(ProductionStart, ProductionEnd)
	// 6 years incl. leap day 2016 = 2191 days = 631,008 five-minute ticks.
	want := 2191 * 288
	if got != want {
		t.Errorf("Ticks(production) = %d, want %d", got, want)
	}
	if Ticks(ProductionEnd, ProductionStart) != 0 {
		t.Error("reversed range should give 0 ticks")
	}
}

func TestAllocationYearFractionINCITE(t *testing.T) {
	jan1 := time.Date(2015, 1, 1, 0, 0, 0, 0, Chicago)
	if f := AllocationYearFraction(INCITE, jan1); f != 0 {
		t.Errorf("INCITE Jan 1 fraction = %v, want 0", f)
	}
	dec31 := time.Date(2015, 12, 31, 23, 0, 0, 0, Chicago)
	if f := AllocationYearFraction(INCITE, dec31); f < 0.99 {
		t.Errorf("INCITE Dec 31 fraction = %v, want ≈1", f)
	}
	jul := time.Date(2015, 7, 2, 0, 0, 0, 0, Chicago)
	if f := AllocationYearFraction(INCITE, jul); f < 0.49 || f > 0.51 {
		t.Errorf("INCITE Jul fraction = %v, want ≈0.5", f)
	}
}

func TestAllocationYearFractionALCC(t *testing.T) {
	jul1 := time.Date(2015, 7, 1, 0, 0, 0, 0, Chicago)
	if f := AllocationYearFraction(ALCC, jul1); f != 0 {
		t.Errorf("ALCC Jul 1 fraction = %v, want 0", f)
	}
	jun30 := time.Date(2015, 6, 30, 23, 0, 0, 0, Chicago)
	if f := AllocationYearFraction(ALCC, jun30); f < 0.99 {
		t.Errorf("ALCC Jun 30 fraction = %v, want ≈1", f)
	}
	// January is mid-year for ALCC.
	jan := time.Date(2016, 1, 1, 0, 0, 0, 0, Chicago)
	if f := AllocationYearFraction(ALCC, jan); f < 0.49 || f > 0.52 {
		t.Errorf("ALCC Jan fraction = %v, want ≈0.5", f)
	}
}

func TestAllocationYearFractionBounds(t *testing.T) {
	for ts := ProductionStart; ts.Before(ProductionEnd); ts = ts.Add(31 * 24 * time.Hour) {
		for _, p := range []Program{INCITE, ALCC, Discretionary} {
			f := AllocationYearFraction(p, ts)
			if f < 0 || f >= 1 {
				t.Fatalf("fraction out of range: %v at %v = %v", p, ts, f)
			}
		}
	}
}

func TestMaintenanceCalendar(t *testing.T) {
	cal := MaintenanceCalendar{}
	// Monday, 2016-07-04 at 10 AM should be in maintenance.
	mon := time.Date(2016, 7, 4, 10, 0, 0, 0, Chicago)
	if mon.Weekday() != time.Monday {
		t.Fatal("test date is not a Monday")
	}
	if !cal.InMaintenance(mon) {
		t.Error("Monday 10AM should be in maintenance")
	}
	// Before 9 AM is not.
	if cal.InMaintenance(time.Date(2016, 7, 4, 8, 0, 0, 0, Chicago)) {
		t.Error("Monday 8AM should not be in maintenance")
	}
	// Tuesday is never in maintenance.
	if cal.InMaintenance(time.Date(2016, 7, 5, 10, 0, 0, 0, Chicago)) {
		t.Error("Tuesday should not be in maintenance")
	}
	// Late Monday night: the longest window is 10h → ends by 19:00.
	if cal.InMaintenance(time.Date(2016, 7, 4, 20, 0, 0, 0, Chicago)) {
		t.Error("Monday 8PM should be past the maintenance window")
	}
}

func TestMaintenanceDurationRange(t *testing.T) {
	cal := MaintenanceCalendar{}
	// Scan a year of Mondays; windows must last 6-10h.
	d := time.Date(2015, 1, 5, 9, 30, 0, 0, Chicago) // a Monday
	for i := 0; i < 52; i++ {
		w, ok := cal.windowFor(d)
		if !ok {
			t.Fatalf("every-Monday calendar skipped %v", d)
		}
		dur := w.End.Sub(w.Start)
		if dur < 6*time.Hour || dur > 10*time.Hour {
			t.Errorf("window duration %v out of 6-10h range", dur)
		}
		d = d.AddDate(0, 0, 7)
	}
}

func TestMaintenanceCustomDuration(t *testing.T) {
	cal := MaintenanceCalendar{DurationFor: func(time.Time) time.Duration { return 7 * time.Hour }}
	mon := time.Date(2016, 7, 4, 15, 30, 0, 0, Chicago)
	if !cal.InMaintenance(mon) {
		t.Error("3:30PM should be inside a 7h window from 9AM")
	}
	if cal.InMaintenance(time.Date(2016, 7, 4, 16, 30, 0, 0, Chicago)) {
		t.Error("4:30PM should be outside a 7h window from 9AM")
	}
}

func TestSeasonOf(t *testing.T) {
	cases := []struct {
		m    time.Month
		want Season
	}{
		{time.January, Winter}, {time.February, Winter}, {time.December, Winter},
		{time.March, Spring}, {time.May, Spring},
		{time.June, Summer}, {time.August, Summer},
		{time.September, Autumn}, {time.November, Autumn},
	}
	for _, tc := range cases {
		ts := time.Date(2015, tc.m, 15, 12, 0, 0, 0, Chicago)
		if got := SeasonOf(ts); got != tc.want {
			t.Errorf("SeasonOf(%v) = %v, want %v", tc.m, got, tc.want)
		}
	}
}

func TestFreeCoolingSeason(t *testing.T) {
	for _, m := range []time.Month{time.December, time.January, time.February, time.March} {
		if !FreeCoolingSeason(time.Date(2015, m, 10, 0, 0, 0, 0, Chicago)) {
			t.Errorf("%v should be free-cooling season", m)
		}
	}
	for _, m := range []time.Month{time.April, time.July, time.October} {
		if FreeCoolingSeason(time.Date(2015, m, 10, 0, 0, 0, 0, Chicago)) {
			t.Errorf("%v should not be free-cooling season", m)
		}
	}
}

func TestYearFraction(t *testing.T) {
	jan1 := time.Date(2015, 1, 1, 0, 0, 0, 0, Chicago)
	if f := YearFraction(jan1); f != 0 {
		t.Errorf("YearFraction(Jan 1) = %v", f)
	}
	jul := time.Date(2015, 7, 2, 12, 0, 0, 0, Chicago)
	if f := YearFraction(jul); f < 0.49 || f > 0.51 {
		t.Errorf("YearFraction(Jul 2) = %v, want ≈0.5", f)
	}
}

func TestHourOfDay(t *testing.T) {
	ts := time.Date(2015, 6, 1, 13, 30, 0, 0, Chicago)
	if h := HourOfDay(ts); h != 13.5 {
		t.Errorf("HourOfDay = %v, want 13.5", h)
	}
}

func TestThetaEventOrdering(t *testing.T) {
	if !ThetaTestingStart.Before(ThetaCutover) {
		t.Error("Theta testing begins before the flow cutover")
	}
	if !ThetaCutover.Before(ThetaTestingEnd) {
		t.Error("flow cutover happens during the testing period")
	}
	if ThetaCutover.Year() != 2016 || ThetaCutover.Month() != time.July {
		t.Errorf("ThetaCutover = %v, want July 2016", ThetaCutover)
	}
}

func TestProgramString(t *testing.T) {
	if INCITE.String() != "INCITE" || ALCC.String() != "ALCC" || Discretionary.String() != "Discretionary" {
		t.Error("Program.String mismatch")
	}
	if Winter.String() != "Winter" || Summer.String() != "Summer" {
		t.Error("Season.String mismatch")
	}
}
