package mitigation

import (
	"sync"
	"testing"
	"time"

	"mira/internal/core"
	"mira/internal/sim"
	"mira/internal/timeutil"
)

var studyData = struct {
	once      sync.Once
	incidents []sim.Incident
	positives []sim.Window
	negatives []sim.Window
	predictor *core.Predictor
	err       error
}{}

const step = timeutil.SampleInterval

func setup(t *testing.T) ([]sim.Incident, []sim.Window, []sim.Window, *core.Predictor) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation-backed mitigation test skipped in -short mode")
	}
	studyData.once.Do(func() {
		windowTicks := int((core.FeatureSpan+6*time.Hour)/step) + 1
		rec := sim.NewIncidentWindowRecorder(windowTicks, 250, 2000)
		s := sim.New(sim.Config{
			Seed:  31,
			Start: time.Date(2016, 6, 1, 0, 0, 0, 0, timeutil.Chicago),
			End:   time.Date(2016, 11, 1, 0, 0, 0, 0, timeutil.Chicago),
			Step:  step,
		})
		s.AddRecorder(rec)
		if err := s.Run(); err != nil {
			studyData.err = err
			return
		}
		studyData.incidents = s.Incidents()
		studyData.positives = rec.Positives()
		studyData.negatives = rec.Negatives(core.FeatureSpan)
		ds, err := core.BuildDataset(studyData.positives, studyData.negatives, step, time.Hour, core.DeltaFeatures, 32)
		if err != nil {
			studyData.err = err
			return
		}
		studyData.predictor, studyData.err = core.Train(ds, core.Config{Seed: 33})
	})
	if studyData.err != nil {
		t.Fatal(studyData.err)
	}
	return studyData.incidents, studyData.positives, studyData.negatives, studyData.predictor
}

func TestEvaluateEndToEnd(t *testing.T) {
	incidents, pos, neg, p := setup(t)
	rep, err := Evaluate(incidents, pos, neg, Config{Predictor: p, Step: step})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Incidents) < 5 {
		t.Fatalf("matched incidents = %d", len(rep.Incidents))
	}
	// The predictor should warn for most failures, well ahead.
	if rep.WarnedFraction < 0.6 {
		t.Errorf("warned fraction = %v, want most incidents warned", rep.WarnedFraction)
	}
	if rep.MeanWarningLead < time.Hour {
		t.Errorf("mean warning lead = %v, want hours of notice", rep.MeanWarningLead)
	}
	// Regime ordering: no-checkpoint worst, predictive best.
	if !(rep.TotalLostNone > rep.TotalLostPeriodic && rep.TotalLostPeriodic > rep.TotalLostPredictive) {
		t.Errorf("loss ordering wrong: none=%v periodic=%v predictive=%v",
			rep.TotalLostNone, rep.TotalLostPeriodic, rep.TotalLostPredictive)
	}
	// Net savings after checkpoint overhead.
	if s := rep.SavingsVsPeriodic(); s < 0.2 {
		t.Errorf("net savings vs periodic = %v, want substantial", s)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, pos, neg, p := setup(t)
	if _, err := Evaluate(nil, pos, neg, Config{Predictor: p, Step: step}); err == nil {
		t.Error("no incidents should error")
	}
	if _, err := Evaluate(nil, nil, nil, Config{Predictor: nil, Step: step}); err == nil {
		t.Error("nil predictor should error")
	}
	if _, err := Evaluate(nil, nil, nil, Config{Predictor: p}); err == nil {
		t.Error("zero step should error")
	}
}

func TestHigherThresholdWarnsLess(t *testing.T) {
	incidents, pos, neg, p := setup(t)
	low, err := Evaluate(incidents, pos, neg, Config{Predictor: p, Step: step, AlertThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Evaluate(incidents, pos, neg, Config{Predictor: p, Step: step, AlertThreshold: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if high.WarnedFraction > low.WarnedFraction {
		t.Errorf("raising the threshold should not warn more: %v -> %v",
			low.WarnedFraction, high.WarnedFraction)
	}
	// A stricter threshold also reduces false-alarm overhead.
	if high.CheckpointOverheadHours > low.CheckpointOverheadHours {
		t.Errorf("overhead should shrink with threshold: %v -> %v",
			low.CheckpointOverheadHours, high.CheckpointOverheadHours)
	}
}

func TestCheckpointModelDefaults(t *testing.T) {
	m := CheckpointModel{}.withDefaults()
	if m.Overhead != 10*time.Minute || m.Period != 4*time.Hour || m.MeanJobAge != 5*time.Hour {
		t.Errorf("defaults wrong: %+v", m)
	}
}
