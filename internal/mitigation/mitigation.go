// Package mitigation quantifies the operational value of CMF prediction —
// the paper's §VI-B opportunity: "this time can be used to checkpoint
// active jobs, alert data center users, and kick off backup and restorative
// actions".
//
// Given the telemetry windows captured around failures and a trained
// predictor, the package replays each incident, determines how much warning
// the predictor would have provided, and compares the compute lost to the
// failure under three checkpointing regimes: none, periodic, and
// prediction-triggered.
package mitigation

import (
	"errors"
	"fmt"
	"time"

	"mira/internal/core"
	"mira/internal/sim"
	"mira/internal/topology"
)

// CheckpointModel prices checkpoint/restore actions.
type CheckpointModel struct {
	// Overhead is the wall-clock cost of writing one rack-level checkpoint
	// (default 10 min — the paper calls software checkpointing expensive).
	Overhead time.Duration
	// Period is the periodic-checkpoint interval for the baseline regime
	// (default 4 h).
	Period time.Duration
	// MeanJobAge is the expected elapsed runtime of a killed job absent
	// any checkpoint (default 5 h), used for the no-checkpoint regime.
	MeanJobAge time.Duration
}

func (m CheckpointModel) withDefaults() CheckpointModel {
	if m.Overhead <= 0 {
		m.Overhead = 10 * time.Minute
	}
	if m.Period <= 0 {
		m.Period = 4 * time.Hour
	}
	if m.MeanJobAge <= 0 {
		m.MeanJobAge = 5 * time.Hour
	}
	return m
}

// IncidentOutcome describes one incident's replay.
type IncidentOutcome struct {
	Epicenter topology.RackID
	Time      time.Time
	// WarningLead is how far before the failure the predictor first raised
	// a sustained alert on the epicenter's telemetry (0 = never).
	WarningLead time.Duration
	// NodeHoursLostNone / Periodic / Predictive are the estimated lost
	// node-hours under each regime.
	NodeHoursLostNone       float64
	NodeHoursLostPeriodic   float64
	NodeHoursLostPredictive float64
}

// Report aggregates a mitigation study.
type Report struct {
	Incidents []IncidentOutcome
	// WarnedFraction is the share of incidents with ≥ MinUsefulLead of
	// warning.
	WarnedFraction float64
	// MeanWarningLead across warned incidents.
	MeanWarningLead time.Duration
	// Totals across incidents.
	TotalLostNone       float64
	TotalLostPeriodic   float64
	TotalLostPredictive float64
	// CheckpointOverheadHours is the node-hours spent writing
	// prediction-triggered checkpoints (including false alarms).
	CheckpointOverheadHours float64
}

// SavingsVsPeriodic returns the fraction of periodic-regime losses avoided
// by prediction-triggered checkpointing (net of checkpoint overhead).
func (r Report) SavingsVsPeriodic() float64 {
	if r.TotalLostPeriodic == 0 {
		return 0
	}
	return 1 - (r.TotalLostPredictive+r.CheckpointOverheadHours)/r.TotalLostPeriodic
}

// MinUsefulLead is the least warning worth acting on: one checkpoint write
// plus margin.
const MinUsefulLead = 30 * time.Minute

// Config assembles a study.
type Config struct {
	// Predictor scores trailing-window features.
	Predictor *core.Predictor
	// Step is the telemetry cadence of the windows.
	Step time.Duration
	// AlertThreshold on the predictor probability (default 0.75).
	AlertThreshold float64
	// SustainTicks is how many consecutive ticks the score must stay above
	// threshold before the alert counts (default 2 — debounces noise).
	SustainTicks int
	// Checkpoint prices the actions.
	Checkpoint CheckpointModel
}

func (c Config) withDefaults() (Config, error) {
	if c.Predictor == nil {
		return c, errors.New("mitigation: nil predictor")
	}
	if c.Step <= 0 {
		return c, errors.New("mitigation: non-positive step")
	}
	if c.AlertThreshold <= 0 {
		c.AlertThreshold = 0.75
	}
	if c.SustainTicks <= 0 {
		c.SustainTicks = 2
	}
	c.Checkpoint = c.Checkpoint.withDefaults()
	return c, nil
}

// Evaluate replays each incident's telemetry window through the predictor
// and prices the three regimes. positives must be the pre-CMF windows of
// the incidents' epicenters (cascade-rack windows are matched by incident
// time and rack). negatives, when non-empty, are also replayed to charge
// false-alarm checkpoint overhead.
func Evaluate(incidents []sim.Incident, positives, negatives []sim.Window, cfg Config) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}
	// Index epicenter windows by (rack, end time).
	type key struct {
		rack topology.RackID
		end  time.Time
	}
	winByKey := make(map[key]sim.Window, len(positives))
	for _, w := range positives {
		winByKey[key{w.Rack, w.End}] = w
	}

	ckpt := cfg.Checkpoint
	var rep Report
	var warned int
	var leadSum time.Duration
	for _, inc := range incidents {
		w, ok := winByKey[key{inc.Epicenter, inc.Time}]
		if !ok {
			continue
		}
		lead := firstSustainedAlert(w, cfg)
		nodesLostScale := float64(len(inc.Racks)) * topology.NodesPerRack / 1000.0 // kilo-node scale

		out := IncidentOutcome{Epicenter: inc.Epicenter, Time: inc.Time, WarningLead: lead}
		// No checkpointing: every killed job loses its full elapsed runtime.
		out.NodeHoursLostNone = nodesLostScale * ckpt.MeanJobAge.Hours()
		// Periodic: expected loss is half the period plus the restart.
		out.NodeHoursLostPeriodic = nodesLostScale * (ckpt.Period.Hours()/2 + ckpt.Overhead.Hours())
		// Predictive: with enough warning, the loss shrinks to the work
		// since the triggered checkpoint (≈ the warning spent writing it);
		// otherwise fall back to the periodic loss.
		if lead >= MinUsefulLead {
			out.NodeHoursLostPredictive = nodesLostScale * (ckpt.Overhead.Hours() + 0.25)
			warned++
			leadSum += lead
		} else {
			out.NodeHoursLostPredictive = out.NodeHoursLostPeriodic
		}
		rep.Incidents = append(rep.Incidents, out)
		rep.TotalLostNone += out.NodeHoursLostNone
		rep.TotalLostPeriodic += out.NodeHoursLostPeriodic
		rep.TotalLostPredictive += out.NodeHoursLostPredictive
	}
	if len(rep.Incidents) == 0 {
		return rep, errors.New("mitigation: no incidents matched the provided windows")
	}
	rep.WarnedFraction = float64(warned) / float64(len(rep.Incidents))
	if warned > 0 {
		rep.MeanWarningLead = leadSum / time.Duration(warned)
	}

	// False alarms on quiet windows cost one rack checkpoint each.
	falseAlarms := 0
	for _, w := range negatives {
		if firstSustainedAlert(w, cfg) > 0 {
			falseAlarms++
		}
	}
	rep.CheckpointOverheadHours = float64(falseAlarms) * topology.NodesPerRack / 1000.0 * ckpt.Overhead.Hours()
	return rep, nil
}

// firstSustainedAlert walks the window chronologically and returns how long
// before the window's end the predictor first stayed above threshold for
// SustainTicks consecutive evaluations (0 = never).
func firstSustainedAlert(w sim.Window, cfg Config) time.Duration {
	n := len(w.Records)
	span := int(core.FeatureSpan / cfg.Step)
	consec := 0
	for idx := span; idx < n; idx++ {
		f, err := core.DeltaFeatures(w.Records[:idx+1], cfg.Step, 0)
		if err != nil {
			consec = 0
			continue
		}
		if cfg.Predictor.Probability(f) >= cfg.AlertThreshold {
			consec++
		} else {
			consec = 0
		}
		if consec >= cfg.SustainTicks {
			return time.Duration(n-1-idx) * cfg.Step
		}
	}
	return 0
}

// String renders the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("incidents=%d warned=%.0f%% meanLead=%v lost none/periodic/predictive = %.0f/%.0f/%.0f kNh (overhead %.1f)",
		len(r.Incidents), r.WarnedFraction*100, r.MeanWarningLead.Round(time.Minute),
		r.TotalLostNone, r.TotalLostPeriodic, r.TotalLostPredictive, r.CheckpointOverheadHours)
}
