package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFahrenheitCelsiusRoundTrip(t *testing.T) {
	cases := []struct {
		f Fahrenheit
		c Celsius
	}{
		{32, 0},
		{212, 100},
		{-40, -40},
		{64, 17.7778},
		{79, 26.1111},
	}
	for _, tc := range cases {
		if got := tc.f.Celsius(); !almostEqual(float64(got), float64(tc.c), 1e-3) {
			t.Errorf("%v.Celsius() = %v, want %v", tc.f, got, tc.c)
		}
		if got := tc.c.Fahrenheit(); !almostEqual(float64(got), float64(tc.f), 1e-3) {
			t.Errorf("%v.Fahrenheit() = %v, want %v", tc.c, got, tc.f)
		}
	}
}

func TestConversionRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e6 {
			return true
		}
		back := Fahrenheit(x).Celsius().Fahrenheit()
		return almostEqual(float64(back), x, 1e-6*math.Max(1, math.Abs(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKelvin(t *testing.T) {
	if got := Celsius(0).Kelvin(); !almostEqual(got, 273.15, 1e-9) {
		t.Errorf("0C = %vK, want 273.15", got)
	}
}

func TestGPMLiters(t *testing.T) {
	if got := GPM(1).LitersPerMinute(); !almostEqual(got, 3.785411784, 1e-9) {
		t.Errorf("1 GPM = %v L/min", got)
	}
	// Per-rack flow on Mira is ~26 GPM ≈ 98.4 L/min.
	if got := GPM(26).LitersPerMinute(); !almostEqual(got, 98.42, 0.01) {
		t.Errorf("26 GPM = %v L/min, want ~98.42", got)
	}
}

func TestPowerConversions(t *testing.T) {
	if got := MW(2.5); got != Watts(2.5e6) {
		t.Errorf("MW(2.5) = %v", got)
	}
	if got := KW(3); got != Watts(3000) {
		t.Errorf("KW(3) = %v", got)
	}
	if got := Watts(2.9e6).Megawatts(); !almostEqual(got, 2.9, 1e-12) {
		t.Errorf("Megawatts = %v", got)
	}
	if got := Watts(1500).Kilowatts(); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("Kilowatts = %v", got)
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		w    Watts
		want string
	}{
		{MW(2.5), "2.500 MW"},
		{KW(17.82), "17.82 kW"},
		{Watts(42), "42.0 W"},
	}
	for _, tc := range cases {
		if got := tc.w.String(); got != tc.want {
			t.Errorf("(%v).String() = %q, want %q", float64(tc.w), got, tc.want)
		}
	}
}

func TestEnergyOver(t *testing.T) {
	// Paper: not running chillers saves 17,820 kWh per day. At a constant
	// draw that is 742.5 kW for 24 h.
	got := EnergyOver(KW(742.5), 24)
	if !almostEqual(float64(got), 17820, 1e-9) {
		t.Errorf("EnergyOver = %v, want 17820", got)
	}
}

func TestHumidityClamp(t *testing.T) {
	if got := RelativeHumidity(-3).Clamp(); got != 0 {
		t.Errorf("Clamp(-3) = %v", got)
	}
	if got := RelativeHumidity(104).Clamp(); got != 100 {
		t.Errorf("Clamp(104) = %v", got)
	}
	if got := RelativeHumidity(33).Clamp(); got != 33 {
		t.Errorf("Clamp(33) = %v", got)
	}
}

func TestTonsRefrigeration(t *testing.T) {
	// One 1,500-ton chiller ≈ 5.28 MW of heat removal.
	got := TonsRefrigeration(1500).Watts()
	if !almostEqual(got.Megawatts(), 5.275, 0.01) {
		t.Errorf("1500 tons = %v, want ~5.275 MW", got)
	}
}

func TestDewpointKnownValues(t *testing.T) {
	// At 100% RH the dewpoint equals the dry-bulb temperature.
	for _, temp := range []Fahrenheit{60, 75, 90} {
		dp := Dewpoint(temp, 100)
		if !almostEqual(float64(dp), float64(temp), 0.05) {
			t.Errorf("Dewpoint(%v, 100) = %v, want %v", temp, dp, temp)
		}
	}
	// 80°F at 30%RH has a dewpoint around 46-47°F (standard psychrometrics).
	dp := Dewpoint(80, 30)
	if float64(dp) < 44 || float64(dp) > 49 {
		t.Errorf("Dewpoint(80F, 30RH) = %v, want ≈46-47F", dp)
	}
}

func TestDewpointMonotonicInHumidity(t *testing.T) {
	f := func(rhRaw float64) bool {
		rh := RelativeHumidity(math.Mod(math.Abs(rhRaw), 90) + 5)
		lower := Dewpoint(80, rh)
		higher := Dewpoint(80, rh+5)
		return float64(higher) > float64(lower)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondensationMargin(t *testing.T) {
	// Dry data center: large margin.
	if m := CondensationMargin(80, 30); m < 25 {
		t.Errorf("margin at 30RH = %v, want > 25F", m)
	}
	// Saturated: margin ~0.
	if m := CondensationMargin(80, 100); math.Abs(m) > 0.1 {
		t.Errorf("margin at 100RH = %v, want ~0", m)
	}
	// Margin shrinks as humidity rises.
	if CondensationMargin(80, 60) >= CondensationMargin(80, 40) {
		t.Error("margin should shrink with rising humidity")
	}
}

func TestWaterHeatCapacityFlow(t *testing.T) {
	// 26 GPM ≈ 1.64 kg/s → ~6866 W/K → ~3814 W/°F.
	got := WaterHeatCapacityFlow(26)
	if !almostEqual(got, 3814, 25) {
		t.Errorf("WaterHeatCapacityFlow(26) = %v, want ≈3814 W/°F", got)
	}
}

func TestOutletTemperature(t *testing.T) {
	// A rack drawing ~57 kW at 26 GPM should warm the coolant by ~15°F,
	// consistent with the paper's 64°F inlet / 79°F outlet.
	out := OutletTemperature(64, KW(57), 26)
	if float64(out) < 76 || float64(out) > 82 {
		t.Errorf("OutletTemperature = %v, want ≈79F", out)
	}
	// Zero heat: outlet equals inlet.
	if out := OutletTemperature(64, 0, 26); out != 64 {
		t.Errorf("no-heat outlet = %v, want 64", out)
	}
	// Zero flow is guarded.
	if out := OutletTemperature(64, KW(57), 0); out <= 64 {
		t.Errorf("no-flow outlet = %v, want > inlet", out)
	}
}

func TestOutletTemperatureMonotone(t *testing.T) {
	f := func(heatRaw, flowRaw float64) bool {
		heat := Watts(math.Mod(math.Abs(heatRaw), 9e4) + 1e3)
		flow := GPM(math.Mod(math.Abs(flowRaw), 30) + 5)
		base := OutletTemperature(64, heat, flow)
		hotter := OutletTemperature(64, heat+1000, flow)
		faster := OutletTemperature(64, heat, flow+2)
		return float64(hotter) > float64(base) && float64(faster) < float64(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	if got := Fahrenheit(64.25).String(); got != "64.25°F" {
		t.Errorf("Fahrenheit.String = %q", got)
	}
	if got := Celsius(17.5).String(); got != "17.50°C" {
		t.Errorf("Celsius.String = %q", got)
	}
	if got := GPM(1250).String(); got != "1250.0 GPM" {
		t.Errorf("GPM.String = %q", got)
	}
	if got := RelativeHumidity(36.5).String(); got != "36.5 %RH" {
		t.Errorf("RH.String = %q", got)
	}
	if got := TonsRefrigeration(1500).String(); got != "1500 tons" {
		t.Errorf("Tons.String = %q", got)
	}
	if got := KilowattHours(17820).String(); got != "17820 kWh" {
		t.Errorf("kWh.String = %q", got)
	}
}
