// Package units provides the physical quantities and conversions used by the
// Mira digital twin: temperatures, volumetric flow, power, energy, relative
// humidity, and refrigeration capacity, together with psychrometric helpers
// such as dewpoint.
//
// All quantities are represented as typed float64s so that, for example, a
// flow rate cannot be passed where a temperature is expected. The paper
// reports values in US customary units (°F, GPM); those are the canonical
// representations here, with SI conversions provided.
package units

import (
	"fmt"
	"math"
)

// Fahrenheit is a temperature in degrees Fahrenheit, the unit the paper's
// coolant-monitor telemetry is reported in.
type Fahrenheit float64

// Celsius is a temperature in degrees Celsius.
type Celsius float64

// Celsius converts the temperature to degrees Celsius.
func (f Fahrenheit) Celsius() Celsius { return Celsius((float64(f) - 32) * 5 / 9) }

// Fahrenheit converts the temperature to degrees Fahrenheit.
func (c Celsius) Fahrenheit() Fahrenheit { return Fahrenheit(float64(c)*9/5 + 32) }

// Kelvin returns the absolute temperature in kelvins.
func (c Celsius) Kelvin() float64 { return float64(c) + 273.15 }

func (f Fahrenheit) String() string { return fmt.Sprintf("%.2f°F", float64(f)) }
func (c Celsius) String() string    { return fmt.Sprintf("%.2f°C", float64(c)) }

// GPM is a volumetric flow rate in US gallons per minute, the unit used for
// Mira's coolant loop (plant total ~1250–1300 GPM, ~26 GPM per rack).
type GPM float64

// LitersPerMinute converts the flow rate to liters per minute.
func (g GPM) LitersPerMinute() float64 { return float64(g) * litersPerGallon }

func (g GPM) String() string { return fmt.Sprintf("%.1f GPM", float64(g)) }

const litersPerGallon = 3.785411784

// Watts is electrical or thermal power in watts.
type Watts float64

// Megawatts returns the power in MW (Mira draws 2.5–2.9 MW).
func (w Watts) Megawatts() float64 { return float64(w) / 1e6 }

// Kilowatts returns the power in kW.
func (w Watts) Kilowatts() float64 { return float64(w) / 1e3 }

func (w Watts) String() string {
	switch {
	case math.Abs(float64(w)) >= 1e6:
		return fmt.Sprintf("%.3f MW", w.Megawatts())
	case math.Abs(float64(w)) >= 1e3:
		return fmt.Sprintf("%.2f kW", w.Kilowatts())
	default:
		return fmt.Sprintf("%.1f W", float64(w))
	}
}

// MW constructs a Watts value from megawatts.
func MW(mw float64) Watts { return Watts(mw * 1e6) }

// KW constructs a Watts value from kilowatts.
func KW(kw float64) Watts { return Watts(kw * 1e3) }

// KilowattHours is electrical energy in kWh, the unit the paper uses for
// free-cooling savings (17,820 kWh/day; 2,174,040 kWh per cold season).
type KilowattHours float64

func (e KilowattHours) String() string { return fmt.Sprintf("%.0f kWh", float64(e)) }

// EnergyOver returns the energy consumed by drawing p for the given number of
// hours.
func EnergyOver(p Watts, hours float64) KilowattHours {
	return KilowattHours(p.Kilowatts() * hours)
}

// RelativeHumidity is relative humidity in percent (0–100 %RH). Mira's data
// center varied between roughly 28 and 37 %RH.
type RelativeHumidity float64

func (rh RelativeHumidity) String() string { return fmt.Sprintf("%.1f %%RH", float64(rh)) }

// Clamp returns the humidity limited to the physical range [0, 100].
func (rh RelativeHumidity) Clamp() RelativeHumidity {
	if rh < 0 {
		return 0
	}
	if rh > 100 {
		return 100
	}
	return rh
}

// TonsRefrigeration is cooling capacity in US refrigeration tons. Each of the
// two Mira chiller towers is rated for 1,500 tons.
type TonsRefrigeration float64

// Watts returns the equivalent heat-removal rate. One ton of refrigeration is
// 12,000 BTU/h ≈ 3,516.85 W.
func (t TonsRefrigeration) Watts() Watts { return Watts(float64(t) * 3516.8528) }

func (t TonsRefrigeration) String() string { return fmt.Sprintf("%.0f tons", float64(t)) }

// Dewpoint computes the dewpoint temperature for the given dry-bulb
// temperature and relative humidity using the Magnus-Tetens approximation.
// The Blue Gene/Q coolant monitor raises a fatal event when the dewpoint
// approaches the data-center temperature (condensation risk).
func Dewpoint(t Fahrenheit, rh RelativeHumidity) Fahrenheit {
	const (
		a = 17.625
		b = 243.04 // °C
	)
	rhFrac := float64(rh.Clamp()) / 100
	if rhFrac < 1e-6 {
		rhFrac = 1e-6
	}
	tc := float64(t.Celsius())
	gamma := math.Log(rhFrac) + a*tc/(b+tc)
	dp := Celsius(b * gamma / (a - gamma))
	return dp.Fahrenheit()
}

// CondensationMargin returns how far the data-center dry-bulb temperature is
// above the dewpoint, in °F. Small or negative margins indicate condensation
// risk on cold surfaces such as coolant lines.
func CondensationMargin(t Fahrenheit, rh RelativeHumidity) float64 {
	return float64(t) - float64(Dewpoint(t, rh))
}

// WaterHeatCapacityFlow returns the heat-carrying capacity of a water flow in
// watts per °F of temperature rise: Q = m·c·ΔT. Used by the heat-exchanger
// model to relate rack heat load, coolant flow, and the inlet→outlet
// temperature delta.
func WaterHeatCapacityFlow(flow GPM) float64 {
	// mass flow: L/min → kg/s (1 L water ≈ 1 kg).
	kgPerSec := flow.LitersPerMinute() / 60.0
	const cWater = 4186.0 // J/(kg·K)
	wattsPerKelvin := kgPerSec * cWater
	// 1 °F = 5/9 K.
	return wattsPerKelvin * 5.0 / 9.0
}

// OutletTemperature returns the coolant outlet temperature for a rack given
// the inlet temperature, the heat load dissipated into the internal loop, and
// the loop flow rate.
func OutletTemperature(inlet Fahrenheit, heat Watts, flow GPM) Fahrenheit {
	cap := WaterHeatCapacityFlow(flow)
	if cap <= 0 {
		// No flow: model a large but finite rise; the solenoid valve or a
		// failure upstream should have intervened well before this matters.
		return inlet + 100
	}
	return inlet + Fahrenheit(float64(heat)/cap)
}
