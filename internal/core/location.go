package core

import (
	"errors"
	"sort"
	"time"

	"mira/internal/sensors"
	"mira/internal/sim"
	"mira/internal/topology"
)

// The paper's predictor monitors each rack individually and notes that
// "operationally it will be even more useful to have a predictor which even
// predicts the location of an impending CMF from the overall coolant
// telemetry of the datacenter". LocationRecorder + EvaluateLocation build
// that system-level view: machine-wide feature frames are scored per rack,
// and the ranking is evaluated against where failures actually struck.

// Frame is one machine-wide feature snapshot: every reporting rack's
// delta-features at an instant.
type Frame struct {
	Time     time.Time
	Features map[topology.RackID][]float64
}

// LocationRecorder is a sim.Recorder that captures machine-wide frames at a
// fixed cadence plus the incident ground truth.
type LocationRecorder struct {
	sim.NopRecorder

	step      time.Duration
	snapEvery int
	ringLen   int

	rings    [topology.NumRacks][]sensors.Record
	ringPos  [topology.NumRacks]int
	ringFull [topology.NumRacks]bool
	tick     int

	frames    []Frame
	incidents []sim.Incident
}

// NewLocationRecorder captures a frame every snapEvery ticks at the given
// telemetry step.
func NewLocationRecorder(step time.Duration, snapEvery int) *LocationRecorder {
	r := &LocationRecorder{
		step:      step,
		snapEvery: snapEvery,
		ringLen:   int(FeatureSpan/step) + int(EndpointSmoothing/step) + 2,
	}
	for i := range r.rings {
		r.rings[i] = make([]sensors.Record, r.ringLen)
	}
	return r
}

// OnSample pushes into the rack's ring; the machine-wide frame is cut when
// the last rack of a tick reports.
func (r *LocationRecorder) OnSample(rec sensors.Record) {
	i := rec.Rack.Index()
	r.rings[i][r.ringPos[i]] = rec
	r.ringPos[i] = (r.ringPos[i] + 1) % r.ringLen
	if r.ringPos[i] == 0 {
		r.ringFull[i] = true
	}
}

// OnRackState drives the cadence (it fires for every rack every tick,
// including down racks; the first rack of each tick advances the counter).
func (r *LocationRecorder) OnRackState(t time.Time, rack topology.RackID, _ float64) {
	if rack.Index() != 0 {
		return
	}
	r.tick++
	if r.snapEvery <= 0 || r.tick%r.snapEvery != 0 {
		return
	}
	frame := Frame{Time: t, Features: make(map[topology.RackID][]float64, topology.NumRacks)}
	for i := range r.rings {
		if !r.ringFull[i] {
			continue
		}
		recs := r.ringInOrder(i)
		f, err := DeltaFeatures(recs, r.step, 0)
		if err != nil {
			continue
		}
		frame.Features[topology.RackByIndex(i)] = f
	}
	if len(frame.Features) > 0 {
		r.frames = append(r.frames, frame)
	}
}

func (r *LocationRecorder) ringInOrder(i int) []sensors.Record {
	out := make([]sensors.Record, 0, r.ringLen)
	out = append(out, r.rings[i][r.ringPos[i]:]...)
	out = append(out, r.rings[i][:r.ringPos[i]]...)
	return out
}

// OnIncident records ground truth.
func (r *LocationRecorder) OnIncident(inc sim.Incident) { r.incidents = append(r.incidents, inc) }

// Frames returns the captured machine-wide frames.
func (r *LocationRecorder) Frames() []Frame { return r.frames }

// Incidents returns the ground truth.
func (r *LocationRecorder) Incidents() []sim.Incident { return r.incidents }

// LocationReport evaluates rack-ranking performance.
type LocationReport struct {
	// Evaluated is the number of incidents with a usable preceding frame.
	Evaluated int
	// Top1 and Top3 are the fractions of incidents whose epicenter ranked
	// first (resp. in the top three) among all reporting racks.
	Top1, Top3 float64
	// MeanEpicenterRank is the mean 1-based rank of the epicenter.
	MeanEpicenterRank float64
	// FrameAlarmPrecision is, over frames raising a machine-wide alert
	// (the same rack above the alert threshold in two consecutive frames —
	// a single-frame max over 48 racks would multiply the per-rack false
	// positive rate by 48, the limitation the paper flags), the fraction
	// followed by a CMF within the alarm-validity window.
	FrameAlarmPrecision float64
	// AlarmFrames counts frames that crossed the threshold.
	AlarmFrames int
}

// EvaluateLocation ranks racks in each frame by the predictor's probability
// and scores the ranking against the incidents. horizon bounds how far
// ahead of the frame an incident may be (the paper's six hours); minLead
// excludes frames so close to the failure that prediction is moot.
func EvaluateLocation(rec *LocationRecorder, p *Predictor, horizon, minLead time.Duration, threshold float64) (LocationReport, error) {
	if p == nil {
		return LocationReport{}, errors.New("core: nil predictor")
	}
	frames := rec.Frames()
	incidents := rec.Incidents()
	if len(frames) == 0 || len(incidents) == 0 {
		return LocationReport{}, errors.New("core: need frames and incidents")
	}
	if threshold <= 0 {
		threshold = 0.5
	}

	// Score all frames once.
	type scored struct {
		frame Frame
		probs map[topology.RackID]float64
		top   topology.RackID
		max   float64
	}
	scoredFrames := make([]scored, 0, len(frames))
	for _, fr := range frames {
		s := scored{frame: fr, probs: make(map[topology.RackID]float64, len(fr.Features)), max: -1}
		for rack, f := range fr.Features {
			pr := p.Probability(f)
			s.probs[rack] = pr
			if pr > s.max {
				s.max = pr
				s.top = rack
			}
		}
		scoredFrames = append(scoredFrames, s)
	}

	var rep LocationReport
	var rankSum float64
	for _, inc := range incidents {
		// Latest frame in [inc.Time − horizon, inc.Time − minLead].
		var best *scored
		for i := range scoredFrames {
			ft := scoredFrames[i].frame.Time
			if ft.After(inc.Time.Add(-minLead)) || ft.Before(inc.Time.Add(-horizon)) {
				continue
			}
			if best == nil || ft.After(best.frame.Time) {
				best = &scoredFrames[i]
			}
		}
		if best == nil {
			continue
		}
		pEpi, ok := best.probs[inc.Epicenter]
		if !ok {
			continue
		}
		rank := 1
		for _, pr := range best.probs {
			if pr > pEpi {
				rank++
			}
		}
		rep.Evaluated++
		rankSum += float64(rank)
		if rank == 1 {
			rep.Top1++
		}
		if rank <= 3 {
			rep.Top3++
		}
	}
	if rep.Evaluated > 0 {
		rep.Top1 /= float64(rep.Evaluated)
		rep.Top3 /= float64(rep.Evaluated)
		rep.MeanEpicenterRank = rankSum / float64(rep.Evaluated)
	}

	// Machine-wide alarm precision. An alarm counts as real when a CMF
	// follows within the alarm-validity window, which is wider than the
	// ranking horizon: precursor drift can announce a failure well before
	// six hours, and an early warning is still a true warning.
	alarmWindow := horizon * 5 / 2
	sort.Slice(incidents, func(a, b int) bool { return incidents[a].Time.Before(incidents[b].Time) })
	hits := 0
	for fi := 1; fi < len(scoredFrames); fi++ {
		cur, prev := &scoredFrames[fi], &scoredFrames[fi-1]
		sustained := false
		for rack, pr := range cur.probs {
			if pr >= threshold && prev.probs[rack] >= threshold {
				sustained = true
				break
			}
		}
		if !sustained {
			continue
		}
		rep.AlarmFrames++
		for _, inc := range incidents {
			d := inc.Time.Sub(cur.frame.Time)
			// A CMF ahead within the validity window makes the alarm a
			// true warning; one shortly behind explains a trailing alarm
			// (surviving racks still carry the loop disturbance in their
			// trailing six-hour features).
			if d >= -horizon && d <= alarmWindow {
				hits++
				break
			}
		}
	}
	if rep.AlarmFrames > 0 {
		rep.FrameAlarmPrecision = float64(hits) / float64(rep.AlarmFrames)
	}
	return rep, nil
}
