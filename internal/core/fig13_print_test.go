package core

import (
	"fmt"
	"testing"
	"time"
)

// TestPrintFig13 logs the Fig. 13 series for inspection (verbose mode only).
func TestPrintFig13(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	pos, neg := simWindows(t)
	points, err := LeadTimeSweep(pos, neg, simStep, DefaultLeads(), Config{Seed: 9}, DeltaFeatures)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		c := pt.Confusion
		fmt.Printf("lead %4s: acc=%.3f prec=%.3f rec=%.3f f1=%.3f fpr=%.3f\n",
			shortDur(pt.Lead), c.Accuracy(), c.Precision(), c.Recall(), c.F1(), c.FalsePositiveRate())
	}
}

func shortDur(d time.Duration) string { return d.String() }
