package core

import (
	"testing"
	"time"

	"mira/internal/sim"
	"mira/internal/timeutil"
	"mira/internal/topology"
)

// recordedAvoider captures Avoid calls.
type recordedAvoider struct {
	calls []topology.RackID
}

func (a *recordedAvoider) Avoid(r topology.RackID, _ time.Time) { a.calls = append(a.calls, r) }

func TestAvoidControllerFiresOnPrecursor(t *testing.T) {
	pos, neg := simWindows(t)
	ds, err := BuildDataset(pos, neg, simStep, time.Hour, DeltaFeatures, 61)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(ds, Config{Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	av := &recordedAvoider{}
	c := NewAvoidController(p, av, simStep)
	// Replay one pre-CMF window sample by sample: the controller should
	// flag the rack before the window ends.
	w := pos[0]
	for _, rec := range w.Records {
		c.OnSample(rec)
	}
	if c.AlertsRaised == 0 || len(av.calls) == 0 {
		t.Fatal("controller never alerted on a pre-CMF window")
	}
	if av.calls[0] != w.Rack {
		t.Errorf("avoided %v, want %v", av.calls[0], w.Rack)
	}
	// A quiet window must not trigger.
	quietAv := &recordedAvoider{}
	cq := NewAvoidController(p, quietAv, simStep)
	for _, rec := range neg[0].Records {
		cq.OnSample(rec)
	}
	if len(quietAv.calls) != 0 {
		t.Errorf("controller alerted on quiet telemetry: %v", quietAv.calls)
	}
}

func TestCMFAwareSchedulingReducesKilledJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B simulation skipped in -short mode")
	}
	// Train on early 2016, then A/B the failure-dense summer with and
	// without the CMF-aware controller on the same seed.
	trainStart := time.Date(2016, 1, 1, 0, 0, 0, 0, timeutil.Chicago)
	trainEnd := time.Date(2016, 6, 1, 0, 0, 0, 0, timeutil.Chicago)
	windowTicks := int((FeatureSpan+6*time.Hour)/simStep) + 1
	rec := sim.NewIncidentWindowRecorder(windowTicks, 250, 2000)
	s := sim.New(sim.Config{Seed: 71, Start: trainStart, End: trainEnd, Step: simStep})
	s.AddRecorder(rec)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(rec.Positives(), rec.Negatives(FeatureSpan), simStep, time.Hour, DeltaFeatures, 72)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(ds, Config{Seed: 73})
	if err != nil {
		t.Fatal(err)
	}

	abStart := trainEnd
	abEnd := time.Date(2016, 10, 1, 0, 0, 0, 0, timeutil.Chicago)
	// Compare CMF-attributable kills (incident JobsKilled), not the global
	// kill counter: maintenance drains and background outages dominate the
	// latter and diverge stochastically between runs.
	run := func(withController bool) (cmfKilled int, incidents int, alerts int) {
		s := sim.New(sim.Config{Seed: 71, Start: abStart, End: abEnd, Step: simStep})
		var c *AvoidController
		if withController {
			c = NewAvoidController(p, s.Scheduler(), simStep)
			s.AddRecorder(c)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if c != nil {
			alerts = c.AlertsRaised
		}
		for _, inc := range s.Incidents() {
			cmfKilled += inc.JobsKilled
		}
		return cmfKilled, len(s.Incidents()), alerts
	}
	baseKilled, baseInc, _ := run(false)
	ctrlKilled, ctrlInc, alerts := run(true)
	if baseInc == 0 {
		t.Skip("no incidents in the A/B window")
	}
	if alerts == 0 {
		t.Fatal("controller raised no alerts")
	}
	basePer := float64(baseKilled) / float64(baseInc)
	ctrlPer := float64(ctrlKilled) / float64(maxInt(ctrlInc, 1))
	t.Logf("CMF kills without controller: %d over %d incidents (%.2f/incident); with: %d over %d (%.2f/incident); alerts: %d",
		baseKilled, baseInc, basePer, ctrlKilled, ctrlInc, ctrlPer, alerts)
	// Draining flagged racks ahead of failures must reduce per-incident
	// kills materially.
	if ctrlPer >= basePer*0.9 {
		t.Errorf("CMF-aware scheduling should reduce per-incident kills: %.2f -> %.2f", basePer, ctrlPer)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
