package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"mira/internal/sensors"
	"mira/internal/sim"
	"mira/internal/timeutil"
	"mira/internal/topology"
	"mira/internal/units"
)

// syntheticWindow builds a telemetry window with a linear inlet ramp, for
// unit-testing the feature extractors.
func syntheticWindow(n int, step time.Duration, inletSlopePerStep float64) sim.Window {
	rack := topology.RackID{Row: 1, Col: 2}
	end := time.Date(2016, 8, 1, 12, 0, 0, 0, timeutil.Chicago)
	recs := make([]sensors.Record, n)
	for i := range recs {
		recs[i] = sensors.Record{
			Time:          end.Add(-time.Duration(n-1-i) * step),
			Rack:          rack,
			DCTemperature: 80,
			DCHumidity:    32,
			Flow:          26.5,
			InletTemp:     units.Fahrenheit(64 + inletSlopePerStep*float64(i)),
			OutletTemp:    79,
			Power:         units.KW(57),
		}
	}
	return sim.Window{Rack: rack, End: end, Records: recs}
}

func TestDeltaFeaturesBasics(t *testing.T) {
	step := 5 * time.Minute
	n := int(12*time.Hour/step) + 1
	w := syntheticWindow(n, step, 0.01) // inlet rises 0.01°F per 5 min
	f, err := DeltaFeatures(w.Records, step, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != NumFeatures {
		t.Fatalf("features = %d, want %d", len(f), NumFeatures)
	}
	// Inlet rose by 0.01 × 72 steps = 0.72°F over six hours → ≈+1.06%.
	inletIdx := int(sensors.MetricInletTemp)
	if math.Abs(f[inletIdx]-0.72/64.98) > 2e-3 {
		t.Errorf("inlet delta = %v, want ≈0.0111", f[inletIdx])
	}
	// Constant metrics: zero delta.
	if f[int(sensors.MetricFlow)] != 0 || f[int(sensors.MetricPower)] != 0 {
		t.Errorf("constant metrics should have zero delta: %v", f)
	}
	// At lead 3h, the same slope gives the same six-hour delta.
	f3, err := DeltaFeatures(w.Records, step, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f3[inletIdx]-f[inletIdx]) > 2e-3 {
		t.Errorf("lead-3h inlet delta = %v, want ≈%v", f3[inletIdx], f[inletIdx])
	}
}

func TestDeltaFeaturesErrors(t *testing.T) {
	step := 5 * time.Minute
	w := syntheticWindow(10, step, 0)
	if _, err := DeltaFeatures(w.Records, step, 0); err == nil {
		t.Error("short window should error")
	}
	if _, err := DeltaFeatures(w.Records, 0, 0); err == nil {
		t.Error("zero step should error")
	}
	long := syntheticWindow(int(12*time.Hour/step)+1, step, 0)
	if _, err := DeltaFeatures(long.Records, step, 7*time.Hour); err == nil {
		t.Error("lead beyond window should error")
	}
}

func TestLevelFeatures(t *testing.T) {
	step := 5 * time.Minute
	w := syntheticWindow(20, step, 0)
	f, err := LevelFeatures(w.Records, step, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f[int(sensors.MetricInletTemp)] != 64 {
		t.Errorf("level inlet = %v", f[int(sensors.MetricInletTemp)])
	}
	if f[int(sensors.MetricPower)] != 57000 {
		t.Errorf("level power = %v", f[int(sensors.MetricPower)])
	}
	if _, err := LevelFeatures(w.Records, step, 3*time.Hour); err == nil {
		t.Error("lead beyond window should error")
	}
}

func TestBuildDatasetBalance(t *testing.T) {
	step := 5 * time.Minute
	n := int(12*time.Hour/step) + 1
	var pos, neg []sim.Window
	for i := 0; i < 10; i++ {
		pos = append(pos, syntheticWindow(n, step, 0.02))
	}
	for i := 0; i < 25; i++ {
		neg = append(neg, syntheticWindow(n, step, 0))
	}
	ds, err := BuildDataset(pos, neg, step, time.Hour, DeltaFeatures, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 20 {
		t.Errorf("dataset size = %d, want 20 (balanced)", ds.Len())
	}
	if ds.Positives() != 10 {
		t.Errorf("positives = %d, want 10", ds.Positives())
	}
	// Missing class errors.
	if _, err := BuildDataset(nil, neg, step, time.Hour, DeltaFeatures, 1); err == nil {
		t.Error("no positives should error")
	}
	// Short windows skipped.
	short := []sim.Window{syntheticWindow(5, step, 0)}
	if _, err := BuildDataset(short, neg, step, time.Hour, DeltaFeatures, 1); err == nil {
		t.Error("all-short positives should error")
	}
}

func TestTrainOnSeparableSynthetic(t *testing.T) {
	step := 5 * time.Minute
	n := int(12*time.Hour/step) + 1
	var pos, neg []sim.Window
	for i := 0; i < 40; i++ {
		pos = append(pos, syntheticWindow(n, step, 0.02))
		neg = append(neg, syntheticWindow(n, step, 0.0))
	}
	ds, err := BuildDataset(pos, neg, step, time.Hour, DeltaFeatures, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Train(ds, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conf := p.Evaluate(ds)
	if conf.Accuracy() < 0.97 {
		t.Errorf("separable training accuracy = %v", conf.Accuracy())
	}
	// Probability output is a valid probability.
	prob := p.Probability(ds.X[0])
	if prob < 0 || prob > 1 {
		t.Errorf("probability = %v", prob)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	if _, err := Train(Dataset{}, Config{}); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := TrainLogisticBaseline(Dataset{}, Config{}); err == nil {
		t.Error("empty dataset should error for logistic baseline")
	}
}

// ---------------------------------------------------------------------------
// End-to-end evaluation on simulated telemetry (Fig. 13).
// ---------------------------------------------------------------------------

var simData = struct {
	once      sync.Once
	positives []sim.Window
	negatives []sim.Window
	err       error
}{}

const simStep = timeutil.SampleInterval

// simWindows runs a failure-dense 2016 window once and caches the captured
// telemetry windows.
func simWindows(t *testing.T) (pos, neg []sim.Window) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation-backed predictor test skipped in -short mode")
	}
	simData.once.Do(func() {
		windowTicks := int((FeatureSpan+6*time.Hour)/simStep) + 1
		rec := sim.NewIncidentWindowRecorder(windowTicks, 250, 3000)
		s := sim.New(sim.Config{
			Seed:  77,
			Start: time.Date(2016, 1, 1, 0, 0, 0, 0, timeutil.Chicago),
			End:   time.Date(2017, 1, 1, 0, 0, 0, 0, timeutil.Chicago),
			Step:  simStep,
		})
		s.AddRecorder(rec)
		if err := s.Run(); err != nil {
			simData.err = err
			return
		}
		simData.positives = rec.Positives()
		simData.negatives = rec.Negatives(FeatureSpan)
	})
	if simData.err != nil {
		t.Fatal(simData.err)
	}
	if len(simData.positives) < 20 || len(simData.negatives) < 50 {
		t.Fatalf("too few windows: %d positive, %d negative", len(simData.positives), len(simData.negatives))
	}
	return simData.positives, simData.negatives
}

func TestFig13LeadTimeSweep(t *testing.T) {
	pos, neg := simWindows(t)
	points, err := LeadTimeSweep(pos, neg, simStep, DefaultLeads(), Config{Seed: 9}, DeltaFeatures)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultLeads()) {
		t.Fatalf("points = %d", len(points))
	}
	first := points[0].Confusion            // 6 h out
	last := points[len(points)-1].Confusion // 30 min out
	// Paper: ≈87% accuracy six hours out.
	if acc := first.Accuracy(); acc < 0.72 || acc > 0.99 {
		t.Errorf("accuracy at 6h = %v, want ≈0.87", acc)
	}
	// Paper: ≈97% accuracy 30 minutes out.
	if acc := last.Accuracy(); acc < 0.90 {
		t.Errorf("accuracy at 30min = %v, want ≈0.97", acc)
	}
	// Performance improves as the CMF approaches.
	if last.Accuracy() <= first.Accuracy() {
		t.Errorf("accuracy should improve toward the failure: %v -> %v", first.Accuracy(), last.Accuracy())
	}
	// FPR shrinks toward the failure (paper: 6% → 1.2%).
	if last.FalsePositiveRate() > first.FalsePositiveRate()+0.02 {
		t.Errorf("FPR should shrink toward the failure: %v -> %v",
			first.FalsePositiveRate(), last.FalsePositiveRate())
	}
	if last.FalsePositiveRate() > 0.10 {
		t.Errorf("FPR at 30min = %v, want small", last.FalsePositiveRate())
	}
	// All four metrics are in the same ballpark at a given lead (paper:
	// "all metrics of performance provide nearly similar values").
	for _, pt := range points {
		c := pt.Confusion
		if math.Abs(c.Precision()-c.Recall()) > 0.25 {
			t.Errorf("lead %v: precision %v and recall %v diverge", pt.Lead, c.Precision(), c.Recall())
		}
	}
}

func TestDeltaBeatsLevelFeatures(t *testing.T) {
	// Paper §VI-D: "not only the level of cooling metrics, but more
	// importantly the change in their values are key features". The same
	// network trained on level features should do worse at long leads.
	pos, neg := simWindows(t)
	lead := 4 * time.Hour
	deltaDS, err := BuildDataset(pos, neg, simStep, lead, DeltaFeatures, 11)
	if err != nil {
		t.Fatal(err)
	}
	levelDS, err := BuildDataset(pos, neg, simStep, lead, LevelFeatures, 11)
	if err != nil {
		t.Fatal(err)
	}
	deltaConf, err := CrossValidate(deltaDS, Config{Seed: 12}, 5)
	if err != nil {
		t.Fatal(err)
	}
	levelConf, err := CrossValidate(levelDS, Config{Seed: 12}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if deltaConf.Accuracy() <= levelConf.Accuracy() {
		t.Errorf("delta features (%v) should beat level features (%v) at lead %v",
			deltaConf.Accuracy(), levelConf.Accuracy(), lead)
	}
}

func TestNNvsBaselines(t *testing.T) {
	pos, neg := simWindows(t)
	lead := 2 * time.Hour
	ds, err := BuildDataset(pos, neg, simStep, lead, DeltaFeatures, 13)
	if err != nil {
		t.Fatal(err)
	}
	nnConf, err := CrossValidate(ds, Config{Seed: 14}, 5)
	if err != nil {
		t.Fatal(err)
	}
	thr, err := FitThresholdBaseline(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	thrConf := thr.Evaluate(ds)
	if nnConf.Accuracy() <= thrConf.Accuracy()-0.02 {
		t.Errorf("NN (%v) should not lose to the threshold baseline (%v)", nnConf.Accuracy(), thrConf.Accuracy())
	}
	logit, err := TrainLogisticBaseline(ds, Config{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	logitConf := logit.Evaluate(ds)
	if logitConf.Accuracy() < 0.5 {
		t.Errorf("logistic baseline accuracy = %v, should beat chance", logitConf.Accuracy())
	}
}

func TestThresholdBaselineUnit(t *testing.T) {
	ds := Dataset{
		X: [][]float64{{0, 0}, {0.1, -0.1}, {5, 5}, {-4, 6}},
		Y: []float64{0, 0, 1, 1},
	}
	b, err := FitThresholdBaseline(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	conf := b.Evaluate(ds)
	if conf.Recall() != 1 {
		t.Errorf("obvious outliers should be caught: %v", conf)
	}
	if _, err := FitThresholdBaseline(Dataset{X: [][]float64{{1}}, Y: []float64{1}}, 2); err == nil {
		t.Error("baseline without healthy examples should error")
	}
}

func TestTuneArchitecture(t *testing.T) {
	if testing.Short() {
		t.Skip("architecture search skipped in -short mode")
	}
	pos, neg := simWindows(t)
	ds, err := BuildDataset(pos, neg, simStep, time.Hour, DeltaFeatures, 16)
	if err != nil {
		t.Fatal(err)
	}
	hidden, err := TuneArchitecture(ds, Config{Seed: 17, Epochs: 25}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(hidden) != 3 {
		t.Fatalf("hidden = %v", hidden)
	}
	for _, h := range hidden {
		if h < 2 || h > 16 {
			t.Errorf("layer width %d out of the search grid", h)
		}
	}
	// The tuned architecture should train successfully and do well.
	conf, err := CrossValidate(ds, Config{Hidden: hidden, Seed: 18}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() < 0.8 {
		t.Errorf("tuned architecture accuracy = %v", conf.Accuracy())
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	step := 5 * time.Minute
	n := int(12*time.Hour/step) + 1
	var pos, neg []sim.Window
	for i := 0; i < 20; i++ {
		pos = append(pos, syntheticWindow(n, step, 0.02))
		neg = append(neg, syntheticWindow(n, step, 0))
	}
	ds, err := BuildDataset(pos, neg, step, time.Hour, DeltaFeatures, 19)
	if err != nil {
		t.Fatal(err)
	}
	a, err := CrossValidate(ds, Config{Seed: 20, Epochs: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(ds, Config{Seed: 20, Epochs: 10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cross-validation should be deterministic: %v vs %v", a, b)
	}
}
